/** @file Unit tests for the RAD block cache. */

#include <gtest/gtest.h>

#include "common/params.hh"
#include "rad/block_cache.hh"

namespace rnuma
{

TEST(BlockCache, FiniteGeometryFromParams)
{
    Params p = Params::base();
    BlockCache bc(p.blockCacheSize, p, false);
    EXPECT_FALSE(bc.infinite());
    EXPECT_EQ(bc.validCount(), 0u);
}

TEST(BlockCache, TinyRnumaCacheHoldsFourBlocks)
{
    Params p = Params::base();
    BlockCache bc(p.rnumaBlockCacheSize, p, false);
    Cache::Victim v;
    // 128 bytes / 32-byte blocks = 4 frames.
    for (Addr a = 0; a < 4 * 32; a += 32) {
        bc.allocate(a, v)->state = CacheState::Shared;
        ASSERT_FALSE(v.valid);
    }
    bc.allocate(4 * 32, v);
    EXPECT_TRUE(v.valid);
}

TEST(BlockCache, OwnsBlockOnlyWhenModified)
{
    Params p = Params::base();
    BlockCache bc(p.blockCacheSize, p, false);
    Cache::Victim v;
    bc.allocate(0x100, v)->state = CacheState::Shared;
    EXPECT_FALSE(bc.ownsBlock(0x100));
    bc.find(0x100)->state = CacheState::Modified;
    EXPECT_TRUE(bc.ownsBlock(0x100));
    EXPECT_FALSE(bc.ownsBlock(0x200));
}

TEST(BlockCache, DowngradeClearsOwnership)
{
    Params p = Params::base();
    BlockCache bc(p.blockCacheSize, p, false);
    Cache::Victim v;
    bc.allocate(0x100, v)->state = CacheState::Modified;
    bc.downgrade(0x100);
    EXPECT_FALSE(bc.ownsBlock(0x100));
    EXPECT_NE(bc.find(0x100), nullptr);
}

TEST(BlockCache, InfiniteModeForBaseline)
{
    Params p = Params::base();
    p.infiniteBlockCache = true;
    BlockCache bc(p.blockCacheSize, p, true);
    EXPECT_TRUE(bc.infinite());
    Cache::Victim v;
    for (Addr a = 0; a < 32 * 5000; a += 32) {
        bc.allocate(a, v)->state = CacheState::Shared;
        ASSERT_FALSE(v.valid);
    }
    EXPECT_EQ(bc.validCount(), 5000u);
}

} // namespace rnuma
