/**
 * @file
 * Tests for the protocol registry (proto/registry.hh): name -> spec
 * -> Rad round-trips through a real Machine, lookup normalization
 * (ids, display names, enum-era labels), the unknown-name error
 * path, bit-identity of the registry path against the legacy enum
 * path, Figure 8's staticThresholdSpec variants against the
 * pre-registry "params hack" equivalent, and end-to-end runs of the
 * new policy protocols.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/analytic_model.hh"
#include "proto/registry.hh"
#include "sim/machine.hh"
#include "sim/runner.hh"
#include "workload/micro.hh"

#include "test_util.hh"

namespace rnuma
{

namespace
{

/** A reuse-heavy pattern on the tiny machine: more remote pages
 *  than page-cache frames, so relocations and evictions happen. */
std::unique_ptr<VectorWorkload>
reuseWorkload(const Params &p)
{
    return makeHotRemoteReuse(p, 12, 6);
}

} // namespace

TEST(ProtocolRegistry, HasTheBuiltinsInOrder)
{
    auto all = ProtocolRegistry::global().all();
    ASSERT_GE(all.size(), 6u);
    EXPECT_EQ(all[0]->id, "ccnuma");
    EXPECT_EQ(all[1]->id, "scoma");
    EXPECT_EQ(all[2]->id, "rnuma");
    EXPECT_EQ(all[3]->id, "rnuma-hysteresis");
    EXPECT_EQ(all[4]->id, "rnuma-adaptive");
    EXPECT_EQ(all[5]->id, "rnuma-model");
    for (const ProtocolSpec *s : all) {
        EXPECT_TRUE(s->valid()) << s->id;
        EXPECT_FALSE(s->displayName.empty()) << s->id;
        EXPECT_FALSE(s->description.empty()) << s->id;
    }
}

TEST(ProtocolRegistry, LookupNormalizesNames)
{
    const ProtocolSpec &cc = protocolSpec("ccnuma");
    EXPECT_EQ(findProtocolSpec("CCNUMA"), &cc);
    EXPECT_EQ(findProtocolSpec("CC-NUMA"), &cc); // enum-era label
    EXPECT_EQ(findProtocolSpec("cc-numa"), &cc);
    EXPECT_EQ(findProtocolSpec("R-NUMA"), &protocolSpec("rnuma"));
    EXPECT_EQ(findProtocolSpec("S-COMA"), &protocolSpec("scoma"));
    EXPECT_EQ(canonicalProtocolId("R-NUMA"), "rnuma");
    EXPECT_EQ(canonicalProtocolId("rnuma-t16"), "rnuma-t16");
}

TEST(ProtocolRegistry, UnknownNameIsAnError)
{
    EXPECT_EQ(findProtocolSpec("no-such-protocol"), nullptr);
    EXPECT_THROW(protocolSpec("no-such-protocol"),
                 std::runtime_error);
}

TEST(ProtocolRegistry, RejectsInvalidAndDuplicateSpecs)
{
    ProtocolSpec empty;
    EXPECT_THROW(ProtocolRegistry::global().add(std::move(empty)),
                 std::logic_error);
    // Duplicate id: fatal.
    ProtocolSpec dup = protocolSpec("ccnuma");
    EXPECT_THROW(ProtocolRegistry::global().add(std::move(dup)),
                 std::runtime_error);
}

TEST(ProtocolRegistry, EnumResolvesToTheSameSpecs)
{
    EXPECT_EQ(&builtinSpec(Protocol::CCNuma),
              &protocolSpec("ccnuma"));
    EXPECT_EQ(&builtinSpec(Protocol::SComa), &protocolSpec("scoma"));
    EXPECT_EQ(&builtinSpec(Protocol::RNuma), &protocolSpec("rnuma"));
    EXPECT_STREQ(protocolId(Protocol::RNuma), "rnuma");
}

TEST(ProtocolRegistry, NameToSpecToRadRoundTrip)
{
    // Running a machine by registry name is bit-identical to the
    // legacy enum path for each paper system.
    Params p = test::smallParams();
    const struct
    {
        const char *name;
        Protocol proto;
    } systems[] = {
        {"ccnuma", Protocol::CCNuma},
        {"scoma", Protocol::SComa},
        {"rnuma", Protocol::RNuma},
    };
    for (const auto &sys : systems) {
        auto wl_a = reuseWorkload(p);
        auto wl_b = reuseWorkload(p);
        RunStats by_name = runProtocol(p, std::string(sys.name),
                                       *wl_a);
        RunStats by_enum = runProtocol(p, sys.proto, *wl_b);
        EXPECT_EQ(by_name, by_enum) << sys.name;
        EXPECT_GT(by_name.refs, 0u);
    }
}

TEST(ProtocolRegistry, MachineReportsItsProtocolId)
{
    Params p = test::smallParams();
    auto wl = reuseWorkload(p);
    Machine m(p, protocolSpec("rnuma-adaptive"), *wl);
    EXPECT_EQ(m.protocolId(), "rnuma-adaptive");
}

TEST(ProtocolRegistry, StaticThresholdSpecMatchesTheParamsHack)
{
    // Figure 8's policy sweep replaced mutating
    // Params::relocationThreshold. Both roads must lead to the same
    // simulated machine, tick for tick.
    Params base = test::smallParams();
    for (std::size_t T : {2u, 4u, 8u}) {
        Params hacked = base;
        hacked.relocationThreshold = T;
        auto wl_a = reuseWorkload(base);
        auto wl_b = reuseWorkload(base);
        RunStats via_spec =
            runProtocol(base, staticThresholdSpec(T), *wl_a);
        RunStats via_params =
            runProtocol(hacked, Protocol::RNuma, *wl_b);
        EXPECT_EQ(via_spec, via_params) << "T=" << T;
    }
}

TEST(ProtocolRegistry, NewPoliciesRunEndToEndAndDeterministically)
{
    Params p = test::smallParams();
    for (const char *name : {"rnuma-hysteresis", "rnuma-adaptive"}) {
        auto wl_a = reuseWorkload(p);
        auto wl_b = reuseWorkload(p);
        RunStats a = runProtocol(p, std::string(name), *wl_a);
        RunStats b = runProtocol(p, std::string(name), *wl_b);
        EXPECT_EQ(a, b) << name;
        EXPECT_GT(a.refs, 0u) << name;
        EXPECT_GT(a.relocations, 0u) << name;
    }
}

TEST(ProtocolRegistry, HysteresisRelocatesNoMoreThanStatic)
{
    // On an eviction-heavy reuse pattern (12 remote pages, 4
    // page-cache frames) pages relocate, fall out, and re-qualify;
    // hysteresis raises the re-entry bar, so it can only relocate
    // less often than the static rule.
    Params p = test::smallParams();
    auto wl_s = reuseWorkload(p);
    auto wl_h = reuseWorkload(p);
    RunStats stat = runProtocol(p, std::string("rnuma"), *wl_s);
    RunStats hyst =
        runProtocol(p, std::string("rnuma-hysteresis"), *wl_h);
    EXPECT_GT(stat.relocations, 0u);
    EXPECT_LE(hyst.relocations, stat.relocations);
    EXPECT_EQ(stat.refs, hyst.refs); // same workload either way
}

TEST(ProtocolRegistry, ModelPolicyIsSeededFromTheAnalyticOptimum)
{
    // The registry-enabled one-file experiment: rnuma-model's static
    // threshold comes from AnalyticModel::optimalThreshold() for the
    // Params the machine actually runs, not from
    // Params::relocationThreshold.
    Params p = test::smallParams();
    const ProtocolSpec &spec = protocolSpec("rnuma-model");
    ASSERT_TRUE(spec.makePolicy != nullptr);
    auto policy = spec.makePolicy(p);
    AnalyticModel model(
        ModelParams::fromSystem(p, p.blocksPerPage() / 2));
    auto expected = static_cast<std::size_t>(
        std::llround(model.optimalThreshold()));
    if (expected < 1)
        expected = 1;
    auto *st = dynamic_cast<StaticThresholdPolicy *>(policy.get());
    ASSERT_NE(st, nullptr);
    EXPECT_EQ(st->threshold(), expected);

    // And it runs end to end, deterministically, like any builtin.
    auto wl_a = reuseWorkload(p);
    auto wl_b = reuseWorkload(p);
    RunStats a = runProtocol(p, std::string("rnuma-model"), *wl_a);
    RunStats b = runProtocol(p, std::string("rnuma-model"), *wl_b);
    EXPECT_EQ(a, b);
    EXPECT_GT(a.refs, 0u);
}

TEST(ProtocolRegistry, ConcurrentRegistrationAndLookupIsSafe)
{
    // The registry is process-global shared state; sweep workers may
    // register ad-hoc specs while others resolve names. Hammer both
    // paths from many threads — under TSan this is the test that
    // catches an unguarded table, and even without TSan a torn
    // vector usually crashes. Registered test specs stay in the
    // global registry afterwards (specs are never removed), which
    // is harmless: ids are namespaced with a test prefix.
    constexpr int writers = 4;
    constexpr int readers = 4;
    constexpr int perWriter = 8;
    // Ids must be fresh per in-process run of this test (e.g.
    // --gtest_repeat): the global registry never forgets, and a
    // duplicate registration is fatal — from inside a thread that
    // would terminate the whole binary.
    static int runSeq = 0;
    const std::string prefix =
        "rnuma-test-race-r" + std::to_string(runSeq++) + "-w";
    std::atomic<bool> go{false};
    std::atomic<int> registered{0};
    std::vector<std::thread> threads;
    for (int w = 0; w < writers; ++w) {
        threads.emplace_back([w, &go, &registered, &prefix] {
            while (!go.load())
                std::this_thread::yield();
            for (int i = 0; i < perWriter; ++i) {
                std::string id = prefix +
                    std::to_string(w) + "-" + std::to_string(i);
                ProtocolRegistry::global().add(hybridSpec(
                    id, "R-NUMA(race)", "concurrency test spec",
                    [](const Params &) {
                        return std::unique_ptr<RelocationPolicy>(
                            std::make_unique<
                                StaticThresholdPolicy>(1));
                    }));
                registered.fetch_add(1);
            }
        });
    }
    // gtest macros are not thread-safe; readers tally failures into
    // an atomic and the main thread asserts afterwards.
    std::atomic<int> readerFailures{0};
    for (int r = 0; r < readers; ++r) {
        threads.emplace_back([&go, &readerFailures] {
            while (!go.load())
                std::this_thread::yield();
            for (int i = 0; i < 200; ++i) {
                // Builtins resolve throughout...
                if (findProtocolSpec("rnuma") == nullptr)
                    readerFailures.fetch_add(1);
                // ...and enumeration yields only valid specs.
                for (const ProtocolSpec *s :
                     ProtocolRegistry::global().all()) {
                    if (!s->valid())
                        readerFailures.fetch_add(1);
                }
            }
        });
    }
    go.store(true);
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(readerFailures.load(), 0);
    EXPECT_EQ(registered.load(), writers * perWriter);
    // Every concurrently registered spec is resolvable afterwards.
    for (int w = 0; w < writers; ++w) {
        for (int i = 0; i < perWriter; ++i) {
            std::string id = prefix + std::to_string(w) + "-" +
                std::to_string(i);
            EXPECT_NE(findProtocolSpec(id), nullptr) << id;
        }
    }
}

TEST(ProtocolRegistry, HybridSpecComposesCustomPolicies)
{
    // The extension point a downstream protocol author uses: an
    // unregistered spec with a custom policy wiring, runnable
    // directly.
    ProtocolSpec custom = hybridSpec(
        "rnuma-eager", "R-NUMA(eager)", "relocates on first refetch",
        [](const Params &) {
            return std::unique_ptr<RelocationPolicy>(
                std::make_unique<StaticThresholdPolicy>(1));
        });
    Params p = test::smallParams();
    auto wl_eager = reuseWorkload(p);
    auto wl_base = reuseWorkload(p);
    RunStats eager = runProtocol(p, custom, *wl_eager);
    RunStats base = runProtocol(p, std::string("rnuma"), *wl_base);
    // Threshold 1 relocates at the very first refetch, so it can
    // never relocate less than the threshold-4 rule here.
    EXPECT_GE(eager.relocations, base.relocations);
    EXPECT_GT(eager.relocations, 0u);
}

} // namespace rnuma
