/**
 * @file
 * Tests for the protocol registry (proto/registry.hh): name -> spec
 * -> Rad round-trips through a real Machine, lookup normalization
 * (ids, display names, enum-era labels), the unknown-name error
 * path, bit-identity of the registry path against the legacy enum
 * path, Figure 8's staticThresholdSpec variants against the
 * pre-registry "params hack" equivalent, and end-to-end runs of the
 * new policy protocols.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "proto/registry.hh"
#include "sim/machine.hh"
#include "sim/runner.hh"
#include "workload/micro.hh"

#include "test_util.hh"

namespace rnuma
{

namespace
{

/** A reuse-heavy pattern on the tiny machine: more remote pages
 *  than page-cache frames, so relocations and evictions happen. */
std::unique_ptr<VectorWorkload>
reuseWorkload(const Params &p)
{
    return makeHotRemoteReuse(p, 12, 6);
}

} // namespace

TEST(ProtocolRegistry, HasTheBuiltinsInOrder)
{
    auto all = ProtocolRegistry::global().all();
    ASSERT_GE(all.size(), 5u);
    EXPECT_EQ(all[0]->id, "ccnuma");
    EXPECT_EQ(all[1]->id, "scoma");
    EXPECT_EQ(all[2]->id, "rnuma");
    EXPECT_EQ(all[3]->id, "rnuma-hysteresis");
    EXPECT_EQ(all[4]->id, "rnuma-adaptive");
    for (const ProtocolSpec *s : all) {
        EXPECT_TRUE(s->valid()) << s->id;
        EXPECT_FALSE(s->displayName.empty()) << s->id;
        EXPECT_FALSE(s->description.empty()) << s->id;
    }
}

TEST(ProtocolRegistry, LookupNormalizesNames)
{
    const ProtocolSpec &cc = protocolSpec("ccnuma");
    EXPECT_EQ(findProtocolSpec("CCNUMA"), &cc);
    EXPECT_EQ(findProtocolSpec("CC-NUMA"), &cc); // enum-era label
    EXPECT_EQ(findProtocolSpec("cc-numa"), &cc);
    EXPECT_EQ(findProtocolSpec("R-NUMA"), &protocolSpec("rnuma"));
    EXPECT_EQ(findProtocolSpec("S-COMA"), &protocolSpec("scoma"));
    EXPECT_EQ(canonicalProtocolId("R-NUMA"), "rnuma");
    EXPECT_EQ(canonicalProtocolId("rnuma-t16"), "rnuma-t16");
}

TEST(ProtocolRegistry, UnknownNameIsAnError)
{
    EXPECT_EQ(findProtocolSpec("no-such-protocol"), nullptr);
    EXPECT_THROW(protocolSpec("no-such-protocol"),
                 std::runtime_error);
}

TEST(ProtocolRegistry, RejectsInvalidAndDuplicateSpecs)
{
    ProtocolSpec empty;
    EXPECT_THROW(ProtocolRegistry::global().add(std::move(empty)),
                 std::logic_error);
    // Duplicate id: fatal.
    ProtocolSpec dup = protocolSpec("ccnuma");
    EXPECT_THROW(ProtocolRegistry::global().add(std::move(dup)),
                 std::runtime_error);
}

TEST(ProtocolRegistry, EnumResolvesToTheSameSpecs)
{
    EXPECT_EQ(&builtinSpec(Protocol::CCNuma),
              &protocolSpec("ccnuma"));
    EXPECT_EQ(&builtinSpec(Protocol::SComa), &protocolSpec("scoma"));
    EXPECT_EQ(&builtinSpec(Protocol::RNuma), &protocolSpec("rnuma"));
    EXPECT_STREQ(protocolId(Protocol::RNuma), "rnuma");
}

TEST(ProtocolRegistry, NameToSpecToRadRoundTrip)
{
    // Running a machine by registry name is bit-identical to the
    // legacy enum path for each paper system.
    Params p = test::smallParams();
    const struct
    {
        const char *name;
        Protocol proto;
    } systems[] = {
        {"ccnuma", Protocol::CCNuma},
        {"scoma", Protocol::SComa},
        {"rnuma", Protocol::RNuma},
    };
    for (const auto &sys : systems) {
        auto wl_a = reuseWorkload(p);
        auto wl_b = reuseWorkload(p);
        RunStats by_name = runProtocol(p, std::string(sys.name),
                                       *wl_a);
        RunStats by_enum = runProtocol(p, sys.proto, *wl_b);
        EXPECT_EQ(by_name, by_enum) << sys.name;
        EXPECT_GT(by_name.refs, 0u);
    }
}

TEST(ProtocolRegistry, MachineReportsItsProtocolId)
{
    Params p = test::smallParams();
    auto wl = reuseWorkload(p);
    Machine m(p, protocolSpec("rnuma-adaptive"), *wl);
    EXPECT_EQ(m.protocolId(), "rnuma-adaptive");
}

TEST(ProtocolRegistry, StaticThresholdSpecMatchesTheParamsHack)
{
    // Figure 8's policy sweep replaced mutating
    // Params::relocationThreshold. Both roads must lead to the same
    // simulated machine, tick for tick.
    Params base = test::smallParams();
    for (std::size_t T : {2u, 4u, 8u}) {
        Params hacked = base;
        hacked.relocationThreshold = T;
        auto wl_a = reuseWorkload(base);
        auto wl_b = reuseWorkload(base);
        RunStats via_spec =
            runProtocol(base, staticThresholdSpec(T), *wl_a);
        RunStats via_params =
            runProtocol(hacked, Protocol::RNuma, *wl_b);
        EXPECT_EQ(via_spec, via_params) << "T=" << T;
    }
}

TEST(ProtocolRegistry, NewPoliciesRunEndToEndAndDeterministically)
{
    Params p = test::smallParams();
    for (const char *name : {"rnuma-hysteresis", "rnuma-adaptive"}) {
        auto wl_a = reuseWorkload(p);
        auto wl_b = reuseWorkload(p);
        RunStats a = runProtocol(p, std::string(name), *wl_a);
        RunStats b = runProtocol(p, std::string(name), *wl_b);
        EXPECT_EQ(a, b) << name;
        EXPECT_GT(a.refs, 0u) << name;
        EXPECT_GT(a.relocations, 0u) << name;
    }
}

TEST(ProtocolRegistry, HysteresisRelocatesNoMoreThanStatic)
{
    // On an eviction-heavy reuse pattern (12 remote pages, 4
    // page-cache frames) pages relocate, fall out, and re-qualify;
    // hysteresis raises the re-entry bar, so it can only relocate
    // less often than the static rule.
    Params p = test::smallParams();
    auto wl_s = reuseWorkload(p);
    auto wl_h = reuseWorkload(p);
    RunStats stat = runProtocol(p, std::string("rnuma"), *wl_s);
    RunStats hyst =
        runProtocol(p, std::string("rnuma-hysteresis"), *wl_h);
    EXPECT_GT(stat.relocations, 0u);
    EXPECT_LE(hyst.relocations, stat.relocations);
    EXPECT_EQ(stat.refs, hyst.refs); // same workload either way
}

TEST(ProtocolRegistry, HybridSpecComposesCustomPolicies)
{
    // The extension point a downstream protocol author uses: an
    // unregistered spec with a custom policy wiring, runnable
    // directly.
    ProtocolSpec custom = hybridSpec(
        "rnuma-eager", "R-NUMA(eager)", "relocates on first refetch",
        [](const Params &) {
            return std::unique_ptr<RelocationPolicy>(
                std::make_unique<StaticThresholdPolicy>(1));
        });
    Params p = test::smallParams();
    auto wl_eager = reuseWorkload(p);
    auto wl_base = reuseWorkload(p);
    RunStats eager = runProtocol(p, custom, *wl_eager);
    RunStats base = runProtocol(p, std::string("rnuma"), *wl_base);
    // Threshold 1 relocates at the very first refetch, so it can
    // never relocate less than the threshold-4 rule here.
    EXPECT_GE(eager.relocations, base.relocations);
    EXPECT_GT(eager.relocations, 0u);
}

} // namespace rnuma
