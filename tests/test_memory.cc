/** @file Unit tests for the interleaved memory model. */

#include <gtest/gtest.h>

#include "mem/memory.hh"

namespace rnuma
{

TEST(Memory, UncontendedAccessIsDramLatency)
{
    Memory m(56, 32, 4);
    EXPECT_EQ(m.access(100, 0x0), 156u);
}

TEST(Memory, SameBankSerializes)
{
    Memory m(56, 32, 4);
    EXPECT_EQ(m.access(0, 0x0), 56u);
    // Same block -> same bank -> queued behind the first access.
    EXPECT_EQ(m.access(0, 0x0), 112u);
    EXPECT_EQ(m.waited(), 56u);
}

TEST(Memory, DifferentBanksOverlap)
{
    Memory m(56, 32, 4);
    EXPECT_EQ(m.access(0, 0 * 32), 56u);
    EXPECT_EQ(m.access(0, 1 * 32), 56u);
    EXPECT_EQ(m.access(0, 2 * 32), 56u);
    EXPECT_EQ(m.access(0, 3 * 32), 56u);
    EXPECT_EQ(m.waited(), 0u);
    // Fifth access wraps to bank 0 and queues.
    EXPECT_EQ(m.access(0, 4 * 32), 112u);
}

TEST(Memory, BankSelectionByBlock)
{
    Memory m(10, 32, 2);
    EXPECT_EQ(m.access(0, 0), 10u);  // bank 0
    // 64/32 = 2 -> bank 0 again: queued behind the first access.
    EXPECT_EQ(m.access(0, 64), 20u);
    EXPECT_EQ(m.waited(), 10u);
    // 32/32 = 1 -> bank 1: independent.
    EXPECT_EQ(m.access(0, 32), 10u);
}

} // namespace rnuma
