/** @file Machine-level tests of the S-COMA protocol. */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "sim/runner.hh"
#include "workload/micro.hh"

#include "test_util.hh"

namespace rnuma
{

TEST(MachineSComa, AllocatesOncePerRemotePageWhenTheyFit)
{
    Params p = test::smallParams(); // 4 page-cache frames
    auto wl = makeHotRemoteReuse(p, 3, 3);
    RunStats s = runProtocol(p, Protocol::SComa, *wl);
    EXPECT_EQ(s.scomaAllocations, 3u);
    EXPECT_EQ(s.scomaReplacements, 0u);
    // Sweeps 2 and 3 are pure page-cache (local memory) hits.
    EXPECT_GE(s.pageCacheHits, 2u * 3u * p.blocksPerPage());
    EXPECT_EQ(s.refetches, 0u);
}

TEST(MachineSComa, ThrashesWhenRemotePagesExceedFrames)
{
    Params p = test::smallParams();
    // 8 remote pages vs 4 frames, swept repeatedly with LRM: every
    // sweep replaces pages.
    auto wl = makeHotRemoteReuse(p, 8, 3);
    RunStats s = runProtocol(p, Protocol::SComa, *wl);
    EXPECT_GT(s.scomaReplacements, 8u);
    EXPECT_GT(s.flushedBlocks, 0u);
    // Replaced pages are flushed (notifying), so nothing counts as a
    // refetch.
    EXPECT_EQ(s.refetches, 0u);
}

TEST(MachineSComa, SlowerThanCcNumaForCommunicationPages)
{
    // em3d/fft-style producer-consumer traffic: S-COMA pays page
    // allocations for data that is invalidated before reuse.
    Params p = test::smallParams();
    auto wl = makeProducerConsumer(p, 6, 4);
    RunStats sc = runProtocol(p, Protocol::SComa, *wl);
    RunStats cc = runProtocol(p, Protocol::CCNuma, *wl);
    EXPECT_GT(sc.scomaAllocations, 0u);
    EXPECT_GE(sc.ticks, cc.ticks);
}

TEST(MachineSComa, FasterThanCcNumaForReusePages)
{
    Params p = test::smallParams();
    // 3 pages fit the page cache but overflow nothing else; 6 sweeps
    // of reuse dominate.
    auto wl = makeHotRemoteReuse(p, 3, 6);
    RunStats sc = runProtocol(p, Protocol::SComa, *wl);
    RunStats cc = runProtocol(p, Protocol::CCNuma, *wl);
    // 3 pages = 48 blocks > 32-block block cache: CC-NUMA refetches
    // every sweep while S-COMA hits local memory.
    EXPECT_LT(sc.ticks, cc.ticks);
}

TEST(MachineSComa, WriteToReadOnlyTagUpgrades)
{
    Params p = test::smallParams();
    auto wl = std::make_unique<VectorWorkload>("upg", 4);
    Addr x = 0;
    wl->push(2, Ref::touchOf(x)); // home node 1
    wl->pushBarrierAll();
    wl->push(0, Ref::mem(x, false, 0)); // fetch read-only
    wl->push(0, Ref::mem(x, true, 0));  // upgrade the fine tag
    wl->seal();
    RunStats s = runProtocol(p, Protocol::SComa, *wl);
    EXPECT_GE(s.upgrades, 1u);
}

TEST(MachineSComa, PrivateDataNeverTouchesThePageCache)
{
    Params p = test::smallParams();
    auto wl = makePrivateLoop(p, 2, 2);
    RunStats s = runProtocol(p, Protocol::SComa, *wl);
    EXPECT_EQ(s.scomaAllocations, 0u);
    EXPECT_EQ(s.pageCacheHits, 0u);
    EXPECT_EQ(s.remoteFetches, 0u);
}

} // namespace rnuma
