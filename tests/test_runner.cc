/** @file Tests for the comparison runner. */

#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "workload/micro.hh"

#include "test_util.hh"

namespace rnuma
{

TEST(Runner, BaselineUsesInfiniteBlockCache)
{
    Params p = test::smallParams();
    auto wl = makeHotRemoteReuse(p, 8, 3);
    RunStats base = runInfiniteBaseline(p, *wl);
    EXPECT_EQ(base.refetches, 0u);
}

TEST(Runner, CompareRunsAllFourConfigurations)
{
    Params p = test::smallParams();
    auto wl = makeHotRemoteReuse(p, 4, 3);
    ProtocolComparison c = compareProtocols(p, *wl);
    EXPECT_GT(c.baseline.ticks, 0u);
    EXPECT_GT(c.ccNuma.ticks, 0u);
    EXPECT_GT(c.sComa.ticks, 0u);
    EXPECT_GT(c.rNuma.ticks, 0u);
    // Normalized values are relative to the infinite baseline.
    EXPECT_NEAR(c.normCC(),
                static_cast<double>(c.ccNuma.ticks) /
                    static_cast<double>(c.baseline.ticks),
                1e-12);
    EXPECT_LE(c.bestOfBase(), c.normCC());
    EXPECT_LE(c.bestOfBase(), c.normSC());
}

TEST(Runner, ResetsWorkloadBetweenRuns)
{
    Params p = test::smallParams();
    auto wl = makePrivateLoop(p, 1, 2);
    RunStats a = runProtocol(p, Protocol::CCNuma, *wl);
    // Without the reset inside runProtocol the second run would see
    // exhausted streams and do nothing.
    RunStats b = runProtocol(p, Protocol::CCNuma, *wl);
    EXPECT_EQ(a.refs, b.refs);
    EXPECT_GT(b.refs, 0u);
}

} // namespace rnuma
