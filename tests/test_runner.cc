/**
 * @file
 * Tests for the comparison runner: the registry-driven
 * ComparisonMatrix (N-way, serial and parallel), its parity with the
 * legacy four-way ProtocolComparison shim, the winner/regret
 * summary, the unknown-spec error paths, and the degenerate
 * zero-tick-baseline case (NaN, not a panic).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "sim/runner.hh"
#include "workload/micro.hh"
#include "workload/registry.hh"

#include "test_util.hh"

namespace rnuma
{

TEST(Runner, BaselineUsesInfiniteBlockCache)
{
    Params p = test::smallParams();
    auto wl = makeHotRemoteReuse(p, 8, 3);
    RunStats base = runInfiniteBaseline(p, *wl);
    EXPECT_EQ(base.refetches, 0u);
}

TEST(Runner, CompareRunsAllFourConfigurations)
{
    Params p = test::smallParams();
    auto wl = makeHotRemoteReuse(p, 4, 3);
    ProtocolComparison c = compareProtocols(p, *wl);
    EXPECT_GT(c.baseline.ticks, 0u);
    EXPECT_GT(c.ccNuma.ticks, 0u);
    EXPECT_GT(c.sComa.ticks, 0u);
    EXPECT_GT(c.rNuma.ticks, 0u);
    // Normalized values are relative to the infinite baseline.
    EXPECT_NEAR(c.normCC(),
                static_cast<double>(c.ccNuma.ticks) /
                    static_cast<double>(c.baseline.ticks),
                1e-12);
    EXPECT_LE(c.bestOfBase(), c.normCC());
    EXPECT_LE(c.bestOfBase(), c.normSC());
}

TEST(Runner, ResetsWorkloadBetweenRuns)
{
    Params p = test::smallParams();
    auto wl = makePrivateLoop(p, 1, 2);
    RunStats a = runProtocol(p, Protocol::CCNuma, *wl);
    // Without the reset inside runProtocol the second run would see
    // exhausted streams and do nothing.
    RunStats b = runProtocol(p, Protocol::CCNuma, *wl);
    EXPECT_EQ(a.refs, b.refs);
    EXPECT_GT(b.refs, 0u);
}

TEST(ComparisonMatrixTest, DefaultSelectionCoversTheRegistry)
{
    Params p = test::smallParams();
    auto wl = makeHotRemoteReuse(p, 6, 3);
    ComparisonMatrix m = compareAll(p, *wl);
    auto all = ProtocolRegistry::global().all();
    ASSERT_EQ(m.entries.size(), all.size());
    for (std::size_t i = 0; i < all.size(); ++i) {
        EXPECT_EQ(m.entries[i].id, all[i]->id);
        EXPECT_EQ(m.entries[i].name, all[i]->displayName);
        EXPECT_GT(m.entries[i].stats.ticks, 0u) << all[i]->id;
        EXPECT_EQ(m.entries[i].stats.refs, m.baseline.refs)
            << all[i]->id;
    }
}

TEST(ComparisonMatrixTest, ThreeWayRestrictionMatchesTheLegacyShim)
{
    // The parity contract: a matrix restricted to the three
    // built-ins is bit-identical — RunStats and normalized ratios —
    // to the four-field compareProtocols() it replaced.
    Params p = test::smallParams();
    auto wl_m = makeHotRemoteReuse(p, 6, 3);
    auto wl_c = makeHotRemoteReuse(p, 6, 3);
    ComparisonMatrix m = compareAll(
        p, *wl_m, protocolSpecs({"ccnuma", "scoma", "rnuma"}));
    ProtocolComparison c = compareProtocols(p, *wl_c);

    EXPECT_EQ(m.baseline, c.baseline);
    EXPECT_EQ(m.at("ccnuma").stats, c.ccNuma);
    EXPECT_EQ(m.at("scoma").stats, c.sComa);
    EXPECT_EQ(m.at("rnuma").stats, c.rNuma);
    EXPECT_EQ(m.norm("ccnuma"), c.normCC());
    EXPECT_EQ(m.norm("scoma"), c.normSC());
    EXPECT_EQ(m.norm("rnuma"), c.normRN());
    EXPECT_EQ(m.bestOfBase(), c.bestOfBase());
    EXPECT_EQ(m.bestOf({"ccnuma", "scoma"}), c.bestOfBase());
}

TEST(ComparisonMatrixTest, SerialAndParallelAreBitIdentical)
{
    Params p = test::smallParams();
    auto make = [&p] {
        return std::unique_ptr<Workload>(makeHotRemoteReuse(p, 6, 3));
    };
    auto wl = make();
    ComparisonMatrix serial = compareAll(p, *wl);
    for (std::size_t jobs : {1u, 2u, 8u}) {
        ComparisonMatrix par = compareAll(p, make, {}, jobs);
        EXPECT_EQ(par.baseline, serial.baseline) << "jobs=" << jobs;
        ASSERT_EQ(par.entries.size(), serial.entries.size());
        for (std::size_t i = 0; i < serial.entries.size(); ++i) {
            EXPECT_EQ(par.entries[i].id, serial.entries[i].id);
            EXPECT_EQ(par.entries[i].stats, serial.entries[i].stats)
                << serial.entries[i].id << " at jobs=" << jobs;
        }
    }
    // And the parallel legacy shim agrees with the serial one.
    auto wl_c = make();
    ProtocolComparison cs = compareProtocols(p, *wl_c);
    ProtocolComparison cp = compareProtocols(p, make, 4);
    EXPECT_EQ(cs.baseline, cp.baseline);
    EXPECT_EQ(cs.ccNuma, cp.ccNuma);
    EXPECT_EQ(cs.sComa, cp.sComa);
    EXPECT_EQ(cs.rNuma, cp.rNuma);
}

TEST(ComparisonMatrixTest, RegistryAppsAreDeterministicAcrossJobs)
{
    // The differential-determinism safety net under the hot-path
    // layout work (arena directory, SoA page cache, auto-sized
    // calendar): every registered protocol on real application
    // generators, serial vs jobs=4, must produce bit-identical
    // RunStats — all 28 counters, via RunStats::operator== — at more
    // than one scale, so a data-layout change that silently breaks
    // reproducibility cannot land.
    Params p = test::smallParams();
    for (const char *app : {"barnes", "em3d", "moldyn"}) {
        for (double scale : {0.02, 0.05}) {
            auto make = [&]() -> std::unique_ptr<Workload> {
                return makeApp(app, p, scale, /*seed=*/7);
            };
            auto wl = make();
            ComparisonMatrix serial = compareAll(p, *wl);
            ComparisonMatrix par = compareAll(p, make, {}, 4);
            EXPECT_EQ(par.baseline, serial.baseline)
                << app << " scale " << scale;
            ASSERT_EQ(par.entries.size(), serial.entries.size());
            for (std::size_t i = 0; i < serial.entries.size(); ++i) {
                EXPECT_EQ(par.entries[i].id, serial.entries[i].id);
                EXPECT_EQ(par.entries[i].stats,
                          serial.entries[i].stats)
                    << app << " scale " << scale << " "
                    << serial.entries[i].id;
            }
        }
    }
}

TEST(ComparisonMatrixTest, WinnerAndRegretAreCoherent)
{
    Params p = test::smallParams();
    auto wl = makeHotRemoteReuse(p, 6, 3);
    ComparisonMatrix m = compareAll(p, *wl);
    const ComparisonEntry &w = m.winner();
    EXPECT_DOUBLE_EQ(m.regret(w.id), 0.0);
    for (const ComparisonEntry &e : m.entries) {
        EXPECT_GE(m.regret(e.id), 0.0) << e.id;
        EXPECT_GE(e.stats.ticks, w.stats.ticks) << e.id;
    }
}

TEST(ComparisonMatrixTest, UnknownSpecIdsAreErrors)
{
    Params p = test::smallParams();
    auto wl = makeHotRemoteReuse(p, 4, 2);
    // Resolving an unknown name for the spec list throws.
    EXPECT_THROW(protocolSpecs({"ccnuma", "no-such-protocol"}),
                 std::runtime_error);
    // Looking up an id that did not run throws too.
    ComparisonMatrix m =
        compareAll(p, *wl, protocolSpecs({"ccnuma"}));
    EXPECT_EQ(m.find("scoma"), nullptr);
    EXPECT_THROW(m.at("scoma"), std::runtime_error);
    EXPECT_THROW(m.norm("scoma"), std::runtime_error);
    EXPECT_THROW(m.bestOfBase(), std::runtime_error);
}

TEST(ComparisonMatrixTest, AdHocSpecsNeedNoRegistration)
{
    // Figure 8-style variants run through the same matrix without
    // touching the global registry.
    Params p = test::smallParams();
    auto wl = makeHotRemoteReuse(p, 6, 3);
    ComparisonMatrix m =
        compareAll(p, *wl, {staticThresholdSpec(2)});
    ASSERT_EQ(m.entries.size(), 1u);
    EXPECT_EQ(m.entries[0].id, "rnuma-t2");
    EXPECT_GT(m.norm("rnuma-t2"), 0.0);
}

TEST(ComparisonMatrixTest, ZeroTickBaselineIsNaNNotAPanic)
{
    // Degenerate one-reference workloads at tiny scales can in
    // principle produce a zero-tick baseline; normalized values must
    // be defined (NaN: a flagged cell) instead of tripping an
    // assertion mid-figure.
    ComparisonMatrix m;
    m.baseline = RunStats{}; // ticks == 0
    ComparisonEntry e;
    e.id = "x";
    e.stats.ticks = 5;
    m.entries.push_back(e);
    EXPECT_TRUE(std::isnan(m.norm("x")));
    EXPECT_TRUE(std::isnan(m.bestOf({"x"})));
    // Regret compares against the winner, not the baseline, so it
    // stays defined even here.
    EXPECT_DOUBLE_EQ(m.regret("x"), 0.0);

    ProtocolComparison c;
    c.ccNuma.ticks = 3;
    c.sComa.ticks = 4;
    c.rNuma.ticks = 5;
    EXPECT_TRUE(std::isnan(c.normCC()));
    EXPECT_TRUE(std::isnan(c.normSC()));
    EXPECT_TRUE(std::isnan(c.normRN()));
    EXPECT_TRUE(std::isnan(c.bestOfBase()));
}

} // namespace rnuma
