/**
 * @file
 * System-level property tests: the Section 3.2 competitive bound on
 * the adversarial reference stream, directory invariants after
 * arbitrary runs, and cross-protocol sanity properties.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/analytic_model.hh"
#include "proto/directory.hh"
#include "sim/machine.hh"
#include "sim/runner.hh"
#include "workload/micro.hh"
#include "workload/registry.hh"

#include "test_util.hh"

namespace rnuma
{

TEST(Properties, Eq1Eq2PredictAdversaryOverheads)
{
    // The Section 3.2 worst case: pages accumulate exactly the
    // threshold's worth of refetches, relocate, and die. EQ 1 and
    // EQ 2 predict R-NUMA's overhead ratio against each base
    // protocol at the configured threshold; the measured ratios
    // (relative to the infinite-block-cache ideal) must respect the
    // predictions with slack for the contention effects the model
    // ignores.
    Params p = test::smallParams(); // threshold 4
    auto wl = makeAdversary(p, 12, p.relocationThreshold + 1);
    ProtocolComparison c = compareProtocols(p, *wl);

    double o_cc = c.normCC() - 1.0;
    double o_sc = c.normSC() - 1.0;
    double o_rn = c.normRN() - 1.0;
    ASSERT_GT(o_cc, 0.0);
    ASSERT_GT(o_sc, 0.0);

    // Structural per-page costs in the measured system. The paper's
    // model compares "extra overheads" against the ideal machine:
    //  - CC-NUMA's extra is T refetches (the soft map fault is paid
    //    by the ideal baseline too and cancels);
    //  - S-COMA's extra is one allocation, *minus* the map fault it
    //    replaces;
    //  - R-NUMA's extra is T refetches plus a relocation plus the
    //    page's eventual replacement (both full page operations).
    double cr = static_cast<double>(p.remoteFetch());
    double page_op = static_cast<double>(p.pageOpCost(1));
    double trap = static_cast<double>(p.softTrap);
    double T = static_cast<double>(p.relocationThreshold);
    double rn_pred = T * cr + 2.0 * page_op;
    double cc_pred = T * cr;
    double sc_pred = page_op - trap;

    EXPECT_LE(o_rn, rn_pred / cc_pred * o_cc * 1.35)
        << "EQ 1 violated: measured ratio " << o_rn / o_cc
        << " vs predicted " << rn_pred / cc_pred;
    EXPECT_LE(o_rn, rn_pred / sc_pred * o_sc * 1.35)
        << "EQ 2 violated: measured ratio " << o_rn / o_sc
        << " vs predicted " << rn_pred / sc_pred;
}

TEST(Properties, BoundedAtEmpiricalOptimalThreshold)
{
    // EQ 3's structure: choosing T at the intersection of the two
    // overhead curves bounds R-NUMA's worst case by a computable
    // constant independent of how long the adversary runs.
    Params p = test::smallParams();
    double cr = static_cast<double>(p.remoteFetch());
    double page_op = static_cast<double>(p.pageOpCost(1));
    double sc_pred = page_op - static_cast<double>(p.softTrap);
    p.relocationThreshold =
        static_cast<std::size_t>(sc_pred / cr + 0.5);
    ASSERT_GE(p.relocationThreshold, 1u);

    auto wl = makeAdversary(p, 12, p.relocationThreshold + 1);
    ProtocolComparison c = compareProtocols(p, *wl);
    double o_cc = c.normCC() - 1.0;
    double o_sc = c.normSC() - 1.0;
    double o_rn = c.normRN() - 1.0;
    double best = std::min(o_cc, o_sc);
    ASSERT_GT(best, 0.0);

    double T = static_cast<double>(p.relocationThreshold);
    double bound = (T * cr + 2.0 * page_op) /
        std::min(T * cr, sc_pred);
    EXPECT_LE(o_rn, bound * best * 1.35)
        << "R-NUMA overhead " << o_rn << " vs best " << best
        << " exceeds the adjusted competitive bound " << bound;
}

TEST(Properties, AdversaryTriggersTheFullLifecycle)
{
    Params p = test::smallParams();
    auto wl = makeAdversary(p, 12, p.relocationThreshold + 1);
    RunStats s = runProtocol(p, Protocol::RNuma, *wl);
    // Pages relocate and later get replaced (12 pages vs 4 frames).
    EXPECT_GT(s.relocations, 4u);
    EXPECT_GT(s.scomaReplacements, 0u);
}

TEST(Properties, RnumaNeverWorseThanBothOnMicrobenchmarks)
{
    // Section 6: "R-NUMA never performs worse than both CC-NUMA and
    // S-COMA." Check on both extremes of the microbenchmark space.
    Params p = test::smallParams();
    for (auto make : {+[](const Params &pp) {
                          return makeHotRemoteReuse(pp, 6, 6);
                      },
                      +[](const Params &pp) {
                          return makeProducerConsumer(pp, 4, 5);
                      }}) {
        auto wl = make(p);
        ProtocolComparison c = compareProtocols(p, *wl);
        double worst = std::max(c.normCC(), c.normSC());
        EXPECT_LE(c.normRN(), worst * 1.05)
            << "workload " << wl->name();
    }
}

namespace
{

void
checkDirectoryInvariants(Machine &m, const Params &p)
{
    const Directory &dir = m.protocol().directory();
    (void)p;
    // Walk every entry via peek on the machine's recorded pages is
    // not exposed; instead re-verify through nodeOwns consistency on
    // a sample of blocks would need the map. The Directory exposes
    // size only; rely on per-entry checks during the run (panics) and
    // check global sanity here.
    EXPECT_GE(dir.size(), 0u);
}

} // namespace

TEST(Properties, OwnerImpliesSharerBit)
{
    Params p = test::smallParams();
    auto wl = makeRwSharing(p, 60);
    wl->reset();
    Machine m(p, Protocol::RNuma, *wl);
    m.run();
    checkDirectoryInvariants(m, p);
    // Spot-check the shared page's blocks through the public API.
    for (std::size_t blk = 0; blk < p.blocksPerPage(); ++blk) {
        Addr a = static_cast<Addr>(blk) * p.blockSize;
        const DirEntry *e = m.protocol().directory().peek(a);
        if (!e || !e->hasOwner())
            continue;
        EXPECT_TRUE(e->sharers.test(e->owner))
            << "owner without sharer bit at block " << a;
        EXPECT_EQ(e->sharerCount(), 1u)
            << "dirty owner must be the sole sharer";
    }
}

/** Cross-protocol conservation sweep over apps and protocols. */
class ConservationSweep
    : public ::testing::TestWithParam<
          std::tuple<std::string, Protocol>>
{
};

TEST_P(ConservationSweep, MissKindsAndServiceCountsAddUp)
{
    auto [app, proto] = GetParam();
    Params p = test::paperParams();
    auto wl = makeApp(app, p, 0.1);
    RunStats s = runProtocol(p, proto, *wl);
    EXPECT_EQ(s.coldMisses + s.coherenceMisses + s.refetches,
              s.remoteFetches);
    // Every reference is a hit, an upgrade, or a miss.
    EXPECT_EQ(s.refs, s.l1Hits + s.l1Misses + s.upgrades);
    // Stall time is bounded by total time across CPUs.
    EXPECT_LE(s.stallCycles,
              s.ticks * p.numCpus());
}

INSTANTIATE_TEST_SUITE_P(
    AppsByProtocol, ConservationSweep,
    ::testing::Combine(::testing::Values("barnes", "em3d", "moldyn",
                                         "radix", "ocean"),
                       ::testing::Values(Protocol::CCNuma,
                                         Protocol::SComa,
                                         Protocol::RNuma)),
    [](const ::testing::TestParamInfo<
        std::tuple<std::string, Protocol>> &info) {
        // Readable, filterable names: barnes_CCNuma, radix_RNuma...
        const char *proto =
            std::get<1>(info.param) == Protocol::CCNuma ? "CCNuma"
            : std::get<1>(info.param) == Protocol::SComa ? "SComa"
                                                         : "RNuma";
        return std::get<0>(info.param) + "_" + proto;
    });

} // namespace rnuma
