/**
 * @file
 * Determinism-equivalence harness for the conservative parallel
 * intra-cell engine (--intra-jobs, sim/machine_parallel.cc).
 *
 * Three properties pin the engine:
 *
 *  1. Determinism — for a fixed --intra-jobs N, two runs of the same
 *     cell produce bit-identical RunStats (the whole struct, via
 *     operator==). The engine's schedule is a pure function of the
 *     inputs; any data race or iteration-order leak breaks this
 *     first.
 *
 *  2. Structural exactness — refs and barriers match the serial
 *     engine exactly: every CPU consumes its whole stream exactly
 *     once and barrier episodes are a property of the stream, not of
 *     the interleaving.
 *
 *  3. Protocol-event equivalence — remote fetches, refetches,
 *     relocations, invalidations, and network message counts stay
 *     within a small tolerance of the serial run. They are *not*
 *     exact: confined events in different partitions no longer
 *     interleave in global time order, so L1 contents meet
 *     invalidations on a slightly different schedule (bounded by the
 *     window width) and miss classifications can shift at the
 *     margin. docs/ARCHITECTURE.md ("Parallel intra-cell
 *     simulation") spells out the argument; the driver's
 *     --compare-events gate applies the same contract to whole
 *     figures.
 *
 * The matrix crosses {barnes, em3d, evict-storm} x every registered
 * protocol x {constant, mesh-2d}, plus a randomized window-width
 * fuzz against the serial oracle.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "proto/registry.hh"
#include "sim/runner.hh"
#include "workload/micro.hh"
#include "workload/registry.hh"

#include "test_util.hh"

namespace rnuma
{

namespace
{

constexpr double appScale = 0.08; // small inputs for CI speed

/** The three matrix workloads on the paper machine. */
std::unique_ptr<VectorWorkload>
makeMatrixWorkload(const std::string &name, const Params &p)
{
    if (name == "evict-storm") {
        // Wider than the page-cache frame budget so the
        // relocate/evict ping-pong actually happens (the policy
        // protocols diverge, and relocation prediction in the
        // confinement probe gets exercised).
        return makeEvictionStorm(p, p.pageCacheFrames() + 24, 4);
    }
    return makeApp(name, p, appScale);
}

RunStats
runAtJobs(Params p, const ProtocolSpec &spec, Workload &wl,
          std::size_t jobs, std::size_t window = 0)
{
    p.intraJobs = jobs;
    if (window != 0)
        p.intraWindow = window;
    return runProtocol(p, spec, wl);
}

/**
 * |a - b| within max(absSlack, rel * serial): absolute slack for
 * small counters where one reordered miss is a large fraction,
 * relative slack for the bulk counters.
 */
void
expectNear(std::uint64_t serial, std::uint64_t par,
           const std::string &what, const std::string &label,
           double rel = 0.05, std::uint64_t absSlack = 48)
{
    std::uint64_t diff = serial > par ? serial - par : par - serial;
    std::uint64_t slack = std::max<std::uint64_t>(
        absSlack,
        static_cast<std::uint64_t>(static_cast<double>(serial) * rel));
    EXPECT_LE(diff, slack)
        << label << ": " << what << " serial=" << serial
        << " parallel=" << par;
}

/** The --compare-events contract, applied to one pair of runs. */
void
expectEventEquivalent(const RunStats &serial, const RunStats &par,
                      const std::string &label)
{
    // Structural counters: exact.
    EXPECT_EQ(serial.refs, par.refs) << label;
    EXPECT_EQ(serial.barriers, par.barriers) << label;

    // Protocol events: equivalent within the window-reorder bound.
    // The cold/coherence/refetch classification of those fetches is
    // deliberately NOT gated here, matching compareEventCounts(): a
    // miss is classified from directory state the instant it is
    // processed, so reordering moves misses between classes even
    // when the gated total is equivalent.
    expectNear(serial.remoteFetches, par.remoteFetches,
               "remoteFetches", label);
    expectNear(serial.relocations, par.relocations, "relocations",
               label);
    expectNear(serial.invalidationsSent, par.invalidationsSent,
               "invalidationsSent", label);
    expectNear(serial.scomaAllocations, par.scomaAllocations,
               "scomaAllocations", label);
    expectNear(serial.net.totalMessages(), par.net.totalMessages(),
               "net.totalMessages", label);

    // Miss-kind conservation must hold in the parallel engine too.
    EXPECT_EQ(par.coldMisses + par.coherenceMisses + par.refetches,
              par.remoteFetches)
        << label;
}

struct MatrixCase
{
    std::string workload;
    std::string network;
};

std::string
caseName(const ::testing::TestParamInfo<MatrixCase> &info)
{
    std::string s = info.param.workload + "_" + info.param.network;
    std::replace(s.begin(), s.end(), '-', '_');
    return s;
}

} // namespace

class ParallelSimMatrix : public ::testing::TestWithParam<MatrixCase>
{
};

/**
 * The full matrix: every registered protocol runs the cell at
 * --intra-jobs 2 and 4, is deterministic across repeats, and stays
 * event-equivalent to the serial oracle.
 */
TEST_P(ParallelSimMatrix, DeterministicAndEventEquivalent)
{
    Params p = test::paperParams();
    p.networkModel = GetParam().network;
    auto wl = makeMatrixWorkload(GetParam().workload, p);
    ASSERT_GT(wl->totalRefs(), 0u);

    for (const ProtocolSpec *spec : ProtocolRegistry::global().all()) {
        const std::string label =
            GetParam().workload + "/" + GetParam().network + "/" +
            spec->id;
        RunStats serial = runAtJobs(p, *spec, *wl, 1);

        for (std::size_t jobs : {std::size_t{2}, std::size_t{4}}) {
            RunStats a = runAtJobs(p, *spec, *wl, jobs);
            RunStats b = runAtJobs(p, *spec, *wl, jobs);
            EXPECT_TRUE(a == b)
                << label << ": --intra-jobs " << jobs
                << " is not deterministic across repeated runs";
            expectEventEquivalent(serial, a,
                                  label + "/jobs" +
                                      std::to_string(jobs));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ParallelSimMatrix,
    ::testing::Values(MatrixCase{"barnes", "constant"},
                      MatrixCase{"barnes", "mesh-2d"},
                      MatrixCase{"em3d", "constant"},
                      MatrixCase{"em3d", "mesh-2d"},
                      MatrixCase{"evict-storm", "constant"},
                      MatrixCase{"evict-storm", "mesh-2d"}),
    caseName);

/**
 * Randomized window-boundary fuzz: the equivalence contract must
 * hold for any window width, not just the default. Wide windows
 * defer more work to the coordinator per round; width 1 makes
 * almost every round a boundary. Either way the serial oracle's
 * event counts must be reproduced. Fixed seed: the *widths* are
 * arbitrary, the test is not.
 */
TEST(ParallelSimFuzz, WindowWidthsAgainstSerialOracle)
{
    Params p = test::paperParams();
    auto wl = makeApp("em3d", p, appScale);
    const ProtocolSpec &spec = builtinSpec(Protocol::RNuma);
    RunStats serial = runAtJobs(p, spec, *wl, 1);

    std::mt19937 rng(0xF97u);
    std::uniform_int_distribution<std::size_t> width(1, 96);
    std::uniform_int_distribution<int> jobsPick(0, 1);
    for (int i = 0; i < 12; ++i) {
        std::size_t w = width(rng);
        std::size_t jobs = jobsPick(rng) ? 2 : 4;
        RunStats par = runAtJobs(p, spec, *wl, jobs, w);
        expectEventEquivalent(serial, par,
                              "em3d/window" + std::to_string(w) +
                                  "/jobs" + std::to_string(jobs));
    }
}

/** Window width must not change the run at --intra-jobs 1. */
TEST(ParallelSimFuzz, SerialIgnoresWindow)
{
    Params p = test::smallParams();
    auto wl = makeHotRemoteReuse(p, 6, 3);
    const ProtocolSpec &spec = builtinSpec(Protocol::RNuma);
    RunStats a = runAtJobs(p, spec, *wl, 1, 1);
    RunStats b = runAtJobs(p, spec, *wl, 1, 64);
    EXPECT_TRUE(a == b);
}

/**
 * The two-node machine at --intra-jobs 2 is the worst case for the
 * confinement probe (every partition is a single node; anything
 * remote defers), so it leans hardest on the coordinator path.
 */
TEST(ParallelSimEdge, SingleNodePartitions)
{
    Params p = test::smallParams();
    auto wl = makeEvictionStorm(p, 8, 6);
    for (Protocol proto : {Protocol::CCNuma, Protocol::SComa,
                           Protocol::RNuma}) {
        const ProtocolSpec &spec = builtinSpec(proto);
        RunStats serial = runAtJobs(p, spec, *wl, 1);
        RunStats par = runAtJobs(p, spec, *wl, 2);
        RunStats par2 = runAtJobs(p, spec, *wl, 2);
        EXPECT_TRUE(par == par2) << spec.id;
        expectEventEquivalent(serial, par,
                              std::string("evict-storm-small/") +
                                  spec.id);
    }
}

} // namespace rnuma
