/**
 * @file
 * Geometry audit of the workload generators (ROADMAP item surfaced
 * by the PR-1 fmm anti-aliasing fix): the Table 3 generators bake in
 * layout constants — moldyn's 64-byte particle record, fmm's
 * 128-byte multipole expansion, cholesky's 96-block panel sample,
 * radix's one-page-per-CPU stripes — that historically assumed the
 * paper machine's block/page geometry and silently read or wrote
 * past their allocations on other configurations.
 *
 * StreamBuilder::finish() now audits every generated address against
 * the allocator's high-water mark, so any such assumption fails at
 * generation time. These tests pin the smallest viable
 * configurations of each failure class: blocks wider than the record
 * types (moldyn, fmm, cholesky), blocks narrower than a radix key,
 * and machines wider than the scaled arrays (radix's page stripes).
 * em3d is audited clean — its record size *is* the block size — and
 * rides along as the control.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/params.hh"
#include "sim/runner.hh"
#include "workload/registry.hh"

#include "test_util.hh"

namespace rnuma
{

namespace
{

/** Blocks wider than moldyn's particle and wider than half of
 * fmm's cell: the "record spans two blocks" assumption breaks. */
Params
bigBlockParams()
{
    Params p;
    p.numNodes = 2;
    p.cpusPerNode = 2;
    p.blockSize = 256;
    p.pageSize = 1024;
    p.l1Size = 1024;
    p.blockCacheSize = 2048;
    p.rnumaBlockCacheSize = 256;
    p.pageCacheSize = 4 * 1024;
    p.relocationThreshold = 4;
    p.validate();
    return p;
}

/** Blocks narrower than a 4-byte radix key. */
Params
tinyBlockParams()
{
    Params p;
    p.numNodes = 2;
    p.cpusPerNode = 2;
    p.blockSize = 4;
    p.pageSize = 512;
    p.l1Size = 512;
    p.blockCacheSize = 512;
    p.rnumaBlockCacheSize = 64;
    p.pageCacheSize = 4 * 512;
    p.relocationThreshold = 4;
    p.validate();
    return p;
}

/** More CPUs than a hundredth-scale input has array pages. */
Params
wideMachineParams()
{
    Params p;
    p.numNodes = 8;
    p.cpusPerNode = 2;
    p.blockSize = 32;
    p.pageSize = 512;
    p.l1Size = 512;
    p.blockCacheSize = 1024;
    p.rnumaBlockCacheSize = 64;
    p.pageCacheSize = 4 * 512;
    p.relocationThreshold = 4;
    p.validate();
    return p;
}

/**
 * Generate @p app at the smallest supported scale and check the
 * recorded address-space bound; then actually run it under every
 * protocol, because in-bounds generation can still trip machine
 * invariants (that is how the original fmm pool hang surfaced).
 */
void
generateAndRunEverywhere(const char *app, const Params &p)
{
    SCOPED_TRACE(app);
    std::unique_ptr<VectorWorkload> wl = makeApp(app, p, 0.01);
    ASSERT_TRUE(wl);
    EXPECT_GE(wl->memRefCount(), 1u);
    ASSERT_GT(wl->addrLimit(), 0u);
    for (CpuId c = 0; c < wl->numCpus(); ++c) {
        for (std::size_t i = 0; i < wl->size(c); ++i) {
            const Ref &r = wl->at(c, i);
            if (r.kind == RefKind::Mem ||
                r.kind == RefKind::InitTouch) {
                ASSERT_LT(r.addr, wl->addrLimit())
                    << "cpu " << c << " entry " << i;
            }
        }
    }
    for (Protocol proto :
         {Protocol::CCNuma, Protocol::SComa, Protocol::RNuma}) {
        RunStats s = runProtocol(p, proto, *wl);
        EXPECT_GT(s.refs, 0u) << protocolName(proto);
        EXPECT_GT(s.ticks, 0u) << protocolName(proto);
    }
}

const char *const auditedApps[] = {"em3d", "radix", "moldyn", "fmm",
                                   "cholesky"};

} // namespace

TEST(GeneratorGeometry, SurvivesBlocksWiderThanRecords)
{
    for (const char *app : auditedApps)
        generateAndRunEverywhere(app, bigBlockParams());
}

TEST(GeneratorGeometry, SurvivesBlocksNarrowerThanAKey)
{
    for (const char *app : auditedApps)
        generateAndRunEverywhere(app, tinyBlockParams());
}

TEST(GeneratorGeometry, SurvivesMachinesWiderThanTheInput)
{
    for (const char *app : auditedApps)
        generateAndRunEverywhere(app, wideMachineParams());
}

TEST(GeneratorGeometry, SmallMachineAtHundredthScaleStaysInBounds)
{
    for (const char *app : auditedApps)
        generateAndRunEverywhere(app, test::smallParams());
}

TEST(GeneratorGeometry, BaseMachineStreamsCarryTheAuditBound)
{
    // The paper machine itself: every generator records a bound and
    // honors it (finish() would have panicked otherwise).
    Params p = Params::base();
    for (const char *app : auditedApps) {
        std::unique_ptr<VectorWorkload> wl = makeApp(app, p, 0.02);
        ASSERT_GT(wl->addrLimit(), 0u) << app;
        EXPECT_GE(wl->memRefCount(), 1u) << app;
    }
}

} // namespace rnuma
