/**
 * @file
 * Tests for the network registry (net/registry.hh): built-in specs,
 * name canonicalization, makeNetwork() dispatch, the model-derived
 * remote-fetch latency, Params::validate()'s geometry rejection, and
 * the same concurrent registration/lookup hammer the protocol
 * registry carries — the registries share a locking discipline and
 * must share its proof.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "net/registry.hh"
#include "net/topology.hh"

namespace rnuma
{

TEST(NetworkRegistry, BuiltinsResolveByIdAndDisplayName)
{
    EXPECT_NE(findNetworkSpec("constant"), nullptr);
    EXPECT_NE(findNetworkSpec("mesh-2d"), nullptr);
    EXPECT_NE(findNetworkSpec("fat-tree"), nullptr);
    // Case-insensitive, display-name spellings included.
    EXPECT_EQ(networkSpec("2D Mesh").id, "mesh-2d");
    EXPECT_EQ(networkSpec("Fat Tree").id, "fat-tree");
    EXPECT_EQ(networkSpec("CONSTANT").id, "constant");
    EXPECT_EQ(findNetworkSpec("token-ring"), nullptr);
    EXPECT_THROW(networkSpec("token-ring"), std::runtime_error);
}

TEST(NetworkRegistry, CanonicalIdNormalizesSpellings)
{
    EXPECT_EQ(canonicalNetworkId("Mesh"), "mesh-2d");
    EXPECT_EQ(canonicalNetworkId("2d mesh"), "mesh-2d");
    EXPECT_EQ(canonicalNetworkId("FatTree"), "fat-tree");
    EXPECT_EQ(canonicalNetworkId("Constant"), "constant");
    // Unknown labels pass through lowercased (the pre-v5 baseline
    // shim relies on this being total).
    EXPECT_EQ(canonicalNetworkId("Hypercube"), "hypercube");
}

TEST(NetworkRegistry, MakeNetworkDispatchesOnParams)
{
    Params p = Params::base();
    auto constant = makeNetwork(p);
    EXPECT_NE(dynamic_cast<Network *>(constant.get()), nullptr);
    EXPECT_EQ(constant->meanLatency(), p.netLatency);

    p.networkModel = "mesh-2d";
    auto mesh = makeNetwork(p);
    EXPECT_NE(dynamic_cast<MeshNetwork *>(mesh.get()), nullptr);
    EXPECT_EQ(mesh->nodes(), p.numNodes);

    p.networkModel = "fat-tree";
    auto tree = makeNetwork(p);
    EXPECT_NE(dynamic_cast<FatTreeNetwork *>(tree.get()), nullptr);

    p.networkModel = "token-ring";
    EXPECT_THROW(makeNetwork(p), std::runtime_error);
}

TEST(NetworkRegistry, RemoteFetchLatencyMatchesTable2ForConstant)
{
    // The model-derived path must reproduce the historical hardcoded
    // formula exactly under the default (constant) model: Table 2's
    // 376-cycle uncontended remote fetch.
    Params p = Params::base();
    EXPECT_EQ(remoteFetchLatency(p), p.remoteFetch());
    EXPECT_EQ(remoteFetchLatency(p), 376u);
    // Under a topology the wire term becomes the mean pairwise
    // latency instead of the flat netLatency.
    p.networkModel = "mesh-2d";
    const Tick mesh_mean = makeNetwork(p)->meanLatency();
    EXPECT_EQ(remoteFetchLatency(p), p.remoteFetch(mesh_mean));
    EXPECT_NE(remoteFetchLatency(p), 376u);
}

TEST(NetworkRegistry, ValidateRejectsUnEmbeddableGeometry)
{
    Params p = Params::base();
    p.networkModel = "mesh-2d";
    p.numNodes = 7; // prime: no rectangular embedding
    EXPECT_THROW(p.validate(), std::logic_error);
    p.numNodes = 8;
    EXPECT_NO_THROW(p.validate());

    p.networkModel = "fat-tree";
    p.numNodes = 12; // not a power of two
    EXPECT_THROW(p.validate(), std::logic_error);
    p.numNodes = 16;
    EXPECT_NO_THROW(p.validate());

    p.networkModel = "mesh-2d";
    p.numNodes = 8;
    p.hopLatency = 0;
    EXPECT_THROW(p.validate(), std::logic_error);
}

TEST(NetworkRegistry, ConcurrentRegistrationAndLookupIsSafe)
{
    // Same shape as the protocol registry's hammer: writers add
    // fresh specs while readers resolve built-ins and enumerate.
    // Registered test specs stay in the global registry afterwards
    // (specs are never removed), which is harmless: ids are
    // namespaced with a test prefix.
    constexpr int writers = 4;
    constexpr int readers = 4;
    constexpr int perWriter = 8;
    // Ids must be fresh per in-process run (e.g. --gtest_repeat):
    // the registry never forgets and duplicates are fatal.
    static int runSeq = 0;
    const std::string prefix =
        "net-test-race-r" + std::to_string(runSeq++) + "-w";
    std::atomic<bool> go{false};
    std::atomic<int> registered{0};
    std::vector<std::thread> threads;
    for (int w = 0; w < writers; ++w) {
        threads.emplace_back([w, &go, &registered, &prefix] {
            while (!go.load())
                std::this_thread::yield();
            for (int i = 0; i < perWriter; ++i) {
                NetworkSpec spec;
                spec.id = prefix + std::to_string(w) + "-" +
                    std::to_string(i);
                spec.displayName = "race net";
                spec.description = "concurrency test spec";
                spec.make = [](const Params &p) {
                    return std::unique_ptr<NetworkModel>(
                        std::make_unique<Network>(
                            p.numNodes, p.netLatency,
                            p.niOccupancy));
                };
                NetworkRegistry::global().add(std::move(spec));
                registered.fetch_add(1);
            }
        });
    }
    // gtest macros are not thread-safe; readers tally failures into
    // an atomic and the main thread asserts afterwards.
    std::atomic<int> readerFailures{0};
    for (int r = 0; r < readers; ++r) {
        threads.emplace_back([&go, &readerFailures] {
            while (!go.load())
                std::this_thread::yield();
            for (int i = 0; i < 200; ++i) {
                if (findNetworkSpec("mesh-2d") == nullptr)
                    readerFailures.fetch_add(1);
                for (const NetworkSpec *s :
                     NetworkRegistry::global().all()) {
                    if (!s->valid())
                        readerFailures.fetch_add(1);
                }
            }
        });
    }
    go.store(true);
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(readerFailures.load(), 0);
    EXPECT_EQ(registered.load(), writers * perWriter);
    for (int w = 0; w < writers; ++w) {
        for (int i = 0; i < perWriter; ++i) {
            EXPECT_NE(findNetworkSpec(prefix + std::to_string(w) +
                                      "-" + std::to_string(i)),
                      nullptr);
        }
    }
}

} // namespace rnuma
