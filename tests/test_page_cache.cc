/**
 * @file
 * Unit tests for the S-COMA page cache: translation, fine-grain tags,
 * and the Least-Recently-Missed replacement policy.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "rad/page_cache.hh"

namespace rnuma
{

TEST(PageCache, InsertAndContains)
{
    PageCache pc(4, 16);
    EXPECT_FALSE(pc.contains(10));
    pc.insert(10);
    EXPECT_TRUE(pc.contains(10));
    EXPECT_EQ(pc.used(), 1u);
    EXPECT_EQ(pc.frames(), 4u);
    EXPECT_FALSE(pc.full());
}

TEST(PageCache, TagsStartInvalid)
{
    PageCache pc(4, 16);
    pc.insert(1);
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(pc.tag(1, i), FineTag::Invalid);
    EXPECT_EQ(pc.validBlocks(1), 0u);
}

TEST(PageCache, SetAndCountTags)
{
    PageCache pc(4, 16);
    pc.insert(1);
    pc.setTag(1, 0, FineTag::ReadOnly);
    pc.setTag(1, 5, FineTag::ReadWrite);
    EXPECT_EQ(pc.tag(1, 0), FineTag::ReadOnly);
    EXPECT_EQ(pc.tag(1, 5), FineTag::ReadWrite);
    EXPECT_EQ(pc.validBlocks(1), 2u);
}

TEST(PageCache, EraseClearsEverything)
{
    PageCache pc(2, 8);
    pc.insert(1);
    pc.setTag(1, 3, FineTag::ReadWrite);
    pc.erase(1);
    EXPECT_FALSE(pc.contains(1));
    // Re-inserting gives fresh invalid tags.
    pc.insert(1);
    EXPECT_EQ(pc.validBlocks(1), 0u);
}

TEST(PageCache, LrmVictimIsLeastRecentlyMissed)
{
    PageCache pc(3, 8);
    pc.insert(1);
    pc.insert(2);
    pc.insert(3);
    EXPECT_TRUE(pc.full());
    // Miss on 1: it moves to the most-recently-missed end.
    pc.recordMiss(1);
    EXPECT_EQ(pc.lrmVictim(), 2u);
    pc.recordMiss(2);
    EXPECT_EQ(pc.lrmVictim(), 3u);
}

TEST(PageCache, LrmReordersOnMissesOnlyNotHits)
{
    // The paper's policy reorders on remote misses, not on every
    // reference — tag reads (hits) do not touch the list.
    PageCache pc(2, 8);
    pc.insert(1);
    pc.insert(2);
    pc.setTag(1, 0, FineTag::ReadOnly);
    // "Hits" on page 1 (tag queries) change nothing.
    for (int i = 0; i < 10; ++i)
        (void)pc.tag(1, 0);
    EXPECT_EQ(pc.lrmVictim(), 1u);
    pc.recordMiss(1);
    EXPECT_EQ(pc.lrmVictim(), 2u);
}

TEST(PageCache, ForEachValidVisitsTaggedBlocks)
{
    PageCache pc(2, 8);
    pc.insert(7);
    pc.setTag(7, 1, FineTag::ReadOnly);
    pc.setTag(7, 4, FineTag::ReadWrite);
    std::vector<std::pair<std::size_t, FineTag>> seen;
    pc.forEachValid(7, [&](std::size_t i, FineTag t) {
        seen.emplace_back(i, t);
    });
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].first, 1u);
    EXPECT_EQ(seen[0].second, FineTag::ReadOnly);
    EXPECT_EQ(seen[1].first, 4u);
    EXPECT_EQ(seen[1].second, FineTag::ReadWrite);
}

TEST(PageCache, HitCountersAccumulatePerResidency)
{
    PageCache pc(2, 8);
    pc.insert(5);
    EXPECT_EQ(pc.hitsOf(5), 0u);
    pc.recordHit(5);
    pc.recordHit(5);
    pc.recordHit(5);
    EXPECT_EQ(pc.hitsOf(5), 3u);
    // Hits are per page, not per cache.
    pc.insert(9);
    EXPECT_EQ(pc.hitsOf(9), 0u);
    pc.recordHit(9);
    EXPECT_EQ(pc.hitsOf(5), 3u);
    EXPECT_EQ(pc.hitsOf(9), 1u);
}

TEST(PageCache, FrameReuseResetsTheHitCounter)
{
    // The counter measures one residency: when a frame is recycled
    // for a new page the old page's hits must not leak into it.
    PageCache pc(1, 8);
    pc.insert(1);
    pc.recordHit(1);
    pc.recordHit(1);
    EXPECT_EQ(pc.hitsOf(1), 2u);
    pc.erase(1);
    pc.insert(2); // same frame as page 1
    EXPECT_EQ(pc.hitsOf(2), 0u);
    // And a round trip of the same page starts from zero again.
    pc.erase(2);
    pc.insert(1);
    EXPECT_EQ(pc.hitsOf(1), 0u);
}

TEST(PageCache, MisuseIsDetected)
{
    PageCache pc(1, 4);
    pc.insert(1);
    EXPECT_THROW(pc.insert(1), std::logic_error);  // duplicate
    EXPECT_THROW(pc.insert(2), std::logic_error);  // full
    EXPECT_THROW(pc.erase(3), std::logic_error);   // absent
    EXPECT_THROW(pc.tag(2, 0), std::logic_error);  // absent
    EXPECT_THROW(pc.tag(1, 99), std::logic_error); // bad index
    EXPECT_THROW(pc.hitsOf(2), std::logic_error);  // absent
    EXPECT_THROW(pc.recordHit(2), std::logic_error); // absent
}

TEST(PageCache, VictimFromEmptyPanics)
{
    PageCache pc(2, 4);
    EXPECT_THROW(pc.lrmVictim(), std::logic_error);
}

} // namespace rnuma
