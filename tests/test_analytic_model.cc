/**
 * @file
 * Unit and property tests for the Section 3.2 competitive model
 * (EQ 1-3 and Table 1).
 */

#include <gtest/gtest.h>

#include "core/analytic_model.hh"

namespace rnuma
{

namespace
{

ModelParams
simple(double refetch, double allocate, double relocate)
{
    ModelParams mp;
    mp.cRefetch = refetch;
    mp.cAllocate = allocate;
    mp.cRelocate = relocate;
    return mp;
}

} // namespace

TEST(AnalyticModel, OverheadsMatchDefinitions)
{
    AnalyticModel m(simple(100, 1000, 500));
    EXPECT_DOUBLE_EQ(m.overheadCCNuma(10), 1000.0);
    EXPECT_DOUBLE_EQ(m.overheadSComa(), 1000.0);
    EXPECT_DOUBLE_EQ(m.overheadRNuma(10), 1000.0 + 500 + 1000);
}

TEST(AnalyticModel, Eq1WorstVsCCNuma)
{
    AnalyticModel m(simple(100, 1000, 500));
    // (T*Cr + Crel + Call) / (T*Cr) at T=10: 2500/1000.
    EXPECT_DOUBLE_EQ(m.worstVsCCNuma(10), 2.5);
}

TEST(AnalyticModel, Eq2WorstVsSComa)
{
    AnalyticModel m(simple(100, 1000, 500));
    EXPECT_DOUBLE_EQ(m.worstVsSComa(10), 2.5);
}

TEST(AnalyticModel, Eq3OptimalThresholdEqualizesTheRatios)
{
    AnalyticModel m(simple(100, 1000, 500));
    double T = m.optimalThreshold();
    EXPECT_DOUBLE_EQ(T, 10.0); // C_allocate / C_refetch
    EXPECT_NEAR(m.worstVsCCNuma(T), m.worstVsSComa(T), 1e-12);
    EXPECT_NEAR(m.worstVsCCNuma(T), m.boundAtOptimal(), 1e-12);
}

TEST(AnalyticModel, BoundIsTwoForFreeRelocation)
{
    // "In a high-performance implementation ... the worst-case
    // performance bound will be close to 2."
    AnalyticModel m(simple(100, 1000, 0));
    EXPECT_DOUBLE_EQ(m.boundAtOptimal(), 2.0);
}

TEST(AnalyticModel, BoundIsThreeWhenRelocationEqualsAllocation)
{
    // "In a less aggressive implementation ... close to 3."
    AnalyticModel m(simple(100, 1000, 1000));
    EXPECT_DOUBLE_EQ(m.boundAtOptimal(), 3.0);
}

TEST(AnalyticModel, FromSystemUsesTable2Costs)
{
    Params p = Params::base();
    ModelParams mp = ModelParams::fromSystem(p, 64);
    EXPECT_DOUBLE_EQ(mp.cRefetch, 376.0);
    EXPECT_DOUBLE_EQ(mp.cAllocate,
                     static_cast<double>(p.pageOpCost(64)));
    AnalyticModel m(mp);
    // Relocation == allocation in this model, so the bound is 3.
    EXPECT_DOUBLE_EQ(m.boundAtOptimal(), 3.0);
    // The paper's intersection threshold for the base system is
    // C_allocate / C_refetch, around 19 blocks-flushed=64.
    EXPECT_NEAR(m.optimalThreshold(),
                static_cast<double>(p.pageOpCost(64)) / 376.0, 1e-9);
}

/**
 * Property sweep (EQ 1-3): the optimal threshold minimizes the max
 * of the two worst-case ratios over a wide grid of cost regimes.
 */
class ModelSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>>
{
};

TEST_P(ModelSweep, OptimalThresholdMinimizesWorstCase)
{
    auto [cr, ca, crel] = GetParam();
    AnalyticModel m(simple(cr, ca, crel));
    double T = m.optimalThreshold();
    double at_opt = std::max(m.worstVsCCNuma(T), m.worstVsSComa(T));
    for (double f : {0.25, 0.5, 2.0, 4.0}) {
        double other =
            std::max(m.worstVsCCNuma(T * f), m.worstVsSComa(T * f));
        EXPECT_GE(other + 1e-9, at_opt)
            << "T*" << f << " beat the optimum";
    }
    // The bound is always in [2, 3] when relocation <= allocation.
    if (crel <= ca) {
        EXPECT_GE(m.boundAtOptimal(), 2.0);
        EXPECT_LE(m.boundAtOptimal(), 3.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    CostRegimes, ModelSweep,
    ::testing::Values(std::make_tuple(376.0, 3000.0, 3000.0),
                      std::make_tuple(376.0, 11500.0, 3000.0),
                      std::make_tuple(100.0, 10000.0, 1000.0),
                      std::make_tuple(1000.0, 3000.0, 0.0),
                      std::make_tuple(50.0, 50000.0, 25000.0)));

} // namespace rnuma
