/** @file Unit tests for the discrete-event queue. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/event_queue.hh"

namespace rnuma
{

TEST(EventQueue, PopsInTimeOrder)
{
    EventQueue q;
    q.schedule(30, 3);
    q.schedule(10, 1);
    q.schedule(20, 2);
    EXPECT_EQ(q.pop().tag, 1u);
    EXPECT_EQ(q.pop().tag, 2u);
    EXPECT_EQ(q.pop().tag, 3u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue q;
    q.schedule(5, 7);
    q.schedule(5, 8);
    q.schedule(5, 9);
    EXPECT_EQ(q.pop().tag, 7u);
    EXPECT_EQ(q.pop().tag, 8u);
    EXPECT_EQ(q.pop().tag, 9u);
}

TEST(EventQueue, PeekTime)
{
    EventQueue q;
    q.schedule(42, 0);
    q.schedule(7, 1);
    EXPECT_EQ(q.peekTime(), 7u);
    q.pop();
    EXPECT_EQ(q.peekTime(), 42u);
}

TEST(EventQueue, ProcessedAndPendingCounters)
{
    EventQueue q;
    q.schedule(1, 0);
    q.schedule(2, 0);
    EXPECT_EQ(q.pending(), 2u);
    q.pop();
    EXPECT_EQ(q.processed(), 1u);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, PopEmptyPanics)
{
    EventQueue q;
    EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(EventQueue, InterleavedScheduleAndPop)
{
    EventQueue q;
    q.schedule(10, 1);
    Event e = q.pop();
    // Scheduling an earlier event after popping is fine; the queue
    // orders whatever is pending.
    q.schedule(e.when + 5, 2);
    q.schedule(e.when + 1, 3);
    EXPECT_EQ(q.pop().tag, 3u);
    EXPECT_EQ(q.pop().tag, 2u);
}

} // namespace rnuma
