/**
 * @file
 * Unit tests for the discrete-event queue: API behavior of the
 * production calendar scheduler, plus ordering-parity checks that
 * replay randomized schedules through both the calendar and the
 * HeapEventQueue reference and assert bit-identical pop sequences.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/rng.hh"
#include "sim/event_queue.hh"

namespace rnuma
{

TEST(EventQueue, PopsInTimeOrder)
{
    EventQueue q;
    q.schedule(30, 3);
    q.schedule(10, 1);
    q.schedule(20, 2);
    EXPECT_EQ(q.pop().tag, 1u);
    EXPECT_EQ(q.pop().tag, 2u);
    EXPECT_EQ(q.pop().tag, 3u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue q;
    q.schedule(5, 7);
    q.schedule(5, 8);
    q.schedule(5, 9);
    EXPECT_EQ(q.pop().tag, 7u);
    EXPECT_EQ(q.pop().tag, 8u);
    EXPECT_EQ(q.pop().tag, 9u);
}

TEST(EventQueue, PeekTime)
{
    EventQueue q;
    q.schedule(42, 0);
    q.schedule(7, 1);
    EXPECT_EQ(q.peekTime(), 7u);
    q.pop();
    EXPECT_EQ(q.peekTime(), 42u);
}

TEST(EventQueue, ProcessedAndPendingCounters)
{
    EventQueue q;
    q.schedule(1, 0);
    q.schedule(2, 0);
    EXPECT_EQ(q.pending(), 2u);
    q.pop();
    EXPECT_EQ(q.processed(), 1u);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, PopEmptyPanics)
{
    EventQueue q;
    EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(EventQueue, InterleavedScheduleAndPop)
{
    EventQueue q;
    q.schedule(10, 1);
    Event e = q.pop();
    // Scheduling an earlier event after popping is fine; the queue
    // orders whatever is pending.
    q.schedule(e.when + 5, 2);
    q.schedule(e.when + 1, 3);
    EXPECT_EQ(q.pop().tag, 3u);
    EXPECT_EQ(q.pop().tag, 2u);
}

TEST(EventQueue, SchedulingBeforeTheCursorStillPopsInOrder)
{
    // The simulator never schedules into the past, but the API
    // allows it; such events pop first, in (when, seq) order.
    EventQueue q;
    q.schedule(100, 1);
    EXPECT_EQ(q.pop().when, 100u);
    q.schedule(50, 2);
    q.schedule(5, 3);
    q.schedule(100, 4);
    q.schedule(50, 5);
    EXPECT_EQ(q.pop().tag, 3u); // t=5
    EXPECT_EQ(q.pop().tag, 2u); // t=50, first inserted
    EXPECT_EQ(q.pop().tag, 5u); // t=50, second inserted
    EXPECT_EQ(q.pop().tag, 4u); // t=100
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FarAndNearEventsAtTheSameTickKeepFifoOrder)
{
    // tag 1 lands beyond the calendar window (far heap); after the
    // cursor advances, tag 2 at the *same tick* lands in the
    // calendar. FIFO tie-break must still pop 1 before 2.
    EventQueue q;
    q.schedule(10000, 1); // cursor 0: far
    q.schedule(7000, 9);
    EXPECT_EQ(q.pop().tag, 9u); // cursor -> 7000
    q.schedule(10000, 2);       // now within the window: near
    q.schedule(10000, 3);
    EXPECT_EQ(q.pop().tag, 1u);
    EXPECT_EQ(q.pop().tag, 2u);
    EXPECT_EQ(q.pop().tag, 3u);
}

TEST(EventQueue, LongJumpsCrossTheCalendarWindow)
{
    // Page-operation-sized deltas overflow the near window; the far
    // heap hands them back in order, including exact window edges.
    EventQueue q;
    q.schedule(0, 0);
    q.schedule(1023, 1);  // last near bucket
    q.schedule(1024, 2);  // first far tick
    q.schedule(11500, 3); // a full page-op jump
    for (std::uint32_t want = 0; want < 4; ++want)
        EXPECT_EQ(q.pop().tag, want);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueParity, RandomizedStreamsMatchTheHeapReference)
{
    // Replay an event pattern shaped like the simulator's (bursts of
    // small deltas, occasional barrier- and page-op-sized jumps,
    // same-tick ties) through both queues; the pop sequences must be
    // bit-identical, including seq numbers.
    Rng rng(0xeeff01);
    EventQueue cal;
    HeapEventQueue heap;
    Tick now = 0;
    std::size_t pendingCount = 0;
    for (int step = 0; step < 20000; ++step) {
        bool doSchedule =
            pendingCount == 0 || rng.chance(0.55);
        if (doSchedule) {
            Tick delta;
            std::uint64_t shape = rng.below(100);
            if (shape < 70)
                delta = rng.below(16); // think-time / bus scale
            else if (shape < 90)
                delta = 60 + rng.below(400); // fill / fetch scale
            else if (shape < 97)
                delta = 3000 + rng.below(9000); // page ops
            else
                delta = 0; // exact tie on `now`
            std::uint32_t tag =
                static_cast<std::uint32_t>(rng.below(32));
            cal.schedule(now + delta, tag);
            heap.schedule(now + delta, tag);
            pendingCount++;
        } else {
            ASSERT_EQ(cal.peekTime(), heap.peekTime());
            Event a = cal.pop();
            Event b = heap.pop();
            ASSERT_EQ(a.when, b.when) << "step " << step;
            ASSERT_EQ(a.seq, b.seq) << "step " << step;
            ASSERT_EQ(a.tag, b.tag) << "step " << step;
            now = a.when;
            pendingCount--;
        }
        ASSERT_EQ(cal.pending(), heap.pending());
    }
    while (!cal.empty()) {
        Event a = cal.pop();
        Event b = heap.pop();
        ASSERT_EQ(a.when, b.when);
        ASSERT_EQ(a.seq, b.seq);
        ASSERT_EQ(a.tag, b.tag);
    }
    EXPECT_TRUE(heap.empty());
    EXPECT_EQ(cal.processed(), heap.processed());
}

TEST(EventQueue, WindowRoundsUpToAPowerOfTwo)
{
    EXPECT_EQ(EventQueue().windowSize(), 1024u);
    EXPECT_EQ(EventQueue(1024).windowSize(), 1024u);
    EXPECT_EQ(EventQueue(100).windowSize(), 128u);
    EXPECT_EQ(EventQueue(1).windowSize(), 64u);   // floor: one word
    EXPECT_EQ(EventQueue(65).windowSize(), 128u);
    EXPECT_EQ(EventQueue(4096).windowSize(), 4096u);
    EXPECT_THROW(EventQueue(0), std::logic_error);
    // Absurd spans are a config error, not an overflowing loop.
    EXPECT_THROW(EventQueue(~std::size_t{0}), std::logic_error);
}

TEST(EventQueueParity, NonDefaultWindowsMatchTheHeapReference)
{
    // The same randomized simulator-shaped stream as above, but with
    // calendars small enough that fill/fetch deltas overflow into
    // the far heap constantly (64) and wide enough that page ops fit
    // the calendar (16384): the (when, seq) contract must hold at
    // any window size.
    for (std::size_t window : {64u, 256u, 16384u}) {
        Rng rng(0xeeff02 + window);
        EventQueue cal(window);
        HeapEventQueue heap;
        Tick now = 0;
        std::size_t pendingCount = 0;
        for (int step = 0; step < 8000; ++step) {
            bool doSchedule =
                pendingCount == 0 || rng.chance(0.55);
            if (doSchedule) {
                Tick delta;
                std::uint64_t shape = rng.below(100);
                if (shape < 70)
                    delta = rng.below(16);
                else if (shape < 90)
                    delta = 60 + rng.below(400);
                else if (shape < 97)
                    delta = 3000 + rng.below(9000);
                else
                    delta = 0;
                std::uint32_t tag =
                    static_cast<std::uint32_t>(rng.below(32));
                cal.schedule(now + delta, tag);
                heap.schedule(now + delta, tag);
                pendingCount++;
            } else {
                ASSERT_EQ(cal.peekTime(), heap.peekTime())
                    << "window " << window << " step " << step;
                Event a = cal.pop();
                Event b = heap.pop();
                ASSERT_EQ(a.when, b.when)
                    << "window " << window << " step " << step;
                ASSERT_EQ(a.seq, b.seq)
                    << "window " << window << " step " << step;
                ASSERT_EQ(a.tag, b.tag)
                    << "window " << window << " step " << step;
                now = a.when;
                pendingCount--;
            }
        }
        while (!cal.empty()) {
            Event a = cal.pop();
            Event b = heap.pop();
            ASSERT_EQ(a.when, b.when) << "window " << window;
            ASSERT_EQ(a.seq, b.seq) << "window " << window;
            ASSERT_EQ(a.tag, b.tag) << "window " << window;
        }
        EXPECT_TRUE(heap.empty()) << "window " << window;
    }
}

TEST(EventQueue, AutoWindowCoversTheSpanWithinTheClamp)
{
    // The machine sizes its calendar from the workload's tick span
    // (maxThink + the longest common service chain). The policy:
    // smallest power of two covering the span, clamped to
    // [64, 65536]. Window size never affects pop order, so these
    // pins guard the sizing itself, not correctness.
    EXPECT_EQ(EventQueue::autoWindow(0), 64u);
    EXPECT_EQ(EventQueue::autoWindow(63), 64u);
    EXPECT_EQ(EventQueue::autoWindow(64), 128u);
    EXPECT_EQ(EventQueue::autoWindow(500), 512u);
    // The paper's base machine: maxThink + remoteFetch(376) +
    // barrierCost(100) = 476 fits in a 512 window — half the 1024
    // the queue used to default to.
    EXPECT_EQ(EventQueue::autoWindow(476), 512u);
    EXPECT_EQ(EventQueue::autoWindow(1000), 1024u);
    EXPECT_EQ(EventQueue::autoWindow(40000), 65536u);
    // Page-op-scale spans hit the cap instead of inflating the
    // bucket array.
    EXPECT_EQ(EventQueue::autoWindow(~Tick{0}), 65536u);
    // The result is always directly constructible.
    for (Tick d : {Tick{0}, Tick{1000}, Tick{70000}})
        EXPECT_EQ(EventQueue(EventQueue::autoWindow(d)).windowSize(),
                  EventQueue::autoWindow(d));
}

TEST(EventQueueParity, RandomizedSpansMatchTheHeapReference)
{
    // The auto-sizing logic means production calendars can now have
    // any power-of-two span, not just the defaults; replay the
    // simulator-shaped stream at ~20 randomized window requests
    // (1 .. ~128k ticks, rounded up inside the queue) and hold the
    // (when, seq) contract at every one.
    Rng windowRng(0x5eed5);
    for (int trial = 0; trial < 20; ++trial) {
        std::size_t want = static_cast<std::size_t>(
            1 + windowRng.below(131072));
        EventQueue cal(want);
        HeapEventQueue heap;
        Rng rng(0xfeed00 + trial);
        Tick now = 0;
        std::size_t pendingCount = 0;
        for (int step = 0; step < 4000; ++step) {
            bool doSchedule =
                pendingCount == 0 || rng.chance(0.55);
            if (doSchedule) {
                Tick delta;
                std::uint64_t shape = rng.below(100);
                if (shape < 70)
                    delta = rng.below(16);
                else if (shape < 90)
                    delta = 60 + rng.below(400);
                else if (shape < 97)
                    delta = 3000 + rng.below(9000);
                else
                    delta = 0;
                std::uint32_t tag =
                    static_cast<std::uint32_t>(rng.below(32));
                cal.schedule(now + delta, tag);
                heap.schedule(now + delta, tag);
                pendingCount++;
            } else {
                ASSERT_EQ(cal.peekTime(), heap.peekTime())
                    << "window " << want << " step " << step;
                Event a = cal.pop();
                Event b = heap.pop();
                ASSERT_EQ(a.when, b.when)
                    << "window " << want << " step " << step;
                ASSERT_EQ(a.seq, b.seq)
                    << "window " << want << " step " << step;
                ASSERT_EQ(a.tag, b.tag)
                    << "window " << want << " step " << step;
                now = a.when;
                pendingCount--;
            }
        }
        while (!cal.empty()) {
            Event a = cal.pop();
            Event b = heap.pop();
            ASSERT_EQ(a.when, b.when) << "window " << want;
            ASSERT_EQ(a.seq, b.seq) << "window " << want;
            ASSERT_EQ(a.tag, b.tag) << "window " << want;
        }
        EXPECT_TRUE(heap.empty()) << "window " << want;
    }
}

TEST(EventQueueParity, PopBeforeIsBoundedAndOrderedUnderFuzz)
{
    // The parallel engine's safety hinges on popBefore never
    // releasing an event at or past the window edge, while still
    // returning everything strictly below it in exact pop() order —
    // even as new events land inside and beyond the window between
    // drains. Replay a randomized schedule through the calendar and
    // the heap reference at 20 random lookahead widths.
    Rng seeds(0x15CA97);
    for (int round = 0; round < 20; ++round) {
        const Tick lookahead = 1 + seeds.below(250);
        Rng rng(seeds.next());
        EventQueue cal;
        HeapEventQueue heap;
        std::uint32_t tag = 0;
        Tick now = 0;

        auto scheduleSome = [&](std::size_t n, Tick base) {
            for (std::size_t i = 0; i < n; ++i) {
                // Mostly inside the window, a tail far beyond it
                // (the far-heap overflow path of the calendar).
                Tick when = base + rng.below(3 * lookahead);
                cal.schedule(when, tag);
                heap.schedule(when, tag);
                ++tag;
            }
        };

        scheduleSome(40, 0);
        for (int window = 0; window < 30; ++window) {
            Tick edge = now + lookahead;
            Event got;
            while (cal.popBefore(edge, got)) {
                ASSERT_LT(got.when, edge)
                    << "lookahead " << lookahead;
                Event want;
                ASSERT_TRUE(heap.popBefore(edge, want));
                ASSERT_EQ(got.when, want.when);
                ASSERT_EQ(got.seq, want.seq);
                ASSERT_EQ(got.tag, want.tag);
                // Re-entry: a drained event may schedule more work,
                // inside or beyond the current window.
                if (rng.below(4) == 0)
                    scheduleSome(1, got.when);
            }
            // The oracle must agree the window is exhausted.
            Event leftover;
            ASSERT_FALSE(heap.popBefore(edge, leftover))
                << "lookahead " << lookahead;
            now = edge;
        }
        // Drain the tail unbounded: full parity to empty.
        while (!heap.empty()) {
            Event a = cal.pop();
            Event b = heap.pop();
            ASSERT_EQ(a.when, b.when);
            ASSERT_EQ(a.seq, b.seq);
            ASSERT_EQ(a.tag, b.tag);
        }
        EXPECT_TRUE(cal.empty());
    }
}

TEST(EventQueueParity, MassTiesPreserveInsertionOrder)
{
    // Many events on few distinct ticks: the FIFO-per-bucket path.
    EventQueue cal;
    HeapEventQueue heap;
    Rng rng(0xabc123);
    for (int i = 0; i < 2000; ++i) {
        Tick when = rng.below(8) * 7;
        std::uint32_t tag = static_cast<std::uint32_t>(i);
        cal.schedule(when, tag);
        heap.schedule(when, tag);
    }
    std::uint32_t prevTag = 0;
    Tick prevWhen = 0;
    bool first = true;
    while (!heap.empty()) {
        Event a = cal.pop();
        Event b = heap.pop();
        ASSERT_EQ(a.seq, b.seq);
        ASSERT_EQ(a.tag, b.tag);
        if (!first && a.when == prevWhen) {
            ASSERT_LT(prevTag, a.tag); // tags are insertion order
        }
        prevWhen = a.when;
        prevTag = a.tag;
        first = false;
    }
    EXPECT_TRUE(cal.empty());
}

} // namespace rnuma
