/**
 * @file
 * Self-test for the measured-performance regression gate
 * (compareBench and the rnuma-bench/v1 artifact round-trip in
 * src/driver/compare.{hh,cc}): synthetic baseline/current artifact
 * pairs with injected events/sec drift and event-count drift must
 * produce the documented violation counts, the counters-only mode
 * (negative rate tolerance) must ignore rate drops entirely, and a
 * document must survive writeBench -> loadBench with every field
 * intact. This mirrors, at the unit level, the CI self-test that
 * feeds rnuma_bench corrupted artifacts and asserts its exit codes.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "driver/compare.hh"

namespace rnuma::driver
{

namespace
{

BenchCell
cell(const std::string &app, const std::string &config,
     const std::string &protocol, std::uint64_t events,
     std::uint64_t ticks, std::uint64_t refs, double rate)
{
    BenchCell c;
    c.app = app;
    c.config = config;
    c.protocol = protocol;
    c.events = events;
    c.ticks = ticks;
    c.refs = refs;
    c.eventsPerInstruction =
        refs ? static_cast<double>(events) / static_cast<double>(refs)
             : 0.0;
    c.medianEventsPerSec = rate;
    return c;
}

/** A two-figure, three-cell artifact shaped like a real bench run. */
BenchDoc
sampleDoc()
{
    BenchDoc d;
    d.schema = "rnuma-bench/v1";
    d.runs = 5;
    d.scale = 0.1;
    d.jobs = 1;

    BenchFigure f6;
    f6.name = "fig6";
    f6.scale = 0.1;
    f6.cells.push_back(
        cell("barnes", "R-NUMA", "rnuma", 120000, 90000, 40000,
             2.0e6));
    f6.cells.push_back(
        cell("em3d", "CC-NUMA", "ccnuma", 80000, 70000, 30000,
             1.5e6));
    d.figures.push_back(f6);

    BenchFigure f7;
    f7.name = "fig7";
    f7.scale = 0.1;
    f7.cells.push_back(
        cell("moldyn", "S-COMA", "scoma", 50000, 60000, 20000,
             1.0e6));
    d.figures.push_back(f7);
    return d;
}

std::size_t
diff(const BenchDoc &baseline, const BenchDoc &current,
     double ratePct, std::string *report = nullptr)
{
    BenchCompareOptions opt;
    opt.ratePct = ratePct;
    std::ostringstream os;
    std::size_t v = compareBench(baseline, current, opt, os);
    if (report)
        *report = os.str();
    return v;
}

} // namespace

TEST(BenchCompare, IdenticalDocumentsPass)
{
    BenchDoc base = sampleDoc();
    std::string report;
    EXPECT_EQ(diff(base, sampleDoc(), 8.0, &report), 0u);
    EXPECT_NE(report.find("bench-compare: PASS"), std::string::npos);
    EXPECT_NE(report.find("ok:   fig6"), std::string::npos);
    EXPECT_NE(report.find("ok:   fig7"), std::string::npos);
}

TEST(BenchCompare, EventCountDriftIsAHardFailure)
{
    // Counters are deterministic: a single-event difference fails
    // regardless of how generous the rate tolerance is.
    BenchDoc base = sampleDoc();
    BenchDoc cur = sampleDoc();
    cur.figures[0].cells[0].events += 1;
    std::string report;
    EXPECT_EQ(diff(base, cur, 1e9, &report), 1u);
    EXPECT_NE(report.find("events drifted"), std::string::npos);
    EXPECT_NE(report.find("bench-compare: FAIL (1 violation(s))"),
              std::string::npos);

    // Ticks and refs drift are equally fatal, and independent cells
    // accumulate independent violations.
    cur = sampleDoc();
    cur.figures[0].cells[1].ticks -= 1;
    cur.figures[1].cells[0].refs += 10;
    EXPECT_EQ(diff(base, cur, 8.0, &report), 2u);
    EXPECT_NE(report.find("ticks drifted"), std::string::npos);
    EXPECT_NE(report.find("refs drifted"), std::string::npos);
}

TEST(BenchCompare, RateDropBeyondToleranceFails)
{
    BenchDoc base = sampleDoc();
    // A 20% throughput drop on one cell: outside the 8% default.
    BenchDoc cur = sampleDoc();
    cur.figures[0].cells[0].medianEventsPerSec *= 0.8;
    std::string report;
    EXPECT_EQ(diff(base, cur, 8.0, &report), 1u);
    EXPECT_NE(report.find("median events/sec regressed"),
              std::string::npos);

    // The same drop within a wider tolerance passes.
    EXPECT_EQ(diff(base, cur, 25.0), 0u);

    // A drop just inside the tolerance passes (5% < 8%).
    cur = sampleDoc();
    cur.figures[0].cells[0].medianEventsPerSec *= 0.95;
    EXPECT_EQ(diff(base, cur, 8.0), 0u);

    // Improvements never fail, even at zero tolerance.
    cur = sampleDoc();
    for (BenchFigure &f : cur.figures)
        for (BenchCell &c : f.cells)
            c.medianEventsPerSec *= 3.0;
    EXPECT_EQ(diff(base, cur, 0.0), 0u);
}

TEST(BenchCompare, NegativeToleranceIsCountersOnly)
{
    // CI mode: shared runners make rates incomparable, so a negative
    // tolerance must ignore even a catastrophic slowdown...
    BenchDoc base = sampleDoc();
    BenchDoc cur = sampleDoc();
    for (BenchFigure &f : cur.figures)
        for (BenchCell &c : f.cells)
            c.medianEventsPerSec *= 0.01;
    std::string report;
    EXPECT_EQ(diff(base, cur, -1.0, &report), 0u);
    EXPECT_EQ(report.find("events/sec"), std::string::npos);

    // ...while counter drift still fails.
    cur.figures[1].cells[0].events += 7;
    EXPECT_EQ(diff(base, cur, -1.0), 1u);
}

TEST(BenchCompare, RatesAreSkippedWhenJobsDiffer)
{
    // Throughput measured at different sweep concurrency is not
    // comparable; the gate notes that and checks counters only.
    BenchDoc base = sampleDoc();
    BenchDoc cur = sampleDoc();
    cur.jobs = 4;
    for (BenchFigure &f : cur.figures)
        for (BenchCell &c : f.cells)
            c.medianEventsPerSec *= 0.1;
    std::string report;
    EXPECT_EQ(diff(base, cur, 8.0, &report), 0u);
    EXPECT_NE(report.find("events/sec check skipped"),
              std::string::npos);
}

TEST(BenchCompare, CoverageLossIsAViolation)
{
    BenchDoc base = sampleDoc();

    // A whole figure disappearing.
    BenchDoc cur = sampleDoc();
    cur.figures.pop_back();
    std::string report;
    EXPECT_EQ(diff(base, cur, 8.0, &report), 1u);
    EXPECT_NE(report.find("fig7: figure missing"), std::string::npos);

    // A single cell disappearing.
    cur = sampleDoc();
    cur.figures[0].cells.pop_back();
    EXPECT_EQ(diff(base, cur, 8.0, &report), 1u);
    EXPECT_NE(report.find("cell missing"), std::string::npos);

    // A scale change makes the whole figure incomparable: one
    // violation, and its cells are not diffed at all.
    cur = sampleDoc();
    cur.figures[0].scale = 0.2;
    cur.figures[0].cells[0].events += 999;
    EXPECT_EQ(diff(base, cur, 8.0, &report), 1u);
    EXPECT_NE(report.find("scale changed"), std::string::npos);

    // New cells and figures in current are notes, not violations.
    cur = sampleDoc();
    cur.figures[0].cells.push_back(
        cell("ocean", "R-NUMA", "rnuma", 1, 1, 1, 1.0));
    BenchFigure extra;
    extra.name = "fig99";
    extra.scale = 0.1;
    cur.figures.push_back(extra);
    EXPECT_EQ(diff(base, cur, 8.0, &report), 0u);
    EXPECT_NE(report.find("is new (not in baseline)"),
              std::string::npos);
}

TEST(BenchCompare, ArtifactRoundTripsThroughWriteAndLoad)
{
    BenchDoc doc = sampleDoc();
    std::ostringstream os;
    writeBench(os, doc);
    BenchDoc back = loadBench(os.str());

    EXPECT_EQ(back.schema, "rnuma-bench/v1");
    EXPECT_EQ(back.runs, doc.runs);
    EXPECT_EQ(back.scale, doc.scale);
    EXPECT_EQ(back.jobs, doc.jobs);
    ASSERT_EQ(back.figures.size(), doc.figures.size());
    for (std::size_t fi = 0; fi < doc.figures.size(); ++fi) {
        const BenchFigure &a = doc.figures[fi];
        const BenchFigure &b = back.figures[fi];
        EXPECT_EQ(b.name, a.name);
        EXPECT_EQ(b.scale, a.scale);
        ASSERT_EQ(b.cells.size(), a.cells.size()) << a.name;
        for (std::size_t ci = 0; ci < a.cells.size(); ++ci) {
            const BenchCell &x = a.cells[ci];
            const BenchCell &y = b.cells[ci];
            EXPECT_EQ(y.app, x.app);
            EXPECT_EQ(y.config, x.config);
            EXPECT_EQ(y.protocol, x.protocol);
            EXPECT_EQ(y.events, x.events);
            EXPECT_EQ(y.ticks, x.ticks);
            EXPECT_EQ(y.refs, x.refs);
            // Doubles survive the %.17g writer exactly.
            EXPECT_EQ(y.eventsPerInstruction,
                      x.eventsPerInstruction);
            EXPECT_EQ(y.medianEventsPerSec, x.medianEventsPerSec);
        }
    }
    // And a round-tripped document diffs clean against the original.
    std::ostringstream report;
    EXPECT_EQ(compareBench(doc, back, BenchCompareOptions{}, report),
              0u);
}

TEST(BenchCompare, LoaderRejectsForeignDocuments)
{
    EXPECT_THROW(loadBench("{\"schema\": \"rnuma-sweep-results/v4\", "
                           "\"figures\": []}"),
                 std::runtime_error);
    EXPECT_THROW(loadBench("{\"figures\": []}"), std::runtime_error);
    EXPECT_THROW(
        loadBench("{\"schema\": \"rnuma-bench/v1\", \"runs\": 5}"),
        std::runtime_error);
}

} // namespace rnuma::driver
