/** @file Unit tests for the reactive relocation policy (Section 3.1). */

#include <gtest/gtest.h>

#include "core/reactive_policy.hh"

namespace rnuma
{

TEST(ReactivePolicy, FiresExactlyAtThreshold)
{
    ReactivePolicy rp(4);
    EXPECT_FALSE(rp.recordRefetch(1)); // 1
    EXPECT_FALSE(rp.recordRefetch(1)); // 2
    EXPECT_FALSE(rp.recordRefetch(1)); // 3
    EXPECT_TRUE(rp.recordRefetch(1));  // 4 -> interrupt
}

TEST(ReactivePolicy, CounterResetsAfterFiring)
{
    ReactivePolicy rp(2);
    rp.recordRefetch(1);
    EXPECT_TRUE(rp.recordRefetch(1));
    EXPECT_EQ(rp.count(1), 0u);
    EXPECT_FALSE(rp.recordRefetch(1)); // counting starts over
}

TEST(ReactivePolicy, PagesAreIndependent)
{
    ReactivePolicy rp(3);
    rp.recordRefetch(1);
    rp.recordRefetch(1);
    rp.recordRefetch(2);
    EXPECT_EQ(rp.count(1), 2u);
    EXPECT_EQ(rp.count(2), 1u);
    EXPECT_EQ(rp.trackedPages(), 2u);
}

TEST(ReactivePolicy, ResetClearsACounter)
{
    ReactivePolicy rp(10);
    rp.recordRefetch(5);
    rp.recordRefetch(5);
    rp.reset(5);
    EXPECT_EQ(rp.count(5), 0u);
    EXPECT_EQ(rp.trackedPages(), 0u);
}

TEST(ReactivePolicy, ThresholdOneFiresImmediately)
{
    ReactivePolicy rp(1);
    EXPECT_TRUE(rp.recordRefetch(9));
}

/** Parameterized: the policy fires after exactly T refetches. */
class ThresholdSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ThresholdSweep, FiresAfterExactlyT)
{
    std::size_t T = GetParam();
    ReactivePolicy rp(T);
    for (std::size_t i = 1; i < T; ++i)
        ASSERT_FALSE(rp.recordRefetch(3)) << "fired early at " << i;
    EXPECT_TRUE(rp.recordRefetch(3));
}

INSTANTIATE_TEST_SUITE_P(PaperThresholds, ThresholdSweep,
                         ::testing::Values(1, 16, 64, 256, 1024));

} // namespace rnuma
