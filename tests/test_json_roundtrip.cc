/**
 * @file
 * Randomized round-trip fuzzing of the dependency-free JSON
 * writer/parser pair (src/driver/json.{hh,cc}): generated nested
 * documents — NaN cells (serialized as null), deep objects/arrays,
 * strings full of escapes and control characters, big integers at
 * the double-exact limit — must survive write -> parse -> write with
 * the two serializations byte-identical. This is the safety net
 * under every artifact the drivers emit (sweep results, bench
 * baselines): if serialization and parsing ever disagree, the
 * perf gates would diff garbage.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "common/rng.hh"
#include "driver/json.hh"

namespace rnuma::driver
{

namespace
{

/** Serialize a parsed-value tree back through the writer. */
void
emit(JsonWriter &w, const JsonValue &v)
{
    switch (v.kind) {
      case JsonValue::Kind::Null:
        // The writer has no explicit null; NaN serializes as null,
        // which is exactly the round-trip under test.
        w.value(std::nan(""));
        break;
      case JsonValue::Kind::Bool:
        w.value(v.boolean);
        break;
      case JsonValue::Kind::Number:
        w.value(v.number);
        break;
      case JsonValue::Kind::String:
        w.value(v.str);
        break;
      case JsonValue::Kind::Array:
        w.beginArray();
        for (const JsonValue &e : v.array)
            emit(w, e);
        w.endArray();
        break;
      case JsonValue::Kind::Object:
        w.beginObject();
        for (const auto &kv : v.object) {
            w.key(kv.first);
            emit(w, kv.second);
        }
        w.endObject();
        break;
    }
}

std::string
emitDoc(const JsonValue &v)
{
    std::ostringstream os;
    JsonWriter w(os);
    emit(w, v);
    return os.str();
}

std::string
randomString(Rng &rng)
{
    // Bias hard toward the characters that need escaping: quotes,
    // backslashes, control characters, and non-ASCII bytes.
    static const char pool[] = "\"\\\n\r\t\b\f/ab\x01\x1f{}[]:,";
    std::string s;
    std::size_t len = rng.below(12);
    for (std::size_t i = 0; i < len; ++i)
        s += pool[rng.below(sizeof(pool) - 1)];
    return s;
}

double
randomNumber(Rng &rng)
{
    switch (rng.below(5)) {
      case 0:
        // Big integers at the exactly-representable limit (2^53).
        return static_cast<double>(rng.below(std::uint64_t{1}
                                             << 53));
      case 1:
        return -static_cast<double>(rng.below(1u << 30));
      case 2:
        return rng.uniform() * 1e-9;
      case 3:
        return rng.uniform() * 1e17;
      default:
        // NaN cells: the writer must collapse them to null.
        return std::nan("");
    }
}

JsonValue
randomValue(Rng &rng, int depth)
{
    JsonValue v;
    // Leaves only at the depth limit; containers get likelier near
    // the root.
    std::uint64_t kind = rng.below(depth > 0 ? 6 : 4);
    switch (kind) {
      case 0:
        v.kind = JsonValue::Kind::Null;
        break;
      case 1:
        v.kind = JsonValue::Kind::Bool;
        v.boolean = rng.chance(0.5);
        break;
      case 2: {
        double n = randomNumber(rng);
        if (std::isnan(n)) {
            // What the parser will see after the writer nulls it.
            v.kind = JsonValue::Kind::Null;
        } else {
            v.kind = JsonValue::Kind::Number;
            v.number = n;
        }
        break;
      }
      case 3:
        v.kind = JsonValue::Kind::String;
        v.str = randomString(rng);
        break;
      case 4: {
        v.kind = JsonValue::Kind::Array;
        std::size_t n = rng.below(5);
        for (std::size_t i = 0; i < n; ++i)
            v.array.push_back(randomValue(rng, depth - 1));
        break;
      }
      default: {
        v.kind = JsonValue::Kind::Object;
        std::size_t n = rng.below(5);
        for (std::size_t i = 0; i < n; ++i)
            v.object.emplace_back(randomString(rng) +
                                      std::to_string(i),
                                  randomValue(rng, depth - 1));
        break;
      }
    }
    return v;
}

} // namespace

TEST(JsonRoundTrip, RandomizedDocumentsAreByteStable)
{
    Rng rng(0x90115e7);
    for (int iter = 0; iter < 200; ++iter) {
        // Top level is always a container, as real documents are.
        JsonValue doc;
        doc.kind = iter % 2 ? JsonValue::Kind::Object
                            : JsonValue::Kind::Array;
        std::size_t n = 1 + rng.below(4);
        for (std::size_t i = 0; i < n; ++i) {
            if (doc.kind == JsonValue::Kind::Object)
                doc.object.emplace_back(
                    randomString(rng) + std::to_string(i),
                    randomValue(rng, 4));
            else
                doc.array.push_back(randomValue(rng, 4));
        }

        std::string once = emitDoc(doc);
        JsonValue parsed;
        ASSERT_NO_THROW(parsed = parseJson(once))
            << "iter " << iter << "\n" << once;
        std::string twice = emitDoc(parsed);
        ASSERT_EQ(once, twice) << "iter " << iter;
    }
}

TEST(JsonRoundTrip, NanAndInfinitySerializeAsNull)
{
    JsonValue doc;
    doc.kind = JsonValue::Kind::Array;
    JsonValue nan;
    nan.kind = JsonValue::Kind::Number;
    nan.number = std::nan("");
    JsonValue inf;
    inf.kind = JsonValue::Kind::Number;
    inf.number = HUGE_VAL;
    doc.array.push_back(nan);
    doc.array.push_back(inf);

    std::string text = emitDoc(doc);
    JsonValue parsed = parseJson(text);
    ASSERT_EQ(parsed.array.size(), 2u);
    EXPECT_EQ(parsed.array[0].kind, JsonValue::Kind::Null);
    EXPECT_EQ(parsed.array[1].kind, JsonValue::Kind::Null);
    EXPECT_EQ(text, emitDoc(parsed));
}

TEST(JsonRoundTrip, BigIntegersSurviveExactly)
{
    // 2^53 - 1 is the largest odd integer a double represents
    // exactly; the %.17g writer and strtod parser must agree on it.
    JsonValue doc;
    doc.kind = JsonValue::Kind::Array;
    for (double v : {9007199254740991.0, 9007199254740992.0,
                     4503599627370497.0, 1e15 + 1}) {
        JsonValue n;
        n.kind = JsonValue::Kind::Number;
        n.number = v;
        doc.array.push_back(n);
    }
    std::string once = emitDoc(doc);
    JsonValue parsed = parseJson(once);
    for (std::size_t i = 0; i < doc.array.size(); ++i)
        EXPECT_EQ(parsed.array[i].number, doc.array[i].number) << i;
    EXPECT_EQ(once, emitDoc(parsed));
}

} // namespace rnuma::driver
