/** @file Unit tests for the OS virtual-memory cost model. */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "os/vm.hh"

namespace rnuma
{

TEST(Vm, MapFaultChargesSoftTrap)
{
    Params p = Params::base();
    RunStats s;
    VmManager vm(p, 0, s);
    EXPECT_EQ(vm.chargeMapFault(1000), 1000 + p.softTrap);
    EXPECT_EQ(s.pageFaults, 1u);
    EXPECT_EQ(s.osCycles, p.softTrap);
}

TEST(Vm, AllocationCostScalesWithFlushedBlocks)
{
    Params p = Params::base();
    RunStats s;
    VmManager vm(p, 0, s);
    Tick empty = vm.chargeAllocation(0, 0);
    Tick full = vm.chargeAllocation(0, p.blocksPerPage());
    EXPECT_EQ(empty, p.pageOpCost(0));
    EXPECT_EQ(full, p.pageOpCost(p.blocksPerPage()));
    EXPECT_GT(full, empty);
    EXPECT_EQ(s.osCycles, empty + full);
}

TEST(Vm, RelocationUsesSameMechanismAsAllocation)
{
    // "Page relocation uses similar mechanisms as page
    // allocation/replacement and incurs the same overheads"
    // (Section 4).
    Params p = Params::base();
    RunStats s;
    VmManager vm(p, 2, s);
    EXPECT_EQ(vm.chargeRelocation(0, 10), vm.chargeAllocation(0, 10));
    EXPECT_EQ(vm.nodeId(), 2u);
}

TEST(Vm, SoftSystemCostsMore)
{
    // VmManager keeps a reference; the params must outlive it.
    Params base_params = Params::base();
    Params soft_params = Params::soft();
    RunStats s1, s2;
    VmManager base(base_params, 0, s1);
    VmManager soft(soft_params, 0, s2);
    EXPECT_GT(soft.chargeAllocation(0, 16),
              base.chargeAllocation(0, 16));
}

} // namespace rnuma
