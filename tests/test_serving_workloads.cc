/**
 * @file
 * Tests for the workload registry and the commercial-serving
 * generators (zipf-serve, phase-shift, tenants, database-scan):
 * Zipf skew actually skews the page popularity, phase rotation has
 * the advertised window geometry, tenant address spaces are disjoint
 * per CPU, streams are seed-deterministic, and the option parser
 * rejects garbage loudly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "workload/registry.hh"
#include "workload/serving.hh"

#include "test_util.hh"

namespace rnuma
{

namespace
{

/** Count pool-read references per page (the think-6 reads are the
 * zipf-serve pool scans; session and update traffic use other think
 * times). */
std::map<Addr, std::size_t>
poolReadCounts(const VectorWorkload &wl, std::size_t page_size)
{
    std::map<Addr, std::size_t> counts;
    for (CpuId c = 0; c < wl.numCpus(); ++c) {
        for (std::size_t i = 0; i < wl.size(c); ++i) {
            const Ref &r = wl.at(c, i);
            if (r.kind == RefKind::Mem && !r.write && r.think == 6)
                ++counts[r.addr / page_size];
        }
    }
    return counts;
}

/** Sorted per-page counts, most popular first. */
std::vector<std::size_t>
sortedCounts(const std::map<Addr, std::size_t> &counts)
{
    std::vector<std::size_t> v;
    for (const auto &kv : counts)
        v.push_back(kv.second);
    std::sort(v.rbegin(), v.rend());
    return v;
}

} // namespace

//--------------------------------------------------------------------------
// Registry
//--------------------------------------------------------------------------

TEST(WorkloadRegistry, BuiltinsCoverAllThreeCategories)
{
    const WorkloadRegistry &reg = WorkloadRegistry::global();
    // 10 apps + 7 micros + 4 serving.
    EXPECT_GE(reg.size(), 21u);
    std::size_t apps = 0, micros = 0, serving = 0;
    for (const WorkloadSpec *s : reg.all()) {
        EXPECT_TRUE(s->valid());
        EXPECT_EQ(s->id, canonicalWorkloadId(s->id));
        if (s->category == "app")
            ++apps;
        else if (s->category == "micro")
            ++micros;
        else if (s->category == "serving")
            ++serving;
    }
    EXPECT_EQ(apps, 10u);
    EXPECT_GE(micros, 7u);
    EXPECT_GE(serving, 4u);
}

TEST(WorkloadRegistry, LookupIsCaseInsensitiveOnIdAndDisplayName)
{
    EXPECT_NE(findWorkloadSpec("zipf-serve"), nullptr);
    EXPECT_NE(findWorkloadSpec("ZIPF-SERVE"), nullptr);
    EXPECT_EQ(findWorkloadSpec("no-such-workload"), nullptr);
    EXPECT_EQ(workloadSpec("Barnes").id, "barnes");
}

TEST(WorkloadRegistry, UnknownNameIsFatal)
{
    Params p = test::smallParams();
    EXPECT_THROW(makeWorkload("definitely-not-registered", p, 0.1),
                 std::runtime_error);
}

TEST(WorkloadRegistry, MakeWorkloadMatchesMakeAppBitForBit)
{
    Params p = test::smallParams();
    auto via_shim = makeApp("radix", p, 0.1, 7);
    auto via_registry = makeWorkload("radix", p, 0.1, 7);
    auto *vec = dynamic_cast<VectorWorkload *>(via_registry.get());
    ASSERT_NE(vec, nullptr);
    ASSERT_EQ(vec->numCpus(), via_shim->numCpus());
    for (CpuId c = 0; c < vec->numCpus(); ++c) {
        ASSERT_EQ(vec->size(c), via_shim->size(c));
        for (std::size_t i = 0; i < vec->size(c); ++i) {
            const Ref &a = via_shim->at(c, i);
            const Ref &b = vec->at(c, i);
            ASSERT_EQ(a.kind, b.kind);
            ASSERT_EQ(a.addr, b.addr);
            ASSERT_EQ(a.write, b.write);
            ASSERT_EQ(a.think, b.think);
        }
    }
}

//--------------------------------------------------------------------------
// Options
//--------------------------------------------------------------------------

TEST(WorkloadOptions, TypedGettersAndDefaults)
{
    auto o = WorkloadOptions::parse("pages=32,theta=1.25,tag=hot");
    EXPECT_EQ(o.getSize("pages", 7), 32u);
    EXPECT_DOUBLE_EQ(o.getDouble("theta", 0.0), 1.25);
    EXPECT_EQ(o.getString("tag", "cold"), "hot");
    EXPECT_EQ(o.getSize("absent", 9), 9u);
    o.finish("test");
}

TEST(WorkloadOptions, UnknownKeyIsFatalAtFinish)
{
    auto o = WorkloadOptions::parse("pages=32,tpyo=1");
    EXPECT_EQ(o.getSize("pages", 7), 32u);
    EXPECT_THROW(o.finish("test"), std::runtime_error);
}

TEST(WorkloadOptions, MalformedInputIsFatal)
{
    EXPECT_THROW(WorkloadOptions::parse("pages"), std::runtime_error);
    EXPECT_THROW(WorkloadOptions::parse("=3"), std::runtime_error);
    auto o = WorkloadOptions::parse("pages=notanumber");
    EXPECT_THROW(o.getSize("pages", 1), std::runtime_error);
}

TEST(WorkloadOptions, UnknownGeneratorOptionIsFatal)
{
    Params p = test::smallParams();
    EXPECT_THROW(
        makeWorkload("zipf-serve", p, 0.1, 1, "thtea=0.9"),
        std::runtime_error);
}

//--------------------------------------------------------------------------
// zipf-serve
//--------------------------------------------------------------------------

TEST(ZipfServe, HighSkewConcentratesOnTheHead)
{
    Params p = test::smallParams();
    auto wl = makeZipfServe(p, 1.0, 42,
                            "pages=32,theta=1.2,requests=2000");
    auto counts = sortedCounts(poolReadCounts(*wl, p.pageSize));
    ASSERT_GE(counts.size(), 10u);
    // Zipf(1.2): rank 1 carries ~16x rank 10's weight. Leave wide
    // sampling slack — 4x is far outside what a uniform draw does.
    EXPECT_GE(counts[0], 4 * counts[9]);
}

TEST(ZipfServe, ZeroSkewIsUniform)
{
    Params p = test::smallParams();
    auto wl = makeZipfServe(p, 1.0, 42,
                            "pages=32,theta=0,requests=2000");
    auto counts = sortedCounts(poolReadCounts(*wl, p.pageSize));
    ASSERT_EQ(counts.size(), 32u);
    // 8000 draws over 32 pages: every page lands near 250; max/min
    // stays well under 2 at this sample size.
    EXPECT_LE(counts.front(), 2 * counts.back());
}

TEST(ZipfServe, WriteFractionZeroMeansPoolIsReadOnly)
{
    Params p = test::smallParams();
    auto wl = makeZipfServe(p, 1.0, 1,
                            "pages=16,write=0,requests=100");
    for (CpuId c = 0; c < wl->numCpus(); ++c) {
        for (std::size_t i = 0; i < wl->size(c); ++i) {
            const Ref &r = wl->at(c, i);
            // Think-4 writes are the in-place pool updates; think-2
            // writes are private session state and always present.
            if (r.kind == RefKind::Mem && r.write) {
                EXPECT_EQ(r.think, 2u);
            }
        }
    }
}

//--------------------------------------------------------------------------
// phase-shift
//--------------------------------------------------------------------------

TEST(PhaseShift, WindowRotatesByStepEachPhase)
{
    Params p = test::smallParams(); // 4 page-cache frames
    const std::size_t pages = 12, phases = 4;
    auto wl = makePhaseShift(p, 1.0, 5,
                             "pages=12,phases=4,sweeps=1");
    // Split CPU 0's stream into barrier-delimited segments; segment 0
    // is placement, segments 1..phases are the phases.
    std::vector<std::set<Addr>> segs(1);
    for (std::size_t i = 0; i < wl->size(0); ++i) {
        const Ref &r = wl->at(0, i);
        if (r.kind == RefKind::Barrier)
            segs.emplace_back();
        else if (r.kind == RefKind::Mem)
            segs.back().insert(r.addr / p.pageSize);
    }
    ASSERT_EQ(segs.size(), phases + 2); // placement + phases + tail
    const std::size_t window = std::min(pages, p.pageCacheFrames());
    std::set<Addr> all;
    for (std::size_t ph = 0; ph < phases; ++ph) {
        EXPECT_EQ(segs[ph + 1].size(), window) << "phase " << ph;
        all.insert(segs[ph + 1].begin(), segs[ph + 1].end());
    }
    // step = pages/phases = 3, window = 4: consecutive phases overlap
    // in exactly window - step = 1 page, and the rotation covers the
    // whole pool.
    for (std::size_t ph = 0; ph + 1 < phases; ++ph) {
        std::vector<Addr> inter;
        std::set_intersection(segs[ph + 1].begin(),
                              segs[ph + 1].end(),
                              segs[ph + 2].begin(),
                              segs[ph + 2].end(),
                              std::back_inserter(inter));
        EXPECT_EQ(inter.size(), 1u) << "phases " << ph << "/"
                                    << ph + 1;
    }
    EXPECT_EQ(all.size(), pages);
}

TEST(PhaseShift, DefaultPoolOverflowsThePageCache)
{
    Params p = test::smallParams();
    auto wl = makePhaseShift(p, 0.5, 1);
    std::set<Addr> pages;
    for (CpuId c = 0; c < wl->numCpus(); ++c)
        for (std::size_t i = 0; i < wl->size(c); ++i) {
            const Ref &r = wl->at(c, i);
            if (r.kind == RefKind::Mem ||
                r.kind == RefKind::InitTouch)
                pages.insert(r.addr / p.pageSize);
        }
    EXPECT_GT(pages.size(), p.pageCacheFrames());
}

//--------------------------------------------------------------------------
// tenants
//--------------------------------------------------------------------------

TEST(Tenants, AddressSpacesAreDisjointPerCpu)
{
    Params p = test::smallParams(); // 4 CPUs
    const std::size_t K = 2;
    auto wl = makeTenants(p, 1.0, 9, "tenants=2,pages=8,rounds=2");
    std::vector<std::set<Addr>> touched(wl->numCpus());
    for (CpuId c = 0; c < wl->numCpus(); ++c)
        for (std::size_t i = 0; i < wl->size(c); ++i) {
            const Ref &r = wl->at(c, i);
            if (r.kind == RefKind::Mem ||
                r.kind == RefKind::InitTouch)
                touched[c].insert(r.addr / p.pageSize);
        }
    for (CpuId a = 0; a < wl->numCpus(); ++a) {
        EXPECT_FALSE(touched[a].empty()) << "cpu " << a;
        for (CpuId b = 0; b < wl->numCpus(); ++b) {
            if (a % K == b % K)
                continue; // same tenant: sharing expected
            std::vector<Addr> inter;
            std::set_intersection(touched[a].begin(),
                                  touched[a].end(),
                                  touched[b].begin(),
                                  touched[b].end(),
                                  std::back_inserter(inter));
            EXPECT_TRUE(inter.empty())
                << "cpus " << a << " and " << b
                << " serve different tenants but share pages";
        }
    }
}

TEST(Tenants, TenantCountClampsToCpuCount)
{
    Params p = test::smallParams(); // 4 CPUs
    // Asking for more tenants than CPUs must not leave tenants
    // unserved (or crash); it clamps to ncpus.
    auto wl = makeTenants(p, 1.0, 3, "tenants=64,pages=4,rounds=1");
    EXPECT_GT(wl->memRefCount(), 0u);
}

//--------------------------------------------------------------------------
// determinism
//--------------------------------------------------------------------------

TEST(ServingWorkloads, SameSeedSameStreamDifferentSeedDifferent)
{
    Params p = test::smallParams();
    for (const char *id :
         {"zipf-serve", "phase-shift", "tenants", "database-scan"}) {
        auto a = makeWorkload(id, p, 0.1, 11);
        auto b = makeWorkload(id, p, 0.1, 11);
        auto c = makeWorkload(id, p, 0.1, 12);
        auto *va = dynamic_cast<VectorWorkload *>(a.get());
        auto *vb = dynamic_cast<VectorWorkload *>(b.get());
        auto *vc = dynamic_cast<VectorWorkload *>(c.get());
        ASSERT_NE(va, nullptr);
        ASSERT_NE(vb, nullptr);
        ASSERT_NE(vc, nullptr);
        ASSERT_EQ(va->numCpus(), vb->numCpus()) << id;
        bool differs_from_c =
            va->totalRefs() != vc->totalRefs();
        for (CpuId cpu = 0; cpu < va->numCpus(); ++cpu) {
            ASSERT_EQ(va->size(cpu), vb->size(cpu)) << id;
            for (std::size_t i = 0; i < va->size(cpu); ++i) {
                const Ref &ra = va->at(cpu, i);
                const Ref &rb = vb->at(cpu, i);
                ASSERT_EQ(ra.kind, rb.kind) << id;
                ASSERT_EQ(ra.addr, rb.addr) << id;
                ASSERT_EQ(ra.write, rb.write) << id;
                ASSERT_EQ(ra.think, rb.think) << id;
                if (!differs_from_c && i < vc->size(cpu)) {
                    const Ref &rc = vc->at(cpu, i);
                    if (ra.addr != rc.addr ||
                        ra.write != rc.write)
                        differs_from_c = true;
                }
            }
        }
        EXPECT_TRUE(differs_from_c)
            << id << ": seeds 11 and 12 produced identical streams";
    }
}

TEST(ServingWorkloads, AllPassTheFinishAudit)
{
    // StreamBuilder::finish() fatals on any reference outside the
    // allocated range, so simply building each generator (at two
    // scales) is the audit; also assert the limit is recorded.
    Params p = test::smallParams();
    for (const char *id :
         {"zipf-serve", "phase-shift", "tenants", "database-scan"}) {
        for (double scale : {0.1, 1.0}) {
            auto wl = makeWorkload(id, p, scale, 1);
            auto *vec = dynamic_cast<VectorWorkload *>(wl.get());
            ASSERT_NE(vec, nullptr) << id;
            EXPECT_GT(vec->addrLimit(), 0u) << id;
            EXPECT_GT(vec->memRefCount(), 0u) << id;
        }
    }
}

TEST(ServingWorkloads, DatabaseScanRegistryMatchesHistoricalStream)
{
    // Seed 0xdb + default options must reproduce the stream the
    // database_scan example has always run (the generator moved from
    // the example into the registry).
    Params p = Params::base();
    auto wl = makeWorkload("database-scan", p, 1.0, 0xdb,
                           "transactions=8");
    auto *vec = dynamic_cast<VectorWorkload *>(wl.get());
    ASSERT_NE(vec, nullptr);
    EXPECT_EQ(vec->name(), "database-scan");
    EXPECT_GT(vec->memRefCount(), 0u);
}

} // namespace rnuma
