/** @file Unit tests for directory entries and storage. */

#include <gtest/gtest.h>

#include "proto/directory.hh"

namespace rnuma
{

TEST(Directory, PeekMissingIsNull)
{
    Directory d;
    EXPECT_EQ(d.peek(0x1000), nullptr);
    EXPECT_EQ(d.size(), 0u);
}

TEST(Directory, EntryCreatesAndPersists)
{
    Directory d;
    DirEntry &e = d.entry(0x1000);
    e.sharers.set(3);
    EXPECT_EQ(d.size(), 1u);
    const DirEntry *p = d.peek(0x1000);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(p->sharers.test(3));
}

TEST(DirEntry, DefaultsAreClean)
{
    DirEntry e;
    EXPECT_FALSE(e.hasOwner());
    EXPECT_EQ(e.sharerCount(), 0u);
    EXPECT_TRUE(e.prior.none());
    EXPECT_TRUE(e.touched.none());
}

TEST(DirEntry, OwnerAndSharerCounts)
{
    DirEntry e;
    e.owner = 2;
    e.sharers.set(2);
    e.sharers.set(5);
    EXPECT_TRUE(e.hasOwner());
    EXPECT_EQ(e.sharerCount(), 2u);
}

} // namespace rnuma
