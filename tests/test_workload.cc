/** @file Unit tests for the workload framework and stream builder. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "workload/address_space.hh"
#include "workload/synthetic.hh"
#include "workload/workload.hh"

#include "test_util.hh"

namespace rnuma
{

TEST(AddressSpace, PageAlignedBumpAllocation)
{
    AddressSpace as(4096);
    Addr a = as.allocBytes(10);
    Addr b = as.allocBytes(4097);
    Addr c = as.allocPages(2);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 4096u);
    EXPECT_EQ(c, 3 * 4096u); // 4097 bytes rounded to two pages
    EXPECT_EQ(as.bytesAllocated(), 5 * 4096u);
}

TEST(VectorWorkload, NextAdvancesAndEndsForever)
{
    VectorWorkload wl("t", 2);
    wl.push(0, Ref::mem(64, false, 3));
    wl.push(0, Ref::mem(128, true, 0));
    wl.seal();
    EXPECT_EQ(wl.next(0).addr, 64u);
    EXPECT_EQ(wl.next(0).addr, 128u);
    EXPECT_EQ(wl.next(0).kind, RefKind::End);
    EXPECT_EQ(wl.next(0).kind, RefKind::End); // forever
    EXPECT_EQ(wl.next(1).kind, RefKind::End); // empty stream
}

TEST(VectorWorkload, ResetRewinds)
{
    VectorWorkload wl("t", 1);
    wl.push(0, Ref::mem(64, false, 0));
    wl.seal();
    EXPECT_EQ(wl.next(0).kind, RefKind::Mem);
    EXPECT_EQ(wl.next(0).kind, RefKind::End);
    wl.reset();
    EXPECT_EQ(wl.next(0).kind, RefKind::Mem);
}

TEST(VectorWorkload, BarrierGoesToEveryCpu)
{
    VectorWorkload wl("t", 3);
    wl.pushBarrierAll();
    wl.seal();
    for (CpuId c = 0; c < 3; ++c)
        EXPECT_EQ(wl.next(c).kind, RefKind::Barrier);
}

TEST(VectorWorkload, PushAfterSealPanics)
{
    VectorWorkload wl("t", 1);
    wl.seal();
    EXPECT_THROW(wl.push(0, Ref::barrier()), std::logic_error);
    EXPECT_THROW(wl.seal(), std::logic_error);
}

TEST(VectorWorkload, SizeAndAtIntrospection)
{
    VectorWorkload wl("t", 1);
    wl.push(0, Ref::touchOf(4096));
    wl.seal();
    EXPECT_EQ(wl.size(0), 2u); // touch + end marker
    EXPECT_EQ(wl.at(0, 0).kind, RefKind::InitTouch);
    EXPECT_EQ(wl.at(0, 1).kind, RefKind::End);
    EXPECT_EQ(wl.totalRefs(), 2u);
}

TEST(StreamBuilder, TouchRangeCoversEveryPage)
{
    Params p = test::smallParams();
    StreamBuilder b("t", p, 1);
    Addr base = b.allocPages(3);
    b.touchRange(0, base, 3 * p.pageSize);
    auto wl = b.finish();
    // 3 init touches + end.
    EXPECT_EQ(wl->size(0), 4u);
    EXPECT_EQ(wl->at(0, 0).kind, RefKind::InitTouch);
    EXPECT_EQ(wl->at(0, 2).addr, base + 2 * p.pageSize);
}

TEST(StreamBuilder, TopologyHelpers)
{
    Params p = test::smallParams();
    StreamBuilder b("t", p, 1);
    EXPECT_EQ(b.ncpus(), 4u);
    EXPECT_EQ(b.nnodes(), 2u);
    EXPECT_EQ(b.nodeOf(0), 0u);
    EXPECT_EQ(b.nodeOf(3), 1u);
}

TEST(StreamBuilder, ScaledHelper)
{
    EXPECT_EQ(scaled(100, 1.0), 100u);
    EXPECT_EQ(scaled(100, 0.25), 25u);
    EXPECT_EQ(scaled(3, 0.01), 1u); // never below one
}

TEST(StreamBuilder, ScaledClampsToStructuralMinimum)
{
    // Generators pass the smallest structure their loops need (for
    // example lu's 2x2 block grid), which wins over the scale...
    EXPECT_EQ(scaled(16, 0.01, 2), 2u);
    EXPECT_EQ(scaled(256, 0.001, 32), 32u);
    // ...but never shrinks a large enough value.
    EXPECT_EQ(scaled(16, 1.0, 2), 16u);
    EXPECT_EQ(scaled(16, 0.5, 0), 8u); // min 0 behaves as 1
    // Non-positive scales are configuration errors (fatal), not
    // clamps.
    EXPECT_THROW(scaled(16, 0.0), std::runtime_error);
    EXPECT_THROW(scaled(16, -1.0), std::runtime_error);
}

TEST(VectorWorkload, MemRefCountCountsOnlyLoadsAndStores)
{
    VectorWorkload wl("w", 2);
    EXPECT_EQ(wl.memRefCount(), 0u);
    wl.push(0, Ref::touchOf(0));
    wl.pushBarrierAll();
    EXPECT_EQ(wl.memRefCount(), 0u);
    wl.push(0, Ref::mem(0, false, 1));
    wl.push(1, Ref::mem(64, true, 1));
    wl.seal();
    EXPECT_EQ(wl.memRefCount(), 2u);
}

} // namespace rnuma
