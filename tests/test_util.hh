/**
 * @file
 * Shared helpers for the unit and integration tests: a deliberately
 * tiny machine configuration that makes cache, page-cache, and
 * threshold behaviors easy to trigger with short reference streams.
 */

#ifndef RNUMA_TESTS_TEST_UTIL_HH
#define RNUMA_TESTS_TEST_UTIL_HH

#include "common/params.hh"

namespace rnuma::test
{

/**
 * A 2-node x 2-CPU machine with small caches: 512 B pages (16 blocks
 * per page), 512 B L1s, 1 KB block cache, 4-frame page cache, and a
 * relocation threshold of 4.
 */
inline Params
smallParams()
{
    Params p;
    p.numNodes = 2;
    p.cpusPerNode = 2;
    p.blockSize = 32;
    p.pageSize = 512;
    p.l1Size = 512;
    p.blockCacheSize = 1024;
    p.rnumaBlockCacheSize = 64;
    p.pageCacheSize = 4 * 512;
    p.relocationThreshold = 4;
    p.validate();
    return p;
}

/** The paper's base machine, unchanged. */
inline Params
paperParams()
{
    return Params::base();
}

} // namespace rnuma::test

#endif // RNUMA_TESTS_TEST_UTIL_HH
