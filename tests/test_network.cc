/** @file Unit tests for the point-to-point network model. */

#include <gtest/gtest.h>

#include "net/network.hh"

namespace rnuma
{

TEST(Network, LocalSendIsFree)
{
    Network n(4, 100, 20);
    EXPECT_EQ(n.send(50, 2, 2, MsgKind::Request), 50u);
    EXPECT_EQ(n.waited(), 0u);
}

TEST(Network, UncontendedSendIsNiPlusWire)
{
    Network n(4, 100, 20);
    // Source NI occupancy (20) + wire (100).
    EXPECT_EQ(n.send(0, 0, 1, MsgKind::Request), 120u);
}

TEST(Network, SourceNiSerializesOutgoing)
{
    Network n(4, 100, 20);
    EXPECT_EQ(n.send(0, 0, 1, MsgKind::Request), 120u);
    EXPECT_EQ(n.send(0, 0, 2, MsgKind::Request), 140u);
    EXPECT_GT(n.waited(), 0u);
}

TEST(Network, MessageCountsByKind)
{
    Network n(4, 100, 20);
    n.send(0, 0, 1, MsgKind::Request);
    n.send(0, 1, 0, MsgKind::Reply);
    n.post(0, 0, 2, MsgKind::Writeback);
    n.post(0, 0, 2, MsgKind::Invalidate);
    EXPECT_EQ(n.count(MsgKind::Request), 1u);
    EXPECT_EQ(n.count(MsgKind::Reply), 1u);
    EXPECT_EQ(n.count(MsgKind::Writeback), 1u);
    EXPECT_EQ(n.count(MsgKind::Invalidate), 1u);
    EXPECT_EQ(n.count(MsgKind::Flush), 0u);
    EXPECT_EQ(n.totalMessages(), 4u);
}

TEST(Network, PostChargesNiWithoutReturningLatency)
{
    Network n(2, 100, 20);
    n.post(0, 0, 1, MsgKind::Writeback);
    // The NI is now busy; a send right after queues behind it.
    EXPECT_EQ(n.send(0, 0, 1, MsgKind::Request), 140u);
}

} // namespace rnuma
