/** @file Unit tests for the deterministic PRNG. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"

namespace rnuma
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            same++;
    EXPECT_LT(same, 5);
}

TEST(Rng, ZeroSeedIsUsable)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.range(3, 5));
    EXPECT_EQ(seen.size(), 3u);
    EXPECT_TRUE(seen.count(3));
    EXPECT_TRUE(seen.count(5));
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    // Mean should be near 0.5.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ShuffleIsAPermutation)
{
    Rng r(17);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    std::vector<int> orig = v;
    r.shuffle(v);
    std::multiset<int> a(v.begin(), v.end());
    std::multiset<int> b(orig.begin(), orig.end());
    EXPECT_EQ(a, b);
}

TEST(Rng, ShuffleEmptyAndSingleton)
{
    Rng r(19);
    std::vector<int> empty;
    r.shuffle(empty);
    EXPECT_TRUE(empty.empty());
    std::vector<int> one{42};
    r.shuffle(one);
    EXPECT_EQ(one[0], 42);
}

} // namespace rnuma
