/** @file Machine-level tests of the CC-NUMA protocol. */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "sim/runner.hh"
#include "workload/micro.hh"

#include "test_util.hh"

namespace rnuma
{

TEST(MachineCcNuma, PrivateDataHasNoRemoteTraffic)
{
    Params p = test::smallParams();
    // One page per CPU (16 blocks) fits the 16-line L1 exactly, so
    // iterations 2+ hit in the L1.
    auto wl = makePrivateLoop(p, 1, 3);
    RunStats s = runProtocol(p, Protocol::CCNuma, *wl);
    EXPECT_EQ(s.remoteFetches, 0u);
    EXPECT_EQ(s.refetches, 0u);
    EXPECT_EQ(s.scomaAllocations, 0u);
    EXPECT_GT(s.localFills, 0u);
    EXPECT_GT(s.l1Hits, 0u);
}

TEST(MachineCcNuma, HotReuseBeyondBlockCacheRefetches)
{
    Params p = test::smallParams(); // 1 KB block cache = 32 blocks
    // 8 remote pages x 16 blocks = 128 blocks, swept 3 times.
    auto wl = makeHotRemoteReuse(p, 8, 3);
    RunStats s = runProtocol(p, Protocol::CCNuma, *wl);
    EXPECT_GT(s.refetches, 100u);
    // Page stats recorded against all 8 remote pages (Figure 5 data).
    EXPECT_EQ(s.remotePageCount(), 8u);
}

TEST(MachineCcNuma, InfiniteBlockCacheEliminatesRefetches)
{
    Params p = test::smallParams();
    auto wl = makeHotRemoteReuse(p, 8, 3);
    RunStats finite = runProtocol(p, Protocol::CCNuma, *wl);
    RunStats infinite = runInfiniteBaseline(p, *wl);
    EXPECT_EQ(infinite.refetches, 0u);
    EXPECT_LT(infinite.ticks, finite.ticks);
    // Cold misses identical: one per remote block.
    EXPECT_EQ(infinite.coldMisses, 8u * p.blocksPerPage());
}

TEST(MachineCcNuma, ProducerConsumerIsCoherenceTraffic)
{
    Params p = test::smallParams();
    auto wl = makeProducerConsumer(p, 2, 4);
    RunStats s = runProtocol(p, Protocol::CCNuma, *wl);
    EXPECT_GT(s.coherenceMisses, 0u);
    // The consumer's copies are invalidated each round; nothing is a
    // capacity refetch (2 pages = 32 blocks fit the block cache).
    EXPECT_EQ(s.refetches, 0u);
    EXPECT_GT(s.invalidationsSent, 0u);
}

TEST(MachineCcNuma, FirstTouchFaultsOncePerRemotePageAndNode)
{
    Params p = test::smallParams();
    auto wl = makeHotRemoteReuse(p, 4, 2);
    RunStats s = runProtocol(p, Protocol::CCNuma, *wl);
    // Only node 0 references the 4 remote pages: 4 mapping faults.
    EXPECT_EQ(s.pageFaults, 4u);
}

TEST(MachineCcNuma, DeterministicAcrossIdenticalRuns)
{
    Params p = test::smallParams();
    auto wl = makeHotRemoteReuse(p, 6, 3);
    RunStats a = runProtocol(p, Protocol::CCNuma, *wl);
    RunStats b = runProtocol(p, Protocol::CCNuma, *wl);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.remoteFetches, b.remoteFetches);
    EXPECT_EQ(a.refetches, b.refetches);
}

TEST(MachineCcNuma, RunTwicePanics)
{
    Params p = test::smallParams();
    auto wl = makePrivateLoop(p, 1, 1);
    Machine m(p, Protocol::CCNuma, *wl);
    m.run();
    EXPECT_THROW(m.run(), std::logic_error);
}

TEST(MachineCcNuma, WorkloadCpuMismatchIsRejected)
{
    Params p = test::smallParams();
    VectorWorkload wl("bad", 2); // machine wants 4
    wl.seal();
    EXPECT_THROW(Machine(p, Protocol::CCNuma, wl), std::logic_error);
}

} // namespace rnuma
