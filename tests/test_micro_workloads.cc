/** @file Structural tests for the microbenchmark workloads. */

#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "workload/micro.hh"

#include "test_util.hh"

namespace rnuma
{

namespace
{

/** Count entries of one kind in a cpu's stream. */
std::size_t
countKind(const VectorWorkload &wl, CpuId c, RefKind k)
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < wl.size(c); ++i)
        if (wl.at(c, i).kind == k)
            ++n;
    return n;
}

/** Every cpu must see the same number of barriers (no deadlock). */
void
expectAlignedBarriers(const VectorWorkload &wl)
{
    std::size_t expected = countKind(wl, 0, RefKind::Barrier);
    for (CpuId c = 1; c < wl.numCpus(); ++c)
        EXPECT_EQ(countKind(wl, c, RefKind::Barrier), expected)
            << "cpu " << c << " barrier count mismatch";
}

} // namespace

TEST(MicroWorkloads, AllHaveAlignedBarriers)
{
    Params p = test::smallParams();
    expectAlignedBarriers(*makePrivateLoop(p, 2, 2));
    expectAlignedBarriers(*makeHotRemoteReuse(p, 4, 2));
    expectAlignedBarriers(*makeEvictionStorm(p, 6, 2));
    expectAlignedBarriers(*makeProducerConsumer(p, 2, 3));
    expectAlignedBarriers(*makeAdversary(p, 4, 5));
    expectAlignedBarriers(*makeRwSharing(p, 10));
}

TEST(MicroWorkloads, EvictionStormMustOverflowThePageCache)
{
    // The whole point of the pattern is a reuse set wider than the
    // page-cache frame budget; a configuration where it fits is a
    // silent regression back into hot reuse, so the generator
    // refuses it.
    Params p = test::smallParams(); // 4 frames
    EXPECT_THROW(makeEvictionStorm(p, 4, 2), std::logic_error);
    EXPECT_THROW(makeEvictionStorm(p, 3, 2), std::logic_error);
    auto wl = makeEvictionStorm(p, 5, 2);
    EXPECT_GT(wl->memRefCount(), 0u);
}

TEST(MicroWorkloads, EvictionStormCausesEvictionPingPong)
{
    // On the small machine the pattern must actually produce the
    // relocate/evict churn it exists for: relocations exceeding the
    // page count prove pages re-entered the page cache after being
    // evicted.
    Params p = test::smallParams();
    auto wl = makeEvictionStorm(p, 8, 6);
    RunStats s = runProtocol(p, Protocol::RNuma, *wl);
    EXPECT_GT(s.relocations, 8u);
}

TEST(MicroWorkloads, PrivateLoopKeepsCpusApart)
{
    Params p = test::smallParams();
    auto wl = makePrivateLoop(p, 2, 1);
    // Each cpu's addresses must be disjoint: check cpu0 vs cpu1.
    Addr max0 = 0, min1 = ~Addr(0);
    for (std::size_t i = 0; i < wl->size(0); ++i) {
        const Ref &r = wl->at(0, i);
        if (r.kind == RefKind::Mem && r.addr > max0)
            max0 = r.addr;
    }
    for (std::size_t i = 0; i < wl->size(1); ++i) {
        const Ref &r = wl->at(1, i);
        if (r.kind == RefKind::Mem && r.addr < min1)
            min1 = r.addr;
    }
    EXPECT_LT(max0, min1);
}

TEST(MicroWorkloads, HotReuseReaderIsNodeZeroOwnerIsNodeOne)
{
    Params p = test::smallParams();
    auto wl = makeHotRemoteReuse(p, 2, 2);
    // All InitTouches belong to cpu 2 (first cpu of node 1).
    EXPECT_GT(countKind(*wl, 2, RefKind::InitTouch), 0u);
    EXPECT_EQ(countKind(*wl, 0, RefKind::InitTouch), 0u);
    // All memory refs belong to cpu 0 and are reads.
    EXPECT_GT(countKind(*wl, 0, RefKind::Mem), 0u);
    for (std::size_t i = 0; i < wl->size(0); ++i) {
        if (wl->at(0, i).kind == RefKind::Mem) {
            ASSERT_FALSE(wl->at(0, i).write);
        }
    }
}

TEST(MicroWorkloads, AdversaryTouchCountMatches)
{
    Params p = test::smallParams();
    std::size_t touches = 5;
    auto wl = makeAdversary(p, 4, touches); // 2 pairs
    // Victim (cpu 0) does 2 reads per touch per pair.
    EXPECT_EQ(countKind(*wl, 0, RefKind::Mem), 2u * 2u * touches);
}

TEST(MicroWorkloads, AdversaryBlocksConflictInAllCaches)
{
    Params p = test::smallParams();
    auto wl = makeAdversary(p, 2, 3);
    // Collect the two distinct addresses the victim alternates over.
    Addr a = invalidAddr, b = invalidAddr;
    for (std::size_t i = 0; i < wl->size(0); ++i) {
        const Ref &r = wl->at(0, i);
        if (r.kind != RefKind::Mem)
            continue;
        if (a == invalidAddr)
            a = r.addr;
        else if (r.addr != a && b == invalidAddr)
            b = r.addr;
    }
    ASSERT_NE(a, invalidAddr);
    ASSERT_NE(b, invalidAddr);
    auto set_of = [&](std::size_t cache_bytes, Addr x) {
        return (x / p.blockSize) % (cache_bytes / p.blockSize);
    };
    EXPECT_EQ(set_of(p.l1Size, a), set_of(p.l1Size, b));
    EXPECT_EQ(set_of(p.blockCacheSize, a),
              set_of(p.blockCacheSize, b));
    EXPECT_EQ(set_of(p.rnumaBlockCacheSize, a),
              set_of(p.rnumaBlockCacheSize, b));
}

TEST(MicroWorkloads, RwSharingEveryCpuReadsAndWrites)
{
    Params p = test::smallParams();
    auto wl = makeRwSharing(p, 8);
    for (CpuId c = 0; c < wl->numCpus(); ++c) {
        std::size_t reads = 0, writes = 0;
        for (std::size_t i = 0; i < wl->size(c); ++i) {
            const Ref &r = wl->at(c, i);
            if (r.kind != RefKind::Mem)
                continue;
            (r.write ? writes : reads)++;
        }
        EXPECT_EQ(reads, 8u);
        EXPECT_EQ(writes, 8u);
    }
}

} // namespace rnuma
