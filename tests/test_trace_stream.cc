/**
 * @file
 * Tests for the streaming binary trace format
 * (workload/trace_stream.hh): record -> replay bit-identity against
 * the materialized source (in-order and under randomized per-CPU
 * interleaving), header metadata preservation, reset semantics,
 * rejection of corrupt/truncated/wrong-magic files, and the O(1)
 * resident-memory guarantee of mmap replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "workload/micro.hh"
#include "workload/registry.hh"
#include "workload/serving.hh"
#include "workload/trace_stream.hh"

#include "test_util.hh"

namespace rnuma
{

namespace
{

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

void
expectSameRef(const Ref &a, const Ref &b, CpuId cpu, std::size_t i)
{
    ASSERT_EQ(a.kind, b.kind) << "cpu " << cpu << " entry " << i;
    ASSERT_EQ(a.addr, b.addr) << "cpu " << cpu << " entry " << i;
    ASSERT_EQ(a.write, b.write) << "cpu " << cpu << " entry " << i;
    ASSERT_EQ(a.think, b.think) << "cpu " << cpu << " entry " << i;
}

/** Record @p src, replay the file, and assert per-CPU in-order
 * bit-identity (plus peek/next agreement and End-forever). */
void
roundTrip(VectorWorkload &src, const char *file)
{
    std::string path = tempPath(file);
    recordStreamTrace(src, path);
    StreamTraceWorkload replay(path);

    EXPECT_EQ(replay.name(), src.name());
    EXPECT_EQ(replay.maxThink(), src.maxThink());
    EXPECT_EQ(replay.addrLimit(), src.addrLimit());
    ASSERT_EQ(replay.numCpus(), src.numCpus());
    for (CpuId c = 0; c < src.numCpus(); ++c) {
        for (std::size_t i = 0; i < src.size(c) + 3; ++i) {
            Ref peeked = replay.peek(c);
            const Ref &got = replay.next(c);
            expectSameRef(peeked, got, c, i);
            if (i < src.size(c))
                expectSameRef(src.at(c, i), got, c, i);
            else
                ASSERT_EQ(got.kind, RefKind::End);
        }
    }
    std::remove(path.c_str());
}

} // namespace

TEST(TraceStream, RoundTripMicroWorkloads)
{
    Params p = test::smallParams();
    auto pc = makeProducerConsumer(p, 2, 2);
    roundTrip(*pc, "pc.strace");
    auto rw = makeRwSharing(p, 3);
    roundTrip(*rw, "rw.strace");
}

TEST(TraceStream, RoundTripAppAndServingWorkloads)
{
    Params p = test::smallParams();
    for (const char *id :
         {"radix", "barnes", "zipf-serve", "tenants",
          "database-scan"}) {
        auto wl = makeWorkload(id, p, 0.1, 3);
        auto *vec = dynamic_cast<VectorWorkload *>(wl.get());
        ASSERT_NE(vec, nullptr) << id;
        roundTrip(*vec, "wl.strace");
    }
}

TEST(TraceStream, InterleavedConsumptionMatchesSource)
{
    // The simulator consumes CPU streams in arbitrary interleavings;
    // fuzz the cursor independence with a deterministic scramble.
    Params p = test::smallParams();
    auto src = makeZipfServe(p, 1.0, 17, "pages=24,requests=200");
    std::string path = tempPath("interleave.strace");
    recordStreamTrace(*src, path);
    StreamTraceWorkload replay(path);

    ASSERT_EQ(replay.numCpus(), src->numCpus());
    std::vector<std::size_t> pos(src->numCpus(), 0);
    std::uint64_t lcg = 0x9e3779b97f4a7c15ULL;
    std::size_t done = 0;
    while (done < src->numCpus()) {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        CpuId c = static_cast<CpuId>((lcg >> 33) % src->numCpus());
        // Bursts of 1-8 references per pick, like the event loop.
        std::size_t burst = 1 + ((lcg >> 20) & 7);
        for (std::size_t k = 0; k < burst; ++k) {
            const Ref &got = replay.next(c);
            if (pos[c] < src->size(c)) {
                expectSameRef(src->at(c, pos[c]), got, c, pos[c]);
                if (++pos[c] == src->size(c))
                    ++done;
            } else {
                ASSERT_EQ(got.kind, RefKind::End);
            }
        }
    }
    std::remove(path.c_str());
}

TEST(TraceStream, ResetRewindsToTheBeginning)
{
    Params p = test::smallParams();
    auto src = makeProducerConsumer(p, 2, 3);
    std::string path = tempPath("reset.strace");
    recordStreamTrace(*src, path);
    StreamTraceWorkload replay(path);

    // Consume an uneven prefix, then rewind.
    for (int i = 0; i < 7; ++i)
        (void)replay.next(0);
    (void)replay.next(1);
    replay.reset();
    for (CpuId c = 0; c < src->numCpus(); ++c)
        for (std::size_t i = 0; i < src->size(c); ++i)
            expectSameRef(src->at(c, i), replay.next(c), c, i);
    std::remove(path.c_str());
}

TEST(TraceStream, RecordResetsTheSource)
{
    // recordStreamTrace drains the source; it must hand it back
    // rewound so the caller can run it immediately afterwards.
    Params p = test::smallParams();
    auto src = makeRwSharing(p, 2);
    std::string path = tempPath("rewind.strace");
    const Ref first = src->at(0, 0);
    recordStreamTrace(*src, path);
    expectSameRef(first, src->next(0), 0, 0);
    std::remove(path.c_str());
}

TEST(TraceStream, MissingFileIsFatal)
{
    EXPECT_THROW(
        StreamTraceWorkload("/nonexistent/missing.strace"),
        std::runtime_error);
}

TEST(TraceStream, WrongMagicIsFatal)
{
    std::string path = tempPath("junk.strace");
    std::ofstream out(path, std::ios::binary);
    const char junk[64] = "this is not a stream trace at all";
    out.write(junk, sizeof(junk));
    out.close();
    EXPECT_THROW(StreamTraceWorkload{path}, std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceStream, TruncatedHeaderIsFatal)
{
    Params p = test::smallParams();
    auto src = makeProducerConsumer(p, 2, 2);
    std::string path = tempPath("trunchdr.strace");
    recordStreamTrace(*src, path);
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes(16);
    in.read(bytes.data(), 16);
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), 16);
    out.close();
    EXPECT_THROW(StreamTraceWorkload{path}, std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceStream, TruncatedBodyIsFatalAtDecodeTime)
{
    Params p = test::smallParams();
    auto src = makeZipfServe(p, 1.0, 1, "pages=16,requests=400");
    std::string path = tempPath("truncbody.strace");
    recordStreamTrace(*src, path);
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    std::size_t full = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    std::vector<char> bytes(full / 2);
    in.read(bytes.data(),
            static_cast<std::streamsize>(bytes.size()));
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    out.close();
    // Construction may succeed (the header is intact); walking the
    // body must hit the truncation fatally, never read junk.
    EXPECT_THROW(
        {
            StreamTraceWorkload replay(path);
            for (CpuId c = 0; c < replay.numCpus(); ++c) {
                for (std::size_t i = 0; i < src->size(c) + 1; ++i)
                    (void)replay.next(c);
            }
        },
        std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceStream, CorruptVersionIsFatal)
{
    Params p = test::smallParams();
    auto src = makeProducerConsumer(p, 2, 2);
    std::string path = tempPath("badver.strace");
    recordStreamTrace(*src, path);
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8); // the u32 version field follows the u64 magic
    const char ff = '\xff';
    f.write(&ff, 1);
    f.close();
    EXPECT_THROW(StreamTraceWorkload{path}, std::runtime_error);
    std::remove(path.c_str());
}

namespace
{

/**
 * An on-the-fly generator that never materializes its stream: @p n
 * memory references per CPU with a pseudo-random walk over a 64 MB
 * span, plus periodic barriers. Used to record traces far larger
 * than the test's memory budget.
 */
class SyntheticFirehose : public Workload
{
  public:
    SyntheticFirehose(std::size_t ncpus, std::size_t n)
        : total_(n), pos_(ncpus, 0), state_(ncpus), pending_(ncpus)
    {
        for (std::size_t c = 0; c < ncpus; ++c)
            state_[c] = 0x1234 + c * 0x9e3779b9ULL;
        for (std::size_t c = 0; c < ncpus; ++c)
            advance(static_cast<CpuId>(c));
    }

    std::size_t numCpus() const override { return pos_.size(); }
    const Ref &
    next(CpuId cpu) override
    {
        current_ = pending_[cpu];
        advance(cpu);
        return current_;
    }
    const Ref &peek(CpuId cpu) override { return pending_[cpu]; }
    void
    reset() override
    {
        for (std::size_t c = 0; c < pos_.size(); ++c) {
            pos_[c] = 0;
            state_[c] = 0x1234 + c * 0x9e3779b9ULL;
            advance(static_cast<CpuId>(c));
        }
    }
    const std::string &name() const override { return name_; }
    Tick maxThink() const override { return 4; }

  private:
    void
    advance(CpuId cpu)
    {
        if (pos_[cpu] > total_) {
            pending_[cpu] = Ref::end();
            return;
        }
        std::size_t i = pos_[cpu]++;
        if (i == total_) {
            pending_[cpu] = Ref::end();
            return;
        }
        std::uint64_t &s = state_[cpu];
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        if (i % 10000 == 9999) {
            pending_[cpu] = Ref::barrier();
            return;
        }
        Addr a = (s >> 17) % (64ULL << 20);
        pending_[cpu] =
            Ref::mem(a, (s & 15) == 0, 1 + ((s >> 8) & 3));
    }

    std::string name_ = "firehose";
    std::size_t total_;
    std::vector<std::size_t> pos_;
    std::vector<std::uint64_t> state_;
    std::vector<Ref> pending_;
    Ref current_;
};

/** Current resident set size, in bytes, from /proc/self/statm. */
std::size_t
residentBytes()
{
    std::ifstream statm("/proc/self/statm");
    std::size_t vm_pages = 0, rss_pages = 0;
    statm >> vm_pages >> rss_pages;
    return rss_pages * 4096;
}

} // namespace

TEST(TraceStream, ReplayResidentMemoryIsIndependentOfTraceLength)
{
    // Record a trace much larger than the decode working set (4 CPUs
    // x 1M refs; RNUMA_STREAM_SOAK scales it up for the manual
    // billions-scale soak), then replay it and assert RSS grows by a
    // small constant, not by anything proportional to the file.
    std::size_t per_cpu = 1000000;
    if (const char *soak = std::getenv("RNUMA_STREAM_SOAK"))
        per_cpu = static_cast<std::size_t>(std::atoll(soak));
    std::string path = tempPath("firehose.strace");
    {
        SyntheticFirehose src(4, per_cpu);
        recordStreamTrace(src, path);
    }
    std::size_t file_size = 0;
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        file_size = static_cast<std::size_t>(in.tellg());
    }
    ASSERT_GT(file_size, 4u << 20); // big enough to mean something

    SyntheticFirehose expect(4, per_cpu);
    std::size_t rss_before = residentBytes();
    StreamTraceWorkload replay(path);
    std::uint64_t checked = 0;
    bool live = true;
    while (live) {
        live = false;
        for (CpuId c = 0; c < 4; ++c) {
            const Ref &got = replay.next(c);
            const Ref &want = expect.next(c);
            ASSERT_EQ(got.kind, want.kind) << "entry " << checked;
            ASSERT_EQ(got.addr, want.addr);
            ASSERT_EQ(got.write, want.write);
            ASSERT_EQ(got.think, want.think);
            if (got.kind != RefKind::End)
                live = true;
            ++checked;
        }
    }
    std::size_t rss_after = residentBytes();
    EXPECT_GE(checked, 4 * per_cpu);
    // The decode working set is ~one 64 KB chunk per CPU; allow
    // generous allocator slack but stay far below the file size.
    std::size_t growth =
        rss_after > rss_before ? rss_after - rss_before : 0;
    EXPECT_LT(growth, file_size / 2)
        << "replay RSS grew by " << growth << " of a " << file_size
        << "-byte trace";
    EXPECT_LT(growth, 8u << 20);
    std::remove(path.c_str());
}

} // namespace rnuma
