/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace rnuma
{

TEST(Stats, RecordFetchClassifies)
{
    RunStats s;
    s.recordFetch(1, MissKind::Cold, false, true);
    s.recordFetch(1, MissKind::Coherence, false, true);
    s.recordFetch(1, MissKind::Refetch, false, true);
    EXPECT_EQ(s.remoteFetches, 3u);
    EXPECT_EQ(s.coldMisses, 1u);
    EXPECT_EQ(s.coherenceMisses, 1u);
    EXPECT_EQ(s.refetches, 1u);
}

TEST(Stats, ConservationOfMissKinds)
{
    RunStats s;
    for (int i = 0; i < 100; ++i) {
        s.recordFetch(static_cast<Addr>(i % 7),
                      static_cast<MissKind>(i % 3), i % 2 == 0, true);
    }
    EXPECT_EQ(s.coldMisses + s.coherenceMisses + s.refetches,
              s.remoteFetches);
}

TEST(Stats, LocalFetchesSkipPageStats)
{
    RunStats s;
    s.recordFetch(5, MissKind::Refetch, true, /*remote=*/false);
    EXPECT_EQ(s.refetches, 1u);
    EXPECT_EQ(s.remotePageCount(), 0u);
}

TEST(Stats, RwPageClassification)
{
    RunStats s;
    // Page 1: read-only remote traffic.
    s.recordFetch(1, MissKind::Refetch, false, true);
    s.recordFetch(1, MissKind::Refetch, false, true);
    // Page 2: read-write remote traffic.
    s.recordFetch(2, MissKind::Refetch, false, true);
    s.recordFetch(2, MissKind::Refetch, true, true);
    EXPECT_FALSE(s.pages.at(1).readWriteShared());
    EXPECT_TRUE(s.pages.at(2).readWriteShared());
    // 2 of 4 refetches are on the RW page.
    EXPECT_DOUBLE_EQ(s.rwPageRefetchFraction(), 0.5);
}

TEST(Stats, RwFractionEmptyIsZero)
{
    RunStats s;
    EXPECT_DOUBLE_EQ(s.rwPageRefetchFraction(), 0.0);
}

TEST(Stats, RefetchDistributionSortedDescending)
{
    RunStats s;
    for (int i = 0; i < 3; ++i)
        s.recordFetch(10, MissKind::Refetch, false, true);
    s.recordFetch(20, MissKind::Refetch, false, true);
    for (int i = 0; i < 7; ++i)
        s.recordFetch(30, MissKind::Refetch, false, true);
    auto d = s.refetchDistribution();
    ASSERT_EQ(d.size(), 3u);
    EXPECT_EQ(d[0], 7u);
    EXPECT_EQ(d[1], 3u);
    EXPECT_EQ(d[2], 1u);
}

TEST(Stats, PrintMentionsHeadlineCounters)
{
    RunStats s;
    s.ticks = 1234;
    s.recordFetch(0, MissKind::Cold, false, true);
    std::ostringstream os;
    s.print(os);
    EXPECT_NE(os.str().find("ticks=1234"), std::string::npos);
    EXPECT_NE(os.str().find("remoteFetches=1"), std::string::npos);
}

} // namespace rnuma
