/**
 * @file
 * Smoke tests: the full four-way ProtocolComparison harness
 * (sim/runner.hh) runs end to end on the tiny 2x2 machine from
 * test_util.hh for every Table 3 application, and every run issues a
 * non-zero number of references. Complements test_integration_apps.cc,
 * which exercises the paper's full machine per protocol but never the
 * compareProtocols() path or the small configuration.
 */

#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "workload/registry.hh"

#include "test_util.hh"

namespace rnuma
{

namespace
{

// Tiny inputs: smoke, not soak. Generators clamp their structure
// (see scaled()), so any positive scale is viable; 0.1 keeps the
// streams representative.
constexpr double smokeScale = 0.1;

/** Name parameterized cases by app, so --gtest_filter=*barnes* works. */
std::string
appTestName(const ::testing::TestParamInfo<std::string> &info)
{
    return info.param;
}

} // namespace

class AppSmoke : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AppSmoke, FourWayComparisonOnSmallMachine)
{
    Params p = test::smallParams();
    auto wl = makeApp(GetParam(), p, smokeScale);
    ASSERT_GT(wl->totalRefs(), 0u);

    ProtocolComparison cmp = compareProtocols(p, *wl);

    // Every configuration simulated something.
    for (const RunStats *s :
         {&cmp.baseline, &cmp.ccNuma, &cmp.sComa, &cmp.rNuma}) {
        EXPECT_GT(s->refs, 0u);
        EXPECT_GT(s->ticks, 0u);
    }

    // All four runs consumed the same reference stream.
    EXPECT_EQ(cmp.baseline.refs, cmp.ccNuma.refs);
    EXPECT_EQ(cmp.baseline.refs, cmp.sComa.refs);
    EXPECT_EQ(cmp.baseline.refs, cmp.rNuma.refs);

    // The infinite-block-cache baseline can never lose to the finite
    // CC-NUMA, so normalized times are >= 1 (Figure 6 methodology).
    EXPECT_GE(cmp.normCC(), 1.0);
    EXPECT_GT(cmp.normSC(), 0.0);
    EXPECT_GT(cmp.normRN(), 0.0);
    EXPECT_LE(cmp.bestOfBase(), cmp.normCC());
    EXPECT_LE(cmp.bestOfBase(), cmp.normSC());
}

// Regression for the scale floor: generators used to degenerate
// below scale 0.1 (lu's grid collapsed to 1x1 and emitted zero
// memory references). Every app must now produce a simulatable
// stream at scale 0.01.
TEST_P(AppSmoke, StaysViableAtHundredthScale)
{
    Params p = test::smallParams();
    auto wl = makeApp(GetParam(), p, 0.01);
    EXPECT_GT(wl->memRefCount(), 0u);
    RunStats s = runProtocol(p, Protocol::RNuma, *wl);
    EXPECT_GT(s.refs, 0u);
    EXPECT_GT(s.ticks, 0u);
}

// Instantiating from the registry itself keeps the smoke suite in
// lockstep with the registered app set — a new or renamed app is
// covered (or surfaced) automatically.
INSTANTIATE_TEST_SUITE_P(AllApps, AppSmoke,
                         ::testing::ValuesIn(appNames()),
                         appTestName);

// Table 3 has exactly ten applications.
TEST(AppSmoke, RegistryHasAllTableThreeApps)
{
    EXPECT_EQ(appNames().size(), 10u);
}

} // namespace rnuma
