/**
 * @file
 * Smoke tests: the registry-driven N-way ComparisonMatrix harness
 * (sim/runner.hh) runs end to end on the tiny 2x2 machine from
 * test_util.hh for every Table 3 application and every registered
 * protocol, and each hybrid stays within the paper's comparative
 * envelope ("R-NUMA is never much worse than the best of CC-NUMA
 * and S-COMA", Section 5). Complements test_integration_apps.cc,
 * which exercises the paper's full machine per protocol but never
 * the comparison path or the small configuration. A newly
 * registered protocol is covered here automatically.
 */

#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "workload/registry.hh"

#include "test_util.hh"

namespace rnuma
{

namespace
{

// Tiny inputs: smoke, not soak. Generators clamp their structure
// (see scaled()), so any positive scale is viable; 0.1 keeps the
// streams representative.
constexpr double smokeScale = 0.1;

/**
 * The paper's envelope, with slack for the tiny machine: Section 5
 * measures R-NUMA at worst ~2x the best of the base systems (+57%
 * on the full inputs); the 2x2 configuration with its 4-frame page
 * cache is harsher than the paper machine, so the smoke bound is
 * 3x — loose enough to be stable, tight enough that a policy that
 * stops reacting (or ping-pongs itself to death) fails it.
 */
constexpr double hybridEnvelope = 3.0;

/** Name parameterized cases by app, so --gtest_filter=*barnes* works. */
std::string
appTestName(const ::testing::TestParamInfo<std::string> &info)
{
    return info.param;
}

} // namespace

class AppSmoke : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AppSmoke, NWayComparisonOnSmallMachine)
{
    // smallParams()'s 4-frame page cache is deliberately starved —
    // ideal for triggering eviction mechanisms, but it turns fmm's
    // reuse set into a relocation storm ~28x the best base system.
    // The Section 5 envelope is a claim about proportioned
    // machines, so the comparison runs with 16 frames (the same
    // 2x2 machine otherwise); the worst hybrid then lands at
    // ~2.6x best-of-base (radix), matching the paper's "~2-3x".
    Params p = test::smallParams();
    p.pageCacheSize = 16 * p.pageSize;
    p.validate();
    auto wl = makeApp(GetParam(), p, smokeScale);
    ASSERT_GT(wl->totalRefs(), 0u);

    // Empty spec list: every registered protocol, in registration
    // order. A new registration lands in this loop with no edit.
    ComparisonMatrix m = compareAll(p, *wl);
    ASSERT_GE(m.entries.size(), ProtocolRegistry::global().size());

    // Every configuration simulated the same full stream.
    EXPECT_GT(m.baseline.refs, 0u);
    EXPECT_GT(m.baseline.ticks, 0u);
    for (const ComparisonEntry &e : m.entries) {
        EXPECT_GT(e.stats.ticks, 0u) << e.id;
        EXPECT_EQ(e.stats.refs, m.baseline.refs) << e.id;
    }

    // The infinite-block-cache baseline can never lose to the finite
    // CC-NUMA, so its normalized time is >= 1 (Figure 6
    // methodology), and best-of-base is a min.
    EXPECT_GE(m.norm("ccnuma"), 1.0);
    EXPECT_GT(m.norm("scoma"), 0.0);
    double best = m.bestOfBase();
    EXPECT_LE(best, m.norm("ccnuma"));
    EXPECT_LE(best, m.norm("scoma"));

    // The paper invariant, for every hybrid in the registry: never
    // much worse than the best of the two base systems.
    for (const ComparisonEntry &e : m.entries) {
        if (e.id.rfind("rnuma", 0) != 0)
            continue;
        EXPECT_LE(m.norm(e.id), hybridEnvelope * best)
            << e.id << " breaks the Section 5 envelope";
    }

    // The winner/regret summary is coherent: the winner has zero
    // regret and nobody beats it.
    const ComparisonEntry &w = m.winner();
    EXPECT_DOUBLE_EQ(m.regret(w.id), 0.0);
    for (const ComparisonEntry &e : m.entries)
        EXPECT_GE(m.regret(e.id), 0.0) << e.id;
}

// Regression for the scale floor: generators used to degenerate
// below scale 0.1 (lu's grid collapsed to 1x1 and emitted zero
// memory references). Every app must now produce a simulatable
// stream at scale 0.01.
TEST_P(AppSmoke, StaysViableAtHundredthScale)
{
    Params p = test::smallParams();
    auto wl = makeApp(GetParam(), p, 0.01);
    EXPECT_GT(wl->memRefCount(), 0u);
    RunStats s = runProtocol(p, Protocol::RNuma, *wl);
    EXPECT_GT(s.refs, 0u);
    EXPECT_GT(s.ticks, 0u);
}

// Instantiating from the registry itself keeps the smoke suite in
// lockstep with the registered app set — a new or renamed app is
// covered (or surfaced) automatically.
INSTANTIATE_TEST_SUITE_P(AllApps, AppSmoke,
                         ::testing::ValuesIn(appNames()),
                         appTestName);

// Table 3 has exactly ten applications.
TEST(AppSmoke, RegistryHasAllTableThreeApps)
{
    EXPECT_EQ(appNames().size(), 10u);
}

} // namespace rnuma
