/**
 * @file
 * Smoke tests: the full four-way ProtocolComparison harness
 * (sim/runner.hh) runs end to end on the tiny 2x2 machine from
 * test_util.hh for every Table 3 application, and every run issues a
 * non-zero number of references. Complements test_integration_apps.cc,
 * which exercises the paper's full machine per protocol but never the
 * compareProtocols() path or the small configuration.
 */

#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "workload/registry.hh"

#include "test_util.hh"

namespace rnuma
{

namespace
{

// Tiny inputs: smoke, not soak. 0.1 is the floor at which every
// generator still emits real references (lu's blocked factorization
// needs a grid of at least 2x2 blocks).
constexpr double smokeScale = 0.1;

} // namespace

class AppSmoke : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AppSmoke, FourWayComparisonOnSmallMachine)
{
    Params p = test::smallParams();
    auto wl = makeApp(GetParam(), p, smokeScale);
    ASSERT_GT(wl->totalRefs(), 0u);

    ProtocolComparison cmp = compareProtocols(p, *wl);

    // Every configuration simulated something.
    for (const RunStats *s :
         {&cmp.baseline, &cmp.ccNuma, &cmp.sComa, &cmp.rNuma}) {
        EXPECT_GT(s->refs, 0u);
        EXPECT_GT(s->ticks, 0u);
    }

    // All four runs consumed the same reference stream.
    EXPECT_EQ(cmp.baseline.refs, cmp.ccNuma.refs);
    EXPECT_EQ(cmp.baseline.refs, cmp.sComa.refs);
    EXPECT_EQ(cmp.baseline.refs, cmp.rNuma.refs);

    // The infinite-block-cache baseline can never lose to the finite
    // CC-NUMA, so normalized times are >= 1 (Figure 6 methodology).
    EXPECT_GE(cmp.normCC(), 1.0);
    EXPECT_GT(cmp.normSC(), 0.0);
    EXPECT_GT(cmp.normRN(), 0.0);
    EXPECT_LE(cmp.bestOfBase(), cmp.normCC());
    EXPECT_LE(cmp.bestOfBase(), cmp.normSC());
}

// Instantiating from the registry itself keeps the smoke suite in
// lockstep with the registered app set — a new or renamed app is
// covered (or surfaced) automatically.
INSTANTIATE_TEST_SUITE_P(AllApps, AppSmoke,
                         ::testing::ValuesIn(appNames()));

// Table 3 has exactly ten applications.
TEST(AppSmoke, RegistryHasAllTableThreeApps)
{
    EXPECT_EQ(appNames().size(), 10u);
}

} // namespace rnuma
