/** @file Unit tests for the per-node page table. */

#include <gtest/gtest.h>

#include "os/page_table.hh"

namespace rnuma
{

TEST(PageTable, DefaultIsUnmapped)
{
    PageTable pt;
    EXPECT_EQ(pt.modeOf(0), PageMode::Unmapped);
    EXPECT_EQ(pt.size(), 0u);
}

TEST(PageTable, SetAndChangeMode)
{
    PageTable pt;
    pt.set(4, PageMode::CCNuma);
    EXPECT_EQ(pt.modeOf(4), PageMode::CCNuma);
    // R-NUMA relocation changes the mapping in place.
    pt.set(4, PageMode::SComa);
    EXPECT_EQ(pt.modeOf(4), PageMode::SComa);
    EXPECT_EQ(pt.size(), 1u);
}

TEST(PageTable, UnmapRevertsToUnmapped)
{
    PageTable pt;
    pt.set(9, PageMode::SComa);
    pt.unmap(9);
    EXPECT_EQ(pt.modeOf(9), PageMode::Unmapped);
    EXPECT_EQ(pt.size(), 0u);
}

TEST(PageTable, CountMode)
{
    PageTable pt;
    pt.set(1, PageMode::CCNuma);
    pt.set(2, PageMode::CCNuma);
    pt.set(3, PageMode::SComa);
    pt.set(4, PageMode::Local);
    EXPECT_EQ(pt.countMode(PageMode::CCNuma), 2u);
    EXPECT_EQ(pt.countMode(PageMode::SComa), 1u);
    EXPECT_EQ(pt.countMode(PageMode::Local), 1u);
    EXPECT_EQ(pt.countMode(PageMode::Unmapped), 0u);
}

} // namespace rnuma
