/**
 * @file
 * Integration tests: every Table 3 application generator runs to
 * completion on the paper's full machine under every protocol, with
 * conserved miss classification and bit-identical determinism.
 */

#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "workload/registry.hh"

#include "test_util.hh"

namespace rnuma
{

namespace
{

constexpr double testScale = 0.12; // small inputs for CI speed

} // namespace

class AppIntegration : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AppIntegration, RunsUnderEveryProtocol)
{
    Params p = test::paperParams();
    auto wl = makeApp(GetParam(), p, testScale);
    ASSERT_GT(wl->totalRefs(), 0u);

    for (Protocol proto : {Protocol::CCNuma, Protocol::SComa,
                           Protocol::RNuma}) {
        RunStats s = runProtocol(p, proto, *wl);
        EXPECT_GT(s.ticks, 0u) << protocolName(proto);
        EXPECT_GT(s.refs, 0u) << protocolName(proto);
        // Miss-kind conservation.
        EXPECT_EQ(s.coldMisses + s.coherenceMisses + s.refetches,
                  s.remoteFetches)
            << protocolName(proto);
        // Only the page-cache protocols perform page-cache work.
        if (proto == Protocol::CCNuma) {
            EXPECT_EQ(s.scomaAllocations, 0u);
            EXPECT_EQ(s.pageCacheHits, 0u);
        }
        if (proto == Protocol::SComa) {
            EXPECT_EQ(s.relocations, 0u);
        }
    }
}

TEST_P(AppIntegration, DeterministicTiming)
{
    Params p = test::paperParams();
    auto wl = makeApp(GetParam(), p, testScale);
    RunStats a = runProtocol(p, Protocol::RNuma, *wl);
    RunStats b = runProtocol(p, Protocol::RNuma, *wl);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.remoteFetches, b.remoteFetches);
    EXPECT_EQ(a.relocations, b.relocations);
}

TEST_P(AppIntegration, SeedChangesStreamButStaysValid)
{
    Params p = test::paperParams();
    auto w1 = makeApp(GetParam(), p, testScale, /*seed=*/1);
    auto w2 = makeApp(GetParam(), p, testScale, /*seed=*/2);
    // Same structure (barrier/End counts), possibly different refs.
    EXPECT_EQ(w1->numCpus(), w2->numCpus());
    RunStats s = runProtocol(p, Protocol::RNuma, *w2);
    EXPECT_GT(s.refs, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppIntegration,
    ::testing::Values("barnes", "cholesky", "em3d", "fft", "fmm",
                      "lu", "moldyn", "ocean", "radix", "raytrace"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(Registry, NamesMatchTable3)
{
    const auto &names = appNames();
    ASSERT_EQ(names.size(), 10u);
    EXPECT_EQ(names.front(), "barnes");
    EXPECT_EQ(names.back(), "raytrace");
    EXPECT_STREQ(appInput("radix"), "1M integers, radix 1024");
    EXPECT_STREQ(appProblem("em3d"),
                 "3-D electromagnetic wave propagation");
}

TEST(Registry, UnknownNameIsFatal)
{
    Params p = test::paperParams();
    EXPECT_THROW(makeApp("no-such-app", p, 0.1), std::runtime_error);
}

} // namespace rnuma
