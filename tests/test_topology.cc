/**
 * @file
 * Unit tests for the hop-dependent interconnect topologies
 * (net/topology.hh) and the geometry math they embed
 * (common/geometry.hh): mesh factorization, dimension-ordered hop
 * counts, per-link contention serialization, fat-tree log-distance
 * hops, and the constant model's latency(from, to) quirk the
 * acknowledgement bound depends on.
 */

#include <gtest/gtest.h>

#include "common/geometry.hh"
#include "net/topology.hh"

namespace rnuma
{

TEST(Geometry, MeshDimsFactorsRectangles)
{
    std::size_t w = 0, h = 0;
    ASSERT_TRUE(meshDims(8, &w, &h));
    EXPECT_EQ(w, 4u);
    EXPECT_EQ(h, 2u);
    ASSERT_TRUE(meshDims(16, &w, &h));
    EXPECT_EQ(w, 4u);
    EXPECT_EQ(h, 4u);
    ASSERT_TRUE(meshDims(32, &w, &h));
    EXPECT_EQ(w, 8u);
    EXPECT_EQ(h, 4u);
    ASSERT_TRUE(meshDims(128, &w, &h));
    EXPECT_EQ(w, 16u);
    EXPECT_EQ(h, 8u);
    ASSERT_TRUE(meshDims(512, &w, &h));
    EXPECT_EQ(w, 32u);
    EXPECT_EQ(h, 16u);
    ASSERT_TRUE(meshDims(2, &w, &h));
    EXPECT_EQ(w, 2u);
    EXPECT_EQ(h, 1u);
}

TEST(Geometry, MeshDimsRejectsUnEmbeddableCounts)
{
    // Primes > 2 only factor as 1 x N strips, beyond the 2:1 aspect
    // cap; so do skewed composites like 2 x 13.
    EXPECT_FALSE(meshDims(7, nullptr, nullptr));
    EXPECT_FALSE(meshDims(13, nullptr, nullptr));
    EXPECT_FALSE(meshDims(26, nullptr, nullptr));
    EXPECT_FALSE(meshDims(0, nullptr, nullptr));
}

TEST(Mesh, DimensionOrderedHopCounts)
{
    // 8 nodes -> 4 x 2: node n at (n % 4, n / 4).
    MeshNetwork m(8, 25, 4, 20);
    EXPECT_EQ(m.width(), 4u);
    EXPECT_EQ(m.height(), 2u);
    EXPECT_EQ(m.hops(0, 0), 0u);
    EXPECT_EQ(m.hops(0, 1), 1u);
    EXPECT_EQ(m.hops(0, 3), 3u); // same row, 3 columns
    EXPECT_EQ(m.hops(0, 4), 1u); // same column, next row
    EXPECT_EQ(m.hops(0, 7), 4u); // (0,0) -> (3,1): 3 + 1
    EXPECT_EQ(m.hops(7, 0), 4u); // symmetric
    // Contention-free wire = hops * hopLatency; diameter grows with
    // the machine (the whole point of the topology axis).
    EXPECT_EQ(m.latency(0, 7), 100u);
    EXPECT_EQ(m.latency(0, 0), 0u);
}

TEST(Mesh, UncontendedSendIsNiPlusPerHopWire)
{
    MeshNetwork m(8, 25, 4, 20);
    // NI occupancy (20), then one hop (25).
    EXPECT_EQ(m.send(0, 0, 1, MsgKind::Request), 45u);
    // Local messages bypass the network entirely.
    EXPECT_EQ(m.send(7, 3, 3, MsgKind::Request), 7u);
}

TEST(Mesh, SharedLinkSerializesCrossingTraffic)
{
    MeshNetwork m(8, 25, 4, 20);
    // 0 -> 2 routes 0 -> 1 -> 2: departs its NI at 20, crosses link
    // 0->1 at [20, 24), arrives node 1 at 45, holds link 1->2 over
    // [45, 49), arrives at 70.
    EXPECT_EQ(m.send(0, 0, 2, MsgKind::Request), 70u);
    // 1 -> 2 wants the same directed link 1->2 at t=20 but queues
    // behind the first message until 49; uncontended it would arrive
    // at 45 (NI 20 + one hop 25).
    EXPECT_EQ(m.send(0, 1, 2, MsgKind::Request), 74u);
    // The 29 cycles of link queueing show up in waited().
    EXPECT_GE(m.waited(), 29u);
}

TEST(Mesh, MeanLatencyIsAverageOverDistinctPairs)
{
    MeshNetwork m(8, 25, 4, 20);
    std::uint64_t sum = 0, pairs = 0;
    for (NodeId a = 0; a < 8; ++a) {
        for (NodeId b = 0; b < 8; ++b) {
            if (a == b)
                continue;
            sum += m.latency(a, b);
            pairs++;
        }
    }
    const Tick expect =
        static_cast<Tick>((sum + pairs / 2) / pairs);
    EXPECT_EQ(m.meanLatency(), expect);
}

TEST(FatTree, HopsGrowWithLogDistance)
{
    FatTreeNetwork f(8, 25, 20);
    EXPECT_EQ(f.hops(0, 0), 0u);
    EXPECT_EQ(f.hops(0, 1), 2u); // siblings: 1 up, 1 down
    EXPECT_EQ(f.hops(0, 2), 4u);
    EXPECT_EQ(f.hops(0, 3), 4u);
    EXPECT_EQ(f.hops(0, 7), 6u); // across the root
    EXPECT_EQ(f.hops(7, 0), 6u);
    EXPECT_EQ(f.latency(0, 7), 150u);
}

TEST(FatTree, InternalLinksAreContentionFree)
{
    FatTreeNetwork f(8, 25, 20);
    // Two messages from different sources to the same destination:
    // each pays only its own NI plus the wire — no link queueing
    // (fat links), no destination charge (the receiving controller
    // models that).
    EXPECT_EQ(f.send(0, 0, 7, MsgKind::Request), 170u);
    EXPECT_EQ(f.send(0, 1, 7, MsgKind::Request), 170u);
    EXPECT_EQ(f.waited(), 0u);
}

TEST(Constant, LatencyIsFlatForEveryPairIncludingSelf)
{
    // The acknowledgement bound computes 2 * worst-wire over the
    // invalidated sharers; the constant model must return netLatency
    // even for from == to so that bound reproduces the historical
    // 2 * netLatency arithmetic bit for bit.
    Network n(4, 100, 20);
    EXPECT_EQ(n.latency(0, 3), 100u);
    EXPECT_EQ(n.latency(2, 2), 100u);
    EXPECT_EQ(n.meanLatency(), 100u);
}

} // namespace rnuma
