/**
 * @file
 * Tests for the pluggable directory sharer-set representations
 * (proto/directory.hh): full-map exactness, limited-pointer Dir_iB
 * broadcast-on-overflow, coarse-vector region semantics, the
 * over-approximation invariant both sparse formats must uphold
 * (a set node is always reported until a full reset), the per-entry
 * storage model, and machine-level bit-identity of limited-pointer
 * against full-map when the sharer count never exceeds the pointer
 * budget.
 */

#include <gtest/gtest.h>

#include <random>

#include "proto/directory.hh"
#include "sim/runner.hh"
#include "workload/micro.hh"

#include "test_util.hh"

namespace rnuma
{

namespace
{

DirConfig
cfgOf(SharerFormat fmt, std::size_t nodes, std::size_t ptrs = 4,
      std::size_t region = 8)
{
    DirConfig c;
    c.format = fmt;
    c.nodes = nodes;
    c.pointers = ptrs;
    c.regionSize = region;
    return c;
}

} // namespace

TEST(SharerSet, LimitedPointerIsExactUnderCapacity)
{
    SharerSet lp(cfgOf(SharerFormat::LimitedPointer, 32, 4));
    SharerSet fm(cfgOf(SharerFormat::FullMap, 32));
    for (NodeId n : {3, 9, 17, 3}) { // re-set of 3 must not burn a ptr
        lp.set(n);
        fm.set(n);
    }
    for (NodeId n = 0; n < 32; ++n)
        EXPECT_EQ(lp.test(n), fm.test(n)) << "node " << int(n);
    EXPECT_EQ(lp.count(), 3u);
    EXPECT_FALSE(lp.overflowed());
    // Individual removal works while exact.
    lp.reset(9);
    fm.reset(9);
    for (NodeId n = 0; n < 32; ++n)
        EXPECT_EQ(lp.test(n), fm.test(n)) << "node " << int(n);
    // A fourth distinct sharer still fits the 4-pointer budget.
    lp.set(20);
    EXPECT_FALSE(lp.overflowed());
    EXPECT_EQ(lp.count(), 3u);
}

TEST(SharerSet, LimitedPointerOverflowBroadcasts)
{
    SharerSet lp(cfgOf(SharerFormat::LimitedPointer, 16, 2));
    lp.set(1);
    lp.set(2);
    EXPECT_FALSE(lp.overflowed());
    lp.set(3); // third distinct sharer: Dir_2B degrades to broadcast
    EXPECT_TRUE(lp.overflowed());
    // Broadcast means every node appears shared...
    for (NodeId n = 0; n < 16; ++n)
        EXPECT_TRUE(lp.test(n));
    EXPECT_EQ(lp.count(), 16u);
    EXPECT_FALSE(lp.none());
    // ...individual removal cannot un-broadcast (the hardware no
    // longer knows who holds copies)...
    lp.reset(1);
    EXPECT_TRUE(lp.test(1));
    // ...but a full reset (invalidation of everyone) is exact.
    lp.reset();
    EXPECT_TRUE(lp.none());
    EXPECT_FALSE(lp.overflowed());
    EXPECT_FALSE(lp.test(1));
}

TEST(SharerSet, CoarseVectorTracksRegions)
{
    SharerSet cv(cfgOf(SharerFormat::CoarseVector, 32, 4, 8));
    cv.set(9); // region 1 (nodes 8..15)
    // The whole region appears shared; other regions do not.
    for (NodeId n = 8; n < 16; ++n)
        EXPECT_TRUE(cv.test(n));
    EXPECT_FALSE(cv.test(7));
    EXPECT_FALSE(cv.test(16));
    EXPECT_EQ(cv.count(), 8u);
    // Individual removal is a no-op: node 12 may also be sharing.
    cv.reset(9);
    EXPECT_TRUE(cv.test(9));
    cv.reset();
    EXPECT_TRUE(cv.none());
}

TEST(SharerSet, SparseFormatsNeverMissATrueSharer)
{
    // The invariant invalidation correctness rests on: any node that
    // was set() and not individually reset() must test() true, in
    // every format, whatever the interleaving — over-approximation
    // is allowed, under-approximation is a coherence bug.
    std::mt19937 rng(7);
    for (SharerFormat fmt :
         {SharerFormat::LimitedPointer, SharerFormat::CoarseVector}) {
        SharerSet s(cfgOf(fmt, 64, 2, 4));
        std::bitset<64> truth;
        for (int step = 0; step < 500; ++step) {
            NodeId n = static_cast<NodeId>(rng() % 64);
            if (rng() % 3 == 0) {
                s.reset(n);
                truth.reset(n);
            } else {
                s.set(n);
                truth.set(n);
            }
            for (NodeId m = 0; m < 64; ++m) {
                if (truth.test(m))
                    ASSERT_TRUE(s.test(m))
                        << "format " << int(fmt) << " lost node "
                        << int(m) << " at step " << step;
            }
        }
    }
}

TEST(SharerSet, EntryBitsAreOrderSharersNotOrderNodes)
{
    // Full-map grows linearly with the machine; limited-pointer with
    // the log; coarse-vector with nodes/region.
    const std::size_t fm128 =
        cfgOf(SharerFormat::FullMap, 128).entryBits();
    const std::size_t fm512 =
        cfgOf(SharerFormat::FullMap, 512).entryBits();
    const std::size_t lp128 =
        cfgOf(SharerFormat::LimitedPointer, 128, 4).entryBits();
    const std::size_t lp512 =
        cfgOf(SharerFormat::LimitedPointer, 512, 4).entryBits();
    EXPECT_EQ(fm128, 2u * 128 + 8);     // owner: ceil(log2 128)+1
    EXPECT_EQ(fm512, 2u * 512 + 10);
    EXPECT_EQ(lp128, 2u * (4 * 7 + 1) + 8);
    EXPECT_EQ(lp512, 2u * (4 * 9 + 1) + 10);
    EXPECT_LT(lp512, fm128); // 4x the nodes, still far smaller
    EXPECT_EQ(cfgOf(SharerFormat::CoarseVector, 512, 4, 8).entryBits(),
              2u * 64 + 10);
}

TEST(SharerSet, DirectoryModeledStorageCountsLiveEntries)
{
    Directory d(32, 4, cfgOf(SharerFormat::LimitedPointer, 128, 4));
    EXPECT_EQ(d.modeledStorageBits(), 0u);
    d.entry(0);
    d.entry(32);
    d.entry(32); // same block: no new entry
    EXPECT_EQ(d.size(), 2u);
    EXPECT_EQ(d.modeledStorageBits(), 2u * d.config().entryBits());
}

TEST(SharerSet, LimitedPointerRunsBitIdenticalUnderCapacity)
{
    // On the two-node test machine no block ever has more than two
    // sharers, so a 4-pointer directory never overflows and must
    // reproduce the full-map run exactly — every counter, every
    // tick. This is the equivalence that let the sparse formats land
    // without re-recording any baseline.
    Params fm = test::smallParams();
    Params lp = fm;
    lp.dirFormat = SharerFormat::LimitedPointer;
    lp.dirPointers = 4;
    lp.validate();
    for (const char *proto : {"ccnuma", "scoma", "rnuma"}) {
        auto mk = [](const Params &p) {
            return makeHotRemoteReuse(p, 6, 6);
        };
        auto a = mk(fm);
        auto b = mk(lp);
        RunStats sa = runProtocol(fm, proto, *a);
        RunStats sb = runProtocol(lp, proto, *b);
        // The one field allowed to differ is the modeled storage
        // footprint (on this tiny machine the pointer overhead
        // actually exceeds the 2-bit full map; the win is at scale).
        EXPECT_NE(sb.dirBits, sa.dirBits) << proto;
        EXPECT_EQ(sa.dirEntries, sb.dirEntries) << proto;
        RunStats masked = sb;
        masked.dirBits = sa.dirBits;
        EXPECT_TRUE(sa == masked) << proto;
    }
}

TEST(SharerSet, CoarseVectorRunCompletesWithSameWork)
{
    // Coarse-vector may send extra invalidations (it names whole
    // regions) but the computation itself — references, hits, fills
    // — must be unchanged: over-approximation costs traffic, never
    // correctness. On a two-node machine with region size 2 both
    // nodes share one region bit, the maximal aliasing case.
    Params fm = test::smallParams();
    Params cv = fm;
    cv.dirFormat = SharerFormat::CoarseVector;
    cv.dirRegionSize = 2;
    cv.validate();
    auto a = makeProducerConsumer(fm, 4, 6);
    auto b = makeProducerConsumer(cv, 4, 6);
    RunStats sa = runProtocol(fm, "ccnuma", *a);
    RunStats sb = runProtocol(cv, "ccnuma", *b);
    EXPECT_EQ(sa.refs, sb.refs);
    EXPECT_EQ(sa.l1Hits, sb.l1Hits);
    EXPECT_EQ(sa.remoteFetches, sb.remoteFetches);
    EXPECT_GE(sb.invalidationsSent, sa.invalidationsSent);
}

} // namespace rnuma
