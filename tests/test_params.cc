/**
 * @file
 * Tests for the system parameters: the composed latencies must equal
 * the paper's Table 2 values, and the page-operation cost must span
 * the quoted 3000-11500 cycle range.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/params.hh"

namespace rnuma
{

TEST(Params, Table2LocalFillIs69Cycles)
{
    EXPECT_EQ(Params::base().localFill(), 69u);
}

TEST(Params, Table2RemoteFetchIs376Cycles)
{
    EXPECT_EQ(Params::base().remoteFetch(), 376u);
}

TEST(Params, Table2SramAndDram)
{
    Params p = Params::base();
    EXPECT_EQ(p.sramAccess, 8u);
    EXPECT_EQ(p.dramAccess, 56u);
}

TEST(Params, Table2SoftTrapAndShootdown)
{
    Params p = Params::base();
    EXPECT_EQ(p.softTrap, 2000u);     // 5 us at 400 MHz
    EXPECT_EQ(p.tlbShootdown, 200u);  // 0.5 us
}

TEST(Params, PageOpCostSpansTable2Range)
{
    Params p = Params::base();
    EXPECT_GE(p.pageOpCost(0), 3000u);
    EXPECT_LE(p.pageOpCost(0), 3500u);
    EXPECT_GE(p.pageOpCost(p.blocksPerPage()), 11000u);
    EXPECT_LE(p.pageOpCost(p.blocksPerPage()), 11500u);
}

TEST(Params, BaseGeometryMatchesPaper)
{
    Params p = Params::base();
    EXPECT_EQ(p.numNodes, 8u);
    EXPECT_EQ(p.cpusPerNode, 4u);
    EXPECT_EQ(p.numCpus(), 32u);
    EXPECT_EQ(p.l1Size, 8u * 1024u);
    EXPECT_EQ(p.blockCacheSize, 32u * 1024u);
    EXPECT_EQ(p.rnumaBlockCacheSize, 128u);
    EXPECT_EQ(p.pageCacheSize, 320u * 1024u);
    EXPECT_EQ(p.pageCacheFrames(), 80u);
    EXPECT_EQ(p.relocationThreshold, 64u);
    EXPECT_EQ(p.blocksPerPage(), 128u);
}

TEST(Params, SoftSystemTriplesPageOverheads)
{
    Params base = Params::base();
    Params soft = Params::soft();
    EXPECT_EQ(soft.softTrap, 4000u);     // 10 us
    EXPECT_EQ(soft.tlbShootdown, 2000u); // 5 us via IPIs
    // "The per-page allocation/replacement and relocation overheads
    // are therefore approximately 3 times higher" (Section 5.5).
    double ratio = static_cast<double>(soft.pageOpCost(0)) /
        static_cast<double>(base.pageOpCost(0));
    EXPECT_NEAR(ratio, 3.0, 0.8);
}

TEST(Params, ValidateRejectsBadBlockSize)
{
    Params p = Params::base();
    p.blockSize = 48; // not a power of two
    EXPECT_THROW(p.validate(), std::logic_error);
}

TEST(Params, ValidateRejectsMisalignedPageCache)
{
    Params p = Params::base();
    p.pageCacheSize = p.pageSize * 3 + 1;
    EXPECT_THROW(p.validate(), std::logic_error);
}

TEST(Params, ValidateRejectsZeroThreshold)
{
    Params p = Params::base();
    p.relocationThreshold = 0;
    EXPECT_THROW(p.validate(), std::logic_error);
}

TEST(Params, ValidateRejectsTooManyNodes)
{
    Params p = Params::base();
    p.numNodes = maxNodes + 1;
    EXPECT_THROW(p.validate(), std::logic_error);
}

TEST(Params, ValidateIntraJobs)
{
    Params p = Params::base(); // 8 nodes
    p.intraJobs = 0;
    EXPECT_THROW(p.validate(), std::logic_error);

    p.intraJobs = p.numNodes + 1; // more partitions than nodes
    EXPECT_THROW(p.validate(), std::logic_error);

    p.intraJobs = 3; // does not divide 8: unequal partitions
    EXPECT_THROW(p.validate(), std::logic_error);

    for (std::size_t ok : {1, 2, 4, 8}) {
        p.intraJobs = ok;
        EXPECT_NO_THROW(p.validate()) << ok;
    }

    p.intraJobs = 4;
    p.intraWindow = 0; // a zero-width window can never advance
    EXPECT_THROW(p.validate(), std::logic_error);
}

TEST(Params, ProtocolNames)
{
    EXPECT_STREQ(protocolName(Protocol::CCNuma), "CC-NUMA");
    EXPECT_STREQ(protocolName(Protocol::SComa), "S-COMA");
    EXPECT_STREQ(protocolName(Protocol::RNuma), "R-NUMA");
}

} // namespace rnuma
