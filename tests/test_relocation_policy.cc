/**
 * @file
 * Unit tests for the pluggable relocation-policy API (Section 3.1
 * generalized): the StaticThresholdPolicy's exact-threshold firing
 * (including bit-identity against an inline oracle replicating the
 * pre-registry ReactivePolicy counter semantics), the
 * HysteresisPolicy's ping-pong suppression, the
 * AdaptiveThresholdPolicy's per-page threshold convergence, the
 * residency-feedback family (utility / online-model / ewma), and the
 * registry-wide wouldFire <-> onRefetch consistency contract the
 * parallel engine's confinement probe depends on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/params.hh"
#include "common/rng.hh"
#include "core/analytic_model.hh"
#include "core/relocation_policy.hh"
#include "proto/registry.hh"

namespace rnuma
{

TEST(StaticThreshold, FiresExactlyAtThreshold)
{
    StaticThresholdPolicy rp(4);
    EXPECT_FALSE(rp.onRefetch(1)); // 1
    EXPECT_FALSE(rp.onRefetch(1)); // 2
    EXPECT_FALSE(rp.onRefetch(1)); // 3
    EXPECT_TRUE(rp.onRefetch(1));  // 4 -> interrupt
}

TEST(StaticThreshold, CounterResetsAfterFiring)
{
    StaticThresholdPolicy rp(2);
    rp.onRefetch(1);
    EXPECT_TRUE(rp.onRefetch(1));
    EXPECT_EQ(rp.count(1), 0u);
    EXPECT_FALSE(rp.onRefetch(1)); // counting starts over
}

TEST(StaticThreshold, PagesAreIndependent)
{
    StaticThresholdPolicy rp(3);
    rp.onRefetch(1);
    rp.onRefetch(1);
    rp.onRefetch(2);
    EXPECT_EQ(rp.count(1), 2u);
    EXPECT_EQ(rp.count(2), 1u);
    EXPECT_EQ(rp.trackedPages(), 2u);
}

TEST(StaticThreshold, LifecycleNotificationsClearTheCounter)
{
    StaticThresholdPolicy rp(10);
    rp.onRefetch(5);
    rp.onRefetch(5);
    rp.reset(5);
    EXPECT_EQ(rp.count(5), 0u);
    EXPECT_EQ(rp.trackedPages(), 0u);
    rp.onRefetch(6);
    rp.onRelocated(6);
    EXPECT_EQ(rp.count(6), 0u);
    rp.onRefetch(7);
    rp.onEvicted(7, 0);
    EXPECT_EQ(rp.count(7), 0u);
}

TEST(StaticThreshold, ThresholdOneFiresImmediately)
{
    StaticThresholdPolicy rp(1);
    EXPECT_TRUE(rp.onRefetch(9));
}

/** Parameterized: the policy fires after exactly T refetches. */
class ThresholdSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ThresholdSweep, FiresAfterExactlyT)
{
    std::size_t T = GetParam();
    StaticThresholdPolicy rp(T);
    for (std::size_t i = 1; i < T; ++i)
        ASSERT_FALSE(rp.onRefetch(3)) << "fired early at " << i;
    EXPECT_TRUE(rp.onRefetch(3));
}

INSTANTIATE_TEST_SUITE_P(PaperThresholds, ThresholdSweep,
                         ::testing::Values(1, 16, 64, 256, 1024));

namespace
{

/**
 * The pre-registry ReactivePolicy, inlined verbatim as the firing
 * oracle: recordRefetch increments and fires (erasing) at the
 * threshold; reset erases. RNumaRad used to call reset() both after
 * a relocation and on page-cache eviction, which the new API splits
 * into onRelocated/onEvicted.
 */
class Oracle
{
  public:
    explicit Oracle(std::size_t threshold) : thresh(threshold) {}

    bool
    recordRefetch(Addr page)
    {
        std::uint64_t &c = counts[page];
        if (++c >= thresh) {
            counts.erase(page);
            return true;
        }
        return false;
    }

    void reset(Addr page) { counts.erase(page); }

  private:
    std::size_t thresh;
    std::unordered_map<Addr, std::uint64_t> counts;
};

} // namespace

TEST(StaticThreshold, BitIdenticalToPreRefactorOracle)
{
    // Drive both implementations with a randomized refetch /
    // relocate / evict stream over a small page set; every firing
    // decision must agree, or R-NUMA's simulated ticks would drift.
    Rng rng(0x5eedc0de);
    StaticThresholdPolicy rp(4);
    Oracle oracle(4);
    for (int step = 0; step < 50000; ++step) {
        Addr page = rng.below(16);
        std::uint64_t action = rng.below(100);
        if (action < 85) {
            ASSERT_EQ(rp.onRefetch(page),
                      oracle.recordRefetch(page))
                << "step " << step;
        } else if (action < 92) {
            rp.onRelocated(page);
            oracle.reset(page);
        } else {
            rp.onEvicted(page, 0);
            oracle.reset(page);
        }
    }
    for (Addr page = 0; page < 16; ++page)
        ASSERT_EQ(rp.onRefetch(page), oracle.recordRefetch(page));
}

TEST(Hysteresis, FirstRelocationUsesTheBaseThreshold)
{
    HysteresisPolicy hp(2, 6);
    EXPECT_FALSE(hp.onRefetch(1));
    EXPECT_TRUE(hp.onRefetch(1));
    hp.onRelocated(1);
    EXPECT_EQ(hp.thresholdOf(1), 2u); // not evicted: base threshold
}

TEST(Hysteresis, RevertedPagesDoNotPingPong)
{
    HysteresisPolicy hp(2, 6);
    // Relocate, then the page cache evicts the page.
    hp.onRefetch(1);
    EXPECT_TRUE(hp.onRefetch(1));
    hp.onRelocated(1);
    hp.onEvicted(1, 0);
    EXPECT_EQ(hp.thresholdOf(1), 6u);
    // The base threshold no longer fires...
    EXPECT_FALSE(hp.onRefetch(1));
    EXPECT_FALSE(hp.onRefetch(1));
    EXPECT_FALSE(hp.onRefetch(1));
    EXPECT_FALSE(hp.onRefetch(1));
    EXPECT_FALSE(hp.onRefetch(1));
    // ...only the raised one does.
    EXPECT_TRUE(hp.onRefetch(1));
    // Other pages keep the cheap first relocation.
    EXPECT_FALSE(hp.onRefetch(2));
    EXPECT_TRUE(hp.onRefetch(2));
}

TEST(Policies, TrackedPagesCountsAllLiveState)
{
    // A reverted mark / adapted threshold is live per-page state
    // even with no pending refetch counter.
    HysteresisPolicy hp(2, 6);
    hp.onEvicted(1, 0);
    EXPECT_EQ(hp.trackedPages(), 1u);
    hp.onRefetch(1); // same page: still one
    hp.onRefetch(2); // new counter
    EXPECT_EQ(hp.trackedPages(), 2u);
    hp.reset(1);
    hp.reset(2);
    EXPECT_EQ(hp.trackedPages(), 0u);

    AdaptiveThresholdPolicy ap(16, 2, 64);
    ap.onRelocated(1);
    EXPECT_EQ(ap.trackedPages(), 1u);
    ap.onRefetch(1);
    ap.onRefetch(2);
    EXPECT_EQ(ap.trackedPages(), 2u);
    ap.reset(1);
    ap.reset(2);
    EXPECT_EQ(ap.trackedPages(), 0u);
}

TEST(Hysteresis, ResetForgetsTheRevertedState)
{
    HysteresisPolicy hp(2, 6);
    hp.onEvicted(1, 0);
    EXPECT_EQ(hp.thresholdOf(1), 6u);
    hp.reset(1); // unmap: page identity is recycled
    EXPECT_EQ(hp.thresholdOf(1), 2u);
}

TEST(Hysteresis, RejectsInvertedThresholds)
{
    EXPECT_THROW(HysteresisPolicy(8, 4), std::logic_error);
}

TEST(Adaptive, ThresholdHalvesOnRelocationDownToTheFloor)
{
    AdaptiveThresholdPolicy ap(16, 2, 64);
    EXPECT_EQ(ap.thresholdOf(1), 16u);
    ap.onRelocated(1);
    EXPECT_EQ(ap.thresholdOf(1), 8u);
    ap.onRelocated(1);
    ap.onRelocated(1);
    EXPECT_EQ(ap.thresholdOf(1), 2u);
    ap.onRelocated(1);
    EXPECT_EQ(ap.thresholdOf(1), 2u); // clamped at the floor
}

TEST(Adaptive, ThresholdDoublesOnEvictionUpToTheCap)
{
    AdaptiveThresholdPolicy ap(16, 2, 64);
    ap.onEvicted(1, 0);
    EXPECT_EQ(ap.thresholdOf(1), 32u);
    ap.onEvicted(1, 0);
    EXPECT_EQ(ap.thresholdOf(1), 64u);
    ap.onEvicted(1, 0);
    EXPECT_EQ(ap.thresholdOf(1), 64u); // clamped at the cap
}

TEST(Adaptive, PingPongEscalatesTheReentryBar)
{
    // The Section 3.2 adversary cycle: a page relocates, is evicted
    // before the relocation pays off, refetches, and relocates
    // again. Each round trip must get strictly more expensive (T,
    // 2T, 4T refetches to re-enter) up to the cap — the original
    // formulation's eviction merely doubled back what the relocation
    // halved, so the cycle re-entered at exactly the static
    // threshold forever and "adaptive" was bit-identical to the
    // static rule on every machine run.
    AdaptiveThresholdPolicy ap(16, 2, 64);
    std::size_t previous = 0;
    for (int round = 0; round < 4; ++round) {
        std::size_t fired_after = 0;
        while (!ap.onRefetch(7))
            fired_after++;
        fired_after++; // the firing refetch
        if (round > 0 && previous < 64) {
            EXPECT_GT(fired_after, previous) << "round " << round;
        }
        previous = fired_after;
        ap.onRelocated(7);
        ap.onEvicted(7, 0);
    }
    // Escalation is capped: 16 -> 32 -> 64 -> 64.
    EXPECT_EQ(ap.thresholdOf(7), 64u);
}

TEST(Adaptive, StickyRelocationKeepsTheHalvedThreshold)
{
    // A relocation that is *not* undone by an eviction keeps the
    // page's halved threshold: demonstrated reuse re-enters cheaply.
    AdaptiveThresholdPolicy ap(16, 2, 64);
    ap.onRelocated(7);
    EXPECT_EQ(ap.thresholdOf(7), 8u);
    ap.reset(7); // unmap: the sticky page's state retires with it
    EXPECT_EQ(ap.thresholdOf(7), 16u);
    // Ping-pong (relocate then evict) escalates instead: 2x the
    // pre-relocation threshold, not a wash.
    ap.onRelocated(9);
    ap.onEvicted(9, 0);
    EXPECT_EQ(ap.thresholdOf(9), 32u);
}

TEST(Adaptive, EscalationIsExactWhenTheHalveClampedAtTheFloor)
{
    // A page whose halve clamped at minT must still escalate to 2x
    // its actual pre-relocation threshold on eviction — not 4x the
    // clamped value (the bookkeeping stores the entry threshold,
    // not a "was relocated" flag).
    AdaptiveThresholdPolicy ap(16, 4, 64);
    ap.onRelocated(7); // 16 -> 8
    ap.onRelocated(7); // 8 -> 4
    ap.onRelocated(7); // entry 4, clamped at the floor: stays 4
    EXPECT_EQ(ap.thresholdOf(7), 4u);
    ap.onEvicted(7, 0);
    EXPECT_EQ(ap.thresholdOf(7), 8u); // 2 x 4, not 4 x 4
}

TEST(Adaptive, PureReuseConvergesToTheFloor)
{
    AdaptiveThresholdPolicy ap(64, 4, 1024);
    for (int i = 0; i < 8; ++i)
        ap.onRelocated(7);
    EXPECT_EQ(ap.thresholdOf(7), 4u);
    // An adversarial page (relocations never stick) pins at the cap.
    for (int i = 0; i < 8; ++i)
        ap.onEvicted(9, 0);
    EXPECT_EQ(ap.thresholdOf(9), 1024u);
}

TEST(Policies, DescribeNamesTheConfiguration)
{
    EXPECT_EQ(StaticThresholdPolicy(64).describe(), "static(T=64)");
    EXPECT_EQ(HysteresisPolicy(64, 256).describe(),
              "hysteresis(T=64,T_reverted=256)");
    EXPECT_EQ(AdaptiveThresholdPolicy(64, 4, 1024).describe(),
              "adaptive(T0=64,min=4,max=1024)");
    EXPECT_EQ(UtilityThresholdPolicy(64, 4, 1024, 19).describe(),
              "utility(T0=64,min=4,max=1024,breakeven=19)");
    EXPECT_EQ(OnlineModelPolicy(19.0, 1, 1024).describe(),
              "online-model(T*=19,min=1,max=1024)");
    EXPECT_EQ(EwmaUtilityPolicy(4, 124, 19, 0.5).describe(),
              "ewma(min=4,max=124,breakeven=19,alpha=8/16)");
}

TEST(Policies, PreFeedbackPoliciesIgnoreResidentHits)
{
    // Bit-identity at the unit level: the PR 4/5 policies must make
    // identical decisions whatever hit count the eviction reports,
    // or the paper figures would drift the moment the RAD started
    // delivering real counts.
    Rng rng(0xfeedbac1);
    StaticThresholdPolicy sa(4), sb(4);
    HysteresisPolicy ha(2, 8), hb(2, 8);
    AdaptiveThresholdPolicy aa(16, 2, 64), ab(16, 2, 64);
    for (int step = 0; step < 20000; ++step) {
        Addr page = rng.below(8);
        std::uint64_t action = rng.below(100);
        std::uint64_t hits = rng.below(1000);
        if (action < 80) {
            ASSERT_EQ(sa.onRefetch(page), sb.onRefetch(page));
            ASSERT_EQ(ha.onRefetch(page), hb.onRefetch(page));
            ASSERT_EQ(aa.onRefetch(page), ab.onRefetch(page));
        } else if (action < 88) {
            sa.onRelocated(page); sb.onRelocated(page);
            ha.onRelocated(page); hb.onRelocated(page);
            aa.onRelocated(page); ab.onRelocated(page);
        } else if (action < 96) {
            sa.onEvicted(page, 0); sb.onEvicted(page, hits);
            ha.onEvicted(page, 0); hb.onEvicted(page, hits);
            aa.onEvicted(page, 0); ab.onEvicted(page, hits);
        } else {
            sa.reset(page); sb.reset(page);
            ha.reset(page); hb.reset(page);
            aa.reset(page); ab.reset(page);
        }
    }
}

TEST(Utility, ZeroHitEvictionEscalatesUpToTheCap)
{
    UtilityThresholdPolicy up(16, 2, 64, 19);
    up.onRelocated(1);
    EXPECT_EQ(up.thresholdOf(1), 16u); // relocation is not evidence
    up.onEvicted(1, 0);
    EXPECT_EQ(up.thresholdOf(1), 32u);
    up.onEvicted(1, 0);
    EXPECT_EQ(up.thresholdOf(1), 64u);
    up.onEvicted(1, 0);
    EXPECT_EQ(up.thresholdOf(1), 64u); // clamped at the cap
}

TEST(Utility, ProfitableEvictionDecaysBelowBreakEven)
{
    UtilityThresholdPolicy up(64, 4, 1024, 19);
    // A residency that amortized its page ops drops the page below
    // the break-even bar immediately (min(64, 19) / 2 = 9)...
    up.onEvicted(1, 19);
    EXPECT_EQ(up.thresholdOf(1), 9u);
    // ...and keeps halving on repeated profit, down to the floor.
    up.onEvicted(1, 5000);
    EXPECT_EQ(up.thresholdOf(1), 4u);
    up.onEvicted(1, 5000);
    EXPECT_EQ(up.thresholdOf(1), 4u);
}

TEST(Utility, BreakEvenBoundaryIsExact)
{
    // hits == breakEven - 1 is a wasted residency; hits == breakEven
    // is a profitable one. The boundary must not be off by one.
    UtilityThresholdPolicy waste(64, 4, 1024, 19);
    waste.onEvicted(1, 18);
    EXPECT_EQ(waste.thresholdOf(1), 128u);
    UtilityThresholdPolicy profit(64, 4, 1024, 19);
    profit.onEvicted(1, 19);
    EXPECT_EQ(profit.thresholdOf(1), 9u);
}

TEST(Utility, ResetForgetsTheLearnedThreshold)
{
    UtilityThresholdPolicy up(64, 4, 1024, 19);
    up.onEvicted(1, 0);
    EXPECT_EQ(up.thresholdOf(1), 128u);
    up.reset(1);
    EXPECT_EQ(up.thresholdOf(1), 64u);
    EXPECT_EQ(up.trackedPages(), 0u);
}

TEST(Utility, FiresAtThePerPageThreshold)
{
    UtilityThresholdPolicy up(8, 2, 64, 19);
    up.onEvicted(1, 100); // profitable: threshold min(8,19)/2 = 4
    EXPECT_EQ(up.thresholdOf(1), 4u);
    EXPECT_FALSE(up.onRefetch(1));
    EXPECT_FALSE(up.onRefetch(1));
    EXPECT_FALSE(up.onRefetch(1));
    EXPECT_TRUE(up.onRefetch(1));
    // An untouched page still uses the initial threshold.
    for (int i = 0; i < 7; ++i)
        EXPECT_FALSE(up.onRefetch(2));
    EXPECT_TRUE(up.onRefetch(2));
}

TEST(OnlineModel, StartsAtTheAnalyticOptimum)
{
    OnlineModelPolicy op(19.4, 1, 1024);
    EXPECT_EQ(op.threshold(), 19u);
    EXPECT_DOUBLE_EQ(op.estimatedHits(), 0.0);
    // With no eviction history the policy is rnuma-model: fires on
    // the round(T*)-th refetch.
    for (int i = 0; i < 18; ++i)
        EXPECT_FALSE(op.onRefetch(1));
    EXPECT_TRUE(op.onRefetch(1));
}

TEST(OnlineModel, ConvergesToOptimalThresholdOnStationaryStream)
{
    // The satellite's convergence target: on a synthetic stationary
    // zero-reuse eviction stream, the online estimate must converge
    // to AnalyticModel::optimalThreshold() on the configured
    // machine — the static rnuma-model pick.
    Params p = Params::base();
    AnalyticModel model(
        ModelParams::fromSystem(p, p.blocksPerPage() / 2));
    double tStar = model.optimalThreshold();
    OnlineModelPolicy op(tStar, 1, 16 * p.relocationThreshold);
    std::size_t expect =
        static_cast<std::size_t>(std::llround(tStar));

    // Perturb: a burst of very profitable residencies drives the
    // threshold to the floor...
    for (int i = 0; i < 50; ++i)
        op.onEvicted(1, 10000);
    EXPECT_EQ(op.threshold(), 1u);
    // ...then the stationary worst-case stream (every residency
    // wasted) decays the EWMA geometrically back to the analytic
    // optimum.
    for (int i = 0; i < 400; ++i)
        op.onEvicted(1, 0);
    EXPECT_EQ(op.threshold(), expect);
    EXPECT_LT(op.estimatedHits(), 0.5);
}

TEST(OnlineModel, ObservedReuseLowersTheGlobalThreshold)
{
    OnlineModelPolicy op(19.0, 1, 1024);
    op.onEvicted(1, 40); // EWMA moves 1/8 of the way: h = 5
    EXPECT_DOUBLE_EQ(op.estimatedHits(), 5.0);
    EXPECT_EQ(op.threshold(), 14u); // round(19 - 5)
    // The threshold is global: page 2 fires at the lowered bar.
    for (int i = 0; i < 13; ++i)
        EXPECT_FALSE(op.onRefetch(2));
    EXPECT_TRUE(op.onRefetch(2));
}

TEST(Ewma, NoEvidenceLandsAtTheMidpointThreshold)
{
    // u starts at 0.5, so min=4 / max=124 interpolates to 64 — the
    // registry picks the range so this is exactly the base T.
    EwmaUtilityPolicy ep(4, 124, 19, 0.5);
    EXPECT_DOUBLE_EQ(ep.utilityOf(1), 0.5);
    EXPECT_EQ(ep.thresholdOf(1), 64u);
}

TEST(Ewma, UtilityMovesTheThresholdBetweenTheRails)
{
    EwmaUtilityPolicy ep(4, 124, 19, 0.5);
    // Wasted residencies drive u toward 0 and the threshold toward
    // the distrust rail.
    for (int i = 0; i < 8; ++i)
        ep.onEvicted(1, 0);
    EXPECT_LT(ep.utilityOf(1), 0.01);
    EXPECT_EQ(ep.thresholdOf(1), 124u);
    // Profitable residencies drive u toward 1 and the threshold
    // toward the trust rail; half-marks land in between.
    for (int i = 0; i < 8; ++i)
        ep.onEvicted(2, 19);
    EXPECT_GT(ep.utilityOf(2), 0.99);
    EXPECT_EQ(ep.thresholdOf(2), 4u);
    ep.onEvicted(3, 9); // grade 9/19: below break-even, partial credit
    EXPECT_NEAR(ep.utilityOf(3), 0.487, 0.001);
    std::size_t mid = ep.thresholdOf(3);
    EXPECT_GT(mid, 4u);
    EXPECT_LT(mid, 124u);
}

TEST(Ewma, ResetRestoresTheNeutralScore)
{
    EwmaUtilityPolicy ep(4, 124, 19, 0.5);
    ep.onEvicted(1, 0);
    EXPECT_EQ(ep.thresholdOf(1), 94u); // u = 0.25
    ep.reset(1);
    EXPECT_EQ(ep.thresholdOf(1), 64u);
    EXPECT_EQ(ep.trackedPages(), 0u);
}

TEST(Policies, WouldFireMatchesOnRefetchForEveryRegisteredPolicy)
{
    // The parallel engine's confinement probe (RNumaRad::
    // accessConfined) consults wouldFire before the real onRefetch
    // runs; the contract is one-sided — wouldFire may overpredict
    // (forcing a deferral), but must never underpredict, or a firing
    // relocation could evict a page whose blocks flush outside the
    // partition. Assert fired => predicted for every registered
    // policy under randomized refetch/relocate/evict/reset streams,
    // with randomized hit counts driving the feedback policies'
    // threshold updates.
    Params p = Params::base();
    for (const ProtocolSpec *spec : ProtocolRegistry::global().all()) {
        if (!spec->makePolicy)
            continue;
        auto policy = spec->makePolicy(p);
        Rng rng(0xc0face + spec->id.size());
        for (int step = 0; step < 30000; ++step) {
            Addr page = rng.below(12);
            std::uint64_t action = rng.below(100);
            if (action < 85) {
                bool predicted = policy->wouldFire(page);
                bool fired = policy->onRefetch(page);
                ASSERT_TRUE(!fired || predicted)
                    << spec->id << " underpredicted at step "
                    << step;
            } else if (action < 90) {
                policy->onRelocated(page);
            } else if (action < 96) {
                policy->onEvicted(page, rng.below(100));
            } else {
                policy->reset(page);
            }
        }
    }
}

} // namespace rnuma
