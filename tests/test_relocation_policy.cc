/**
 * @file
 * Unit tests for the pluggable relocation-policy API (Section 3.1
 * generalized): the StaticThresholdPolicy's exact-threshold firing
 * (including bit-identity against an inline oracle replicating the
 * pre-registry ReactivePolicy counter semantics), the
 * HysteresisPolicy's ping-pong suppression, and the
 * AdaptiveThresholdPolicy's per-page threshold convergence.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/relocation_policy.hh"

namespace rnuma
{

TEST(StaticThreshold, FiresExactlyAtThreshold)
{
    StaticThresholdPolicy rp(4);
    EXPECT_FALSE(rp.onRefetch(1)); // 1
    EXPECT_FALSE(rp.onRefetch(1)); // 2
    EXPECT_FALSE(rp.onRefetch(1)); // 3
    EXPECT_TRUE(rp.onRefetch(1));  // 4 -> interrupt
}

TEST(StaticThreshold, CounterResetsAfterFiring)
{
    StaticThresholdPolicy rp(2);
    rp.onRefetch(1);
    EXPECT_TRUE(rp.onRefetch(1));
    EXPECT_EQ(rp.count(1), 0u);
    EXPECT_FALSE(rp.onRefetch(1)); // counting starts over
}

TEST(StaticThreshold, PagesAreIndependent)
{
    StaticThresholdPolicy rp(3);
    rp.onRefetch(1);
    rp.onRefetch(1);
    rp.onRefetch(2);
    EXPECT_EQ(rp.count(1), 2u);
    EXPECT_EQ(rp.count(2), 1u);
    EXPECT_EQ(rp.trackedPages(), 2u);
}

TEST(StaticThreshold, LifecycleNotificationsClearTheCounter)
{
    StaticThresholdPolicy rp(10);
    rp.onRefetch(5);
    rp.onRefetch(5);
    rp.reset(5);
    EXPECT_EQ(rp.count(5), 0u);
    EXPECT_EQ(rp.trackedPages(), 0u);
    rp.onRefetch(6);
    rp.onRelocated(6);
    EXPECT_EQ(rp.count(6), 0u);
    rp.onRefetch(7);
    rp.onEvicted(7);
    EXPECT_EQ(rp.count(7), 0u);
}

TEST(StaticThreshold, ThresholdOneFiresImmediately)
{
    StaticThresholdPolicy rp(1);
    EXPECT_TRUE(rp.onRefetch(9));
}

/** Parameterized: the policy fires after exactly T refetches. */
class ThresholdSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ThresholdSweep, FiresAfterExactlyT)
{
    std::size_t T = GetParam();
    StaticThresholdPolicy rp(T);
    for (std::size_t i = 1; i < T; ++i)
        ASSERT_FALSE(rp.onRefetch(3)) << "fired early at " << i;
    EXPECT_TRUE(rp.onRefetch(3));
}

INSTANTIATE_TEST_SUITE_P(PaperThresholds, ThresholdSweep,
                         ::testing::Values(1, 16, 64, 256, 1024));

namespace
{

/**
 * The pre-registry ReactivePolicy, inlined verbatim as the firing
 * oracle: recordRefetch increments and fires (erasing) at the
 * threshold; reset erases. RNumaRad used to call reset() both after
 * a relocation and on page-cache eviction, which the new API splits
 * into onRelocated/onEvicted.
 */
class Oracle
{
  public:
    explicit Oracle(std::size_t threshold) : thresh(threshold) {}

    bool
    recordRefetch(Addr page)
    {
        std::uint64_t &c = counts[page];
        if (++c >= thresh) {
            counts.erase(page);
            return true;
        }
        return false;
    }

    void reset(Addr page) { counts.erase(page); }

  private:
    std::size_t thresh;
    std::unordered_map<Addr, std::uint64_t> counts;
};

} // namespace

TEST(StaticThreshold, BitIdenticalToPreRefactorOracle)
{
    // Drive both implementations with a randomized refetch /
    // relocate / evict stream over a small page set; every firing
    // decision must agree, or R-NUMA's simulated ticks would drift.
    Rng rng(0x5eedc0de);
    StaticThresholdPolicy rp(4);
    Oracle oracle(4);
    for (int step = 0; step < 50000; ++step) {
        Addr page = rng.below(16);
        std::uint64_t action = rng.below(100);
        if (action < 85) {
            ASSERT_EQ(rp.onRefetch(page),
                      oracle.recordRefetch(page))
                << "step " << step;
        } else if (action < 92) {
            rp.onRelocated(page);
            oracle.reset(page);
        } else {
            rp.onEvicted(page);
            oracle.reset(page);
        }
    }
    for (Addr page = 0; page < 16; ++page)
        ASSERT_EQ(rp.onRefetch(page), oracle.recordRefetch(page));
}

TEST(Hysteresis, FirstRelocationUsesTheBaseThreshold)
{
    HysteresisPolicy hp(2, 6);
    EXPECT_FALSE(hp.onRefetch(1));
    EXPECT_TRUE(hp.onRefetch(1));
    hp.onRelocated(1);
    EXPECT_EQ(hp.thresholdOf(1), 2u); // not evicted: base threshold
}

TEST(Hysteresis, RevertedPagesDoNotPingPong)
{
    HysteresisPolicy hp(2, 6);
    // Relocate, then the page cache evicts the page.
    hp.onRefetch(1);
    EXPECT_TRUE(hp.onRefetch(1));
    hp.onRelocated(1);
    hp.onEvicted(1);
    EXPECT_EQ(hp.thresholdOf(1), 6u);
    // The base threshold no longer fires...
    EXPECT_FALSE(hp.onRefetch(1));
    EXPECT_FALSE(hp.onRefetch(1));
    EXPECT_FALSE(hp.onRefetch(1));
    EXPECT_FALSE(hp.onRefetch(1));
    EXPECT_FALSE(hp.onRefetch(1));
    // ...only the raised one does.
    EXPECT_TRUE(hp.onRefetch(1));
    // Other pages keep the cheap first relocation.
    EXPECT_FALSE(hp.onRefetch(2));
    EXPECT_TRUE(hp.onRefetch(2));
}

TEST(Policies, TrackedPagesCountsAllLiveState)
{
    // A reverted mark / adapted threshold is live per-page state
    // even with no pending refetch counter.
    HysteresisPolicy hp(2, 6);
    hp.onEvicted(1);
    EXPECT_EQ(hp.trackedPages(), 1u);
    hp.onRefetch(1); // same page: still one
    hp.onRefetch(2); // new counter
    EXPECT_EQ(hp.trackedPages(), 2u);
    hp.reset(1);
    hp.reset(2);
    EXPECT_EQ(hp.trackedPages(), 0u);

    AdaptiveThresholdPolicy ap(16, 2, 64);
    ap.onRelocated(1);
    EXPECT_EQ(ap.trackedPages(), 1u);
    ap.onRefetch(1);
    ap.onRefetch(2);
    EXPECT_EQ(ap.trackedPages(), 2u);
    ap.reset(1);
    ap.reset(2);
    EXPECT_EQ(ap.trackedPages(), 0u);
}

TEST(Hysteresis, ResetForgetsTheRevertedState)
{
    HysteresisPolicy hp(2, 6);
    hp.onEvicted(1);
    EXPECT_EQ(hp.thresholdOf(1), 6u);
    hp.reset(1); // unmap: page identity is recycled
    EXPECT_EQ(hp.thresholdOf(1), 2u);
}

TEST(Hysteresis, RejectsInvertedThresholds)
{
    EXPECT_THROW(HysteresisPolicy(8, 4), std::logic_error);
}

TEST(Adaptive, ThresholdHalvesOnRelocationDownToTheFloor)
{
    AdaptiveThresholdPolicy ap(16, 2, 64);
    EXPECT_EQ(ap.thresholdOf(1), 16u);
    ap.onRelocated(1);
    EXPECT_EQ(ap.thresholdOf(1), 8u);
    ap.onRelocated(1);
    ap.onRelocated(1);
    EXPECT_EQ(ap.thresholdOf(1), 2u);
    ap.onRelocated(1);
    EXPECT_EQ(ap.thresholdOf(1), 2u); // clamped at the floor
}

TEST(Adaptive, ThresholdDoublesOnEvictionUpToTheCap)
{
    AdaptiveThresholdPolicy ap(16, 2, 64);
    ap.onEvicted(1);
    EXPECT_EQ(ap.thresholdOf(1), 32u);
    ap.onEvicted(1);
    EXPECT_EQ(ap.thresholdOf(1), 64u);
    ap.onEvicted(1);
    EXPECT_EQ(ap.thresholdOf(1), 64u); // clamped at the cap
}

TEST(Adaptive, PingPongEscalatesTheReentryBar)
{
    // The Section 3.2 adversary cycle: a page relocates, is evicted
    // before the relocation pays off, refetches, and relocates
    // again. Each round trip must get strictly more expensive (T,
    // 2T, 4T refetches to re-enter) up to the cap — the original
    // formulation's eviction merely doubled back what the relocation
    // halved, so the cycle re-entered at exactly the static
    // threshold forever and "adaptive" was bit-identical to the
    // static rule on every machine run.
    AdaptiveThresholdPolicy ap(16, 2, 64);
    std::size_t previous = 0;
    for (int round = 0; round < 4; ++round) {
        std::size_t fired_after = 0;
        while (!ap.onRefetch(7))
            fired_after++;
        fired_after++; // the firing refetch
        if (round > 0 && previous < 64) {
            EXPECT_GT(fired_after, previous) << "round " << round;
        }
        previous = fired_after;
        ap.onRelocated(7);
        ap.onEvicted(7);
    }
    // Escalation is capped: 16 -> 32 -> 64 -> 64.
    EXPECT_EQ(ap.thresholdOf(7), 64u);
}

TEST(Adaptive, StickyRelocationKeepsTheHalvedThreshold)
{
    // A relocation that is *not* undone by an eviction keeps the
    // page's halved threshold: demonstrated reuse re-enters cheaply.
    AdaptiveThresholdPolicy ap(16, 2, 64);
    ap.onRelocated(7);
    EXPECT_EQ(ap.thresholdOf(7), 8u);
    ap.reset(7); // unmap: the sticky page's state retires with it
    EXPECT_EQ(ap.thresholdOf(7), 16u);
    // Ping-pong (relocate then evict) escalates instead: 2x the
    // pre-relocation threshold, not a wash.
    ap.onRelocated(9);
    ap.onEvicted(9);
    EXPECT_EQ(ap.thresholdOf(9), 32u);
}

TEST(Adaptive, EscalationIsExactWhenTheHalveClampedAtTheFloor)
{
    // A page whose halve clamped at minT must still escalate to 2x
    // its actual pre-relocation threshold on eviction — not 4x the
    // clamped value (the bookkeeping stores the entry threshold,
    // not a "was relocated" flag).
    AdaptiveThresholdPolicy ap(16, 4, 64);
    ap.onRelocated(7); // 16 -> 8
    ap.onRelocated(7); // 8 -> 4
    ap.onRelocated(7); // entry 4, clamped at the floor: stays 4
    EXPECT_EQ(ap.thresholdOf(7), 4u);
    ap.onEvicted(7);
    EXPECT_EQ(ap.thresholdOf(7), 8u); // 2 x 4, not 4 x 4
}

TEST(Adaptive, PureReuseConvergesToTheFloor)
{
    AdaptiveThresholdPolicy ap(64, 4, 1024);
    for (int i = 0; i < 8; ++i)
        ap.onRelocated(7);
    EXPECT_EQ(ap.thresholdOf(7), 4u);
    // An adversarial page (relocations never stick) pins at the cap.
    for (int i = 0; i < 8; ++i)
        ap.onEvicted(9);
    EXPECT_EQ(ap.thresholdOf(9), 1024u);
}

TEST(Policies, DescribeNamesTheConfiguration)
{
    EXPECT_EQ(StaticThresholdPolicy(64).describe(), "static(T=64)");
    EXPECT_EQ(HysteresisPolicy(64, 256).describe(),
              "hysteresis(T=64,T_reverted=256)");
    EXPECT_EQ(AdaptiveThresholdPolicy(64, 4, 1024).describe(),
              "adaptive(T0=64,min=4,max=1024)");
}

} // namespace rnuma
