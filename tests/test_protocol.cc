/**
 * @file
 * Unit tests for the home-node coherence protocol: miss
 * classification (the refetch detection at the heart of R-NUMA),
 * invalidation and forwarding behavior, and the composed Table 2
 * latencies.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/params.hh"
#include "mem/memory.hh"
#include "net/network.hh"
#include "proto/protocol.hh"

namespace rnuma
{

namespace
{

/** Every page homes on node 0. */
class HomeZero : public Placement
{
  public:
    NodeId homeOf(Addr) const override { return 0; }
};

/** Records directory downcalls; reports dirtiness on request. */
class RecordingSink : public CoherenceSink
{
  public:
    std::vector<std::pair<NodeId, Addr>> invalidated;
    std::vector<std::pair<NodeId, Addr>> downgraded;
    bool reportDirty = false;

    bool
    invalidateNodeCopy(NodeId node, Addr block) override
    {
        invalidated.emplace_back(node, block);
        return reportDirty;
    }

    void
    downgradeNodeCopy(NodeId node, Addr block) override
    {
        downgraded.emplace_back(node, block);
    }
};

class ProtocolTest : public ::testing::Test
{
  protected:
    ProtocolTest()
        : p(Params::base()),
          net(p.numNodes, p.netLatency, p.niOccupancy)
    {
        for (std::size_t i = 0; i < p.numNodes; ++i)
            mems.push_back(std::make_unique<Memory>(p.dramAccess,
                                                    p.blockSize));
        std::vector<Memory *> ptrs;
        for (auto &m : mems)
            ptrs.push_back(m.get());
        proto = std::make_unique<GlobalProtocol>(p, net, place, sink,
                                                 ptrs);
    }

    Params p;
    Network net;
    HomeZero place;
    RecordingSink sink;
    std::vector<std::unique_ptr<Memory>> mems;
    std::unique_ptr<GlobalProtocol> proto;

    static constexpr Addr blk = 0x2000;
};

} // namespace

TEST_F(ProtocolTest, FirstFetchIsCold)
{
    FetchResult r = proto->fetch(0, 1, blk, ReqType::GetS);
    EXPECT_EQ(r.kind, MissKind::Cold);
    EXPECT_TRUE(r.exclusiveGrant);
}

TEST_F(ProtocolTest, SilentEvictionRefetchDetected)
{
    proto->fetch(0, 1, blk, ReqType::GetS);
    // The node silently dropped its read-only copy; the directory
    // still lists it as a sharer, so the re-request is a refetch
    // (Section 3.1).
    FetchResult r = proto->fetch(1000, 1, blk, ReqType::GetS);
    EXPECT_EQ(r.kind, MissKind::Refetch);
}

TEST_F(ProtocolTest, InvalidationLeadsToCoherenceMiss)
{
    proto->fetch(0, 1, blk, ReqType::GetS);
    FetchResult w = proto->fetch(1000, 2, blk, ReqType::GetX);
    EXPECT_EQ(w.invalidations, 1);
    ASSERT_EQ(sink.invalidated.size(), 1u);
    EXPECT_EQ(sink.invalidated[0].first, 1u);
    // Node 1 lost its copy to coherence, not capacity.
    FetchResult r = proto->fetch(2000, 1, blk, ReqType::GetS);
    EXPECT_EQ(r.kind, MissKind::Coherence);
}

TEST_F(ProtocolTest, VoluntaryWritebackMakesReadWriteRefetch)
{
    proto->fetch(0, 1, blk, ReqType::GetX);
    // Block-cache eviction of the dirty block: voluntary writeback.
    proto->writeback(500, 1, blk);
    const DirEntry *e = proto->directory().peek(blk);
    ASSERT_NE(e, nullptr);
    EXPECT_FALSE(e->hasOwner());
    EXPECT_TRUE(e->prior.test(1));
    // Re-request from the prior owner is a refetch (the extra
    // directory state of Section 3.1).
    FetchResult r = proto->fetch(1000, 1, blk, ReqType::GetX);
    EXPECT_EQ(r.kind, MissKind::Refetch);
    EXPECT_FALSE(proto->directory().peek(blk)->prior.test(1));
}

TEST_F(ProtocolTest, NotifyingFlushPreventsRefetch)
{
    proto->fetch(0, 1, blk, ReqType::GetS);
    // S-COMA page replacement notifies the home.
    proto->flushBlock(500, 1, blk, false);
    FetchResult r = proto->fetch(1000, 1, blk, ReqType::GetS);
    EXPECT_NE(r.kind, MissKind::Refetch);
    EXPECT_EQ(r.kind, MissKind::Coherence);
}

TEST_F(ProtocolTest, FlushFromDirtyOwnerClearsOwnership)
{
    proto->fetch(0, 1, blk, ReqType::GetX);
    proto->flushBlock(500, 1, blk, true);
    const DirEntry *e = proto->directory().peek(blk);
    EXPECT_FALSE(e->hasOwner());
    EXPECT_FALSE(e->sharers.test(1));
}

TEST_F(ProtocolTest, UpgradeIsPermissionTrafficNotRefetch)
{
    proto->fetch(0, 1, blk, ReqType::GetS);
    proto->fetch(100, 2, blk, ReqType::GetS);
    FetchResult r = proto->fetch(1000, 1, blk, ReqType::Upgrade);
    EXPECT_EQ(r.kind, MissKind::Coherence);
    EXPECT_EQ(r.invalidations, 1); // node 2 loses its copy
    EXPECT_TRUE(proto->nodeOwns(1, blk));
}

TEST_F(ProtocolTest, WriteInvalidatesAllOtherSharers)
{
    proto->fetch(0, 1, blk, ReqType::GetS);
    proto->fetch(10, 2, blk, ReqType::GetS);
    proto->fetch(20, 3, blk, ReqType::GetS);
    sink.invalidated.clear();
    FetchResult w = proto->fetch(1000, 4, blk, ReqType::GetX);
    EXPECT_EQ(w.invalidations, 3);
    EXPECT_EQ(sink.invalidated.size(), 3u);
    const DirEntry *e = proto->directory().peek(blk);
    EXPECT_EQ(e->owner, 4u);
    EXPECT_EQ(e->sharerCount(), 1u);
    EXPECT_TRUE(e->sharers.test(4));
}

TEST_F(ProtocolTest, ThreeHopForwardFromDirtyOwner)
{
    proto->fetch(0, 1, blk, ReqType::GetX);
    FetchResult r = proto->fetch(1000, 2, blk, ReqType::GetS);
    EXPECT_TRUE(r.threeHop);
    ASSERT_EQ(sink.downgraded.size(), 1u);
    EXPECT_EQ(sink.downgraded[0].first, 1u);
    const DirEntry *e = proto->directory().peek(blk);
    EXPECT_FALSE(e->hasOwner());
    EXPECT_TRUE(e->sharers.test(1));
    EXPECT_TRUE(e->sharers.test(2));
}

TEST_F(ProtocolTest, WriteToDirtyThirdNodeForwardsAndInvalidates)
{
    proto->fetch(0, 1, blk, ReqType::GetX);
    sink.invalidated.clear();
    FetchResult r = proto->fetch(1000, 2, blk, ReqType::GetX);
    EXPECT_TRUE(r.threeHop);
    EXPECT_EQ(r.invalidations, 1);
    EXPECT_TRUE(proto->nodeOwns(2, blk));
}

TEST_F(ProtocolTest, UncontendedRemoteFetchMatchesTable2)
{
    // The protocol portion of the 376-cycle remote fetch excludes
    // the two bus transactions charged by the node (2 x 13 cycles).
    FetchResult r = proto->fetch(0, 1, blk, ReqType::GetS);
    EXPECT_EQ(r.done, p.remoteFetch() - 2 * p.busLatency);
}

TEST_F(ProtocolTest, LocalFetchIsMemoryLatency)
{
    FetchResult r = proto->fetch(0, 0, blk, ReqType::GetS);
    EXPECT_EQ(r.done, p.dramAccess);
}

TEST_F(ProtocolTest, ThreeHopSlowerThanTwoHop)
{
    proto->fetch(0, 1, blk, ReqType::GetX);
    Tick start = 100000;
    FetchResult three = proto->fetch(start, 2, blk, ReqType::GetS);
    FetchResult two = proto->fetch(start * 2, 3, blk + 64,
                                   ReqType::GetS);
    EXPECT_GT(three.done - start, two.done - start * 2);
}

TEST_F(ProtocolTest, ExclusiveGrantOnlyWhenSoleHolder)
{
    FetchResult a = proto->fetch(0, 1, blk, ReqType::GetS);
    EXPECT_TRUE(a.exclusiveGrant);
    FetchResult b2 = proto->fetch(100, 2, blk, ReqType::GetS);
    EXPECT_FALSE(b2.exclusiveGrant);
}

TEST_F(ProtocolTest, OnlyHolderSemantics)
{
    EXPECT_TRUE(proto->onlyHolder(0, blk)); // untouched block
    proto->fetch(0, 1, blk, ReqType::GetS);
    EXPECT_FALSE(proto->onlyHolder(0, blk));
    EXPECT_TRUE(proto->onlyHolder(1, blk));
}

TEST_F(ProtocolTest, HomeOfUsesPlacement)
{
    EXPECT_EQ(proto->homeOf(0xdeadbeef), 0u);
}


TEST_F(ProtocolTest, AblatedPriorStateMissesWriteRefetches)
{
    // With the Section 3.1 extra state disabled, a voluntary
    // writeback leaves no trace and the re-request is not a refetch.
    Params ab = Params::base();
    ab.priorOwnerState = false;
    Network net2(ab.numNodes, ab.netLatency, ab.niOccupancy);
    std::vector<std::unique_ptr<Memory>> mems2;
    std::vector<Memory *> ptrs2;
    for (std::size_t i = 0; i < ab.numNodes; ++i) {
        mems2.push_back(std::make_unique<Memory>(ab.dramAccess,
                                                 ab.blockSize));
        ptrs2.push_back(mems2.back().get());
    }
    GlobalProtocol p2(ab, net2, place, sink, ptrs2);
    p2.fetch(0, 1, blk, ReqType::GetX);
    p2.writeback(500, 1, blk);
    FetchResult r = p2.fetch(1000, 1, blk, ReqType::GetX);
    EXPECT_EQ(r.kind, MissKind::Coherence);
}

/**
 * Parameterized sweep: the refetch/coherence/cold classification is
 * exhaustive and consistent for both read and write requests.
 */
class ClassifySweep
    : public ::testing::TestWithParam<std::tuple<ReqType, bool>>
{
};

TEST_P(ClassifySweep, HistoryDrivenClassification)
{
    auto [type, use_writeback] = GetParam();
    Params p = Params::base();
    Network net(p.numNodes, p.netLatency, p.niOccupancy);
    HomeZero place;
    RecordingSink sink;
    std::vector<std::unique_ptr<Memory>> mems;
    std::vector<Memory *> ptrs;
    for (std::size_t i = 0; i < p.numNodes; ++i) {
        mems.push_back(std::make_unique<Memory>(p.dramAccess,
                                                p.blockSize));
        ptrs.push_back(mems.back().get());
    }
    GlobalProtocol proto(p, net, place, sink, ptrs);

    Addr blk = 0x4000;
    // Cold first.
    EXPECT_EQ(proto.fetch(0, 1, blk, type).kind, MissKind::Cold);
    if (use_writeback && type == ReqType::GetX) {
        proto.writeback(10, 1, blk);
        EXPECT_EQ(proto.fetch(20, 1, blk, type).kind,
                  MissKind::Refetch);
    } else {
        // Directory still believes node 1 holds it.
        EXPECT_EQ(proto.fetch(20, 1, blk, type).kind,
                  MissKind::Refetch);
    }
    // A third node steals it with a write; node 1's next miss is a
    // coherence miss.
    proto.fetch(30, 2, blk, ReqType::GetX);
    EXPECT_EQ(proto.fetch(40, 1, blk, type).kind,
              MissKind::Coherence);
}

INSTANTIATE_TEST_SUITE_P(
    Requests, ClassifySweep,
    ::testing::Values(std::make_tuple(ReqType::GetS, false),
                      std::make_tuple(ReqType::GetX, false),
                      std::make_tuple(ReqType::GetX, true)));

} // namespace rnuma
