/**
 * @file
 * Node-level tests: on-node MOESI snooping over the bus, the MBus
 * cache-to-cache restriction (owned lines only), and write-upgrade
 * behavior. Exercised through a Machine with hand-built streams.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "workload/workload.hh"

#include "test_util.hh"

namespace rnuma
{

namespace
{

/** Build a 4-CPU workload; cpu 0/1 are node 0, cpu 2/3 node 1. */
std::unique_ptr<VectorWorkload>
blank()
{
    return std::make_unique<VectorWorkload>("node-test", 4);
}

} // namespace

TEST(Node, DirtyLineTransfersCacheToCacheWithinNode)
{
    Params p = test::smallParams();
    auto wl = blank();
    Addr x = 0; // first-touched by cpu 0 -> home node 0
    wl->push(0, Ref::touchOf(x));
    wl->push(0, Ref::mem(x, true, 0)); // cpu0 holds Modified
    wl->pushBarrierAll();
    wl->push(1, Ref::mem(x, false, 0)); // cpu1 reads: M/O supply
    wl->seal();

    Machine m(p, Protocol::CCNuma, *wl);
    RunStats s = m.run();
    EXPECT_GE(s.nodeTransfers, 1u);
}

TEST(Node, CleanRemoteCopiesDoNotTransferOnMBus)
{
    // Read requests to read-only remote blocks that miss in the
    // block cache go home even if another on-node L1 has a clean
    // copy (Section 4) — but here the block cache still holds it,
    // so the second reader hits the block cache, not a peer L1.
    Params p = test::smallParams();
    auto wl = blank();
    Addr x = 0; // touched by cpu 2 -> home node 1, remote to node 0
    wl->push(2, Ref::touchOf(x));
    wl->pushBarrierAll();
    wl->push(0, Ref::mem(x, false, 0));
    wl->pushBarrierAll();
    wl->push(1, Ref::mem(x, false, 0));
    wl->seal();

    Machine m(p, Protocol::CCNuma, *wl);
    RunStats s = m.run();
    EXPECT_EQ(s.nodeTransfers, 0u);
    EXPECT_GE(s.blockCacheHits, 1u);
}

TEST(Node, WriteHitOnSharedLineCountsAsUpgrade)
{
    Params p = test::smallParams();
    auto wl = blank();
    Addr x = 0;
    wl->push(0, Ref::touchOf(x));
    wl->push(0, Ref::mem(x, false, 0)); // read: Shared in L1
    wl->push(0, Ref::mem(x, true, 0));  // write same block: upgrade
    wl->seal();

    Machine m(p, Protocol::CCNuma, *wl);
    RunStats s = m.run();
    EXPECT_GE(s.upgrades, 1u);
}

TEST(Node, WriteInvalidatesPeerL1OnSameNode)
{
    Params p = test::smallParams();
    auto wl = blank();
    Addr x = 0;
    wl->push(0, Ref::touchOf(x));
    wl->push(0, Ref::mem(x, false, 0));
    wl->pushBarrierAll();
    wl->push(1, Ref::mem(x, false, 0)); // both L1s share the line
    wl->pushBarrierAll();
    wl->push(1, Ref::mem(x, true, 0));  // cpu1 writes
    wl->pushBarrierAll();
    wl->push(0, Ref::mem(x, false, 0)); // cpu0 must re-acquire
    wl->seal();

    Machine m(p, Protocol::CCNuma, *wl);
    RunStats s = m.run();
    // cpu0's final read cannot be an L1 hit: its copy was
    // invalidated. It is served by the on-node dirty supplier.
    EXPECT_GE(s.nodeTransfers, 1u);
}

TEST(Node, L1HitsAreFree)
{
    Params p = test::smallParams();
    auto wl = blank();
    Addr x = 0;
    wl->push(0, Ref::touchOf(x));
    wl->push(0, Ref::mem(x, true, 0));
    for (int i = 0; i < 50; ++i)
        wl->push(0, Ref::mem(x, true, 0));
    wl->seal();

    Machine m(p, Protocol::CCNuma, *wl);
    RunStats s = m.run();
    EXPECT_GE(s.l1Hits, 50u);
    EXPECT_EQ(s.l1Misses, 1u);
}

TEST(Node, DirtyL1VictimWritesBackThroughRad)
{
    // Fill the tiny L1 with dirty remote blocks past capacity; the
    // victims must land in the block cache (inclusion for RW).
    Params p = test::smallParams(); // 512 B L1 = 16 lines
    auto wl = blank();
    Addr base = 0;
    wl->push(2, Ref::touchOf(base));
    wl->push(2, Ref::touchOf(base + p.pageSize));
    wl->pushBarrierAll();
    // 32 distinct blocks, all written: 2x the L1 capacity.
    for (std::size_t i = 0; i < 32; ++i)
        wl->push(0, Ref::mem(base + i * p.blockSize, true, 0));
    wl->seal();

    Machine m(p, Protocol::CCNuma, *wl);
    RunStats s = m.run();
    // All blocks are writable on node 0; the block cache (32 lines)
    // holds every victim, so no voluntary writeback leaves the node.
    EXPECT_EQ(s.remoteFetches, 32u);
    EXPECT_EQ(s.writebacks, 0u);
}

} // namespace rnuma
