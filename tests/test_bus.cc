/** @file Unit tests for the bus / shared-resource contention model. */

#include <gtest/gtest.h>

#include "mem/bus.hh"

namespace rnuma
{

TEST(Resource, UncontendedGrantIsImmediate)
{
    Resource r(16);
    EXPECT_EQ(r.acquire(100), 100u);
    EXPECT_EQ(r.waited(), 0u);
}

TEST(Resource, BackToBackRequestsQueue)
{
    Resource r(16);
    EXPECT_EQ(r.acquire(100), 100u);
    // Second request at the same instant waits out the occupancy.
    EXPECT_EQ(r.acquire(100), 116u);
    EXPECT_EQ(r.waited(), 16u);
}

TEST(Resource, LateRequestDoesNotWait)
{
    Resource r(16);
    r.acquire(0);
    EXPECT_EQ(r.acquire(1000), 1000u);
    EXPECT_EQ(r.waited(), 0u);
}

TEST(Resource, QueueBuildsLinearly)
{
    Resource r(10);
    for (int i = 0; i < 5; ++i)
        r.acquire(0);
    // Requests granted at 0, 10, 20, 30, 40 -> total wait 100.
    EXPECT_EQ(r.waited(), 0u + 10u + 20u + 30u + 40u);
    EXPECT_EQ(r.useCount(), 5u);
    EXPECT_EQ(r.freeAt(), 50u);
}

TEST(Bus, TransactionsCountAndWait)
{
    Bus bus(16);
    bus.acquire(0);
    bus.acquire(0);
    EXPECT_EQ(bus.transactions(), 2u);
    EXPECT_EQ(bus.waited(), 16u);
}

} // namespace rnuma
