/**
 * @file
 * Edge-case tests for the Machine's event engine: barrier lifecycles
 * with finishing CPUs, the deferred-miss (causal ordering) path, and
 * timing invariants under contention.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "sim/runner.hh"
#include "workload/micro.hh"
#include "workload/workload.hh"

#include "test_util.hh"

namespace rnuma
{

TEST(MachineEdge, EmptyWorkloadFinishesAtTickZero)
{
    Params p = test::smallParams();
    VectorWorkload wl("empty", p.numCpus());
    wl.seal();
    Machine m(p, Protocol::RNuma, wl);
    RunStats s = m.run();
    EXPECT_EQ(s.ticks, 0u);
    EXPECT_EQ(s.refs, 0u);
}

TEST(MachineEdge, BarrierOnlyWorkload)
{
    Params p = test::smallParams();
    VectorWorkload wl("barriers", p.numCpus());
    for (int i = 0; i < 5; ++i)
        wl.pushBarrierAll();
    wl.seal();
    Machine m(p, Protocol::CCNuma, wl);
    RunStats s = m.run();
    EXPECT_EQ(s.barriers, 5u);
    // Each barrier costs the release overhead.
    EXPECT_EQ(s.ticks, 5u * p.barrierCost);
}

TEST(MachineEdge, CpuFinishingEarlyDoesNotDeadlockBarriers)
{
    // CPU 3 ends immediately; the others barrier twice. The barrier
    // must release with only the active CPUs.
    Params p = test::smallParams();
    VectorWorkload wl("early-exit", p.numCpus());
    for (CpuId c = 0; c < 3; ++c) {
        wl.push(c, Ref::barrier());
        wl.push(c, Ref::barrier());
    }
    wl.seal();
    Machine m(p, Protocol::CCNuma, wl);
    RunStats s = m.run();
    EXPECT_EQ(s.barriers, 2u);
}

TEST(MachineEdge, ThinkTimeAccumulatesWithoutMemoryTraffic)
{
    Params p = test::smallParams();
    VectorWorkload wl("think", p.numCpus());
    // One cold access then 100 thinks worth of L1 hits.
    wl.push(0, Ref::touchOf(0));
    wl.push(0, Ref::mem(0, false, 10));
    for (int i = 0; i < 100; ++i)
        wl.push(0, Ref::mem(0, false, 10));
    wl.seal();
    Machine m(p, Protocol::CCNuma, wl);
    RunStats s = m.run();
    // 101 refs x 10 think + one local fill (69 uncontended).
    EXPECT_GE(s.ticks, 1010u + p.localFill());
    EXPECT_EQ(s.l1Hits, 100u);
}

TEST(MachineEdge, DeferredMissesPreserveDeterminism)
{
    // Heavy multi-cpu contention exercises the pending-miss path;
    // two identical runs must agree exactly.
    Params p = test::smallParams();
    auto wl = makeRwSharing(p, 200);
    RunStats a = runProtocol(p, Protocol::RNuma, *wl);
    RunStats b = runProtocol(p, Protocol::RNuma, *wl);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.invalidationsSent, b.invalidationsSent);
    EXPECT_EQ(a.busWait, b.busWait);
    EXPECT_EQ(a.niWait, b.niWait);
}

TEST(MachineEdge, ContentionNeverReducesExecutionTime)
{
    // Doubling the per-transaction bus occupancy cannot speed the
    // machine up.
    Params p = test::smallParams();
    auto wl = makeHotRemoteReuse(p, 4, 3);
    RunStats base = runProtocol(p, Protocol::CCNuma, *wl);
    Params slow = p;
    slow.busOccupancy *= 4;
    RunStats s = runProtocol(slow, Protocol::CCNuma, *wl);
    EXPECT_GE(s.ticks, base.ticks);
}

TEST(MachineEdge, SlowerNetworkSlowsRemoteTraffic)
{
    Params p = test::smallParams();
    auto wl = makeHotRemoteReuse(p, 4, 3);
    RunStats base = runProtocol(p, Protocol::CCNuma, *wl);
    Params slow = p;
    slow.netLatency *= 4;
    RunStats s = runProtocol(slow, Protocol::CCNuma, *wl);
    EXPECT_GT(s.ticks, base.ticks);
}

TEST(MachineEdge, StatsTickEqualsSlowestCpu)
{
    Params p = test::smallParams();
    // CPU 0 does much more work than the rest.
    VectorWorkload wl("skew", p.numCpus());
    wl.push(0, Ref::touchOf(0));
    for (int i = 0; i < 200; ++i)
        wl.push(0, Ref::mem((i % 64) * 32, i % 2 == 0, 5));
    wl.push(1, Ref::mem(0, false, 1)); // tiny stream
    wl.seal();
    Machine m(p, Protocol::CCNuma, wl);
    RunStats s = m.run();
    EXPECT_GT(s.ticks, 200u * 5u);
}

/** Sweep: every protocol on every microbenchmark, no panics. */
class MicroByProtocol
    : public ::testing::TestWithParam<std::tuple<int, Protocol>>
{
};

TEST_P(MicroByProtocol, RunsClean)
{
    auto [which, proto] = GetParam();
    Params p = test::smallParams();
    std::unique_ptr<VectorWorkload> wl;
    switch (which) {
      case 0: wl = makePrivateLoop(p, 2, 2); break;
      case 1: wl = makeHotRemoteReuse(p, 6, 3); break;
      case 2: wl = makeProducerConsumer(p, 3, 3); break;
      case 3: wl = makeAdversary(p, 6, 5); break;
      default: wl = makeRwSharing(p, 30); break;
    }
    RunStats s = runProtocol(p, proto, *wl);
    EXPECT_EQ(s.coldMisses + s.coherenceMisses + s.refetches,
              s.remoteFetches);
    EXPECT_EQ(s.refs, s.l1Hits + s.l1Misses + s.upgrades);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MicroByProtocol,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(Protocol::CCNuma,
                                         Protocol::SComa,
                                         Protocol::RNuma)));

} // namespace rnuma
