/** @file Round-trip tests for trace record/replay. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "workload/micro.hh"
#include "workload/trace.hh"

#include "test_util.hh"

namespace rnuma
{

namespace
{

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

} // namespace

TEST(Trace, RoundTripPreservesEveryEntry)
{
    Params p = test::smallParams();
    auto wl = makeProducerConsumer(p, 2, 2);
    std::string path = tempPath("pc.trace");
    saveTrace(*wl, path);
    auto loaded = loadTrace(path);

    EXPECT_EQ(loaded->name(), wl->name());
    ASSERT_EQ(loaded->numCpus(), wl->numCpus());
    for (CpuId c = 0; c < wl->numCpus(); ++c) {
        ASSERT_EQ(loaded->size(c), wl->size(c)) << "cpu " << c;
        for (std::size_t i = 0; i < wl->size(c); ++i) {
            const Ref &a = wl->at(c, i);
            const Ref &b = loaded->at(c, i);
            ASSERT_EQ(a.kind, b.kind);
            ASSERT_EQ(a.addr, b.addr);
            ASSERT_EQ(a.write, b.write);
            ASSERT_EQ(a.think, b.think);
        }
    }
    std::remove(path.c_str());
}

TEST(Trace, LoadedTraceIsSealedAndIterable)
{
    Params p = test::smallParams();
    auto wl = makeRwSharing(p, 3);
    std::string path = tempPath("rw.trace");
    saveTrace(*wl, path);
    auto loaded = loadTrace(path);
    // Iterating past the end returns End forever (seal applied).
    CpuId c = 0;
    for (std::size_t i = 0; i < loaded->size(c) + 5; ++i)
        (void)loaded->next(c);
    EXPECT_EQ(loaded->next(c).kind, RefKind::End);
    std::remove(path.c_str());
}

TEST(Trace, MissingFileIsFatal)
{
    EXPECT_THROW(loadTrace("/nonexistent/definitely/missing.trace"),
                 std::runtime_error);
}

TEST(Trace, CorruptMagicIsFatal)
{
    std::string path = tempPath("bad.trace");
    FILE *f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[32] = "not a trace file at all";
    fwrite(junk, 1, sizeof(junk), f);
    fclose(f);
    EXPECT_THROW(loadTrace(path), std::runtime_error);
    std::remove(path.c_str());
}

} // namespace rnuma
