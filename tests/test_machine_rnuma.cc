/**
 * @file
 * Machine-level tests of R-NUMA: the reactive relocation mechanism,
 * page-mode lifecycle (CC-NUMA -> S-COMA -> eviction -> CC-NUMA),
 * and the "best of both" behavior the paper claims.
 */

#include <gtest/gtest.h>

#include "os/page_table.hh"
#include "sim/machine.hh"
#include "sim/runner.hh"
#include "workload/micro.hh"

#include "test_util.hh"

namespace rnuma
{

TEST(MachineRNuma, RelocatesReusePagesAfterThreshold)
{
    Params p = test::smallParams(); // threshold 4, 4 frames
    // 2 reuse pages, swept many times: each page accumulates
    // refetches in the tiny 64-byte block cache and relocates.
    auto wl = makeHotRemoteReuse(p, 2, 8);
    RunStats s = runProtocol(p, Protocol::RNuma, *wl);
    EXPECT_EQ(s.relocations, 2u);
    EXPECT_GT(s.pageCacheHits, 0u);
    // Relocation moves only the blocks held locally (Section 5.1);
    // the rest of each page refetches once into the fine-grain tags,
    // after which refetches stop. Bound: threshold + one refill of
    // the page, per page.
    EXPECT_LT(s.refetches,
              2u * (p.relocationThreshold + p.blocksPerPage()) + 8u);
}

TEST(MachineRNuma, PageModeIsSComaAfterRelocation)
{
    Params p = test::smallParams();
    auto wl = makeHotRemoteReuse(p, 2, 8);
    wl->reset();
    Machine m(p, Protocol::RNuma, *wl);
    m.run();
    // The accessing node is node 0; both remote pages relocated.
    PageTable &pt = m.node(0).pageTable();
    EXPECT_EQ(pt.countMode(PageMode::SComa), 2u);
}

TEST(MachineRNuma, CommunicationPagesNeverRelocate)
{
    Params p = test::smallParams();
    auto wl = makeProducerConsumer(p, 4, 6);
    RunStats s = runProtocol(p, Protocol::RNuma, *wl);
    // Invalidation-induced misses are not refetches; the pages stay
    // CC-NUMA.
    EXPECT_EQ(s.relocations, 0u);
    EXPECT_EQ(s.scomaAllocations, 0u);
}

TEST(MachineRNuma, BouncesWhenReuseSetExceedsPageCache)
{
    Params p = test::smallParams(); // 4 frames
    auto wl = makeHotRemoteReuse(p, 8, 10);
    RunStats s = runProtocol(p, Protocol::RNuma, *wl);
    // More relocations than pages: evicted pages revert to CC-NUMA
    // and relocate again (fmm/radix behavior in Section 5.2).
    EXPECT_GT(s.relocations, 8u);
    EXPECT_GT(s.scomaReplacements, 0u);
}

TEST(MachineRNuma, MatchesBestProtocolOnBothExtremes)
{
    Params p = test::smallParams();

    // Reuse-dominated: R-NUMA must be far closer to S-COMA than to
    // CC-NUMA.
    auto reuse = makeHotRemoteReuse(p, 3, 8);
    ProtocolComparison r = compareProtocols(p, *reuse);
    EXPECT_LT(r.normRN(), r.normCC());

    // Communication-dominated: R-NUMA must be far closer to CC-NUMA
    // than to S-COMA.
    auto comm = makeProducerConsumer(p, 6, 4);
    ProtocolComparison c = compareProtocols(p, *comm);
    EXPECT_LT(c.normRN(), c.normSC());
    EXPECT_LT(c.normRN() - c.normCC(), 0.25);
}

TEST(MachineRNuma, ThresholdOneRelocatesOnFirstRefetch)
{
    Params p = test::smallParams();
    p.relocationThreshold = 1;
    auto wl = makeHotRemoteReuse(p, 2, 3);
    RunStats s = runProtocol(p, Protocol::RNuma, *wl);
    EXPECT_EQ(s.relocations, 2u);
}

TEST(MachineRNuma, HugeThresholdDegeneratesToCcNuma)
{
    Params p = test::smallParams();
    p.relocationThreshold = 1u << 20;
    auto wl = makeHotRemoteReuse(p, 4, 4);
    RunStats rn = runProtocol(p, Protocol::RNuma, *wl);
    EXPECT_EQ(rn.relocations, 0u);
    EXPECT_EQ(rn.scomaAllocations, 0u);
    EXPECT_EQ(rn.pageCacheHits, 0u);
}

TEST(MachineRNuma, RwSharingStaysCoherent)
{
    Params p = test::smallParams();
    auto wl = makeRwSharing(p, 50);
    RunStats s = runProtocol(p, Protocol::RNuma, *wl);
    EXPECT_GT(s.invalidationsSent, 0u);
    // Conservation: every remote fetch is classified exactly once.
    EXPECT_EQ(s.coldMisses + s.coherenceMisses + s.refetches,
              s.remoteFetches);
}

} // namespace rnuma
