/**
 * @file
 * Tests for the sweep driver (src/driver): serial-vs-parallel
 * RunStats determinism across thread counts, the content-addressed
 * workload cache (hit/miss accounting, opt-out bit-identity, key
 * semantics), the perf-baseline compare gate (exact ticks/events,
 * thresholded wall time, v1 baselines), JSON round-trip of a small
 * executed sweep, sweep declaration invariants, and the unknown-app
 * / empty-sweep error paths. Uses the tiny test_util.hh machine so
 * the suites stay fast.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "driver/compare.hh"
#include "driver/figures.hh"
#include "driver/json.hh"
#include "driver/result_sink.hh"
#include "driver/sweep.hh"
#include "driver/sweep_runner.hh"
#include "workload/micro.hh"
#include "workload/registry.hh"

#include "test_util.hh"

namespace rnuma::driver
{

namespace
{

constexpr double testScale = 0.05;

/** A small multi-app, multi-protocol sweep on the tiny machine. */
Sweep
smallSweep()
{
    Sweep s("small", "driver test sweep", "none");
    Params p = test::smallParams();
    for (const char *app : {"moldyn", "radix", "em3d"}) {
        s.addBaseline(app, p, testScale);
        s.addApp(app, "ccnuma", p, "ccnuma", testScale);
        s.addApp(app, "scoma", p, "scoma", testScale);
        s.addApp(app, "rnuma", p, "rnuma", testScale);
    }
    return s;
}

FigureRun
wrap(const Sweep &s, SweepResult r)
{
    FigureRun run;
    run.name = s.name();
    run.title = s.title();
    run.paperRef = s.paperRef();
    run.scale = testScale;
    run.jobs = 1;
    run.result = std::move(r);
    return run;
}

} // namespace

TEST(SweepDecl, RejectsDuplicateCellAndMissingFactory)
{
    Sweep s("dup", "", "");
    Params p = test::smallParams();
    s.addApp("moldyn", "ccnuma", p, "ccnuma", testScale);
    EXPECT_THROW(
        s.addApp("moldyn", "ccnuma", p, "scoma", testScale),
        std::runtime_error);
    EXPECT_THROW(s.add({"x", "y", protocolSpec("ccnuma"), p, nullptr,
                        "", ""}),
                 std::logic_error);
}

TEST(SweepRunnerTest, EmptySweepYieldsEmptyResultOnAnyJobCount)
{
    Sweep s("empty", "", "");
    for (std::size_t jobs : {1u, 4u}) {
        SweepResult r = SweepRunner(jobs).run(s);
        EXPECT_TRUE(r.cells.empty());
    }
}

TEST(SweepRunnerTest, UnknownAppFailsTheSweepOnAnyJobCount)
{
    Sweep s("bad", "", "");
    Params p = test::smallParams();
    s.addApp("no-such-app", "ccnuma", p, "ccnuma",
             testScale);
    s.addApp("moldyn", "ccnuma", p, "ccnuma", testScale);
    // Serially the registry's fatal surfaces directly; in parallel
    // the pool catches it and rethrows after draining.
    EXPECT_THROW(SweepRunner(1).run(s), std::runtime_error);
    EXPECT_THROW(SweepRunner(4).run(s), std::runtime_error);
}

TEST(SweepRunnerTest, ResultsKeepCellOrderAndLabels)
{
    Sweep s = smallSweep();
    SweepResult r = SweepRunner(2).run(s);
    ASSERT_EQ(r.cells.size(), s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        EXPECT_EQ(r.cells[i].app, s.cells()[i].app);
        EXPECT_EQ(r.cells[i].config, s.cells()[i].config);
        EXPECT_GT(r.cells[i].stats.refs, 0u);
    }
    EXPECT_NE(r.find("moldyn", "rnuma"), nullptr);
    EXPECT_EQ(r.find("moldyn", "no-such-config"), nullptr);
    EXPECT_THROW(r.at("moldyn", "no-such-config"),
                 std::runtime_error);
}

TEST(SweepRunnerTest, BitIdenticalStatsAcrossThreadCounts)
{
    Sweep s = smallSweep();
    SweepResult serial = SweepRunner(1).run(s);
    for (std::size_t jobs : {2u, 4u, 8u}) {
        SweepResult parallel = SweepRunner(jobs).run(s);
        ASSERT_EQ(parallel.cells.size(), serial.cells.size());
        for (std::size_t i = 0; i < serial.cells.size(); ++i) {
            EXPECT_EQ(serial.cells[i].stats,
                      parallel.cells[i].stats)
                << "cell " << serial.cells[i].app << "/"
                << serial.cells[i].config << " at jobs=" << jobs;
        }
        // The library's own assertion agrees.
        EXPECT_NO_THROW(verifySerialIdentical(s, parallel));
    }
}

TEST(SweepRunnerTest, VerifyDetectsTamperedStats)
{
    Sweep s = smallSweep();
    SweepResult r = SweepRunner(1).run(s);
    r.cells[3].stats.ticks += 1;
    EXPECT_THROW(verifySerialIdentical(s, r), std::logic_error);
}

TEST(SweepDecl, ApplyIntraJobsRespectsDivisibility)
{
    Sweep s("ij", "", "");
    Params two = test::smallParams(); // 2 nodes
    s.addApp("moldyn", "ccnuma", two, "ccnuma", testScale);
    Params eight = test::paperParams(); // 8 nodes
    s.addApp("moldyn", "rnuma", eight, "rnuma", testScale);

    // 1 is a no-op; 4 fits only the 8-node cell (2 % 4 != 0 and
    // 4 > 2); 2 fits both.
    EXPECT_EQ(s.applyIntraJobs(1), 0u);
    EXPECT_EQ(s.applyIntraJobs(4), 1u);
    EXPECT_EQ(s.cells()[0].params.intraJobs, 1u);
    EXPECT_EQ(s.cells()[1].params.intraJobs, 4u);
    EXPECT_EQ(s.applyIntraJobs(2), 2u);
    EXPECT_EQ(s.cells()[0].params.intraJobs, 2u);

    // The effective per-cell value lands in the results.
    Sweep fresh("ij2", "", "");
    fresh.addApp("moldyn", "ccnuma", two, "ccnuma", testScale);
    fresh.applyIntraJobs(2);
    SweepResult r = SweepRunner(1).run(fresh);
    EXPECT_EQ(r.cells[0].intraJobs, 2u);
}

TEST(JsonRoundTrip, SmallSweepSurvivesWriteAndParse)
{
    Sweep s = smallSweep();
    FigureRun run = wrap(s, SweepRunner(2).run(s));

    std::ostringstream os;
    JsonSink().write(os, {run});
    JsonValue doc = parseJson(os.str());

    ASSERT_TRUE(doc.isObject());
    ASSERT_NE(doc.get("schema"), nullptr);
    EXPECT_EQ(doc.get("schema")->str, "rnuma-sweep-results/v8");

    const JsonValue *figures = doc.get("figures");
    ASSERT_NE(figures, nullptr);
    ASSERT_TRUE(figures->isArray());
    ASSERT_EQ(figures->array.size(), 1u);

    const JsonValue &fig = figures->array[0];
    EXPECT_EQ(fig.get("name")->str, "small");

    // The v4 per-figure protocols array: distinct ids in
    // first-appearance order.
    const JsonValue *protos = fig.get("protocols");
    ASSERT_NE(protos, nullptr);
    ASSERT_TRUE(protos->isArray());
    ASSERT_EQ(protos->array.size(), 3u);
    EXPECT_EQ(protos->array[0].str, "ccnuma");
    EXPECT_EQ(protos->array[1].str, "scoma");
    EXPECT_EQ(protos->array[2].str, "rnuma");

    const JsonValue *cells = fig.get("cells");
    ASSERT_NE(cells, nullptr);
    ASSERT_EQ(cells->array.size(), run.result.cells.size());

    // Every serialized counter round-trips exactly (the values fit a
    // double at test scale).
    for (std::size_t i = 0; i < cells->array.size(); ++i) {
        const JsonValue &jc = cells->array[i];
        const CellResult &cc = run.result.cells[i];
        EXPECT_EQ(jc.get("app")->str, cc.app);
        EXPECT_EQ(jc.get("config")->str, cc.config);
        const JsonValue *stats = jc.get("stats");
        ASSERT_NE(stats, nullptr);
        for (const StatField &f : statFields()) {
            const JsonValue *v = stats->get(f.name);
            ASSERT_NE(v, nullptr) << f.name;
            EXPECT_EQ(static_cast<std::uint64_t>(v->number),
                      f.get(cc.stats))
                << cc.app << "/" << cc.config << " " << f.name;
        }
    }
}

TEST(WorkloadCache, SharesGenerationAcrossCellsAndCountsHits)
{
    // smallSweep: 3 apps x 4 configs, each app's four cells sharing
    // one (app, gen-params, scale, seed) workload key.
    Sweep s = smallSweep();
    SweepResult r = SweepRunner(2).run(s);
    EXPECT_EQ(r.workloadsGenerated, 3u);
    EXPECT_EQ(r.workloadCacheHits, 9u);
    for (const CellResult &c : r.cells) {
        EXPECT_GT(c.stats.refs, 0u) << c.app << "/" << c.config;
        EXPECT_GT(c.stats.events, 0u) << c.app << "/" << c.config;
    }
}

TEST(WorkloadCache, OptOutIsBitIdenticalAndGeneratesPerCell)
{
    Sweep s = smallSweep();
    SweepResult cached = SweepRunner(1).run(s);
    SweepResult isolated =
        SweepRunner(1).cacheWorkloads(false).run(s);
    EXPECT_EQ(isolated.workloadsGenerated, 0u);
    EXPECT_EQ(isolated.workloadCacheHits, 0u);
    ASSERT_EQ(cached.cells.size(), isolated.cells.size());
    for (std::size_t i = 0; i < cached.cells.size(); ++i) {
        EXPECT_EQ(cached.cells[i].stats, isolated.cells[i].stats)
            << cached.cells[i].app << "/"
            << cached.cells[i].config;
    }
    // The cache-off reference path of verify agrees too.
    EXPECT_NO_THROW(verifySerialIdentical(s, isolated, false));
}

TEST(WorkloadCache, UnkeyedCellsBypassTheCache)
{
    Sweep s("unkeyed", "", "");
    Params p = test::smallParams();
    WorkloadFactory make = appFactory("moldyn", p, testScale);
    s.add({"moldyn", "a", protocolSpec("ccnuma"), p, make, "",
           "moldyn"});
    s.add({"moldyn", "b", protocolSpec("scoma"), p, make, "",
           "moldyn"});
    SweepResult r = SweepRunner(1).run(s);
    EXPECT_EQ(r.workloadsGenerated, 0u);
    EXPECT_EQ(r.workloadCacheHits, 0u);
    EXPECT_GT(r.at("moldyn", "a").stats.refs, 0u);
}

namespace
{

/** A Workload that is deliberately not a VectorWorkload. */
class OpaqueWorkload : public Workload
{
  public:
    explicit OpaqueWorkload(std::unique_ptr<VectorWorkload> inner)
        : inner_(std::move(inner))
    {
    }
    std::size_t numCpus() const override
    {
        return inner_->numCpus();
    }
    const Ref &next(CpuId cpu) override { return inner_->next(cpu); }
    const Ref &peek(CpuId cpu) override { return inner_->peek(cpu); }
    void reset() override { inner_->reset(); }
    const std::string &name() const override
    {
        return inner_->name();
    }

  private:
    std::unique_ptr<VectorWorkload> inner_;
};

} // namespace

TEST(WorkloadCache, NonSnapshottableKeyedFactoryWastesNoGeneration)
{
    // A keyed factory whose product cannot be snapshotted: phase 1
    // still generates once, and that product must be handed to one
    // of the cells — total generations equal the cell count, the
    // same as with the cache off (never cells + 1).
    auto calls = std::make_shared<int>(0);
    Params p = test::smallParams();
    WorkloadFactory make = [calls, p] {
        ++*calls;
        return std::unique_ptr<Workload>(std::make_unique<
            OpaqueWorkload>(makeApp("moldyn", p, testScale)));
    };
    Sweep s("opaque", "", "");
    s.add({"moldyn", "a", protocolSpec("ccnuma"), p, make,
           "opaque-key", "moldyn"});
    s.add({"moldyn", "b", protocolSpec("scoma"), p, make,
           "opaque-key", "moldyn"});
    SweepResult r = SweepRunner(1).run(s);
    EXPECT_EQ(r.workloadsGenerated, 0u);
    EXPECT_EQ(r.workloadCacheHits, 0u);
    EXPECT_GT(r.at("moldyn", "a").stats.refs, 0u);
    EXPECT_GT(r.at("moldyn", "b").stats.refs, 0u);
    EXPECT_EQ(*calls, 2);
    // And the streams are identical to the snapshotted path.
    Sweep keyed("keyed", "", "");
    keyed.addApp("moldyn", "a", p, "ccnuma", testScale);
    SweepResult kr = SweepRunner(1).run(keyed);
    EXPECT_EQ(kr.at("moldyn", "a").stats,
              r.at("moldyn", "a").stats);
}

TEST(WorkloadCache, KeyDistinguishesGeneratorInputs)
{
    Params p = test::smallParams();
    Params q = p;
    q.blockCacheSize = 2 * p.blockCacheSize;
    EXPECT_EQ(workloadCacheKey("fmm", p, 0.1, 1),
              workloadCacheKey("fmm", p, 0.1, 1));
    EXPECT_NE(workloadCacheKey("fmm", p, 0.1, 1),
              workloadCacheKey("fmm", q, 0.1, 1));
    EXPECT_NE(workloadCacheKey("fmm", p, 0.1, 1),
              workloadCacheKey("fmm", p, 0.2, 1));
    EXPECT_NE(workloadCacheKey("fmm", p, 0.1, 1),
              workloadCacheKey("fmm", p, 0.1, 2));
    EXPECT_NE(workloadCacheKey("fmm", p, 0.1, 1),
              workloadCacheKey("lu", p, 0.1, 1));
}

TEST(WorkloadCache, ProcessScopeCacheSharesAcrossRuns)
{
    // Two sweeps keyed on the same workloads, one shared cache: the
    // second run generates nothing, serves everything as hits, and
    // its per-cell stats stay bit-identical to an uncached run.
    Sweep s = smallSweep();
    driver::WorkloadCache shared;
    SweepRunner runner(2);
    runner.shareCache(&shared);

    SweepResult first = runner.run(s);
    EXPECT_EQ(first.workloadsGenerated, 3u);
    EXPECT_EQ(first.workloadCacheHits, 9u);
    EXPECT_EQ(shared.snapshots(), 3u);
    EXPECT_EQ(shared.generated(), 3u);
    EXPECT_EQ(shared.hits(), 9u);

    SweepResult second = runner.run(s);
    EXPECT_EQ(second.workloadsGenerated, 0u);
    EXPECT_EQ(second.workloadCacheHits, 12u);
    EXPECT_EQ(shared.generated(), 3u);
    EXPECT_EQ(shared.hits(), 21u);

    SweepResult isolated =
        SweepRunner(1).cacheWorkloads(false).run(s);
    ASSERT_EQ(second.cells.size(), isolated.cells.size());
    for (std::size_t i = 0; i < second.cells.size(); ++i) {
        EXPECT_EQ(second.cells[i].stats, isolated.cells[i].stats)
            << second.cells[i].app << "/" << second.cells[i].config;
    }
}

namespace
{

/** One executed smallSweep as a comparable results doc. */
ResultDoc
smallDoc()
{
    Sweep s = smallSweep();
    FigureRun run = wrap(s, SweepRunner(1).run(s));
    run.wallMs = 100.0; // deterministic wall time for the tests
    return resultsOf({run});
}

} // namespace

TEST(CompareGate, IdenticalResultsPass)
{
    ResultDoc doc = smallDoc();
    std::ostringstream os;
    EXPECT_EQ(compareResults(doc, doc, CompareOptions{}, os), 0u);
    EXPECT_NE(os.str().find("compare: PASS"), std::string::npos);
}

TEST(CompareGate, TicksDriftFailsExactly)
{
    ResultDoc base = smallDoc();
    ResultDoc cur = base;
    cur.figures[0].cells[3].ticks += 1;
    std::ostringstream os;
    EXPECT_EQ(compareResults(base, cur, CompareOptions{}, os), 1u);
    EXPECT_NE(os.str().find("ticks drifted"), std::string::npos);
}

TEST(CompareGate, EventsDriftFails)
{
    ResultDoc base = smallDoc();
    ResultDoc cur = base;
    cur.figures[0].cells[0].events += 5;
    std::ostringstream os;
    EXPECT_EQ(compareResults(base, cur, CompareOptions{}, os), 1u);
    EXPECT_NE(os.str().find("events drifted"), std::string::npos);
}

TEST(CompareGate, MissingCellAndFigureAreViolations)
{
    ResultDoc base = smallDoc();
    ResultDoc cur = base;
    cur.figures[0].cells.pop_back();
    std::ostringstream os;
    EXPECT_EQ(compareResults(base, cur, CompareOptions{}, os), 1u);

    ResultDoc none;
    none.schema = base.schema;
    std::ostringstream os2;
    EXPECT_EQ(compareResults(base, none, CompareOptions{}, os2), 1u);
    EXPECT_NE(os2.str().find("figure missing"), std::string::npos);
}

TEST(CompareGate, ScaleMismatchIsAViolation)
{
    ResultDoc base = smallDoc();
    ResultDoc cur = base;
    cur.figures[0].scale *= 2;
    std::ostringstream os;
    EXPECT_EQ(compareResults(base, cur, CompareOptions{}, os), 1u);
    EXPECT_NE(os.str().find("scale changed"), std::string::npos);

    // Serialization rounding must not count as a mismatch: pre-v2
    // baselines carried %.6g-truncated scales.
    cur.figures[0].scale =
        base.figures[0].scale * (1.0 + 1e-7);
    std::ostringstream os2;
    EXPECT_EQ(compareResults(base, cur, CompareOptions{}, os2), 0u);
}

TEST(CompareGate, WallTimeThresholdedNotExact)
{
    ResultDoc base = smallDoc();
    ResultDoc cur = base;
    cur.figures[0].wallMs = base.figures[0].wallMs * 1.2;
    CompareOptions opt;
    opt.wallTolerancePct = 25.0;
    std::ostringstream os;
    EXPECT_EQ(compareResults(base, cur, opt, os), 0u);

    cur.figures[0].wallMs = base.figures[0].wallMs * 1.3;
    std::ostringstream os2;
    EXPECT_EQ(compareResults(base, cur, opt, os2), 1u);
    EXPECT_NE(os2.str().find("wall time regressed"),
              std::string::npos);

    // Negative tolerance: determinism checks only.
    opt.wallTolerancePct = -1;
    std::ostringstream os3;
    EXPECT_EQ(compareResults(base, cur, opt, os3), 0u);

    // Different job counts: wall check skipped with a note.
    opt.wallTolerancePct = 25.0;
    cur.figures[0].jobs = base.figures[0].jobs + 1;
    std::ostringstream os4;
    EXPECT_EQ(compareResults(base, cur, opt, os4), 0u);
    EXPECT_NE(os4.str().find("wall-time check skipped"),
              std::string::npos);
}

TEST(CompareGate, LoadResultsRoundTripsTheJsonSink)
{
    Sweep s = smallSweep();
    FigureRun run = wrap(s, SweepRunner(1).run(s));
    std::ostringstream os;
    JsonSink().write(os, {run});
    ResultDoc loaded = loadResults(os.str());
    EXPECT_EQ(loaded.schema, "rnuma-sweep-results/v8");
    ResultDoc direct = resultsOf({run});
    EXPECT_EQ(loaded.figures[0].protocols,
              direct.figures[0].protocols);
    EXPECT_EQ(loaded.figures[0].protocols,
              protocolsOf(run.result));
    ASSERT_EQ(loaded.figures.size(), 1u);
    ASSERT_EQ(loaded.figures[0].cells.size(),
              direct.figures[0].cells.size());
    for (std::size_t i = 0; i < loaded.figures[0].cells.size();
         ++i) {
        const ResultCell &a = loaded.figures[0].cells[i];
        const ResultCell &b = direct.figures[0].cells[i];
        EXPECT_EQ(a.ticks, b.ticks) << a.app << "/" << a.config;
        EXPECT_EQ(a.events, b.events) << a.app << "/" << a.config;
        EXPECT_TRUE(a.hasEvents);
    }
    std::ostringstream report;
    EXPECT_EQ(
        compareResults(loaded, direct, CompareOptions{-1}, report),
        0u);
}

TEST(CompareGate, EventCountsGateSelfComparesAndCatchesDrift)
{
    Sweep s = smallSweep();
    FigureRun run = wrap(s, SweepRunner(1).run(s));
    std::ostringstream os;
    JsonSink().write(os, {run});
    ResultDoc base = loadResults(os.str());
    ResultDoc cur = resultsOf({run});

    // Identical documents: zero violations, PASS line.
    std::ostringstream ok;
    EXPECT_EQ(compareEventCounts(base, cur, EventCompareOptions{},
                                 ok),
              0u);
    EXPECT_NE(ok.str().find("compare-events: PASS"),
              std::string::npos);

    // A structural counter (refs) is exact: drift of 1 fails.
    ResultDoc drifted = cur;
    drifted.figures[0].cells[1].counters["refs"] += 1;
    std::ostringstream bad;
    EXPECT_GT(compareEventCounts(base, drifted,
                                 EventCompareOptions{}, bad),
              0u);
    EXPECT_NE(bad.str().find("refs drifted"), std::string::npos);

    // Protocol counters carry slack: within it passes, beyond fails.
    ResultDoc nudged = cur;
    nudged.figures[0].cells[1].counters["remote_fetches"] += 10;
    std::ostringstream near_ok;
    EXPECT_EQ(compareEventCounts(base, nudged,
                                 EventCompareOptions{}, near_ok),
              0u);
    EventCompareOptions tight;
    tight.tolerancePct = 0.0;
    tight.absSlack = 2;
    std::ostringstream near_bad;
    EXPECT_GT(
        compareEventCounts(base, nudged, tight, near_bad), 0u);
    EXPECT_NE(near_bad.str().find("remote_fetches diverged"),
              std::string::npos);

    // Ticks are explicitly NOT part of the contract.
    ResultDoc retimed = cur;
    retimed.figures[0].cells[2].ticks += 12345;
    std::ostringstream timing;
    EXPECT_EQ(compareEventCounts(base, retimed,
                                 EventCompareOptions{}, timing),
              0u);

    // A missing cell is coverage loss, as in compareResults.
    ResultDoc missing = cur;
    missing.figures[0].cells.pop_back();
    std::ostringstream lost;
    EXPECT_GT(compareEventCounts(base, missing,
                                 EventCompareOptions{}, lost),
              0u);
}

TEST(CompareGate, IntraJobsMismatchFailsTickCompare)
{
    Sweep s = smallSweep();
    FigureRun run = wrap(s, SweepRunner(1).run(s));
    ResultDoc base = resultsOf({run});
    ResultDoc cur = base;
    cur.figures[0].cells[0].intraJobs = 2;
    std::ostringstream os;
    EXPECT_GT(compareResults(base, cur, CompareOptions{-1}, os),
              0u);
    EXPECT_NE(os.str().find("intra_jobs changed"),
              std::string::npos);
    // The event gate is the sanctioned cross-engine comparison.
    std::ostringstream ev;
    EXPECT_EQ(compareEventCounts(base, cur, EventCompareOptions{},
                                 ev),
              0u);
}

TEST(CompareGate, AcceptsV1BaselinesWithoutEvents)
{
    // A v1 document has no per-cell events; only ticks are diffed.
    const char *v1 =
        "{\"schema\": \"rnuma-sweep-results/v1\", \"figures\": ["
        "{\"name\": \"small\", \"scale\": 0.05, \"jobs\": 1,"
        " \"wall_ms\": 10.0, \"status\": 0, \"cells\": ["
        "{\"app\": \"moldyn\", \"config\": \"ccnuma\","
        " \"wall_ms\": 1.0, \"stats\": {\"ticks\": 42}}]}]}";
    ResultDoc base = loadResults(v1);
    ASSERT_EQ(base.figures.size(), 1u);
    EXPECT_FALSE(base.figures[0].cells[0].hasEvents);

    ResultDoc cur = base;
    cur.figures[0].cells[0].events = 7; // ignored: baseline has none
    cur.figures[0].cells[0].hasEvents = true;
    std::ostringstream os;
    EXPECT_EQ(compareResults(base, cur, CompareOptions{}, os), 0u);

    cur.figures[0].cells[0].ticks = 43;
    std::ostringstream os2;
    EXPECT_EQ(compareResults(base, cur, CompareOptions{}, os2), 1u);
}

TEST(CompareGate, ProtocolShimAcceptsEnumEraBaselines)
{
    // A v2 baseline carries enum-era display names; after the load
    // shim they canonicalize to registry ids, and an id change
    // against a pre-v3 baseline is a note, never a violation.
    const char *v2 =
        "{\"schema\": \"rnuma-sweep-results/v2\", \"figures\": ["
        "{\"name\": \"small\", \"scale\": 0.05, \"jobs\": 1,"
        " \"wall_ms\": 10.0, \"status\": 0, \"cells\": ["
        "{\"app\": \"moldyn\", \"config\": \"t16\","
        " \"protocol\": \"R-NUMA\", \"wall_ms\": 1.0,"
        " \"stats\": {\"ticks\": 42}}]}]}";
    ResultDoc base = loadResults(v2);
    EXPECT_EQ(base.version(), 2);
    EXPECT_EQ(base.figures[0].cells[0].protocol, "rnuma");

    ResultDoc cur = base;
    cur.schema = "rnuma-sweep-results/v3";
    cur.figures[0].cells[0].protocol = "rnuma-t16";
    std::ostringstream os;
    EXPECT_EQ(compareResults(base, cur, CompareOptions{-1}, os), 0u);
    EXPECT_NE(os.str().find("label shim only"), std::string::npos);

    // Both v3: a protocol change is genuine drift.
    ResultDoc base3 = base;
    base3.schema = "rnuma-sweep-results/v3";
    std::ostringstream os2;
    EXPECT_EQ(compareResults(base3, cur, CompareOptions{-1}, os2),
              1u);
    EXPECT_NE(os2.str().find("protocol changed"),
              std::string::npos);
}

TEST(CompareGate, ReconstructsProtocolsForPreV4Baselines)
{
    // A v3 document has no per-figure protocols array; the loader
    // rebuilds it from the cells (canonicalized, first-appearance
    // order) so v4-era consumers work against old baselines, and a
    // v3 baseline still diffs cleanly against v4 results.
    const char *v3 =
        "{\"schema\": \"rnuma-sweep-results/v3\", \"figures\": ["
        "{\"name\": \"small\", \"scale\": 0.05, \"jobs\": 1,"
        " \"wall_ms\": 10.0, \"status\": 0, \"cells\": ["
        "{\"app\": \"a\", \"config\": \"baseline\","
        " \"protocol\": \"ccnuma\", \"stats\": {\"ticks\": 7}},"
        "{\"app\": \"a\", \"config\": \"rnuma\","
        " \"protocol\": \"R-NUMA\", \"stats\": {\"ticks\": 9}},"
        "{\"app\": \"b\", \"config\": \"rnuma\","
        " \"protocol\": \"rnuma\", \"stats\": {\"ticks\": 5}}]}]}";
    ResultDoc base = loadResults(v3);
    ASSERT_EQ(base.figures.size(), 1u);
    std::vector<std::string> expected{"ccnuma", "rnuma"};
    EXPECT_EQ(base.figures[0].protocols, expected);

    ResultDoc cur = base;
    cur.schema = "rnuma-sweep-results/v4";
    std::ostringstream os;
    EXPECT_EQ(compareResults(base, cur, CompareOptions{-1}, os), 0u);
}

TEST(CompareGate, FeedbackCountersGateOnlyBetweenV8Documents)
{
    // v8 added the residency-feedback counters. Between two v8
    // documents a drift is a violation; against a v7-shaped
    // baseline (counters absent) the check degrades to a note so
    // old perf baselines keep passing.
    const char *v8 =
        "{\"schema\": \"rnuma-sweep-results/v8\", \"figures\": ["
        "{\"name\": \"small\", \"scale\": 0.05, \"jobs\": 1,"
        " \"wall_ms\": 10.0, \"status\": 0, \"cells\": ["
        "{\"app\": \"moldyn\", \"config\": \"rnuma\","
        " \"protocol\": \"rnuma\", \"wall_ms\": 1.0,"
        " \"stats\": {\"ticks\": 42, \"evictions_zero_hit\": 3,"
        " \"evicted_page_hits\": 90}}]}]}";
    ResultDoc base = loadResults(v8);
    ASSERT_EQ(base.version(), 8);

    ResultDoc cur = base;
    cur.figures[0].cells[0].counters["evictions_zero_hit"] = 5;
    std::ostringstream os;
    EXPECT_EQ(compareResults(base, cur, CompareOptions{-1}, os), 1u);
    EXPECT_NE(os.str().find("evictions_zero_hit drifted"),
              std::string::npos);

    // Same drift against a v7 baseline without the counters: the
    // keys are absent on one side, so nothing diffs at all.
    ResultDoc old = base;
    old.schema = "rnuma-sweep-results/v7";
    old.figures[0].cells[0].counters.erase("evictions_zero_hit");
    old.figures[0].cells[0].counters.erase("evicted_page_hits");
    std::ostringstream os2;
    EXPECT_EQ(compareResults(old, cur, CompareOptions{-1}, os2), 0u);

    // A v7 baseline that somehow carries the counters (hand-edited
    // or transitional): a mismatch is reported, but as a note.
    ResultDoc noted = base;
    noted.schema = "rnuma-sweep-results/v7";
    std::ostringstream os3;
    EXPECT_EQ(compareResults(noted, cur, CompareOptions{-1}, os3),
              0u);
    EXPECT_NE(os3.str().find("feedback counters not comparable"),
              std::string::npos);
}

TEST(CompareGate, RejectsForeignJson)
{
    EXPECT_THROW(loadResults("{\"schema\": \"other/v1\"}"),
                 std::runtime_error);
    EXPECT_THROW(loadResults("[1, 2]"), std::runtime_error);
    EXPECT_THROW(loadResults("not json"), std::runtime_error);
}

TEST(JsonRoundTrip, CsvHasHeaderPlusOneRowPerCell)
{
    Sweep s = smallSweep();
    FigureRun run = wrap(s, SweepRunner(1).run(s));
    std::ostringstream os;
    CsvSink().write(os, {run});
    std::istringstream is(os.str());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(is, line))
        lines++;
    EXPECT_EQ(lines, 1 + run.result.cells.size());
}

TEST(JsonParser, RejectsMalformedDocuments)
{
    EXPECT_THROW(parseJson(""), std::runtime_error);
    EXPECT_THROW(parseJson("{"), std::runtime_error);
    EXPECT_THROW(parseJson("{\"a\": }"), std::runtime_error);
    EXPECT_THROW(parseJson("[1, 2,]"), std::runtime_error);
    EXPECT_THROW(parseJson("{} trailing"), std::runtime_error);
    EXPECT_THROW(parseJson("nul"), std::runtime_error);
    EXPECT_THROW(parseJson("1.2.3"), std::runtime_error);
    EXPECT_THROW(parseJson("12e4e2"), std::runtime_error);
    EXPECT_THROW(parseJson("[1-2]"), std::runtime_error);
}

TEST(JsonParser, HandlesEscapesAndNumbers)
{
    JsonValue v = parseJson(
        "{\"s\": \"a\\\"b\\\\c\\n\\u0041\", \"n\": -1.5e2, "
        "\"b\": true, \"z\": null, \"arr\": [1, 2, 3]}");
    EXPECT_EQ(v.get("s")->str, "a\"b\\c\nA");
    EXPECT_DOUBLE_EQ(v.get("n")->number, -150.0);
    EXPECT_TRUE(v.get("b")->boolean);
    EXPECT_EQ(v.get("z")->kind, JsonValue::Kind::Null);
    EXPECT_EQ(v.get("arr")->array.size(), 3u);
    // Round-trip through the writer's escaping.
    EXPECT_EQ(jsonQuote("a\"b\\c\n\t"),
              "\"a\\\"b\\\\c\\n\\t\"");
}

TEST(FigureRegistry, HasAllSixteenFiguresWithUniqueNames)
{
    const auto &specs = figureSpecs();
    EXPECT_EQ(specs.size(), 16u);
    for (const FigureSpec &a : specs) {
        std::size_t count = 0;
        for (const FigureSpec &b : specs)
            if (std::string(a.name) == b.name)
                count++;
        EXPECT_EQ(count, 1u) << a.name;
        EXPECT_EQ(findFigure(a.name), &a);
    }
    EXPECT_EQ(findFigure("no-such-figure"), nullptr);
}

TEST(FigureRegistry, SweepsBuildLazilyWithExpectedShapes)
{
    // Building a sweep generates no workloads, so even full-figure
    // sweeps are cheap to enumerate here.
    EXPECT_EQ(findFigure("fig6")->build({testScale}).size(), 40u);
    EXPECT_EQ(findFigure("fig7")->build({testScale}).size(), 60u);
    EXPECT_EQ(findFigure("fig8")->build({testScale}).size(), 40u);
    EXPECT_EQ(findFigure("fig9")->build({testScale}).size(), 50u);
    EXPECT_EQ(findFigure("fig5")->build({testScale}).size(), 10u);
    EXPECT_EQ(findFigure("table4")->build({testScale}).size(), 30u);
    EXPECT_EQ(findFigure("table2")->build({testScale}).size(), 0u);
    EXPECT_EQ(findFigure("eq3")->build({testScale}).size(), 4u);
    EXPECT_EQ(findFigure("ablation")->build({testScale}).size(), 30u);
    EXPECT_EQ(findFigure("micro")->build({testScale}).size(), 16u);
    // policies: two patterns x (one baseline + one cell per
    // registered protocol).
    EXPECT_EQ(findFigure("policies")->build({testScale}).size(),
              2u * (1u + ProtocolRegistry::global().size()));
}

TEST(FigureRegistry, PoliciesFigureHonorsProtocolSelection)
{
    FigureOptions opt;
    opt.scale = testScale;
    opt.protocols = {"rnuma", "rnuma-adaptive"};
    Sweep s = findFigure("policies")->build(opt);
    // Two patterns x (baseline + 2 selected).
    ASSERT_EQ(s.size(), 6u);
    EXPECT_EQ(s.cells()[0].app, "hot-reuse");
    EXPECT_EQ(s.cells()[1].proto.id, "rnuma");
    EXPECT_EQ(s.cells()[2].proto.id, "rnuma-adaptive");
    EXPECT_EQ(s.cells()[3].app, "evict-storm");
    EXPECT_EQ(s.cells()[4].proto.id, "rnuma");
    EXPECT_EQ(s.cells()[5].proto.id, "rnuma-adaptive");

    // Repeated and alias spellings dedupe to one cell per protocol
    // instead of tripping the duplicate-cell check.
    opt.protocols = {"rnuma", "R-NUMA", "rnuma"};
    Sweep dedup = findFigure("policies")->build(opt);
    ASSERT_EQ(dedup.size(), 4u); // 2 x (baseline + rnuma once)
    EXPECT_EQ(dedup.cells()[1].proto.id, "rnuma");
}

TEST(FigureRegistry, EvictionStormSeparatesThePoliciesAtCiScale)
{
    // Regression for the policy-tie bug: at CI scale (0.1) the old
    // single hot-reuse microworkload fit the caches, so every
    // relocation policy produced identical runs. The eviction-heavy
    // pattern must keep a strict static / adaptive / hysteresis
    // ordering — static ping-pongs the most relocations, the
    // escalating adaptive rule fewer, hysteresis (4T re-entry) the
    // fewest, and every pair stays distinct in both relocation
    // count and simulated time.
    FigureOptions opt;
    opt.scale = 0.1; // exactly the CI figure-pipeline scale
    opt.protocols = {"rnuma", "rnuma-hysteresis", "rnuma-adaptive"};
    const FigureSpec *spec = findFigure("policies");
    ASSERT_NE(spec, nullptr);
    FigureRun run = runFigure(*spec, opt, 0, /*verify=*/false);

    const RunStats &stat =
        run.result.at("evict-storm", "rnuma").stats;
    const RunStats &hyst =
        run.result.at("evict-storm", "rnuma-hysteresis").stats;
    const RunStats &adapt =
        run.result.at("evict-storm", "rnuma-adaptive").stats;
    EXPECT_GT(stat.relocations, adapt.relocations);
    EXPECT_GT(adapt.relocations, hyst.relocations);
    EXPECT_GT(hyst.relocations, 0u);
    EXPECT_GT(stat.ticks, adapt.ticks);
    EXPECT_GT(adapt.ticks, hyst.ticks);

    // The hot-reuse pattern still ties at this scale — that is the
    // documented limitation the second pattern exists to cover, and
    // it pins why the eviction cell may not regress into an
    // in-cache pattern.
    EXPECT_EQ(run.result.at("hot-reuse", "rnuma").stats,
              run.result.at("hot-reuse", "rnuma-hysteresis").stats);
}

TEST(FigureRegistry, FeedbackPolicyBeatsTheClassicsOnPhaseShift)
{
    // The point of the residency-feedback channel: a policy that
    // learns from eviction outcomes must beat every pre-feedback
    // policy on the phase-shift workload at exactly the CI
    // figure-pipeline scale. The online-model policy lowers its
    // global threshold as evictions report healthy residencies, so
    // it relocates earlier than the classics once phases churn.
    FigureOptions opt;
    opt.scale = 0.1;
    opt.protocols = {"rnuma", "rnuma-hysteresis", "rnuma-adaptive",
                     "rnuma-model", "rnuma-online-model"};
    const FigureSpec *spec = findFigure("feedback");
    ASSERT_NE(spec, nullptr);
    FigureRun run = runFigure(*spec, opt, 0, /*verify=*/false);

    // The fastest-churning row shows the widest separation.
    const RunStats &stat =
        run.result.at("shift-p12", "rnuma").stats;
    const RunStats &hyst =
        run.result.at("shift-p12", "rnuma-hysteresis").stats;
    const RunStats &adapt =
        run.result.at("shift-p12", "rnuma-adaptive").stats;
    const RunStats &model =
        run.result.at("shift-p12", "rnuma-model").stats;
    const RunStats &online =
        run.result.at("shift-p12", "rnuma-online-model").stats;
    EXPECT_LT(online.ticks, stat.ticks);
    EXPECT_LT(online.ticks, hyst.ticks);
    EXPECT_LT(online.ticks, adapt.ticks);
    EXPECT_LT(online.ticks, model.ticks);

    // The win comes from actually relocating, and the feedback
    // counters flow all the way into the figure's cells.
    EXPECT_GT(online.relocations, 0u);
    EXPECT_GT(online.evictedPageHits, 0u);
}

TEST(FigureRegistry, Fig8IsAPolicySweepOverStaticThresholds)
{
    // The threshold axis lives in the protocol spec, not in Params:
    // every fig8 cell runs the base machine configuration.
    Sweep s = findFigure("fig8")->build({testScale});
    Params base = Params::base();
    for (const Cell &c : s.cells()) {
        EXPECT_EQ(c.params.relocationThreshold,
                  base.relocationThreshold);
        EXPECT_EQ(c.proto.id, "rnuma-" + c.config);
        ASSERT_TRUE(c.proto.makePolicy != nullptr);
    }
}

TEST(FigureRegistry, Table2RendersAndPasses)
{
    const FigureSpec *spec = findFigure("table2");
    ASSERT_NE(spec, nullptr);
    FigureRun run = runFigure(*spec, {1.0}, 2, /*verify=*/true);
    std::ostringstream os;
    EXPECT_EQ(renderFigure(*spec, run, os), 0);
    EXPECT_NE(os.str().find("PASS"), std::string::npos);
}

TEST(FigureRegistry, MicroFigureRunsVerifiedAndRenders)
{
    const FigureSpec *spec = findFigure("micro");
    ASSERT_NE(spec, nullptr);
    FigureRun run = runFigure(*spec, {0.02}, 4, /*verify=*/true);
    EXPECT_EQ(run.result.cells.size(), 16u);
    std::ostringstream os;
    EXPECT_EQ(renderFigure(*spec, run, os), 0);
    EXPECT_NE(os.str().find("private-loop"), std::string::npos);
}

} // namespace rnuma::driver
