/** @file Unit tests for first-touch placement. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "os/first_touch.hh"

namespace rnuma
{

TEST(FirstTouch, FirstToucherBecomesHome)
{
    FirstTouchPlacement ft;
    EXPECT_EQ(ft.touch(10, 3), 3u);
    // Later touches do not migrate the page.
    EXPECT_EQ(ft.touch(10, 5), 3u);
    EXPECT_EQ(ft.homeOf(10), 3u);
}

TEST(FirstTouch, PinOverridesExisting)
{
    FirstTouchPlacement ft;
    ft.touch(7, 1);
    ft.pin(7, 6);
    EXPECT_EQ(ft.homeOf(7), 6u);
}

TEST(FirstTouch, PlacedAndCounts)
{
    FirstTouchPlacement ft;
    EXPECT_FALSE(ft.placed(1));
    ft.touch(1, 0);
    ft.touch(2, 0);
    ft.touch(3, 1);
    EXPECT_TRUE(ft.placed(1));
    EXPECT_EQ(ft.pageCount(), 3u);
    EXPECT_EQ(ft.pagesAt(0), 2u);
    EXPECT_EQ(ft.pagesAt(1), 1u);
    EXPECT_EQ(ft.pagesAt(2), 0u);
}

TEST(FirstTouch, HomeOfUnplacedPanics)
{
    FirstTouchPlacement ft;
    EXPECT_THROW(ft.homeOf(99), std::logic_error);
}

} // namespace rnuma
