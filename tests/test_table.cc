/** @file Unit tests for the text-table formatter. */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "common/table.hh"

namespace rnuma
{

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer-name", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    // Separator rule present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, RowWidthMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::logic_error);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::num(0.5, 3), "0.500");
}

TEST(Table, PctFormatsFraction)
{
    EXPECT_EQ(Table::pct(0.5), "50%");
    EXPECT_EQ(Table::pct(0.123, 1), "12.3%");
}

} // namespace rnuma
