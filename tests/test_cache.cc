/** @file Unit tests for the generic set-associative MOESI cache. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "mem/cache.hh"

namespace rnuma
{

TEST(CacheState, DirtyAndValidPredicates)
{
    EXPECT_TRUE(isDirty(CacheState::Modified));
    EXPECT_TRUE(isDirty(CacheState::Owned));
    EXPECT_FALSE(isDirty(CacheState::Shared));
    EXPECT_FALSE(isDirty(CacheState::Exclusive));
    EXPECT_FALSE(isDirty(CacheState::Invalid));
    EXPECT_TRUE(isValid(CacheState::Shared));
    EXPECT_FALSE(isValid(CacheState::Invalid));
}

TEST(Cache, MissOnEmpty)
{
    Cache c(1024, 32, 1);
    EXPECT_EQ(c.find(0x100), nullptr);
    EXPECT_EQ(c.validCount(), 0u);
}

TEST(Cache, AllocateThenFind)
{
    Cache c(1024, 32, 1);
    Cache::Victim v;
    CacheLine *line = c.allocate(0x100, v);
    ASSERT_NE(line, nullptr);
    EXPECT_FALSE(v.valid);
    line->state = CacheState::Shared;
    CacheLine *found = c.find(0x100);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found, line);
}

TEST(Cache, BlockAlignmentOnProbe)
{
    Cache c(1024, 32, 1);
    Cache::Victim v;
    c.allocate(0x100, v)->state = CacheState::Shared;
    // Any address within the block finds the line.
    EXPECT_NE(c.find(0x100 + 31), nullptr);
    EXPECT_EQ(c.find(0x100 + 32), nullptr);
}

TEST(Cache, DirectMappedConflictEvicts)
{
    // 1 KB direct-mapped, 32 B blocks: 32 sets. Addresses 0 and 1024
    // map to the same set.
    Cache c(1024, 32, 1);
    Cache::Victim v;
    c.allocate(0, v)->state = CacheState::Modified;
    c.allocate(1024, v)->state = CacheState::Shared;
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.addr, 0u);
    EXPECT_EQ(v.state, CacheState::Modified);
    EXPECT_EQ(c.find(0), nullptr);
    EXPECT_NE(c.find(1024), nullptr);
}

TEST(Cache, TwoWayAvoidsSimpleConflict)
{
    Cache c(1024, 32, 2);
    Cache::Victim v;
    c.allocate(0, v)->state = CacheState::Shared;
    c.allocate(1024, v)->state = CacheState::Shared;
    EXPECT_FALSE(v.valid);
    EXPECT_NE(c.find(0), nullptr);
    EXPECT_NE(c.find(1024), nullptr);
}

TEST(Cache, LruEvictionOrder)
{
    // 2-way set: fill both ways, touch the first, insert a third; the
    // untouched second way is the victim.
    Cache c(2 * 32, 32, 2); // one set, two ways
    Cache::Victim v;
    CacheLine *a = c.allocate(0, v);
    a->state = CacheState::Shared;
    CacheLine *b = c.allocate(32, v);
    b->state = CacheState::Shared;
    c.touch(a);
    c.allocate(64, v);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.addr, 32u);
    EXPECT_NE(c.find(0), nullptr);
}

TEST(Cache, InvalidateReturnsPriorState)
{
    Cache c(1024, 32, 1);
    Cache::Victim v;
    c.allocate(0x40, v)->state = CacheState::Owned;
    EXPECT_EQ(c.invalidate(0x40), CacheState::Owned);
    EXPECT_EQ(c.invalidate(0x40), CacheState::Invalid);
    EXPECT_EQ(c.find(0x40), nullptr);
}

TEST(Cache, DowngradeDirtyAndClean)
{
    Cache c(1024, 32, 1);
    Cache::Victim v;
    c.allocate(0, v)->state = CacheState::Modified;
    c.downgrade(0);
    EXPECT_EQ(c.find(0)->state, CacheState::Owned);
    c.invalidate(0);
    c.allocate(0, v)->state = CacheState::Exclusive;
    c.downgrade(0);
    EXPECT_EQ(c.find(0)->state, CacheState::Shared);
}

TEST(Cache, InfiniteModeNeverEvicts)
{
    Cache c(0, 32, 1, /*infinite=*/true);
    Cache::Victim v;
    for (Addr a = 0; a < 32 * 10000; a += 32) {
        c.allocate(a, v)->state = CacheState::Shared;
        ASSERT_FALSE(v.valid);
    }
    EXPECT_EQ(c.validCount(), 10000u);
    EXPECT_NE(c.find(32 * 1234), nullptr);
}

TEST(Cache, InfiniteModeInvalidateErases)
{
    Cache c(0, 32, 1, true);
    Cache::Victim v;
    c.allocate(64, v)->state = CacheState::Modified;
    EXPECT_EQ(c.invalidate(64), CacheState::Modified);
    EXPECT_EQ(c.find(64), nullptr);
    EXPECT_EQ(c.validCount(), 0u);
}

TEST(Cache, DoubleAllocatePanics)
{
    Cache c(1024, 32, 1);
    Cache::Victim v;
    c.allocate(0, v)->state = CacheState::Shared;
    EXPECT_THROW(c.allocate(0, v), std::logic_error);
}

TEST(Cache, ForEachValidVisitsAll)
{
    Cache c(1024, 32, 1);
    Cache::Victim v;
    for (Addr a = 0; a < 5 * 32; a += 32)
        c.allocate(a, v)->state = CacheState::Shared;
    std::size_t n = 0;
    c.forEachValid([&](const CacheLine &) { ++n; });
    EXPECT_EQ(n, 5u);
}

/** Parameterized sweep: geometry invariants across configurations. */
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(CacheGeometry, FillToCapacityWithoutPhantomEvictions)
{
    auto [size_kb, block, assoc] = GetParam();
    std::size_t size = static_cast<std::size_t>(size_kb) * 1024;
    Cache c(size, static_cast<std::size_t>(block),
            static_cast<std::size_t>(assoc));
    std::size_t capacity = size / static_cast<std::size_t>(block);
    Cache::Victim v;
    // Sequential fill exactly to capacity must not evict anything.
    for (std::size_t i = 0; i < capacity; ++i) {
        c.allocate(static_cast<Addr>(i) * block, v)->state =
            CacheState::Shared;
        ASSERT_FALSE(v.valid) << "eviction at line " << i;
    }
    EXPECT_EQ(c.validCount(), capacity);
    // One more forces exactly one eviction.
    c.allocate(static_cast<Addr>(capacity) * block, v)->state =
        CacheState::Shared;
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(c.validCount(), capacity);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(1, 32, 1),
                      std::make_tuple(8, 32, 1),
                      std::make_tuple(8, 64, 2),
                      std::make_tuple(32, 32, 1),
                      std::make_tuple(4, 32, 4),
                      std::make_tuple(16, 128, 8)));

} // namespace rnuma
