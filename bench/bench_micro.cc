/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself (not a
 * paper experiment): per-component operation throughput and
 * end-to-end simulation rate. Useful for keeping the harness fast
 * enough to sweep the Figure 6-9 configurations.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/params.hh"
#include "driver/figures.hh"
#include "driver/sweep_runner.hh"
#include "mem/cache.hh"
#include "net/network.hh"
#include "proto/protocol.hh"
#include "sim/runner.hh"
#include "workload/micro.hh"
#include "workload/registry.hh"

namespace
{

using namespace rnuma;

void
BM_CacheLookup(benchmark::State &state)
{
    Cache c(32 * 1024, 32, 1);
    Cache::Victim v;
    for (Addr a = 0; a < 32 * 1024; a += 32)
        c.allocate(a, v)->state = CacheState::Shared;
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.find(a));
        a = (a + 32) % (32 * 1024);
    }
}
BENCHMARK(BM_CacheLookup);

void
BM_CacheAllocateEvict(benchmark::State &state)
{
    Cache c(32 * 1024, 32, 1);
    Cache::Victim v;
    Addr a = 0;
    for (auto _ : state) {
        if (!c.find(a))
            c.allocate(a, v)->state = CacheState::Shared;
        a += 32 * 1024 + 32; // always conflicts
    }
}
BENCHMARK(BM_CacheAllocateEvict);

class NullSink : public CoherenceSink
{
  public:
    bool invalidateNodeCopy(NodeId, Addr) override { return false; }
    void downgradeNodeCopy(NodeId, Addr) override {}
};

class HomeZero : public Placement
{
  public:
    NodeId homeOf(Addr) const override { return 0; }
};

void
BM_ProtocolFetch(benchmark::State &state)
{
    Params p = Params::base();
    Network net(p.numNodes, p.netLatency, p.niOccupancy);
    HomeZero place;
    NullSink sink;
    std::vector<std::unique_ptr<Memory>> mems;
    std::vector<Memory *> ptrs;
    for (std::size_t i = 0; i < p.numNodes; ++i) {
        mems.push_back(
            std::make_unique<Memory>(p.dramAccess, p.blockSize));
        ptrs.push_back(mems.back().get());
    }
    GlobalProtocol proto(p, net, place, sink, ptrs);
    Tick now = 0;
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            proto.fetch(now, 1 + (a / 32) % 7, a, ReqType::GetS));
        a += 32;
        now += 400;
    }
}
BENCHMARK(BM_ProtocolFetch);

void
BM_EndToEndSimulation(benchmark::State &state)
{
    Params p = Params::base();
    for (auto _ : state) {
        state.PauseTiming();
        auto wl = makeHotRemoteReuse(p, 16, 2);
        state.ResumeTiming();
        RunStats s = runProtocol(p, Protocol::RNuma, *wl);
        benchmark::DoNotOptimize(s.ticks);
        state.SetItemsProcessed(
            static_cast<std::int64_t>(s.refs));
    }
}
BENCHMARK(BM_EndToEndSimulation)->Unit(benchmark::kMillisecond);

void
BM_AppSimulationRate(benchmark::State &state)
{
    Params p = Params::base();
    auto wl = makeApp("moldyn", p, 0.1);
    std::uint64_t refs = 0;
    for (auto _ : state) {
        RunStats s = runProtocol(p, Protocol::RNuma, *wl);
        refs += s.refs;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(refs));
}
BENCHMARK(BM_AppSimulationRate)->Unit(benchmark::kMillisecond);

void
BM_SweepRunner(benchmark::State &state)
{
    // The figure pipeline's hot loop: the "micro" figure's 16 cells
    // through the sweep driver at the given job count. On multi-core
    // hosts the >1-job configurations should approach linear
    // speedup, since cells share no mutable state.
    const driver::FigureSpec *spec = driver::findFigure("micro");
    driver::Sweep sweep = spec->build(0.05);
    driver::SweepRunner runner(
        static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        driver::SweepResult r = runner.run(sweep);
        benchmark::DoNotOptimize(r.cells.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(sweep.size()));
}
BENCHMARK(BM_SweepRunner)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
