/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself (not a
 * paper experiment): per-component operation throughput and
 * end-to-end simulation rate. Useful for keeping the harness fast
 * enough to sweep the Figure 6-9 configurations.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/params.hh"
#include "common/rng.hh"
#include "driver/figures.hh"
#include "driver/sweep_runner.hh"
#include "mem/cache.hh"
#include "net/network.hh"
#include "proto/protocol.hh"
#include "sim/event_queue.hh"
#include "sim/runner.hh"
#include "workload/micro.hh"
#include "workload/registry.hh"

namespace
{

using namespace rnuma;

/**
 * Simulator-shaped event deltas, precomputed so the benchmark loop
 * measures the queues, not the RNG: mostly think-time/bus-scale
 * steps, some fill/fetch latencies, occasional page-op jumps that
 * overflow the calendar window.
 */
const std::vector<Tick> &
eventDeltas()
{
    static const std::vector<Tick> deltas = [] {
        Rng rng(0x5eed);
        std::vector<Tick> v(8192);
        for (Tick &d : v) {
            std::uint64_t shape = rng.below(100);
            if (shape < 70)
                d = rng.below(16);
            else if (shape < 95)
                d = 60 + rng.below(400);
            else
                d = 3000 + rng.below(9000);
        }
        return v;
    }();
    return deltas;
}

/**
 * The Machine::run hot loop reduced to its scheduler interactions:
 * one live event per CPU of the paper machine; each iteration peeks,
 * pops, and reschedules the popped CPU at a simulator-shaped delta.
 * Instantiated for both queue implementations so the indexed
 * calendar's speedup over the std::priority_queue baseline is a
 * tracked number (the PR gate's event-throughput claim).
 */
template <typename Queue>
void
schedulerPattern(benchmark::State &state)
{
    const std::vector<Tick> &deltas = eventDeltas();
    Queue q;
    for (std::uint32_t c = 0; c < 32; ++c)
        q.schedule(0, c);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(q.peekTime());
        Event e = q.pop();
        q.schedule(e.when + deltas[i], e.tag);
        i = (i + 1) & (deltas.size() - 1);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

void
BM_EventQueueHeap(benchmark::State &state)
{
    schedulerPattern<HeapEventQueue>(state);
}
BENCHMARK(BM_EventQueueHeap);

void
BM_EventQueueIndexed(benchmark::State &state)
{
    schedulerPattern<EventQueue>(state);
}
BENCHMARK(BM_EventQueueIndexed);

void
BM_CacheLookup(benchmark::State &state)
{
    Cache c(32 * 1024, 32, 1);
    Cache::Victim v;
    for (Addr a = 0; a < 32 * 1024; a += 32)
        c.allocate(a, v)->state = CacheState::Shared;
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.find(a));
        a = (a + 32) % (32 * 1024);
    }
}
BENCHMARK(BM_CacheLookup);

void
BM_CacheAllocateEvict(benchmark::State &state)
{
    Cache c(32 * 1024, 32, 1);
    Cache::Victim v;
    Addr a = 0;
    for (auto _ : state) {
        if (!c.find(a))
            c.allocate(a, v)->state = CacheState::Shared;
        a += 32 * 1024 + 32; // always conflicts
    }
}
BENCHMARK(BM_CacheAllocateEvict);

class NullSink : public CoherenceSink
{
  public:
    bool invalidateNodeCopy(NodeId, Addr) override { return false; }
    void downgradeNodeCopy(NodeId, Addr) override {}
};

class HomeZero : public Placement
{
  public:
    NodeId homeOf(Addr) const override { return 0; }
};

void
BM_ProtocolFetch(benchmark::State &state)
{
    Params p = Params::base();
    Network net(p.numNodes, p.netLatency, p.niOccupancy);
    HomeZero place;
    NullSink sink;
    std::vector<std::unique_ptr<Memory>> mems;
    std::vector<Memory *> ptrs;
    for (std::size_t i = 0; i < p.numNodes; ++i) {
        mems.push_back(
            std::make_unique<Memory>(p.dramAccess, p.blockSize));
        ptrs.push_back(mems.back().get());
    }
    GlobalProtocol proto(p, net, place, sink, ptrs);
    Tick now = 0;
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            proto.fetch(now, 1 + (a / 32) % 7, a, ReqType::GetS));
        a += 32;
        now += 400;
    }
}
BENCHMARK(BM_ProtocolFetch);

void
BM_EndToEndSimulation(benchmark::State &state)
{
    Params p = Params::base();
    for (auto _ : state) {
        state.PauseTiming();
        auto wl = makeHotRemoteReuse(p, 16, 2);
        state.ResumeTiming();
        RunStats s = runProtocol(p, Protocol::RNuma, *wl);
        benchmark::DoNotOptimize(s.ticks);
        state.SetItemsProcessed(
            static_cast<std::int64_t>(s.refs));
    }
}
BENCHMARK(BM_EndToEndSimulation)->Unit(benchmark::kMillisecond);

void
BM_AppSimulationRate(benchmark::State &state)
{
    Params p = Params::base();
    auto wl = makeApp("moldyn", p, 0.1);
    std::uint64_t refs = 0;
    for (auto _ : state) {
        RunStats s = runProtocol(p, Protocol::RNuma, *wl);
        refs += s.refs;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(refs));
}
BENCHMARK(BM_AppSimulationRate)->Unit(benchmark::kMillisecond);

void
BM_SweepRunner(benchmark::State &state)
{
    // The figure pipeline's hot loop: the "micro" figure's 16 cells
    // through the sweep driver at the given job count. On multi-core
    // hosts the >1-job configurations should approach linear
    // speedup, since cells share no mutable state.
    const driver::FigureSpec *spec = driver::findFigure("micro");
    driver::Sweep sweep = spec->build({0.05});
    driver::SweepRunner runner(
        static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        driver::SweepResult r = runner.run(sweep);
        benchmark::DoNotOptimize(r.cells.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(sweep.size()));
}
BENCHMARK(BM_SweepRunner)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
