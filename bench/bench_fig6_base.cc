/**
 * @file
 * Figure 6 reproduction: execution time of CC-NUMA (32 KB block
 * cache), S-COMA (320 KB page cache) and R-NUMA (128 B + 320 KB,
 * threshold 64) for all ten applications, normalized to a CC-NUMA
 * with an infinite block cache.
 */

#include <algorithm>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/runner.hh"
#include "workload/registry.hh"

int
main()
{
    using namespace rnuma;
    bench::printHeader(
        "Figure 6: comparing CC-NUMA, S-COMA and R-NUMA",
        "Falsafi & Wood, ISCA'97, Figure 6");

    Params p = Params::base();
    double scale = bench::benchScale();

    Table t({"app", "CC-NUMA", "S-COMA", "R-NUMA", "best", "winner",
             "R-NUMA vs best"});
    double worst_gap = 0;
    std::string worst_app;

    for (const auto &app : bench::benchApps()) {
        auto wl = makeApp(app, p, scale);
        ProtocolComparison c = compareProtocols(p, *wl);
        double best = c.bestOfBase();
        const char *winner =
            c.normRN() <= best ? "R-NUMA"
                               : (c.normCC() < c.normSC() ? "CC-NUMA"
                                                          : "S-COMA");
        double gap = c.normRN() / best - 1.0;
        if (gap > worst_gap) {
            worst_gap = gap;
            worst_app = app;
        }
        t.addRow({app, Table::num(c.normCC()), Table::num(c.normSC()),
                  Table::num(c.normRN()), Table::num(best), winner,
                  gap <= 0 ? "best" : "+" + Table::pct(gap)});
    }
    t.print(std::cout);
    std::cout << "\nworst R-NUMA gap vs best of CC/SC: +"
              << Table::pct(worst_gap) << " (" << worst_app
              << "); paper: at most +57%.\n"
              << "paper extremes: CC-NUMA up to 179% slower than "
                 "S-COMA (moldyn-like);\nS-COMA up to 315% slower "
                 "than CC-NUMA (fmm/radix-like).\n";
    return 0;
}
