/**
 * @file
 * Figure 6 reproduction: execution time of CC-NUMA (32 KB block
 * cache), S-COMA (320 KB page cache) and R-NUMA (128 B + 320 KB,
 * threshold 64) for all ten applications, normalized to a CC-NUMA
 * with an infinite block cache.
 *
 * The sweep spec and table renderer live in the driver's figure
 * registry (src/driver/figures.cc, "fig6"); this binary is the
 * scale/jobs-from-environment shell around them.
 */

#include "bench_util.hh"

int
main()
{
    return rnuma::bench::figureMain("fig6");
}
