/**
 * @file
 * Figure 5 reproduction: the cumulative distribution of block
 * refetches as a function of the fraction of remote pages, on a
 * CC-NUMA with a 32 KB block cache. The paper omits fft (no capacity
 * or conflict misses); we print it anyway to confirm it is empty.
 *
 * The sweep spec and table renderer live in the driver's figure
 * registry (src/driver/figures.cc, "fig5"); this binary is the
 * scale/jobs-from-environment shell around them.
 */

#include "bench_util.hh"

int
main()
{
    return rnuma::bench::figureMain("fig5");
}
