/**
 * @file
 * Figure 5 reproduction: the cumulative distribution of block
 * refetches as a function of the fraction of remote pages, on a
 * CC-NUMA with a 32 KB block cache. The paper omits fft (no capacity
 * or conflict misses); we print it anyway to confirm it is empty.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/runner.hh"
#include "workload/registry.hh"

int
main()
{
    using namespace rnuma;
    bench::printHeader(
        "Figure 5: characterizing remote pages (refetch CDF)",
        "Falsafi & Wood, ISCA'97, Figure 5 (CC-NUMA, 32KB block "
        "cache)");

    Params p = Params::base();
    double scale = bench::benchScale();

    Table t({"app", "remote pages", "refetches", "top10%", "top20%",
             "top30%", "top50%", "top70%", "top90%"});

    for (const auto &app : bench::benchApps()) {
        auto wl = makeApp(app, p, scale);
        RunStats s = runProtocol(p, Protocol::CCNuma, *wl);
        auto dist = s.refetchDistribution();
        std::uint64_t total = 0;
        for (auto v : dist)
            total += v;
        if (total == 0) {
            t.addRow({app, std::to_string(dist.size()), "0",
                      "-", "-", "-", "-", "-", "-"});
            continue;
        }
        auto cum_at = [&](double frac) {
            std::size_t n = static_cast<std::size_t>(
                static_cast<double>(dist.size()) * frac + 0.5);
            if (n == 0)
                n = 1;
            std::uint64_t c = 0;
            for (std::size_t i = 0; i < n && i < dist.size(); ++i)
                c += dist[i];
            return static_cast<double>(c) /
                static_cast<double>(total);
        };
        t.addRow({app, std::to_string(dist.size()),
                  std::to_string(total), Table::pct(cum_at(0.1)),
                  Table::pct(cum_at(0.2)), Table::pct(cum_at(0.3)),
                  Table::pct(cum_at(0.5)), Table::pct(cum_at(0.7)),
                  Table::pct(cum_at(0.9))});
    }
    t.print(std::cout);
    std::cout
        << "\npaper shape: in four applications <10% of remote pages "
           "account for >80%\nof refetches; ~30% of pages cover "
           "~70% in all but radix, whose refetches\nare spread "
           "nearly uniformly; fft has none.\n";
    return 0;
}
