/**
 * @file
 * Figure 7 reproduction: sensitivity of CC-NUMA and R-NUMA to cache
 * sizes. CC-NUMA with 1 KB and 32 KB block caches; R-NUMA with
 * (128 B block cache, 320 KB page cache), (32 KB, 320 KB) and
 * (128 B, 40 MB). All normalized to CC-NUMA with an infinite block
 * cache.
 *
 * The sweep spec and table renderer live in the driver's figure
 * registry (src/driver/figures.cc, "fig7"); this binary is the
 * scale/jobs-from-environment shell around them.
 */

#include "bench_util.hh"

int
main()
{
    return rnuma::bench::figureMain("fig7");
}
