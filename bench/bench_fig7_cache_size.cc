/**
 * @file
 * Figure 7 reproduction: sensitivity of CC-NUMA and R-NUMA to cache
 * sizes. CC-NUMA with 1 KB and 32 KB block caches; R-NUMA with
 * (128 B block cache, 320 KB page cache), (32 KB, 320 KB) and
 * (128 B, 40 MB). All normalized to CC-NUMA with an infinite block
 * cache.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/runner.hh"
#include "workload/registry.hh"

int
main()
{
    using namespace rnuma;
    bench::printHeader(
        "Figure 7: cache-size sensitivity of CC-NUMA and R-NUMA",
        "Falsafi & Wood, ISCA'97, Figure 7");

    double scale = bench::benchScale();

    Table t({"app", "CC b=1K", "CC b=32K", "RN b=128,p=320K",
             "RN b=32K,p=320K", "RN b=128,p=40M"});

    for (const auto &app : bench::benchApps()) {
        Params base = Params::base();
        auto wl = makeApp(app, base, scale);
        Tick ideal = runInfiniteBaseline(base, *wl).ticks;
        auto norm = [&](const Params &p, Protocol proto) {
            RunStats s = runProtocol(p, proto, *wl);
            return Table::num(static_cast<double>(s.ticks) /
                              static_cast<double>(ideal));
        };

        Params cc1k = base;
        cc1k.blockCacheSize = 1024;
        Params rn_small = base; // 128 B + 320 KB (the base R-NUMA)
        Params rn_bigbc = base;
        rn_bigbc.rnumaBlockCacheSize = 32 * 1024;
        Params rn_bigpc = base;
        rn_bigpc.pageCacheSize = 40 * 1024 * 1024;

        t.addRow({app,
                  norm(cc1k, Protocol::CCNuma),
                  norm(base, Protocol::CCNuma),
                  norm(rn_small, Protocol::RNuma),
                  norm(rn_bigbc, Protocol::RNuma),
                  norm(rn_bigpc, Protocol::RNuma)});
    }
    t.print(std::cout);
    std::cout
        << "\npaper shape: em3d/fft perform well even at b=1K; "
           "barnes/moldyn/raytrace\nneed only a tiny block cache "
           "under R-NUMA (the page cache captures the\nreuse set); "
           "cholesky/fmm/radix degrade up to ~2x at b=1K under "
           "CC-NUMA;\nlu/ocean degrade up to ~7x. R-NUMA is "
           "insensitive to block-cache size\nunless the reuse set "
           "misses the page cache (fmm, radix, ocean improve\nwith "
           "b=32K or p=40M).\n";
    return 0;
}
