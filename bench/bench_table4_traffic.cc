/**
 * @file
 * Table 4 reproduction: per application,
 *   (a) the fraction of CC-NUMA block refetches due to read-write
 *       shared pages,
 *   (b) R-NUMA block refetches as a percentage of CC-NUMA's, and
 *   (c) R-NUMA page replacements as a percentage of S-COMA's.
 * Base system: CC 32KB block cache, S-COMA 320KB page cache, R-NUMA
 * 128B + 320KB, threshold 64.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/runner.hh"
#include "workload/registry.hh"

int
main()
{
    using namespace rnuma;
    bench::printHeader("Table 4: block refetches and page replacements",
                       "Falsafi & Wood, ISCA'97, Table 4");

    Params p = Params::base();
    double scale = bench::benchScale();

    Table t({"app", "CC-NUMA RW pages", "R-NUMA refetches vs CC",
             "R-NUMA replacements vs S-COMA"});

    for (const auto &app : bench::benchApps()) {
        auto wl = makeApp(app, p, scale);
        RunStats cc = runProtocol(p, Protocol::CCNuma, *wl);
        RunStats sc = runProtocol(p, Protocol::SComa, *wl);
        RunStats rn = runProtocol(p, Protocol::RNuma, *wl);

        std::string rw = cc.refetches == 0
            ? "-" : Table::pct(cc.rwPageRefetchFraction());
        std::string refetch_ratio = cc.refetches == 0
            ? "-"
            : Table::pct(static_cast<double>(rn.refetches) /
                         static_cast<double>(cc.refetches));
        std::string repl_ratio = sc.scomaReplacements == 0
            ? "-"
            : Table::pct(static_cast<double>(rn.scomaReplacements) /
                         static_cast<double>(sc.scomaReplacements));
        t.addRow({app, rw, refetch_ratio, repl_ratio});
    }
    t.print(std::cout);
    std::cout
        << "\npaper: RW pages account for >80% of refetches in the "
           "full applications\n(barnes 97%, em3d 100%, fmm 99%, lu "
           "82%, moldyn 98%, ocean 96%), less in\nthe kernels "
           "(cholesky 28%, radix 15%) and raytrace (5%). R-NUMA "
           "cuts\nrefetches sharply except fmm (142%) and radix "
           "(125%), and virtually\neliminates replacements except "
           "cholesky (15%) and lu (70%).\n";
    return 0;
}
