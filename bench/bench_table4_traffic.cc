/**
 * @file
 * Table 4 reproduction: per application,
 *   (a) the fraction of CC-NUMA block refetches due to read-write
 *       shared pages,
 *   (b) R-NUMA block refetches as a percentage of CC-NUMA's, and
 *   (c) R-NUMA page replacements as a percentage of S-COMA's.
 * Base system: CC 32KB block cache, S-COMA 320KB page cache, R-NUMA
 * 128B + 320KB, threshold 64.
 *
 * The sweep spec and table renderer live in the driver's figure
 * registry (src/driver/figures.cc, "table4"); this binary is the
 * scale/jobs-from-environment shell around them.
 */

#include "bench_util.hh"

int
main()
{
    return rnuma::bench::figureMain("table4");
}
