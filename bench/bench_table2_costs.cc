/**
 * @file
 * Table 2 reproduction: verifies that the simulator's composed
 * operation costs equal the paper's baseline system assumptions, by
 * exercising the actual component models (not just the Params
 * arithmetic).
 */

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hh"
#include "common/params.hh"
#include "common/table.hh"
#include "mem/memory.hh"
#include "net/network.hh"
#include "proto/protocol.hh"

namespace
{

using namespace rnuma;

class HomeZero : public Placement
{
  public:
    NodeId homeOf(Addr) const override { return 0; }
};

class NullSink : public CoherenceSink
{
  public:
    bool invalidateNodeCopy(NodeId, Addr) override { return false; }
    void downgradeNodeCopy(NodeId, Addr) override {}
};

} // namespace

int
main()
{
    using namespace rnuma;
    bench::printHeader("Table 2: baseline operation costs",
                       "Falsafi & Wood, ISCA'97, Table 2");

    Params p = Params::base();

    // Exercise an actual remote fetch through the protocol engine.
    Network net(p.numNodes, p.netLatency, p.niOccupancy);
    HomeZero place;
    NullSink sink;
    std::vector<std::unique_ptr<Memory>> mems;
    std::vector<Memory *> ptrs;
    for (std::size_t i = 0; i < p.numNodes; ++i) {
        mems.push_back(std::make_unique<Memory>(p.dramAccess,
                                                p.blockSize));
        ptrs.push_back(mems.back().get());
    }
    GlobalProtocol proto(p, net, place, sink, ptrs);
    Tick measured_remote =
        proto.fetch(0, 1, 0x1000, ReqType::GetS).done +
        2 * p.busLatency; // request + fill bus transactions
    Tick measured_local =
        proto.fetch(1000000, 0, 0x2000, ReqType::GetS).done - 1000000 +
        p.busLatency;

    Table t({"operation", "paper (cycles)", "measured/modeled"});
    t.addRow({"SRAM access", "8", std::to_string(p.sramAccess)});
    t.addRow({"DRAM access", "56", std::to_string(p.dramAccess)});
    t.addRow({"local cache fill", "69",
              std::to_string(measured_local)});
    t.addRow({"remote fetch", "376",
              std::to_string(measured_remote)});
    t.addRow({"soft trap", "2000", std::to_string(p.softTrap)});
    t.addRow({"TLB shootdown", "200",
              std::to_string(p.tlbShootdown)});
    t.addRow({"page alloc/replace/relocate (0 blocks)", "~3000",
              std::to_string(p.pageOpCost(0))});
    t.addRow({"page alloc/replace/relocate (128 blocks)", "~11500",
              std::to_string(p.pageOpCost(p.blocksPerPage()))});

    Params soft = Params::soft();
    t.addRow({"SOFT soft trap (10us)", "4000",
              std::to_string(soft.softTrap)});
    t.addRow({"SOFT TLB shootdown (5us)", "2000",
              std::to_string(soft.tlbShootdown)});
    t.print(std::cout);

    bool ok = measured_remote == 376 && measured_local == 69;
    std::cout << "\n" << (ok ? "PASS" : "MISMATCH")
              << ": composed latencies vs Table 2\n";
    return ok ? 0 : 1;
}
