/**
 * @file
 * Table 2 reproduction: verifies that the simulator's composed
 * operation costs equal the paper's baseline system assumptions, by
 * exercising the actual component models (not just the Params
 * arithmetic). Exits non-zero on a mismatch.
 *
 * The verification and table renderer live in the driver's figure
 * registry (src/driver/figures.cc, "table2"); this binary is the
 * environment shell around them.
 */

#include "bench_util.hh"

int
main()
{
    return rnuma::bench::figureMain("table2");
}
