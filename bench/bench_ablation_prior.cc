/**
 * @file
 * Ablation (not a paper figure): how much of R-NUMA's win depends on
 * the Section 3.1 "prior owner" directory state — the extra state
 * that classifies a re-request after a voluntary writeback as a
 * read-write refetch. Without it, only silently evicted read-only
 * blocks count as refetches, so write-reuse pages under-count and
 * relocate late or never.
 *
 * The sweep spec and table renderer live in the driver's figure
 * registry (src/driver/figures.cc, "ablation"); this binary is the
 * scale/jobs-from-environment shell around them.
 */

#include "bench_util.hh"

int
main()
{
    return rnuma::bench::figureMain("ablation");
}
