/**
 * @file
 * Ablation (not a paper figure): how much of R-NUMA's win depends on
 * the Section 3.1 "prior owner" directory state — the extra state
 * that classifies a re-request after a voluntary writeback as a
 * read-write refetch. Without it, only silently evicted read-only
 * blocks count as refetches, so write-reuse pages under-count and
 * relocate late or never.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/runner.hh"
#include "workload/registry.hh"

int
main()
{
    using namespace rnuma;
    bench::printHeader(
        "Ablation: the prior-owner (read-write refetch) state",
        "Falsafi & Wood, ISCA'97, Section 3.1 (design-choice "
        "ablation)");

    double scale = bench::benchScale();

    Table t({"app", "R-NUMA (full)", "R-NUMA (no prior state)",
             "slowdown", "relocations full/ablated"});

    for (const auto &app : bench::benchApps()) {
        Params full = Params::base();
        Params ablated = Params::base();
        ablated.priorOwnerState = false;

        auto wl = makeApp(app, full, scale);
        Tick ideal = runInfiniteBaseline(full, *wl).ticks;
        RunStats a = runProtocol(full, Protocol::RNuma, *wl);
        RunStats b = runProtocol(ablated, Protocol::RNuma, *wl);

        t.addRow({app,
                  Table::num(static_cast<double>(a.ticks) /
                             static_cast<double>(ideal)),
                  Table::num(static_cast<double>(b.ticks) /
                             static_cast<double>(ideal)),
                  Table::num(static_cast<double>(b.ticks) /
                             static_cast<double>(a.ticks)),
                  std::to_string(a.relocations) + "/" +
                      std::to_string(b.relocations)});
    }
    t.print(std::cout);
    std::cout
        << "\nreading the result: read-reuse pages are still detected "
           "through the stale\nsharer bits (silent read-only "
           "evictions), so most applications are\nunaffected — but "
           "radix, whose reuse is pure write scatter through "
           "the\ntiny block cache, loses every relocation without "
           "the prior-owner state.\nThat is precisely why Section "
           "3.1 adds the extra directory state for\nread-write "
           "blocks.\n";
    return 0;
}
