#include "bench_util.hh"

#include <iostream>

#include "common/logging.hh"
#include "driver/figures.hh"
#include "workload/registry.hh"

namespace rnuma::bench
{

double
benchScale()
{
    return driver::envScale();
}

std::size_t
benchJobs()
{
    return driver::envJobs();
}

const std::vector<std::string> &
benchApps()
{
    return appNames();
}

void
printHeader(const char *experiment, const char *paper_ref)
{
    std::cout << "==========================================================\n"
              << experiment << "\n"
              << "reproduces: " << paper_ref << "\n"
              << "workload scale: " << benchScale()
              << " (set RNUMA_BENCH_SCALE to change)\n"
              << "==========================================================\n\n";
}

int
figureMain(const char *figure)
{
    const driver::FigureSpec *spec = driver::findFigure(figure);
    RNUMA_ASSERT(spec, "no figure '", figure,
                 "' in the driver registry");
    printHeader(spec->title, spec->paperRef);
    driver::FigureOptions opt;
    opt.scale = benchScale();
    driver::FigureRun run = driver::runFigure(
        *spec, opt, benchJobs(), /*verify=*/false);
    return driver::renderFigure(*spec, run, std::cout);
}

} // namespace rnuma::bench
