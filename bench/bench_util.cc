#include "bench_util.hh"

#include <cstdlib>
#include <iostream>

#include "workload/registry.hh"

namespace rnuma::bench
{

double
benchScale()
{
    const char *env = std::getenv("RNUMA_BENCH_SCALE");
    if (!env)
        return 1.0;
    double s = std::atof(env);
    return s > 0 ? s : 1.0;
}

const std::vector<std::string> &
benchApps()
{
    return appNames();
}

void
printHeader(const char *experiment, const char *paper_ref)
{
    std::cout << "==========================================================\n"
              << experiment << "\n"
              << "reproduces: " << paper_ref << "\n"
              << "workload scale: " << benchScale()
              << " (set RNUMA_BENCH_SCALE to change)\n"
              << "==========================================================\n\n";
}

} // namespace rnuma::bench
