/**
 * @file
 * Figure 9 reproduction: sensitivity of S-COMA and R-NUMA to
 * page-fault and TLB-invalidation overheads. Base systems assume
 * 5 us page faults and 0.5 us hardware TLB invalidation; the SOFT
 * systems 10 us and 5 us (software shootdown via inter-processor
 * interrupts), roughly tripling the per-page costs. Normalized to a
 * CC-NUMA with an infinite block cache (base costs).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/runner.hh"
#include "workload/registry.hh"

int
main()
{
    using namespace rnuma;
    bench::printHeader(
        "Figure 9: page-fault / TLB overhead sensitivity",
        "Falsafi & Wood, ISCA'97, Figure 9");

    double scale = bench::benchScale();

    Table t({"app", "S-COMA", "S-COMA-SOFT", "R-NUMA",
             "R-NUMA-SOFT", "SC soft/base", "RN soft/base"});

    for (const auto &app : bench::benchApps()) {
        Params base = Params::base();
        Params soft = Params::soft();
        auto wl = makeApp(app, base, scale);
        Tick ideal = runInfiniteBaseline(base, *wl).ticks;

        auto run = [&](const Params &p, Protocol proto) {
            return runProtocol(p, proto, *wl).ticks;
        };
        Tick sc = run(base, Protocol::SComa);
        Tick sc_soft = run(soft, Protocol::SComa);
        Tick rn = run(base, Protocol::RNuma);
        Tick rn_soft = run(soft, Protocol::RNuma);

        auto norm = [&](Tick x) {
            return Table::num(static_cast<double>(x) /
                              static_cast<double>(ideal));
        };
        t.addRow({app, norm(sc), norm(sc_soft), norm(rn),
                  norm(rn_soft),
                  Table::num(static_cast<double>(sc_soft) /
                             static_cast<double>(sc)),
                  Table::num(static_cast<double>(rn_soft) /
                             static_cast<double>(rn))});
    }
    t.print(std::cout);
    std::cout
        << "\npaper shape: S-COMA is highly sensitive — execution "
           "time grows by up to\n~3x in more than half the "
           "applications under SOFT costs. R-NUMA grows by\nat most "
           "~25% in all but lu (~40%, whose replacements sit on the "
           "critical\npath due to load imbalance).\n";
    return 0;
}
