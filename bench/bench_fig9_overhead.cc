/**
 * @file
 * Figure 9 reproduction: sensitivity of S-COMA and R-NUMA to
 * page-fault and TLB-invalidation overheads. Base systems assume
 * 5 us page faults and 0.5 us hardware TLB invalidation; the SOFT
 * systems 10 us and 5 us (software shootdown via inter-processor
 * interrupts), roughly tripling the per-page costs. Normalized to a
 * CC-NUMA with an infinite block cache (base costs).
 *
 * The sweep spec and table renderer live in the driver's figure
 * registry (src/driver/figures.cc, "fig9"); this binary is the
 * scale/jobs-from-environment shell around them.
 */

#include "bench_util.hh"

int
main()
{
    return rnuma::bench::figureMain("fig9");
}
