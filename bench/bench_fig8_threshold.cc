/**
 * @file
 * Figure 8 reproduction: R-NUMA's sensitivity to the relocation
 * threshold, T in {16, 64, 256, 1024}, normalized to T = 64
 * (base R-NUMA: 128 B block cache, 320 KB page cache).
 *
 * The sweep spec and table renderer live in the driver's figure
 * registry (src/driver/figures.cc, "fig8"); this binary is the
 * scale/jobs-from-environment shell around them.
 */

#include "bench_util.hh"

int
main()
{
    return rnuma::bench::figureMain("fig8");
}
