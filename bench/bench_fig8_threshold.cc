/**
 * @file
 * Figure 8 reproduction: R-NUMA's sensitivity to the relocation
 * threshold, T in {16, 64, 256, 1024}, normalized to T = 64
 * (base R-NUMA: 128 B block cache, 320 KB page cache).
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/runner.hh"
#include "workload/registry.hh"

int
main()
{
    using namespace rnuma;
    bench::printHeader(
        "Figure 8: R-NUMA sensitivity to relocation threshold",
        "Falsafi & Wood, ISCA'97, Figure 8 (normalized to T=64)");

    double scale = bench::benchScale();
    const std::vector<std::size_t> thresholds{16, 64, 256, 1024};

    Table t({"app", "T=16", "T=64", "T=256", "T=1024"});
    for (const auto &app : bench::benchApps()) {
        Params base = Params::base();
        auto wl = makeApp(app, base, scale);

        Tick t64 = 0;
        std::vector<Tick> ticks;
        for (std::size_t T : thresholds) {
            Params p = base;
            p.relocationThreshold = T;
            RunStats s = runProtocol(p, Protocol::RNuma, *wl);
            ticks.push_back(s.ticks);
            if (T == 64)
                t64 = s.ticks;
        }
        std::vector<std::string> row{app};
        for (Tick tk : ticks)
            row.push_back(Table::num(static_cast<double>(tk) /
                                     static_cast<double>(t64)));
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout
        << "\npaper shape: performance varies by at most ~27% for "
           "most applications;\napplications with many reuse pages "
           "(cholesky, fmm, lu, ocean) gain up to\n~25% from the "
           "lower threshold of 16; communication-dominated "
           "applications\nare insensitive.\n";
    return 0;
}
