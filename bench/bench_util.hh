/**
 * @file
 * Shared helpers for the paper-reproduction benchmark harnesses:
 * environment-controlled workload scale and common run loops.
 */

#ifndef RNUMA_BENCH_BENCH_UTIL_HH
#define RNUMA_BENCH_BENCH_UTIL_HH

#include <string>
#include <vector>

#include "common/params.hh"
#include "common/stats.hh"
#include "workload/workload.hh"

namespace rnuma::bench
{

/**
 * Workload scale for the harnesses: 1.0 unless overridden by the
 * RNUMA_BENCH_SCALE environment variable (e.g. 0.25 for a quick
 * pass).
 */
double benchScale();

/** The ten Table 3 applications, in paper order. */
const std::vector<std::string> &benchApps();

/** Print the standard harness header. */
void printHeader(const char *experiment, const char *paper_ref);

} // namespace rnuma::bench

#endif // RNUMA_BENCH_BENCH_UTIL_HH
