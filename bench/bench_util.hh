/**
 * @file
 * Shared shell for the paper-reproduction benchmark harnesses. Since
 * the sweep driver (src/driver) took over cell execution, each bench
 * binary is one figureMain() call: scale and concurrency come from
 * the environment, the figure registry supplies the cells and the
 * table renderer.
 */

#ifndef RNUMA_BENCH_BENCH_UTIL_HH
#define RNUMA_BENCH_BENCH_UTIL_HH

#include <string>
#include <vector>

namespace rnuma::bench
{

/**
 * Workload scale for the harnesses: 1.0 unless overridden by the
 * RNUMA_BENCH_SCALE environment variable (e.g. 0.25 for a quick
 * pass).
 */
double benchScale();

/**
 * Sweep concurrency: 1 unless overridden by the RNUMA_BENCH_JOBS
 * environment variable (0 means hardware concurrency).
 */
std::size_t benchJobs();

/** The ten Table 3 applications, in paper order. */
const std::vector<std::string> &benchApps();

/** Print the standard harness header. */
void printHeader(const char *experiment, const char *paper_ref);

/**
 * The whole body of a figure harness: look @p figure up in the
 * driver's registry, run its sweep at benchScale() with benchJobs()
 * workers, print the header and the figure's table to stdout, and
 * return the render status.
 */
int figureMain(const char *figure);

} // namespace rnuma::bench

#endif // RNUMA_BENCH_BENCH_UTIL_HH
