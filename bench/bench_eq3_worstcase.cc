/**
 * @file
 * Section 3.2 reproduction: the worst-case (competitive) analysis.
 * Prints EQ 1/EQ 2 worst-case ratios across thresholds, the EQ 3
 * optimum, and then validates the structure empirically with the
 * adversarial reference stream (pages that accumulate exactly T
 * refetches, relocate, and die).
 */

#include <algorithm>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/analytic_model.hh"
#include "sim/runner.hh"
#include "workload/micro.hh"

int
main()
{
    using namespace rnuma;
    bench::printHeader("EQ 1-3: worst-case competitive analysis",
                       "Falsafi & Wood, ISCA'97, Section 3.2");

    Params p = Params::base();
    AnalyticModel model(ModelParams::fromSystem(p, 64));

    std::cout << "Analytic model (base system, 64 blocks moved per "
                 "page op):\n"
              << "  C_refetch  = " << model.params().cRefetch << "\n"
              << "  C_allocate = " << model.params().cAllocate << "\n"
              << "  C_relocate = " << model.params().cRelocate
              << "\n\n";

    Table t({"threshold T", "EQ1: worst vs CC-NUMA",
             "EQ2: worst vs S-COMA"});
    for (double T : {4.0, 16.0, 19.0, 64.0, 256.0, 1024.0}) {
        t.addRow({Table::num(T, 0),
                  Table::num(model.worstVsCCNuma(T)),
                  Table::num(model.worstVsSComa(T))});
    }
    t.print(std::cout);
    std::cout << "\nEQ3 optimal threshold T* = "
              << Table::num(model.optimalThreshold())
              << ", bound at T* = 2 + C_rel/C_alloc = "
              << Table::num(model.boundAtOptimal())
              << " (paper: between 2 and 3)\n\n";

    // Empirical adversary on a reduced machine configuration (the
    // full 8x4 machine with threshold 64 would need very long
    // streams; the structure is threshold-independent).
    Params sp = Params::base();
    sp.relocationThreshold = 16;
    std::cout << "Empirical adversary (threshold "
              << sp.relocationThreshold << ", "
              << "pages relocate then die):\n";
    auto wl = makeAdversary(sp, 24, sp.relocationThreshold + 1);
    ProtocolComparison c = compareProtocols(sp, *wl);

    double o_cc = c.normCC() - 1.0;
    double o_sc = c.normSC() - 1.0;
    double o_rn = c.normRN() - 1.0;
    Table e({"protocol", "normalized time", "overhead vs ideal"});
    e.addRow({"CC-NUMA", Table::num(c.normCC()), Table::num(o_cc)});
    e.addRow({"S-COMA", Table::num(c.normSC()), Table::num(o_sc)});
    e.addRow({"R-NUMA", Table::num(c.normRN()), Table::num(o_rn)});
    e.print(std::cout);

    double best = std::min(o_cc, o_sc);
    double ratio = best > 0 ? o_rn / best : 0;
    std::cout << "\nR-NUMA overhead vs best of CC/SC: "
              << Table::num(ratio)
              << "x (bounded by a small constant; the paper's bound "
                 "at T* is "
              << Table::num(model.boundAtOptimal()) << "x)\n";
    return 0;
}
