/**
 * @file
 * Section 3.2 reproduction: the worst-case (competitive) analysis.
 * Prints EQ 1/EQ 2 worst-case ratios across thresholds, the EQ 3
 * optimum, and then validates the structure empirically with the
 * adversarial reference stream (pages that accumulate exactly T
 * refetches, relocate, and die).
 *
 * The sweep spec and table renderer live in the driver's figure
 * registry (src/driver/figures.cc, "eq3"); this binary is the
 * environment shell around them.
 */

#include "bench_util.hh"

int
main()
{
    return rnuma::bench::figureMain("eq3");
}
