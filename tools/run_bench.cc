/**
 * @file
 * rnuma_bench: the measured-performance harness. Runs every
 * registered figure (or a subset) at one scale N times (default 5),
 * reports the median events/sec and events/instruction per cell,
 * and emits a versioned "rnuma-bench/v1" artifact (the committed
 * BENCH_<n>.json trajectory at the repo root).
 *
 * The per-cell counters — events, ticks, refs — are deterministic
 * simulator outputs: the harness asserts they are bit-identical
 * across the N runs (exit 3 otherwise), so the counter side of the
 * artifact is noise-immune, and only the host-measured events/sec
 * needs the median. Workloads are generated once into a shared cache
 * on the first run; later runs replay snapshots, which keeps the
 * medians from being polluted by one-time generation cost.
 *
 * Usage: rnuma_bench [options] [<figure>... | all]
 *   --list-protocols     print the protocol registry (id, name,
 *                        policy describe() string, description) and
 *                        exit
 *   --list-workloads     print the workload registry (id, name,
 *                        category, input, description) and exit
 *   --workload NAME      (repeatable) select registered workloads
 *                        for workload-parametric figures (the
 *                        "churn" sweep); other figures ignore it
 *   --runs N             runs per figure to take the median over
 *                        (default 5)
 *   --scale S            workload scale (default: RNUMA_BENCH_SCALE
 *                        or 1)
 *   --jobs N             worker threads; 0 = hardware concurrency
 *                        (default 1)
 *   --intra-jobs N       partition each cell's machine into N
 *                        logical processes (default 1 = serial; the
 *                        committed BENCH trajectory is serial —
 *                        counters are not comparable across values,
 *                        and --bench-compare fails on a mismatch)
 *   --out FILE           write the rnuma-bench/v1 JSON artifact
 *   --bench-compare FILE diff against a stored bench artifact:
 *                        exact counters, tolerance on events/sec
 *                        (exit 4 on drift)
 *   --rate-tolerance PCT allowed median events/sec drop for
 *                        --bench-compare (default 8; negative =
 *                        counters only)
 *   --current FILE       with --bench-compare and no figures: diff
 *                        FILE against the baseline instead of
 *                        running
 *   --quiet              suppress the per-figure summary lines
 */

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/relocation_policy.hh"
#include "driver/compare.hh"
#include "driver/figures.hh"
#include "driver/json.hh"
#include "driver/sweep_runner.hh"
#include "proto/registry.hh"
#include "workload/registry.hh"

namespace
{

using namespace rnuma;
using namespace rnuma::driver;

int
usage(std::ostream &os, int status)
{
    os << "usage: rnuma_bench [options] [<figure>... | all]\n"
          "  --list-protocols     list the protocol registry (with "
          "policy parameters)\n"
          "  --list-workloads     list the workload registry\n"
          "  --workload NAME      (repeatable) select workloads for "
          "workload-parametric\n"
          "                       figures (see 'churn')\n"
          "  --runs N             runs per figure for the median "
          "(default 5)\n"
          "  --scale S            workload scale (default: "
          "RNUMA_BENCH_SCALE or 1)\n"
          "  --jobs N             worker threads (0 = hardware "
          "concurrency; default 1)\n"
          "  --intra-jobs N       intra-cell machine partitions "
          "(default 1 = serial)\n"
          "  --out FILE           write the rnuma-bench/v1 JSON "
          "artifact\n"
          "  --bench-compare FILE diff against a stored bench "
          "artifact (exit 4 on drift)\n"
          "  --rate-tolerance PCT allowed events/sec drop (default "
          "8; negative = counters only)\n"
          "  --current FILE       with --bench-compare: diff FILE "
          "instead of running\n"
          "  --quiet              suppress per-figure summaries\n";
    return status;
}

bool
slurp(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "rnuma_bench: cannot read " << path << "\n";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t runs = 5;
    double scale = envScale();
    std::size_t jobs = 1;
    std::size_t intra_jobs = 1;
    std::string out_path;
    std::string compare_path;
    std::string current_path;
    double rate_tolerance = 8.0;
    bool quiet = false;
    std::vector<std::string> workloads;
    std::vector<std::string> names;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "rnuma_bench: " << arg
                          << " needs an argument\n";
                std::exit(usage(std::cerr, 2));
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            return usage(std::cout, 0);
        else if (arg == "--list-protocols") {
            // Mirror rnuma_sweep --list-protocols: the describe()
            // column is what makes static(T=64) vs
            // hysteresis(T=64,T_reverted=256) visible from the CLI.
            Params p = Params::base();
            Table t({"id", "name", "relocation policy",
                     "description"});
            for (const ProtocolSpec *s :
                 ProtocolRegistry::global().all()) {
                t.addRow({s->id, s->displayName,
                          s->makePolicy
                              ? s->makePolicy(p)->describe()
                              : "-",
                          s->description});
            }
            t.print(std::cout);
            std::cout << "\n(policies are shown for the paper's "
                         "base Params)\n";
            return 0;
        } else if (arg == "--list-workloads") {
            Table t({"id", "name", "category", "input",
                     "description"});
            for (const WorkloadSpec *s :
                 WorkloadRegistry::global().all()) {
                t.addRow({s->id, s->displayName, s->category,
                          s->input, s->description});
            }
            t.print(std::cout);
            return 0;
        } else if (arg == "--workload") {
            std::string name = next();
            if (!findWorkloadSpec(name)) {
                std::cerr << "rnuma_bench: unknown workload '"
                          << name
                          << "' (see --list-workloads)\n";
                return 2;
            }
            workloads.push_back(name);
        } else if (arg == "--runs") {
            const char *val = next();
            char *end = nullptr;
            long r = std::strtol(val, &end, 10);
            if (end == val || *end != '\0' || r < 1) {
                std::cerr << "rnuma_bench: --runs wants a positive "
                             "integer, got '" << val << "'\n";
                return 2;
            }
            runs = static_cast<std::size_t>(r);
        } else if (arg == "--scale") {
            const char *val = next();
            char *end = nullptr;
            scale = std::strtod(val, &end);
            if (end == val || *end != '\0' || scale <= 0) {
                std::cerr << "rnuma_bench: --scale wants a positive "
                             "number, got '" << val << "'\n";
                return 2;
            }
        } else if (arg == "--jobs") {
            const char *val = next();
            char *end = nullptr;
            long j = std::strtol(val, &end, 10);
            if (end == val || *end != '\0' || j < 0) {
                std::cerr << "rnuma_bench: --jobs wants a "
                             "non-negative integer (0 = all cores), "
                             "got '" << val << "'\n";
                return 2;
            }
            jobs = static_cast<std::size_t>(j);
        } else if (arg == "--intra-jobs") {
            const char *val = next();
            char *end = nullptr;
            long j = std::strtol(val, &end, 10);
            if (end == val || *end != '\0' || j < 1) {
                std::cerr << "rnuma_bench: --intra-jobs wants a "
                             "positive integer, got '" << val
                          << "'\n";
                return 2;
            }
            intra_jobs = static_cast<std::size_t>(j);
        } else if (arg == "--rate-tolerance") {
            const char *val = next();
            char *end = nullptr;
            rate_tolerance = std::strtod(val, &end);
            if (end == val || *end != '\0') {
                std::cerr << "rnuma_bench: --rate-tolerance wants a "
                             "number (percent), got '" << val
                          << "'\n";
                return 2;
            }
        }
        else if (arg == "--out")
            out_path = next();
        else if (arg == "--bench-compare")
            compare_path = next();
        else if (arg == "--current")
            current_path = next();
        else if (arg == "--quiet")
            quiet = true;
        else if (!arg.empty() && arg[0] == '-')
            return usage(std::cerr, 2);
        else
            names.push_back(arg);
    }
    if (!current_path.empty() && compare_path.empty()) {
        std::cerr << "rnuma_bench: --current requires "
                     "--bench-compare\n";
        return 2;
    }
    if (!names.empty() && !current_path.empty()) {
        std::cerr << "rnuma_bench: --current replaces running "
                     "figures; drop the figure names\n";
        return 2;
    }

    //--- Pure artifact-vs-artifact mode ---------------------------------
    if (!current_path.empty()) {
        try {
            std::string base_text, cur_text;
            if (!slurp(compare_path, base_text) ||
                !slurp(current_path, cur_text))
                return 2;
            BenchDoc baseline = loadBench(base_text);
            BenchDoc current = loadBench(cur_text);
            BenchCompareOptions opt;
            opt.ratePct = rate_tolerance;
            std::cout << "bench-comparing against " << compare_path
                      << " (" << baseline.schema << ")\n";
            return compareBench(baseline, current, opt, std::cout) >
                           0
                       ? 4
                       : 0;
        } catch (const std::exception &e) {
            std::cerr << "rnuma_bench: bench-compare failed: "
                      << e.what() << "\n";
            return 2;
        }
    }

    if (names.empty() || (names.size() == 1 && names[0] == "all")) {
        names.clear();
        for (const FigureSpec &s : figureSpecs())
            names.push_back(s.name);
    }
    std::vector<const FigureSpec *> specs;
    for (const std::string &n : names) {
        const FigureSpec *s = findFigure(n);
        if (!s) {
            std::cerr << "rnuma_bench: unknown figure '" << n
                      << "' (see rnuma_sweep --list)\n";
            return 2;
        }
        specs.push_back(s);
    }

    FigureOptions opt;
    opt.scale = scale;
    opt.workloads = workloads;
    opt.intraJobs = intra_jobs;
    // One workload cache across every run of every figure: run 0
    // generates, runs 1..N-1 replay snapshots.
    WorkloadCache process_cache;

    BenchDoc doc;
    doc.schema = "rnuma-bench/v1";
    doc.runs = runs;
    doc.scale = scale;
    doc.jobs = jobs;
    doc.intraJobs = intra_jobs;
    // rates[figure][cell] accumulates one events/sec sample per run.
    std::vector<std::vector<std::vector<double>>> rates(specs.size());

    for (std::size_t r = 0; r < runs; ++r) {
        for (std::size_t fi = 0; fi < specs.size(); ++fi) {
            FigureRun run = runFigure(*specs[fi], opt, jobs, false,
                                      true, &process_cache);
            if (r == 0) {
                BenchFigure f;
                f.name = run.name;
                f.scale = run.scale;
                rates[fi].resize(run.result.cells.size());
                for (const CellResult &c : run.result.cells) {
                    BenchCell bc;
                    bc.app = c.app;
                    bc.config = c.config;
                    bc.protocol = c.protocol;
                    bc.events = c.stats.events;
                    bc.ticks = c.stats.ticks;
                    bc.refs = c.stats.refs;
                    bc.eventsPerInstruction =
                        c.stats.refs > 0
                            ? static_cast<double>(c.stats.events) /
                                static_cast<double>(c.stats.refs)
                            : 0.0;
                    f.cells.push_back(std::move(bc));
                }
                doc.figures.push_back(std::move(f));
            }
            BenchFigure &f = doc.figures[fi];
            if (run.result.cells.size() != f.cells.size()) {
                std::cerr << "rnuma_bench: " << f.name
                          << ": cell count changed between runs\n";
                return 3;
            }
            for (std::size_t ci = 0; ci < f.cells.size(); ++ci) {
                const CellResult &c = run.result.cells[ci];
                BenchCell &bc = f.cells[ci];
                if (c.stats.events != bc.events ||
                    c.stats.ticks != bc.ticks ||
                    c.stats.refs != bc.refs) {
                    std::cerr
                        << "rnuma_bench: " << f.name << "/" << c.app
                        << "/" << c.config
                        << ": counters differ between runs — the "
                           "simulator is supposed to be "
                           "deterministic\n";
                    return 3;
                }
                rates[fi][ci].push_back(c.eventsPerSec());
            }
        }
        if (!quiet)
            std::cout << "run " << (r + 1) << "/" << runs
                      << " complete\n";
    }

    for (std::size_t fi = 0; fi < doc.figures.size(); ++fi) {
        BenchFigure &f = doc.figures[fi];
        double figure_events = 0, figure_rate_sum = 0;
        for (std::size_t ci = 0; ci < f.cells.size(); ++ci) {
            f.cells[ci].medianEventsPerSec = median(rates[fi][ci]);
            figure_events +=
                static_cast<double>(f.cells[ci].events);
            figure_rate_sum += f.cells[ci].medianEventsPerSec;
        }
        if (!quiet && !f.cells.empty()) {
            std::cout << "==== " << f.name << ": " << f.cells.size()
                      << " cells, median-of-" << runs
                      << " mean throughput "
                      << static_cast<std::uint64_t>(
                             figure_rate_sum /
                             static_cast<double>(f.cells.size()))
                      << " events/sec\n";
        }
    }

    int status = 0;
    if (!out_path.empty()) {
        std::ostringstream buf;
        writeBench(buf, doc);
        std::string text = buf.str();
        try {
            // Serialize-then-reparse guard, as the sweep CLI does.
            BenchDoc check = loadBench(text);
            if (check.figures.size() != doc.figures.size())
                throw std::runtime_error("figure count mismatch");
        } catch (const std::exception &e) {
            std::cerr << "rnuma_bench: emitted JSON failed "
                         "validation: " << e.what() << "\n";
            return 1;
        }
        std::ofstream out(out_path);
        if (!out) {
            std::cerr << "rnuma_bench: cannot write " << out_path
                      << "\n";
            return 1;
        }
        out << text;
        std::cout << "wrote " << out_path << " ("
                  << doc.figures.size() << " figures, median-of-"
                  << runs << ", validated)\n";
    }

    if (!compare_path.empty()) {
        try {
            std::string text;
            if (!slurp(compare_path, text))
                return 2;
            BenchDoc baseline = loadBench(text);
            BenchCompareOptions copt;
            copt.ratePct = rate_tolerance;
            std::cout << "bench-comparing against " << compare_path
                      << " (" << baseline.schema << ")\n";
            if (compareBench(baseline, doc, copt, std::cout) > 0)
                status = 4;
        } catch (const std::exception &e) {
            std::cerr << "rnuma_bench: bench-compare failed: "
                      << e.what() << "\n";
            return 2;
        }
    }
    return status;
}
