#!/usr/bin/env python3
"""Link-and-anchor checker for the repo's curated markdown docs.

Scans README.md, PAPER.md, and docs/**/*.md for inline markdown
links and verifies that

- relative file links resolve (relative to the containing file),
- anchor fragments (`#section`, alone or on a relative link) match a
  heading in the target file, using GitHub's slug rules,
- reference-style definitions `[label]: target` resolve the same way.

External (http/https/mailto) links are not fetched — this guards the
doc set against internal rot, not the internet. Exits non-zero with
one line per broken link. Run from anywhere:

    python3 tools/check_markdown_links.py
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

INLINE_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*#*\s*$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def slugify(heading: str) -> str:
    """GitHub's anchor slug: strip punctuation, lowercase, hyphens."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path, cache={}) -> set:
    if path not in cache:
        body = CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
        cache[path] = set()
        seen = {}
        for m in HEADING.finditer(body):
            slug = slugify(m.group(1))
            # GitHub de-duplicates repeated headings with -1, -2, ...
            n = seen.get(slug)
            seen[slug] = 0 if n is None else n + 1
            cache[path].add(slug if n is None else f"{slug}-{seen[slug]}")
    return cache[path]


def doc_files():
    files = [REPO / "README.md", REPO / "PAPER.md"]
    files += sorted((REPO / "docs").glob("**/*.md"))
    return [f for f in files if f.exists()]


def check_file(md: Path) -> list:
    errors = []
    text = md.read_text(encoding="utf-8")
    body = CODE_FENCE.sub("", text)
    targets = INLINE_LINK.findall(body) + REF_DEF.findall(body)
    for target in targets:
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme
            continue
        rel = md.relative_to(REPO)
        path_part, _, fragment = target.partition("#")
        if path_part:
            dest = (md.parent / path_part).resolve()
            if not dest.exists():
                errors.append(f"{rel}: broken link '{target}'")
                continue
        else:
            dest = md
        if fragment:
            if dest.suffix != ".md" or dest.is_dir():
                continue  # anchors into non-markdown: not checked
            if fragment.lower() not in anchors_of(dest):
                errors.append(
                    f"{rel}: broken anchor '{target}' "
                    f"(no heading '#{fragment}' in "
                    f"{dest.relative_to(REPO)})"
                )
    return errors


def main() -> int:
    errors = []
    files = doc_files()
    for md in files:
        errors.extend(check_file(md))
    for e in errors:
        print(f"FAIL: {e}")
    print(
        f"checked {len(files)} files: "
        + ("OK" if not errors else f"{len(errors)} broken link(s)")
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
