/**
 * @file
 * rnuma_sweep: run any paper figure/table by name through the
 * thread-parallel sweep driver and emit human tables plus
 * machine-readable JSON/CSV results, optionally diffing them against
 * a stored perf baseline.
 *
 * Usage: rnuma_sweep [options] <figure>... | all
 *   --list               print the known figure names and exit
 *   --list-protocols     print the protocol registry (id, name,
 *                        policy, description) and exit
 *   --list-networks      print the network registry (id, name,
 *                        description) and exit
 *   --list-workloads     print the workload registry (id, name,
 *                        category, input, description) and exit
 *   --protocol NAME      (repeatable) select registered protocols
 *                        for protocol-parametric figures (the
 *                        "policies" sweep); other figures ignore it
 *   --network NAME       (repeatable) select registered network
 *                        models for network-parametric figures (the
 *                        "scaling" sweep); other figures ignore it
 *   --workload NAME      (repeatable) select registered workloads
 *                        for workload-parametric figures (the
 *                        "churn" sweep); other figures ignore it
 *   --scale S            workload scale (default: RNUMA_BENCH_SCALE
 *                        or 1)
 *   --jobs N             worker threads; 0 = hardware concurrency
 *                        (default 1)
 *   --intra-jobs N       partition every cell's machine into N
 *                        logical processes (the conservative
 *                        parallel intra-cell engine; default 1 =
 *                        serial). Deterministic per N, but not
 *                        tick-identical across N — gate with
 *                        --compare-events. Cells whose node count N
 *                        does not divide stay serial.
 *   --json-out FILE      write results as rnuma-sweep-results/v8 JSON
 *   --csv-out FILE       write results as flat CSV
 *   --verify             re-run each sweep serially and assert
 *                        bit-identical RunStats
 *   --no-workload-cache  generate every cell's workload independently
 *                        (isolation debugging; results are identical
 *                        either way)
 *   --compare FILE       diff results against a baseline JSON: exact
 *                        per-cell ticks/events, thresholded wall time
 *   --tolerance PCT      allowed wall-time growth for --compare
 *                        (default 25; negative = determinism only)
 *   --compare-events FILE diff protocol-event counts against a
 *                        baseline JSON: exact refs/barriers,
 *                        thresholded protocol counters, timing
 *                        ignored — the cross-engine equivalence gate
 *                        for --intra-jobs runs (exit 4 on drift)
 *   --events-tolerance PCT allowed protocol-counter drift for
 *                        --compare-events (default 12)
 *   --current FILE       with --compare/--compare-events and no
 *                        figures: diff FILE against the baseline
 *                        instead of running
 *   --quiet              suppress the per-figure human tables
 *
 * Workloads are cached process-wide: figures sharing a generator
 * key (fig5/fig6/table4's base-machine apps) generate once per
 * invocation, and the aggregate hit/miss count is reported in the
 * closing summary line.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "driver/compare.hh"
#include "driver/figures.hh"
#include "driver/json.hh"
#include "driver/result_sink.hh"
#include "net/registry.hh"
#include "proto/registry.hh"
#include "workload/registry.hh"

namespace
{

using namespace rnuma;
using namespace rnuma::driver;

int
usage(std::ostream &os, int status)
{
    os << "usage: rnuma_sweep [options] <figure>... | all\n"
          "  --list               list figure names\n"
          "  --list-protocols     list the protocol registry\n"
          "  --list-networks      list the network registry\n"
          "  --list-workloads     list the workload registry\n"
          "  --protocol NAME      (repeatable) select protocols for "
          "protocol-parametric\n"
          "                       figures (see 'policies')\n"
          "  --network NAME       (repeatable) select network models "
          "for network-parametric\n"
          "                       figures (see 'scaling')\n"
          "  --workload NAME      (repeatable) select workloads for "
          "workload-parametric\n"
          "                       figures (see 'churn')\n"
          "  --scale S            workload scale (default: "
          "RNUMA_BENCH_SCALE or 1)\n"
          "  --jobs N             worker threads (0 = hardware "
          "concurrency; default 1)\n"
          "  --intra-jobs N       partition each cell's machine into "
          "N logical processes\n"
          "                       (deterministic per N; gate with "
          "--compare-events)\n"
          "  --json-out FILE      write rnuma-sweep-results/v8 JSON\n"
          "  --csv-out FILE       write flat CSV\n"
          "  --verify             assert serial/parallel RunStats "
          "are bit-identical\n"
          "  --no-workload-cache  disable the content-addressed "
          "workload cache\n"
          "  --compare FILE       diff results against a baseline "
          "JSON (exit 4 on drift)\n"
          "  --tolerance PCT      wall-time tolerance for --compare "
          "(default 25)\n"
          "  --compare-events FILE diff protocol-event counts against "
          "a baseline JSON\n"
          "                       (the --intra-jobs equivalence gate; "
          "exit 4 on drift)\n"
          "  --events-tolerance PCT protocol-counter tolerance for "
          "--compare-events (default 12)\n"
          "  --current FILE       with --compare/--compare-events: "
          "diff FILE instead\n"
          "                       of running figures\n"
          "  --quiet              suppress human-readable tables\n";
    return status;
}

void
listFigures(std::ostream &os)
{
    for (const FigureSpec &s : figureSpecs())
        os << s.name << "\t" << s.title << "\n";
}

void
listProtocols(std::ostream &os)
{
    Params p = Params::base();
    Table t({"id", "name", "relocation policy", "description"});
    for (const ProtocolSpec *s : ProtocolRegistry::global().all()) {
        t.addRow({s->id, s->displayName,
                  s->makePolicy ? s->makePolicy(p)->describe()
                                : "-",
                  s->description});
    }
    t.print(os);
    os << "\n(policies are shown for the paper's base Params; "
          "select with --protocol,\nrun them via the 'policies' "
          "figure)\n";
}

void
listNetworks(std::ostream &os)
{
    Table t({"id", "name", "description"});
    for (const NetworkSpec *s : NetworkRegistry::global().all())
        t.addRow({s->id, s->displayName, s->description});
    t.print(os);
    os << "\n(select with --network, sweep them via the 'scaling' "
          "figure; every other\nfigure pins the paper's constant "
          "model)\n";
}

void
listWorkloads(std::ostream &os)
{
    Table t({"id", "name", "category", "input", "description"});
    for (const WorkloadSpec *s : WorkloadRegistry::global().all()) {
        t.addRow({s->id, s->displayName, s->category, s->input,
                  s->description});
    }
    t.print(os);
    os << "\n(select with --workload, sweep them via the 'churn' "
          "figure; serving\ngenerators take k=v options via "
          "makeWorkload — see docs/ARCHITECTURE.md)\n";
}

/** Serialize, then re-parse as a malformed-output guard. */
bool
emitJson(const std::string &path,
         const std::vector<FigureRun> &runs)
{
    std::ostringstream buf;
    JsonSink().write(buf, runs);
    std::string text = buf.str();
    try {
        JsonValue doc = parseJson(text);
        const JsonValue *figures = doc.get("figures");
        if (!figures || !figures->isArray() ||
            figures->array.size() != runs.size())
            throw std::runtime_error("figure count mismatch");
    } catch (const std::exception &e) {
        std::cerr << "rnuma_sweep: emitted JSON failed validation: "
                  << e.what() << "\n";
        return false;
    }
    std::ofstream out(path);
    if (!out) {
        std::cerr << "rnuma_sweep: cannot write " << path << "\n";
        return false;
    }
    out << text;
    std::cout << "wrote " << path << " (" << runs.size()
              << " figures, validated)\n";
    return true;
}

/** Read a whole file; empty optional-style failure via bool. */
bool
slurp(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "rnuma_sweep: cannot read " << path << "\n";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = envScale();
    std::size_t jobs = 1;
    std::size_t intra_jobs = 1;
    std::vector<std::string> protocols;
    std::vector<std::string> networks;
    std::vector<std::string> workloads;
    std::string json_out;
    std::string csv_out;
    std::string compare_path;
    std::string compare_events_path;
    std::string current_path;
    double tolerance = 25.0;
    double events_tolerance = driver::EventCompareOptions{}.tolerancePct;
    bool verify = false;
    bool quiet = false;
    bool cache_workloads = true;
    std::vector<std::string> names;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "rnuma_sweep: " << arg
                          << " needs an argument\n";
                std::exit(usage(std::cerr, 2));
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            return usage(std::cout, 0);
        else if (arg == "--list")
            return (listFigures(std::cout), 0);
        else if (arg == "--list-protocols")
            return (listProtocols(std::cout), 0);
        else if (arg == "--list-networks")
            return (listNetworks(std::cout), 0);
        else if (arg == "--list-workloads")
            return (listWorkloads(std::cout), 0);
        else if (arg == "--protocol") {
            std::string name = next();
            if (!findProtocolSpec(name)) {
                std::cerr << "rnuma_sweep: unknown protocol '"
                          << name << "' (see --list-protocols)\n";
                return 2;
            }
            protocols.push_back(name);
        } else if (arg == "--network") {
            std::string name = next();
            if (!findNetworkSpec(name)) {
                std::cerr << "rnuma_sweep: unknown network '"
                          << name << "' (see --list-networks)\n";
                return 2;
            }
            networks.push_back(name);
        } else if (arg == "--workload") {
            std::string name = next();
            if (!findWorkloadSpec(name)) {
                std::cerr << "rnuma_sweep: unknown workload '"
                          << name << "' (see --list-workloads)\n";
                return 2;
            }
            workloads.push_back(name);
        } else if (arg == "--scale") {
            const char *val = next();
            char *end = nullptr;
            scale = std::strtod(val, &end);
            if (end == val || *end != '\0' || scale <= 0) {
                std::cerr << "rnuma_sweep: --scale wants a positive "
                             "number, got '" << val << "'\n";
                return 2;
            }
        } else if (arg == "--jobs") {
            const char *val = next();
            char *end = nullptr;
            long j = std::strtol(val, &end, 10);
            if (end == val || *end != '\0' || j < 0) {
                std::cerr << "rnuma_sweep: --jobs wants a "
                             "non-negative integer (0 = all cores), "
                             "got '" << val << "'\n";
                return 2;
            }
            jobs = static_cast<std::size_t>(j);
        } else if (arg == "--intra-jobs") {
            const char *val = next();
            char *end = nullptr;
            long j = std::strtol(val, &end, 10);
            if (end == val || *end != '\0' || j < 1) {
                std::cerr << "rnuma_sweep: --intra-jobs wants a "
                             "positive integer, got '" << val
                          << "'\n";
                return 2;
            }
            intra_jobs = static_cast<std::size_t>(j);
        } else if (arg == "--events-tolerance") {
            const char *val = next();
            char *end = nullptr;
            events_tolerance = std::strtod(val, &end);
            if (end == val || *end != '\0' ||
                events_tolerance < 0) {
                std::cerr << "rnuma_sweep: --events-tolerance wants "
                             "a non-negative number (percent), got '"
                          << val << "'\n";
                return 2;
            }
        } else if (arg == "--tolerance") {
            const char *val = next();
            char *end = nullptr;
            tolerance = std::strtod(val, &end);
            if (end == val || *end != '\0') {
                std::cerr << "rnuma_sweep: --tolerance wants a "
                             "number (percent), got '" << val
                          << "'\n";
                return 2;
            }
        }
        else if (arg == "--json-out")
            json_out = next();
        else if (arg == "--csv-out")
            csv_out = next();
        else if (arg == "--compare")
            compare_path = next();
        else if (arg == "--compare-events")
            compare_events_path = next();
        else if (arg == "--current")
            current_path = next();
        else if (arg == "--verify")
            verify = true;
        else if (arg == "--no-workload-cache")
            cache_workloads = false;
        else if (arg == "--quiet")
            quiet = true;
        else if (!arg.empty() && arg[0] == '-')
            return usage(std::cerr, 2);
        else
            names.push_back(arg);
    }
    if (!current_path.empty() && compare_path.empty() &&
        compare_events_path.empty()) {
        std::cerr << "rnuma_sweep: --current requires --compare or "
                     "--compare-events\n";
        return 2;
    }
    if (names.empty() && current_path.empty())
        return usage(std::cerr, 2);
    if (!names.empty() && !current_path.empty()) {
        std::cerr << "rnuma_sweep: --current replaces running "
                     "figures; drop the figure names\n";
        return 2;
    }
    if (names.size() == 1 && names[0] == "all") {
        names.clear();
        for (const FigureSpec &s : figureSpecs())
            names.push_back(s.name);
    }

    std::vector<const FigureSpec *> specs;
    for (const std::string &n : names) {
        const FigureSpec *s = findFigure(n);
        if (!s) {
            std::cerr << "rnuma_sweep: unknown figure '" << n
                      << "' (see --list)\n";
            return 2;
        }
        specs.push_back(s);
    }

    int status = 0;
    FigureOptions opt;
    opt.scale = scale;
    opt.protocols = protocols;
    opt.networks = networks;
    opt.workloads = workloads;
    opt.intraJobs = intra_jobs;
    // One process-scope snapshot store for the whole invocation, so
    // figures sharing a workload key generate it exactly once.
    WorkloadCache process_cache;
    std::vector<FigureRun> runs;
    runs.reserve(specs.size());
    for (const FigureSpec *spec : specs) {
        FigureRun run =
            runFigure(*spec, opt, jobs, verify, cache_workloads,
                      cache_workloads ? &process_cache : nullptr);
        std::ostringstream table;
        int rc = renderFigure(*spec, run, table);
        if (!quiet) {
            std::cout << "==== " << run.name << ": " << run.title
                      << "\n     " << run.paperRef << "\n     scale "
                      << run.scale << ", jobs " << run.jobs
                      << (intra_jobs > 1
                              ? ", intra-jobs " +
                                    std::to_string(intra_jobs)
                              : "")
                      << ", " << run.result.cells.size()
                      << " cells, "
                      << Table::num(run.wallMs) << " ms"
                      << (verify && run.jobs > 1
                              ? ", serial/parallel verified" : "");
            if (run.result.workloadsGenerated > 0) {
                std::cout << ", " << run.result.workloadsGenerated
                          << " workloads generated ("
                          << run.result.workloadCacheHits
                          << " cache hits)";
            }
            std::cout << "\n\n" << table.str() << "\n";
        }
        if (rc > status)
            status = rc;
        runs.push_back(std::move(run));
    }

    if (!runs.empty() && cache_workloads) {
        std::cout << "workload cache: "
                  << process_cache.generated()
                  << " workloads generated, "
                  << process_cache.hits()
                  << " cells served from cache across "
                  << runs.size() << " figure(s)\n";
    }

    if (!json_out.empty() && !emitJson(json_out, runs))
        status = status > 1 ? status : 1;
    if (!csv_out.empty()) {
        std::ofstream out(csv_out);
        if (!out) {
            std::cerr << "rnuma_sweep: cannot write " << csv_out
                      << "\n";
            status = status > 1 ? status : 1;
        } else {
            CsvSink().write(out, runs);
            std::cout << "wrote " << csv_out << "\n";
        }
    }

    if (!compare_path.empty() || !compare_events_path.empty()) {
        try {
            ResultDoc current;
            if (!current_path.empty()) {
                std::string cur_text;
                if (!slurp(current_path, cur_text))
                    return 2;
                current = loadResults(cur_text);
            } else {
                current = resultsOf(runs);
            }
            if (!compare_path.empty()) {
                std::string text;
                if (!slurp(compare_path, text))
                    return 2;
                ResultDoc baseline = loadResults(text);
                CompareOptions copt;
                copt.wallTolerancePct = tolerance;
                std::cout << "comparing against " << compare_path
                          << " (" << baseline.schema << ")\n";
                if (compareResults(baseline, current, copt,
                                   std::cout) > 0)
                    status = 4;
            }
            if (!compare_events_path.empty()) {
                std::string text;
                if (!slurp(compare_events_path, text))
                    return 2;
                ResultDoc baseline = loadResults(text);
                EventCompareOptions eopt;
                eopt.tolerancePct = events_tolerance;
                std::cout << "comparing event counts against "
                          << compare_events_path << " ("
                          << baseline.schema << ")\n";
                if (compareEventCounts(baseline, current, eopt,
                                       std::cout) > 0)
                    status = 4;
            }
        } catch (const std::exception &e) {
            std::cerr << "rnuma_sweep: compare failed: " << e.what()
                      << "\n";
            return 2;
        }
    }
    return status;
}
