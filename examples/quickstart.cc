/**
 * @file
 * Quickstart: build the paper's base machine, run one workload under
 * every registered protocol, and print normalized execution times
 * (normalized to a CC-NUMA with an infinite block cache, as in
 * Figure 6) plus the winner/regret summary. A protocol registered
 * with ProtocolRegistry::global().add() appears here automatically.
 *
 * Usage: quickstart [app-name] [scale] [jobs]
 *   app-name  one of the ten Table 3 applications (default: moldyn)
 *   scale     input scale factor (default 0.5 for a quick run)
 *   jobs      threads for the runs (default 4; 0 = one per core;
 *             deterministic at any value)
 */

#include <cstdlib>
#include <iostream>

#include "common/params.hh"
#include "common/table.hh"
#include "sim/runner.hh"
#include "workload/registry.hh"

int
main(int argc, char **argv)
{
    using namespace rnuma;

    std::string app = argc > 1 ? argv[1] : "moldyn";
    double scale = argc > 2 ? std::atof(argv[2]) : 0.5;
    std::size_t jobs = argc > 3
        ? static_cast<std::size_t>(std::atol(argv[3])) : 4;

    Params p = Params::base();
    std::cout << "R-NUMA quickstart: app=" << app << " scale=" << scale
              << "\n"
              << "machine: " << p.numNodes << " nodes x "
              << p.cpusPerNode << " cpus, block cache "
              << p.blockCacheSize / 1024 << "KB, page cache "
              << p.pageCacheSize / 1024 << "KB, threshold "
              << p.relocationThreshold << "\n\n";

    auto wl = makeApp(app, p, scale);
    std::cout << "workload: " << wl->totalRefs()
              << " stream entries\n\n";

    // Every run builds its own copy of the workload, so the runs can
    // execute concurrently with bit-identical results. The empty
    // spec list selects every registered protocol.
    ComparisonMatrix m = compareAll(
        p, [&] { return makeApp(app, p, scale); }, {}, jobs);

    Table t({"protocol", "ticks", "normalized", "vs winner",
             "remote fetches", "refetches", "page ops"});
    auto row = [&](const std::string &name, const RunStats &s,
                   const std::string &regret) {
        t.addRow({name, std::to_string(s.ticks),
                  Table::num(static_cast<double>(s.ticks) /
                             static_cast<double>(m.baseline.ticks)),
                  regret,
                  std::to_string(s.remoteFetches),
                  std::to_string(s.refetches),
                  std::to_string(s.scomaAllocations +
                                 s.relocations)});
    };
    row("CC-NUMA(inf)", m.baseline, "-");
    for (const ComparisonEntry &e : m.entries) {
        double r = m.regret(e.id);
        row(e.name, e.stats,
            r <= 0 ? "winner" : "+" + Table::pct(r));
    }
    t.print(std::cout);

    std::cout << "\nwinner: " << m.winner().name
              << "  best of CC/SC: " << Table::num(m.bestOfBase())
              << "  R-NUMA: " << Table::num(m.norm("rnuma"))
              << "\npaper invariant: R-NUMA is never much worse "
                 "than the best of the two base\nsystems (Section "
                 "5) — and any newly registered policy lands in "
                 "this table\nwith zero wiring.\n";
    return 0;
}
