/**
 * @file
 * Quickstart: build the paper's base machine, run one workload under
 * CC-NUMA, S-COMA, and R-NUMA, and print normalized execution times
 * (normalized to a CC-NUMA with an infinite block cache, as in
 * Figure 6).
 *
 * Usage: quickstart [app-name] [scale] [jobs]
 *   app-name  one of the ten Table 3 applications (default: moldyn)
 *   scale     input scale factor (default 0.5 for a quick run)
 *   jobs      threads for the four runs (default 4; 0 = one per
 *             core; deterministic at any value)
 */

#include <cstdlib>
#include <iostream>

#include "common/params.hh"
#include "common/table.hh"
#include "sim/runner.hh"
#include "workload/registry.hh"

int
main(int argc, char **argv)
{
    using namespace rnuma;

    std::string app = argc > 1 ? argv[1] : "moldyn";
    double scale = argc > 2 ? std::atof(argv[2]) : 0.5;
    std::size_t jobs = argc > 3
        ? static_cast<std::size_t>(std::atol(argv[3])) : 4;

    Params p = Params::base();
    std::cout << "R-NUMA quickstart: app=" << app << " scale=" << scale
              << "\n"
              << "machine: " << p.numNodes << " nodes x "
              << p.cpusPerNode << " cpus, block cache "
              << p.blockCacheSize / 1024 << "KB, page cache "
              << p.pageCacheSize / 1024 << "KB, threshold "
              << p.relocationThreshold << "\n\n";

    auto wl = makeApp(app, p, scale);
    std::cout << "workload: " << wl->totalRefs()
              << " stream entries\n\n";

    // Each of the four runs builds its own copy of the workload, so
    // they can execute concurrently with bit-identical results.
    ProtocolComparison c = compareProtocols(
        p, [&] { return makeApp(app, p, scale); }, jobs);

    Table t({"protocol", "ticks", "normalized", "remote fetches",
             "refetches", "page ops"});
    auto row = [&](const char *name, const RunStats &s) {
        t.addRow({name, std::to_string(s.ticks),
                  Table::num(static_cast<double>(s.ticks) /
                             static_cast<double>(c.baseline.ticks)),
                  std::to_string(s.remoteFetches),
                  std::to_string(s.refetches),
                  std::to_string(s.scomaAllocations +
                                 s.relocations)});
    };
    row("CC-NUMA(inf)", c.baseline);
    row("CC-NUMA", c.ccNuma);
    row("S-COMA", c.sComa);
    row("R-NUMA", c.rNuma);
    t.print(std::cout);

    std::cout << "\nbest of CC/SC: " << Table::num(c.bestOfBase())
              << "  R-NUMA: " << Table::num(c.normRN()) << "\n";
    return 0;
}
