/**
 * @file
 * protocol_explorer: an interactive-style tour of the coherence
 * protocol using the public API directly — no workload generator.
 * Issues a scripted sequence of references on the base machine and
 * narrates how the directory classifies each miss, when the R-NUMA
 * counters fire, and what a relocation costs. A good first read for
 * understanding the library's moving parts.
 */

#include <iostream>
#include <memory>

#include "common/params.hh"
#include "common/table.hh"
#include "os/page_table.hh"
#include "sim/machine.hh"
#include "sim/runner.hh"
#include "workload/workload.hh"

namespace
{

/** The second chunk, 32 KB away: conflicts in every cache. */
constexpr rnuma::Addr far = 32 * 1024;

/**
 * The scripted stream: CPU 4 (node 1) owns a page; CPU 0 (node 0)
 * ping-pongs two conflicting blocks until the page relocates.
 */
std::unique_ptr<rnuma::VectorWorkload>
explorerStream(const rnuma::Params &p)
{
    using namespace rnuma;
    auto wl = std::make_unique<VectorWorkload>("explorer",
                                               p.numCpus());
    Addr page_addr = 0;
    wl->push(4, Ref::touchOf(page_addr));
    wl->push(4, Ref::touchOf(far));
    wl->pushBarrierAll();
    for (int i = 0; i < 12; ++i) {
        wl->push(0, Ref::mem(page_addr, false, 2));
        wl->push(0, Ref::mem(far, false, 2));
    }
    wl->seal();
    return wl;
}

} // namespace

int
main()
{
    using namespace rnuma;
    Params p = Params::base();
    p.relocationThreshold = 8; // small, so the demo is short

    std::cout
        << "protocol_explorer: one remote page under R-NUMA "
           "(threshold 8)\n\n";

    auto wl = explorerStream(p);

    Machine m(p, Protocol::RNuma, *wl);
    RunStats s = m.run();

    std::cout << "after 12 alternations over two conflicting remote "
                 "blocks:\n"
              << "  remote fetches  : " << s.remoteFetches << "\n"
              << "  cold misses     : " << s.coldMisses << "\n"
              << "  refetches       : " << s.refetches
              << "   (directory saw requests for blocks node 0 "
                 "already had)\n"
              << "  relocations     : " << s.relocations
              << "   (counters crossed the threshold of "
              << p.relocationThreshold << ")\n"
              << "  page-cache hits : " << s.pageCacheHits
              << "   (post-relocation, served from local memory)\n"
              << "  OS cycles       : " << s.osCycles << "\n\n";

    PageTable &pt = m.node(0).pageTable();
    std::cout << "node 0 page table now maps the hot pages as:\n"
              << "  page 0    : "
              << (pt.modeOf(0) == PageMode::SComa ? "S-COMA"
                                                  : "CC-NUMA")
              << "\n  page 8 (far block's page): "
              << (pt.modeOf(far / p.pageSize) == PageMode::SComa
                      ? "S-COMA" : "CC-NUMA")
              << "\n\nthe directory detected every capacity re-request"
                 " (Section 3.1), the\nreactive counters fired, and "
                 "the OS moved both pages into the page\ncache — the "
                 "R-NUMA mechanism end to end.\n\n";

    // The same scripted stream under every registered protocol: the
    // registry-driven ComparisonMatrix is the N-way version of the
    // run above, and a newly registered policy appears in this
    // table with zero wiring.
    std::cout << "the same stream under every registered protocol "
                 "(normalized to the\ninfinite-block-cache "
                 "baseline):\n\n";
    ComparisonMatrix cm = compareAll(
        p, [&p] { return explorerStream(p); }, {}, /*jobs=*/0);
    Table t({"protocol", "normalized", "vs winner", "refetches",
             "relocations", "page-cache hits"});
    for (const ComparisonEntry &e : cm.entries) {
        double r = cm.regret(e.id);
        t.addRow({e.name, Table::num(cm.norm(e.id)),
                  r <= 0 ? "winner" : "+" + Table::pct(r),
                  std::to_string(e.stats.refetches),
                  std::to_string(e.stats.relocations),
                  std::to_string(e.stats.pageCacheHits)});
    }
    t.print(std::cout);
    std::cout << "\nwinner: " << cm.winner().name
              << " — the threshold-8 hybrids relocate both pages "
                 "(and pay for it on this\nshort stream), while "
                 "R-NUMA(model)'s model-derived threshold exceeds "
                 "the 12\nalternations and keeps block-caching; "
                 "register your own ProtocolSpec\n"
                 "(docs/PROTOCOLS.md) and it joins this table.\n";
    return 0;
}
