/**
 * @file
 * adversary: a walk through the paper's worst-case analysis
 * (Section 3.2). Generates the adversarial reference stream — pages
 * that accumulate exactly the relocation threshold's worth of
 * capacity refetches and are then abandoned — and compares measured
 * overheads against the EQ 1-3 predictions across thresholds.
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "common/params.hh"
#include "common/table.hh"
#include "core/analytic_model.hh"
#include "sim/runner.hh"
#include "workload/micro.hh"

int
main(int argc, char **argv)
{
    using namespace rnuma;
    std::size_t pages = argc > 1
        ? static_cast<std::size_t>(std::atoi(argv[1])) : 24;

    Params base = Params::base();
    AnalyticModel model(ModelParams::fromSystem(base, 64));
    std::cout
        << "adversary: Section 3.2 worst case.\n"
        << "analytic optimal threshold T* = C_alloc/C_refetch = "
        << Table::num(model.optimalThreshold())
        << ", bound at T* = " << Table::num(model.boundAtOptimal())
        << "\n\n";

    Table t({"T", "CC-NUMA overhead", "S-COMA overhead",
             "R-NUMA overhead", "RN / best", "EQ1 pred", "EQ2 pred"});

    for (std::size_t T : {4u, 8u, 16u, 32u, 64u}) {
        Params p = base;
        p.relocationThreshold = T;
        auto wl = makeAdversary(p, pages, T + 1);
        ProtocolComparison c = compareProtocols(p, *wl);
        double o_cc = c.normCC() - 1.0;
        double o_sc = c.normSC() - 1.0;
        double o_rn = c.normRN() - 1.0;
        double best = std::min(o_cc, o_sc);
        t.addRow({std::to_string(T), Table::num(o_cc, 3),
                  Table::num(o_sc, 3), Table::num(o_rn, 3),
                  best > 0 ? Table::num(o_rn / best) : "-",
                  Table::num(model.worstVsCCNuma(
                      static_cast<double>(T))),
                  Table::num(model.worstVsSComa(
                      static_cast<double>(T)))});
    }
    t.print(std::cout);

    std::cout
        << "\nreading the table: as T grows, R-NUMA's exposure vs "
           "CC-NUMA shrinks (EQ 1\nfalls toward 1) while its "
           "exposure vs S-COMA grows (EQ 2 rises); the\nintersection "
           "is the paper's optimal threshold. Measured ratios also "
           "include\nthe soft map faults and contention the model "
           "abstracts away.\n";
    return 0;
}
