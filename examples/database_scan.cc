/**
 * @file
 * database_scan: the motivating scenario from the paper's
 * introduction. Verghese et al. found that 90% of user data misses
 * in a commercial relational database are to read-write shared
 * pages — traffic that page migration and read-only replication
 * cannot help, but S-COMA-style page caching can (Section 1).
 *
 * The workload models an OLTP-ish mix on the base 8x4 machine:
 *   - a large, read-mostly buffer pool scanned with reuse (too big
 *     for the block cache, read-write shared via updates),
 *   - a hot lock/latch page hammered read-write by every node,
 *   - per-transaction private working storage (node-local).
 *
 * Run it to see R-NUMA relocate the buffer-pool pages while leaving
 * the lock page (pure coherence traffic) in CC-NUMA mode.
 */

#include <iostream>

#include "common/params.hh"
#include "common/table.hh"
#include "sim/runner.hh"
#include "workload/registry.hh"

int
main(int argc, char **argv)
{
    using namespace rnuma;
    std::size_t txns = argc > 1
        ? static_cast<std::size_t>(std::atoi(argv[1])) : 48;

    Params p = Params::base();
    std::cout << "database_scan: OLTP-like read-write sharing ("
              << txns << " transaction rounds)\n\n";
    // The generator lives in the workload registry now
    // (src/workload/serving.cc); seed 0xdb reproduces the stream
    // this example has always run.
    auto wl = makeWorkload("database-scan", p, 1.0, 0xdb,
                           "transactions=" + std::to_string(txns));
    ProtocolComparison c = compareProtocols(p, *wl);

    Table t({"protocol", "normalized time", "refetches",
             "relocations", "replacements"});
    auto row = [&](const char *n, const RunStats &s) {
        t.addRow({n,
                  Table::num(static_cast<double>(s.ticks) /
                             static_cast<double>(c.baseline.ticks)),
                  std::to_string(s.refetches),
                  std::to_string(s.relocations),
                  std::to_string(s.scomaReplacements)});
    };
    row("CC-NUMA", c.ccNuma);
    row("S-COMA", c.sComa);
    row("R-NUMA", c.rNuma);
    t.print(std::cout);

    std::cout << "\nR-NUMA relocated " << c.rNuma.relocations
              << " hot buffer-pool pages; the latch page's "
                 "coherence traffic\nnever counts as refetches, so "
                 "it stays CC-NUMA — the per-page split the\npaper "
                 "argues for in Section 1.\n";
    return 0;
}
