/**
 * @file
 * database_scan: the motivating scenario from the paper's
 * introduction. Verghese et al. found that 90% of user data misses
 * in a commercial relational database are to read-write shared
 * pages — traffic that page migration and read-only replication
 * cannot help, but S-COMA-style page caching can (Section 1).
 *
 * The workload models an OLTP-ish mix on the base 8x4 machine:
 *   - a large, read-mostly buffer pool scanned with reuse (too big
 *     for the block cache, read-write shared via updates),
 *   - a hot lock/latch page hammered read-write by every node,
 *   - per-transaction private working storage (node-local).
 *
 * Run it to see R-NUMA relocate the buffer-pool pages while leaving
 * the lock page (pure coherence traffic) in CC-NUMA mode.
 */

#include <iostream>

#include "common/params.hh"
#include "common/table.hh"
#include "sim/runner.hh"
#include "workload/synthetic.hh"

namespace
{

using namespace rnuma;

std::unique_ptr<VectorWorkload>
makeDatabaseScan(const Params &p, std::size_t transactions)
{
    StreamBuilder b("database-scan", p, 0xdb);
    const std::size_t pool_pages = 160; // shared buffer pool
    const std::size_t rows_per_txn = 48;
    const std::size_t hot_fraction_pages = 24; // hot tables

    Addr pool = b.allocPages(pool_pages);
    for (std::size_t pg = 0; pg < pool_pages; ++pg) {
        NodeId n = static_cast<NodeId>(pg % b.nnodes());
        b.touch(static_cast<CpuId>(n * b.cpusPerNode()),
                pool + pg * p.pageSize);
    }
    Addr locks = b.allocPages(1);
    b.touch(0, locks);
    std::vector<Addr> scratch(b.ncpus());
    for (CpuId c = 0; c < b.ncpus(); ++c) {
        scratch[c] = b.allocPages(1);
        b.touchRange(c, scratch[c], p.pageSize);
    }

    b.barrier();
    for (std::size_t txn = 0; txn < transactions; ++txn) {
        for (CpuId c = 0; c < b.ncpus(); ++c) {
            // Acquire a latch: read-write traffic on the hot page.
            Addr latch = locks +
                b.rng().below(p.blocksPerPage()) * p.blockSize;
            b.read(c, latch, 2);
            b.write(c, latch, 2);
            // Scan rows, mostly in the hot part of the pool.
            for (std::size_t r = 0; r < rows_per_txn; ++r) {
                std::size_t pg = b.rng().chance(0.8)
                    ? b.rng().below(hot_fraction_pages)
                    : b.rng().below(pool_pages);
                Addr row = pool + pg * p.pageSize +
                    b.rng().below(p.blocksPerPage()) * p.blockSize;
                b.read(c, row, 6);
                // 10% of rows are updated in place (read-write
                // sharing that replication cannot help).
                if (b.rng().chance(0.1))
                    b.write(c, row, 4);
                // Spill to private working storage.
                b.write(c, scratch[c] +
                            (r % p.blocksPerPage()) * p.blockSize, 2);
            }
        }
        if (txn % 8 == 7)
            b.barrier(); // commit groups
    }
    return b.finish();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rnuma;
    std::size_t txns = argc > 1
        ? static_cast<std::size_t>(std::atoi(argv[1])) : 48;

    Params p = Params::base();
    std::cout << "database_scan: OLTP-like read-write sharing ("
              << txns << " transaction rounds)\n\n";
    auto wl = makeDatabaseScan(p, txns);
    ProtocolComparison c = compareProtocols(p, *wl);

    Table t({"protocol", "normalized time", "refetches",
             "relocations", "replacements"});
    auto row = [&](const char *n, const RunStats &s) {
        t.addRow({n,
                  Table::num(static_cast<double>(s.ticks) /
                             static_cast<double>(c.baseline.ticks)),
                  std::to_string(s.refetches),
                  std::to_string(s.relocations),
                  std::to_string(s.scomaReplacements)});
    };
    row("CC-NUMA", c.ccNuma);
    row("S-COMA", c.sComa);
    row("R-NUMA", c.rNuma);
    t.print(std::cout);

    std::cout << "\nR-NUMA relocated " << c.rNuma.relocations
              << " hot buffer-pool pages; the latch page's "
                 "coherence traffic\nnever counts as refetches, so "
                 "it stays CC-NUMA — the per-page split the\npaper "
                 "argues for in Section 1.\n";
    return 0;
}
