/**
 * @file
 * custom_sweep: declaring your own experiment grid on the sweep
 * driver — a parameter study the paper never ran (relocation
 * threshold x page-cache size for one application), executed on a
 * thread pool and emitted as machine-readable JSON. This is the
 * pattern every new scaling or scenario study should follow instead
 * of hand-rolling run loops.
 *
 * Usage: custom_sweep [app] [scale] [jobs]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "driver/result_sink.hh"
#include "driver/sweep.hh"
#include "driver/sweep_runner.hh"

int
main(int argc, char **argv)
{
    using namespace rnuma;
    using namespace rnuma::driver;

    std::string app = argc > 1 ? argv[1] : "ocean";
    double scale = argc > 2 ? std::atof(argv[2]) : 0.25;
    std::size_t jobs = argc > 3
        ? static_cast<std::size_t>(std::atol(argv[3])) : 0;

    // The axes: R-NUMA's relocation threshold against its page-cache
    // budget. Each (T, size) pair is one independent cell.
    const std::size_t thresholds[] = {16, 64, 256};
    const std::size_t cache_kb[] = {160, 320, 1280};

    Sweep sweep("threshold-x-pagecache",
                "R-NUMA threshold vs page-cache size", "custom");
    Params base = Params::base();
    // One shared factory and one shared cache key: every cell
    // measures the identical trace, and the runner's workload cache
    // generates it exactly once for the whole grid.
    WorkloadFactory make = appFactory(app, base, scale);
    std::string key = workloadCacheKey(app, base, scale);
    Params inf = base;
    inf.infiniteBlockCache = true;
    sweep.add({app, "baseline", protocolSpec("ccnuma"), inf, make,
               key, app});
    for (std::size_t T : thresholds) {
        for (std::size_t kb : cache_kb) {
            // The threshold axis is a relocation-policy variant
            // (staticThresholdSpec); the page-cache axis is real
            // hardware, so it stays in Params.
            Params p = base;
            p.pageCacheSize = kb * 1024;
            sweep.add({app,
                       "t" + std::to_string(T) + "-p" +
                           std::to_string(kb) + "k",
                       staticThresholdSpec(T), p, make, key, app});
        }
    }

    SweepRunner runner(jobs);
    std::cout << "running " << sweep.size() << " cells for " << app
              << " on " << runner.jobs() << " threads...\n\n";
    SweepResult result = runner.run(sweep);
    std::cout << result.workloadsGenerated
              << " workload generated, " << result.workloadCacheHits
              << " cells served from the cache\n";

    Tick ideal = result.at(app, "baseline").stats.ticks;
    Table t({"threshold \\ page cache", "160KB", "320KB", "1280KB"});
    for (std::size_t T : thresholds) {
        std::vector<std::string> row{"T=" + std::to_string(T)};
        for (std::size_t kb : cache_kb) {
            const CellResult &c = result.at(
                app, "t" + std::to_string(T) + "-p" +
                    std::to_string(kb) + "k");
            row.push_back(Table::num(
                static_cast<double>(c.stats.ticks) /
                static_cast<double>(ideal)));
        }
        t.addRow(row);
    }
    t.print(std::cout);

    // The same result, machine-readable (pipe to a file to keep it).
    FigureRun run;
    run.name = sweep.name();
    run.title = sweep.title();
    run.paperRef = sweep.paperRef();
    run.scale = scale;
    run.jobs = runner.jobs();
    run.result = std::move(result);
    std::cout << "\nJSON:\n";
    JsonSink().write(std::cout, {std::move(run)});
    return 0;
}
