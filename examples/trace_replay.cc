/**
 * @file
 * trace_replay: record a registered workload's reference streams to
 * the streaming binary trace format (workload/trace_stream.hh) and
 * replay it bit-identically off the file mapping — the mechanism for
 * sharing reproducible inputs and regression-testing protocol
 * changes without materializing the trace in memory.
 *
 * The replay side never loads the trace: StreamTraceWorkload decodes
 * records lazily from an mmap of the file, so resident memory is
 * bounded by one chunk per CPU regardless of trace length.
 *
 * Usage: trace_replay [workload] [scale] [path]
 *   workload: any id from `rnuma_sweep --list-workloads`
 *
 * Exits 0 when the replayed run is bit-identical to the original
 * (ticks and remote fetches match), 1 otherwise — CI uses this as
 * the trace-format golden round-trip check.
 */

#include <cstdlib>
#include <iostream>

#include "common/params.hh"
#include "sim/runner.hh"
#include "workload/registry.hh"
#include "workload/trace_stream.hh"

int
main(int argc, char **argv)
{
    using namespace rnuma;
    std::string app = argc > 1 ? argv[1] : "barnes";
    double scale = argc > 2 ? std::atof(argv[2]) : 0.2;
    std::string path = argc > 3 ? argv[3] : "/tmp/rnuma_demo.trace";

    Params p = Params::base();

    std::cout << "recording " << app << " (scale " << scale
              << ") to " << path << " ...\n";
    auto original = makeWorkload(app, p, scale);
    recordStreamTrace(*original, path);

    std::cout << "replaying from the file mapping ...\n";
    StreamTraceWorkload replayed(path);

    RunStats a = runProtocol(p, "rnuma", *original);
    RunStats b = runProtocol(p, "rnuma", replayed);

    std::cout << "\noriginal : ticks=" << a.ticks
              << " remoteFetches=" << a.remoteFetches
              << " relocations=" << a.relocations << "\n"
              << "replayed : ticks=" << b.ticks
              << " remoteFetches=" << b.remoteFetches
              << " relocations=" << b.relocations << "\n";

    if (a.ticks == b.ticks && a.remoteFetches == b.remoteFetches &&
        a.relocations == b.relocations) {
        std::cout << "\nPASS: streamed replay is bit-identical.\n";
        return 0;
    }
    std::cout << "\nFAIL: streamed replay diverged.\n";
    return 1;
}
