/**
 * @file
 * trace_replay: record a workload's reference streams to a binary
 * trace file and replay it bit-identically — the mechanism for
 * sharing reproducible inputs and regression-testing protocol
 * changes.
 *
 * Usage: trace_replay [app] [scale] [path]
 */

#include <cstdlib>
#include <iostream>

#include "common/params.hh"
#include "sim/runner.hh"
#include "workload/registry.hh"
#include "workload/trace.hh"

int
main(int argc, char **argv)
{
    using namespace rnuma;
    std::string app = argc > 1 ? argv[1] : "barnes";
    double scale = argc > 2 ? std::atof(argv[2]) : 0.2;
    std::string path = argc > 3 ? argv[3] : "/tmp/rnuma_demo.trace";

    Params p = Params::base();

    std::cout << "recording " << app << " (scale " << scale
              << ") to " << path << " ...\n";
    auto original = makeApp(app, p, scale);
    saveTrace(*original, path);

    std::cout << "replaying from trace ...\n";
    auto replayed = loadTrace(path);

    RunStats a = runProtocol(p, Protocol::RNuma, *original);
    RunStats b = runProtocol(p, Protocol::RNuma, *replayed);

    std::cout << "\noriginal : ticks=" << a.ticks
              << " remoteFetches=" << a.remoteFetches
              << " relocations=" << a.relocations << "\n"
              << "replayed : ticks=" << b.ticks
              << " remoteFetches=" << b.remoteFetches
              << " relocations=" << b.relocations << "\n";

    if (a.ticks == b.ticks && a.remoteFetches == b.remoteFetches) {
        std::cout << "\nPASS: replay is bit-identical.\n";
        return 0;
    }
    std::cout << "\nFAIL: replay diverged.\n";
    return 1;
}
