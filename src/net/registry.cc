#include "net/registry.hh"

#include <cctype>
#include <mutex>

#include "common/logging.hh"
#include "net/topology.hh"

namespace rnuma
{

std::string
canonicalNetworkId(const std::string &name)
{
    std::string s;
    s.reserve(name.size());
    for (char c : name)
        s.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    // Display-name spellings map onto the stable ids.
    if (s == "2d mesh" || s == "mesh")
        return "mesh-2d";
    if (s == "fat tree" || s == "fattree")
        return "fat-tree";
    return s;
}

NetworkRegistry::NetworkRegistry()
{
    NetworkSpec constant;
    constant.id = "constant";
    constant.displayName = "Constant";
    constant.description =
        "the paper's fixed point-to-point latency (netLatency); "
        "contention at the NIs only";
    constant.make = [](const Params &p) {
        return std::unique_ptr<NetworkModel>(std::make_unique<Network>(
            p.numNodes, p.netLatency, p.niOccupancy));
    };
    add(std::move(constant));

    NetworkSpec mesh;
    mesh.id = "mesh-2d";
    mesh.displayName = "2D mesh";
    mesh.description =
        "dimension-ordered W x H mesh; hopLatency per hop, per-link "
        "contention (linkOccupancy)";
    mesh.make = [](const Params &p) {
        return std::unique_ptr<NetworkModel>(
            std::make_unique<MeshNetwork>(p.numNodes, p.hopLatency,
                                          p.linkOccupancy,
                                          p.niOccupancy));
    };
    add(std::move(mesh));

    NetworkSpec fat;
    fat.id = "fat-tree";
    fat.displayName = "Fat tree";
    fat.description =
        "radix-2 fat tree; 2*(log-distance+1) hops of hopLatency, "
        "contention-free internal links";
    fat.make = [](const Params &p) {
        return std::unique_ptr<NetworkModel>(
            std::make_unique<FatTreeNetwork>(p.numNodes, p.hopLatency,
                                             p.niOccupancy));
    };
    add(std::move(fat));
}

NetworkRegistry &
NetworkRegistry::global()
{
    static NetworkRegistry reg;
    return reg;
}

const NetworkSpec &
NetworkRegistry::add(NetworkSpec spec)
{
    RNUMA_ASSERT(spec.valid(),
                 "network spec needs an id and a factory");
    RNUMA_ASSERT(spec.id == canonicalNetworkId(spec.id),
                 "network id '", spec.id,
                 "' is not canonical (lowercase, stable spelling)");
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (findLocked(spec.id)) {
        RNUMA_FATAL("network '", spec.id,
                    "' is already registered");
    }
    specs_.push_back(std::make_unique<NetworkSpec>(std::move(spec)));
    return *specs_.back();
}

const NetworkSpec *
NetworkRegistry::findLocked(const std::string &name) const
{
    std::string id = canonicalNetworkId(name);
    for (const auto &s : specs_) {
        if (s->id == id || canonicalNetworkId(s->displayName) == id)
            return s.get();
    }
    return nullptr;
}

const NetworkSpec *
NetworkRegistry::find(const std::string &name) const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return findLocked(name);
}

const NetworkSpec &
NetworkRegistry::at(const std::string &name) const
{
    const NetworkSpec *s = find(name);
    if (!s) {
        RNUMA_FATAL("unknown network model '", name,
                    "' (see rnuma_sweep --list-networks)");
    }
    return *s;
}

std::vector<const NetworkSpec *>
NetworkRegistry::all() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    std::vector<const NetworkSpec *> out;
    out.reserve(specs_.size());
    for (const auto &s : specs_)
        out.push_back(s.get());
    return out;
}

std::size_t
NetworkRegistry::size() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return specs_.size();
}

const NetworkSpec &
networkSpec(const std::string &name)
{
    return NetworkRegistry::global().at(name);
}

const NetworkSpec *
findNetworkSpec(const std::string &name)
{
    return NetworkRegistry::global().find(name);
}

std::unique_ptr<NetworkModel>
makeNetwork(const Params &params)
{
    return networkSpec(params.networkModel).make(params);
}

Tick
remoteFetchLatency(const Params &params)
{
    // The constant model's mean is exactly netLatency, so this
    // reproduces Table 2's 376 cycles on the default configuration.
    return params.remoteFetch(makeNetwork(params)->meanLatency());
}

} // namespace rnuma
