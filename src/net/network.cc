#include "net/network.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rnuma
{

NetworkModel::NetworkModel(std::size_t nodes, Tick ni_occupancy)
{
    RNUMA_ASSERT(nodes >= 1, "network needs at least one node");
    nis.reserve(nodes);
    for (std::size_t i = 0; i < nodes; ++i)
        nis.emplace_back(ni_occupancy);
}

Resource &
NetworkModel::ni(NodeId n)
{
    RNUMA_ASSERT(n < nis.size(), "bad node id ", n);
    return nis[n];
}

void
NetworkModel::countMsg(MsgKind kind)
{
    counts[static_cast<std::size_t>(kind)]
        .fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
NetworkModel::count(MsgKind kind) const
{
    return counts[static_cast<std::size_t>(kind)]
        .load(std::memory_order_relaxed);
}

std::uint64_t
NetworkModel::totalMessages() const
{
    std::uint64_t total = 0;
    for (const auto &c : counts)
        total += c.load(std::memory_order_relaxed);
    return total;
}

NetworkStats
NetworkModel::stats() const
{
    NetworkStats s;
    for (std::size_t k = 0; k < numMsgKinds; ++k)
        s.messages[k] = counts[k].load(std::memory_order_relaxed);
    return s;
}

Tick
NetworkModel::meanLatency() const
{
    const std::size_t n = nodes();
    if (n < 2)
        return 0;
    // Rounded average of the contention-free latency over all
    // ordered pairs of distinct nodes.
    std::uint64_t sum = 0;
    for (NodeId a = 0; a < n; ++a)
        for (NodeId b = 0; b < n; ++b)
            if (a != b)
                sum += latency(a, b);
    const std::uint64_t pairs =
        static_cast<std::uint64_t>(n) * (n - 1);
    return (sum + pairs / 2) / pairs;
}

Tick
NetworkModel::minLatency() const
{
    const std::size_t n = nodes();
    if (n < 2)
        return 0;
    Tick best = latency(0, 1);
    for (NodeId a = 0; a < n; ++a)
        for (NodeId b = 0; b < n; ++b)
            if (a != b)
                best = std::min(best, latency(a, b));
    return best;
}

Tick
NetworkModel::waited() const
{
    Tick total = 0;
    for (const auto &r : nis)
        total += r.waited();
    return total;
}

Network::Network(std::size_t nodes, Tick latency, Tick ni_occupancy)
    : NetworkModel(nodes, ni_occupancy), netLatency(latency)
{
}

Tick
Network::send(Tick now, NodeId from, NodeId to, MsgKind kind)
{
    countMsg(kind);
    if (from == to)
        return now;
    // Source NI occupancy plus the constant wire latency. The
    // destination side's processing contention is modeled by the
    // receiving controller (GlobalProtocol's per-node resource), so
    // it is not charged again here.
    Tick departed = ni(from).acquire(now) + ni(from).occupancyPerUse();
    return departed + netLatency;
}

void
Network::post(Tick now, NodeId from, NodeId to, MsgKind kind)
{
    countMsg(kind);
    if (from == to)
        return;
    ni(from).acquire(now);
    ni(to).acquire(now + netLatency);
}

Tick
Network::latency(NodeId, NodeId) const
{
    // Deliberately constant for every pair, including from == to:
    // the protocol's invalidation-acknowledgement bound historically
    // charged 2 * netLatency regardless of target, and the constant
    // model must reproduce that arithmetic exactly.
    return netLatency;
}

} // namespace rnuma
