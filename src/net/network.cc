#include "net/network.hh"

#include "common/logging.hh"

namespace rnuma
{

Network::Network(std::size_t nodes, Tick latency, Tick ni_occupancy)
    : netLatency(latency)
{
    RNUMA_ASSERT(nodes >= 1, "network needs at least one node");
    nis.reserve(nodes);
    for (std::size_t i = 0; i < nodes; ++i)
        nis.emplace_back(ni_occupancy);
}

Resource &
Network::ni(NodeId n)
{
    RNUMA_ASSERT(n < nis.size(), "bad node id ", n);
    return nis[n];
}

Tick
Network::send(Tick now, NodeId from, NodeId to, MsgKind kind)
{
    counts[static_cast<std::size_t>(kind)]++;
    if (from == to)
        return now;
    // Source NI occupancy plus the constant wire latency. The
    // destination side's processing contention is modeled by the
    // receiving controller (GlobalProtocol's per-node resource), so
    // it is not charged again here.
    Tick departed = ni(from).acquire(now) + ni(from).occupancyPerUse();
    return departed + netLatency;
}

void
Network::post(Tick now, NodeId from, NodeId to, MsgKind kind)
{
    counts[static_cast<std::size_t>(kind)]++;
    if (from == to)
        return;
    ni(from).acquire(now);
    ni(to).acquire(now + netLatency);
}

std::uint64_t
Network::count(MsgKind kind) const
{
    return counts[static_cast<std::size_t>(kind)];
}

std::uint64_t
Network::totalMessages() const
{
    std::uint64_t total = 0;
    for (std::uint64_t c : counts)
        total += c;
    return total;
}

Tick
Network::waited() const
{
    Tick total = 0;
    for (const auto &r : nis)
        total += r.waited();
    return total;
}

} // namespace rnuma
