/**
 * @file
 * Hop-dependent interconnect topologies behind the NetworkModel
 * interface: a 2D mesh with dimension-ordered routing and per-hop
 * link contention (the DASH-style scaling interconnect), and a
 * fat-tree whose hop count grows with the log of the node distance
 * and whose internal links are fat enough to be contention-free.
 *
 * Both models keep the constant model's NI discipline — the source
 * NI serializes outgoing messages, the destination controller models
 * receive-side processing — and differ only in the wire term.
 */

#ifndef RNUMA_NET_TOPOLOGY_HH
#define RNUMA_NET_TOPOLOGY_HH

#include <cstddef>
#include <vector>

#include "net/network.hh"

namespace rnuma
{

/**
 * W x H 2D mesh, registered as "mesh-2d". Node n sits at
 * (n % W, n / W); messages route dimension-ordered (X first, then
 * Y). Each directed link is a Resource with Params::linkOccupancy
 * per message, so a hot link serializes crossing traffic; each hop
 * adds Params::hopLatency of wire time.
 *
 * Requires a rectangular factorization (meshDims); Params::validate()
 * rejects node counts that do not embed.
 */
class MeshNetwork : public NetworkModel
{
  public:
    MeshNetwork(std::size_t nodes, Tick hop_latency,
                Tick link_occupancy, Tick ni_occupancy);

    Tick send(Tick now, NodeId from, NodeId to,
              MsgKind kind) override;
    void post(Tick now, NodeId from, NodeId to,
              MsgKind kind) override;
    Tick latency(NodeId from, NodeId to) const override;
    Tick waited() const override;

    /** Manhattan hop count between two nodes. */
    std::size_t hops(NodeId from, NodeId to) const;

    std::size_t width() const { return width_; }
    std::size_t height() const { return height_; }

  private:
    /** Directed link leaving @p from toward adjacent @p to. */
    Resource &link(NodeId from, NodeId to);

    /**
     * Walk the dimension-ordered route, acquiring each directed link
     * and adding hopLatency per hop; returns the arrival time.
     */
    Tick route(Tick depart, NodeId from, NodeId to);

    std::size_t width_;
    std::size_t height_;
    Tick hopLatency_;
    /** links_[n * 4 + d]: node n's outgoing link in direction d. */
    std::vector<Resource> links_;
};

/**
 * Fat-tree over a power-of-two node count, registered as "fat-tree".
 * Two leaves under the same radix-2 subtree of height k are 2*k hops
 * apart (k up, k down): hops(a, b) = 2 * (floor(log2(a ^ b)) + 1).
 * Fat trees double link capacity toward the root, so internal links
 * are modeled contention-free and only the NIs serialize (the
 * classic reason to build one).
 */
class FatTreeNetwork : public NetworkModel
{
  public:
    FatTreeNetwork(std::size_t nodes, Tick hop_latency,
                   Tick ni_occupancy);

    Tick send(Tick now, NodeId from, NodeId to,
              MsgKind kind) override;
    void post(Tick now, NodeId from, NodeId to,
              MsgKind kind) override;
    Tick latency(NodeId from, NodeId to) const override;

    /** Up-then-down hop count between two leaves. */
    std::size_t hops(NodeId from, NodeId to) const;

  private:
    Tick hopLatency_;
};

} // namespace rnuma

#endif // RNUMA_NET_TOPOLOGY_HH
