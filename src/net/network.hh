/**
 * @file
 * The inter-node interconnect, behind the NetworkModel interface.
 *
 * The paper's machine (Section 4) uses a point-to-point network with
 * a constant 100-cycle latency and contention modeled at the network
 * interfaces; that model is the `Network` class below, registered as
 * "constant" and still the default. Scaling the machine past the
 * paper's 8 nodes makes wire latency hop-dependent, so the interface
 * abstracts exactly the three operations the protocol layer uses —
 * send (synchronous, returns arrival time), post (asynchronous NI
 * accounting), and latency(from, to) (the contention-free wire time
 * the protocol uses to bound invalidation acknowledgements) — plus
 * the per-kind message counters the stats layer reports.
 *
 * Concrete topologies (mesh-2d, fat-tree) live in net/topology.hh;
 * selection is by string id through net/registry.hh, mirroring the
 * protocol registry.
 */

#ifndef RNUMA_NET_NETWORK_HH
#define RNUMA_NET_NETWORK_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/bus.hh"

namespace rnuma
{

/** The machine-wide interconnect interface. */
class NetworkModel
{
  public:
    /**
     * @param nodes        node count
     * @param ni_occupancy per-message occupancy of a network interface
     */
    NetworkModel(std::size_t nodes, Tick ni_occupancy);
    virtual ~NetworkModel() = default;

    /**
     * Send one message; returns the arrival completion time at the
     * destination. Local (from == to) messages bypass the network
     * entirely and arrive immediately.
     *
     * The source NI serializes outgoing messages; the wire adds the
     * (possibly hop-dependent, possibly contended) transit time. The
     * destination side's processing contention is modeled by the
     * receiving controller (GlobalProtocol's per-node resource), so
     * implementations must not charge it again.
     */
    virtual Tick send(Tick now, NodeId from, NodeId to,
                      MsgKind kind) = 0;

    /**
     * Account a message's NI occupancy without stalling the sender
     * (used for asynchronous writebacks and invalidations whose
     * latency is charged separately).
     */
    virtual void post(Tick now, NodeId from, NodeId to,
                      MsgKind kind) = 0;

    /**
     * Contention-free wire latency between two nodes. Topology
     * models return the hop-dependent transit time; the constant
     * model returns its fixed latency for every pair (including
     * from == to, preserving the historical acknowledgement-bound
     * arithmetic bit for bit).
     */
    virtual Tick latency(NodeId from, NodeId to) const = 0;

    /**
     * Mean contention-free latency over all ordered pairs of
     * distinct nodes, rounded to the nearest tick: the scalar the
     * analytic model and calendar sizing use where the old code used
     * Params::netLatency. The constant model overrides this to
     * return exactly that parameter.
     */
    virtual Tick meanLatency() const;

    /**
     * Minimum contention-free latency over all ordered pairs of
     * distinct nodes: the conservative-parallel engine's lookahead.
     * No cross-node effect can propagate faster than this, so two
     * partitions whose clocks are within minLatency() of each other
     * cannot causally affect one another inside the window. The
     * constant model overrides this to its fixed latency; topology
     * models inherit the pairwise scan (one hop for mesh-2d,
     * sibling distance for fat-tree).
     */
    virtual Tick minLatency() const;

    /** Aggregate NI (and link, where modeled) queueing delay. */
    virtual Tick waited() const;

    /** Total messages of one kind. */
    std::uint64_t count(MsgKind kind) const;

    /** Total messages of all kinds. */
    std::uint64_t totalMessages() const;

    /** The per-kind counters as a value-semantic stats record. */
    NetworkStats stats() const;

    std::size_t nodes() const { return nis.size(); }

  protected:
    /** Bump the per-kind counter; every send/post must call this. */
    void countMsg(MsgKind kind);

    Resource &ni(NodeId n);

    std::vector<Resource> nis;

  private:
    /**
     * Relaxed atomics: under --intra-jobs > 1 several partition
     * threads count messages concurrently, and sums commute, so the
     * totals stay deterministic. Serial runs pay nothing measurable.
     */
    std::atomic<std::uint64_t> counts[numMsgKinds] = {};
};

/**
 * The paper's constant-latency point-to-point network, registered as
 * "constant": every remote message takes exactly `latency` on the
 * wire, contention exists only at the network interfaces.
 */
class Network : public NetworkModel
{
  public:
    /**
     * @param nodes       node count
     * @param latency     fixed point-to-point latency
     * @param ni_occupancy per-message occupancy of a network interface
     */
    Network(std::size_t nodes, Tick latency, Tick ni_occupancy);

    Tick send(Tick now, NodeId from, NodeId to,
              MsgKind kind) override;
    void post(Tick now, NodeId from, NodeId to,
              MsgKind kind) override;
    Tick latency(NodeId from, NodeId to) const override;
    Tick meanLatency() const override { return netLatency; }
    Tick minLatency() const override { return netLatency; }

    Tick latency() const { return netLatency; }

  private:
    Tick netLatency;
};

} // namespace rnuma

#endif // RNUMA_NET_NETWORK_HH
