/**
 * @file
 * The inter-node interconnect: a point-to-point network with a
 * constant 100-cycle latency and contention modeled at the network
 * interfaces, exactly the abstraction of Section 4 of the paper.
 */

#ifndef RNUMA_NET_NETWORK_HH
#define RNUMA_NET_NETWORK_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "mem/bus.hh"

namespace rnuma
{

/** Message categories, for traffic accounting. */
enum class MsgKind : std::uint8_t
{
    Request,      ///< block fetch request to a home
    Reply,        ///< data reply from a home
    Invalidate,   ///< directory-initiated invalidation
    Forward,      ///< three-hop forward to a dirty owner
    Writeback,    ///< voluntary block writeback
    Flush         ///< page-replacement flush of a block
};

constexpr std::size_t numMsgKinds = 6;

/** The machine-wide network. */
class Network
{
  public:
    /**
     * @param nodes       node count
     * @param latency     fixed point-to-point latency
     * @param ni_occupancy per-message occupancy of a network interface
     */
    Network(std::size_t nodes, Tick latency, Tick ni_occupancy);

    /**
     * Send one message; returns the arrival completion time at the
     * destination. Local (from == to) messages bypass the network
     * entirely and arrive immediately.
     *
     * The source NI serializes outgoing messages and the destination
     * NI serializes incoming ones; the wire adds the fixed latency.
     */
    Tick send(Tick now, NodeId from, NodeId to, MsgKind kind);

    /**
     * Account a message's NI occupancy without stalling the sender
     * (used for asynchronous writebacks and invalidations whose
     * latency is charged separately).
     */
    void post(Tick now, NodeId from, NodeId to, MsgKind kind);

    /** Total messages of one kind. */
    std::uint64_t count(MsgKind kind) const;

    /** Total messages of all kinds. */
    std::uint64_t totalMessages() const;

    /** Aggregate NI queueing delay. */
    Tick waited() const;

    Tick latency() const { return netLatency; }

  private:
    Tick netLatency;
    std::vector<Resource> nis;
    std::uint64_t counts[numMsgKinds] = {};

    Resource &ni(NodeId n);
};

} // namespace rnuma

#endif // RNUMA_NET_NETWORK_HH
