/**
 * @file
 * The network registry: string-keyed, composable interconnect models
 * mirroring the protocol registry (proto/registry.hh). A NetworkSpec
 * captures a stable id (the JSON/compare/CLI currency), a display
 * name, and a factory from Params to a NetworkModel; the three
 * built-ins are "constant" (the paper's fixed-latency network, the
 * default), "mesh-2d", and "fat-tree". New topologies are one
 * registration away and immediately selectable from the rnuma_sweep
 * CLI (--network, --list-networks) and sweepable by the scaling
 * figure.
 */

#ifndef RNUMA_NET_REGISTRY_HH
#define RNUMA_NET_REGISTRY_HH

#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/params.hh"
#include "net/network.hh"

namespace rnuma
{

/** Builds the machine-wide interconnect for a run. */
using NetworkFactory =
    std::function<std::unique_ptr<NetworkModel>(const Params &)>;

/** One selectable interconnect model. Value-semantic, like
 * ProtocolSpec: cells copy the id they run under. */
struct NetworkSpec
{
    /**
     * Stable machine-readable id: the JSON artifact / compare-gate /
     * CLI currency ("constant", "mesh-2d", "fat-tree"). Lowercase,
     * no spaces.
     */
    std::string id;
    /** Human-readable name for tables and logs ("2D mesh"). */
    std::string displayName;
    /** One-line description for --list-networks. */
    std::string description;
    /** Required: builds the network model. */
    NetworkFactory make;

    bool valid() const { return !id.empty() && make != nullptr; }
};

/**
 * The process-wide name -> NetworkSpec table. Lookup is
 * case-insensitive on id and display name. Thread-safe exactly like
 * ProtocolRegistry: registration takes an exclusive lock and lookups
 * a shared one; returned spec pointers stay valid forever.
 */
class NetworkRegistry
{
  public:
    /** The global registry, with the built-ins pre-registered. */
    static NetworkRegistry &global();

    /**
     * Register a spec. Fatal on an invalid spec or a duplicate id.
     * @return the registered (stably stored) spec.
     */
    const NetworkSpec &add(NetworkSpec spec);

    /** Look up by id/display name; nullptr when unknown. */
    const NetworkSpec *find(const std::string &name) const;

    /** Look up; fatal (std::runtime_error under tests) when unknown. */
    const NetworkSpec &at(const std::string &name) const;

    /** All specs, in registration order (built-ins first). */
    std::vector<const NetworkSpec *> all() const;

    std::size_t size() const;

  private:
    NetworkRegistry();

    /** find() without taking the lock (callers hold it). */
    const NetworkSpec *findLocked(const std::string &name) const;

    /** Guards specs_: exclusive for add, shared for lookups. */
    mutable std::shared_mutex mutex_;
    std::vector<std::unique_ptr<NetworkSpec>> specs_;
};

/**
 * Normalize a network label to its stable id: lowercased, with the
 * display-name spellings mapped back. Unknown labels pass through
 * lowercased — the shim the compare gate uses against pre-v5
 * baselines (whose cells default to "constant").
 */
std::string canonicalNetworkId(const std::string &name);

/** Shorthand for NetworkRegistry::global().at(name). */
const NetworkSpec &networkSpec(const std::string &name);

/** Shorthand for NetworkRegistry::global().find(name). */
const NetworkSpec *findNetworkSpec(const std::string &name);

/**
 * Build the interconnect Params selects (Params::networkModel).
 * Fatal on an unknown id — the single construction point replacing
 * the hand-rolled Network(p.numNodes, p.netLatency, p.niOccupancy)
 * calls that used to be scattered across machine.cc, figures.cc, and
 * the tests.
 */
std::unique_ptr<NetworkModel> makeNetwork(const Params &params);

/**
 * The model-derived uncontended remote fetch latency:
 * Params::remoteFetch(wire) with the wire term taken from the
 * selected model's mean pairwise latency. Equals Params::
 * remoteFetch() (Table 2's 376 cycles) for the constant model; the
 * figure AnalyticModel must use so Eq 1-3 stay consistent with any
 * interconnect.
 */
Tick remoteFetchLatency(const Params &params);

} // namespace rnuma

#endif // RNUMA_NET_REGISTRY_HH
