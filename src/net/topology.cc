#include "net/topology.hh"

#include "common/geometry.hh"
#include "common/logging.hh"

namespace rnuma
{

MeshNetwork::MeshNetwork(std::size_t nodes, Tick hop_latency,
                         Tick link_occupancy, Tick ni_occupancy)
    : NetworkModel(nodes, ni_occupancy), hopLatency_(hop_latency)
{
    const bool ok = meshDims(nodes, &width_, &height_);
    RNUMA_ASSERT(ok, "mesh-2d cannot embed ", nodes, " nodes");
    RNUMA_ASSERT(hop_latency >= 1, "mesh hop latency must be >= 1");
    // Four directed links per node (east, west, north, south); edge
    // nodes simply never acquire their missing directions.
    links_.reserve(nodes * 4);
    for (std::size_t i = 0; i < nodes * 4; ++i)
        links_.emplace_back(link_occupancy);
}

std::size_t
MeshNetwork::hops(NodeId from, NodeId to) const
{
    const std::size_t fx = from % width_, fy = from / width_;
    const std::size_t tx = to % width_, ty = to / width_;
    const std::size_t dx = fx > tx ? fx - tx : tx - fx;
    const std::size_t dy = fy > ty ? fy - ty : ty - fy;
    return dx + dy;
}

Resource &
MeshNetwork::link(NodeId from, NodeId to)
{
    // Direction index: 0 east (+x), 1 west (-x), 2 south (+y),
    // 3 north (-y).
    std::size_t dir;
    if (to == from + 1)
        dir = 0;
    else if (to + 1 == from)
        dir = 1;
    else if (to == from + width_)
        dir = 2;
    else
        dir = 3;
    return links_[static_cast<std::size_t>(from) * 4 + dir];
}

Tick
MeshNetwork::route(Tick depart, NodeId from, NodeId to)
{
    Tick t = depart;
    NodeId at = from;
    const std::size_t tx = to % width_;
    // Dimension-ordered: walk X to the destination column, then Y to
    // the destination row. Each directed link serializes crossing
    // traffic; each hop adds the wire latency.
    while (at % width_ != tx) {
        const NodeId next = at % width_ < tx ? at + 1 : at - 1;
        t = link(at, next).acquire(t) + hopLatency_;
        at = next;
    }
    while (at != to) {
        const NodeId next =
            at < to ? at + static_cast<NodeId>(width_)
                    : at - static_cast<NodeId>(width_);
        t = link(at, next).acquire(t) + hopLatency_;
        at = next;
    }
    return t;
}

Tick
MeshNetwork::send(Tick now, NodeId from, NodeId to, MsgKind kind)
{
    countMsg(kind);
    if (from == to)
        return now;
    const Tick departed =
        ni(from).acquire(now) + ni(from).occupancyPerUse();
    return route(departed, from, to);
}

void
MeshNetwork::post(Tick now, NodeId from, NodeId to, MsgKind kind)
{
    countMsg(kind);
    if (from == to)
        return;
    // Asynchronous messages are off the critical path: charge the NI
    // occupancy at both ends (as the constant model does) using the
    // contention-free transit time, without walking the links — the
    // sender is not stalled, so link serialization is charged only
    // to synchronous traffic.
    ni(from).acquire(now);
    ni(to).acquire(now + latency(from, to));
}

Tick
MeshNetwork::latency(NodeId from, NodeId to) const
{
    return static_cast<Tick>(hops(from, to)) * hopLatency_;
}

Tick
MeshNetwork::waited() const
{
    Tick total = NetworkModel::waited();
    for (const auto &l : links_)
        total += l.waited();
    return total;
}

FatTreeNetwork::FatTreeNetwork(std::size_t nodes, Tick hop_latency,
                               Tick ni_occupancy)
    : NetworkModel(nodes, ni_occupancy), hopLatency_(hop_latency)
{
    RNUMA_ASSERT(isPow2(nodes),
                 "fat-tree needs a power-of-two node count, got ",
                 nodes);
    RNUMA_ASSERT(hop_latency >= 1,
                 "fat-tree hop latency must be >= 1");
}

std::size_t
FatTreeNetwork::hops(NodeId from, NodeId to) const
{
    if (from == to)
        return 0;
    // Height of the smallest subtree containing both leaves is
    // floor(log2(from ^ to)) + 1; the route goes that far up and the
    // same distance down.
    std::uint32_t diff = from ^ to;
    std::size_t height = 0;
    while (diff >>= 1)
        height++;
    return 2 * (height + 1);
}

Tick
FatTreeNetwork::send(Tick now, NodeId from, NodeId to, MsgKind kind)
{
    countMsg(kind);
    if (from == to)
        return now;
    const Tick departed =
        ni(from).acquire(now) + ni(from).occupancyPerUse();
    return departed + latency(from, to);
}

void
FatTreeNetwork::post(Tick now, NodeId from, NodeId to, MsgKind kind)
{
    countMsg(kind);
    if (from == to)
        return;
    ni(from).acquire(now);
    ni(to).acquire(now + latency(from, to));
}

Tick
FatTreeNetwork::latency(NodeId from, NodeId to) const
{
    return static_cast<Tick>(hops(from, to)) * hopLatency_;
}

} // namespace rnuma
