#include "driver/sweep_runner.hh"

#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "sim/runner.hh"

namespace rnuma::driver
{

double
CellResult::eventsPerSec() const
{
    if (wallMs <= 0)
        return 0;
    return static_cast<double>(stats.events) / (wallMs / 1000.0);
}

const CellResult *
SweepResult::find(const std::string &app,
                  const std::string &config) const
{
    for (const CellResult &c : cells)
        if (c.app == app && c.config == config)
            return &c;
    return nullptr;
}

const CellResult &
SweepResult::at(const std::string &app,
                const std::string &config) const
{
    const CellResult *c = find(app, config);
    if (!c)
        RNUMA_FATAL("no cell (", app, ", ", config,
                    ") in sweep result");
    return *c;
}

SweepRunner::SweepRunner(std::size_t jobs) : jobs_(jobs)
{
    if (jobs_ == 0) {
        jobs_ = std::thread::hardware_concurrency();
        if (jobs_ == 0)
            jobs_ = 1;
    }
}

std::shared_ptr<const VectorWorkload>
WorkloadCache::find(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(m_);
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : it->second;
}

void
WorkloadCache::insert(const std::string &key,
                      std::shared_ptr<const VectorWorkload> snapshot)
{
    RNUMA_ASSERT(snapshot, "caching a null workload snapshot");
    std::lock_guard<std::mutex> lock(m_);
    map_.emplace(key, std::move(snapshot));
}

void
WorkloadCache::recordRun(std::size_t generated, std::size_t hits)
{
    std::lock_guard<std::mutex> lock(m_);
    generated_ += generated;
    hits_ += hits;
}

std::size_t
WorkloadCache::generated() const
{
    std::lock_guard<std::mutex> lock(m_);
    return generated_;
}

std::size_t
WorkloadCache::hits() const
{
    std::lock_guard<std::mutex> lock(m_);
    return hits_;
}

std::size_t
WorkloadCache::snapshots() const
{
    std::lock_guard<std::mutex> lock(m_);
    return map_.size();
}

namespace
{

/** One generated-once workload snapshot, shared by key. */
using SnapshotMap =
    std::unordered_map<std::string,
                       std::shared_ptr<const VectorWorkload>>;

/**
 * Keyed workloads whose factory product could not be snapshotted
 * (not a VectorWorkload): the phase-1 generation is not wasted —
 * the first cell asking for the key takes it; the rest regenerate,
 * matching the cache-off cost. Mutex-guarded, but only this cold
 * path ever touches it.
 */
struct LeftoverPool
{
    std::mutex m;
    std::unordered_map<std::string, std::unique_ptr<Workload>> map;

    std::unique_ptr<Workload>
    take(const std::string &key)
    {
        std::lock_guard<std::mutex> lock(m);
        auto it = map.find(key);
        if (it == map.end())
            return nullptr;
        std::unique_ptr<Workload> wl = std::move(it->second);
        map.erase(it);
        return wl;
    }
};

CellResult
runCell(const Cell &cell, const SnapshotMap &snapshots,
        LeftoverPool &leftovers)
{
    CellResult r;
    r.app = cell.app;
    r.config = cell.config;
    r.protocol = cell.proto.id;
    r.protocolName = cell.proto.displayName;
    r.network = cell.params.networkModel;
    r.directory = cell.params.directoryId();
    r.workload = cell.workload;
    r.intraJobs = cell.params.intraJobs;

    auto t0 = std::chrono::steady_clock::now();
    std::unique_ptr<Workload> wl;
    if (!cell.workloadKey.empty()) {
        auto it = snapshots.find(cell.workloadKey);
        if (it != snapshots.end() && it->second)
            wl = std::make_unique<SnapshotWorkload>(it->second);
        else if (it != snapshots.end())
            wl = leftovers.take(cell.workloadKey);
    }
    if (!wl)
        wl = cell.make();
    RNUMA_ASSERT(wl, "cell (", cell.app, ", ", cell.config,
                 ") factory returned no workload");
    r.stats = runProtocol(cell.params, cell.proto, *wl);
    auto t1 = std::chrono::steady_clock::now();
    r.wallMs = std::chrono::duration<double, std::milli>(t1 - t0)
                   .count();
    return r;
}

} // namespace

SweepResult
SweepRunner::run(const Sweep &sweep) const
{
    const std::vector<Cell> &cells = sweep.cells();
    SweepResult result;
    result.cells.resize(cells.size());

    // Phase 1 (cache enabled): generate each distinct keyed workload
    // once, concurrently. Keys already present in an attached
    // process-scope WorkloadCache are served from it without
    // generating (a cross-figure hit); freshly generated snapshots
    // are published back to it. A keyed factory whose product is not
    // a VectorWorkload cannot be snapshotted and falls back to
    // per-cell generation.
    SnapshotMap snapshots;
    LeftoverPool leftovers;
    if (cache_) {
        std::vector<const Cell *> generators;
        for (const Cell &c : cells) {
            if (c.workloadKey.empty() ||
                snapshots.count(c.workloadKey))
                continue;
            if (shared_) {
                auto snap = shared_->find(c.workloadKey);
                if (snap) {
                    snapshots.emplace(c.workloadKey,
                                      std::move(snap));
                    continue;
                }
            }
            snapshots.emplace(c.workloadKey, nullptr);
            generators.push_back(&c);
        }
        parallelFor(generators.size(), jobs_, [&](std::size_t i) {
            const Cell &c = *generators[i];
            std::unique_ptr<Workload> wl = c.make();
            RNUMA_ASSERT(wl, "cell (", c.app, ", ", c.config,
                         ") factory returned no workload");
            // Transfer ownership into the shared snapshot; each
            // generator writes only its own (pre-inserted) map slot,
            // so no rehash or locking is involved.
            auto *vec = dynamic_cast<VectorWorkload *>(wl.get());
            if (vec) {
                wl.release();
                snapshots[c.workloadKey] =
                    std::shared_ptr<const VectorWorkload>(vec);
            } else {
                // Not snapshottable; keep the product for one cell.
                std::lock_guard<std::mutex> lock(leftovers.m);
                leftovers.map[c.workloadKey] = std::move(wl);
            }
        });
        std::size_t served = 0;
        for (const Cell &c : cells) {
            if (c.workloadKey.empty())
                continue;
            auto it = snapshots.find(c.workloadKey);
            if (it != snapshots.end() && it->second)
                served++;
        }
        for (const Cell *c : generators)
            if (snapshots[c->workloadKey])
                result.workloadsGenerated++;
        result.workloadCacheHits =
            served - result.workloadsGenerated;
        if (shared_) {
            for (const Cell *c : generators) {
                auto &snap = snapshots[c->workloadKey];
                if (snap)
                    shared_->insert(c->workloadKey, snap);
            }
            shared_->recordRun(result.workloadsGenerated,
                               result.workloadCacheHits);
        }
    }

    // Phase 2: run every cell. Each task writes only its own slot,
    // so results land in cell order and the per-cell stats are
    // bit-identical at any job count; parallelFor reports a failed
    // cell from this thread.
    parallelFor(cells.size(), jobs_, [&](std::size_t i) {
        result.cells[i] = runCell(cells[i], snapshots, leftovers);
    });
    return result;
}

void
verifySerialIdentical(const Sweep &sweep, const SweepResult &result,
                      bool cacheWorkloads)
{
    SweepResult serial =
        SweepRunner(1).cacheWorkloads(cacheWorkloads).run(sweep);
    RNUMA_ASSERT(serial.cells.size() == result.cells.size(),
                 "sweep '", sweep.name(), "': cell count changed");
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
        const CellResult &a = serial.cells[i];
        const CellResult &b = result.cells[i];
        RNUMA_ASSERT(a.app == b.app && a.config == b.config,
                     "sweep '", sweep.name(),
                     "': cell order changed at index ", i);
        RNUMA_ASSERT(a.stats == b.stats, "sweep '", sweep.name(),
                     "': cell (", a.app, ", ", a.config,
                     ") is not bit-identical between serial and "
                     "parallel execution");
    }
}

} // namespace rnuma::driver
