#include "driver/sweep_runner.hh"

#include <chrono>
#include <thread>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "sim/runner.hh"

namespace rnuma::driver
{

const CellResult *
SweepResult::find(const std::string &app,
                  const std::string &config) const
{
    for (const CellResult &c : cells)
        if (c.app == app && c.config == config)
            return &c;
    return nullptr;
}

const CellResult &
SweepResult::at(const std::string &app,
                const std::string &config) const
{
    const CellResult *c = find(app, config);
    if (!c)
        RNUMA_FATAL("no cell (", app, ", ", config,
                    ") in sweep result");
    return *c;
}

SweepRunner::SweepRunner(std::size_t jobs) : jobs_(jobs)
{
    if (jobs_ == 0) {
        jobs_ = std::thread::hardware_concurrency();
        if (jobs_ == 0)
            jobs_ = 1;
    }
}

namespace
{

CellResult
runCell(const Cell &cell)
{
    CellResult r;
    r.app = cell.app;
    r.config = cell.config;
    r.protocol = cell.protocol;

    auto t0 = std::chrono::steady_clock::now();
    std::unique_ptr<Workload> wl = cell.make();
    RNUMA_ASSERT(wl, "cell (", cell.app, ", ", cell.config,
                 ") factory returned no workload");
    r.stats = runProtocol(cell.params, cell.protocol, *wl);
    auto t1 = std::chrono::steady_clock::now();
    r.wallMs = std::chrono::duration<double, std::milli>(t1 - t0)
                   .count();
    return r;
}

} // namespace

SweepResult
SweepRunner::run(const Sweep &sweep) const
{
    const std::vector<Cell> &cells = sweep.cells();
    SweepResult result;
    result.cells.resize(cells.size());
    // Each task writes only its own slot, so results land in cell
    // order and the per-cell stats are bit-identical at any job
    // count; parallelFor reports a failed cell from this thread.
    parallelFor(cells.size(), jobs_, [&](std::size_t i) {
        result.cells[i] = runCell(cells[i]);
    });
    return result;
}

void
verifySerialIdentical(const Sweep &sweep, const SweepResult &result)
{
    SweepResult serial = SweepRunner(1).run(sweep);
    RNUMA_ASSERT(serial.cells.size() == result.cells.size(),
                 "sweep '", sweep.name(), "': cell count changed");
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
        const CellResult &a = serial.cells[i];
        const CellResult &b = result.cells[i];
        RNUMA_ASSERT(a.app == b.app && a.config == b.config,
                     "sweep '", sweep.name(),
                     "': cell order changed at index ", i);
        RNUMA_ASSERT(a.stats == b.stats, "sweep '", sweep.name(),
                     "': cell (", a.app, ", ", a.config,
                     ") is not bit-identical between serial and "
                     "parallel execution");
    }
}

} // namespace rnuma::driver
