/**
 * @file
 * Thread-parallel sweep execution. Cells are trivially independent
 * (each constructs its own Params, Workload, and Machine), so the
 * runner is a plain work-stealing pool: an atomic cursor over the
 * cell list and N worker threads. Results land at the cell's own
 * index, so the output order — and, because the simulator is
 * deterministic, every RunStats bit — is identical at any job count.
 */

#ifndef RNUMA_DRIVER_SWEEP_RUNNER_HH
#define RNUMA_DRIVER_SWEEP_RUNNER_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "driver/sweep.hh"

namespace rnuma::driver
{

/** The outcome of one cell: its labels plus the full RunStats. */
struct CellResult
{
    std::string app;
    std::string config;
    Protocol protocol = Protocol::CCNuma;
    RunStats stats;
    double wallMs = 0; ///< host wall-clock time for this cell
};

/** All cell results of one sweep, in cell order. */
struct SweepResult
{
    std::vector<CellResult> cells;

    /** Find a cell by labels; nullptr when absent. */
    const CellResult *find(const std::string &app,
                           const std::string &config) const;

    /** Find a cell by labels; fatal when absent. */
    const CellResult &at(const std::string &app,
                         const std::string &config) const;
};

/** Executes sweeps with a fixed concurrency level. */
class SweepRunner
{
  public:
    /** @param jobs worker threads; 0 means hardware concurrency. */
    explicit SweepRunner(std::size_t jobs = 1);

    /**
     * Run every cell and return results in cell order. A cell that
     * fails (for example, an unknown application name reaching the
     * registry) aborts the whole sweep: the first error is reported
     * through RNUMA_FATAL after all workers have drained.
     */
    SweepResult run(const Sweep &sweep) const;

    std::size_t jobs() const { return jobs_; }

  private:
    std::size_t jobs_;
};

/**
 * Re-run @p sweep serially and assert each cell's RunStats is
 * bit-identical to @p result (the `--verify` mode of the CLI; the
 * driver tests use it across job counts).
 */
void verifySerialIdentical(const Sweep &sweep,
                           const SweepResult &result);

} // namespace rnuma::driver

#endif // RNUMA_DRIVER_SWEEP_RUNNER_HH
