/**
 * @file
 * Thread-parallel sweep execution. Cells are trivially independent
 * (each constructs its own Params, Workload, and Machine), so the
 * runner is a plain work-stealing pool: an atomic cursor over the
 * cell list and N worker threads. Results land at the cell's own
 * index, so the output order — and, because the simulator is
 * deterministic, every RunStats bit — is identical at any job count.
 *
 * Cells that declare a Cell::workloadKey are served by the runner's
 * content-addressed workload cache: each distinct key's workload is
 * generated once per run() (concurrently, on the same pool) into an
 * immutable snapshot, and every cell sharing the key replays a
 * SnapshotWorkload view of it. Generators are deterministic, so the
 * per-cell RunStats is bit-identical with the cache on or off; the
 * opt-out (cacheWorkloads(false), the CLI's --no-workload-cache)
 * exists to restore full cell isolation when debugging.
 */

#ifndef RNUMA_DRIVER_SWEEP_RUNNER_HH
#define RNUMA_DRIVER_SWEEP_RUNNER_HH

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "driver/sweep.hh"

namespace rnuma::driver
{

/** The outcome of one cell: its labels plus the full RunStats. */
struct CellResult
{
    std::string app;
    std::string config;
    std::string protocol;     ///< stable spec id ("ccnuma", ...)
    std::string protocolName; ///< display name ("CC-NUMA", ...)
    std::string network;      ///< network model id ("constant", ...)
    std::string directory;    ///< directory format id ("full-map", ...)
    std::string workload;     ///< workload registry id ("barnes", ...)
    /**
     * Intra-cell partitions the cell's machine ran with (1 = the
     * serial engine). The effective per-cell value: a sweep-level
     * --intra-jobs request that a cell's node count cannot honor
     * records 1 here.
     */
    std::size_t intraJobs = 1;
    RunStats stats;
    double wallMs = 0; ///< host wall-clock time for this cell

    /** Scheduler throughput: simulation events per host second. */
    double eventsPerSec() const;
};

/** All cell results of one sweep, in cell order. */
struct SweepResult
{
    std::vector<CellResult> cells;

    //--- Workload-cache accounting (whole sweep) -----------------------
    /** Distinct workloads actually generated. */
    std::size_t workloadsGenerated = 0;
    /** Cells served from an already-generated snapshot. */
    std::size_t workloadCacheHits = 0;

    /** Find a cell by labels; nullptr when absent. */
    const CellResult *find(const std::string &app,
                           const std::string &config) const;

    /** Find a cell by labels; fatal when absent. */
    const CellResult &at(const std::string &app,
                         const std::string &config) const;
};

/**
 * A process-scope content-addressed store of generated workload
 * snapshots, shareable across SweepRunner::run() invocations: attach
 * one via SweepRunner::shareCache() and figures whose cells key the
 * same (app, gen-params, scale, seed) — fig5/fig6/table4's base
 * workloads in `rnuma_sweep all` — generate it once per process
 * instead of once per figure. Thread-safe; also aggregates
 * generated/hit counts across every run it served (the CLI's
 * end-of-run summary line).
 */
class WorkloadCache
{
  public:
    /** Snapshot for @p key; nullptr when not cached. */
    std::shared_ptr<const VectorWorkload>
    find(const std::string &key) const;

    /** Store a snapshot (first writer wins). */
    void insert(const std::string &key,
                std::shared_ptr<const VectorWorkload> snapshot);

    /** Fold one run's counters into the process aggregates. */
    void recordRun(std::size_t generated, std::size_t hits);

    //--- Aggregates over every run served ------------------------------
    std::size_t generated() const;
    std::size_t hits() const;
    /** Distinct snapshots currently held. */
    std::size_t snapshots() const;

  private:
    mutable std::mutex m_;
    std::unordered_map<std::string,
                       std::shared_ptr<const VectorWorkload>>
        map_;
    std::size_t generated_ = 0;
    std::size_t hits_ = 0;
};

/** Executes sweeps with a fixed concurrency level. */
class SweepRunner
{
  public:
    /** @param jobs worker threads; 0 means hardware concurrency. */
    explicit SweepRunner(std::size_t jobs = 1);

    /**
     * Run every cell and return results in cell order. A cell that
     * fails (for example, an unknown application name reaching the
     * registry) aborts the whole sweep: the first error is reported
     * through RNUMA_FATAL after all workers have drained.
     */
    SweepResult run(const Sweep &sweep) const;

    std::size_t jobs() const { return jobs_; }

    /** Enable/disable the workload cache (default: enabled). */
    SweepRunner &
    cacheWorkloads(bool enable)
    {
        cache_ = enable;
        return *this;
    }
    bool workloadCacheEnabled() const { return cache_; }

    /**
     * Attach a process-scope snapshot store shared across run()
     * invocations (and across runners). Null (the default) keeps
     * every run()'s cache private, exactly the pre-process-cache
     * behavior. Ignored while cacheWorkloads(false).
     */
    SweepRunner &
    shareCache(WorkloadCache *shared)
    {
        shared_ = shared;
        return *this;
    }

  private:
    std::size_t jobs_;
    bool cache_ = true;
    WorkloadCache *shared_ = nullptr;
};

/**
 * Re-run @p sweep serially and assert each cell's RunStats is
 * bit-identical to @p result (the `--verify` mode of the CLI; the
 * driver tests use it across job counts). @p cacheWorkloads selects
 * the reference run's workload-cache mode, so a cache-disabled sweep
 * is verified against a cache-disabled reference.
 */
void verifySerialIdentical(const Sweep &sweep,
                           const SweepResult &result,
                           bool cacheWorkloads = true);

} // namespace rnuma::driver

#endif // RNUMA_DRIVER_SWEEP_RUNNER_HH
