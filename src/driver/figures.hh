/**
 * @file
 * The registry of paper figures and tables as declarative sweep
 * specs. Each spec knows how to build its Sweep (lazily — no
 * workloads are generated until the runner executes cells) and how
 * to render the executed sweep as the figure's human-readable table
 * with the paper commentary. The bench harnesses and the rnuma_sweep
 * CLI are both thin shells over this registry.
 */

#ifndef RNUMA_DRIVER_FIGURES_HH
#define RNUMA_DRIVER_FIGURES_HH

#include <ostream>
#include <string>
#include <vector>

#include "driver/result_sink.hh"
#include "driver/sweep.hh"

namespace rnuma::driver
{

/** One figure/table: identity, lazy sweep builder, table renderer. */
struct FigureSpec
{
    const char *name;     ///< CLI name, e.g. "fig6"
    const char *title;
    const char *paperRef;

    /** Build the cell list for a workload scale (cheap; lazy). */
    Sweep (*build)(double scale);

    /**
     * Print the figure's table and commentary from the executed
     * sweep. Returns a process exit status (Table 2 uses it for its
     * PASS/MISMATCH cost verification).
     */
    int (*render)(const FigureRun &run, std::ostream &os);
};

/** All figures, in paper order: fig5-9, table2/4, eq3, ablation, micro. */
const std::vector<FigureSpec> &figureSpecs();

/** Look a figure up by CLI name; nullptr when unknown. */
const FigureSpec *findFigure(const std::string &name);

/**
 * Build and execute one figure's sweep with @p jobs worker threads.
 * With @p verify set and more than one worker, re-runs the sweep
 * serially and asserts every cell's RunStats is bit-identical
 * (catching any cross-cell state leakage that threading would
 * expose); a serial run is itself the reference, so verify is a
 * no-op there. @p cacheWorkloads toggles the runner's
 * content-addressed workload cache (the CLI's --no-workload-cache
 * passes false).
 */
FigureRun runFigure(const FigureSpec &spec, double scale,
                    std::size_t jobs, bool verify,
                    bool cacheWorkloads = true);

/** Render @p run with its spec's renderer, recording the status. */
int renderFigure(const FigureSpec &spec, FigureRun &run,
                 std::ostream &os);

} // namespace rnuma::driver

#endif // RNUMA_DRIVER_FIGURES_HH
