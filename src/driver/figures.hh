/**
 * @file
 * The registry of paper figures and tables as declarative sweep
 * specs. Each spec knows how to build its Sweep (lazily — no
 * workloads are generated until the runner executes cells) and how
 * to render the executed sweep as the figure's human-readable table
 * with the paper commentary. The bench harnesses and the rnuma_sweep
 * CLI are both thin shells over this registry.
 */

#ifndef RNUMA_DRIVER_FIGURES_HH
#define RNUMA_DRIVER_FIGURES_HH

#include <ostream>
#include <string>
#include <vector>

#include "driver/result_sink.hh"
#include "driver/sweep.hh"

namespace rnuma::driver
{

/**
 * Inputs a figure's sweep is built from; converts implicitly from a
 * bare scale (`build({0.1})`) for the common case.
 */
struct FigureOptions
{
    FigureOptions() = default;
    FigureOptions(double s) : scale(s) {}
    FigureOptions(double s, std::vector<std::string> protos)
        : scale(s), protocols(std::move(protos))
    {
    }

    /** Workload input scale. */
    double scale = 1.0;
    /**
     * Registry protocol names for protocol-parametric figures (the
     * "policies" sweep; the CLI's repeatable --protocol flag).
     * Empty means the figure's default selection — every registered
     * protocol for "policies". Figures with a fixed system set
     * (fig5-9, the tables) ignore it.
     */
    std::vector<std::string> protocols;
    /**
     * Registry network-model names for network-parametric figures
     * (the "scaling" sweep; the CLI's repeatable --network flag).
     * Empty means the figure's default selection ({"constant",
     * "mesh-2d"} for "scaling"). Figures pinned to the paper's
     * constant network ignore it.
     */
    std::vector<std::string> networks;
    /**
     * Workload-registry ids for workload-parametric figures (the
     * "churn" sweep; the CLI's repeatable --workload flag). Empty
     * means the figure's default selection ({"phase-shift",
     * "tenants"} for "churn"). Figures with a fixed workload set
     * ignore it.
     */
    std::vector<std::string> workloads;
    /**
     * Partition every cell's machine into this many logical
     * processes (the parallel intra-cell engine; the CLI's
     * --intra-jobs flag). Applied after the figure builds its sweep,
     * so workload cache keys — derived from the generation Params —
     * are unchanged and snapshots stay shared with serial runs. A
     * cell whose node count the value does not divide (or exceed)
     * keeps the serial engine; the per-cell effective value is
     * recorded in CellResult::intraJobs and the JSON artifact.
     * Results are deterministic for a fixed value but NOT
     * tick-identical across values — gate them with the CLI's
     * --compare-events, not --compare.
     */
    std::size_t intraJobs = 1;
};

/** One figure/table: identity, lazy sweep builder, table renderer. */
struct FigureSpec
{
    const char *name;     ///< CLI name, e.g. "fig6"
    const char *title;
    const char *paperRef;

    /** Build the cell list from the options (cheap; lazy). */
    Sweep (*build)(const FigureOptions &opt);

    /**
     * Print the figure's table and commentary from the executed
     * sweep. Returns a process exit status (Table 2 uses it for its
     * PASS/MISMATCH cost verification).
     */
    int (*render)(const FigureRun &run, std::ostream &os);
};

/**
 * All figures, in paper order — fig5-9, table2/4, eq3, ablation,
 * micro — plus the registry-driven sweeps: "policies" (relocation
 * policies), "scaling" (nodes x networks x directories), "serving"
 * (Zipf-skew x protocols x machines), "churn" (workload-parametric
 * phase-shift/tenants x policies), and "storm-cliff" (the fmm
 * 4-frame relocation-storm regression guard).
 */
const std::vector<FigureSpec> &figureSpecs();

/** Look a figure up by CLI name; nullptr when unknown. */
const FigureSpec *findFigure(const std::string &name);

/**
 * Build and execute one figure's sweep with @p jobs worker threads.
 * With @p verify set and more than one worker, re-runs the sweep
 * serially and asserts every cell's RunStats is bit-identical
 * (catching any cross-cell state leakage that threading would
 * expose); a serial run is itself the reference, so verify is a
 * no-op there. @p cacheWorkloads toggles the runner's
 * content-addressed workload cache (the CLI's --no-workload-cache
 * passes false); @p sharedCache optionally attaches a process-scope
 * WorkloadCache so workloads generate once across figures.
 */
FigureRun runFigure(const FigureSpec &spec, const FigureOptions &opt,
                    std::size_t jobs, bool verify,
                    bool cacheWorkloads = true,
                    WorkloadCache *sharedCache = nullptr);

/** Render @p run with its spec's renderer, recording the status. */
int renderFigure(const FigureSpec &spec, FigureRun &run,
                 std::ostream &os);

} // namespace rnuma::driver

#endif // RNUMA_DRIVER_FIGURES_HH
