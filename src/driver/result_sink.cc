#include "driver/result_sink.hh"

#include <algorithm>

#include "common/table.hh"
#include "driver/json.hh"

namespace rnuma::driver
{

namespace
{

// v2 added per-cell "events" (in stats) and "events_per_sec", plus
// the figure-level workload-cache counters — the fields the
// perf-baseline gate (rnuma_sweep --compare) consumes. v3 switches
// the per-cell "protocol" field from the enum-era display name
// ("CC-NUMA") to the registry's stable spec id ("ccnuma",
// "rnuma-t16", ...) and adds "protocol_name" with the display name;
// the gate canonicalizes enum-era labels when reading older
// baselines. v4 adds the per-figure "protocols" array: the distinct
// spec ids the figure's cells ran, in first-appearance order — the
// field CI validates to prove a registered protocol actually
// reached the figure pipeline. v5 adds the per-cell "network" and
// "directory" ids (the interconnect model and directory sharer-set
// format the cell ran under) and the net_*/dir_* stat fields; the
// gate defaults pre-v5 cells to "constant"/"full-map". v6 adds the
// per-cell "intra_jobs" field: the intra-cell partition count the
// cell's machine ran with (1 = the serial engine; pre-v6 cells could
// only be serial, so the gate defaults them to 1). Cells at
// intra_jobs > 1 are deterministic but not tick-identical to serial
// runs; diff them with --compare-events instead of --compare. v7
// adds the per-cell "workload" field: the workload-registry id of
// the generator behind the cell ("barnes", "zipf-serve", ...; ""
// for an ad-hoc factory). Pre-v7 cells carried no workload ids, so
// the gate treats a workload mismatch against older baselines as a
// note, not a violation. v8 adds the residency-feedback counters
// "evictions_zero_hit" / "evicted_page_hits" (how wasted the
// evicted relocations were); they are absent from pre-v8 baselines,
// so the gate only enforces them when both documents are v8+ and
// reports pre-v8 differences as notes.
constexpr const char *schemaName = "rnuma-sweep-results/v8";

std::uint64_t
remotePages(const RunStats &s)
{
    return static_cast<std::uint64_t>(s.remotePageCount());
}

} // namespace

std::vector<std::string>
protocolsOf(const SweepResult &result)
{
    std::vector<std::string> ids;
    for (const CellResult &c : result.cells) {
        if (std::find(ids.begin(), ids.end(), c.protocol) ==
            ids.end())
            ids.push_back(c.protocol);
    }
    return ids;
}

const std::vector<StatField> &
statFields()
{
    static const std::vector<StatField> fields = {
        {"ticks", [](const RunStats &s) { return s.ticks; }},
        {"events", [](const RunStats &s) { return s.events; }},
        {"refs", [](const RunStats &s) { return s.refs; }},
        {"l1_hits", [](const RunStats &s) { return s.l1Hits; }},
        {"l1_misses", [](const RunStats &s) { return s.l1Misses; }},
        {"upgrades", [](const RunStats &s) { return s.upgrades; }},
        {"barriers", [](const RunStats &s) { return s.barriers; }},
        {"local_fills",
         [](const RunStats &s) { return s.localFills; }},
        {"node_transfers",
         [](const RunStats &s) { return s.nodeTransfers; }},
        {"block_cache_hits",
         [](const RunStats &s) { return s.blockCacheHits; }},
        {"page_cache_hits",
         [](const RunStats &s) { return s.pageCacheHits; }},
        {"remote_fetches",
         [](const RunStats &s) { return s.remoteFetches; }},
        {"refetches", [](const RunStats &s) { return s.refetches; }},
        {"coherence_misses",
         [](const RunStats &s) { return s.coherenceMisses; }},
        {"cold_misses",
         [](const RunStats &s) { return s.coldMisses; }},
        {"invalidations_sent",
         [](const RunStats &s) { return s.invalidationsSent; }},
        {"forwards", [](const RunStats &s) { return s.forwards; }},
        {"writebacks",
         [](const RunStats &s) { return s.writebacks; }},
        {"flushed_blocks",
         [](const RunStats &s) { return s.flushedBlocks; }},
        {"page_faults",
         [](const RunStats &s) { return s.pageFaults; }},
        {"scoma_allocations",
         [](const RunStats &s) { return s.scomaAllocations; }},
        {"scoma_replacements",
         [](const RunStats &s) { return s.scomaReplacements; }},
        {"relocations",
         [](const RunStats &s) { return s.relocations; }},
        {"evictions_zero_hit",
         [](const RunStats &s) { return s.evictionsZeroHit; }},
        {"evicted_page_hits",
         [](const RunStats &s) { return s.evictedPageHits; }},
        {"bus_wait", [](const RunStats &s) { return s.busWait; }},
        {"ni_wait", [](const RunStats &s) { return s.niWait; }},
        {"os_cycles", [](const RunStats &s) { return s.osCycles; }},
        {"stall_cycles",
         [](const RunStats &s) { return s.stallCycles; }},
        {"remote_pages", &remotePages},
        {"net_requests",
         [](const RunStats &s) {
             return s.net.count(MsgKind::Request);
         }},
        {"net_replies",
         [](const RunStats &s) {
             return s.net.count(MsgKind::Reply);
         }},
        {"net_invalidates",
         [](const RunStats &s) {
             return s.net.count(MsgKind::Invalidate);
         }},
        {"net_forwards",
         [](const RunStats &s) {
             return s.net.count(MsgKind::Forward);
         }},
        {"net_writebacks",
         [](const RunStats &s) {
             return s.net.count(MsgKind::Writeback);
         }},
        {"net_flushes",
         [](const RunStats &s) {
             return s.net.count(MsgKind::Flush);
         }},
        {"net_messages",
         [](const RunStats &s) { return s.net.totalMessages(); }},
        {"dir_entries",
         [](const RunStats &s) { return s.dirEntries; }},
        {"dir_bits", [](const RunStats &s) { return s.dirBits; }},
    };
    return fields;
}

void
JsonSink::write(std::ostream &os,
                const std::vector<FigureRun> &runs) const
{
    JsonWriter w(os);
    w.beginObject();
    w.key("schema");
    w.value(schemaName);
    w.key("figures");
    w.beginArray();
    for (const FigureRun &run : runs) {
        w.beginObject();
        w.key("name");
        w.value(run.name);
        w.key("title");
        w.value(run.title);
        w.key("paper_ref");
        w.value(run.paperRef);
        w.key("scale");
        w.value(run.scale);
        w.key("jobs");
        w.value(static_cast<std::uint64_t>(run.jobs));
        w.key("wall_ms");
        w.value(run.wallMs);
        w.key("status");
        w.value(static_cast<std::uint64_t>(
            run.status < 0 ? 0 : run.status));
        w.key("workloads_generated");
        w.value(static_cast<std::uint64_t>(
            run.result.workloadsGenerated));
        w.key("workload_cache_hits");
        w.value(static_cast<std::uint64_t>(
            run.result.workloadCacheHits));
        w.key("protocols");
        w.beginArray();
        for (const std::string &id : protocolsOf(run.result))
            w.value(id);
        w.endArray();
        w.key("cells");
        w.beginArray();
        for (const CellResult &c : run.result.cells) {
            w.beginObject();
            w.key("app");
            w.value(c.app);
            w.key("config");
            w.value(c.config);
            w.key("protocol");
            w.value(c.protocol);
            w.key("protocol_name");
            w.value(c.protocolName);
            w.key("network");
            w.value(c.network);
            w.key("directory");
            w.value(c.directory);
            w.key("workload");
            w.value(c.workload);
            w.key("intra_jobs");
            w.value(static_cast<std::uint64_t>(c.intraJobs));
            w.key("wall_ms");
            w.value(c.wallMs);
            w.key("events_per_sec");
            w.value(c.eventsPerSec());
            w.key("stats");
            w.beginObject();
            for (const StatField &f : statFields()) {
                w.key(f.name);
                w.value(f.get(c.stats));
            }
            w.endObject();
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

void
CsvSink::write(std::ostream &os,
               const std::vector<FigureRun> &runs) const
{
    os << "figure,scale,app,config,protocol,network,directory,"
          "workload,intra_jobs,wall_ms,events_per_sec";
    for (const StatField &f : statFields())
        os << "," << f.name;
    os << "\n";
    for (const FigureRun &run : runs) {
        for (const CellResult &c : run.result.cells) {
            os << run.name << "," << run.scale << "," << c.app << ","
               << c.config << "," << c.protocol << ","
               << c.network << "," << c.directory << ","
               << c.workload << "," << c.intraJobs << ","
               << c.wallMs << "," << c.eventsPerSec();
            for (const StatField &f : statFields())
                os << "," << f.get(c.stats);
            os << "\n";
        }
    }
}

void
TableSink::write(std::ostream &os,
                 const std::vector<FigureRun> &runs) const
{
    for (const FigureRun &run : runs) {
        os << run.name << ": " << run.title << " (scale "
           << run.scale << ", " << run.result.cells.size()
           << " cells)\n";
        Table t({"app", "config", "protocol", "ticks", "refs",
                 "remote fetches", "refetches", "relocations"});
        for (const CellResult &c : run.result.cells) {
            t.addRow({c.app, c.config, c.protocol,
                      std::to_string(c.stats.ticks),
                      std::to_string(c.stats.refs),
                      std::to_string(c.stats.remoteFetches),
                      std::to_string(c.stats.refetches),
                      std::to_string(c.stats.relocations)});
        }
        t.print(os);
        os << "\n";
    }
}

} // namespace rnuma::driver
