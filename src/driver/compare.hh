/**
 * @file
 * The perf-baseline regression gate: diff two rnuma-sweep-results
 * documents (a stored baseline vs the current run). Simulated
 * per-cell `ticks` and `events` are deterministic, so any drift is a
 * hard failure; host wall time is noisy, so it fails only beyond a
 * percentage tolerance. Consumed by `rnuma_sweep --compare` and the
 * CI perf-gate job (workflow: .github/workflows/ci.yml; workflow
 * docs: docs/PERFORMANCE.md).
 */

#ifndef RNUMA_DRIVER_COMPARE_HH
#define RNUMA_DRIVER_COMPARE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "driver/result_sink.hh"

namespace rnuma::driver
{

/** The comparable slice of one serialized cell. */
struct ResultCell
{
    std::string app;
    std::string config;
    std::uint64_t ticks = 0;
    /** Scheduler events; hasEvents false for v1 baselines. */
    std::uint64_t events = 0;
    bool hasEvents = false;
    double wallMs = 0;
};

/** The comparable slice of one serialized figure. */
struct ResultFigure
{
    std::string name;
    double scale = 1.0;
    std::size_t jobs = 1;
    double wallMs = 0;
    std::vector<ResultCell> cells;

    const ResultCell *find(const std::string &app,
                           const std::string &config) const;
};

/** A parsed results document (either schema version). */
struct ResultDoc
{
    std::string schema;
    std::vector<ResultFigure> figures;

    const ResultFigure *find(const std::string &name) const;
};

/**
 * Extract the comparable slice from a parsed rnuma-sweep-results
 * document (v1 or v2). Throws std::runtime_error on documents that
 * are not sweep results at all.
 */
ResultDoc loadResults(const std::string &json_text);

/** Build the comparable slice directly from executed figures. */
ResultDoc resultsOf(const std::vector<FigureRun> &runs);

/** Tuning for compareResults. */
struct CompareOptions
{
    /**
     * Allowed per-figure wall-time growth, in percent (e.g. 25 means
     * "fail when >1.25x the baseline"). Negative disables the
     * wall-time check entirely (determinism checks always run).
     */
    double wallTolerancePct = 25.0;
};

/**
 * Diff @p current against @p baseline, writing a per-figure report
 * to @p os. Returns the number of violations:
 *
 * - a figure or cell present in the baseline but missing now
 *   (coverage loss);
 * - per-cell `ticks` or `events` drift — exact comparison, any
 *   difference fails (the simulator is deterministic, so drift means
 *   behavior changed without the baseline being re-recorded);
 * - per-figure wall time above baseline by more than the tolerance.
 *
 * Figures whose scale differs from the baseline's are a violation
 * (the comparison would be meaningless). Cells/figures only in
 * @p current are reported as new, not counted. Wall-time checks are
 * skipped (with a note) when the job counts differ, since sweep wall
 * time scales with concurrency.
 */
std::size_t compareResults(const ResultDoc &baseline,
                           const ResultDoc &current,
                           const CompareOptions &opt,
                           std::ostream &os);

} // namespace rnuma::driver

#endif // RNUMA_DRIVER_COMPARE_HH
