/**
 * @file
 * The perf-baseline regression gate: diff two rnuma-sweep-results
 * documents (a stored baseline vs the current run). Simulated
 * per-cell `ticks` and `events` are deterministic, so any drift is a
 * hard failure; host wall time is noisy, so it fails only beyond a
 * percentage tolerance. Consumed by `rnuma_sweep --compare` and the
 * CI perf-gate job (workflow: .github/workflows/ci.yml; workflow
 * docs: docs/PERFORMANCE.md).
 *
 * Also home to the measured-performance ("rnuma-bench/v1") artifact:
 * the `rnuma_bench` harness measures median-of-N events/sec and
 * events/instruction per cell, and compareBench() diffs two such
 * artifacts — exact on the deterministic counters, tolerance-based
 * on the host-measured rates.
 */

#ifndef RNUMA_DRIVER_COMPARE_HH
#define RNUMA_DRIVER_COMPARE_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "driver/result_sink.hh"

namespace rnuma::driver
{

/** The comparable slice of one serialized cell. */
struct ResultCell
{
    std::string app;
    std::string config;
    /**
     * Canonical protocol id, already passed through
     * canonicalProtocolId(): enum-era labels in v1/v2 baselines
     * ("CC-NUMA") read back as the stable id ("ccnuma"). Empty when
     * the document carried none.
     */
    std::string protocol;
    /**
     * Canonical network-model id. Pre-v5 documents carried none;
     * their cells default to "constant" (the only interconnect that
     * existed), so v1-v4 baselines stay comparable.
     */
    std::string network = "constant";
    /**
     * Canonical directory-format id; pre-v5 cells default to
     * "full-map" for the same reason.
     */
    std::string directory = "full-map";
    /**
     * Canonical workload-registry id of the cell's generator
     * ("barnes", "zipf-serve", ...). Pre-v7 documents carried none;
     * their cells default to "" (unknown), and the gate reports a
     * workload mismatch against them as a note, not a violation.
     */
    std::string workload;
    /**
     * Intra-cell partition count the cell ran with. Pre-v6 documents
     * predate the parallel engine, so their cells default to 1 (the
     * only engine that existed).
     */
    std::size_t intraJobs = 1;
    std::uint64_t ticks = 0;
    /** Scheduler events; hasEvents false for v1 baselines. */
    std::uint64_t events = 0;
    bool hasEvents = false;
    double wallMs = 0;
    /**
     * Every numeric field of the cell's serialized "stats" object,
     * by field name — the event-count slice compareEventCounts()
     * diffs. Empty for v1 baselines (which carried no stats).
     */
    std::map<std::string, std::uint64_t> counters;
};

/** The comparable slice of one serialized figure. */
struct ResultFigure
{
    std::string name;
    double scale = 1.0;
    std::size_t jobs = 1;
    double wallMs = 0;
    /**
     * The v4 per-figure "protocols" array (distinct canonical spec
     * ids, first-appearance order); reconstructed from the cells for
     * pre-v4 documents, so consumers can rely on it regardless of
     * the baseline's age.
     */
    std::vector<std::string> protocols;
    std::vector<ResultCell> cells;

    const ResultCell *find(const std::string &app,
                           const std::string &config) const;
};

/** A parsed results document (any schema version). */
struct ResultDoc
{
    std::string schema;
    std::vector<ResultFigure> figures;

    const ResultFigure *find(const std::string &name) const;

    /** Numeric schema version (the N of rnuma-sweep-results/vN). */
    int version() const;
};

/**
 * Extract the comparable slice from a parsed rnuma-sweep-results
 * document (v1 through v7). Throws std::runtime_error on documents
 * that are not sweep results at all.
 */
ResultDoc loadResults(const std::string &json_text);

/** Build the comparable slice directly from executed figures. */
ResultDoc resultsOf(const std::vector<FigureRun> &runs);

/** Tuning for compareResults. */
struct CompareOptions
{
    /**
     * Allowed per-figure wall-time growth, in percent (e.g. 25 means
     * "fail when >1.25x the baseline"). Negative disables the
     * wall-time check entirely (determinism checks always run).
     */
    double wallTolerancePct = 25.0;
};

/**
 * Diff @p current against @p baseline, writing a per-figure report
 * to @p os. Returns the number of violations:
 *
 * - a figure or cell present in the baseline but missing now
 *   (coverage loss);
 * - per-cell `ticks` or `events` drift — exact comparison, any
 *   difference fails (the simulator is deterministic, so drift means
 *   behavior changed without the baseline being re-recorded);
 * - a cell's canonical protocol id changing, when BOTH documents are
 *   v3 or newer (pre-v3 baselines carry enum-era labels that cannot
 *   distinguish policy variants — e.g. fig8's per-threshold specs
 *   all serialized as "R-NUMA" — so against those the id change is a
 *   note, not a violation: the string-mapping shim that keeps the
 *   first post-registry PR from false-failing on an old artifact);
 * - per-figure wall time above baseline by more than the tolerance.
 *
 * Figures whose scale differs from the baseline's are a violation
 * (the comparison would be meaningless). Cells/figures only in
 * @p current are reported as new, not counted. Wall-time checks are
 * skipped (with a note) when the job counts differ, since sweep wall
 * time scales with concurrency.
 */
std::size_t compareResults(const ResultDoc &baseline,
                           const ResultDoc &current,
                           const CompareOptions &opt,
                           std::ostream &os);

/** Tuning for compareEventCounts. */
struct EventCompareOptions
{
    /**
     * Allowed relative drift of the protocol-event counters, in
     * percent of the baseline value (either direction). The default
     * is calibrated against the worst observed window-reordering
     * drift across the full figure suite at the default intraWindow
     * (the rw-sharing microbenchmark's net traffic, ~11%); typical
     * application cells stay within 2-6%.
     */
    double tolerancePct = 12.0;
    /**
     * Absolute slack that always passes, regardless of the relative
     * tolerance — one window's worth of reordered sharing
     * interactions is a large fraction of a small counter, but never
     * evidence of divergence.
     */
    std::uint64_t absSlack = 96;
};

/**
 * The parallel-equivalence gate (`rnuma_sweep --compare-events`):
 * diff what the machine *did* rather than when it did it. The
 * parallel intra-cell engine (--intra-jobs > 1) is deterministic for
 * a fixed partition count but interleaves confined events
 * differently from the serial engine, so per-cell ticks, events, and
 * wait cycles legitimately differ; the protocol-event counts are the
 * invariant (docs/ARCHITECTURE.md, "Parallel intra-cell simulation").
 * Checks per cell, against a (typically serial) baseline:
 *
 * - `refs` and `barriers` — exact: every CPU consumes its whole
 *   stream exactly once under either engine;
 * - `remote_fetches`, `relocations`, `scoma_allocations`,
 *   `invalidations_sent`, `net_messages` — within max(absSlack,
 *   tolerancePct% of baseline);
 * - the cold/coherence/refetch *classification* of those fetches is
 *   reported (as notes) but not gated: a miss is classified from
 *   directory state at the instant it is processed, so window
 *   reordering moves misses between classes even when the gated
 *   total is equivalent;
 * - missing figures/cells and scale changes — violations, as in
 *   compareResults. Ticks, events, and wall time are ignored.
 *
 * Cells whose baseline carries no stats (v1 documents) are skipped
 * with a note. Returns the number of violations (the CLI exits 4
 * when nonzero).
 */
std::size_t compareEventCounts(const ResultDoc &baseline,
                               const ResultDoc &current,
                               const EventCompareOptions &opt,
                               std::ostream &os);

//--------------------------------------------------------------------------
// Measured-performance (bench) artifacts
//--------------------------------------------------------------------------

/**
 * One cell of an "rnuma-bench/v1" artifact (schema documented in
 * docs/PERFORMANCE.md). The counters — events, ticks, refs — are
 * deterministic simulator outputs and diff exactly; the median
 * events/sec is a host measurement and diffs within a tolerance.
 * events/instruction (events / refs, with refs as the instruction
 * proxy) is derived from the counters and therefore equally
 * noise-immune.
 */
struct BenchCell
{
    std::string app;
    std::string config;
    std::string protocol;
    std::uint64_t events = 0;
    std::uint64_t ticks = 0;
    std::uint64_t refs = 0;
    double eventsPerInstruction = 0;
    double medianEventsPerSec = 0;
};

/** One figure of a bench artifact. */
struct BenchFigure
{
    std::string name;
    double scale = 1.0;
    std::vector<BenchCell> cells;

    const BenchCell *find(const std::string &app,
                          const std::string &config) const;
};

/** A parsed (or freshly measured) bench artifact. */
struct BenchDoc
{
    std::string schema;
    std::size_t runs = 0; ///< medians are over this many runs
    double scale = 1.0;
    std::size_t jobs = 1;
    /**
     * Intra-cell partition count the cells ran with (the harness's
     * --intra-jobs; serialized as "intra_jobs", absent/1 in older
     * artifacts). The committed BENCH_<n>.json trajectory stays
     * serial; a differing value makes even the deterministic
     * counters incomparable, so compareBench fails on a mismatch.
     */
    std::size_t intraJobs = 1;
    std::vector<BenchFigure> figures;

    const BenchFigure *find(const std::string &name) const;
};

/**
 * Parse a bench artifact. Throws std::runtime_error on documents
 * that are not rnuma-bench at all.
 */
BenchDoc loadBench(const std::string &json_text);

/** Serialize a bench artifact as indented rnuma-bench/v1 JSON. */
void writeBench(std::ostream &os, const BenchDoc &doc);

/** Tuning for compareBench. */
struct BenchCompareOptions
{
    /**
     * Allowed median events/sec *drop*, in percent (improvements
     * never fail). Single-digit by default: medians-of-N on a quiet
     * host are repeatable to a few percent. Negative disables the
     * rate check entirely (counters-only mode — what CI uses on
     * shared runners, where host throughput is not comparable
     * between machines).
     */
    double ratePct = 8.0;
};

/**
 * Diff @p current against @p baseline, writing a per-figure report
 * to @p os. Returns the number of violations:
 *
 * - a figure or cell present in the baseline but missing now, or a
 *   figure whose scale changed (coverage loss / incomparable);
 * - per-cell `events`, `ticks`, or `refs` drift — exact comparison
 *   (deterministic counters, so any drift means behavior changed
 *   without the baseline being re-recorded);
 * - per-cell median events/sec below baseline by more than the
 *   tolerance.
 *
 * Differing run counts or job counts are notes, not violations
 * (medians are comparable across N; rates are not compared across
 * differing jobs — the rate check is skipped with a note).
 */
std::size_t compareBench(const BenchDoc &baseline,
                         const BenchDoc &current,
                         const BenchCompareOptions &opt,
                         std::ostream &os);

} // namespace rnuma::driver

#endif // RNUMA_DRIVER_COMPARE_HH
