/**
 * @file
 * Machine- and human-readable emitters for executed sweeps. A
 * FigureRun pairs a figure's identity with its SweepResult; the
 * sinks serialize lists of them. The JSON schema
 * ("rnuma-sweep-results/v4", documented in docs/PERFORMANCE.md) is
 * the stable artifact format the CI figure pipeline and the
 * perf-baseline gate consume, so changes to it must bump the schema
 * string (v2 added per-cell event counts/throughput and the
 * workload-cache counters, v3 the stable protocol ids, v4 the
 * per-figure "protocols" array; the gate still reads v1-v3
 * baselines).
 */

#ifndef RNUMA_DRIVER_RESULT_SINK_HH
#define RNUMA_DRIVER_RESULT_SINK_HH

#include <ostream>
#include <string>
#include <vector>

#include "driver/sweep_runner.hh"

namespace rnuma::driver
{

/** One executed figure: identity plus per-cell results. */
struct FigureRun
{
    std::string name;     ///< CLI name, e.g. "fig6"
    std::string title;
    std::string paperRef;
    double scale = 1.0;   ///< workload scale the sweep ran at
    std::size_t jobs = 1; ///< concurrency it ran with
    double wallMs = 0;    ///< wall-clock for the whole sweep
    int status = 0;       ///< render/verification exit status
    SweepResult result;
};

/** The per-cell counters serialized by the sinks, in order. */
struct StatField
{
    const char *name;
    std::uint64_t (*get)(const RunStats &);
};
const std::vector<StatField> &statFields();

/**
 * The distinct protocol ids a sweep's cells ran, in first-appearance
 * order — the figure-level "protocols" array of the v4 schema.
 */
std::vector<std::string> protocolsOf(const SweepResult &result);

/** Abstract emitter over a batch of executed figures. */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;
    virtual void write(std::ostream &os,
                       const std::vector<FigureRun> &runs) const = 0;
};

/** The "rnuma-sweep-results/v4" JSON document. */
class JsonSink : public ResultSink
{
  public:
    void write(std::ostream &os,
               const std::vector<FigureRun> &runs) const override;
};

/** One flat CSV row per cell, all figures concatenated. */
class CsvSink : public ResultSink
{
  public:
    void write(std::ostream &os,
               const std::vector<FigureRun> &runs) const override;
};

/** Raw per-cell counter tables (debugging / quick inspection). */
class TableSink : public ResultSink
{
  public:
    void write(std::ostream &os,
               const std::vector<FigureRun> &runs) const override;
};

} // namespace rnuma::driver

#endif // RNUMA_DRIVER_RESULT_SINK_HH
