/**
 * @file
 * Minimal JSON support for the sweep driver: a writer with correct
 * string escaping for the machine-readable result sink, and a small
 * recursive-descent parser used to validate emitted files (the CLI
 * re-parses what it wrote; the tests round-trip sweep results). No
 * third-party dependency.
 */

#ifndef RNUMA_DRIVER_JSON_HH
#define RNUMA_DRIVER_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace rnuma::driver
{

/** Escape and double-quote a string for JSON output. */
std::string jsonQuote(const std::string &s);

/**
 * Incremental writer producing indented JSON. The caller is
 * responsible for well-formed nesting; keys are escaped here.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Start "key": inside an object (next value attaches to it). */
    void key(const std::string &k);

    void value(const std::string &v);
    void value(const char *v) { value(std::string(v)); }
    void value(double v);
    void value(std::uint64_t v);
    void value(bool v);

  private:
    void separate();
    void indent();

    std::ostream &os_;
    int depth_ = 0;
    bool need_comma_ = false;
    bool after_key_ = false;
};

/** A parsed JSON value (object keys preserve document order). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *get(const std::string &k) const;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
};

/**
 * Parse a complete JSON document. Throws std::runtime_error with a
 * byte offset on malformed input (including trailing garbage).
 */
JsonValue parseJson(const std::string &text);

} // namespace rnuma::driver

#endif // RNUMA_DRIVER_JSON_HH
