#include "driver/compare.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "driver/json.hh"
#include "net/registry.hh"
#include "proto/registry.hh"
#include "workload/registry.hh"

namespace rnuma::driver
{

namespace
{

/**
 * Scales match when equal to ~6 significant digits: pre-v2 baselines
 * were serialized with %.6g, so exact double equality would reject a
 * baseline recorded by the very same command line.
 */
bool
sameScale(double a, double b)
{
    double mag = std::fabs(a) > std::fabs(b) ? std::fabs(a)
                                             : std::fabs(b);
    return std::fabs(a - b) <= mag * 1e-5;
}

double
numberOr(const JsonValue *v, double fallback)
{
    return v && v->kind == JsonValue::Kind::Number ? v->number
                                                   : fallback;
}

std::string
stringOr(const JsonValue *v, const std::string &fallback)
{
    return v && v->kind == JsonValue::Kind::String ? v->str
                                                   : fallback;
}

} // namespace

const ResultCell *
ResultFigure::find(const std::string &app,
                   const std::string &config) const
{
    for (const ResultCell &c : cells)
        if (c.app == app && c.config == config)
            return &c;
    return nullptr;
}

const ResultFigure *
ResultDoc::find(const std::string &name) const
{
    for (const ResultFigure &f : figures)
        if (f.name == name)
            return &f;
    return nullptr;
}

int
ResultDoc::version() const
{
    const std::string prefix = "rnuma-sweep-results/v";
    if (schema.rfind(prefix, 0) != 0)
        return 0;
    return std::atoi(schema.c_str() + prefix.size());
}

ResultDoc
loadResults(const std::string &json_text)
{
    JsonValue doc = parseJson(json_text);
    ResultDoc out;
    out.schema = stringOr(doc.get("schema"), "");
    if (out.schema.rfind("rnuma-sweep-results/", 0) != 0)
        throw std::runtime_error(
            "not an rnuma-sweep-results document (schema '" +
            out.schema + "')");
    const JsonValue *figures = doc.get("figures");
    if (!figures || !figures->isArray())
        throw std::runtime_error("missing 'figures' array");
    for (const JsonValue &jf : figures->array) {
        ResultFigure f;
        f.name = stringOr(jf.get("name"), "?");
        f.scale = numberOr(jf.get("scale"), 1.0);
        f.jobs = static_cast<std::size_t>(
            numberOr(jf.get("jobs"), 1));
        f.wallMs = numberOr(jf.get("wall_ms"), 0);
        // v4 carries the distinct protocol ids per figure; older
        // documents reconstruct the list from their cells below, so
        // the field is populated for any baseline age.
        const JsonValue *protos = jf.get("protocols");
        if (protos && protos->isArray()) {
            for (const JsonValue &jp : protos->array) {
                if (jp.kind == JsonValue::Kind::String)
                    f.protocols.push_back(
                        canonicalProtocolId(jp.str));
            }
        }
        const JsonValue *cells = jf.get("cells");
        if (cells && cells->isArray()) {
            for (const JsonValue &jc : cells->array) {
                ResultCell c;
                c.app = stringOr(jc.get("app"), "?");
                c.config = stringOr(jc.get("config"), "?");
                // Enum-era labels ("CC-NUMA") canonicalize to the
                // stable registry ids ("ccnuma") on load, so v1-v3
                // baselines diff cleanly against v4 results.
                std::string proto =
                    stringOr(jc.get("protocol"), "");
                if (!proto.empty())
                    c.protocol = canonicalProtocolId(proto);
                // v5 carries per-cell network/directory ids; older
                // documents predate both axes, so their cells keep
                // the "constant"/"full-map" defaults — the only
                // configuration those baselines could have run.
                c.network = canonicalNetworkId(
                    stringOr(jc.get("network"), c.network));
                c.directory =
                    stringOr(jc.get("directory"), c.directory);
                // v7 carries the per-cell workload-registry id;
                // older documents predate the workload registry,
                // so their cells keep the "" (unknown) default.
                c.workload = canonicalWorkloadId(
                    stringOr(jc.get("workload"), c.workload));
                // v6 records the intra-cell partition count; older
                // documents predate the parallel engine entirely.
                c.intraJobs = static_cast<std::size_t>(
                    numberOr(jc.get("intra_jobs"), 1));
                c.wallMs = numberOr(jc.get("wall_ms"), 0);
                const JsonValue *stats = jc.get("stats");
                if (stats) {
                    c.ticks = static_cast<std::uint64_t>(
                        numberOr(stats->get("ticks"), 0));
                    const JsonValue *ev = stats->get("events");
                    if (ev) {
                        c.events = static_cast<std::uint64_t>(
                            numberOr(ev, 0));
                        c.hasEvents = true;
                    }
                    // The whole numeric stats object, for the
                    // event-count gate; names follow statFields().
                    for (const auto &kv : stats->object) {
                        if (kv.second.kind ==
                            JsonValue::Kind::Number)
                            c.counters[kv.first] =
                                static_cast<std::uint64_t>(
                                    kv.second.number);
                    }
                }
                f.cells.push_back(std::move(c));
            }
        }
        if (f.protocols.empty()) {
            for (const ResultCell &c : f.cells) {
                if (c.protocol.empty())
                    continue;
                if (std::find(f.protocols.begin(),
                              f.protocols.end(),
                              c.protocol) == f.protocols.end())
                    f.protocols.push_back(c.protocol);
            }
        }
        out.figures.push_back(std::move(f));
    }
    return out;
}

ResultDoc
resultsOf(const std::vector<FigureRun> &runs)
{
    ResultDoc out;
    out.schema = "rnuma-sweep-results/v8";
    for (const FigureRun &run : runs) {
        ResultFigure f;
        f.name = run.name;
        f.scale = run.scale;
        f.jobs = run.jobs;
        f.wallMs = run.wallMs;
        f.protocols = protocolsOf(run.result);
        for (const CellResult &c : run.result.cells) {
            ResultCell rc;
            rc.app = c.app;
            rc.config = c.config;
            rc.protocol = c.protocol;
            if (!c.network.empty())
                rc.network = c.network;
            if (!c.directory.empty())
                rc.directory = c.directory;
            rc.workload = c.workload;
            rc.intraJobs = c.intraJobs;
            rc.ticks = c.stats.ticks;
            rc.events = c.stats.events;
            rc.hasEvents = true;
            rc.wallMs = c.wallMs;
            for (const StatField &f : statFields())
                rc.counters[f.name] = f.get(c.stats);
            f.cells.push_back(std::move(rc));
        }
        out.figures.push_back(std::move(f));
    }
    return out;
}

std::size_t
compareResults(const ResultDoc &baseline, const ResultDoc &current,
               const CompareOptions &opt, std::ostream &os)
{
    std::size_t violations = 0;
    auto fail = [&](const std::string &msg) {
        violations++;
        os << "FAIL: " << msg << "\n";
    };
    // Pre-v3 baselines carry enum-era display names that collapse
    // policy variants (every fig8 threshold cell was "R-NUMA"), so a
    // protocol-id change against them is informational only.
    bool protocolComparable =
        baseline.version() >= 3 && current.version() >= 3;
    // Pre-v5 documents carried no network/directory ids (their cells
    // loaded with the "constant"/"full-map" defaults), so an id
    // change against them is informational only.
    bool networkComparable =
        baseline.version() >= 5 && current.version() >= 5;
    // Pre-v7 documents carried no per-cell workload ids (their cells
    // loaded with the "" default), so an id change against them is
    // informational only.
    bool workloadComparable =
        baseline.version() >= 7 && current.version() >= 7;
    // Pre-v8 documents carried no residency-feedback counters, so a
    // difference against them is informational only. (Absent keys
    // never diff: the check below requires the counter on both
    // sides.)
    bool feedbackComparable =
        baseline.version() >= 8 && current.version() >= 8;
    static const char *const feedbackCounters[] = {
        "evictions_zero_hit", "evicted_page_hits"};

    for (const ResultFigure &bf : baseline.figures) {
        const ResultFigure *cf = current.find(bf.name);
        if (!cf) {
            fail(bf.name + ": figure missing from current results");
            continue;
        }
        if (!sameScale(bf.scale, cf->scale)) {
            fail(bf.name + ": scale changed (baseline " +
                 std::to_string(bf.scale) + ", current " +
                 std::to_string(cf->scale) +
                 "); ticks are not comparable — re-record the "
                 "baseline");
            continue;
        }

        std::size_t figure_drift = 0;
        for (const ResultCell &bc : bf.cells) {
            const ResultCell *cc = cf->find(bc.app, bc.config);
            if (!cc) {
                fail(bf.name + "/" + bc.app + "/" + bc.config +
                     ": cell missing from current results");
                continue;
            }
            if (bc.intraJobs != cc->intraJobs) {
                // Different engines produce legitimately different
                // schedules; a tick diff would only report that.
                fail(bf.name + "/" + bc.app + "/" + bc.config +
                     ": intra_jobs changed (baseline " +
                     std::to_string(bc.intraJobs) + ", current " +
                     std::to_string(cc->intraJobs) +
                     "); ticks are not comparable — use "
                     "--compare-events for cross-engine checks");
                figure_drift++;
                continue;
            }
            if (bc.ticks != cc->ticks) {
                fail(bf.name + "/" + bc.app + "/" + bc.config +
                     ": ticks drifted (baseline " +
                     std::to_string(bc.ticks) + ", current " +
                     std::to_string(cc->ticks) + ")");
                figure_drift++;
            }
            if (bc.hasEvents && cc->hasEvents &&
                bc.events != cc->events) {
                fail(bf.name + "/" + bc.app + "/" + bc.config +
                     ": events drifted (baseline " +
                     std::to_string(bc.events) + ", current " +
                     std::to_string(cc->events) + ")");
                figure_drift++;
            }
            if (!bc.protocol.empty() && !cc->protocol.empty() &&
                bc.protocol != cc->protocol) {
                std::string msg = bf.name + "/" + bc.app + "/" +
                    bc.config + ": protocol changed (baseline '" +
                    bc.protocol + "', current '" + cc->protocol +
                    "')";
                if (protocolComparable) {
                    fail(msg);
                    figure_drift++;
                } else {
                    os << "note: " << msg
                       << " — pre-v3 baseline, label shim only\n";
                }
            }
            if (bc.network != cc->network ||
                bc.directory != cc->directory) {
                std::string msg = bf.name + "/" + bc.app + "/" +
                    bc.config + ": network/directory changed "
                    "(baseline '" + bc.network + "'/'" +
                    bc.directory + "', current '" + cc->network +
                    "'/'" + cc->directory + "')";
                if (networkComparable) {
                    fail(msg);
                    figure_drift++;
                } else {
                    os << "note: " << msg
                       << " — pre-v5 baseline, defaults assumed\n";
                }
            }
            if (!bc.workload.empty() && !cc->workload.empty() &&
                bc.workload != cc->workload) {
                std::string msg = bf.name + "/" + bc.app + "/" +
                    bc.config + ": workload changed (baseline '" +
                    bc.workload + "', current '" + cc->workload +
                    "')";
                if (workloadComparable) {
                    fail(msg);
                    figure_drift++;
                } else {
                    os << "note: " << msg
                       << " — pre-v7 baseline, no workload ids\n";
                }
            }
            for (const char *name : feedbackCounters) {
                auto bit = bc.counters.find(name);
                auto cit = cc->counters.find(name);
                if (bit == bc.counters.end() ||
                    cit == cc->counters.end())
                    continue; // pre-v8 side: counter absent
                if (bit->second == cit->second)
                    continue;
                std::string msg = bf.name + "/" + bc.app + "/" +
                    bc.config + ": " + name +
                    " drifted (baseline " +
                    std::to_string(bit->second) + ", current " +
                    std::to_string(cit->second) + ")";
                if (feedbackComparable) {
                    fail(msg);
                    figure_drift++;
                } else {
                    os << "note: " << msg
                       << " — pre-v8 document, feedback counters "
                          "not comparable\n";
                }
            }
        }
        for (const ResultCell &cc : cf->cells) {
            if (!bf.find(cc.app, cc.config))
                os << "note: " << bf.name << "/" << cc.app << "/"
                   << cc.config << " is new (not in baseline)\n";
        }

        if (opt.wallTolerancePct < 0) {
            // determinism-only mode
        } else if (bf.jobs != cf->jobs) {
            os << "note: " << bf.name
               << ": wall-time check skipped (baseline ran with "
               << bf.jobs << " jobs, current with " << cf->jobs
               << ")\n";
        } else if (bf.wallMs > 0) {
            double limit =
                bf.wallMs * (1.0 + opt.wallTolerancePct / 100.0);
            double delta_pct =
                (cf->wallMs / bf.wallMs - 1.0) * 100.0;
            if (cf->wallMs > limit) {
                fail(bf.name + ": wall time regressed " +
                     std::to_string(delta_pct) + "% (baseline " +
                     std::to_string(bf.wallMs) + " ms, current " +
                     std::to_string(cf->wallMs) +
                     " ms, tolerance " +
                     std::to_string(opt.wallTolerancePct) + "%)");
            } else {
                os << "ok:   " << bf.name << ": wall "
                   << cf->wallMs << " ms vs baseline " << bf.wallMs
                   << " ms (" << (delta_pct >= 0 ? "+" : "")
                   << delta_pct << "%)"
                   << (figure_drift == 0 ? ", ticks identical"
                                         : "")
                   << "\n";
            }
        }
    }
    for (const ResultFigure &cf : current.figures) {
        if (!baseline.find(cf.name))
            os << "note: figure " << cf.name
               << " is new (not in baseline)\n";
    }

    os << (violations == 0 ? "compare: PASS"
                           : "compare: FAIL (" +
                                 std::to_string(violations) +
                                 " violation(s))")
       << "\n";
    return violations;
}

std::size_t
compareEventCounts(const ResultDoc &baseline,
                   const ResultDoc &current,
                   const EventCompareOptions &opt, std::ostream &os)
{
    // The contract (see compare.hh): structural counters are exact,
    // protocol counters carry tolerance, the miss-classification
    // split is informational only, and timing is ignored.
    static const char *const exactCounters[] = {"refs", "barriers"};
    static const char *const tolerantCounters[] = {
        "remote_fetches",     "relocations",
        "scoma_allocations",  "invalidations_sent",
        "net_messages"};
    static const char *const classCounters[] = {
        "cold_misses", "coherence_misses", "refetches"};

    std::size_t violations = 0;
    auto fail = [&](const std::string &msg) {
        violations++;
        os << "FAIL: " << msg << "\n";
    };

    for (const ResultFigure &bf : baseline.figures) {
        const ResultFigure *cf = current.find(bf.name);
        if (!cf) {
            fail(bf.name + ": figure missing from current results");
            continue;
        }
        if (!sameScale(bf.scale, cf->scale)) {
            fail(bf.name + ": scale changed (baseline " +
                 std::to_string(bf.scale) + ", current " +
                 std::to_string(cf->scale) +
                 "); event counts are not comparable");
            continue;
        }

        std::size_t figure_drift = 0;
        std::uint64_t worstDiff = 0;
        const char *worstName = nullptr;
        for (const ResultCell &bc : bf.cells) {
            const ResultCell *cc = cf->find(bc.app, bc.config);
            if (!cc) {
                fail(bf.name + "/" + bc.app + "/" + bc.config +
                     ": cell missing from current results");
                continue;
            }
            if (bc.counters.empty() || cc->counters.empty()) {
                os << "note: " << bf.name << "/" << bc.app << "/"
                   << bc.config
                   << ": no stats counters (v1 document?); "
                      "event check skipped\n";
                continue;
            }
            auto counterOf = [](const ResultCell &c,
                                const char *name,
                                std::uint64_t &out) {
                auto it = c.counters.find(name);
                if (it == c.counters.end())
                    return false;
                out = it->second;
                return true;
            };
            for (const char *name : exactCounters) {
                std::uint64_t bv = 0, cv = 0;
                if (!counterOf(bc, name, bv) ||
                    !counterOf(*cc, name, cv))
                    continue;
                if (bv != cv) {
                    fail(bf.name + "/" + bc.app + "/" + bc.config +
                         ": " + name + " drifted (baseline " +
                         std::to_string(bv) + ", current " +
                         std::to_string(cv) +
                         ") — structural counter, must be exact");
                    figure_drift++;
                }
            }
            for (const char *name : tolerantCounters) {
                std::uint64_t bv = 0, cv = 0;
                if (!counterOf(bc, name, bv) ||
                    !counterOf(*cc, name, cv))
                    continue;
                std::uint64_t diff = bv > cv ? bv - cv : cv - bv;
                std::uint64_t slack = std::max<std::uint64_t>(
                    opt.absSlack,
                    static_cast<std::uint64_t>(
                        static_cast<double>(bv) *
                        opt.tolerancePct / 100.0));
                if (diff > slack) {
                    fail(bf.name + "/" + bc.app + "/" + bc.config +
                         ": " + name + " diverged (baseline " +
                         std::to_string(bv) + ", current " +
                         std::to_string(cv) + ", slack " +
                         std::to_string(slack) + ")");
                    figure_drift++;
                } else if (diff > worstDiff) {
                    worstDiff = diff;
                    worstName = name;
                }
            }
            // The cold/coherence/refetch split of remote_fetches is
            // classified from directory state the instant the miss is
            // processed, so window reordering moves misses between
            // classes even when the gated total is equivalent. Report
            // large shifts for the record; they are not violations.
            for (const char *name : classCounters) {
                std::uint64_t bv = 0, cv = 0;
                if (!counterOf(bc, name, bv) ||
                    !counterOf(*cc, name, cv))
                    continue;
                std::uint64_t diff = bv > cv ? bv - cv : cv - bv;
                std::uint64_t slack = std::max<std::uint64_t>(
                    opt.absSlack,
                    static_cast<std::uint64_t>(
                        static_cast<double>(bv) *
                        opt.tolerancePct / 100.0));
                if (diff > slack)
                    os << "note: " << bf.name << "/" << bc.app << "/"
                       << bc.config << ": " << name
                       << " classification shifted (baseline " << bv
                       << ", current " << cv
                       << "); the total is gated via "
                          "remote_fetches\n";
            }
        }
        if (figure_drift == 0) {
            os << "ok:   " << bf.name << ": event counts equivalent";
            if (worstName)
                os << " (worst drift: " << worstName << " by "
                   << worstDiff << ")";
            os << "\n";
        }
    }
    for (const ResultFigure &cf : current.figures) {
        if (!baseline.find(cf.name))
            os << "note: figure " << cf.name
               << " is new (not in baseline)\n";
    }

    os << (violations == 0 ? "compare-events: PASS"
                           : "compare-events: FAIL (" +
                                 std::to_string(violations) +
                                 " violation(s))")
       << "\n";
    return violations;
}

//--------------------------------------------------------------------------
// Measured-performance (bench) artifacts
//--------------------------------------------------------------------------

const BenchCell *
BenchFigure::find(const std::string &app,
                  const std::string &config) const
{
    for (const BenchCell &c : cells)
        if (c.app == app && c.config == config)
            return &c;
    return nullptr;
}

const BenchFigure *
BenchDoc::find(const std::string &name) const
{
    for (const BenchFigure &f : figures)
        if (f.name == name)
            return &f;
    return nullptr;
}

BenchDoc
loadBench(const std::string &json_text)
{
    JsonValue doc = parseJson(json_text);
    BenchDoc out;
    out.schema = stringOr(doc.get("schema"), "");
    if (out.schema.rfind("rnuma-bench/", 0) != 0)
        throw std::runtime_error(
            "not an rnuma-bench document (schema '" + out.schema +
            "')");
    out.runs =
        static_cast<std::size_t>(numberOr(doc.get("runs"), 0));
    out.scale = numberOr(doc.get("scale"), 1.0);
    out.jobs =
        static_cast<std::size_t>(numberOr(doc.get("jobs"), 1));
    out.intraJobs = static_cast<std::size_t>(
        numberOr(doc.get("intra_jobs"), 1));
    const JsonValue *figures = doc.get("figures");
    if (!figures || !figures->isArray())
        throw std::runtime_error("missing 'figures' array");
    for (const JsonValue &jf : figures->array) {
        BenchFigure f;
        f.name = stringOr(jf.get("name"), "?");
        f.scale = numberOr(jf.get("scale"), out.scale);
        const JsonValue *cells = jf.get("cells");
        if (cells && cells->isArray()) {
            for (const JsonValue &jc : cells->array) {
                BenchCell c;
                c.app = stringOr(jc.get("app"), "?");
                c.config = stringOr(jc.get("config"), "?");
                std::string proto =
                    stringOr(jc.get("protocol"), "");
                if (!proto.empty())
                    c.protocol = canonicalProtocolId(proto);
                c.events = static_cast<std::uint64_t>(
                    numberOr(jc.get("events"), 0));
                c.ticks = static_cast<std::uint64_t>(
                    numberOr(jc.get("ticks"), 0));
                c.refs = static_cast<std::uint64_t>(
                    numberOr(jc.get("refs"), 0));
                c.eventsPerInstruction = numberOr(
                    jc.get("events_per_instruction"), 0);
                c.medianEventsPerSec = numberOr(
                    jc.get("median_events_per_sec"), 0);
                f.cells.push_back(std::move(c));
            }
        }
        out.figures.push_back(std::move(f));
    }
    return out;
}

void
writeBench(std::ostream &os, const BenchDoc &doc)
{
    JsonWriter w(os);
    w.beginObject();
    w.key("schema");
    w.value(doc.schema.empty() ? std::string("rnuma-bench/v1")
                               : doc.schema);
    w.key("runs");
    w.value(static_cast<std::uint64_t>(doc.runs));
    w.key("scale");
    w.value(doc.scale);
    w.key("jobs");
    w.value(static_cast<std::uint64_t>(doc.jobs));
    w.key("intra_jobs");
    w.value(static_cast<std::uint64_t>(doc.intraJobs));
    w.key("figures");
    w.beginArray();
    for (const BenchFigure &f : doc.figures) {
        w.beginObject();
        w.key("name");
        w.value(f.name);
        w.key("scale");
        w.value(f.scale);
        w.key("cells");
        w.beginArray();
        for (const BenchCell &c : f.cells) {
            w.beginObject();
            w.key("app");
            w.value(c.app);
            w.key("config");
            w.value(c.config);
            if (!c.protocol.empty()) {
                w.key("protocol");
                w.value(c.protocol);
            }
            w.key("events");
            w.value(c.events);
            w.key("ticks");
            w.value(c.ticks);
            w.key("refs");
            w.value(c.refs);
            w.key("events_per_instruction");
            w.value(c.eventsPerInstruction);
            w.key("median_events_per_sec");
            w.value(c.medianEventsPerSec);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

std::size_t
compareBench(const BenchDoc &baseline, const BenchDoc &current,
             const BenchCompareOptions &opt, std::ostream &os)
{
    std::size_t violations = 0;
    auto fail = [&](const std::string &msg) {
        violations++;
        os << "FAIL: " << msg << "\n";
    };
    if (baseline.runs != current.runs)
        os << "note: baseline medians are of " << baseline.runs
           << " runs, current of " << current.runs << "\n";
    if (baseline.intraJobs != current.intraJobs) {
        // Different engines schedule (and count) events differently;
        // nothing in the artifacts is comparable across them.
        fail("intra-jobs changed (baseline " +
             std::to_string(baseline.intraJobs) + ", current " +
             std::to_string(current.intraJobs) +
             "); bench counters are not comparable — re-record the "
             "baseline");
        os << "bench-compare: FAIL (1 violation(s))\n";
        return violations;
    }
    // Host throughput does not compare across differing sweep
    // concurrency; counters still must match.
    bool rateComparable = baseline.jobs == current.jobs;
    if (!rateComparable && opt.ratePct >= 0)
        os << "note: events/sec check skipped (baseline ran with "
           << baseline.jobs << " jobs, current with " << current.jobs
           << ")\n";

    for (const BenchFigure &bf : baseline.figures) {
        const BenchFigure *cf = current.find(bf.name);
        if (!cf) {
            fail(bf.name + ": figure missing from current bench");
            continue;
        }
        if (!sameScale(bf.scale, cf->scale)) {
            fail(bf.name + ": scale changed (baseline " +
                 std::to_string(bf.scale) + ", current " +
                 std::to_string(cf->scale) +
                 "); counters are not comparable — re-record the "
                 "baseline");
            continue;
        }
        std::size_t figure_drift = 0;
        double worst_drop = 0;
        for (const BenchCell &bc : bf.cells) {
            const BenchCell *cc = cf->find(bc.app, bc.config);
            if (!cc) {
                fail(bf.name + "/" + bc.app + "/" + bc.config +
                     ": cell missing from current bench");
                continue;
            }
            const char *counter = nullptr;
            std::uint64_t bv = 0, cv = 0;
            if (bc.events != cc->events) {
                counter = "events";
                bv = bc.events;
                cv = cc->events;
            } else if (bc.ticks != cc->ticks) {
                counter = "ticks";
                bv = bc.ticks;
                cv = cc->ticks;
            } else if (bc.refs != cc->refs) {
                counter = "refs";
                bv = bc.refs;
                cv = cc->refs;
            }
            if (counter) {
                fail(bf.name + "/" + bc.app + "/" + bc.config +
                     ": " + counter + " drifted (baseline " +
                     std::to_string(bv) + ", current " +
                     std::to_string(cv) + ")");
                figure_drift++;
            }
            if (rateComparable && opt.ratePct >= 0 &&
                bc.medianEventsPerSec > 0) {
                double drop_pct = (1.0 - cc->medianEventsPerSec /
                                             bc.medianEventsPerSec) *
                    100.0;
                if (drop_pct > worst_drop)
                    worst_drop = drop_pct;
                if (drop_pct > opt.ratePct) {
                    fail(bf.name + "/" + bc.app + "/" + bc.config +
                         ": median events/sec regressed " +
                         std::to_string(drop_pct) +
                         "% (baseline " +
                         std::to_string(bc.medianEventsPerSec) +
                         ", current " +
                         std::to_string(cc->medianEventsPerSec) +
                         ", tolerance " +
                         std::to_string(opt.ratePct) + "%)");
                }
            }
        }
        for (const BenchCell &cc : cf->cells) {
            if (!bf.find(cc.app, cc.config))
                os << "note: " << bf.name << "/" << cc.app << "/"
                   << cc.config << " is new (not in baseline)\n";
        }
        if (figure_drift == 0)
            os << "ok:   " << bf.name << ": counters identical"
               << (rateComparable && opt.ratePct >= 0
                       ? ", worst events/sec drop " +
                             std::to_string(worst_drop) + "%"
                       : "")
               << "\n";
    }
    for (const BenchFigure &cf : current.figures) {
        if (!baseline.find(cf.name))
            os << "note: figure " << cf.name
               << " is new (not in baseline)\n";
    }

    os << (violations == 0 ? "bench-compare: PASS"
                           : "bench-compare: FAIL (" +
                                 std::to_string(violations) +
                                 " violation(s))")
       << "\n";
    return violations;
}

} // namespace rnuma::driver
