#include "driver/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace rnuma::driver
{

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

void
JsonWriter::separate()
{
    if (after_key_) {
        after_key_ = false;
        return;
    }
    if (need_comma_)
        os_ << ",";
    if (depth_ > 0) {
        os_ << "\n";
        indent();
    }
}

void
JsonWriter::indent()
{
    for (int i = 0; i < depth_; ++i)
        os_ << "  ";
}

void
JsonWriter::beginObject()
{
    separate();
    os_ << "{";
    depth_++;
    need_comma_ = false;
}

void
JsonWriter::endObject()
{
    depth_--;
    os_ << "\n";
    indent();
    os_ << "}";
    need_comma_ = true;
}

void
JsonWriter::beginArray()
{
    separate();
    os_ << "[";
    depth_++;
    need_comma_ = false;
}

void
JsonWriter::endArray()
{
    depth_--;
    os_ << "\n";
    indent();
    os_ << "]";
    need_comma_ = true;
}

void
JsonWriter::key(const std::string &k)
{
    separate();
    os_ << jsonQuote(k) << ": ";
    need_comma_ = false;
    after_key_ = true;
}

void
JsonWriter::value(const std::string &v)
{
    separate();
    os_ << jsonQuote(v);
    need_comma_ = true;
}

void
JsonWriter::value(double v)
{
    separate();
    if (std::isfinite(v)) {
        char buf[64];
        // Round-trip precision: the compare gate re-parses emitted
        // documents and diffs fields like `scale` against in-process
        // values, so serialization must not truncate (%.17g prints
        // the shortest-ish form that parses back to the same double).
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        os_ << buf;
    } else {
        os_ << "null"; // NaN/inf are not representable in JSON
    }
    need_comma_ = true;
}

void
JsonWriter::value(std::uint64_t v)
{
    separate();
    os_ << v;
    need_comma_ = true;
}

void
JsonWriter::value(bool v)
{
    separate();
    os_ << (v ? "true" : "false");
    need_comma_ = true;
}

const JsonValue *
JsonValue::get(const std::string &k) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &kv : object)
        if (kv.first == k)
            return &kv.second;
    return nullptr;
}

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos != s.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("malformed JSON at byte " +
                                 std::to_string(pos) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            pos++;
    }

    char
    peek()
    {
        if (pos >= s.size())
            fail("unexpected end of input");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        pos++;
    }

    bool
    consumeWord(const char *w)
    {
        std::size_t n = std::string(w).size();
        if (s.compare(pos, n, w) == 0) {
            pos += n;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        JsonValue v;
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"':
            v.kind = JsonValue::Kind::String;
            v.str = parseString();
            return v;
          case 't':
            if (!consumeWord("true"))
                fail("bad literal");
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return v;
          case 'f':
            if (!consumeWord("false"))
                fail("bad literal");
            v.kind = JsonValue::Kind::Bool;
            v.boolean = false;
            return v;
          case 'n':
            if (!consumeWord("null"))
                fail("bad literal");
            v.kind = JsonValue::Kind::Null;
            return v;
          default:
            return parseNumber();
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos >= s.size())
                fail("unterminated string");
            char c = s[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= s.size())
                fail("unterminated escape");
            char e = s[pos++];
            switch (e) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                if (pos + 4 > s.size())
                    fail("short \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // The writer only emits \u for control characters;
                // represent anything else as '?' rather than
                // implementing full UTF-16 decoding.
                out += code < 0x80 ? static_cast<char>(code) : '?';
                break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        std::size_t start = pos;
        if (peek() == '-')
            pos++;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-'))
            pos++;
        if (pos == start)
            fail("expected a value");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        std::string tok = s.substr(start, pos - start);
        try {
            std::size_t used = 0;
            v.number = std::stod(tok, &used);
            // stod parses a valid prefix; anything left over means
            // the token itself was malformed (e.g. "1.2.3").
            if (used != tok.size())
                fail("bad number");
        } catch (const std::exception &) {
            fail("bad number");
        }
        return v;
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        skipWs();
        if (peek() == '}') {
            pos++;
            return v;
        }
        for (;;) {
            skipWs();
            std::string k = parseString();
            skipWs();
            expect(':');
            v.object.emplace_back(std::move(k), parseValue());
            skipWs();
            if (peek() == ',') {
                pos++;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        skipWs();
        if (peek() == ']') {
            pos++;
            return v;
        }
        for (;;) {
            v.array.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                pos++;
                continue;
            }
            expect(']');
            return v;
        }
    }

    const std::string &s;
    std::size_t pos = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace rnuma::driver
