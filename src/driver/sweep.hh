/**
 * @file
 * The declarative experiment-sweep description. A Sweep is a flat
 * list of Cells, each naming one (workload row, configuration
 * column) point of a paper figure or table: its Params, its
 * protocol, and a factory that builds a fresh Workload. Cells carry
 * everything they need, so the SweepRunner can execute them in any
 * order, concurrently, with no shared mutable state.
 */

#ifndef RNUMA_DRIVER_SWEEP_HH
#define RNUMA_DRIVER_SWEEP_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/params.hh"
#include "proto/registry.hh"
#include "workload/workload.hh"

namespace rnuma::driver
{

/**
 * Builds a fresh workload for one cell. Factories are
 * self-contained: they capture the generation Params (and scale and
 * seed) at sweep-construction time, so cells whose *run* Params vary
 * generation-relevant fields — e.g. Figure 7's block-cache axis,
 * which fmm's generator reads — can still share one identical trace
 * per row by sharing one factory.
 */
using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

/** A registry-app factory generating from @p gen at @p scale. */
WorkloadFactory appFactory(std::string app, const Params &gen,
                           double scale, std::uint64_t seed = 1);

/**
 * Content-address a generated workload: a key equal exactly when the
 * generator inputs — name, every Params field (via
 * Params::fingerprint()), scale, and seed — are equal, so cells with
 * the same key replay bit-identical streams. Used as Cell::workloadKey
 * by the SweepRunner's workload cache; @p name need not be a registry
 * app (the micro patterns and the eq3 adversary key themselves the
 * same way).
 */
std::string workloadCacheKey(const std::string &name,
                             const Params &gen, double scale,
                             std::uint64_t seed = 1);

/**
 * The environment conventions shared by the bench harnesses and the
 * sweep CLI: RNUMA_BENCH_SCALE (workload scale, default 1.0) and
 * RNUMA_BENCH_JOBS (worker threads, 0 = hardware concurrency,
 * default 1). Unparseable values warn and fall back to the default.
 */
double envScale();
std::size_t envJobs();

/** One independently runnable experiment point. */
struct Cell
{
    std::string app;    ///< row label (application / pattern name)
    std::string config; ///< column label, unique per app in a sweep
    /**
     * The system this cell runs, by value: usually a copy of a
     * registry entry (protocolSpec("rnuma")), but ad-hoc variants —
     * Figure 8's staticThresholdSpec(T) cells — need no global
     * registration. spec.id is what the JSON artifact records.
     */
    ProtocolSpec proto;
    Params params;      ///< the configuration the cell *runs* under
    WorkloadFactory make;
    /**
     * Content address of the workload `make` generates (see
     * workloadCacheKey). Cells sharing a key generate the workload
     * once per sweep and replay immutable snapshot views of it.
     * Empty means "don't cache": the cell always calls `make`.
     */
    std::string workloadKey;
    /**
     * Stable workload-registry id of the generator behind `make`
     * ("barnes", "zipf-serve", ...), recorded per cell in the JSON
     * artifact (schema v7). Distinct from `app`, which is a figure
     * row label and may carry sweep-axis decoration ("zipf-0.95").
     * Empty means unidentified (an ad-hoc factory).
     */
    std::string workload;
};

/** An ordered collection of cells with identity metadata. */
class Sweep
{
  public:
    explicit Sweep(std::string name, std::string title = "",
                   std::string paper_ref = "");

    /** Append a cell. Fatal on a duplicate (app, config) pair. */
    void add(Cell c);

    /**
     * Append a registry-app cell that also generates its workload
     * from @p p, running the registered protocol named @p proto
     * (fatal when unknown). Convenience for sweeps whose rows do not
     * vary generation-relevant Params across columns; otherwise
     * build one appFactory() per row and add() cells sharing it.
     */
    void addApp(const std::string &app, const std::string &config,
                const Params &p, const std::string &proto,
                double scale, std::uint64_t seed = 1);

    /**
     * Append the Figure 6 normalization baseline for @p app: CC-NUMA
     * with an infinite block cache, under config name "baseline".
     * The workload is generated from @p p itself (the finite
     * machine), like addApp.
     */
    void addBaseline(const std::string &app, const Params &p,
                     double scale, std::uint64_t seed = 1);

    /**
     * Set every cell's run Params to use the parallel intra-cell
     * engine with @p n partitions (a post-build override: workload
     * keys were already computed from the generation Params, so
     * snapshots stay shared with serial runs of the same figure).
     * Cells whose node count @p n does not divide — or exceeds —
     * keep the serial engine; returns the number of cells switched.
     */
    std::size_t applyIntraJobs(std::size_t n);

    const std::string &name() const { return name_; }
    const std::string &title() const { return title_; }
    const std::string &paperRef() const { return paper_ref_; }
    const std::vector<Cell> &cells() const { return cells_; }
    bool empty() const { return cells_.empty(); }
    std::size_t size() const { return cells_.size(); }

  private:
    std::string name_;
    std::string title_;
    std::string paper_ref_;
    std::vector<Cell> cells_;
};

} // namespace rnuma::driver

#endif // RNUMA_DRIVER_SWEEP_HH
