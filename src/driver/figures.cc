#include "driver/figures.hh"

#include <algorithm>
#include <chrono>
#include <memory>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/analytic_model.hh"
#include "mem/memory.hh"
#include "net/network.hh"
#include "net/registry.hh"
#include "proto/protocol.hh"
#include "proto/registry.hh"
#include "sim/runner.hh"
#include "workload/micro.hh"
#include "workload/registry.hh"
#include "workload/synthetic.hh"

namespace rnuma::driver
{

namespace
{

/**
 * Normalized time; NaN (rendered "nan", serialized null) when the
 * baseline simulated zero ticks — a degenerate one-reference
 * workload at a tiny scale is a flagged cell, not a panic. One
 * rule, shared with the comparison harness.
 */
double
norm(Tick x, Tick base)
{
    return normalizedTime(x, base);
}

/** Normalized execution time of (app, config) vs (app, "baseline"). */
double
normTo(const SweepResult &r, const std::string &app,
       const std::string &config, const std::string &base = "baseline")
{
    return norm(r.at(app, config).stats.ticks,
                r.at(app, base).stats.ticks);
}

//--------------------------------------------------------------------------
// Figure 5: the refetch CDF over remote pages (CC-NUMA, 32 KB cache).
//--------------------------------------------------------------------------

Sweep
buildFig5(const FigureOptions &opt)
{
    Sweep s("fig5");
    Params p = Params::base();
    for (const auto &app : appNames())
        s.addApp(app, "ccnuma", p, "ccnuma", opt.scale);
    return s;
}

int
renderFig5(const FigureRun &run, std::ostream &os)
{
    Table t({"app", "remote pages", "refetches", "top10%", "top20%",
             "top30%", "top50%", "top70%", "top90%"});
    for (const CellResult &c : run.result.cells) {
        auto dist = c.stats.refetchDistribution();
        std::uint64_t total = 0;
        for (auto v : dist)
            total += v;
        if (total == 0) {
            t.addRow({c.app, std::to_string(dist.size()), "0",
                      "-", "-", "-", "-", "-", "-"});
            continue;
        }
        auto cum_at = [&](double frac) {
            std::size_t n = static_cast<std::size_t>(
                static_cast<double>(dist.size()) * frac + 0.5);
            if (n == 0)
                n = 1;
            std::uint64_t cum = 0;
            for (std::size_t i = 0; i < n && i < dist.size(); ++i)
                cum += dist[i];
            return static_cast<double>(cum) /
                static_cast<double>(total);
        };
        t.addRow({c.app, std::to_string(dist.size()),
                  std::to_string(total), Table::pct(cum_at(0.1)),
                  Table::pct(cum_at(0.2)), Table::pct(cum_at(0.3)),
                  Table::pct(cum_at(0.5)), Table::pct(cum_at(0.7)),
                  Table::pct(cum_at(0.9))});
    }
    t.print(os);
    os << "\npaper shape: in four applications <10% of remote pages "
          "account for >80%\nof refetches; ~30% of pages cover "
          "~70% in all but radix, whose refetches\nare spread "
          "nearly uniformly; fft has none.\n";
    return 0;
}

//--------------------------------------------------------------------------
// Figure 6: CC-NUMA vs S-COMA vs R-NUMA, normalized to the infinite
// baseline.
//--------------------------------------------------------------------------

Sweep
buildFig6(const FigureOptions &opt)
{
    Sweep s("fig6");
    Params p = Params::base();
    for (const auto &app : appNames()) {
        s.addBaseline(app, p, opt.scale);
        s.addApp(app, "ccnuma", p, "ccnuma", opt.scale);
        s.addApp(app, "scoma", p, "scoma", opt.scale);
        s.addApp(app, "rnuma", p, "rnuma", opt.scale);
    }
    return s;
}

int
renderFig6(const FigureRun &run, std::ostream &os)
{
    Table t({"app", "CC-NUMA", "S-COMA", "R-NUMA", "best", "winner",
             "R-NUMA vs best"});
    double worst_gap = 0;
    std::string worst_app;
    for (const auto &app : appNames()) {
        double cc = normTo(run.result, app, "ccnuma");
        double sc = normTo(run.result, app, "scoma");
        double rn = normTo(run.result, app, "rnuma");
        double best = std::min(cc, sc);
        const char *winner = rn <= best
            ? "R-NUMA" : (cc < sc ? "CC-NUMA" : "S-COMA");
        double gap = rn / best - 1.0;
        if (gap > worst_gap) {
            worst_gap = gap;
            worst_app = app;
        }
        t.addRow({app, Table::num(cc), Table::num(sc),
                  Table::num(rn), Table::num(best), winner,
                  gap <= 0 ? "best" : "+" + Table::pct(gap)});
    }
    t.print(os);
    os << "\nworst R-NUMA gap vs best of CC/SC: +"
       << Table::pct(worst_gap) << " (" << worst_app
       << "); paper: at most +57%.\n"
       << "paper extremes: CC-NUMA up to 179% slower than "
          "S-COMA (moldyn-like);\nS-COMA up to 315% slower "
          "than CC-NUMA (fmm/radix-like).\n";
    return 0;
}

//--------------------------------------------------------------------------
// Figure 7: cache-size sensitivity.
//--------------------------------------------------------------------------

Sweep
buildFig7(const FigureOptions &opt)
{
    Sweep s("fig7");
    Params base = Params::base();
    Params inf = base;
    inf.infiniteBlockCache = true;
    Params cc1k = base;
    cc1k.blockCacheSize = 1024;
    Params rn_bigbc = base;
    rn_bigbc.rnumaBlockCacheSize = 32 * 1024;
    Params rn_bigpc = base;
    rn_bigpc.pageCacheSize = 40 * 1024 * 1024;
    const ProtocolSpec &cc = protocolSpec("ccnuma");
    const ProtocolSpec &rn = protocolSpec("rnuma");
    for (const auto &app : appNames()) {
        // One factory per row: fmm derives its anti-aliasing pool
        // from the block-cache geometry, so every cache-size column
        // must measure the identical trace generated from the base
        // machine (as the original harness did). The shared cache
        // key makes the runner generate that trace exactly once.
        WorkloadFactory make = appFactory(app, base, opt.scale);
        std::string key = workloadCacheKey(app, base, opt.scale);
        s.add({app, "baseline", cc, inf, make, key, app});
        s.add({app, "cc-b1k", cc, cc1k, make, key, app});
        s.add({app, "cc-b32k", cc, base, make, key, app});
        s.add({app, "rn-b128-p320k", rn, base, make, key, app});
        s.add({app, "rn-b32k-p320k", rn, rn_bigbc, make, key, app});
        s.add({app, "rn-b128-p40m", rn, rn_bigpc, make, key, app});
    }
    return s;
}

int
renderFig7(const FigureRun &run, std::ostream &os)
{
    Table t({"app", "CC b=1K", "CC b=32K", "RN b=128,p=320K",
             "RN b=32K,p=320K", "RN b=128,p=40M"});
    for (const auto &app : appNames()) {
        t.addRow({app,
                  Table::num(normTo(run.result, app, "cc-b1k")),
                  Table::num(normTo(run.result, app, "cc-b32k")),
                  Table::num(normTo(run.result, app,
                                    "rn-b128-p320k")),
                  Table::num(normTo(run.result, app,
                                    "rn-b32k-p320k")),
                  Table::num(normTo(run.result, app,
                                    "rn-b128-p40m"))});
    }
    t.print(os);
    os << "\npaper shape: em3d/fft perform well even at b=1K; "
          "barnes/moldyn/raytrace\nneed only a tiny block cache "
          "under R-NUMA (the page cache captures the\nreuse set); "
          "cholesky/fmm/radix degrade up to ~2x at b=1K under "
          "CC-NUMA;\nlu/ocean degrade up to ~7x. R-NUMA is "
          "insensitive to block-cache size\nunless the reuse set "
          "misses the page cache (fmm, radix, ocean improve\nwith "
          "b=32K or p=40M).\n";
    return 0;
}

//--------------------------------------------------------------------------
// Figure 8: relocation-threshold sensitivity, normalized to T=64.
// A policy sweep: every column runs the identical machine under an
// R-NUMA variant whose StaticThresholdPolicy pins T — the threshold
// is a property of the relocation policy, not of the hardware
// configuration, exactly the paper's framing of Figure 8.
//--------------------------------------------------------------------------

constexpr std::size_t fig8Thresholds[] = {16, 64, 256, 1024};

Sweep
buildFig8(const FigureOptions &opt)
{
    Sweep s("fig8");
    Params base = Params::base();
    for (const auto &app : appNames()) {
        WorkloadFactory make = appFactory(app, base, opt.scale);
        std::string key = workloadCacheKey(app, base, opt.scale);
        for (std::size_t T : fig8Thresholds) {
            s.add({app, "t" + std::to_string(T),
                   staticThresholdSpec(T), base, make, key, app});
        }
    }
    return s;
}

int
renderFig8(const FigureRun &run, std::ostream &os)
{
    Table t({"app", "T=16", "T=64", "T=256", "T=1024"});
    for (const auto &app : appNames()) {
        std::vector<std::string> row{app};
        for (std::size_t T : fig8Thresholds) {
            row.push_back(Table::num(
                normTo(run.result, app, "t" + std::to_string(T),
                       "t64")));
        }
        t.addRow(row);
    }
    t.print(os);
    os << "\npaper shape: performance varies by at most ~27% for "
          "most applications;\napplications with many reuse pages "
          "(cholesky, fmm, lu, ocean) gain up to\n~25% from the "
          "lower threshold of 16; communication-dominated "
          "applications\nare insensitive.\n";
    return 0;
}

//--------------------------------------------------------------------------
// Figure 9: page-fault / TLB overhead sensitivity.
//--------------------------------------------------------------------------

Sweep
buildFig9(const FigureOptions &opt)
{
    Sweep s("fig9");
    Params base = Params::base();
    Params inf = base;
    inf.infiniteBlockCache = true;
    Params soft = Params::soft();
    const ProtocolSpec &cc = protocolSpec("ccnuma");
    const ProtocolSpec &sc = protocolSpec("scoma");
    const ProtocolSpec &rn = protocolSpec("rnuma");
    for (const auto &app : appNames()) {
        WorkloadFactory make = appFactory(app, base, opt.scale);
        std::string key = workloadCacheKey(app, base, opt.scale);
        s.add({app, "baseline", cc, inf, make, key, app});
        s.add({app, "scoma", sc, base, make, key, app});
        s.add({app, "scoma-soft", sc, soft, make, key, app});
        s.add({app, "rnuma", rn, base, make, key, app});
        s.add({app, "rnuma-soft", rn, soft, make, key, app});
    }
    return s;
}

int
renderFig9(const FigureRun &run, std::ostream &os)
{
    Table t({"app", "S-COMA", "S-COMA-SOFT", "R-NUMA",
             "R-NUMA-SOFT", "SC soft/base", "RN soft/base"});
    for (const auto &app : appNames()) {
        Tick sc = run.result.at(app, "scoma").stats.ticks;
        Tick sc_soft = run.result.at(app, "scoma-soft").stats.ticks;
        Tick rn = run.result.at(app, "rnuma").stats.ticks;
        Tick rn_soft = run.result.at(app, "rnuma-soft").stats.ticks;
        Tick ideal = run.result.at(app, "baseline").stats.ticks;
        t.addRow({app, Table::num(norm(sc, ideal)),
                  Table::num(norm(sc_soft, ideal)),
                  Table::num(norm(rn, ideal)),
                  Table::num(norm(rn_soft, ideal)),
                  Table::num(norm(sc_soft, sc)),
                  Table::num(norm(rn_soft, rn))});
    }
    t.print(os);
    os << "\npaper shape: S-COMA is highly sensitive — execution "
          "time grows by up to\n~3x in more than half the "
          "applications under SOFT costs. R-NUMA grows by\nat most "
          "~25% in all but lu (~40%, whose replacements sit on the "
          "critical\npath due to load imbalance).\n";
    return 0;
}

//--------------------------------------------------------------------------
// Table 2: baseline operation costs (no workload cells: the check
// exercises the protocol engine directly against the paper's
// latencies).
//--------------------------------------------------------------------------

class HomeZero : public Placement
{
  public:
    NodeId homeOf(Addr) const override { return 0; }
};

class NullSink : public CoherenceSink
{
  public:
    bool invalidateNodeCopy(NodeId, Addr) override { return false; }
    void downgradeNodeCopy(NodeId, Addr) override {}
};

Sweep
buildTable2(const FigureOptions &)
{
    return Sweep("table2");
}

int
renderTable2(const FigureRun &, std::ostream &os)
{
    Params p = Params::base();

    // Exercise an actual remote fetch through the protocol engine,
    // over the interconnect Params selects (the constant model in
    // the base configuration).
    std::unique_ptr<NetworkModel> net = makeNetwork(p);
    HomeZero place;
    NullSink sink;
    std::vector<std::unique_ptr<Memory>> mems;
    std::vector<Memory *> ptrs;
    for (std::size_t i = 0; i < p.numNodes; ++i) {
        mems.push_back(std::make_unique<Memory>(p.dramAccess,
                                                p.blockSize));
        ptrs.push_back(mems.back().get());
    }
    GlobalProtocol proto(p, *net, place, sink, ptrs);
    Tick measured_remote =
        proto.fetch(0, 1, 0x1000, ReqType::GetS).done +
        2 * p.busLatency; // request + fill bus transactions
    Tick measured_local =
        proto.fetch(1000000, 0, 0x2000, ReqType::GetS).done -
        1000000 + p.busLatency;

    Table t({"operation", "paper (cycles)", "measured/modeled"});
    t.addRow({"SRAM access", "8", std::to_string(p.sramAccess)});
    t.addRow({"DRAM access", "56", std::to_string(p.dramAccess)});
    t.addRow({"local cache fill", "69",
              std::to_string(measured_local)});
    t.addRow({"remote fetch", "376",
              std::to_string(measured_remote)});
    t.addRow({"soft trap", "2000", std::to_string(p.softTrap)});
    t.addRow({"TLB shootdown", "200",
              std::to_string(p.tlbShootdown)});
    t.addRow({"page alloc/replace/relocate (0 blocks)", "~3000",
              std::to_string(p.pageOpCost(0))});
    t.addRow({"page alloc/replace/relocate (128 blocks)", "~11500",
              std::to_string(p.pageOpCost(p.blocksPerPage()))});

    Params soft = Params::soft();
    t.addRow({"SOFT soft trap (10us)", "4000",
              std::to_string(soft.softTrap)});
    t.addRow({"SOFT TLB shootdown (5us)", "2000",
              std::to_string(soft.tlbShootdown)});
    t.print(os);

    bool ok = measured_remote == 376 && measured_local == 69;
    os << "\n" << (ok ? "PASS" : "MISMATCH")
       << ": composed latencies vs Table 2\n";
    return ok ? 0 : 1;
}

//--------------------------------------------------------------------------
// Table 4: block refetches and page replacements.
//--------------------------------------------------------------------------

Sweep
buildTable4(const FigureOptions &opt)
{
    Sweep s("table4");
    Params p = Params::base();
    for (const auto &app : appNames()) {
        s.addApp(app, "ccnuma", p, "ccnuma", opt.scale);
        s.addApp(app, "scoma", p, "scoma", opt.scale);
        s.addApp(app, "rnuma", p, "rnuma", opt.scale);
    }
    return s;
}

int
renderTable4(const FigureRun &run, std::ostream &os)
{
    Table t({"app", "CC-NUMA RW pages", "R-NUMA refetches vs CC",
             "R-NUMA replacements vs S-COMA"});
    for (const auto &app : appNames()) {
        const RunStats &cc = run.result.at(app, "ccnuma").stats;
        const RunStats &sc = run.result.at(app, "scoma").stats;
        const RunStats &rn = run.result.at(app, "rnuma").stats;
        std::string rw = cc.refetches == 0
            ? "-" : Table::pct(cc.rwPageRefetchFraction());
        std::string refetch_ratio = cc.refetches == 0
            ? "-"
            : Table::pct(static_cast<double>(rn.refetches) /
                         static_cast<double>(cc.refetches));
        std::string repl_ratio = sc.scomaReplacements == 0
            ? "-"
            : Table::pct(static_cast<double>(rn.scomaReplacements) /
                         static_cast<double>(sc.scomaReplacements));
        t.addRow({app, rw, refetch_ratio, repl_ratio});
    }
    t.print(os);
    os << "\npaper: RW pages account for >80% of refetches in the "
          "full applications\n(barnes 97%, em3d 100%, fmm 99%, lu "
          "82%, moldyn 98%, ocean 96%), less in\nthe kernels "
          "(cholesky 28%, radix 15%) and raytrace (5%). R-NUMA "
          "cuts\nrefetches sharply except fmm (142%) and radix "
          "(125%), and virtually\neliminates replacements except "
          "cholesky (15%) and lu (70%).\n";
    return 0;
}

//--------------------------------------------------------------------------
// EQ 1-3: the worst-case competitive analysis plus the empirical
// adversary.
//--------------------------------------------------------------------------

Sweep
buildEq3(const FigureOptions &)
{
    Sweep s("eq3");
    // The adversary stream is threshold-16 on a reduced problem (the
    // full threshold of 64 would need very long streams; the
    // structure is threshold-independent), so it does not scale.
    Params sp = Params::base();
    sp.relocationThreshold = 16;
    WorkloadFactory adversary = [sp] {
        return std::unique_ptr<Workload>(
            makeAdversary(sp, 24, sp.relocationThreshold + 1));
    };
    Params base = sp;
    base.infiniteBlockCache = true;
    std::string key = workloadCacheKey("adversary", sp, 1.0);
    s.add({"adversary", "baseline", protocolSpec("ccnuma"), base,
           adversary, key, "adversary"});
    s.add({"adversary", "ccnuma", protocolSpec("ccnuma"), sp,
           adversary, key, "adversary"});
    s.add({"adversary", "scoma", protocolSpec("scoma"), sp,
           adversary, key, "adversary"});
    s.add({"adversary", "rnuma", protocolSpec("rnuma"), sp,
           adversary, key, "adversary"});
    return s;
}

int
renderEq3(const FigureRun &run, std::ostream &os)
{
    Params p = Params::base();
    AnalyticModel model(ModelParams::fromSystem(p, 64));

    os << "Analytic model (base system, 64 blocks moved per "
          "page op):\n"
       << "  C_refetch  = " << model.params().cRefetch << "\n"
       << "  C_allocate = " << model.params().cAllocate << "\n"
       << "  C_relocate = " << model.params().cRelocate << "\n\n";

    Table t({"threshold T", "EQ1: worst vs CC-NUMA",
             "EQ2: worst vs S-COMA"});
    for (double T : {4.0, 16.0, 19.0, 64.0, 256.0, 1024.0}) {
        t.addRow({Table::num(T, 0),
                  Table::num(model.worstVsCCNuma(T)),
                  Table::num(model.worstVsSComa(T))});
    }
    t.print(os);
    os << "\nEQ3 optimal threshold T* = "
       << Table::num(model.optimalThreshold())
       << ", bound at T* = 2 + C_rel/C_alloc = "
       << Table::num(model.boundAtOptimal())
       << " (paper: between 2 and 3)\n\n";

    os << "Empirical adversary (threshold 16, pages relocate then "
          "die):\n";
    double o_cc = normTo(run.result, "adversary", "ccnuma") - 1.0;
    double o_sc = normTo(run.result, "adversary", "scoma") - 1.0;
    double o_rn = normTo(run.result, "adversary", "rnuma") - 1.0;
    Table e({"protocol", "normalized time", "overhead vs ideal"});
    e.addRow({"CC-NUMA", Table::num(o_cc + 1.0), Table::num(o_cc)});
    e.addRow({"S-COMA", Table::num(o_sc + 1.0), Table::num(o_sc)});
    e.addRow({"R-NUMA", Table::num(o_rn + 1.0), Table::num(o_rn)});
    e.print(os);

    double best = std::min(o_cc, o_sc);
    double ratio = best > 0 ? o_rn / best : 0;
    os << "\nR-NUMA overhead vs best of CC/SC: " << Table::num(ratio)
       << "x (bounded by a small constant; the paper's bound at T* "
          "is "
       << Table::num(model.boundAtOptimal()) << "x)\n";
    return 0;
}

//--------------------------------------------------------------------------
// Ablation: the prior-owner (read-write refetch) directory state.
//--------------------------------------------------------------------------

Sweep
buildAblation(const FigureOptions &opt)
{
    Sweep s("ablation");
    Params full = Params::base();
    Params ablated = full;
    ablated.priorOwnerState = false;
    for (const auto &app : appNames()) {
        s.addBaseline(app, full, opt.scale);
        s.addApp(app, "full", full, "rnuma", opt.scale);
        s.addApp(app, "ablated", ablated, "rnuma", opt.scale);
    }
    return s;
}

int
renderAblation(const FigureRun &run, std::ostream &os)
{
    Table t({"app", "R-NUMA (full)", "R-NUMA (no prior state)",
             "slowdown", "relocations full/ablated"});
    for (const auto &app : appNames()) {
        const RunStats &a = run.result.at(app, "full").stats;
        const RunStats &b = run.result.at(app, "ablated").stats;
        Tick ideal = run.result.at(app, "baseline").stats.ticks;
        t.addRow({app, Table::num(norm(a.ticks, ideal)),
                  Table::num(norm(b.ticks, ideal)),
                  Table::num(norm(b.ticks, a.ticks)),
                  std::to_string(a.relocations) + "/" +
                      std::to_string(b.relocations)});
    }
    t.print(os);
    os << "\nreading the result: read-reuse pages are still detected "
          "through the stale\nsharer bits (silent read-only "
          "evictions), so most applications are\nunaffected — but "
          "radix, whose reuse is pure write scatter through "
          "the\ntiny block cache, loses every relocation without "
          "the prior-owner state.\nThat is precisely why Section "
          "3.1 adds the extra directory state for\nread-write "
          "blocks.\n";
    return 0;
}

//--------------------------------------------------------------------------
// Micro: the four canonical access patterns under all protocols
// (not a paper figure; the library's analyzable sanity sweep).
//--------------------------------------------------------------------------

Sweep
buildMicro(const FigureOptions &opt)
{
    Sweep s("micro");
    Params p = Params::base();
    double scale = opt.scale;
    struct Pattern
    {
        const char *name;
        WorkloadFactory make;
    };
    const Pattern patterns[] = {
        {"private-loop", [p, scale] {
             return std::unique_ptr<Workload>(makePrivateLoop(
                 p, 4, scaled(20, scale)));
         }},
        {"hot-reuse", [p, scale] {
             return std::unique_ptr<Workload>(makeHotRemoteReuse(
                 p, scaled(120, scale, 2), 8));
         }},
        {"producer-consumer", [p, scale] {
             return std::unique_ptr<Workload>(makeProducerConsumer(
                 p, scaled(32, scale, 1), 10));
         }},
        {"rw-sharing", [p, scale] {
             return std::unique_ptr<Workload>(
                 makeRwSharing(p, scaled(400, scale, 8)));
         }},
    };
    for (const Pattern &pat : patterns) {
        Params base = p;
        base.infiniteBlockCache = true;
        std::string key = workloadCacheKey(pat.name, p, scale);
        s.add({pat.name, "baseline", protocolSpec("ccnuma"), base,
               pat.make, key, pat.name});
        s.add({pat.name, "ccnuma", protocolSpec("ccnuma"), p,
               pat.make, key, pat.name});
        s.add({pat.name, "scoma", protocolSpec("scoma"), p,
               pat.make, key, pat.name});
        s.add({pat.name, "rnuma", protocolSpec("rnuma"), p,
               pat.make, key, pat.name});
    }
    return s;
}

int
renderMicro(const FigureRun &run, std::ostream &os)
{
    Table t({"pattern", "CC-NUMA", "S-COMA", "R-NUMA", "winner"});
    for (const char *pat : {"private-loop", "hot-reuse",
                            "producer-consumer", "rw-sharing"}) {
        double cc = normTo(run.result, pat, "ccnuma");
        double sc = normTo(run.result, pat, "scoma");
        double rn = normTo(run.result, pat, "rnuma");
        const char *winner = rn <= std::min(cc, sc)
            ? "R-NUMA" : (cc < sc ? "CC-NUMA" : "S-COMA");
        t.addRow({pat, Table::num(cc), Table::num(sc),
                  Table::num(rn), winner});
    }
    t.print(os);
    os << "\nexpected shape: all protocols tie on private-loop; "
          "S-COMA and R-NUMA win\nhot-reuse (the reuse set lives in "
          "the page cache); CC-NUMA wins\nproducer-consumer (pure "
          "coherence traffic, S-COMA allocates for nothing);\n"
          "nobody helps rw-sharing (Section 1: migration and "
          "replication both fail).\n";
    return 0;
}

//--------------------------------------------------------------------------
// Policies: the registry-driven relocation-policy sweep (not a paper
// figure). Every selected protocol — by default every registered one
// — runs two microworkloads: the canonical in-cache reuse pattern
// (the pattern the relocation decision exists for) and an
// eviction-heavy pattern whose reuse set exceeds the page-cache
// frame budget, so relocated pages keep falling out and
// re-qualifying — the regime where the policies actually separate
// (at small scales the caches absorb hot-reuse and every policy
// ties). Both normalize to the infinite baseline. This is the
// harness that makes a new ProtocolSpec registration measurable
// with zero further wiring, and the CLI's --protocol flag narrows
// the selection by name.
//--------------------------------------------------------------------------

Sweep
buildPolicies(const FigureOptions &opt)
{
    Sweep s("policies");
    Params p = Params::base();
    double scale = opt.scale;
    struct Pattern
    {
        const char *name;
        WorkloadFactory make;
    };
    // The eviction cell derives its page count from the frame
    // budget, not from the scale alone: the reuse set must overflow
    // the page cache at every scale (the small-scale tie was
    // exactly this cell degenerating into in-cache reuse).
    std::size_t frames = p.pageCacheFrames();
    const Pattern patterns[] = {
        {"hot-reuse", [p, scale] {
             return std::unique_ptr<Workload>(makeHotRemoteReuse(
                 p, scaled(120, scale, 2), 8));
         }},
        // The overshoot and sweep floors are where the policies
        // separate strictly at CI scale (0.1): fewer ping-pong
        // pages or rounds and the escalating/hysteresis re-entry
        // bars never get exercised past their first doubling.
        {"evict-storm", [p, scale, frames] {
             return std::unique_ptr<Workload>(makeEvictionStorm(
                 p, frames + scaled(80, scale, 40),
                 scaled(16, scale, 8)));
         }},
    };
    std::vector<std::string> names = opt.protocols;
    if (names.empty()) {
        for (const ProtocolSpec *spec :
             ProtocolRegistry::global().all())
            names.push_back(spec->id);
    }
    // Selections canonicalize to spec ids and dedupe, so repeated
    // or alias spellings (--protocol rnuma --protocol R-NUMA) run
    // the protocol once instead of tripping the duplicate-cell
    // check.
    std::vector<std::string> ids;
    for (const std::string &name : names) {
        const std::string &id = protocolSpec(name).id;
        if (std::find(ids.begin(), ids.end(), id) == ids.end())
            ids.push_back(id);
    }
    Params inf = p;
    inf.infiniteBlockCache = true;
    for (const Pattern &pat : patterns) {
        std::string key = workloadCacheKey(pat.name, p, scale);
        s.add({pat.name, "baseline", protocolSpec("ccnuma"), inf,
               pat.make, key, pat.name});
        for (const std::string &id : ids) {
            s.add({pat.name, id, protocolSpec(id), p, pat.make, key,
                   pat.name});
        }
    }
    return s;
}

int
renderPolicies(const FigureRun &run, std::ostream &os)
{
    Table t({"pattern", "protocol", "policy", "normalized time",
             "relocations", "page-cache hits", "refetches"});
    Params p = Params::base();
    for (const CellResult &c : run.result.cells) {
        if (c.config == "baseline")
            continue;
        const ProtocolSpec *spec = findProtocolSpec(c.protocol);
        std::string policy = spec && spec->makePolicy
            ? spec->makePolicy(p)->describe() : "-";
        t.addRow({c.app,
                  c.protocolName.empty() ? c.protocol
                                         : c.protocolName,
                  policy,
                  Table::num(normTo(run.result, c.app, c.config)),
                  std::to_string(c.stats.relocations),
                  std::to_string(c.stats.pageCacheHits),
                  std::to_string(c.stats.refetches)});
    }
    t.print(os);
    os << "\nreading the result: on hot-reuse the hybrid systems "
          "relocate the reuse set\ninto the page cache and converge "
          "near the baseline; CC-NUMA keeps\nrefetching through the "
          "tiny block cache; S-COMA is already all page\ncache. On "
          "evict-storm the reuse set overflows the page cache, so "
          "the\nstatic rule ping-pongs relocations, hysteresis "
          "suppresses re-entry, and\nthe adaptive rule lands in "
          "between — the relocation counts separate\nstrictly. "
          "Register a new ProtocolSpec (docs/PROTOCOLS.md) and it "
          "appears\nhere by name.\n";
    return 0;
}

//--------------------------------------------------------------------------
// Scaling: grow the machine 8 -> 128 nodes across interconnect
// models x directory formats (not a paper figure; the redesign's
// capstone sweep). Every node's first CPU repeatedly reads the page
// set owned by its antipodal partner, so interconnect distance and
// directory population both grow with the node count — the regime
// where the paper's fixed-latency network and full-map directory
// stop being realistic. Cells pair each selected network model
// (default {constant, mesh-2d}; the CLI's repeatable --network flag
// overrides) with the full-map and limited-pointer-4 sharer-set
// formats under R-NUMA. The shift pattern has exactly one remote
// reader per page, so limited-pointer never overflows and the
// directory-format axis is purely a storage-cost axis: per-cell
// ticks must match across formats at every node count.
//--------------------------------------------------------------------------

Sweep
buildScaling(const FigureOptions &opt)
{
    Sweep s("scaling");
    double scale = opt.scale;
    std::vector<std::string> names = opt.networks;
    if (names.empty())
        names = {"constant", "mesh-2d"};
    // Selections canonicalize to spec ids and dedupe, like the
    // policies sweep does for protocols (--network mesh --network
    // "2D mesh" runs the mesh once).
    std::vector<std::string> nets;
    for (const std::string &name : names) {
        const std::string &id = networkSpec(name).id;
        if (std::find(nets.begin(), nets.end(), id) == nets.end())
            nets.push_back(id);
    }
    const SharerFormat formats[] = {SharerFormat::FullMap,
                                    SharerFormat::LimitedPointer};
    for (std::size_t nodes : {8, 16, 32, 64, 128}) {
        Params gen = Params::base();
        gen.numNodes = nodes;
        // The workload depends only on the machine geometry: one
        // generation (and one cache entry) per node count, shared
        // by every network x directory cell at that size.
        std::size_t pages = scaled(4, scale, 1);
        std::size_t sweeps = scaled(4, scale, 2);
        WorkloadFactory make = [gen, pages, sweeps] {
            return std::unique_ptr<Workload>(
                makeScalingShift(gen, pages, sweeps));
        };
        std::string key =
            workloadCacheKey("scaling-shift", gen, scale);
        for (const std::string &net : nets) {
            for (SharerFormat fmt : formats) {
                Params p = gen;
                p.networkModel = net;
                p.dirFormat = fmt;
                std::string config = "n" + std::to_string(nodes) +
                    "/" + net + "/" + p.directoryId();
                s.add({"shift", config, protocolSpec("rnuma"), p,
                       make, key, "scaling-shift"});
            }
        }
    }
    return s;
}

int
renderScaling(const FigureRun &run, std::ostream &os)
{
    Table t({"nodes", "network", "directory", "ticks", "norm",
             "net msgs", "ni+link wait", "dir entries",
             "dir bits/entry"});
    // Cells arrive in build order: all of one node count, then the
    // next, each size leading with its first-network/full-map corner
    // — the within-size normalization baseline.
    std::string curSize;
    Tick base = 0;
    double fmBits = 0, lpBits = 0;
    for (const CellResult &c : run.result.cells) {
        std::string size = c.config.substr(0, c.config.find('/'));
        if (size != curSize) {
            curSize = size;
            base = c.stats.ticks;
            fmBits = lpBits = 0;
        }
        double bitsPerEntry = c.stats.dirEntries
            ? static_cast<double>(c.stats.dirBits) /
                static_cast<double>(c.stats.dirEntries)
            : 0.0;
        if (c.directory == "full-map")
            fmBits = bitsPerEntry;
        else if (c.directory.rfind("limited-pointer", 0) == 0)
            lpBits = bitsPerEntry;
        t.addRow({size, c.network, c.directory,
                  std::to_string(c.stats.ticks),
                  Table::num(norm(c.stats.ticks, base)),
                  std::to_string(c.stats.net.totalMessages()),
                  std::to_string(c.stats.niWait),
                  std::to_string(c.stats.dirEntries),
                  Table::num(bitsPerEntry)});
    }
    t.print(os);
    // The measurable O(sharers)-vs-O(nodes) claim: at the largest
    // machine, a full-map entry carries 2N+owner bits while a
    // limited-pointer entry carries 2(i*ceil(log2 N)+1)+owner — the
    // formats cross near N=16 and diverge linearly beyond it.
    int status = 0;
    if (fmBits > 0 && lpBits > 0 && lpBits >= fmBits) {
        os << "\nMISMATCH: limited-pointer entries ("
           << Table::num(lpBits) << " bits) not smaller than "
           << "full-map (" << Table::num(fmBits) << " bits) at "
           << curSize << " nodes\n";
        status = 1;
    }
    os << "\nreading the result: under the constant model ticks "
          "barely move with machine\nsize — every remote fetch "
          "costs the same flat wire — while the 2D mesh\ncharges "
          "dimension-ordered hops plus per-link queueing, so the "
          "antipodal\nshift slows as the diameter grows. Within a "
          "size the directory format\nnever changes ticks (one "
          "reader per page: limited-pointer stays exact);\nit only "
          "changes storage — full-map entries grow as 2N bits, "
          "limited-\npointer as 2(i*log2 N + 1): O(sharers), not "
          "O(nodes).\n";
    return status;
}

//--------------------------------------------------------------------------
// Serving: the Zipf-skew sweep over every registered protocol, on
// the paper's base machine and on a 64-node 2D mesh (not a paper
// figure; the Section 1 motivation made measurable). Skew theta is
// the axis: at theta=0.95 a few hot pages dominate — the regime
// where relocation/replication pays — while at theta=0.2 the load
// spreads nearly uniformly and behaves like capacity traffic. The
// Section-5-style claim under test: R-NUMA stays within a small
// envelope of the best base protocol at *every* skew, on both
// machines.
//--------------------------------------------------------------------------

/** The serving figure's skew axis (stable row-label spellings). */
const char *const servingThetas[] = {"0.2", "0.6", "0.95"};

/** Canonicalize + dedupe a --protocol selection (default: all). */
std::vector<std::string>
selectedProtocolIds(const FigureOptions &opt)
{
    std::vector<std::string> names = opt.protocols;
    if (names.empty()) {
        for (const ProtocolSpec *spec :
             ProtocolRegistry::global().all())
            names.push_back(spec->id);
    }
    std::vector<std::string> ids;
    for (const std::string &name : names) {
        const std::string &id = protocolSpec(name).id;
        if (std::find(ids.begin(), ids.end(), id) == ids.end())
            ids.push_back(id);
    }
    return ids;
}

Sweep
buildServing(const FigureOptions &opt)
{
    Sweep s("serving");
    double scale = opt.scale;
    std::vector<std::string> ids = selectedProtocolIds(opt);

    struct MachineAxis
    {
        const char *suffix; ///< row-label decoration ("" = base)
        Params gen;         ///< generation + run geometry
    };
    Params base = Params::base();
    Params mesh64 = Params::base();
    mesh64.numNodes = 64;
    mesh64.networkModel = "mesh-2d";
    const MachineAxis machines[] = {{"", base}, {"-m64", mesh64}};

    for (const MachineAxis &m : machines) {
        for (const char *theta : servingThetas) {
            std::string row = std::string("zipf-") + theta +
                              m.suffix;
            std::string options = std::string("theta=") + theta;
            Params gen = m.gen;
            WorkloadFactory make = [gen, scale, options] {
                return makeWorkload("zipf-serve", gen, scale, 1,
                                    options);
            };
            // theta is a generator option, not a Params field, so it
            // must participate in the cache key by name.
            std::string key = workloadCacheKey(
                "zipf-serve/" + options, gen, scale);
            Params inf = gen;
            inf.infiniteBlockCache = true;
            s.add({row, "baseline", protocolSpec("ccnuma"), inf,
                   make, key, "zipf-serve"});
            for (const std::string &id : ids) {
                s.add({row, id, protocolSpec(id), gen, make, key,
                       "zipf-serve"});
            }
        }
    }
    return s;
}

int
renderServing(const FigureRun &run, std::ostream &os)
{
    Table t({"machine", "theta", "protocol", "normalized time",
             "relocations", "page-cache hits", "refetches"});
    double worst_gap = 0;
    std::string worst_row;
    for (const CellResult &c : run.result.cells) {
        if (c.config == "baseline")
            continue;
        bool mesh = c.app.size() >= 4 &&
                    c.app.rfind("-m64") == c.app.size() - 4;
        std::string theta = c.app.substr(
            5, c.app.size() - 5 - (mesh ? 4 : 0));
        t.addRow({mesh ? "mesh-2d/64" : "base/8", theta,
                  c.protocolName.empty() ? c.protocol
                                         : c.protocolName,
                  Table::num(normTo(run.result, c.app, c.config)),
                  std::to_string(c.stats.relocations),
                  std::to_string(c.stats.pageCacheHits),
                  std::to_string(c.stats.refetches)});
        if (c.protocol == "rnuma") {
            double cc = normTo(run.result, c.app, "ccnuma");
            double sc = normTo(run.result, c.app, "scoma");
            double rn = normTo(run.result, c.app, "rnuma");
            double gap = rn / std::min(cc, sc) - 1.0;
            if (gap > worst_gap) {
                worst_gap = gap;
                worst_row = c.app;
            }
        }
    }
    t.print(os);
    os << "\nworst R-NUMA gap vs best of CC/SC across the skew "
          "sweep: ";
    if (worst_gap <= 0)
        os << "none (R-NUMA best everywhere)";
    else
        os << "+" << Table::pct(worst_gap) << " (" << worst_row
           << ")";
    os << "\nSection-5-style envelope: the paper bounds R-NUMA "
          "within +57% of the best\nbase protocol on the SPLASH-2 "
          "suite; serving skew should behave the same\nway — high "
          "theta rewards relocating the hot head, low theta "
          "degenerates\ntoward uniform capacity traffic, and the "
          "reactive split tracks both.\n";
    return 0;
}

//--------------------------------------------------------------------------
// Churn: the workload-parametric serving sweep (phase-shift and
// tenants by default; the CLI's repeatable --workload flag selects
// any registered generator). Every selected workload runs the
// baseline plus every selected protocol on the base machine — the
// relocation-vs-eviction churn harness ROADMAP item 4's policy work
// runs its candidates through.
//--------------------------------------------------------------------------

Sweep
buildChurn(const FigureOptions &opt)
{
    Sweep s("churn");
    Params p = Params::base();
    double scale = opt.scale;
    std::vector<std::string> wls = opt.workloads;
    if (wls.empty())
        wls = {"phase-shift", "tenants"};
    // Canonicalize to registry ids and dedupe, like the policies
    // sweep does for protocols.
    std::vector<std::string> workloads;
    for (const std::string &name : wls) {
        const std::string &id = workloadSpec(name).id;
        if (std::find(workloads.begin(), workloads.end(), id) ==
            workloads.end())
            workloads.push_back(id);
    }
    std::vector<std::string> ids = selectedProtocolIds(opt);
    Params inf = p;
    inf.infiniteBlockCache = true;
    for (const std::string &wl : workloads) {
        WorkloadFactory make = [wl, p, scale] {
            return makeWorkload(wl, p, scale, 1);
        };
        std::string key = workloadCacheKey(wl, p, scale);
        s.add({wl, "baseline", protocolSpec("ccnuma"), inf, make,
               key, wl});
        for (const std::string &id : ids)
            s.add({wl, id, protocolSpec(id), p, make, key, wl});
    }
    return s;
}

int
renderChurn(const FigureRun &run, std::ostream &os)
{
    Table t({"workload", "protocol", "normalized time",
             "relocations", "scoma allocations", "page-cache hits",
             "refetches"});
    for (const CellResult &c : run.result.cells) {
        if (c.config == "baseline")
            continue;
        t.addRow({c.app,
                  c.protocolName.empty() ? c.protocol
                                         : c.protocolName,
                  Table::num(normTo(run.result, c.app, c.config)),
                  std::to_string(c.stats.relocations),
                  std::to_string(c.stats.scomaAllocations),
                  std::to_string(c.stats.pageCacheHits),
                  std::to_string(c.stats.refetches)});
    }
    t.print(os);
    os << "\nreading the result: phase-shift rotates a cache-sized "
          "window every phase,\nso pages relocated in one phase "
          "fall cold in the next — the policies that\nsuppress or "
          "adapt re-entry keep the relocation count (and the page-"
          "op\ncost) down. tenants interleaves competing hot sets "
          "per node, so the page\ncache is a shared, contended "
          "resource: watch the hit counts for fairness.\nSelect "
          "any registered generator with --workload (see "
          "--list-workloads).\n";
    return 0;
}

//--------------------------------------------------------------------------
// Storm-cliff: the fmm relocation-storm regression guard (not a
// paper figure). On a pathologically small 4-frame page cache, fmm's
// reuse set relocates, evicts, re-qualifies and relocates again —
// the ~28x tick cliff first surfaced while tuning the hysteresis
// policy. Registering it as a figure keeps the cliff quantified on
// every run: the static policy's storm, and how far the hysteresis
// and adaptive policies climb out of it.
//--------------------------------------------------------------------------

Sweep
buildStormCliff(const FigureOptions &opt)
{
    Sweep s("storm-cliff");
    Params base = Params::base();
    Params inf = base;
    inf.infiniteBlockCache = true;
    // The starved machine: 4 page-cache frames.
    Params f4 = base;
    f4.pageCacheSize = 4 * base.pageSize;
    // One factory and key for every column, generated from the base
    // machine (fmm reads the block-cache geometry; the fig7
    // convention), so each cell measures the identical trace.
    WorkloadFactory make = appFactory("fmm", base, opt.scale);
    std::string key = workloadCacheKey("fmm", base, opt.scale);
    s.add({"fmm", "baseline", protocolSpec("ccnuma"), inf, make,
           key, "fmm"});
    s.add({"fmm", "rnuma", protocolSpec("rnuma"), base, make, key,
           "fmm"});
    s.add({"fmm", "rnuma-f4", protocolSpec("rnuma"), f4, make, key,
           "fmm"});
    s.add({"fmm", "rnuma-hysteresis-f4",
           protocolSpec("rnuma-hysteresis"), f4, make, key, "fmm"});
    s.add({"fmm", "rnuma-adaptive-f4",
           protocolSpec("rnuma-adaptive"), f4, make, key, "fmm"});
    return s;
}

int
renderStormCliff(const FigureRun &run, std::ostream &os)
{
    Table t({"config", "frames", "ticks", "normalized time",
             "relocations", "scoma evictions", "refetches"});
    Params base = Params::base();
    for (const CellResult &c : run.result.cells) {
        bool starved = c.config.size() >= 3 &&
                       c.config.rfind("-f4") == c.config.size() - 3;
        t.addRow({c.config,
                  std::to_string(starved ? 4
                                         : base.pageCacheFrames()),
                  std::to_string(c.stats.ticks),
                  Table::num(normTo(run.result, "fmm", c.config)),
                  std::to_string(c.stats.relocations),
                  std::to_string(c.stats.scomaReplacements),
                  std::to_string(c.stats.refetches)});
    }
    t.print(os);
    const RunStats &healthy = run.result.at("fmm", "rnuma").stats;
    const RunStats &starved = run.result.at("fmm", "rnuma-f4").stats;
    double cliff = healthy.ticks
        ? static_cast<double>(starved.ticks) /
              static_cast<double>(healthy.ticks)
        : 0.0;
    os << "\nstatic-policy cliff: the 4-frame machine runs "
       << Table::num(cliff) << "x the healthy machine's ticks ("
       << starved.relocations << " vs " << healthy.relocations
       << " relocations).\nThe relocate/evict/re-qualify storm is "
          "the worst case the hysteresis and\nadaptive policies "
          "exist for — their rows above show how far each "
          "climbs\nout of the cliff on the identical trace.\n";
    return 0;
}

//--------------------------------------------------------------------------
// Feedback: phase-shift step x every relocation policy. The
// phase-shift generator rotates its hot window by pages/phases pages
// per phase, so sweeping the phase count varies the churn *step* —
// from full-window replacement (pages/phases >= window) down to
// gentle drift — on a fixed page pool. Each step runs the baseline
// plus every selected protocol; the v8 residency-feedback counters
// (evictions_zero_hit / evicted_page_hits) make visible what the
// utility-aware policies react to: how many of each policy's
// evictions were pure ping-pong.
//--------------------------------------------------------------------------

/**
 * The step axis: phase counts for the generator's default 240-page
 * pool. 3 phases = 80-page steps (the window replaced wholesale),
 * 6 = the churn figure's default, 12 = 20-page drift.
 */
const char *const feedbackPhases[] = {"3", "6", "12"};

Sweep
buildFeedback(const FigureOptions &opt)
{
    Sweep s("feedback");
    Params p = Params::base();
    double scale = opt.scale;
    std::vector<std::string> ids = selectedProtocolIds(opt);
    Params inf = p;
    inf.infiniteBlockCache = true;
    for (const char *phases : feedbackPhases) {
        std::string row = std::string("shift-p") + phases;
        // A fixed sweep count (not the generator's scaled default):
        // separation needs residencies long enough for capacity
        // refetches to cross the thresholds at *every* scale — the
        // CI ordering check runs this figure at scale 0.1.
        std::string options =
            std::string("phases=") + phases + ",sweeps=96";
        WorkloadFactory make = [p, scale, options] {
            return makeWorkload("phase-shift", p, scale, 1, options);
        };
        // The phase count is a generator option, not a Params field,
        // so it must participate in the cache key by name (the
        // serving figure's theta convention).
        std::string key = workloadCacheKey("phase-shift/" + options,
                                           p, scale);
        s.add({row, "baseline", protocolSpec("ccnuma"), inf, make,
               key, "phase-shift"});
        for (const std::string &id : ids)
            s.add({row, id, protocolSpec(id), p, make, key,
                   "phase-shift"});
    }
    return s;
}

int
renderFeedback(const FigureRun &run, std::ostream &os)
{
    Table t({"step", "protocol", "policy", "normalized time",
             "relocations", "zero-hit evictions",
             "evicted-page hits"});
    Params p = Params::base();
    for (const CellResult &c : run.result.cells) {
        if (c.config == "baseline")
            continue;
        const ProtocolSpec *spec = findProtocolSpec(c.protocol);
        std::string policy = spec && spec->makePolicy
            ? spec->makePolicy(p)->describe() : "-";
        t.addRow({c.app,
                  c.protocolName.empty() ? c.protocol
                                         : c.protocolName,
                  policy,
                  Table::num(normTo(run.result, c.app, c.config)),
                  std::to_string(c.stats.relocations),
                  std::to_string(c.stats.evictionsZeroHit),
                  std::to_string(c.stats.evictedPageHits)});
    }
    t.print(os);
    os << "\nreading the result: every eviction that shows up under "
          "zero-hit evictions\nwas a relocation that never paid — "
          "the page was victimized before serving a\nsingle page-"
          "cache hit. The pre-feedback policies (static, hysteresis, "
          "adaptive,\nmodel) cannot see that signal; the utility, "
          "online-model and ewma rows\nconsume it, so their "
          "relocation counts and normalized times should "
          "separate\nas the step shrinks and residencies start "
          "paying off.\n";
    return 0;
}

} // namespace

const std::vector<FigureSpec> &
figureSpecs()
{
    static const std::vector<FigureSpec> specs = {
        {"fig5", "Figure 5: characterizing remote pages (refetch CDF)",
         "Falsafi & Wood, ISCA'97, Figure 5 (CC-NUMA, 32KB block "
         "cache)",
         &buildFig5, &renderFig5},
        {"fig6", "Figure 6: comparing CC-NUMA, S-COMA and R-NUMA",
         "Falsafi & Wood, ISCA'97, Figure 6", &buildFig6,
         &renderFig6},
        {"fig7",
         "Figure 7: cache-size sensitivity of CC-NUMA and R-NUMA",
         "Falsafi & Wood, ISCA'97, Figure 7", &buildFig7,
         &renderFig7},
        {"fig8", "Figure 8: R-NUMA sensitivity to relocation threshold",
         "Falsafi & Wood, ISCA'97, Figure 8 (normalized to T=64)",
         &buildFig8, &renderFig8},
        {"fig9", "Figure 9: page-fault / TLB overhead sensitivity",
         "Falsafi & Wood, ISCA'97, Figure 9", &buildFig9,
         &renderFig9},
        {"table2", "Table 2: baseline operation costs",
         "Falsafi & Wood, ISCA'97, Table 2", &buildTable2,
         &renderTable2},
        {"table4", "Table 4: block refetches and page replacements",
         "Falsafi & Wood, ISCA'97, Table 4", &buildTable4,
         &renderTable4},
        {"eq3", "EQ 1-3: worst-case competitive analysis",
         "Falsafi & Wood, ISCA'97, Section 3.2", &buildEq3,
         &renderEq3},
        {"ablation",
         "Ablation: the prior-owner (read-write refetch) state",
         "Falsafi & Wood, ISCA'97, Section 3.1 (design-choice "
         "ablation)",
         &buildAblation, &renderAblation},
        {"micro",
         "Micro: canonical access patterns under every protocol",
         "Falsafi & Wood, ISCA'97, Sections 1-3 (motivating "
         "patterns)",
         &buildMicro, &renderMicro},
        {"policies",
         "Policies: every registered protocol on the reuse "
         "microworkload",
         "Falsafi & Wood, ISCA'97, Section 3 (the RAD/policy "
         "factoring, generalized)",
         &buildPolicies, &renderPolicies},
        {"scaling",
         "Scaling: node count x interconnect model x directory "
         "format",
         "Falsafi & Wood, ISCA'97, Section 2 (the 8-node machine, "
         "scaled out)",
         &buildScaling, &renderScaling},
        {"serving",
         "Serving: Zipf skew x every protocol, base machine and "
         "64-node mesh",
         "Falsafi & Wood, ISCA'97, Section 1 (the commercial-"
         "serving motivation)",
         &buildServing, &renderServing},
        {"churn",
         "Churn: serving workloads (phase-shift, tenants) x "
         "relocation policies",
         "Falsafi & Wood, ISCA'97, Sections 1 and 3 (reactive "
         "relocation under churn)",
         &buildChurn, &renderChurn},
        {"storm-cliff",
         "Storm-cliff: the fmm 4-frame relocation-storm regression "
         "guard",
         "Falsafi & Wood, ISCA'97, Section 3.2 (the ping-pong worst "
         "case, embodied)",
         &buildStormCliff, &renderStormCliff},
        {"feedback",
         "Feedback: phase-shift step x every relocation policy "
         "(residency utility)",
         "Falsafi & Wood, ISCA'97, Section 3 (the threshold rule, "
         "made utility-aware)",
         &buildFeedback, &renderFeedback},
    };
    return specs;
}

const FigureSpec *
findFigure(const std::string &name)
{
    for (const FigureSpec &s : figureSpecs())
        if (name == s.name)
            return &s;
    return nullptr;
}

FigureRun
runFigure(const FigureSpec &spec, const FigureOptions &opt,
          std::size_t jobs, bool verify, bool cacheWorkloads,
          WorkloadCache *sharedCache)
{
    FigureRun run;
    run.name = spec.name;
    run.title = spec.title;
    run.paperRef = spec.paperRef;
    run.scale = opt.scale;

    SweepRunner runner(jobs);
    runner.cacheWorkloads(cacheWorkloads);
    runner.shareCache(sharedCache);
    run.jobs = runner.jobs();
    Sweep sweep = spec.build(opt);
    // Post-build: the workload keys (generation Params) are already
    // fixed, so parallel cells share snapshots with serial runs.
    sweep.applyIntraJobs(opt.intraJobs);
    auto t0 = std::chrono::steady_clock::now();
    run.result = runner.run(sweep);
    auto t1 = std::chrono::steady_clock::now();
    run.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    // A serial run *is* the reference; re-running it to compare
    // against itself would double the cost to prove nothing.
    if (verify && run.jobs > 1)
        verifySerialIdentical(sweep, run.result, cacheWorkloads);
    return run;
}

int
renderFigure(const FigureSpec &spec, FigureRun &run,
             std::ostream &os)
{
    run.status = spec.render(run, os);
    return run.status;
}

} // namespace rnuma::driver
