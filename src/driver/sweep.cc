#include "driver/sweep.hh"

#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/logging.hh"
#include "workload/registry.hh"

namespace rnuma::driver
{

double
envScale()
{
    const char *env = std::getenv("RNUMA_BENCH_SCALE");
    if (!env)
        return 1.0;
    char *end = nullptr;
    double s = std::strtod(env, &end);
    if (end == env || *end != '\0' || s <= 0) {
        warn("ignoring RNUMA_BENCH_SCALE='", env,
             "' (want a positive number); using 1.0");
        return 1.0;
    }
    return s;
}

std::size_t
envJobs()
{
    const char *env = std::getenv("RNUMA_BENCH_JOBS");
    if (!env)
        return 1;
    char *end = nullptr;
    long j = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || j < 0) {
        warn("ignoring RNUMA_BENCH_JOBS='", env,
             "' (want a non-negative integer; 0 = all cores); "
             "using 1");
        return 1;
    }
    return static_cast<std::size_t>(j);
}

WorkloadFactory
appFactory(std::string app, const Params &gen, double scale,
           std::uint64_t seed)
{
    return [app = std::move(app), gen, scale, seed] {
        return std::unique_ptr<Workload>(
            makeApp(app, gen, scale, seed));
    };
}

std::string
workloadCacheKey(const std::string &name, const Params &gen,
                 double scale, std::uint64_t seed)
{
    // scale participates bit-exactly (formatting a double would
    // collapse nearby values).
    std::uint64_t scale_bits = 0;
    static_assert(sizeof(scale_bits) == sizeof(scale),
                  "double is not 64-bit");
    std::memcpy(&scale_bits, &scale, sizeof(scale_bits));
    std::ostringstream os;
    os << name << '@' << std::hex << gen.fingerprint() << '/'
       << scale_bits << '/' << seed;
    return os.str();
}

Sweep::Sweep(std::string name, std::string title,
             std::string paper_ref)
    : name_(std::move(name)), title_(std::move(title)),
      paper_ref_(std::move(paper_ref))
{
}

void
Sweep::add(Cell c)
{
    RNUMA_ASSERT(c.make, "cell (", c.app, ", ", c.config,
                 ") has no workload factory");
    RNUMA_ASSERT(c.proto.valid(), "cell (", c.app, ", ", c.config,
                 ") has no protocol spec");
    for (const Cell &prev : cells_) {
        if (prev.app == c.app && prev.config == c.config) {
            RNUMA_FATAL("duplicate cell (", c.app, ", ", c.config,
                        ") in sweep '", name_, "'");
        }
    }
    cells_.push_back(std::move(c));
}

std::size_t
Sweep::applyIntraJobs(std::size_t n)
{
    if (n <= 1)
        return 0;
    std::size_t switched = 0;
    for (Cell &c : cells_) {
        if (n > c.params.numNodes || c.params.numNodes % n != 0)
            continue;
        c.params.intraJobs = n;
        switched++;
    }
    return switched;
}

void
Sweep::addApp(const std::string &app, const std::string &config,
              const Params &p, const std::string &proto,
              double scale, std::uint64_t seed)
{
    Cell c;
    c.app = app;
    c.config = config;
    c.proto = protocolSpec(proto);
    c.params = p;
    c.make = appFactory(app, p, scale, seed);
    c.workloadKey = workloadCacheKey(app, p, scale, seed);
    c.workload = app;
    add(std::move(c));
}

void
Sweep::addBaseline(const std::string &app, const Params &p,
                   double scale, std::uint64_t seed)
{
    Cell c;
    c.app = app;
    c.config = "baseline";
    c.proto = protocolSpec("ccnuma");
    c.params = p;
    c.params.infiniteBlockCache = true;
    c.make = appFactory(app, p, scale, seed);
    c.workloadKey = workloadCacheKey(app, p, scale, seed);
    c.workload = app;
    add(std::move(c));
}

} // namespace rnuma::driver
