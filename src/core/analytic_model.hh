/**
 * @file
 * The paper's worst-case (competitive) performance model, Section 3.2
 * and Table 1. The model compares per-page overheads against an ideal
 * CC-NUMA with an infinite block cache and proves R-NUMA's worst case
 * is within 2 + C_relocate/C_allocate of the best of CC-NUMA and
 * S-COMA (EQ 1-3).
 */

#ifndef RNUMA_CORE_ANALYTIC_MODEL_HH
#define RNUMA_CORE_ANALYTIC_MODEL_HH

#include "common/params.hh"

namespace rnuma
{

/** Table 1 parameters. */
struct ModelParams
{
    double cRefetch = 0;  ///< cost of refetching a remote block
    double cAllocate = 0; ///< cost of allocating/replacing a page
    double cRelocate = 0; ///< cost of relocating a page

    /**
     * Derive model costs from system parameters: C_refetch is the
     * uncontended remote fetch; C_allocate and C_relocate use the
     * page-operation cost at a given occupancy (valid blocks moved
     * or flushed).
     */
    static ModelParams fromSystem(const Params &p,
                                  std::size_t blocks_moved);
};

/** EQ 1-3 evaluated for a threshold T. */
class AnalyticModel
{
  public:
    explicit AnalyticModel(ModelParams mp);

    /** Per-page overhead of CC-NUMA in the worst case: T*C_refetch. */
    double overheadCCNuma(double T) const;

    /** Per-page overhead of S-COMA: C_allocate. */
    double overheadSComa() const;

    /**
     * Per-page overhead of R-NUMA in its worst case (page relocates
     * and is never referenced again before replacement):
     * T*C_refetch + C_relocate + C_allocate.
     */
    double overheadRNuma(double T) const;

    /** EQ 1: worst-case R-NUMA / CC-NUMA overhead ratio. */
    double worstVsCCNuma(double T) const;

    /** EQ 2: worst-case R-NUMA / S-COMA overhead ratio. */
    double worstVsSComa(double T) const;

    /**
     * EQ 3: the threshold equalizing the two ratios:
     * T* = C_allocate / C_refetch.
     */
    double optimalThreshold() const;

    /**
     * EQ 3: the bound at the optimal threshold:
     * 2 + C_relocate / C_allocate — close to 2 for aggressive
     * implementations and close to 3 when relocation costs as much
     * as allocation.
     */
    double boundAtOptimal() const;

    const ModelParams &params() const { return mp; }

  private:
    ModelParams mp;
};

} // namespace rnuma

#endif // RNUMA_CORE_ANALYTIC_MODEL_HH
