/**
 * @file
 * The relocation-decision API — the paper's central mechanism made
 * pluggable. Section 3.1 layers a small per-page decision rule on a
 * hybrid (block cache + page cache) RAD: count block refetches
 * (capacity/conflict misses on blocks the directory believes the
 * node already has) and relocate the page into the page cache when
 * the count crosses a threshold T. The threshold-sensitivity study
 * (Figure 8) and the Eq 3 worst-case bound are statements about that
 * rule, not about the RAD — so the rule is an interface here, and
 * the paper's fixed-T rule is just its first implementation.
 *
 * A RelocationPolicy is per-node state driven by three notifications
 * from the hybrid RAD:
 *
 *   onRefetch(page)   — one refetch on a CC-NUMA-mode page; the
 *                       return value decides relocation *now*
 *   onRelocated(page) — the OS moved the page into the page cache
 *   onEvicted(page)   — the page cache replaced the page; it reverts
 *                       to CC-NUMA on its next touch
 *
 * Implementations: StaticThresholdPolicy (the paper's rule, exactly
 * the pre-registry counter semantics), HysteresisPolicy (reverted
 * pages need a higher count to relocate again, suppressing
 * ping-pong), AdaptiveThresholdPolicy (per-page T halves on
 * relocation and escalates on relocate/evict ping-pong,
 * approximating the Eq 3 optimum online).
 */

#ifndef RNUMA_CORE_RELOCATION_POLICY_HH
#define RNUMA_CORE_RELOCATION_POLICY_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/types.hh"

namespace rnuma
{

/** Per-node, per-page relocation decision rule (see file comment). */
class RelocationPolicy
{
  public:
    virtual ~RelocationPolicy() = default;

    /**
     * Record one refetch against @p page (CC-NUMA mode).
     * @return true exactly when the relocation interrupt should fire
     *         now; the page's pending count is consumed.
     */
    virtual bool onRefetch(Addr page) = 0;

    /** The page was relocated into the page cache. */
    virtual void onRelocated(Addr page) = 0;

    /** The page was evicted from the page cache (reverts to CC-NUMA). */
    virtual void onEvicted(Addr page) = 0;

    /** Drop all per-page state for @p page (unmap). */
    virtual void reset(Addr page) = 0;

    /**
     * Would the *next* onRefetch(@p page) fire? A side-effect-free
     * probe for the parallel engine's confinement check: a firing
     * relocation may evict a page whose blocks flush to a home
     * outside the partition, so a potential fire forces the miss to
     * the serial coordinator. The default is conservatively true
     * (always defer); policies with a predictable rule override it.
     */
    virtual bool wouldFire(Addr /*page*/) const { return true; }

    /** Current pending refetch count for a page. */
    virtual std::uint64_t count(Addr page) const = 0;

    /** Number of pages with live policy state. */
    virtual std::size_t trackedPages() const = 0;

    /** Human-readable summary, e.g. "static(T=64)". */
    virtual std::string describe() const = 0;
};

/**
 * The paper's rule (Section 3.1): a fixed threshold T. Fires on the
 * T-th refetch; the counter resets on fire, relocation, or eviction.
 * Bit-identical to the pre-registry ReactivePolicy counters.
 */
class StaticThresholdPolicy : public RelocationPolicy
{
  public:
    /** @param threshold refetches before relocation (base: 64). */
    explicit StaticThresholdPolicy(std::size_t threshold);

    bool onRefetch(Addr page) override;
    bool wouldFire(Addr page) const override;
    void onRelocated(Addr page) override;
    void onEvicted(Addr page) override;
    void reset(Addr page) override;
    std::uint64_t count(Addr page) const override;
    std::size_t trackedPages() const override;
    std::string describe() const override;

    /** Configured threshold T. */
    std::size_t threshold() const { return thresh; }

  private:
    std::size_t thresh;
    std::unordered_map<Addr, std::uint64_t> counts;
};

/**
 * Static threshold with hysteresis: a page relocates after
 * @p relocateThreshold refetches the first time, but once it has
 * been evicted from the page cache (i.e. a relocation was undone), a
 * subsequent relocation requires the higher @p revertedThreshold.
 * Pages that ping-pong between modes — relocate, fall out, refetch,
 * relocate again — pay the page-operation cost over and over under
 * the static rule; the raised re-entry bar suppresses that cycle
 * while leaving first-time relocations as cheap as ever.
 */
class HysteresisPolicy : public RelocationPolicy
{
  public:
    /**
     * @param relocateThreshold refetches before a first relocation
     * @param revertedThreshold refetches before re-relocating a page
     *        that was evicted (must be >= relocateThreshold)
     */
    HysteresisPolicy(std::size_t relocateThreshold,
                     std::size_t revertedThreshold);

    bool onRefetch(Addr page) override;
    bool wouldFire(Addr page) const override;
    void onRelocated(Addr page) override;
    void onEvicted(Addr page) override;
    void reset(Addr page) override;
    std::uint64_t count(Addr page) const override;
    std::size_t trackedPages() const override;
    std::string describe() const override;

    /** The threshold currently governing @p page. */
    std::size_t thresholdOf(Addr page) const;

  private:
    std::size_t relocT;
    std::size_t revertT;
    std::unordered_map<Addr, std::uint64_t> counts;
    std::unordered_set<Addr> reverted; ///< pages evicted at least once
};

/**
 * Per-page dynamic threshold: exponential back-off on relocation
 * churn. Every page starts at the configured initial T. An eviction
 * that undoes a relocation — the ping-pong round trip the Section
 * 3.2 adversary forces — escalates the page's re-entry bar from its
 * *pre-relocation* threshold: T, 2T, 4T, ..., clamped to
 * [minThreshold, maxThreshold]. A free-standing eviction (no
 * recorded relocation) doubles the current value; a relocation
 * halves it (floor-clamped), the bar in force while the page is
 * resident.
 *
 * The escalation is the load-bearing half: in a real machine a
 * page's relocations and evictions strictly alternate, so a rule
 * whose eviction merely doubled back what the relocation halved
 * (the original formulation) re-entered at exactly the static
 * threshold forever — "adaptive" was bit-identical to the static
 * rule on every workload with an even T. Note the halved
 * threshold is only consulted between relocation and eviction
 * (refetches fire for non-resident pages only), so in-machine the
 * policy is monotone back-off per page: it bounds the adversary's
 * churn but does not yet reward relocations that paid off — that
 * would need page-cache-hit feedback the RelocationPolicy
 * interface does not carry (see ROADMAP).
 */
class AdaptiveThresholdPolicy : public RelocationPolicy
{
  public:
    AdaptiveThresholdPolicy(std::size_t initialThreshold,
                            std::size_t minThreshold,
                            std::size_t maxThreshold);

    bool onRefetch(Addr page) override;
    bool wouldFire(Addr page) const override;
    void onRelocated(Addr page) override;
    void onEvicted(Addr page) override;
    void reset(Addr page) override;
    std::uint64_t count(Addr page) const override;
    std::size_t trackedPages() const override;
    std::string describe() const override;

    /** The threshold currently governing @p page. */
    std::size_t thresholdOf(Addr page) const;

  private:
    std::size_t initialT;
    std::size_t minT;
    std::size_t maxT;
    std::unordered_map<Addr, std::uint64_t> counts;
    std::unordered_map<Addr, std::size_t> perPageT;
    /**
     * Per page, the threshold in force when it last relocated (the
     * value the eviction escalates from); erased once consumed, so
     * only resident relocated pages carry an entry. Storing the
     * actual pre-relocation value (not a flag) keeps the 2x
     * escalation exact even when the relocation halve was clamped
     * at minThreshold.
     */
    std::unordered_map<Addr, std::size_t> entryT;
};

} // namespace rnuma

#endif // RNUMA_CORE_RELOCATION_POLICY_HH
