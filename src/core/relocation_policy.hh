/**
 * @file
 * The relocation-decision API — the paper's central mechanism made
 * pluggable. Section 3.1 layers a small per-page decision rule on a
 * hybrid (block cache + page cache) RAD: count block refetches
 * (capacity/conflict misses on blocks the directory believes the
 * node already has) and relocate the page into the page cache when
 * the count crosses a threshold T. The threshold-sensitivity study
 * (Figure 8) and the Eq 3 worst-case bound are statements about that
 * rule, not about the RAD — so the rule is an interface here, and
 * the paper's fixed-T rule is just its first implementation.
 *
 * A RelocationPolicy is per-node state driven by three notifications
 * from the hybrid RAD:
 *
 *   onRefetch(page)   — one refetch on a CC-NUMA-mode page; the
 *                       return value decides relocation *now*
 *   onRelocated(page) — the OS moved the page into the page cache
 *   onEvicted(page, residentHits)
 *                     — the page cache replaced the page; it reverts
 *                       to CC-NUMA on its next touch. residentHits is
 *                       the number of page-cache hits the residency
 *                       earned since relocation — the utility signal
 *                       that distinguishes a relocation that paid off
 *                       (thousands of hits before a phase boundary)
 *                       from ping-pong (evicted before serving any).
 *
 * Implementations: StaticThresholdPolicy (the paper's rule, exactly
 * the pre-registry counter semantics), HysteresisPolicy (reverted
 * pages need a higher count to relocate again, suppressing
 * ping-pong), AdaptiveThresholdPolicy (per-page T halves on
 * relocation and escalates on relocate/evict ping-pong — all three
 * ignore residentHits, keeping the paper-era systems bit-identical),
 * plus the utility-aware rules that consume it:
 * UtilityThresholdPolicy (escalate only below break-even, decay on
 * profit), OnlineModelPolicy (re-estimates the Eq 3 optimum from the
 * observed hit rate), EwmaUtilityPolicy (per-page EWMA utility
 * score).
 */

#ifndef RNUMA_CORE_RELOCATION_POLICY_HH
#define RNUMA_CORE_RELOCATION_POLICY_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/types.hh"

namespace rnuma
{

/** Per-node, per-page relocation decision rule (see file comment). */
class RelocationPolicy
{
  public:
    virtual ~RelocationPolicy() = default;

    /**
     * Record one refetch against @p page (CC-NUMA mode).
     * @return true exactly when the relocation interrupt should fire
     *         now; the page's pending count is consumed.
     */
    virtual bool onRefetch(Addr page) = 0;

    /** The page was relocated into the page cache. */
    virtual void onRelocated(Addr page) = 0;

    /**
     * The page was evicted from the page cache (reverts to CC-NUMA).
     * @param residentHits page-cache hits the residency earned since
     *        relocation — the utility signal. Policies that predate
     *        the feedback channel ignore it.
     */
    virtual void onEvicted(Addr page, std::uint64_t residentHits) = 0;

    /** Drop all per-page state for @p page (unmap). */
    virtual void reset(Addr page) = 0;

    /**
     * Would the *next* onRefetch(@p page) fire? A side-effect-free
     * probe for the parallel engine's confinement check: a firing
     * relocation may evict a page whose blocks flush to a home
     * outside the partition, so a potential fire forces the miss to
     * the serial coordinator. The default is conservatively true
     * (always defer); policies with a predictable rule override it.
     */
    virtual bool wouldFire(Addr /*page*/) const { return true; }

    /** Current pending refetch count for a page. */
    virtual std::uint64_t count(Addr page) const = 0;

    /** Number of pages with live policy state. */
    virtual std::size_t trackedPages() const = 0;

    /** Human-readable summary, e.g. "static(T=64)". */
    virtual std::string describe() const = 0;
};

/**
 * The paper's rule (Section 3.1): a fixed threshold T. Fires on the
 * T-th refetch; the counter resets on fire, relocation, or eviction.
 * Bit-identical to the pre-registry ReactivePolicy counters.
 */
class StaticThresholdPolicy : public RelocationPolicy
{
  public:
    /** @param threshold refetches before relocation (base: 64). */
    explicit StaticThresholdPolicy(std::size_t threshold);

    bool onRefetch(Addr page) override;
    bool wouldFire(Addr page) const override;
    void onRelocated(Addr page) override;
    void onEvicted(Addr page, std::uint64_t residentHits) override;
    void reset(Addr page) override;
    std::uint64_t count(Addr page) const override;
    std::size_t trackedPages() const override;
    std::string describe() const override;

    /** Configured threshold T. */
    std::size_t threshold() const { return thresh; }

  private:
    std::size_t thresh;
    std::unordered_map<Addr, std::uint64_t> counts;
};

/**
 * Static threshold with hysteresis: a page relocates after
 * @p relocateThreshold refetches the first time, but once it has
 * been evicted from the page cache (i.e. a relocation was undone), a
 * subsequent relocation requires the higher @p revertedThreshold.
 * Pages that ping-pong between modes — relocate, fall out, refetch,
 * relocate again — pay the page-operation cost over and over under
 * the static rule; the raised re-entry bar suppresses that cycle
 * while leaving first-time relocations as cheap as ever.
 */
class HysteresisPolicy : public RelocationPolicy
{
  public:
    /**
     * @param relocateThreshold refetches before a first relocation
     * @param revertedThreshold refetches before re-relocating a page
     *        that was evicted (must be >= relocateThreshold)
     */
    HysteresisPolicy(std::size_t relocateThreshold,
                     std::size_t revertedThreshold);

    bool onRefetch(Addr page) override;
    bool wouldFire(Addr page) const override;
    void onRelocated(Addr page) override;
    void onEvicted(Addr page, std::uint64_t residentHits) override;
    void reset(Addr page) override;
    std::uint64_t count(Addr page) const override;
    std::size_t trackedPages() const override;
    std::string describe() const override;

    /** The threshold currently governing @p page. */
    std::size_t thresholdOf(Addr page) const;

  private:
    std::size_t relocT;
    std::size_t revertT;
    std::unordered_map<Addr, std::uint64_t> counts;
    std::unordered_set<Addr> reverted; ///< pages evicted at least once
};

/**
 * Per-page dynamic threshold: exponential back-off on relocation
 * churn. Every page starts at the configured initial T. An eviction
 * that undoes a relocation — the ping-pong round trip the Section
 * 3.2 adversary forces — escalates the page's re-entry bar from its
 * *pre-relocation* threshold: T, 2T, 4T, ..., clamped to
 * [minThreshold, maxThreshold]. A free-standing eviction (no
 * recorded relocation) doubles the current value; a relocation
 * halves it (floor-clamped), the bar in force while the page is
 * resident.
 *
 * The escalation is the load-bearing half: in a real machine a
 * page's relocations and evictions strictly alternate, so a rule
 * whose eviction merely doubled back what the relocation halved
 * (the original formulation) re-entered at exactly the static
 * threshold forever — "adaptive" was bit-identical to the static
 * rule on every workload with an even T. Note the halved
 * threshold is only consulted between relocation and eviction
 * (refetches fire for non-resident pages only), so in-machine the
 * policy is monotone back-off per page: it bounds the adversary's
 * churn but never rewards relocations that paid off — it ignores
 * the residentHits feedback by design (ROADMAP item 4's diagnosis,
 * preserved for bit-identity with the PR 4 figures). The policies
 * below it consume the signal instead.
 */
class AdaptiveThresholdPolicy : public RelocationPolicy
{
  public:
    AdaptiveThresholdPolicy(std::size_t initialThreshold,
                            std::size_t minThreshold,
                            std::size_t maxThreshold);

    bool onRefetch(Addr page) override;
    bool wouldFire(Addr page) const override;
    void onRelocated(Addr page) override;
    void onEvicted(Addr page, std::uint64_t residentHits) override;
    void reset(Addr page) override;
    std::uint64_t count(Addr page) const override;
    std::size_t trackedPages() const override;
    std::string describe() const override;

    /** The threshold currently governing @p page. */
    std::size_t thresholdOf(Addr page) const;

  private:
    std::size_t initialT;
    std::size_t minT;
    std::size_t maxT;
    std::unordered_map<Addr, std::uint64_t> counts;
    std::unordered_map<Addr, std::size_t> perPageT;
    /**
     * Per page, the threshold in force when it last relocated (the
     * value the eviction escalates from); erased once consumed, so
     * only resident relocated pages carry an entry. Storing the
     * actual pre-relocation value (not a flag) keeps the 2x
     * escalation exact even when the relocation halve was clamped
     * at minThreshold.
     */
    std::unordered_map<Addr, std::size_t> entryT;
};

/**
 * Utility-aware per-page threshold: escalate only when the residency
 * was *wasted*. The break-even hit count is the Eq 3 cost ratio
 * C_allocate / C_refetch (T* on the base machine, ~19): a residency
 * that served at least that many page-cache hits amortized its page
 * operations, so its eviction is evidence the page is worth
 * relocating *eagerly* — the threshold drops to at most half the
 * break-even and keeps halving on repeated profitable residencies
 * (floor-clamped). An eviction below break-even is ping-pong
 * evidence and doubles the page's threshold (cap-clamped), exactly
 * the adaptive rule's defense. Unlike AdaptiveThresholdPolicy,
 * relocation itself is not an event — only the measured outcome
 * moves the threshold.
 */
class UtilityThresholdPolicy : public RelocationPolicy
{
  public:
    /**
     * @param initialThreshold per-page starting T (base: 64)
     * @param minThreshold decay floor
     * @param maxThreshold escalation cap
     * @param breakEvenHits resident hits at which a residency pays
     *        for its page operations (Eq 3: C_allocate / C_refetch)
     */
    UtilityThresholdPolicy(std::size_t initialThreshold,
                           std::size_t minThreshold,
                           std::size_t maxThreshold,
                           std::uint64_t breakEvenHits);

    bool onRefetch(Addr page) override;
    bool wouldFire(Addr page) const override;
    void onRelocated(Addr page) override;
    void onEvicted(Addr page, std::uint64_t residentHits) override;
    void reset(Addr page) override;
    std::uint64_t count(Addr page) const override;
    std::size_t trackedPages() const override;
    std::string describe() const override;

    /** The threshold currently governing @p page. */
    std::size_t thresholdOf(Addr page) const;

    /** Configured break-even hit count. */
    std::uint64_t breakEven() const { return breakEvenHits; }

  private:
    std::size_t initialT;
    std::size_t minT;
    std::size_t maxT;
    std::uint64_t breakEvenHits;
    std::unordered_map<Addr, std::uint64_t> counts;
    std::unordered_map<Addr, std::size_t> perPageT;
};

/**
 * Online re-estimation of the Eq 3 optimum — the dynamic version of
 * the registry's `rnuma-model` spec. The static model picks
 * T* = C_allocate / C_refetch assuming every relocation is wasted
 * (the competitive worst case). Online, the machine can observe how
 * wasted relocations actually are: the policy keeps an EWMA h of
 * residentHits over evictions and sets the single global threshold
 *
 *   T = clamp(round(T* - h), minThreshold, maxThreshold)
 *
 * — each resident hit a residency is expected to earn is one
 * refetch's worth of cost already repaid, so the bar drops one-for-
 * one until, at h >= T*, relocation is known-profitable and fires at
 * the floor. With no eviction history the policy *is* rnuma-model
 * (h = 0, T = round(T*)), and on a stationary zero-reuse stream it
 * converges back to it. The EWMA only moves in onEvicted, so
 * wouldFire stays an exact probe between evictions.
 */
class OnlineModelPolicy : public RelocationPolicy
{
  public:
    /**
     * @param optimalThreshold the analytic T* (AnalyticModel::
     *        optimalThreshold() on the configured machine)
     * @param minThreshold clamp floor (>= 1)
     * @param maxThreshold clamp cap
     */
    OnlineModelPolicy(double optimalThreshold, std::size_t minThreshold,
                      std::size_t maxThreshold);

    bool onRefetch(Addr page) override;
    bool wouldFire(Addr page) const override;
    void onRelocated(Addr page) override;
    void onEvicted(Addr page, std::uint64_t residentHits) override;
    void reset(Addr page) override;
    std::uint64_t count(Addr page) const override;
    std::size_t trackedPages() const override;
    std::string describe() const override;

    /** The global threshold currently in force. */
    std::size_t threshold() const { return curT; }

    /** Current EWMA of resident hits per eviction. */
    double estimatedHits() const { return avgHits; }

  private:
    void reestimate();

    double tStar;
    std::size_t minT;
    std::size_t maxT;
    double avgHits = 0.0; ///< EWMA (alpha = 1/8) of residentHits
    std::size_t curT;
    std::unordered_map<Addr, std::uint64_t> counts;
};

/**
 * Per-page EWMA utility score. Each eviction grades its residency as
 * u_obs = min(1, residentHits / breakEven) — 0 is pure ping-pong, 1
 * fully amortized — and folds it into a per-page score
 * u' = (1 - alpha) u + alpha u_obs, seeded at 0.5 (no evidence). The
 * page's threshold interpolates linearly between the cap (u = 0,
 * distrust) and the floor (u = 1, trust):
 *
 *   T_p = round(maxThreshold + u * (minThreshold - maxThreshold))
 *
 * so the no-evidence midpoint is (min + max) / 2 and the registry
 * picks min/max to land that at the configured base T. The score only
 * moves in onEvicted (and drops on reset), so wouldFire stays exact;
 * only IEEE +,*,/ arithmetic is used, keeping results deterministic
 * across platforms.
 */
class EwmaUtilityPolicy : public RelocationPolicy
{
  public:
    /**
     * @param minThreshold threshold at utility 1 (full trust)
     * @param maxThreshold threshold at utility 0 (full distrust)
     * @param breakEvenHits resident hits worth full marks (Eq 3)
     * @param alpha EWMA gain in (0, 1]
     */
    EwmaUtilityPolicy(std::size_t minThreshold, std::size_t maxThreshold,
                      std::uint64_t breakEvenHits, double alpha);

    bool onRefetch(Addr page) override;
    bool wouldFire(Addr page) const override;
    void onRelocated(Addr page) override;
    void onEvicted(Addr page, std::uint64_t residentHits) override;
    void reset(Addr page) override;
    std::uint64_t count(Addr page) const override;
    std::size_t trackedPages() const override;
    std::string describe() const override;

    /** The threshold currently governing @p page. */
    std::size_t thresholdOf(Addr page) const;

    /** Current utility score for @p page (0.5 with no evidence). */
    double utilityOf(Addr page) const;

  private:
    std::size_t minT;
    std::size_t maxT;
    std::uint64_t breakEvenHits;
    double alpha;
    std::unordered_map<Addr, std::uint64_t> counts;
    std::unordered_map<Addr, double> utility;
};

} // namespace rnuma

#endif // RNUMA_CORE_RELOCATION_POLICY_HH
