#include "core/reactive_policy.hh"

#include "common/logging.hh"

namespace rnuma
{

ReactivePolicy::ReactivePolicy(std::size_t threshold)
    : thresh(threshold)
{
    RNUMA_ASSERT(thresh >= 1, "threshold must be at least 1");
}

bool
ReactivePolicy::recordRefetch(Addr page)
{
    std::uint64_t &c = counts[page];
    if (++c >= thresh) {
        counts.erase(page);
        return true;
    }
    return false;
}

void
ReactivePolicy::reset(Addr page)
{
    counts.erase(page);
}

std::uint64_t
ReactivePolicy::count(Addr page) const
{
    auto it = counts.find(page);
    return it == counts.end() ? 0 : it->second;
}

} // namespace rnuma
