#include "core/analytic_model.hh"

#include "common/logging.hh"
#include "net/registry.hh"

namespace rnuma
{

ModelParams
ModelParams::fromSystem(const Params &p, std::size_t blocks_moved)
{
    ModelParams mp;
    // Model-derived, so Eq 1-3 track the selected interconnect: the
    // wire term is the network model's mean pairwise latency (376
    // cycles total under the default constant model, Table 2).
    mp.cRefetch = static_cast<double>(remoteFetchLatency(p));
    mp.cAllocate = static_cast<double>(p.pageOpCost(blocks_moved));
    mp.cRelocate = static_cast<double>(p.pageOpCost(blocks_moved));
    return mp;
}

AnalyticModel::AnalyticModel(ModelParams mp_)
    : mp(mp_)
{
    RNUMA_ASSERT(mp.cRefetch > 0 && mp.cAllocate > 0 && mp.cRelocate >= 0,
                 "model costs must be positive");
}

double
AnalyticModel::overheadCCNuma(double T) const
{
    return T * mp.cRefetch;
}

double
AnalyticModel::overheadSComa() const
{
    return mp.cAllocate;
}

double
AnalyticModel::overheadRNuma(double T) const
{
    return T * mp.cRefetch + mp.cRelocate + mp.cAllocate;
}

double
AnalyticModel::worstVsCCNuma(double T) const
{
    return overheadRNuma(T) / overheadCCNuma(T);
}

double
AnalyticModel::worstVsSComa(double T) const
{
    return overheadRNuma(T) / overheadSComa();
}

double
AnalyticModel::optimalThreshold() const
{
    return mp.cAllocate / mp.cRefetch;
}

double
AnalyticModel::boundAtOptimal() const
{
    return 2.0 + mp.cRelocate / mp.cAllocate;
}

} // namespace rnuma
