/**
 * @file
 * The reactive relocation policy — the paper's central mechanism
 * (Section 3.1). Each node's RAD maintains a per-page count of block
 * refetches (capacity/conflict misses on blocks the directory
 * believes the node already has) and raises a relocation interrupt
 * when the count crosses the threshold T.
 */

#ifndef RNUMA_CORE_REACTIVE_POLICY_HH
#define RNUMA_CORE_REACTIVE_POLICY_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace rnuma
{

/** Per-node, per-page refetch counters with a relocation threshold. */
class ReactivePolicy
{
  public:
    /** @param threshold refetches before relocation (base: 64). */
    explicit ReactivePolicy(std::size_t threshold);

    /**
     * Record one refetch against @p page.
     * @return true exactly when the count reaches the threshold (the
     *         relocation interrupt fires); the counter resets.
     */
    bool recordRefetch(Addr page);

    /** Clear a page's counter (relocation or unmap). */
    void reset(Addr page);

    /** Current count for a page. */
    std::uint64_t count(Addr page) const;

    /** Configured threshold T. */
    std::size_t threshold() const { return thresh; }

    /** Number of pages with a live counter. */
    std::size_t trackedPages() const { return counts.size(); }

  private:
    std::size_t thresh;
    std::unordered_map<Addr, std::uint64_t> counts;
};

} // namespace rnuma

#endif // RNUMA_CORE_REACTIVE_POLICY_HH
