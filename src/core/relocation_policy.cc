#include "core/relocation_policy.hh"

#include "common/logging.hh"

namespace rnuma
{

namespace
{

std::uint64_t
countIn(const std::unordered_map<Addr, std::uint64_t> &counts,
        Addr page)
{
    auto it = counts.find(page);
    return it == counts.end() ? 0 : it->second;
}

} // namespace

//--------------------------------------------------------------------------
// StaticThresholdPolicy
//--------------------------------------------------------------------------

StaticThresholdPolicy::StaticThresholdPolicy(std::size_t threshold)
    : thresh(threshold)
{
    RNUMA_ASSERT(thresh >= 1, "threshold must be at least 1");
}

bool
StaticThresholdPolicy::onRefetch(Addr page)
{
    std::uint64_t &c = counts[page];
    if (++c >= thresh) {
        counts.erase(page);
        return true;
    }
    return false;
}

bool
StaticThresholdPolicy::wouldFire(Addr page) const
{
    return countIn(counts, page) + 1 >= thresh;
}

void
StaticThresholdPolicy::onRelocated(Addr page)
{
    counts.erase(page);
}

void
StaticThresholdPolicy::onEvicted(Addr page,
                                 std::uint64_t /*residentHits*/)
{
    counts.erase(page);
}

void
StaticThresholdPolicy::reset(Addr page)
{
    counts.erase(page);
}

std::uint64_t
StaticThresholdPolicy::count(Addr page) const
{
    return countIn(counts, page);
}

std::size_t
StaticThresholdPolicy::trackedPages() const
{
    return counts.size();
}

std::string
StaticThresholdPolicy::describe() const
{
    return "static(T=" + std::to_string(thresh) + ")";
}

//--------------------------------------------------------------------------
// HysteresisPolicy
//--------------------------------------------------------------------------

HysteresisPolicy::HysteresisPolicy(std::size_t relocateThreshold,
                                   std::size_t revertedThreshold)
    : relocT(relocateThreshold), revertT(revertedThreshold)
{
    RNUMA_ASSERT(relocT >= 1, "relocate threshold must be at least 1");
    RNUMA_ASSERT(revertT >= relocT,
                 "reverted threshold (", revertT,
                 ") must not be below the relocate threshold (",
                 relocT, ")");
}

std::size_t
HysteresisPolicy::thresholdOf(Addr page) const
{
    return reverted.count(page) ? revertT : relocT;
}

bool
HysteresisPolicy::onRefetch(Addr page)
{
    std::uint64_t &c = counts[page];
    if (++c >= thresholdOf(page)) {
        counts.erase(page);
        return true;
    }
    return false;
}

bool
HysteresisPolicy::wouldFire(Addr page) const
{
    return countIn(counts, page) + 1 >= thresholdOf(page);
}

void
HysteresisPolicy::onRelocated(Addr page)
{
    counts.erase(page);
}

void
HysteresisPolicy::onEvicted(Addr page, std::uint64_t /*residentHits*/)
{
    counts.erase(page);
    reverted.insert(page);
}

void
HysteresisPolicy::reset(Addr page)
{
    counts.erase(page);
    reverted.erase(page);
}

std::uint64_t
HysteresisPolicy::count(Addr page) const
{
    return countIn(counts, page);
}

std::size_t
HysteresisPolicy::trackedPages() const
{
    // Live state is a pending counter or a reverted mark; count the
    // union, not just the counters.
    std::size_t n = counts.size();
    for (Addr page : reverted)
        if (!counts.count(page))
            n++;
    return n;
}

std::string
HysteresisPolicy::describe() const
{
    return "hysteresis(T=" + std::to_string(relocT) +
        ",T_reverted=" + std::to_string(revertT) + ")";
}

//--------------------------------------------------------------------------
// AdaptiveThresholdPolicy
//--------------------------------------------------------------------------

AdaptiveThresholdPolicy::AdaptiveThresholdPolicy(
    std::size_t initialThreshold, std::size_t minThreshold,
    std::size_t maxThreshold)
    : initialT(initialThreshold), minT(minThreshold),
      maxT(maxThreshold)
{
    RNUMA_ASSERT(minT >= 1, "minimum threshold must be at least 1");
    RNUMA_ASSERT(minT <= initialT && initialT <= maxT,
                 "need min <= initial <= max, got ", minT, " / ",
                 initialT, " / ", maxT);
}

std::size_t
AdaptiveThresholdPolicy::thresholdOf(Addr page) const
{
    auto it = perPageT.find(page);
    return it == perPageT.end() ? initialT : it->second;
}

bool
AdaptiveThresholdPolicy::onRefetch(Addr page)
{
    std::uint64_t &c = counts[page];
    if (++c >= thresholdOf(page)) {
        counts.erase(page);
        return true;
    }
    return false;
}

bool
AdaptiveThresholdPolicy::wouldFire(Addr page) const
{
    return countIn(counts, page) + 1 >= thresholdOf(page);
}

void
AdaptiveThresholdPolicy::onRelocated(Addr page)
{
    counts.erase(page);
    std::size_t entry = thresholdOf(page);
    std::size_t t = entry / 2;
    perPageT[page] = t < minT ? minT : t;
    entryT[page] = entry;
}

void
AdaptiveThresholdPolicy::onEvicted(Addr page,
                                   std::uint64_t /*residentHits*/)
{
    counts.erase(page);
    // An eviction that undoes a relocation is one ping-pong round
    // trip: escalate from the page's pre-relocation threshold, so
    // churn costs T, 2T, 4T, ... instead of washing out against the
    // relocation's halve — doubling the current (halved) value
    // would re-enter at exactly the static threshold forever.
    // Free-standing evictions (no relocation recorded) double the
    // current value.
    auto it = entryT.find(page);
    std::size_t t;
    if (it != entryT.end()) {
        t = it->second * 2;
        entryT.erase(it);
    } else {
        t = thresholdOf(page) * 2;
    }
    perPageT[page] = t > maxT ? maxT : t;
}

void
AdaptiveThresholdPolicy::reset(Addr page)
{
    counts.erase(page);
    perPageT.erase(page);
    entryT.erase(page);
}

std::uint64_t
AdaptiveThresholdPolicy::count(Addr page) const
{
    return countIn(counts, page);
}

std::size_t
AdaptiveThresholdPolicy::trackedPages() const
{
    // Live state is a pending counter or an adapted threshold;
    // count the union, not just the counters.
    std::size_t n = counts.size();
    for (const auto &kv : perPageT)
        if (!counts.count(kv.first))
            n++;
    return n;
}

std::string
AdaptiveThresholdPolicy::describe() const
{
    return "adaptive(T0=" + std::to_string(initialT) + ",min=" +
        std::to_string(minT) + ",max=" + std::to_string(maxT) + ")";
}

//--------------------------------------------------------------------------
// UtilityThresholdPolicy
//--------------------------------------------------------------------------

UtilityThresholdPolicy::UtilityThresholdPolicy(
    std::size_t initialThreshold, std::size_t minThreshold,
    std::size_t maxThreshold, std::uint64_t breakEvenHits)
    : initialT(initialThreshold), minT(minThreshold),
      maxT(maxThreshold), breakEvenHits(breakEvenHits)
{
    RNUMA_ASSERT(minT >= 1, "minimum threshold must be at least 1");
    RNUMA_ASSERT(minT <= initialT && initialT <= maxT,
                 "need min <= initial <= max, got ", minT, " / ",
                 initialT, " / ", maxT);
    RNUMA_ASSERT(breakEvenHits >= 1,
                 "break-even hit count must be at least 1");
}

std::size_t
UtilityThresholdPolicy::thresholdOf(Addr page) const
{
    auto it = perPageT.find(page);
    return it == perPageT.end() ? initialT : it->second;
}

bool
UtilityThresholdPolicy::onRefetch(Addr page)
{
    std::uint64_t &c = counts[page];
    if (++c >= thresholdOf(page)) {
        counts.erase(page);
        return true;
    }
    return false;
}

bool
UtilityThresholdPolicy::wouldFire(Addr page) const
{
    return countIn(counts, page) + 1 >= thresholdOf(page);
}

void
UtilityThresholdPolicy::onRelocated(Addr page)
{
    // Relocation is not evidence; only the residency's outcome is.
    counts.erase(page);
}

void
UtilityThresholdPolicy::onEvicted(Addr page, std::uint64_t residentHits)
{
    counts.erase(page);
    std::size_t cur = thresholdOf(page);
    std::size_t t;
    if (residentHits >= breakEvenHits) {
        // Profitable residency: the page ops were amortized, so the
        // page has earned eager re-entry. Jump below the break-even
        // bar on first profit and keep halving on repeated profit.
        std::size_t from =
            cur < static_cast<std::size_t>(breakEvenHits)
                ? cur
                : static_cast<std::size_t>(breakEvenHits);
        t = from / 2;
        if (t < minT)
            t = minT;
    } else {
        // Wasted residency: ping-pong evidence, exponential back-off.
        t = cur * 2;
        if (t > maxT)
            t = maxT;
    }
    perPageT[page] = t;
}

void
UtilityThresholdPolicy::reset(Addr page)
{
    counts.erase(page);
    perPageT.erase(page);
}

std::uint64_t
UtilityThresholdPolicy::count(Addr page) const
{
    return countIn(counts, page);
}

std::size_t
UtilityThresholdPolicy::trackedPages() const
{
    // Live state is a pending counter or an adapted threshold;
    // count the union, not just the counters.
    std::size_t n = counts.size();
    for (const auto &kv : perPageT)
        if (!counts.count(kv.first))
            n++;
    return n;
}

std::string
UtilityThresholdPolicy::describe() const
{
    return "utility(T0=" + std::to_string(initialT) + ",min=" +
        std::to_string(minT) + ",max=" + std::to_string(maxT) +
        ",breakeven=" + std::to_string(breakEvenHits) + ")";
}

//--------------------------------------------------------------------------
// OnlineModelPolicy
//--------------------------------------------------------------------------

OnlineModelPolicy::OnlineModelPolicy(double optimalThreshold,
                                     std::size_t minThreshold,
                                     std::size_t maxThreshold)
    : tStar(optimalThreshold), minT(minThreshold), maxT(maxThreshold)
{
    RNUMA_ASSERT(minT >= 1, "minimum threshold must be at least 1");
    RNUMA_ASSERT(minT <= maxT, "need min <= max, got ", minT, " / ",
                 maxT);
    RNUMA_ASSERT(tStar > 0.0, "analytic optimum must be positive");
    reestimate();
}

void
OnlineModelPolicy::reestimate()
{
    // Each expected resident hit is one refetch's worth of cost the
    // residency repays, so it lowers the competitive bar one-for-one.
    double t = tStar - avgHits;
    // Round half up with integer-safe arithmetic (t <= tStar, a
    // machine constant, so the cast is in range).
    std::size_t rounded =
        t <= 0.0 ? 0 : static_cast<std::size_t>(t + 0.5);
    if (rounded < minT)
        rounded = minT;
    if (rounded > maxT)
        rounded = maxT;
    curT = rounded;
}

bool
OnlineModelPolicy::onRefetch(Addr page)
{
    std::uint64_t &c = counts[page];
    if (++c >= curT) {
        counts.erase(page);
        return true;
    }
    return false;
}

bool
OnlineModelPolicy::wouldFire(Addr page) const
{
    return countIn(counts, page) + 1 >= curT;
}

void
OnlineModelPolicy::onRelocated(Addr page)
{
    counts.erase(page);
}

void
OnlineModelPolicy::onEvicted(Addr page, std::uint64_t residentHits)
{
    counts.erase(page);
    // alpha = 1/8; pure IEEE add/multiply keeps this deterministic
    // across platforms.
    avgHits += (static_cast<double>(residentHits) - avgHits) / 8.0;
    reestimate();
}

void
OnlineModelPolicy::reset(Addr page)
{
    // Per-page unmap drops the pending counter; the global rate
    // estimate is machine state and survives.
    counts.erase(page);
}

std::uint64_t
OnlineModelPolicy::count(Addr page) const
{
    return countIn(counts, page);
}

std::size_t
OnlineModelPolicy::trackedPages() const
{
    return counts.size();
}

std::string
OnlineModelPolicy::describe() const
{
    // Config-only (the live threshold moves at runtime): report the
    // analytic anchor and the clamp range.
    std::size_t anchor = static_cast<std::size_t>(tStar + 0.5);
    return "online-model(T*=" + std::to_string(anchor) + ",min=" +
        std::to_string(minT) + ",max=" + std::to_string(maxT) + ")";
}

//--------------------------------------------------------------------------
// EwmaUtilityPolicy
//--------------------------------------------------------------------------

EwmaUtilityPolicy::EwmaUtilityPolicy(std::size_t minThreshold,
                                     std::size_t maxThreshold,
                                     std::uint64_t breakEvenHits,
                                     double alpha)
    : minT(minThreshold), maxT(maxThreshold),
      breakEvenHits(breakEvenHits), alpha(alpha)
{
    RNUMA_ASSERT(minT >= 1, "minimum threshold must be at least 1");
    RNUMA_ASSERT(minT <= maxT, "need min <= max, got ", minT, " / ",
                 maxT);
    RNUMA_ASSERT(breakEvenHits >= 1,
                 "break-even hit count must be at least 1");
    RNUMA_ASSERT(alpha > 0.0 && alpha <= 1.0,
                 "EWMA gain must be in (0, 1]");
}

double
EwmaUtilityPolicy::utilityOf(Addr page) const
{
    auto it = utility.find(page);
    return it == utility.end() ? 0.5 : it->second;
}

std::size_t
EwmaUtilityPolicy::thresholdOf(Addr page) const
{
    double u = utilityOf(page);
    double t = static_cast<double>(maxT) +
        u * (static_cast<double>(minT) - static_cast<double>(maxT));
    std::size_t rounded =
        t <= 0.0 ? 0 : static_cast<std::size_t>(t + 0.5);
    if (rounded < minT)
        rounded = minT;
    if (rounded > maxT)
        rounded = maxT;
    return rounded;
}

bool
EwmaUtilityPolicy::onRefetch(Addr page)
{
    std::uint64_t &c = counts[page];
    if (++c >= thresholdOf(page)) {
        counts.erase(page);
        return true;
    }
    return false;
}

bool
EwmaUtilityPolicy::wouldFire(Addr page) const
{
    return countIn(counts, page) + 1 >= thresholdOf(page);
}

void
EwmaUtilityPolicy::onRelocated(Addr page)
{
    counts.erase(page);
}

void
EwmaUtilityPolicy::onEvicted(Addr page, std::uint64_t residentHits)
{
    counts.erase(page);
    double grade = static_cast<double>(residentHits) /
        static_cast<double>(breakEvenHits);
    if (grade > 1.0)
        grade = 1.0;
    utility[page] = (1.0 - alpha) * utilityOf(page) + alpha * grade;
}

void
EwmaUtilityPolicy::reset(Addr page)
{
    counts.erase(page);
    utility.erase(page);
}

std::uint64_t
EwmaUtilityPolicy::count(Addr page) const
{
    return countIn(counts, page);
}

std::size_t
EwmaUtilityPolicy::trackedPages() const
{
    // Live state is a pending counter or a utility score; count the
    // union, not just the counters.
    std::size_t n = counts.size();
    for (const auto &kv : utility)
        if (!counts.count(kv.first))
            n++;
    return n;
}

std::string
EwmaUtilityPolicy::describe() const
{
    // alpha is a small k/16 rational in practice; print it as such
    // to keep the string free of locale-dependent float formatting.
    std::size_t alpha16 =
        static_cast<std::size_t>(alpha * 16.0 + 0.5);
    return "ewma(min=" + std::to_string(minT) + ",max=" +
        std::to_string(maxT) + ",breakeven=" +
        std::to_string(breakEvenHits) + ",alpha=" +
        std::to_string(alpha16) + "/16)";
}

} // namespace rnuma
