#include "core/relocation_policy.hh"

#include "common/logging.hh"

namespace rnuma
{

namespace
{

std::uint64_t
countIn(const std::unordered_map<Addr, std::uint64_t> &counts,
        Addr page)
{
    auto it = counts.find(page);
    return it == counts.end() ? 0 : it->second;
}

} // namespace

//--------------------------------------------------------------------------
// StaticThresholdPolicy
//--------------------------------------------------------------------------

StaticThresholdPolicy::StaticThresholdPolicy(std::size_t threshold)
    : thresh(threshold)
{
    RNUMA_ASSERT(thresh >= 1, "threshold must be at least 1");
}

bool
StaticThresholdPolicy::onRefetch(Addr page)
{
    std::uint64_t &c = counts[page];
    if (++c >= thresh) {
        counts.erase(page);
        return true;
    }
    return false;
}

bool
StaticThresholdPolicy::wouldFire(Addr page) const
{
    return countIn(counts, page) + 1 >= thresh;
}

void
StaticThresholdPolicy::onRelocated(Addr page)
{
    counts.erase(page);
}

void
StaticThresholdPolicy::onEvicted(Addr page)
{
    counts.erase(page);
}

void
StaticThresholdPolicy::reset(Addr page)
{
    counts.erase(page);
}

std::uint64_t
StaticThresholdPolicy::count(Addr page) const
{
    return countIn(counts, page);
}

std::size_t
StaticThresholdPolicy::trackedPages() const
{
    return counts.size();
}

std::string
StaticThresholdPolicy::describe() const
{
    return "static(T=" + std::to_string(thresh) + ")";
}

//--------------------------------------------------------------------------
// HysteresisPolicy
//--------------------------------------------------------------------------

HysteresisPolicy::HysteresisPolicy(std::size_t relocateThreshold,
                                   std::size_t revertedThreshold)
    : relocT(relocateThreshold), revertT(revertedThreshold)
{
    RNUMA_ASSERT(relocT >= 1, "relocate threshold must be at least 1");
    RNUMA_ASSERT(revertT >= relocT,
                 "reverted threshold (", revertT,
                 ") must not be below the relocate threshold (",
                 relocT, ")");
}

std::size_t
HysteresisPolicy::thresholdOf(Addr page) const
{
    return reverted.count(page) ? revertT : relocT;
}

bool
HysteresisPolicy::onRefetch(Addr page)
{
    std::uint64_t &c = counts[page];
    if (++c >= thresholdOf(page)) {
        counts.erase(page);
        return true;
    }
    return false;
}

bool
HysteresisPolicy::wouldFire(Addr page) const
{
    return countIn(counts, page) + 1 >= thresholdOf(page);
}

void
HysteresisPolicy::onRelocated(Addr page)
{
    counts.erase(page);
}

void
HysteresisPolicy::onEvicted(Addr page)
{
    counts.erase(page);
    reverted.insert(page);
}

void
HysteresisPolicy::reset(Addr page)
{
    counts.erase(page);
    reverted.erase(page);
}

std::uint64_t
HysteresisPolicy::count(Addr page) const
{
    return countIn(counts, page);
}

std::size_t
HysteresisPolicy::trackedPages() const
{
    // Live state is a pending counter or a reverted mark; count the
    // union, not just the counters.
    std::size_t n = counts.size();
    for (Addr page : reverted)
        if (!counts.count(page))
            n++;
    return n;
}

std::string
HysteresisPolicy::describe() const
{
    return "hysteresis(T=" + std::to_string(relocT) +
        ",T_reverted=" + std::to_string(revertT) + ")";
}

//--------------------------------------------------------------------------
// AdaptiveThresholdPolicy
//--------------------------------------------------------------------------

AdaptiveThresholdPolicy::AdaptiveThresholdPolicy(
    std::size_t initialThreshold, std::size_t minThreshold,
    std::size_t maxThreshold)
    : initialT(initialThreshold), minT(minThreshold),
      maxT(maxThreshold)
{
    RNUMA_ASSERT(minT >= 1, "minimum threshold must be at least 1");
    RNUMA_ASSERT(minT <= initialT && initialT <= maxT,
                 "need min <= initial <= max, got ", minT, " / ",
                 initialT, " / ", maxT);
}

std::size_t
AdaptiveThresholdPolicy::thresholdOf(Addr page) const
{
    auto it = perPageT.find(page);
    return it == perPageT.end() ? initialT : it->second;
}

bool
AdaptiveThresholdPolicy::onRefetch(Addr page)
{
    std::uint64_t &c = counts[page];
    if (++c >= thresholdOf(page)) {
        counts.erase(page);
        return true;
    }
    return false;
}

bool
AdaptiveThresholdPolicy::wouldFire(Addr page) const
{
    return countIn(counts, page) + 1 >= thresholdOf(page);
}

void
AdaptiveThresholdPolicy::onRelocated(Addr page)
{
    counts.erase(page);
    std::size_t entry = thresholdOf(page);
    std::size_t t = entry / 2;
    perPageT[page] = t < minT ? minT : t;
    entryT[page] = entry;
}

void
AdaptiveThresholdPolicy::onEvicted(Addr page)
{
    counts.erase(page);
    // An eviction that undoes a relocation is one ping-pong round
    // trip: escalate from the page's pre-relocation threshold, so
    // churn costs T, 2T, 4T, ... instead of washing out against the
    // relocation's halve — doubling the current (halved) value
    // would re-enter at exactly the static threshold forever.
    // Free-standing evictions (no relocation recorded) double the
    // current value.
    auto it = entryT.find(page);
    std::size_t t;
    if (it != entryT.end()) {
        t = it->second * 2;
        entryT.erase(it);
    } else {
        t = thresholdOf(page) * 2;
    }
    perPageT[page] = t > maxT ? maxT : t;
}

void
AdaptiveThresholdPolicy::reset(Addr page)
{
    counts.erase(page);
    perPageT.erase(page);
    entryT.erase(page);
}

std::uint64_t
AdaptiveThresholdPolicy::count(Addr page) const
{
    return countIn(counts, page);
}

std::size_t
AdaptiveThresholdPolicy::trackedPages() const
{
    // Live state is a pending counter or an adapted threshold;
    // count the union, not just the counters.
    std::size_t n = counts.size();
    for (const auto &kv : perPageT)
        if (!counts.count(kv.first))
            n++;
    return n;
}

std::string
AdaptiveThresholdPolicy::describe() const
{
    return "adaptive(T0=" + std::to_string(initialT) + ",min=" +
        std::to_string(minT) + ",max=" + std::to_string(maxT) + ")";
}

} // namespace rnuma
