#include "proto/directory.hh"

// Directory is header-only; see protocol.cc for the state machine
// that manipulates DirEntry instances.
