/**
 * @file
 * The home-node coherence protocol engine. All three systems
 * (CC-NUMA, S-COMA, R-NUMA) use this same directory protocol; they
 * differ only in where remote data is cached (Section 2). Requests
 * are processed atomically at the home ("blocking home" — see
 * DESIGN.md section 7) with all message and controller latencies
 * charged, including three-hop forwards and invalidation rounds.
 */

#ifndef RNUMA_PROTO_PROTOCOL_HH
#define RNUMA_PROTO_PROTOCOL_HH

#include <vector>

#include "common/params.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/bus.hh"
#include "mem/memory.hh"
#include "net/network.hh"
#include "proto/directory.hh"

namespace rnuma
{

/** Request types a node can send to a home. */
enum class ReqType : std::uint8_t
{
    GetS,    ///< read miss: need data, read permission
    GetX,    ///< write miss: need data, write permission
    Upgrade  ///< write to a locally valid read-only copy: permission only
};

/**
 * Downcalls from the protocol into the node caches: when the
 * directory invalidates or downgrades a node's copy, the node's L1s
 * and RAD structures must transition too. Implemented by Machine.
 */
class CoherenceSink
{
  public:
    virtual ~CoherenceSink() = default;

    /**
     * Remove every copy of @p block held on @p node (L1s, block
     * cache, fine-grain tags).
     * @return true if the node held the block dirty.
     */
    virtual bool invalidateNodeCopy(NodeId node, Addr block) = 0;

    /**
     * Downgrade @p node's copies of @p block to read-only/clean (a
     * remote read hit a dirty owner; the data has been written back
     * home).
     */
    virtual void downgradeNodeCopy(NodeId node, Addr block) = 0;
};

/** Where a page's home is; implemented by the first-touch policy. */
class Placement
{
  public:
    virtual ~Placement() = default;

    /** Home node of a page (the page must have been placed). */
    virtual NodeId homeOf(Addr page) const = 0;
};

/** Outcome of a fetch processed by the home. */
struct FetchResult
{
    /** Completion tick: data (and all invalidation acks) arrived. */
    Tick done = 0;
    /** Miss classification (refetch detection per Section 3.1). */
    MissKind kind = MissKind::Cold;
    /** Data was forwarded from a dirty third-node owner. */
    bool threeHop = false;
    /** Number of remote copies invalidated. */
    int invalidations = 0;
    /** The requester is now the only holder (may fill Exclusive). */
    bool exclusiveGrant = false;
};

/**
 * The machine-wide protocol engine: directory + home controllers +
 * network transactions.
 */
class GlobalProtocol
{
  public:
    /**
     * @param params   system parameters
     * @param net      the interconnect
     * @param placement page-home mapping
     * @param sink     cache downcall interface
     * @param memories one Memory per node (home data accesses contend
     *                 with that node's local traffic)
     */
    GlobalProtocol(const Params &params, NetworkModel &net,
                   const Placement &placement, CoherenceSink &sink,
                   std::vector<Memory *> memories);

    /**
     * Process a fetch/upgrade from @p requester for @p block starting
     * at @p now. @p now is the time the request leaves the
     * requester's bus; the returned completion excludes the final
     * fill bus transaction on the requesting node (charged by the
     * caller).
     */
    FetchResult fetch(Tick now, NodeId requester, Addr block,
                      ReqType type);

    /**
     * Voluntary writeback: the requester's block cache evicted a
     * dirty block. Asynchronous (the CPU does not stall); the
     * directory records the node in the prior-owner set so a later
     * re-request is classified as a refetch (Section 3.1).
     */
    void writeback(Tick now, NodeId from, Addr block);

    /**
     * Notifying flush of one block during S-COMA page replacement or
     * R-NUMA page-frame eviction: the node gives up the copy and
     * tells the home, so later requests are NOT refetches.
     */
    void flushBlock(Tick now, NodeId from, Addr block, bool dirty);

    /**
     * A node silently transitions a read-only copy it still holds to
     * writable without asking (never legal) — present only to
     * document the invariant; calling it panics.
     */
    void illegalSilentUpgrade(NodeId, Addr);

    /**
     * Can a fetch of @p block by @p requester (its own home) be
     * processed entirely inside the node range [lo, hi)? True when
     * the directory's current state guarantees every side effect —
     * three-hop forwards, invalidations, sharer updates — lands on
     * nodes in the range. Conservative: a false answer only defers
     * the miss to the parallel engine's serial coordinator.
     */
    bool fetchConfined(NodeId requester, Addr block, bool write,
                       NodeId lo, NodeId hi) const;

    /**
     * Would a GetS/GetX from @p requester be classified as a refetch?
     * Side-effect-free peek used by the parallel engine's confinement
     * check to predict relocation-policy activity. Only legal when
     * the block's home shares a directory shard with @p requester
     * (the caller's partition owns that shard).
     */
    bool wouldRefetch(NodeId requester, Addr block) const;

    /**
     * Directory introspection for tests and stats. With intraJobs ==
     * 1 (every test and all serial runs) the single shard holds the
     * whole machine's state, exactly as before sharding.
     */
    const Directory &directory() const { return dirs_[0]; }
    Directory &directoryForTest() { return dirs_[0]; }

    /** Live entries summed over all home shards. */
    std::uint64_t dirEntryCount() const;

    /** Modeled storage bits summed over all home shards. */
    std::uint64_t dirStorageBits() const;

    /** Home of the page containing @p addr. */
    NodeId homeOf(Addr addr) const;

    /**
     * True if @p node currently holds write permission for @p block
     * (it is the registered owner).
     */
    bool nodeOwns(NodeId node, Addr block) const;

    /**
     * True if no node other than @p node holds a copy or ownership —
     * the home may then write its own memory without a directory
     * transaction.
     */
    bool onlyHolder(NodeId node, Addr block) const;

  private:
    const Params &p;
    NetworkModel &net;
    const Placement &place;
    CoherenceSink &sink;
    std::vector<Memory *> mems;
    /**
     * The directory, sharded by home-node partition (one shard per
     * intra-job; a single shard when intraJobs == 1). A block's
     * entry lives in the shard owning its home node, so under the
     * parallel engine each partition thread touches only its own
     * shard (including the per-Directory lookup memo, which would
     * otherwise race).
     */
    std::vector<Directory> dirs_;
    /** numNodes / intraJobs: maps a home node to its shard. */
    std::size_t nodesPerShard_;
    /** Home protocol-controller occupancy, one per node. */
    std::vector<Resource> controllers;

    Directory &dirFor(NodeId home)
    {
        return dirs_[home / nodesPerShard_];
    }
    const Directory &dirFor(NodeId home) const
    {
        return dirs_[home / nodesPerShard_];
    }

    Addr blockAlign(Addr a) const { return a & ~(Addr(p.blockSize) - 1); }
    Addr pageOf(Addr a) const { return a / p.pageSize; }

    /** Classify a request against directory state (Section 3.1). */
    MissKind classify(const DirEntry &e, NodeId requester,
                      ReqType type) const;
};

} // namespace rnuma

#endif // RNUMA_PROTO_PROTOCOL_HH
