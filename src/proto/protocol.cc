#include "proto/protocol.hh"

#include "common/logging.hh"

namespace rnuma
{

GlobalProtocol::GlobalProtocol(const Params &params,
                               NetworkModel &net_,
                               const Placement &placement,
                               CoherenceSink &sink_,
                               std::vector<Memory *> memories)
    : p(params), net(net_), place(placement), sink(sink_),
      mems(std::move(memories)),
      nodesPerShard_(params.numNodes / params.intraJobs)
{
    RNUMA_ASSERT(mems.size() == p.numNodes,
                 "need one memory per node, got ", mems.size());
    dirs_.reserve(p.intraJobs);
    for (std::size_t s = 0; s < p.intraJobs; ++s)
        dirs_.emplace_back(p.blockSize, p.blocksPerPage(),
                           DirConfig::fromParams(p));
    controllers.reserve(p.numNodes);
    for (std::size_t i = 0; i < p.numNodes; ++i)
        controllers.emplace_back(p.radOccupancy);
}

NodeId
GlobalProtocol::homeOf(Addr addr) const
{
    return place.homeOf(addr / p.pageSize);
}

bool
GlobalProtocol::nodeOwns(NodeId node, Addr block) const
{
    // Every caller probes state the node itself is home for (or
    // runs with a single shard), so the node's shard is the block's.
    const Directory &d = dirs_.size() == 1 ? dirs_[0] : dirFor(node);
    const DirEntry *e = d.peek(block & ~(Addr(p.blockSize) - 1));
    return e && e->owner == node;
}

bool
GlobalProtocol::onlyHolder(NodeId node, Addr block) const
{
    const Directory &d = dirs_.size() == 1 ? dirs_[0] : dirFor(node);
    const DirEntry *e = d.peek(block & ~(Addr(p.blockSize) - 1));
    if (!e)
        return true;
    if (e->hasOwner() && e->owner != node)
        return false;
    auto others = e->sharers;
    others.reset(node);
    return others.none();
}

std::uint64_t
GlobalProtocol::dirEntryCount() const
{
    std::uint64_t n = 0;
    for (const Directory &d : dirs_)
        n += d.size();
    return n;
}

std::uint64_t
GlobalProtocol::dirStorageBits() const
{
    std::uint64_t n = 0;
    for (const Directory &d : dirs_)
        n += d.modeledStorageBits();
    return n;
}

bool
GlobalProtocol::fetchConfined(NodeId requester, Addr block,
                              bool write, NodeId lo, NodeId hi) const
{
    block = block & ~(Addr(p.blockSize) - 1);
    const DirEntry *e = dirFor(requester).peek(block);
    if (!e)
        return true; // first touch of the block: purely local fill
    // A dirty third-node owner means a forward (and on reads a
    // downgrade) to that node.
    if (e->hasOwner() && e->owner != requester &&
        (e->owner < lo || e->owner >= hi))
        return false;
    // Writes invalidate every apparent sharer.
    if (write && !e->sharers.withinRange(lo, hi))
        return false;
    return true;
}

bool
GlobalProtocol::wouldRefetch(NodeId requester, Addr block) const
{
    block = block & ~(Addr(p.blockSize) - 1);
    const DirEntry *e = dirFor(requester).peek(block);
    return e && (e->sharers.test(requester) ||
                 e->prior.test(requester) || e->owner == requester);
}

MissKind
GlobalProtocol::classify(const DirEntry &e, NodeId requester,
                         ReqType type) const
{
    if (type == ReqType::Upgrade) {
        // The node holds valid data; this is permission traffic, not
        // a block refetch.
        return MissKind::Coherence;
    }
    if (e.sharers.test(requester) || e.prior.test(requester) ||
        e.owner == requester) {
        // The directory believes the node already has the block: the
        // node lost it to capacity or conflict (Section 3.1).
        return MissKind::Refetch;
    }
    if (e.touched.test(requester))
        return MissKind::Coherence;
    return MissKind::Cold;
}

FetchResult
GlobalProtocol::fetch(Tick now, NodeId requester, Addr block,
                      ReqType type)
{
    block = blockAlign(block);
    NodeId home = homeOf(block);
    DirEntry &e = dirFor(home).entry(block);

    FetchResult res;
    res.kind = classify(e, requester, type);

    const bool local = requester == home;
    const bool write = type != ReqType::GetS;
    const bool need_data = type != ReqType::Upgrade;

    Tick t = now;
    if (!local) {
        // Outbound RAD traversal + request message to the home, then
        // the home controller performs the directory lookup. Local
        // accesses probe the directory in parallel with memory.
        t = controllers[requester].acquire(t) + p.radOccupancy;
        t = net.send(t, requester, home, MsgKind::Request);
        t = controllers[home].acquire(t) + p.dirAccess;
    }

    // Data acquisition: three-hop forward from a dirty owner, or a
    // home memory access.
    Tick data_at = t;
    if (need_data && e.hasOwner() && e.owner != requester) {
        NodeId owner = e.owner;
        Tick f = net.send(t, home, owner, MsgKind::Forward);
        f = controllers[owner].acquire(f) + p.sramAccess;
        // The dirty data returns home asynchronously.
        net.post(f, owner, home, MsgKind::Writeback);
        data_at = net.send(f, owner, local ? home : requester,
                           MsgKind::Reply);
        res.threeHop = true;
        if (write) {
            // Owner loses its copy below, with the other sharers.
        } else {
            sink.downgradeNodeCopy(owner, block);
            e.sharers.set(owner);
            e.owner = invalidNode;
        }
    } else if (need_data) {
        data_at = mems[home]->access(t, block);
        if (!local)
            data_at = net.send(data_at, home, requester, MsgKind::Reply);
    } else if (!local) {
        // Upgrade acknowledgment carries no data.
        data_at = net.send(t, home, requester, MsgKind::Reply);
    }

    // Invalidations for writes: sent in parallel from the home; the
    // requester waits for data and all acknowledgments.
    Tick ack_at = t;
    if (write) {
        // Sparse sharer sets may over-approximate (broadcast or
        // region bits), so this loop can invalidate nodes that never
        // held the block — the modeled cost of a sparse directory.
        // Every true sharer is always covered.
        Tick worst_wire = 0;
        for (NodeId m = 0; m < p.numNodes; ++m) {
            bool holds = e.sharers.test(m) || e.owner == m;
            if (!holds || m == requester)
                continue;
            sink.invalidateNodeCopy(m, block);
            net.post(t, home, m, MsgKind::Invalidate);
            e.sharers.reset(m);
            e.prior.reset(m);
            res.invalidations++;
            const Tick wire = net.latency(home, m);
            if (wire > worst_wire)
                worst_wire = wire;
        }
        if (res.invalidations > 0) {
            // Invalidations fan out in parallel; the requester waits
            // for the farthest round trip (out + ack). The constant
            // model's latency() is netLatency for every pair, which
            // reproduces the historical 2 * netLatency bound exactly.
            ack_at = t + 2 * worst_wire + p.niOccupancy;
        }
    }

    // Directory state update for the requester.
    e.touched.set(requester);
    e.prior.reset(requester);
    if (write) {
        e.sharers.reset();
        e.sharers.set(requester);
        e.owner = requester;
        res.exclusiveGrant = true;
    } else {
        if (e.owner == requester) {
            // Defensive: a read request from the registered owner
            // means local state was lost without notification; treat
            // the home copy as current and clear ownership.
            e.owner = invalidNode;
        }
        e.sharers.set(requester);
        res.exclusiveGrant = e.sharerCount() == 1 && !e.hasOwner();
    }

    Tick done = data_at > ack_at ? data_at : ack_at;
    if (!local)
        done += p.radOccupancy;
    res.done = done;
    return res;
}

void
GlobalProtocol::writeback(Tick now, NodeId from, Addr block)
{
    block = blockAlign(block);
    NodeId home = homeOf(block);
    DirEntry &e = dirFor(home).entry(block);
    if (e.owner == from) {
        e.owner = invalidNode;
        e.sharers.reset(from);
        // Remember the voluntary writeback so a later re-request is
        // classified as a read-write refetch (Section 3.1). The
        // ablation switch drops this extra state.
        if (p.priorOwnerState)
            e.prior.set(from);
    }
    net.post(now, from, home, MsgKind::Writeback);
}

void
GlobalProtocol::flushBlock(Tick now, NodeId from, Addr block, bool dirty)
{
    block = blockAlign(block);
    NodeId home = homeOf(block);
    DirEntry &e = dirFor(home).entry(block);
    e.sharers.reset(from);
    e.prior.reset(from);
    if (e.owner == from)
        e.owner = invalidNode;
    net.post(now, from, home, MsgKind::Flush);
    (void)dirty;
}

void
GlobalProtocol::illegalSilentUpgrade(NodeId node, Addr block)
{
    RNUMA_PANIC("node ", node, " silently upgraded block ", block);
}

} // namespace rnuma
