/**
 * @file
 * The protocol registry: string-keyed, composable system descriptions
 * replacing the closed CCNuma/SComa/RNuma enum as the simulator's
 * selection currency.
 *
 * The paper's central observation (Section 3, Figure 4) is that
 * CC-NUMA, S-COMA, and R-NUMA differ only in their Remote Access
 * Device, and that the *reactive* part of R-NUMA is a small per-page
 * decision rule layered on a hybrid RAD. A ProtocolSpec captures
 * exactly that factoring: a stable id (the JSON/compare currency), a
 * display name, a Rad factory, and — for hybrid RADs — a
 * RelocationPolicy factory. The three paper systems are the first
 * three registrations; new hybrid designs (hysteresis, adaptive
 * thresholds, anything else a RelocationPolicy can express) are
 * one registration away and immediately sweepable by the driver and
 * selectable from the rnuma_sweep CLI (--protocol, --list-protocols).
 */

#ifndef RNUMA_PROTO_REGISTRY_HH
#define RNUMA_PROTO_REGISTRY_HH

#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/relocation_policy.hh"
#include "rad/rad.hh"

namespace rnuma
{

/** Builds one node's RAD for a machine run. */
using RadFactory = std::function<std::unique_ptr<Rad>(
    const Params &, NodeId, RadDeps)>;

/** Builds one node's relocation policy (hybrid RADs only). */
using PolicyFactory =
    std::function<std::unique_ptr<RelocationPolicy>(const Params &)>;

/**
 * One selectable system. Value-semantic: cells and machines copy the
 * spec they run under, so ad-hoc variants (e.g. Figure 8's
 * per-threshold cells) need not live in the global registry.
 */
struct ProtocolSpec
{
    /**
     * Stable machine-readable id: the JSON artifact / compare-gate /
     * CLI currency ("ccnuma", "rnuma-hysteresis", ...). Lowercase,
     * no spaces.
     */
    std::string id;
    /** Human-readable name for tables and logs ("CC-NUMA"). */
    std::string displayName;
    /** One-line description for --list-protocols. */
    std::string description;
    /** Required: builds the RAD. */
    RadFactory makeRad;
    /**
     * Optional: the relocation policy a hybrid RAD runs. Exposed (and
     * not just captured inside makeRad) so tooling can describe the
     * policy and tests can instantiate it standalone.
     */
    PolicyFactory makePolicy;

    bool valid() const { return !id.empty() && makeRad != nullptr; }
};

/**
 * The process-wide name -> ProtocolSpec table. Lookup accepts the
 * stable id, the display name, and enum-era spellings
 * (case-insensitively), so pre-registry artifacts and call sites
 * keep resolving. Specs have stable addresses for the registry's
 * lifetime.
 *
 * Thread-safe: registration takes an exclusive lock and lookups a
 * shared one, so sweep workers may register and resolve specs
 * concurrently (previously the table was unguarded and only safe
 * for static init + main-thread use). Returned spec pointers stay
 * valid forever — specs are never removed or moved.
 */
class ProtocolRegistry
{
  public:
    /** The global registry, with the built-ins pre-registered. */
    static ProtocolRegistry &global();

    /**
     * Register a spec. Fatal on an invalid spec or a duplicate id.
     * @return the registered (stably stored) spec.
     */
    const ProtocolSpec &add(ProtocolSpec spec);

    /** Look up by id/display/enum-era name; nullptr when unknown. */
    const ProtocolSpec *find(const std::string &name) const;

    /** Look up; fatal (std::runtime_error under tests) when unknown. */
    const ProtocolSpec &at(const std::string &name) const;

    /** All specs, in registration order (built-ins first). */
    std::vector<const ProtocolSpec *> all() const;

    std::size_t size() const;

  private:
    ProtocolRegistry();

    /** find() without taking the lock (callers hold it). */
    const ProtocolSpec *findLocked(const std::string &name) const;

    /** Guards specs_: exclusive for add, shared for lookups. */
    mutable std::shared_mutex mutex_;
    std::vector<std::unique_ptr<ProtocolSpec>> specs_;
};

/**
 * Normalize a protocol label to its stable id: lowercases and maps
 * the enum-era display names ("CC-NUMA" -> "ccnuma", "S-COMA" ->
 * "scoma", "R-NUMA" -> "rnuma"). Unknown labels pass through
 * lowercased — the shim the compare gate uses to diff v3 results
 * against enum-era baselines.
 */
std::string canonicalProtocolId(const std::string &name);

/** Shorthand for ProtocolRegistry::global().at(name). */
const ProtocolSpec &protocolSpec(const std::string &name);

/** Shorthand for ProtocolRegistry::global().find(name). */
const ProtocolSpec *findProtocolSpec(const std::string &name);

/** The registered spec of a legacy enum value. */
const ProtocolSpec &builtinSpec(Protocol proto);

/** Stable id of a legacy enum value ("ccnuma"/"scoma"/"rnuma"). */
const char *protocolId(Protocol proto);

/**
 * Build an unregistered hybrid-RAD spec (block cache + page cache +
 * @p policy): the one-liner for experimenting with a new relocation
 * policy before promoting it to a registration.
 */
ProtocolSpec hybridSpec(std::string id, std::string displayName,
                        std::string description,
                        PolicyFactory policy);

/**
 * An unregistered R-NUMA variant pinning the static threshold to
 * @p threshold regardless of Params::relocationThreshold. Figure 8's
 * threshold sensitivity is a sweep over these specs.
 */
ProtocolSpec staticThresholdSpec(std::size_t threshold);

} // namespace rnuma

#endif // RNUMA_PROTO_REGISTRY_HH
