#include "proto/registry.hh"

#include <cctype>
#include <cmath>
#include <mutex>

#include "common/logging.hh"
#include "core/analytic_model.hh"
#include "rad/ccnuma_rad.hh"
#include "rad/rnuma_rad.hh"
#include "rad/scoma_rad.hh"

namespace rnuma
{

std::string
canonicalProtocolId(const std::string &name)
{
    std::string s;
    s.reserve(name.size());
    for (char c : name)
        s.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    // Enum-era display names (protocolName()) map onto the stable
    // ids so pre-registry baselines and call sites keep resolving.
    if (s == "cc-numa")
        return "ccnuma";
    if (s == "s-coma")
        return "scoma";
    if (s == "r-numa")
        return "rnuma";
    return s;
}

ProtocolSpec
hybridSpec(std::string id, std::string displayName,
           std::string description, PolicyFactory policy)
{
    RNUMA_ASSERT(policy, "hybrid spec '", id, "' needs a policy");
    ProtocolSpec s;
    s.id = std::move(id);
    s.displayName = std::move(displayName);
    s.description = std::move(description);
    s.makePolicy = policy;
    s.makeRad = [policy](const Params &p, NodeId node, RadDeps deps) {
        return std::unique_ptr<Rad>(
            std::make_unique<RNumaRad>(p, node, deps, policy(p)));
    };
    return s;
}

ProtocolSpec
staticThresholdSpec(std::size_t threshold)
{
    return hybridSpec(
        "rnuma-t" + std::to_string(threshold),
        "R-NUMA(T=" + std::to_string(threshold) + ")",
        "R-NUMA with the relocation threshold pinned to " +
            std::to_string(threshold),
        [threshold](const Params &) {
            return std::unique_ptr<RelocationPolicy>(
                std::make_unique<StaticThresholdPolicy>(threshold));
        });
}

ProtocolRegistry::ProtocolRegistry()
{
    ProtocolSpec cc;
    cc.id = "ccnuma";
    cc.displayName = "CC-NUMA";
    cc.description =
        "block cache only; remote data cached at 32 B granularity";
    cc.makeRad = [](const Params &p, NodeId node, RadDeps deps) {
        return std::unique_ptr<Rad>(
            std::make_unique<CcNumaRad>(p, node, deps));
    };
    add(std::move(cc));

    ProtocolSpec sc;
    sc.id = "scoma";
    sc.displayName = "S-COMA";
    sc.description =
        "page cache only; remote pages allocated in local memory";
    sc.makeRad = [](const Params &p, NodeId node, RadDeps deps) {
        return std::unique_ptr<Rad>(
            std::make_unique<SComaRad>(p, node, deps));
    };
    add(std::move(sc));

    add(hybridSpec(
        "rnuma", "R-NUMA",
        "hybrid RAD; pages relocate after "
        "Params::relocationThreshold refetches (Section 3.1)",
        [](const Params &p) {
            return std::unique_ptr<RelocationPolicy>(
                std::make_unique<StaticThresholdPolicy>(
                    p.relocationThreshold));
        }));

    add(hybridSpec(
        "rnuma-hysteresis", "R-NUMA(hyst)",
        "hybrid RAD; pages evicted from the page cache need 4x the "
        "refetches to relocate again (no ping-pong)",
        [](const Params &p) {
            return std::unique_ptr<RelocationPolicy>(
                std::make_unique<HysteresisPolicy>(
                    p.relocationThreshold,
                    4 * p.relocationThreshold));
        }));

    add(hybridSpec(
        "rnuma-adaptive", "R-NUMA(adapt)",
        "hybrid RAD; per-page threshold halves on relocation and "
        "escalates 2x per relocate/evict ping-pong, tracking the "
        "Eq 3 optimum",
        [](const Params &p) {
            std::size_t t = p.relocationThreshold;
            std::size_t lo = t / 16 < 1 ? 1 : t / 16;
            return std::unique_ptr<RelocationPolicy>(
                std::make_unique<AdaptiveThresholdPolicy>(t, lo,
                                                          16 * t));
        }));

    add(hybridSpec(
        "rnuma-model", "R-NUMA(model)",
        "hybrid RAD; static threshold seeded from the Section 3.2 "
        "cost model's optimum T* = C_alloc / C_refetch",
        [](const Params &p) {
            // Eq 3's T* assumes the half-occupied page move the
            // eq3 figure also evaluates (Table 1's C_allocate at
            // blocksPerPage()/2 valid blocks).
            AnalyticModel model(ModelParams::fromSystem(
                p, p.blocksPerPage() / 2));
            auto t = static_cast<std::size_t>(
                std::llround(model.optimalThreshold()));
            if (t < 1)
                t = 1;
            return std::unique_ptr<RelocationPolicy>(
                std::make_unique<StaticThresholdPolicy>(t));
        }));

    // The utility-aware family: policies that consume the
    // residentHits feedback RNumaRad delivers at eviction. All three
    // anchor their notion of "profitable residency" to the same Eq 3
    // cost ratio the rnuma-model spec uses: a residency that served
    // T* = C_alloc / C_refetch page-cache hits repaid its page
    // operations.

    add(hybridSpec(
        "rnuma-utility", "R-NUMA(utility)",
        "hybrid RAD; evictions escalate the per-page threshold only "
        "below the Eq 3 break-even hit count — profitable "
        "residencies decay it instead",
        [](const Params &p) {
            std::size_t t = p.relocationThreshold;
            std::size_t lo = t / 16 < 1 ? 1 : t / 16;
            AnalyticModel model(ModelParams::fromSystem(
                p, p.blocksPerPage() / 2));
            auto be = static_cast<std::uint64_t>(
                std::llround(model.optimalThreshold()));
            if (be < 1)
                be = 1;
            return std::unique_ptr<RelocationPolicy>(
                std::make_unique<UtilityThresholdPolicy>(t, lo, 16 * t,
                                                         be));
        }));

    add(hybridSpec(
        "rnuma-online-model", "R-NUMA(online)",
        "hybrid RAD; re-estimates the Eq 3 optimum online — the "
        "global threshold is T* minus the observed EWMA of resident "
        "hits per eviction",
        [](const Params &p) {
            AnalyticModel model(ModelParams::fromSystem(
                p, p.blocksPerPage() / 2));
            double tStar = model.optimalThreshold();
            if (tStar < 1.0)
                tStar = 1.0;
            return std::unique_ptr<RelocationPolicy>(
                std::make_unique<OnlineModelPolicy>(
                    tStar, 1, 16 * p.relocationThreshold));
        }));

    add(hybridSpec(
        "rnuma-ewma", "R-NUMA(ewma)",
        "hybrid RAD; per-page EWMA utility score (resident hits vs "
        "the Eq 3 break-even) interpolates the threshold between "
        "trust and distrust",
        [](const Params &p) {
            std::size_t t = p.relocationThreshold;
            std::size_t lo = t / 16 < 1 ? 1 : t / 16;
            // min + max = 2t, so the no-evidence midpoint threshold
            // is exactly the configured base T.
            std::size_t hi = 2 * t - lo;
            AnalyticModel model(ModelParams::fromSystem(
                p, p.blocksPerPage() / 2));
            auto be = static_cast<std::uint64_t>(
                std::llround(model.optimalThreshold()));
            if (be < 1)
                be = 1;
            return std::unique_ptr<RelocationPolicy>(
                std::make_unique<EwmaUtilityPolicy>(lo, hi, be, 0.5));
        }));
}

ProtocolRegistry &
ProtocolRegistry::global()
{
    static ProtocolRegistry reg;
    return reg;
}

const ProtocolSpec &
ProtocolRegistry::add(ProtocolSpec spec)
{
    RNUMA_ASSERT(spec.valid(), "protocol spec needs an id and a Rad "
                 "factory");
    RNUMA_ASSERT(spec.id == canonicalProtocolId(spec.id),
                 "protocol id '", spec.id,
                 "' is not canonical (lowercase, no enum-era "
                 "spelling)");
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (findLocked(spec.id)) {
        RNUMA_FATAL("protocol '", spec.id,
                    "' is already registered");
    }
    specs_.push_back(
        std::make_unique<ProtocolSpec>(std::move(spec)));
    return *specs_.back();
}

const ProtocolSpec *
ProtocolRegistry::findLocked(const std::string &name) const
{
    std::string id = canonicalProtocolId(name);
    for (const auto &s : specs_) {
        if (s->id == id || canonicalProtocolId(s->displayName) == id)
            return s.get();
    }
    return nullptr;
}

const ProtocolSpec *
ProtocolRegistry::find(const std::string &name) const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return findLocked(name);
}

const ProtocolSpec &
ProtocolRegistry::at(const std::string &name) const
{
    const ProtocolSpec *s = find(name);
    if (!s) {
        RNUMA_FATAL("unknown protocol '", name,
                    "' (see rnuma_sweep --list-protocols)");
    }
    return *s;
}

std::vector<const ProtocolSpec *>
ProtocolRegistry::all() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    std::vector<const ProtocolSpec *> out;
    out.reserve(specs_.size());
    for (const auto &s : specs_)
        out.push_back(s.get());
    return out;
}

std::size_t
ProtocolRegistry::size() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return specs_.size();
}

const ProtocolSpec &
protocolSpec(const std::string &name)
{
    return ProtocolRegistry::global().at(name);
}

const ProtocolSpec *
findProtocolSpec(const std::string &name)
{
    return ProtocolRegistry::global().find(name);
}

const char *
protocolId(Protocol proto)
{
    switch (proto) {
      case Protocol::CCNuma: return "ccnuma";
      case Protocol::SComa:  return "scoma";
      case Protocol::RNuma:  return "rnuma";
    }
    RNUMA_PANIC("unknown protocol enum value");
}

const ProtocolSpec &
builtinSpec(Protocol proto)
{
    return protocolSpec(protocolId(proto));
}

std::unique_ptr<Rad>
makeRad(const ProtocolSpec &spec, const Params &params, NodeId node,
        RadDeps deps)
{
    RNUMA_ASSERT(spec.valid(), "protocol spec '", spec.id,
                 "' has no Rad factory");
    return spec.makeRad(params, node, deps);
}

std::unique_ptr<Rad>
makeRad(Protocol proto, const Params &params, NodeId node,
        RadDeps deps)
{
    return builtinSpec(proto).makeRad(params, node, deps);
}

} // namespace rnuma
