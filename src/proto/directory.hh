/**
 * @file
 * Directory state for the DSM coherence protocol. Every cache block
 * has an entry at its home node tracking sharers, the exclusive
 * owner, and the extra "prior owner" state the paper adds so the
 * directory can detect refetches of read-write blocks that were
 * voluntarily written back (Section 3.1).
 *
 * The sharer-tracking representation is pluggable (SharerSet,
 * selected by Params::dirFormat): the paper's exact full-map bit
 * vector, a limited-pointer Dir_iB that keeps up to i exact node ids
 * and degrades to broadcast on overflow, or a coarse vector with one
 * bit per r-node region — the standard post-ISCA-97 scaling fixes
 * that make directory memory O(sharers) instead of O(nodes). Both
 * sparse formats over-approximate (they may name non-sharers but
 * never miss a true sharer), so correctness is preserved and the
 * cost of sparseness shows up where it does in hardware: extra
 * invalidation traffic.
 */

#ifndef RNUMA_PROTO_DIRECTORY_HH
#define RNUMA_PROTO_DIRECTORY_HH

#include <algorithm>
#include <bitset>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/params.hh"
#include "common/types.hh"

namespace rnuma
{

/** Directory sizing/format configuration, derived from Params. */
struct DirConfig
{
    SharerFormat format = SharerFormat::FullMap;
    /** Nodes the machine actually has (bounds broadcast costs). */
    std::size_t nodes = maxNodes;
    /** Exact pointers per entry (LimitedPointer). */
    std::size_t pointers = 4;
    /** Nodes per region bit (CoarseVector). */
    std::size_t regionSize = 8;

    static DirConfig
    fromParams(const Params &p)
    {
        DirConfig c;
        c.format = p.dirFormat;
        c.nodes = p.numNodes;
        c.pointers = p.dirPointers;
        c.regionSize = p.dirRegionSize;
        return c;
    }

    /** ceil(log2(n)), with ceilLog2(0/1) == 0. */
    static std::size_t
    ceilLog2(std::size_t n)
    {
        std::size_t bits = 0;
        while ((std::size_t{1} << bits) < n)
            ++bits;
        return bits;
    }

    /**
     * Modeled hardware bits per directory entry: the two sharer sets
     * (sharers + prior) in the configured format plus the owner
     * field. Full-map costs 2 bits per node; limited-pointer costs
     * i exact pointers plus an overflow bit per set; coarse-vector
     * one bit per region. (The `touched` set is simulator
     * classification state, not modeled hardware, and is excluded.)
     */
    std::size_t
    entryBits() const
    {
        const std::size_t owner_bits = ceilLog2(nodes) + 1;
        switch (format) {
          case SharerFormat::FullMap:
            return 2 * nodes + owner_bits;
          case SharerFormat::LimitedPointer:
            return 2 * (pointers * ceilLog2(nodes) + 1) + owner_bits;
          case SharerFormat::CoarseVector:
            return 2 * ((nodes + regionSize - 1) / regionSize) +
                owner_bits;
        }
        return 0;
    }
};

/**
 * One pluggable-representation set of node ids. Full-map is exact;
 * limited-pointer and coarse-vector are conservative
 * over-approximations: test() may report a node that was never
 * set(), but a node that was set() and not individually reset() is
 * always reported. Degradation rules:
 *
 *  - LimitedPointer: up to `pointers` exact ids; one more set()
 *    flips the entry to broadcast (test() true for every node,
 *    count() == nodes). reset(n) of one node cannot un-broadcast;
 *    only a full reset() (protocol-wide invalidation/flush) clears
 *    the overflow.
 *  - CoarseVector: one bit per region of `regionSize` nodes;
 *    reset(n) is a no-op because other sharers may map to the same
 *    region bit.
 *
 * Default construction is an exact full-map over maxNodes, which is
 * what `DirEntry e;` in the unit tests and the pre-sparse protocol
 * relied on.
 */
class SharerSet
{
  public:
    SharerSet() = default;

    explicit SharerSet(const DirConfig &cfg)
        : format_(cfg.format),
          nodes_(static_cast<std::uint32_t>(cfg.nodes)),
          maxPtrs_(static_cast<std::uint32_t>(cfg.pointers)),
          regionSize_(static_cast<std::uint32_t>(cfg.regionSize))
    {
    }

    void
    set(NodeId n)
    {
        switch (format_) {
          case SharerFormat::FullMap:
            bits_.set(n);
            return;
          case SharerFormat::LimitedPointer:
            if (overflowed_ || havePtr(n))
                return;
            if (ptrs_.size() < maxPtrs_) {
                ptrs_.push_back(static_cast<std::uint16_t>(n));
            } else {
                // Dir_iB: the i+1'th distinct sharer flips the
                // entry to broadcast.
                ptrs_.clear();
                overflowed_ = true;
            }
            return;
          case SharerFormat::CoarseVector:
            bits_.set(n / regionSize_);
            return;
        }
    }

    /** Remove one node, where the representation can express that. */
    void
    reset(NodeId n)
    {
        switch (format_) {
          case SharerFormat::FullMap:
            bits_.reset(n);
            return;
          case SharerFormat::LimitedPointer:
            if (!overflowed_)
                dropPtr(n);
            return;
          case SharerFormat::CoarseVector:
            // Cannot clear a region bit: other sharers may map to it.
            return;
        }
    }

    /** Clear the whole set (always exact, in every format). */
    void
    reset()
    {
        bits_.reset();
        ptrs_.clear();
        overflowed_ = false;
    }

    bool
    test(NodeId n) const
    {
        switch (format_) {
          case SharerFormat::FullMap:
            return bits_.test(n);
          case SharerFormat::LimitedPointer:
            return overflowed_ || havePtr(n);
          case SharerFormat::CoarseVector:
            return bits_.test(n / regionSize_);
        }
        return false;
    }

    bool
    none() const
    {
        switch (format_) {
          case SharerFormat::FullMap:
          case SharerFormat::CoarseVector:
            return bits_.none();
          case SharerFormat::LimitedPointer:
            return !overflowed_ && ptrs_.empty();
        }
        return true;
    }

    /**
     * Apparent sharer count (over-approximate for the sparse
     * formats: nodes for a broadcast entry, region population times
     * region size for coarse bits, clamped to the machine size).
     */
    std::size_t
    count() const
    {
        switch (format_) {
          case SharerFormat::FullMap:
            return bits_.count();
          case SharerFormat::LimitedPointer:
            return overflowed_ ? nodes_ : ptrs_.size();
          case SharerFormat::CoarseVector:
            return std::min<std::size_t>(bits_.count() * regionSize_,
                                         nodes_);
        }
        return 0;
    }

    /**
     * Conservative containment test: true only when every node the
     * set could report via test() lies in [lo, hi). Used by the
     * parallel engine's confinement check — a false negative merely
     * defers a miss to the serial coordinator, so the sparse formats
     * answer pessimistically (a broadcast entry fits only a
     * full-machine range; a coarse region must lie entirely inside).
     */
    bool
    withinRange(NodeId lo, NodeId hi) const
    {
        switch (format_) {
          case SharerFormat::FullMap:
            for (NodeId n = 0; n < nodes_; ++n)
                if (bits_.test(n) && (n < lo || n >= hi))
                    return false;
            return true;
          case SharerFormat::LimitedPointer:
            if (overflowed_)
                return lo == 0 && hi >= nodes_;
            for (std::uint16_t p : ptrs_)
                if (p < lo || p >= hi)
                    return false;
            return true;
          case SharerFormat::CoarseVector:
            for (std::uint32_t r = 0;
                 r * regionSize_ < nodes_; ++r) {
                if (!bits_.test(r))
                    continue;
                const NodeId first = r * regionSize_;
                const NodeId last = std::min<NodeId>(
                    first + regionSize_, nodes_);
                if (first < lo || last > hi)
                    return false;
            }
            return true;
        }
        return false;
    }

    /** A limited-pointer entry that has degraded to broadcast. */
    bool overflowed() const { return overflowed_; }

    SharerFormat format() const { return format_; }

  private:
    bool
    havePtr(NodeId n) const
    {
        for (std::uint16_t p : ptrs_)
            if (p == n)
                return true;
        return false;
    }

    void
    dropPtr(NodeId n)
    {
        for (std::size_t i = 0; i < ptrs_.size(); ++i) {
            if (ptrs_[i] == n) {
                ptrs_[i] = ptrs_.back();
                ptrs_.pop_back();
                return;
            }
        }
    }

    SharerFormat format_ = SharerFormat::FullMap;
    std::uint32_t nodes_ = maxNodes;
    std::uint32_t maxPtrs_ = 0;
    std::uint32_t regionSize_ = 1;
    bool overflowed_ = false;
    /** Full-map node bits, or coarse region bits (low indices). */
    std::bitset<maxNodes> bits_;
    /** Exact node ids (LimitedPointer, when not overflowed). */
    std::vector<std::uint16_t> ptrs_;
};

/** Directory entry for one coherence block. */
struct DirEntry
{
    DirEntry() = default;

    explicit DirEntry(const DirConfig &cfg)
        : sharers(cfg), prior(cfg)
    {
    }

    /**
     * Nodes the directory believes hold a copy. Read-only copies are
     * evicted silently (non-notifying protocol), so a bit may be
     * stale — which is precisely how read refetches are detected: a
     * request from a node whose bit is still set means the node lost
     * its copy to capacity or conflict, not coherence.
     */
    SharerSet sharers;

    /**
     * Nodes that previously held the block exclusively and
     * voluntarily wrote it back (block-cache eviction). A request
     * from such a node is a refetch of a read-write block.
     */
    SharerSet prior;

    /**
     * Nodes that have ever fetched the block (cold-miss detection).
     * Simulator classification state, always exact — not part of the
     * modeled hardware entry (DirConfig::entryBits()).
     */
    std::bitset<maxNodes> touched;

    /** Node holding the block exclusively (dirty), if any. */
    NodeId owner = invalidNode;

    bool hasOwner() const { return owner != invalidNode; }

    /** Number of (apparent) sharers. */
    std::size_t sharerCount() const { return sharers.count(); }
};

/**
 * The directory for the whole machine, keyed by block address. In
 * hardware each home node holds the slice for its own pages; a single
 * store is behaviorally identical and simpler.
 *
 * Storage is a page-grouped arena rather than a per-block hash map:
 * the first touch of any block on a page allocates one fixed-size
 * group holding that page's `blocks_per_page` entries, so the hash
 * map shrinks by that factor and consecutive blocks of a page — the
 * access pattern the workloads overwhelmingly produce — land in
 * adjacent memory. A one-entry memo of the last group resolved makes
 * the common same-page run of lookups skip the hash entirely.
 * Groups are never resized or erased, so entry references stay valid
 * for the Directory's lifetime (the protocol holds a DirEntry
 * reference across coherence callbacks that may create entries for
 * other blocks).
 *
 * All block addresses passed in must be block-aligned, as every
 * protocol call site guarantees (fetch/writeback/flushBlock align
 * before lookup).
 */
class Directory
{
  public:
    /**
     * @param block_bytes     coherence block size (power of two)
     * @param blocks_per_page grouping factor; rounded down to a
     *        power of two. The defaults degenerate to one entry per
     *        group (a plain per-block map), which is what the
     *        geometry-free unit tests construct.
     * @param cfg             sharer-set format; defaults to the
     *        exact full-map the paper models.
     */
    explicit Directory(std::size_t block_bytes = 1,
                       std::size_t blocks_per_page = 1,
                       DirConfig cfg = {})
        : cfg_(cfg), proto_(cfg)
    {
        while ((std::size_t{1} << (blockShift_ + 1)) <= block_bytes)
            ++blockShift_;
        std::size_t group = 1;
        while (group * 2 <= blocks_per_page)
            group *= 2;
        groupBlocks_ = group;
        while ((std::size_t{1} << groupShift_) < groupBlocks_)
            ++groupShift_;
        idxMask_ = groupBlocks_ - 1;
    }

    /** Find-or-create the entry for a block address. */
    DirEntry &
    entry(Addr block)
    {
        const Addr bi = block >> blockShift_;
        Group *g = resolve(bi >> groupShift_, true);
        const std::size_t idx =
            static_cast<std::size_t>(bi) & idxMask_;
        if (!g->live[idx]) {
            g->live[idx] = 1;
            ++liveCount_;
        }
        return g->entries[idx];
    }

    /** Read-only probe; nullptr when the block was never touched. */
    const DirEntry *
    peek(Addr block) const
    {
        const Addr bi = block >> blockShift_;
        const Group *g = const_cast<Directory *>(this)->resolve(
            bi >> groupShift_, false);
        if (!g)
            return nullptr;
        const std::size_t idx =
            static_cast<std::size_t>(bi) & idxMask_;
        return g->live[idx] ? &g->entries[idx] : nullptr;
    }

    /** Number of blocks with directory state. */
    std::size_t size() const { return liveCount_; }

    const DirConfig &config() const { return cfg_; }

    /**
     * Modeled directory storage: live entries times the per-entry
     * hardware cost of the configured format — the number the
     * scaling figure reports to show sparse formats are O(sharers),
     * not O(nodes).
     */
    std::uint64_t
    modeledStorageBits() const
    {
        return static_cast<std::uint64_t>(liveCount_) *
            static_cast<std::uint64_t>(cfg_.entryBits());
    }

  private:
    /**
     * One page's entries. The vectors are sized once at creation and
     * never touched again, so DirEntry references are stable.
     */
    struct Group
    {
        std::vector<DirEntry> entries;
        std::vector<char> live;
    };

    Group *
    resolve(Addr key, bool create)
    {
        if (lastGroup_ && lastKey_ == key)
            return lastGroup_;
        Group *g;
        if (create) {
            Group &ref = groups_[key];
            if (ref.entries.empty()) {
                ref.entries.assign(groupBlocks_, proto_);
                ref.live.assign(groupBlocks_, 0);
            }
            g = &ref;
        } else {
            auto it = groups_.find(key);
            if (it == groups_.end())
                return nullptr;
            g = &it->second;
        }
        lastKey_ = key;
        lastGroup_ = g;
        return g;
    }

    DirConfig cfg_;
    /** Prototype entry carrying the configured sharer-set format. */
    DirEntry proto_;
    unsigned blockShift_ = 0;
    std::size_t groupBlocks_ = 1;
    unsigned groupShift_ = 0;
    std::size_t idxMask_ = 0;
    std::unordered_map<Addr, Group> groups_;
    std::size_t liveCount_ = 0;
    /** Memo of the last group resolved (groups are never erased). */
    mutable Addr lastKey_ = 0;
    mutable Group *lastGroup_ = nullptr;
};

} // namespace rnuma

#endif // RNUMA_PROTO_DIRECTORY_HH
