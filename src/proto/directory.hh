/**
 * @file
 * Directory state for the DSM coherence protocol. Every cache block
 * has a full-map entry at its home node tracking sharers, the
 * exclusive owner, and the extra "prior owner" state the paper adds
 * so the directory can detect refetches of read-write blocks that
 * were voluntarily written back (Section 3.1).
 */

#ifndef RNUMA_PROTO_DIRECTORY_HH
#define RNUMA_PROTO_DIRECTORY_HH

#include <bitset>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace rnuma
{

/** Full-map directory entry for one coherence block. */
struct DirEntry
{
    /**
     * Nodes the directory believes hold a copy. Read-only copies are
     * evicted silently (non-notifying protocol), so a bit may be
     * stale — which is precisely how read refetches are detected: a
     * request from a node whose bit is still set means the node lost
     * its copy to capacity or conflict, not coherence.
     */
    std::bitset<maxNodes> sharers;

    /**
     * Nodes that previously held the block exclusively and
     * voluntarily wrote it back (block-cache eviction). A request
     * from such a node is a refetch of a read-write block.
     */
    std::bitset<maxNodes> prior;

    /** Nodes that have ever fetched the block (cold-miss detection). */
    std::bitset<maxNodes> touched;

    /** Node holding the block exclusively (dirty), if any. */
    NodeId owner = invalidNode;

    bool hasOwner() const { return owner != invalidNode; }

    /** Number of valid sharer bits. */
    std::size_t sharerCount() const { return sharers.count(); }
};

/**
 * The directory for the whole machine, keyed by block address. In
 * hardware each home node holds the slice for its own pages; a single
 * store is behaviorally identical and simpler.
 *
 * Storage is a page-grouped arena rather than a per-block hash map:
 * the first touch of any block on a page allocates one fixed-size
 * group holding that page's `blocks_per_page` entries, so the hash
 * map shrinks by that factor and consecutive blocks of a page — the
 * access pattern the workloads overwhelmingly produce — land in
 * adjacent memory. A one-entry memo of the last group resolved makes
 * the common same-page run of lookups skip the hash entirely.
 * Groups are never resized or erased, so entry references stay valid
 * for the Directory's lifetime (the protocol holds a DirEntry
 * reference across coherence callbacks that may create entries for
 * other blocks).
 *
 * All block addresses passed in must be block-aligned, as every
 * protocol call site guarantees (fetch/writeback/flushBlock align
 * before lookup).
 */
class Directory
{
  public:
    /**
     * @param block_bytes     coherence block size (power of two)
     * @param blocks_per_page grouping factor; rounded down to a
     *        power of two. The defaults degenerate to one entry per
     *        group (a plain per-block map), which is what the
     *        geometry-free unit tests construct.
     */
    explicit Directory(std::size_t block_bytes = 1,
                       std::size_t blocks_per_page = 1)
    {
        while ((std::size_t{1} << (blockShift_ + 1)) <= block_bytes)
            ++blockShift_;
        std::size_t group = 1;
        while (group * 2 <= blocks_per_page)
            group *= 2;
        groupBlocks_ = group;
        while ((std::size_t{1} << groupShift_) < groupBlocks_)
            ++groupShift_;
        idxMask_ = groupBlocks_ - 1;
    }

    /** Find-or-create the entry for a block address. */
    DirEntry &
    entry(Addr block)
    {
        const Addr bi = block >> blockShift_;
        Group *g = resolve(bi >> groupShift_, true);
        const std::size_t idx =
            static_cast<std::size_t>(bi) & idxMask_;
        if (!g->live[idx]) {
            g->live[idx] = 1;
            ++liveCount_;
        }
        return g->entries[idx];
    }

    /** Read-only probe; nullptr when the block was never touched. */
    const DirEntry *
    peek(Addr block) const
    {
        const Addr bi = block >> blockShift_;
        const Group *g = const_cast<Directory *>(this)->resolve(
            bi >> groupShift_, false);
        if (!g)
            return nullptr;
        const std::size_t idx =
            static_cast<std::size_t>(bi) & idxMask_;
        return g->live[idx] ? &g->entries[idx] : nullptr;
    }

    /** Number of blocks with directory state. */
    std::size_t size() const { return liveCount_; }

  private:
    /**
     * One page's entries. The vectors are sized once at creation and
     * never touched again, so DirEntry references are stable.
     */
    struct Group
    {
        std::vector<DirEntry> entries;
        std::vector<char> live;
    };

    Group *
    resolve(Addr key, bool create)
    {
        if (lastGroup_ && lastKey_ == key)
            return lastGroup_;
        Group *g;
        if (create) {
            Group &ref = groups_[key];
            if (ref.entries.empty()) {
                ref.entries.resize(groupBlocks_);
                ref.live.assign(groupBlocks_, 0);
            }
            g = &ref;
        } else {
            auto it = groups_.find(key);
            if (it == groups_.end())
                return nullptr;
            g = &it->second;
        }
        lastKey_ = key;
        lastGroup_ = g;
        return g;
    }

    unsigned blockShift_ = 0;
    std::size_t groupBlocks_ = 1;
    unsigned groupShift_ = 0;
    std::size_t idxMask_ = 0;
    std::unordered_map<Addr, Group> groups_;
    std::size_t liveCount_ = 0;
    /** Memo of the last group resolved (groups are never erased). */
    mutable Addr lastKey_ = 0;
    mutable Group *lastGroup_ = nullptr;
};

} // namespace rnuma

#endif // RNUMA_PROTO_DIRECTORY_HH
