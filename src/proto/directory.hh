/**
 * @file
 * Directory state for the DSM coherence protocol. Every cache block
 * has a full-map entry at its home node tracking sharers, the
 * exclusive owner, and the extra "prior owner" state the paper adds
 * so the directory can detect refetches of read-write blocks that
 * were voluntarily written back (Section 3.1).
 */

#ifndef RNUMA_PROTO_DIRECTORY_HH
#define RNUMA_PROTO_DIRECTORY_HH

#include <bitset>
#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace rnuma
{

/** Full-map directory entry for one coherence block. */
struct DirEntry
{
    /**
     * Nodes the directory believes hold a copy. Read-only copies are
     * evicted silently (non-notifying protocol), so a bit may be
     * stale — which is precisely how read refetches are detected: a
     * request from a node whose bit is still set means the node lost
     * its copy to capacity or conflict, not coherence.
     */
    std::bitset<maxNodes> sharers;

    /**
     * Nodes that previously held the block exclusively and
     * voluntarily wrote it back (block-cache eviction). A request
     * from such a node is a refetch of a read-write block.
     */
    std::bitset<maxNodes> prior;

    /** Nodes that have ever fetched the block (cold-miss detection). */
    std::bitset<maxNodes> touched;

    /** Node holding the block exclusively (dirty), if any. */
    NodeId owner = invalidNode;

    bool hasOwner() const { return owner != invalidNode; }

    /** Number of valid sharer bits. */
    std::size_t sharerCount() const { return sharers.count(); }
};

/**
 * The directory for the whole machine, keyed by block address. In
 * hardware each home node holds the slice for its own pages; a single
 * map is behaviorally identical and simpler.
 */
class Directory
{
  public:
    /** Find-or-create the entry for a block address. */
    DirEntry &entry(Addr block) { return entries_[block]; }

    /** Read-only probe; nullptr when the block was never touched. */
    const DirEntry *
    peek(Addr block) const
    {
        auto it = entries_.find(block);
        return it == entries_.end() ? nullptr : &it->second;
    }

    /** Number of blocks with directory state. */
    std::size_t size() const { return entries_.size(); }

  private:
    std::unordered_map<Addr, DirEntry> entries_;
};

} // namespace rnuma

#endif // RNUMA_PROTO_DIRECTORY_HH
