#include "workload/trace.hh"

#include <cstdint>
#include <fstream>

#include "common/logging.hh"

namespace rnuma
{

namespace
{

constexpr std::uint64_t traceMagic = 0x524e554d41545231ULL; // RNUMATR1

struct DiskRef
{
    std::uint64_t addr;
    std::uint32_t think;
    std::uint8_t kind;
    std::uint8_t write;
    std::uint8_t pad[2];
};

static_assert(sizeof(DiskRef) == 16, "trace record must be 16 bytes");

} // namespace

void
saveTrace(const VectorWorkload &wl, const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        RNUMA_FATAL("cannot open trace file for writing: ", path);

    std::uint64_t magic = traceMagic;
    std::uint64_t ncpus = wl.numCpus();
    std::uint64_t name_len = wl.name().size();
    out.write(reinterpret_cast<const char *>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char *>(&ncpus), sizeof(ncpus));
    out.write(reinterpret_cast<const char *>(&name_len),
              sizeof(name_len));
    out.write(wl.name().data(),
              static_cast<std::streamsize>(name_len));

    for (CpuId c = 0; c < ncpus; ++c) {
        // Strip End markers; loadTrace re-seals.
        std::uint64_t count = 0;
        for (std::size_t i = 0; i < wl.size(c); ++i)
            if (wl.at(c, i).kind != RefKind::End)
                count++;
        out.write(reinterpret_cast<const char *>(&count),
                  sizeof(count));
        for (std::size_t i = 0; i < wl.size(c); ++i) {
            const Ref &r = wl.at(c, i);
            if (r.kind == RefKind::End)
                continue;
            DiskRef d{r.addr, r.think,
                      static_cast<std::uint8_t>(r.kind),
                      static_cast<std::uint8_t>(r.write ? 1 : 0),
                      {0, 0}};
            out.write(reinterpret_cast<const char *>(&d), sizeof(d));
        }
    }
    if (!out)
        RNUMA_FATAL("error writing trace file: ", path);
}

std::unique_ptr<VectorWorkload>
loadTrace(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        RNUMA_FATAL("cannot open trace file: ", path);

    std::uint64_t magic = 0;
    std::uint64_t ncpus = 0;
    std::uint64_t name_len = 0;
    in.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    in.read(reinterpret_cast<char *>(&ncpus), sizeof(ncpus));
    in.read(reinterpret_cast<char *>(&name_len), sizeof(name_len));
    if (!in || magic != traceMagic)
        RNUMA_FATAL("not a trace file: ", path);
    if (ncpus == 0 || ncpus > 4096 || name_len > 4096)
        RNUMA_FATAL("implausible trace header in ", path);

    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));

    auto wl = std::make_unique<VectorWorkload>(
        name, static_cast<std::size_t>(ncpus));
    for (CpuId c = 0; c < ncpus; ++c) {
        std::uint64_t count = 0;
        in.read(reinterpret_cast<char *>(&count), sizeof(count));
        if (!in)
            RNUMA_FATAL("truncated trace file: ", path);
        for (std::uint64_t i = 0; i < count; ++i) {
            DiskRef d{};
            in.read(reinterpret_cast<char *>(&d), sizeof(d));
            if (!in)
                RNUMA_FATAL("truncated trace file: ", path);
            if (d.kind > static_cast<std::uint8_t>(RefKind::End))
                RNUMA_FATAL("corrupt trace record in ", path);
            Ref r;
            r.addr = d.addr;
            r.think = d.think;
            r.kind = static_cast<RefKind>(d.kind);
            r.write = d.write != 0;
            wl->push(c, r);
        }
    }
    wl->seal();
    return wl;
}

} // namespace rnuma
