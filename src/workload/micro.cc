#include "workload/micro.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "workload/synthetic.hh"

namespace rnuma
{

namespace
{

/** First CPU of a node. */
CpuId
firstCpuOf(const Params &p, NodeId node)
{
    return static_cast<CpuId>(node * p.cpusPerNode);
}

} // namespace

std::unique_ptr<VectorWorkload>
makePrivateLoop(const Params &p, std::size_t pages_per_cpu,
                std::size_t iters)
{
    StreamBuilder b("private-loop", p, 0x11);
    std::vector<Addr> base(p.numCpus());
    for (CpuId c = 0; c < p.numCpus(); ++c) {
        base[c] = b.allocPages(pages_per_cpu);
        b.touchRange(c, base[c], pages_per_cpu * p.pageSize);
    }
    b.barrier(); // placement completes before the parallel phase
    for (std::size_t it = 0; it < iters; ++it) {
        for (CpuId c = 0; c < p.numCpus(); ++c) {
            for (std::size_t pg = 0; pg < pages_per_cpu; ++pg) {
                for (std::size_t blk = 0; blk < p.blocksPerPage();
                     ++blk) {
                    Addr a = base[c] + pg * p.pageSize +
                        blk * p.blockSize;
                    b.read(c, a);
                    b.write(c, a);
                }
            }
        }
    }
    return b.finish();
}

std::unique_ptr<VectorWorkload>
makeHotRemoteReuse(const Params &p, std::size_t remote_pages,
                   std::size_t sweeps)
{
    RNUMA_ASSERT(p.numNodes >= 2, "needs at least two nodes");
    StreamBuilder b("hot-remote-reuse", p, 0x22);
    Addr data = b.allocPages(remote_pages);
    CpuId owner = firstCpuOf(p, 1);
    CpuId reader = firstCpuOf(p, 0);
    b.touchRange(owner, data, remote_pages * p.pageSize);
    b.barrier(); // placement completes before the parallel phase
    for (std::size_t s = 0; s < sweeps; ++s) {
        for (std::size_t pg = 0; pg < remote_pages; ++pg) {
            for (std::size_t blk = 0; blk < p.blocksPerPage(); ++blk) {
                b.read(reader,
                       data + pg * p.pageSize + blk * p.blockSize);
            }
        }
    }
    return b.finish();
}

std::unique_ptr<VectorWorkload>
makeEvictionStorm(const Params &p, std::size_t remote_pages,
                  std::size_t sweeps)
{
    RNUMA_ASSERT(p.numNodes >= 2, "needs at least two nodes");
    RNUMA_ASSERT(remote_pages > p.pageCacheFrames(),
                 "eviction storm needs more pages (", remote_pages,
                 ") than page-cache frames (", p.pageCacheFrames(),
                 "); use makeHotRemoteReuse for in-cache reuse");
    StreamBuilder b("eviction-storm", p, 0x66);
    Addr data = b.allocPages(remote_pages);
    CpuId owner = firstCpuOf(p, 1);
    CpuId reader = firstCpuOf(p, 0);
    b.touchRange(owner, data, remote_pages * p.pageSize);
    b.barrier(); // placement completes before the parallel phase
    // The same sequential sweep as hot reuse, but over a reuse set
    // wider than the page cache: every page accumulates a full
    // page's worth of block refetches per sweep (the working set
    // also exceeds every block cache), relocates, and is then
    // evicted again when the pages beyond the frame budget arrive.
    for (std::size_t s = 0; s < sweeps; ++s) {
        for (std::size_t pg = 0; pg < remote_pages; ++pg) {
            for (std::size_t blk = 0; blk < p.blocksPerPage(); ++blk) {
                b.read(reader,
                       data + pg * p.pageSize + blk * p.blockSize);
            }
        }
    }
    return b.finish();
}

std::unique_ptr<VectorWorkload>
makeProducerConsumer(const Params &p, std::size_t pages,
                     std::size_t rounds)
{
    RNUMA_ASSERT(p.numNodes >= 2, "needs at least two nodes");
    StreamBuilder b("producer-consumer", p, 0x33);
    Addr buf = b.allocPages(pages);
    CpuId prod = firstCpuOf(p, 0);
    CpuId cons = firstCpuOf(p, 1);
    b.touchRange(prod, buf, pages * p.pageSize);
    b.barrier(); // placement completes before the parallel phase
    for (std::size_t r = 0; r < rounds; ++r) {
        for (std::size_t pg = 0; pg < pages; ++pg)
            for (std::size_t blk = 0; blk < p.blocksPerPage(); ++blk)
                b.write(prod, buf + pg * p.pageSize + blk * p.blockSize);
        b.barrier();
        for (std::size_t pg = 0; pg < pages; ++pg)
            for (std::size_t blk = 0; blk < p.blocksPerPage(); ++blk)
                b.read(cons, buf + pg * p.pageSize + blk * p.blockSize);
        b.barrier();
    }
    return b.finish();
}

std::unique_ptr<VectorWorkload>
makeAdversary(const Params &p, std::size_t pages,
              std::size_t touches_per_page)
{
    RNUMA_ASSERT(p.numNodes >= 2, "needs at least two nodes");
    StreamBuilder b("adversary", p, 0x44);
    CpuId owner = firstCpuOf(p, 1);
    CpuId victim = firstCpuOf(p, 0);

    // Pairs of blocks exactly one (largest) block-cache capacity
    // apart, so the two blocks conflict in every direct-mapped cache
    // in the system (L1, CC-NUMA block cache, R-NUMA block cache —
    // all power-of-two sizes dividing the stride). Alternating reads
    // make every access a capacity/conflict refetch.
    std::size_t stride = std::max(
        {p.blockCacheSize, p.l1Size, p.rnumaBlockCacheSize});
    std::size_t pages_per_half = stride / p.pageSize;
    if (pages_per_half == 0)
        pages_per_half = 1;

    std::size_t npairs = (pages + 1) / 2;
    std::vector<std::pair<Addr, Addr>> pairs;
    for (std::size_t pair = 0; pair < npairs; ++pair) {
        Addr chunk = b.allocPages(2 * pages_per_half);
        b.touchRange(owner, chunk, 2 * pages_per_half * p.pageSize);
        pairs.emplace_back(chunk,
                           chunk + pages_per_half * p.pageSize);
    }
    b.barrier(); // placement completes before the parallel phase
    for (auto [a, c] : pairs) {
        for (std::size_t t = 0; t < touches_per_page; ++t) {
            b.read(victim, a, 2);
            b.read(victim, c, 2);
        }
        // The pages are never referenced again: the Section 3.2
        // worst case for R-NUMA.
    }
    return b.finish();
}

std::unique_ptr<VectorWorkload>
makeRwSharing(const Params &p, std::size_t rounds)
{
    StreamBuilder b("rw-sharing", p, 0x55);
    Addr page = b.allocPages(1);
    b.touchRange(firstCpuOf(p, 0), page, p.pageSize);
    b.barrier(); // placement completes before the parallel phase
    for (std::size_t r = 0; r < rounds; ++r) {
        for (CpuId c = 0; c < p.numCpus(); ++c) {
            std::size_t blk = (r + c) % p.blocksPerPage();
            Addr a = page + blk * p.blockSize;
            b.read(c, a, 2);
            b.write(c, a, 2);
        }
    }
    return b.finish();
}

std::unique_ptr<VectorWorkload>
makeScalingShift(const Params &p, std::size_t pages_per_node,
                 std::size_t sweeps)
{
    RNUMA_ASSERT(p.numNodes >= 2, "needs at least two nodes");
    StreamBuilder b("scaling-shift", p, 0x77);
    std::vector<Addr> owned(p.numNodes);
    for (NodeId n = 0; n < p.numNodes; ++n) {
        owned[n] = b.allocPages(pages_per_node);
        b.touchRange(firstCpuOf(p, n), owned[n],
                     pages_per_node * p.pageSize);
    }
    b.barrier(); // placement completes before the parallel phase
    NodeId half = p.numNodes / 2;
    for (std::size_t s = 0; s < sweeps; ++s) {
        for (std::size_t pg = 0; pg < pages_per_node; ++pg) {
            for (std::size_t blk = 0; blk < p.blocksPerPage();
                 ++blk) {
                // Round-robin across readers per block so all nodes
                // drive the interconnect concurrently.
                for (NodeId n = 0; n < p.numNodes; ++n) {
                    NodeId partner = (n + half) % p.numNodes;
                    b.read(firstCpuOf(p, n),
                           owned[partner] + pg * p.pageSize +
                               blk * p.blockSize);
                }
            }
        }
    }
    return b.finish();
}

} // namespace rnuma
