#include "workload/trace_stream.hh"

#include <cstring>
#include <fstream>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.hh"

namespace rnuma
{

namespace
{

/** Flush threshold for one chunk's worth of encoded records. */
constexpr std::size_t chunkTarget = 64 * 1024;

/** Record control byte: bits 0-1 kind, bit 2 write flag. */
constexpr std::uint8_t kindMem = 0;
constexpr std::uint8_t kindBarrier = 1;
constexpr std::uint8_t kindInitTouch = 2;
constexpr std::uint8_t writeBit = 4;

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** Decode a varint from [p, end); fatal on overrun or overflow. */
std::uint64_t
getVarint(const std::uint8_t *&p, const std::uint8_t *end,
          const char *what)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    while (true) {
        if (p >= end) {
            RNUMA_FATAL("truncated stream trace: varint runs off ",
                        what);
        }
        if (shift >= 64) {
            RNUMA_FATAL("corrupt stream trace: oversized varint in ",
                        what);
        }
        std::uint8_t byte = *p++;
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return v;
        shift += 7;
    }
}

void
putU32(std::ofstream &os, std::uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
putU64(std::ofstream &os, std::uint64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

/** Per-CPU encoder state for the recorder. */
struct EncodeState
{
    std::vector<std::uint8_t> buf;
    Addr prev = 0;
    bool done = false;
};

void
encodeRef(EncodeState &st, const Ref &r)
{
    switch (r.kind) {
      case RefKind::Mem: {
        st.buf.push_back(kindMem | (r.write ? writeBit : 0));
        putVarint(st.buf,
                  zigzag(static_cast<std::int64_t>(r.addr) -
                         static_cast<std::int64_t>(st.prev)));
        putVarint(st.buf, r.think);
        st.prev = r.addr;
        break;
      }
      case RefKind::Barrier:
        st.buf.push_back(kindBarrier);
        break;
      case RefKind::InitTouch: {
        st.buf.push_back(kindInitTouch);
        putVarint(st.buf,
                  zigzag(static_cast<std::int64_t>(r.addr) -
                         static_cast<std::int64_t>(st.prev)));
        st.prev = r.addr;
        break;
      }
      case RefKind::End:
        st.done = true; // implicit in the format
        break;
    }
}

void
flushChunk(std::ofstream &os, CpuId cpu, EncodeState &st)
{
    if (st.buf.empty())
        return;
    std::vector<std::uint8_t> hdr;
    putVarint(hdr, cpu);
    putVarint(hdr, st.buf.size());
    os.write(reinterpret_cast<const char *>(hdr.data()),
             static_cast<std::streamsize>(hdr.size()));
    os.write(reinterpret_cast<const char *>(st.buf.data()),
             static_cast<std::streamsize>(st.buf.size()));
    st.buf.clear();
}

std::uint64_t
readU64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

std::uint32_t
readU32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

} // namespace

void
recordStreamTrace(Workload &wl, const std::string &path)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        RNUMA_FATAL("cannot open '", path, "' for writing");

    Addr addrLimit = 0;
    if (auto *vec = dynamic_cast<const VectorWorkload *>(&wl))
        addrLimit = vec->addrLimit();

    putU64(os, streamTraceMagic);
    putU32(os, streamTraceVersion);
    putU32(os, static_cast<std::uint32_t>(wl.numCpus()));
    putU64(os, wl.maxThink());
    putU64(os, addrLimit);
    const std::string &name = wl.name();
    putU64(os, name.size());
    os.write(name.data(),
             static_cast<std::streamsize>(name.size()));

    // Drain round-robin in chunk-sized runs: the file's chunk order
    // then approximates replay order, so a replaying simulation
    // consumes the mapping roughly front to back.
    std::vector<EncodeState> state(wl.numCpus());
    bool anyLive = true;
    while (anyLive) {
        anyLive = false;
        for (CpuId c = 0; c < wl.numCpus(); ++c) {
            EncodeState &st = state[c];
            if (st.done)
                continue;
            while (!st.done && st.buf.size() < chunkTarget)
                encodeRef(st, wl.next(c));
            flushChunk(os, c, st);
            anyLive = anyLive || !st.done;
        }
    }
    os.flush();
    if (!os)
        RNUMA_FATAL("write to '", path, "' failed");
    wl.reset();
}

StreamTraceWorkload::StreamTraceWorkload(const std::string &path)
{
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0)
        RNUMA_FATAL("cannot open stream trace '", path, "'");
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
        ::close(fd_);
        fd_ = -1;
        RNUMA_FATAL("cannot stat stream trace '", path, "'");
    }
    file_size_ = static_cast<std::size_t>(st.st_size);

    // 8 magic + 4 version + 4 ncpus + 8 maxThink + 8 addrLimit
    // + 8 nameLen
    constexpr std::size_t fixedHeader = 40;
    if (file_size_ < fixedHeader) {
        ::close(fd_);
        fd_ = -1;
        RNUMA_FATAL("truncated stream trace '", path,
                    "': shorter than the header");
    }
    void *m = ::mmap(nullptr, file_size_, PROT_READ, MAP_PRIVATE,
                     fd_, 0);
    if (m == MAP_FAILED) {
        ::close(fd_);
        fd_ = -1;
        RNUMA_FATAL("cannot mmap stream trace '", path, "'");
    }
    map_ = static_cast<const std::uint8_t *>(m);
    ::madvise(const_cast<std::uint8_t *>(map_), file_size_,
              MADV_SEQUENTIAL);

    auto bail = [&](const std::string &msg) {
        ::munmap(const_cast<std::uint8_t *>(map_), file_size_);
        ::close(fd_);
        map_ = nullptr;
        fd_ = -1;
        RNUMA_FATAL("stream trace '", path, "': ", msg);
    };
    if (readU64(map_) != streamTraceMagic)
        bail("bad magic (not a stream trace file)");
    std::uint32_t version = readU32(map_ + 8);
    if (version != streamTraceVersion) {
        bail(detail::concat("unsupported format version ", version,
                            " (expected ", streamTraceVersion, ")"));
    }
    std::uint32_t ncpus = readU32(map_ + 12);
    if (ncpus == 0 || ncpus > 4096)
        bail(detail::concat("implausible cpu count ", ncpus));
    max_think_ = readU64(map_ + 16);
    addr_limit_ = readU64(map_ + 24);
    std::uint64_t nameLen = readU64(map_ + 32);
    if (nameLen > 4096 || fixedHeader + nameLen > file_size_)
        bail(detail::concat("implausible name length ", nameLen));
    name_.assign(reinterpret_cast<const char *>(map_) + fixedHeader,
                 nameLen);
    body_off_ = fixedHeader + static_cast<std::size_t>(nameLen);

    // Index every chunk in one forward pass. Replay then jumps
    // between a cpu's chunks directly instead of rescanning the body
    // — a rescan would touch the header page of every chunk it skips
    // and re-fault pages dropChunk() already returned to the OS (the
    // kernel maps multi-page folios per fault, so one touched header
    // re-residents a large slice of its dropped chunk).
    chunks_.assign(ncpus, {});
    {
        const std::uint8_t *end = map_ + file_size_;
        const std::uint8_t *p = map_ + body_off_;
        auto takeVarint = [&](const std::uint8_t *&q,
                              std::uint64_t &out) {
            out = 0;
            unsigned shift = 0;
            while (q < end && shift < 64) {
                std::uint8_t b = *q++;
                out |= static_cast<std::uint64_t>(b & 0x7f) << shift;
                if (!(b & 0x80))
                    return true;
                shift += 7;
            }
            return false;
        };
        while (p < end) {
            std::uint64_t cpu = 0, len = 0;
            if (!takeVarint(p, cpu) || !takeVarint(p, len))
                bail("truncated chunk header");
            if (cpu >= ncpus)
                bail(detail::concat("chunk for out-of-range cpu ",
                                    cpu));
            if (static_cast<std::uint64_t>(end - p) < len)
                bail("truncated stream trace: chunk payload runs "
                     "off the file");
            chunks_[cpu].push_back(
                {static_cast<std::size_t>(p - map_),
                 static_cast<std::size_t>(len)});
            p += len;
        }
    }

    cursors_.resize(ncpus);
    initCursors();
}

StreamTraceWorkload::~StreamTraceWorkload()
{
    if (map_)
        ::munmap(const_cast<std::uint8_t *>(map_), file_size_);
    if (fd_ >= 0)
        ::close(fd_);
}

void
StreamTraceWorkload::initCursors()
{
    drop_lo_ = 0;
    for (Cursor &cur : cursors_)
        cur = Cursor();
    for (CpuId c = 0; c < cursors_.size(); ++c)
        decodePending(cursors_[c]);
}

void
StreamTraceWorkload::reclaimBehind()
{
    // Return everything behind the slowest cursor to the OS so
    // resident memory stays bounded however long the trace is.
    // Per-chunk drops are NOT enough: the kernel maps multi-page
    // folios per fault, so decoding chunk N+1 can re-resident the
    // tail of an already-dropped chunk N, and that residue is O(file
    // size). Instead drop monotonically behind the minimum cursor
    // position, aligned down to the largest pagecache folio (PMD
    // size, 2 MB): folios are size-aligned in file offset, so no
    // future fault at or above the watermark can map pages below the
    // dropped boundary. Cursors never rescan (the chunk index was
    // built up front), so dropped pages stay dropped. Best-effort: a
    // failure just leaves pages resident.
    std::size_t watermark = file_size_;
    for (std::size_t c = 0; c < cursors_.size(); ++c) {
        const Cursor &cur = cursors_[c];
        std::size_t at;
        if (cur.payload)
            at = static_cast<std::size_t>(cur.payload - map_);
        else if (cur.chunk < chunks_[c].size())
            at = chunks_[c][cur.chunk].off;
        else
            at = file_size_;
        watermark = std::min(watermark, at);
    }
    static const std::size_t page =
        static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    constexpr std::size_t pmd = std::size_t(2) << 20;
    const std::size_t align = page > pmd ? page : pmd;
    std::size_t boundary = watermark >= file_size_
                               ? file_size_
                               : (watermark & ~(align - 1));
    if (boundary <= drop_lo_)
        return;
    ::madvise(const_cast<std::uint8_t *>(map_) + drop_lo_,
              boundary - drop_lo_, MADV_DONTNEED);
    drop_lo_ = boundary;
}

bool
StreamTraceWorkload::nextChunk(Cursor &cur)
{
    std::size_t mine = static_cast<std::size_t>(&cur - cursors_.data());
    const std::vector<ChunkLoc> &mineChunks = chunks_[mine];
    if (cur.chunk >= mineChunks.size()) {
        cur.payload = nullptr;
        cur.len = cur.pos = 0;
        reclaimBehind();
        return false;
    }
    const ChunkLoc &loc = mineChunks[cur.chunk++];
    cur.payload = map_ + loc.off;
    cur.pos = 0;
    cur.len = loc.len;
    reclaimBehind();
    return true;
}

void
StreamTraceWorkload::decodePending(Cursor &cur)
{
    if (cur.pos >= cur.len && !nextChunk(cur)) {
        cur.hasPending = false;
        return;
    }
    const std::uint8_t *p = cur.payload + cur.pos;
    const std::uint8_t *end = cur.payload + cur.len;
    std::uint8_t ctrl = *p++;
    std::uint8_t kind = ctrl & 3;
    switch (kind) {
      case kindMem: {
        std::int64_t delta = unzigzag(getVarint(p, end, "a record"));
        std::uint64_t think = getVarint(p, end, "a record");
        cur.prev = static_cast<Addr>(
            static_cast<std::int64_t>(cur.prev) + delta);
        cur.pending = Ref::mem(cur.prev, (ctrl & writeBit) != 0,
                               static_cast<std::uint32_t>(think));
        break;
      }
      case kindBarrier:
        cur.pending = Ref::barrier();
        break;
      case kindInitTouch: {
        std::int64_t delta = unzigzag(getVarint(p, end, "a record"));
        cur.prev = static_cast<Addr>(
            static_cast<std::int64_t>(cur.prev) + delta);
        cur.pending = Ref::touchOf(cur.prev);
        break;
      }
      default:
        RNUMA_FATAL("corrupt stream trace: unknown record kind ",
                    static_cast<int>(kind));
    }
    cur.pos = static_cast<std::size_t>(p - cur.payload);
    cur.hasPending = true;
}

const Ref &
StreamTraceWorkload::next(CpuId cpu)
{
    RNUMA_ASSERT(cpu < cursors_.size(), "cpu ", cpu,
                 " out of range for trace '", name_, "'");
    Cursor &cur = cursors_[cpu];
    if (!cur.hasPending) {
        cur.current = Ref::end();
        return cur.current;
    }
    cur.current = cur.pending;
    decodePending(cur);
    return cur.current;
}

const Ref &
StreamTraceWorkload::peek(CpuId cpu)
{
    RNUMA_ASSERT(cpu < cursors_.size(), "cpu ", cpu,
                 " out of range for trace '", name_, "'");
    Cursor &cur = cursors_[cpu];
    if (!cur.hasPending) {
        cur.current = Ref::end();
        return cur.current;
    }
    return cur.pending;
}

void
StreamTraceWorkload::reset()
{
    initCursors();
}

} // namespace rnuma
