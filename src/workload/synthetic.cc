#include "workload/synthetic.hh"

#include <cmath>

#include "common/logging.hh"

namespace rnuma
{

StreamBuilder::StreamBuilder(std::string name, const Params &params,
                             std::uint64_t seed)
    : p(params), as(params.pageSize), rng_(seed),
      wl(std::make_unique<VectorWorkload>(std::move(name),
                                          params.numCpus()))
{
}

void
StreamBuilder::touch(CpuId cpu, Addr a)
{
    wl->push(cpu, Ref::touchOf(a));
}

void
StreamBuilder::touchRange(CpuId cpu, Addr base, std::size_t bytes)
{
    Addr first = base / p.pageSize;
    Addr last = (base + bytes - 1) / p.pageSize;
    for (Addr pg = first; pg <= last; ++pg)
        touch(cpu, pg * p.pageSize);
}

void
StreamBuilder::read(CpuId cpu, Addr a, std::uint32_t think)
{
    wl->push(cpu, Ref::mem(a, false, think));
}

void
StreamBuilder::write(CpuId cpu, Addr a, std::uint32_t think)
{
    wl->push(cpu, Ref::mem(a, true, think));
}

void
StreamBuilder::barrier()
{
    wl->pushBarrierAll();
}

std::unique_ptr<VectorWorkload>
StreamBuilder::finish()
{
    RNUMA_ASSERT(wl, "finish() called twice");
    wl->seal();
    // Geometry audit: every address a generator emits must lie
    // inside the space it allocated. Historically generators have
    // baked in layout assumptions (record size vs blockSize,
    // working-set pages vs machine width) that only overflow on
    // unusual Params, silently touching other allocations'
    // addresses; this turns those bugs into immediate failures at
    // generation time, on every configuration.
    const Addr limit = as.bytesAllocated();
    for (CpuId c = 0; c < wl->numCpus(); ++c) {
        for (std::size_t i = 0; i < wl->size(c); ++i) {
            const Ref &r = wl->at(c, i);
            if (r.kind != RefKind::Mem &&
                r.kind != RefKind::InitTouch)
                continue;
            RNUMA_ASSERT(r.addr < limit, "workload '", wl->name(),
                         "': cpu ", c, " entry ", i, " touches ",
                         r.addr, " beyond the ", limit,
                         " bytes allocated (generator geometry "
                         "assumption violated)");
        }
    }
    wl->setAddrLimit(limit);
    return std::move(wl);
}

std::size_t
scaled(std::size_t v, double scale, std::size_t min)
{
    if (scale <= 0) {
        RNUMA_FATAL("workload scale must be positive, got ", scale);
    }
    if (min == 0)
        min = 1;
    double s = static_cast<double>(v) * scale;
    std::size_t r = static_cast<std::size_t>(std::llround(s));
    return r < min ? min : r;
}

} // namespace rnuma
