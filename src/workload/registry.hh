/**
 * @file
 * Name-indexed registry of the ten application generators (Table 3),
 * in the paper's order, for the benchmark harnesses.
 */

#ifndef RNUMA_WORKLOAD_REGISTRY_HH
#define RNUMA_WORKLOAD_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "common/params.hh"
#include "workload/workload.hh"

namespace rnuma
{

/** The ten application names in the paper's (alphabetical) order. */
const std::vector<std::string> &appNames();

/** Table 3 "Problem" description for an application. */
const char *appProblem(const std::string &name);

/** Table 3 "Input Data Set" description for an application. */
const char *appInput(const std::string &name);

/**
 * Build an application workload by name. Fatal on unknown names.
 * @param scale input scale (1.0 = calibrated size)
 */
std::unique_ptr<VectorWorkload>
makeApp(const std::string &name, const Params &p, double scale = 1.0,
        std::uint64_t seed = 1);

} // namespace rnuma

#endif // RNUMA_WORKLOAD_REGISTRY_HH
