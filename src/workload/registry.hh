/**
 * @file
 * The workload registry: string-keyed, composable reference-stream
 * generators mirroring the protocol and network registries
 * (proto/registry.hh, net/registry.hh). A WorkloadSpec captures a
 * stable id (the JSON/compare/CLI currency), a display name, and a
 * factory from (Params, scale, seed, option string) to a Workload.
 *
 * The built-ins cover three categories:
 *  - "app": the ten Table 3 application generators (barnes ...
 *    raytrace), in the paper's order;
 *  - "micro": the analyzable microbenchmark patterns (private-loop,
 *    hot-reuse, evict-storm, producer-consumer, adversary,
 *    rw-sharing, scaling-shift);
 *  - "serving": the commercial-serving generators the paper's
 *    Section 1 motivation describes (zipf-serve, phase-shift,
 *    tenants, database-scan).
 *
 * New generators are one registration away and immediately
 * selectable from the rnuma_sweep/rnuma_bench CLIs (--workload,
 * --list-workloads) and sweepable by the workload-parametric
 * figures (the "churn" sweep).
 */

#ifndef RNUMA_WORKLOAD_REGISTRY_HH
#define RNUMA_WORKLOAD_REGISTRY_HH

#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/params.hh"
#include "workload/workload.hh"

namespace rnuma
{

/**
 * Parsed "key=value,key=value" generator options (the WorkloadSpec
 * factory's fourth argument). Typed getters record which keys were
 * consumed; finish() is fatal on any leftover, so a misspelled
 * option fails loudly instead of silently running the default.
 */
class WorkloadOptions
{
  public:
    /** Parse @p text ("" = no options). Fatal on malformed pairs. */
    static WorkloadOptions parse(const std::string &text);

    std::size_t getSize(const std::string &key,
                        std::size_t fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    std::string getString(const std::string &key,
                          const std::string &fallback) const;

    /** Fatal on unconsumed (unknown) keys. Call once, when done. */
    void finish(const std::string &workload) const;

  private:
    struct Pair
    {
        std::string key;
        std::string value;
        mutable bool consumed = false;
    };
    const Pair *find(const std::string &key) const;

    std::vector<Pair> pairs_;
};

/**
 * Builds a workload from the machine geometry, the input scale, the
 * generator seed, and a generator-specific option string (see
 * WorkloadOptions; "" selects every default).
 */
using WorkloadMakeFn = std::function<std::unique_ptr<Workload>(
    const Params &, double, std::uint64_t, const std::string &)>;

/** One selectable workload generator. Value-semantic, like
 * ProtocolSpec: cells copy the id they run under. */
struct WorkloadSpec
{
    /**
     * Stable machine-readable id: the JSON artifact / compare-gate /
     * CLI currency ("barnes", "zipf-serve", ...). Lowercase, no
     * spaces.
     */
    std::string id;
    /** Human-readable name for tables and logs ("Zipf serving"). */
    std::string displayName;
    /** One-line description for --list-workloads. */
    std::string description;
    /** Table 3 "Input Data Set"-style default-input description. */
    std::string input;
    /** Category: "app", "micro", or "serving". */
    std::string category;
    /** Required: builds the workload. */
    WorkloadMakeFn make;

    bool valid() const { return !id.empty() && make != nullptr; }
};

/**
 * The process-wide name -> WorkloadSpec table. Lookup is
 * case-insensitive on id and display name. Thread-safe exactly like
 * ProtocolRegistry: registration takes an exclusive lock and lookups
 * a shared one; returned spec pointers stay valid forever.
 */
class WorkloadRegistry
{
  public:
    /** The global registry, with the built-ins pre-registered. */
    static WorkloadRegistry &global();

    /**
     * Register a spec. Fatal on an invalid spec or a duplicate id.
     * @return the registered (stably stored) spec.
     */
    const WorkloadSpec &add(WorkloadSpec spec);

    /** Look up by id/display name; nullptr when unknown. */
    const WorkloadSpec *find(const std::string &name) const;

    /** Look up; fatal (std::runtime_error under tests) when unknown. */
    const WorkloadSpec &at(const std::string &name) const;

    /** All specs, in registration order (built-ins first). */
    std::vector<const WorkloadSpec *> all() const;

    std::size_t size() const;

  private:
    WorkloadRegistry();

    /** find() without taking the lock (callers hold it). */
    const WorkloadSpec *findLocked(const std::string &name) const;

    /** Guards specs_: exclusive for add, shared for lookups. */
    mutable std::shared_mutex mutex_;
    std::vector<std::unique_ptr<WorkloadSpec>> specs_;
};

/**
 * Normalize a workload label to its stable id: lowercased. Unknown
 * labels pass through lowercased — the shim the compare gate uses
 * against pre-v7 baselines (whose cells carried no workload ids).
 */
std::string canonicalWorkloadId(const std::string &name);

/** Shorthand for WorkloadRegistry::global().at(name). */
const WorkloadSpec &workloadSpec(const std::string &name);

/** Shorthand for WorkloadRegistry::global().find(name). */
const WorkloadSpec *findWorkloadSpec(const std::string &name);

/**
 * Build a registered workload by name. Fatal on unknown names or
 * (via the generator's WorkloadOptions::finish) unknown options.
 * Asserts the product emits at least one memory reference when it is
 * materialized (a VectorWorkload): a workload with zero loads and
 * stores would silently turn every figure cell into a no-op.
 */
std::unique_ptr<Workload>
makeWorkload(const std::string &name, const Params &p,
             double scale = 1.0, std::uint64_t seed = 1,
             const std::string &options = "");

//--------------------------------------------------------------------------
// The pre-registry application interface, preserved verbatim: the ten
// Table 3 generators by name. Every call maps onto the registry's
// "app" entries, so the streams (and the figure artifacts downstream
// of them) are bit-identical to the pre-registry harness.
//--------------------------------------------------------------------------

/** The ten application names in the paper's (alphabetical) order. */
const std::vector<std::string> &appNames();

/** Table 3 "Problem" description for an application. */
const char *appProblem(const std::string &name);

/** Table 3 "Input Data Set" description for an application. */
const char *appInput(const std::string &name);

/**
 * Build an application workload by name. Fatal on unknown names.
 * @param scale input scale (1.0 = calibrated size)
 */
std::unique_ptr<VectorWorkload>
makeApp(const std::string &name, const Params &p, double scale = 1.0,
        std::uint64_t seed = 1);

} // namespace rnuma

#endif // RNUMA_WORKLOAD_REGISTRY_HH
