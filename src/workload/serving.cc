#include "workload/serving.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "workload/registry.hh"
#include "workload/synthetic.hh"

namespace rnuma
{

namespace
{

/**
 * Precomputed Zipf(theta) sampler over ranks [0, n): rank r carries
 * weight 1/(r+1)^theta. Sampling is a uniform draw against the
 * cumulative weight table (binary search), so the stream cost is
 * O(log n) per reference with no rejection.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::size_t n, double theta)
    {
        RNUMA_ASSERT(n > 0, "zipf sampler needs a non-empty pool");
        RNUMA_ASSERT(theta >= 0.0, "zipf skew theta must be >= 0, got ",
                     theta);
        cum_.reserve(n);
        double total = 0.0;
        for (std::size_t r = 0; r < n; ++r) {
            total += 1.0 /
                     std::pow(static_cast<double>(r + 1), theta);
            cum_.push_back(total);
        }
    }

    std::size_t
    draw(Rng &rng) const
    {
        double u = rng.uniform() * cum_.back();
        auto it = std::lower_bound(cum_.begin(), cum_.end(), u);
        if (it == cum_.end())
            --it;
        return static_cast<std::size_t>(it - cum_.begin());
    }

  private:
    std::vector<double> cum_;
};

/** Home page @p pg of a pool at @p base round-robin across nodes via
 * each node's first CPU (the serving pools' placement policy). */
void
homeRoundRobin(StreamBuilder &b, Addr base, std::size_t pages)
{
    for (std::size_t pg = 0; pg < pages; ++pg) {
        NodeId n = static_cast<NodeId>(pg % b.nnodes());
        b.touch(static_cast<CpuId>(n * b.cpusPerNode()),
                base + pg * b.params().pageSize);
    }
}

} // namespace

std::unique_ptr<VectorWorkload>
makeZipfServe(const Params &p, double scale, std::uint64_t seed,
              const std::string &options)
{
    auto o = WorkloadOptions::parse(options);
    std::size_t pages = o.getSize("pages", scaled(480, scale, 16));
    double theta = o.getDouble("theta", 0.8);
    double writeFrac = o.getDouble("write", 0.1);
    std::size_t requests =
        o.getSize("requests", scaled(2400, scale, 40));
    o.finish("zipf-serve");
    RNUMA_ASSERT(writeFrac >= 0.0 && writeFrac <= 1.0,
                 "zipf-serve write fraction must be in [0,1], got ",
                 writeFrac);

    StreamBuilder b("zipf-serve", p, seed);
    Addr pool = b.allocPages(pages);
    homeRoundRobin(b, pool, pages);
    // Per-CPU session state: private, node-local request scratch.
    std::vector<Addr> session(b.ncpus());
    for (CpuId c = 0; c < b.ncpus(); ++c) {
        session[c] = b.allocPages(1);
        b.touchRange(c, session[c], p.pageSize);
    }
    b.barrier();

    ZipfSampler zipf(pages, theta);
    for (std::size_t req = 0; req < requests; ++req) {
        for (CpuId c = 0; c < b.ncpus(); ++c) {
            std::size_t pg = zipf.draw(b.rng());
            Addr a = pool + pg * p.pageSize +
                     b.rng().below(p.blocksPerPage()) * p.blockSize;
            b.read(c, a, 6);
            if (b.rng().chance(writeFrac))
                b.write(c, a, 4);
            b.write(c, session[c] +
                           (req % p.blocksPerPage()) * p.blockSize,
                    2);
        }
    }
    return b.finish();
}

std::unique_ptr<VectorWorkload>
makePhaseShift(const Params &p, double scale, std::uint64_t seed,
               const std::string &options)
{
    auto o = WorkloadOptions::parse(options);
    // Pool ~3x the frame budget (geometry-derived, like evict-storm:
    // the rotation must overflow the page cache at every scale).
    std::size_t pages =
        o.getSize("pages", 3 * p.pageCacheFrames());
    std::size_t phases = o.getSize("phases", 6);
    std::size_t sweeps = o.getSize("sweeps", scaled(4, scale, 2));
    o.finish("phase-shift");
    RNUMA_ASSERT(pages > 0 && phases > 0 && sweeps > 0,
                 "phase-shift needs non-zero pages/phases/sweeps");

    StreamBuilder b("phase-shift", p, seed);
    Addr pool = b.allocPages(pages);
    homeRoundRobin(b, pool, pages);
    b.barrier();

    std::size_t window = std::min(pages, p.pageCacheFrames());
    std::size_t step = std::max<std::size_t>(1, pages / phases);
    for (std::size_t ph = 0; ph < phases; ++ph) {
        std::size_t start = ph * step;
        for (std::size_t sweep = 0; sweep < sweeps; ++sweep) {
            for (std::size_t i = 0; i < window; ++i) {
                std::size_t pg = (start + i) % pages;
                for (CpuId c = 0; c < b.ncpus(); ++c) {
                    Addr a = pool + pg * p.pageSize +
                             b.rng().below(p.blocksPerPage()) *
                                 p.blockSize;
                    b.read(c, a, 4);
                    // In-place updates keep the set read-write
                    // shared (the Section 1 traffic class).
                    if (b.rng().chance(0.1))
                        b.write(c, a, 4);
                }
            }
        }
        // The phase boundary: the window advances past the barrier,
        // so pages relocated this phase fall cold in the next.
        b.barrier();
    }
    return b.finish();
}

std::unique_ptr<VectorWorkload>
makeTenants(const Params &p, double scale, std::uint64_t seed,
            const std::string &options)
{
    auto o = WorkloadOptions::parse(options);
    std::size_t tenants = o.getSize("tenants", 4);
    std::size_t pages = o.getSize("pages", scaled(96, scale, 8));
    std::size_t rounds = o.getSize("rounds", scaled(6, scale, 2));
    o.finish("tenants");
    RNUMA_ASSERT(tenants > 0 && pages > 0 && rounds > 0,
                 "tenants needs non-zero tenants/pages/rounds");

    StreamBuilder b("tenants", p, seed);
    tenants = std::min(tenants, b.ncpus());

    // Each tenant owns a disjoint slice, homed round-robin across
    // the nodes, and is served only by CPUs c with c mod K == t —
    // placement included, so per-tenant address sets stay disjoint
    // per CPU by construction.
    std::vector<Addr> base(tenants);
    for (std::size_t t = 0; t < tenants; ++t) {
        base[t] = b.allocPages(pages);
        std::size_t servers = (b.ncpus() - t + tenants - 1) / tenants;
        for (std::size_t pg = 0; pg < pages; ++pg) {
            CpuId c = static_cast<CpuId>(
                t + tenants * (pg % servers));
            b.touch(c, base[t] + pg * p.pageSize);
        }
    }
    b.barrier();

    std::size_t hot = std::max<std::size_t>(1, pages / 4);
    std::size_t refsPerRound = 2 * pages;
    for (std::size_t round = 0; round < rounds; ++round) {
        for (std::size_t r = 0; r < refsPerRound; ++r) {
            for (CpuId c = 0; c < b.ncpus(); ++c) {
                std::size_t t = c % tenants;
                std::size_t pg = b.rng().chance(0.8)
                                     ? b.rng().below(hot)
                                     : b.rng().below(pages);
                Addr a = base[t] + pg * p.pageSize +
                         b.rng().below(p.blocksPerPage()) *
                             p.blockSize;
                b.read(c, a, 4);
                if (b.rng().chance(0.1))
                    b.write(c, a, 4);
            }
        }
        b.barrier();
    }
    return b.finish();
}

std::unique_ptr<VectorWorkload>
makeDatabaseScan(const Params &p, double scale, std::uint64_t seed,
                 const std::string &options)
{
    auto o = WorkloadOptions::parse(options);
    std::size_t transactions =
        o.getSize("transactions", scaled(48, scale, 8));
    std::size_t pool_pages = o.getSize("pool", 160);
    std::size_t rows_per_txn = o.getSize("rows", 48);
    std::size_t hot_fraction_pages = o.getSize("hot", 24);
    o.finish("database-scan");
    RNUMA_ASSERT(hot_fraction_pages <= pool_pages,
                 "database-scan hot set (", hot_fraction_pages,
                 " pages) exceeds the pool (", pool_pages, ")");

    StreamBuilder b("database-scan", p, seed);
    Addr pool = b.allocPages(pool_pages);
    for (std::size_t pg = 0; pg < pool_pages; ++pg) {
        NodeId n = static_cast<NodeId>(pg % b.nnodes());
        b.touch(static_cast<CpuId>(n * b.cpusPerNode()),
                pool + pg * p.pageSize);
    }
    Addr locks = b.allocPages(1);
    b.touch(0, locks);
    std::vector<Addr> scratch(b.ncpus());
    for (CpuId c = 0; c < b.ncpus(); ++c) {
        scratch[c] = b.allocPages(1);
        b.touchRange(c, scratch[c], p.pageSize);
    }

    b.barrier();
    for (std::size_t txn = 0; txn < transactions; ++txn) {
        for (CpuId c = 0; c < b.ncpus(); ++c) {
            // Acquire a latch: read-write traffic on the hot page.
            Addr latch = locks +
                b.rng().below(p.blocksPerPage()) * p.blockSize;
            b.read(c, latch, 2);
            b.write(c, latch, 2);
            // Scan rows, mostly in the hot part of the pool.
            for (std::size_t r = 0; r < rows_per_txn; ++r) {
                std::size_t pg = b.rng().chance(0.8)
                    ? b.rng().below(hot_fraction_pages)
                    : b.rng().below(pool_pages);
                Addr row = pool + pg * p.pageSize +
                    b.rng().below(p.blocksPerPage()) * p.blockSize;
                b.read(c, row, 6);
                // 10% of rows are updated in place (read-write
                // sharing that replication cannot help).
                if (b.rng().chance(0.1))
                    b.write(c, row, 4);
                // Spill to private working storage.
                b.write(c, scratch[c] +
                            (r % p.blocksPerPage()) * p.blockSize, 2);
            }
        }
        if (txn % 8 == 7)
            b.barrier(); // commit groups
    }
    return b.finish();
}

} // namespace rnuma
