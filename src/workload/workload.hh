/**
 * @file
 * The workload abstraction: per-CPU streams of memory references,
 * barrier markers, placement-only init touches, and end markers. The
 * simulator is driven entirely by a Workload, which stands in for the
 * paper's execution-driven SPLASH-2 binaries (see DESIGN.md section 5
 * for the substitution argument).
 */

#ifndef RNUMA_WORKLOAD_WORKLOAD_HH
#define RNUMA_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace rnuma
{

/** Kinds of stream entries. */
enum class RefKind : std::uint8_t
{
    Mem,       ///< a load or store
    Barrier,   ///< global barrier: wait for every CPU
    InitTouch, ///< pre-parallel first-touch placement marker (free)
    End        ///< stream exhausted
};

/** One stream entry. */
struct Ref
{
    Addr addr = 0;            ///< global address (Mem / InitTouch)
    std::uint32_t think = 0;  ///< compute cycles before the access
    RefKind kind = RefKind::End;
    bool write = false;

    static Ref
    mem(Addr a, bool w, std::uint32_t th)
    {
        return Ref{a, th, RefKind::Mem, w};
    }
    static Ref barrier() { return Ref{0, 0, RefKind::Barrier, false}; }
    static Ref touchOf(Addr a) { return Ref{a, 0, RefKind::InitTouch,
                                            false}; }
    static Ref end() { return Ref{0, 0, RefKind::End, false}; }
};

/** Abstract reference-stream source. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Number of CPU streams. */
    virtual std::size_t numCpus() const = 0;

    /**
     * Next entry for @p cpu, advancing the stream. Returns an End ref
     * forever once exhausted.
     */
    virtual const Ref &next(CpuId cpu) = 0;

    /**
     * The entry the following next() will return, without advancing
     * the stream. The parallel engine uses this at window boundaries
     * to apply a CPU's consecutive InitTouch run atomically — the
     * serial engine consumes such runs in one uninterrupted step, and
     * first-touch placement is order-sensitive, so replaying them one
     * per round would home pages differently.
     */
    virtual const Ref &peek(CpuId cpu) = 0;

    /** Rewind all streams (for back-to-back protocol comparisons). */
    virtual void reset() = 0;

    /** Workload name for reports. */
    virtual const std::string &name() const = 0;

    /**
     * Largest think time in any stream, in ticks. The machine sizes
     * its event calendar from this span (see EventQueue::autoWindow);
     * 0 — the default for sources that cannot know — selects the
     * minimum window, which is always correct, only slower when the
     * real deltas are systematically larger.
     */
    virtual Tick maxThink() const { return 0; }
};

/** A workload backed by pre-generated per-CPU vectors. */
class VectorWorkload : public Workload
{
  public:
    VectorWorkload(std::string name, std::size_t ncpus);

    std::size_t numCpus() const override { return streams.size(); }
    const Ref &next(CpuId cpu) override;
    const Ref &peek(CpuId cpu) override;
    void reset() override;
    const std::string &name() const override { return name_; }
    Tick maxThink() const override { return max_think; }

    /** Append an entry to one CPU's stream. */
    void push(CpuId cpu, Ref r);

    /** Append a barrier to every CPU's stream. */
    void pushBarrierAll();

    /** Append End markers to every stream (call once, when done). */
    void seal();

    /** Stream length for a CPU (including the End marker). */
    std::size_t size(CpuId cpu) const;

    /** Entry inspection for tests and trace serialization. */
    const Ref &at(CpuId cpu, std::size_t i) const;

    /** Total entries across all CPUs. */
    std::size_t totalRefs() const;

    /**
     * Loads and stores only (no barriers, init touches, or End
     * markers). Every generator must emit at least one at any
     * scale > 0; the registry asserts it.
     */
    std::size_t memRefCount() const { return mem_refs; }

    /**
     * One past the highest legally addressable byte (the generator's
     * allocation high-water mark), recorded by StreamBuilder::finish
     * after it audits every entry against it. 0 = unknown (e.g. a
     * trace-replayed workload).
     */
    Addr addrLimit() const { return addr_limit; }
    void setAddrLimit(Addr limit) { addr_limit = limit; }

  private:
    friend class SnapshotWorkload;

    std::string name_;
    std::vector<std::vector<Ref>> streams;
    std::vector<std::size_t> cursor;
    std::size_t mem_refs = 0;
    Tick max_think = 0;
    Addr addr_limit = 0;
    bool sealed = false;

    static const Ref endRef;
};

/**
 * A lightweight cursor view over an immutable, shared VectorWorkload
 * snapshot. The sweep driver's content-addressed workload cache
 * generates each distinct workload once and hands every cell sharing
 * it one of these: the (potentially large) reference streams are
 * shared read-only, while each view carries only its own per-CPU
 * cursors, so concurrent cells never touch shared mutable state.
 * Replaying a view is bit-identical to replaying the snapshot itself.
 *
 * next() is the simulator's per-reference hot path, so the view
 * flattens each stream to a raw (data, size) span at construction —
 * one dependent load fewer than going back through the snapshot's
 * vector-of-vectors on every reference.
 */
class SnapshotWorkload : public Workload
{
  public:
    /** @param snap a sealed workload; fatal when null or unsealed. */
    explicit SnapshotWorkload(
        std::shared_ptr<const VectorWorkload> snap);

    std::size_t numCpus() const override;
    const Ref &next(CpuId cpu) override;
    const Ref &peek(CpuId cpu) override;
    void reset() override;
    const std::string &name() const override;
    Tick maxThink() const override;

  private:
    /** One CPU's stream: borrowed storage plus this view's cursor. */
    struct Stream
    {
        const Ref *data;
        std::size_t size;
        std::size_t cursor;
    };

    std::shared_ptr<const VectorWorkload> snap_; ///< keeps data alive
    std::vector<Stream> streams_;
};

} // namespace rnuma

#endif // RNUMA_WORKLOAD_WORKLOAD_HH
