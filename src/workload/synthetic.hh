/**
 * @file
 * StreamBuilder: the shared toolkit the application generators use to
 * assemble per-CPU reference streams — allocation, init-touch
 * placement, reads/writes with think time, and barriers.
 *
 * The generators substitute for the paper's execution-driven SPLASH-2
 * runs (DESIGN.md section 5): each reproduces its application's
 * sharing signature (remote working-set size, reuse vs communication
 * pages, read-write fraction, spatial density, iteration structure)
 * at the scaled Table 3 input sizes.
 */

#ifndef RNUMA_WORKLOAD_SYNTHETIC_HH
#define RNUMA_WORKLOAD_SYNTHETIC_HH

#include <memory>
#include <string>

#include "common/params.hh"
#include "common/rng.hh"
#include "workload/address_space.hh"
#include "workload/workload.hh"

namespace rnuma
{

/** Builder for VectorWorkload streams. */
class StreamBuilder
{
  public:
    /** Default compute cycles between references. */
    static constexpr std::uint32_t defaultThink = 4;

    StreamBuilder(std::string name, const Params &params,
                  std::uint64_t seed);

    //--- Allocation ---------------------------------------------------------
    Addr allocBytes(std::size_t bytes) { return as.allocBytes(bytes); }
    Addr allocPages(std::size_t n) { return as.allocPages(n); }

    //--- Stream construction -------------------------------------------------
    /** Placement-only first touch of the page holding @p a. */
    void touch(CpuId cpu, Addr a);

    /** First-touch every page of [base, base+bytes). */
    void touchRange(CpuId cpu, Addr base, std::size_t bytes);

    void read(CpuId cpu, Addr a, std::uint32_t think = defaultThink);
    void write(CpuId cpu, Addr a, std::uint32_t think = defaultThink);

    /** Global barrier across every CPU. */
    void barrier();

    /** Seal and return the workload. The builder is then spent. */
    std::unique_ptr<VectorWorkload> finish();

    //--- Topology helpers -----------------------------------------------------
    std::size_t ncpus() const { return p.numCpus(); }
    std::size_t nnodes() const { return p.numNodes; }
    std::size_t cpusPerNode() const { return p.cpusPerNode; }
    NodeId
    nodeOf(CpuId cpu) const
    {
        return static_cast<NodeId>(cpu / p.cpusPerNode);
    }

    const Params &params() const { return p; }
    Rng &rng() { return rng_; }

  private:
    Params p; // copied: the workload outlives the caller's Params
    AddressSpace as;
    Rng rng_;
    std::unique_ptr<VectorWorkload> wl;
};

/**
 * Apply the conventional scale factor: max(min, round(v * scale)).
 * Generators use it to shrink inputs for fast unit tests, passing a
 * @p min large enough to keep their iteration structure viable (for
 * example, lu needs a block grid of at least 2x2 to emit any memory
 * references). Fatal on scale <= 0.
 */
std::size_t scaled(std::size_t v, double scale, std::size_t min = 1);

} // namespace rnuma

#endif // RNUMA_WORKLOAD_SYNTHETIC_HH
