/**
 * @file
 * Commercial-serving workload generators: the traffic class the
 * paper's introduction motivates R-NUMA with (Verghese et al.'s
 * finding that 90% of database user-data misses hit read-write
 * shared pages), which the SPLASH-2 signatures do not cover.
 *
 * Each generator takes the machine geometry, the conventional input
 * scale, a seed, and a "key=value,..." option string (parsed with
 * WorkloadOptions; "" selects every default). All four build their
 * streams through StreamBuilder, so every emitted address passes the
 * finish()-time allocation audit before the workload is usable.
 */

#ifndef RNUMA_WORKLOAD_SERVING_HH
#define RNUMA_WORKLOAD_SERVING_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/params.hh"
#include "workload/workload.hh"

namespace rnuma
{

/**
 * Zipf-skewed page service: a pool of pages homed round-robin across
 * the nodes, hit with popularity weight 1/rank^theta. Every CPU is a
 * server thread issuing read-mostly requests (a write fraction
 * models in-place updates) plus per-request private session-state
 * writes. Skew theta is the figure-sweep axis: at high skew the hot
 * head rewards relocation/replication; at low skew the uniform tail
 * behaves like capacity traffic.
 *
 * Options: pages, theta, write (fraction), requests (per cpu).
 */
std::unique_ptr<VectorWorkload>
makeZipfServe(const Params &p, double scale, std::uint64_t seed,
              const std::string &options = "");

/**
 * Diurnal phase rotation: the active working set is a page-cache-
 * sized window that rotates over a pool ~3x the frame budget. Every
 * CPU sweeps the current window, then a global barrier marks the
 * phase boundary and the window advances by pool/phases pages.
 * Pages relocated during one phase fall cold in the next, so the
 * relocation-vs-eviction churn policies must amortize is structural,
 * not incidental.
 *
 * Options: pages, phases, sweeps.
 */
std::unique_ptr<VectorWorkload>
makePhaseShift(const Params &p, double scale, std::uint64_t seed,
               const std::string &options = "");

/**
 * Multi-tenant interleaving: K tenants own disjoint address-space
 * slices homed round-robin across the nodes, and CPU c serves tenant
 * c mod K — so every node's page cache is shared by competing tenant
 * hot sets (page-cache fairness stress). Each CPU touches only its
 * own tenant's pages, including placement, keeping per-tenant
 * address sets provably disjoint.
 *
 * Options: tenants, pages (per tenant), rounds.
 */
std::unique_ptr<VectorWorkload>
makeTenants(const Params &p, double scale, std::uint64_t seed,
            const std::string &options = "");

/**
 * The OLTP-ish database mix formerly private to
 * examples/database_scan.cc: a read-mostly shared buffer pool with a
 * hot subset, a latch page hammered read-write by every node, and
 * per-CPU scratch. Seed 0xdb with default options reproduces the
 * example's historical stream exactly.
 *
 * Options: transactions, pool (pages), rows (per txn), hot (pages).
 */
std::unique_ptr<VectorWorkload>
makeDatabaseScan(const Params &p, double scale, std::uint64_t seed,
                 const std::string &options = "");

} // namespace rnuma

#endif // RNUMA_WORKLOAD_SERVING_HH
