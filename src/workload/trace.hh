/**
 * @file
 * Trace record/replay: serialize a VectorWorkload to a compact binary
 * file and load it back. Useful for regression-testing exact protocol
 * behavior and for sharing reproducible inputs.
 */

#ifndef RNUMA_WORKLOAD_TRACE_HH
#define RNUMA_WORKLOAD_TRACE_HH

#include <memory>
#include <string>

#include "workload/workload.hh"

namespace rnuma
{

/** Write the workload's streams to @p path. Fatal on I/O error. */
void saveTrace(const VectorWorkload &wl, const std::string &path);

/** Load a trace written by saveTrace. Fatal on I/O or format error. */
std::unique_ptr<VectorWorkload> loadTrace(const std::string &path);

} // namespace rnuma

#endif // RNUMA_WORKLOAD_TRACE_HH
