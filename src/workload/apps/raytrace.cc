/**
 * @file
 * raytrace: 3-D scene rendering (SPLASH-2, "car" scene). Sharing
 * signature: almost entirely read-only — rays re-read the hot top of
 * the BVH constantly and sample the large cold scene sparsely, and
 * nothing invalidates those copies between frames, so CC-NUMA's
 * capacity evictions turn into silent-eviction refetches. Only a
 * tiny work-queue page is read-write shared (Table 4: 5% of
 * refetches from RW pages — the one application where read-only
 * replication schemes would also work). R-NUMA relocates the hot BVH
 * pages and outperforms both base protocols.
 */

#include "workload/apps/apps.hh"

#include <algorithm>
#include <vector>

#include "workload/synthetic.hh"

namespace rnuma
{

std::unique_ptr<VectorWorkload>
makeRaytrace(const Params &p, double scale, std::uint64_t seed)
{
    StreamBuilder b("raytrace", p, seed ^ 0x4a70ULL);
    const std::size_t hot_pages = 12;   // BVH top levels
    const std::size_t cold_pages = 400; // scene geometry
    const std::size_t rays_per_cpu = scaled(600, scale);
    const std::size_t hot_reads = 10;
    const std::size_t cold_reads = 2;
    const std::size_t frames = 3;
    const std::size_t ncpus = b.ncpus();

    Addr hot = b.allocPages(hot_pages);
    Addr cold = b.allocPages(cold_pages);
    Addr queue = b.allocPages(1); // shared work queue (RW)
    auto touch_sliced = [&](Addr base_addr, std::size_t pages) {
        std::size_t per = pages / b.nnodes() ? pages / b.nnodes() : 1;
        for (std::size_t pg = 0; pg < pages; ++pg) {
            NodeId n = static_cast<NodeId>(
                std::min(pg / per, b.nnodes() - 1));
            b.touch(static_cast<CpuId>(n * b.cpusPerNode()),
                    base_addr + pg * p.pageSize);
        }
    };
    touch_sliced(hot, hot_pages);
    touch_sliced(cold, cold_pages);
    b.touch(0, queue);

    // Private framebuffer strips.
    std::vector<Addr> fb(ncpus);
    for (CpuId c = 0; c < ncpus; ++c) {
        fb[c] = b.allocPages(2);
        b.touchRange(c, fb[c], 2 * p.pageSize);
    }

    auto rand_block = [&](Addr base_addr, std::size_t pages) {
        std::size_t blocks = pages * p.blocksPerPage();
        return base_addr + b.rng().below(blocks) * p.blockSize;
    };

    b.barrier(); // placement completes before the parallel phase
    for (std::size_t f = 0; f < frames; ++f) {
        for (CpuId c = 0; c < ncpus; ++c) {
            for (std::size_t r = 0; r < rays_per_cpu; ++r) {
                for (std::size_t k = 0; k < hot_reads; ++k)
                    b.read(c, rand_block(hot, hot_pages), 2);
                for (std::size_t k = 0; k < cold_reads; ++k)
                    b.read(c, rand_block(cold, cold_pages), 2);
                // Write the pixel to the private framebuffer strip.
                b.write(c, fb[c] + (r % (2 * p.blocksPerPage())) *
                                   p.blockSize, 2);
                // Occasionally grab work from the shared queue.
                if (r % 64 == 0) {
                    Addr a = queue +
                        (r / 64 % p.blocksPerPage()) * p.blockSize;
                    b.read(c, a, 2);
                    b.write(c, a, 2);
                }
            }
        }
        b.barrier();
    }
    return b.finish();
}

} // namespace rnuma
