/**
 * @file
 * ocean: regular-grid ocean simulation (SPLASH-2, 258x258). Sharing
 * signature: red-black stencil sweeps exchange dense boundary rows
 * with band neighbors, a multigrid phase re-reads a large set of
 * coarse-level pages several times per iteration, and column-edge
 * elements touch many remote pages with only one or two blocks used
 * each (internal fragmentation). The remote working set exceeds both
 * the block cache and the page cache: every protocol suffers, R-NUMA
 * least (Section 5.2: "Ocean exhibits a large remote working set
 * which does not even fit in CC-NUMA's block cache ... block and page
 * traffic remain high").
 */

#include "workload/apps/apps.hh"

#include <vector>

#include "workload/synthetic.hh"

namespace rnuma
{

std::unique_ptr<VectorWorkload>
makeOcean(const Params &p, double scale, std::uint64_t seed)
{
    StreamBuilder b("ocean", p, seed ^ 0x0cea0ULL);
    // One band row per CPU minimum: fewer rows than CPUs would send
    // the upper bands (and the random column-edge reads) past the
    // allocated grid.
    const std::size_t rows = scaled(256, scale, b.ncpus());
    const std::size_t row_bytes = 2048; // 256 doubles
    const std::size_t arrays = 2;       // working grids
    const std::size_t coarse_pages = 100;
    const std::size_t coarse_reads = 200;
    const std::size_t mg_passes = 3;
    const std::size_t frag_reads = 24;
    const std::size_t iters = 10;
    const std::size_t ncpus = b.ncpus();
    const std::size_t rows_per_node = rows / b.nnodes()
        ? rows / b.nnodes() : 1;
    const std::size_t rows_per_cpu = rows / ncpus ? rows / ncpus : 1;
    const std::size_t row_blocks = row_bytes / p.blockSize;

    // Grids partitioned in horizontal bands, one band per node.
    std::vector<Addr> grid_base(arrays);
    for (std::size_t g = 0; g < arrays; ++g) {
        grid_base[g] = b.allocBytes(rows * row_bytes);
        for (CpuId c = 0; c < ncpus; ++c) {
            b.touchRange(c, grid_base[g] +
                             c * rows_per_cpu * row_bytes,
                         rows_per_cpu * row_bytes);
        }
    }
    // Multigrid coarse levels, homed round-robin.
    Addr coarse = b.allocPages(coarse_pages);
    for (std::size_t pg = 0; pg < coarse_pages; ++pg) {
        NodeId n = static_cast<NodeId>(pg % b.nnodes());
        b.touch(static_cast<CpuId>(n * b.cpusPerNode()),
                coarse + pg * p.pageSize);
    }

    auto row_addr = [&](std::size_t g, std::size_t r) {
        return grid_base[g] + r * row_bytes;
    };

    b.barrier(); // placement completes before the parallel phase
    for (std::size_t it = 0; it < iters; ++it) {
        // Red-black relaxation sweeps over the owned rows, reading
        // the neighbor node's dense boundary row at band edges.
        for (std::size_t color = 0; color < 2; ++color) {
            for (CpuId c = 0; c < ncpus; ++c) {
                std::size_t r0 = c * rows_per_cpu;
                for (std::size_t g = 0; g < arrays; ++g) {
                    for (std::size_t r = r0; r < r0 + rows_per_cpu;
                         ++r) {
                        for (std::size_t blk = color;
                             blk < row_blocks; blk += 2) {
                            Addr a = row_addr(g, r) +
                                blk * p.blockSize;
                            b.read(c, a, 2);
                            b.write(c, a, 2);
                        }
                    }
                    // Boundary exchange: the CPU owning the band edge
                    // reads the adjacent node's boundary row.
                    NodeId n = b.nodeOf(c);
                    bool low_edge = r0 == n * rows_per_node;
                    if (low_edge && n > 0) {
                        std::size_t nb = n * rows_per_node - 1;
                        for (std::size_t blk = 0; blk < row_blocks;
                             ++blk) {
                            b.read(c, row_addr(g, nb) +
                                       blk * p.blockSize, 2);
                        }
                    }
                }
                // Column-edge fragmentation: single blocks scattered
                // over other nodes' row pages.
                for (std::size_t k = 0; k < frag_reads; ++k) {
                    std::size_t r = static_cast<std::size_t>(
                        b.rng().below(rows));
                    std::size_t g = static_cast<std::size_t>(
                        b.rng().below(arrays));
                    b.read(c, row_addr(g, r) +
                               (row_blocks - 1) * p.blockSize, 2);
                }
            }
            b.barrier();
        }
        // Multigrid W-cycle: several passes re-reading scattered
        // coarse blocks; each node updates its own coarse share.
        for (std::size_t pass = 0; pass < mg_passes; ++pass) {
            for (CpuId c = 0; c < ncpus; ++c) {
                for (std::size_t k = 0; k < coarse_reads; ++k) {
                    std::size_t blk = static_cast<std::size_t>(
                        b.rng().below(coarse_pages *
                                      p.blocksPerPage()));
                    b.read(c, coarse + blk * p.blockSize, 2);
                }
                // Update owned coarse blocks (local writes).
                NodeId n = b.nodeOf(c);
                for (std::size_t k = 0; k < 8; ++k) {
                    std::size_t pg = n + b.nnodes() *
                        b.rng().below(coarse_pages / b.nnodes());
                    Addr a = coarse + pg * p.pageSize +
                        b.rng().below(p.blocksPerPage()) *
                            p.blockSize;
                    b.write(c, a, 2);
                }
            }
            b.barrier();
        }
    }
    return b.finish();
}

} // namespace rnuma
