/**
 * @file
 * The ten application workload generators (Table 3 of the paper).
 * Each reproduces its application's sharing signature at scaled input
 * sizes; see DESIGN.md section 5 for the substitution argument and
 * each .cc file for the per-application model.
 *
 * @param p     machine parameters (geometry only; costs are ignored)
 * @param scale input scale factor (1.0 = the repo's calibrated size;
 *              tests use ~0.1 for speed)
 * @param seed  generator seed (streams are fully deterministic)
 */

#ifndef RNUMA_WORKLOAD_APPS_APPS_HH
#define RNUMA_WORKLOAD_APPS_APPS_HH

#include <memory>

#include "common/params.hh"
#include "workload/workload.hh"

namespace rnuma
{

/** Barnes-Hut N-body simulation (SPLASH-2), 16K particles. */
std::unique_ptr<VectorWorkload>
makeBarnes(const Params &p, double scale = 1.0, std::uint64_t seed = 1);

/** Blocked sparse Cholesky factorization (SPLASH-2), tk16.O. */
std::unique_ptr<VectorWorkload>
makeCholesky(const Params &p, double scale = 1.0,
             std::uint64_t seed = 1);

/** 3-D electromagnetic wave propagation (Split-C), 76800 nodes. */
std::unique_ptr<VectorWorkload>
makeEm3d(const Params &p, double scale = 1.0, std::uint64_t seed = 1);

/** Complex 1-D radix-sqrt(n) six-step FFT (SPLASH-2), 64K points. */
std::unique_ptr<VectorWorkload>
makeFft(const Params &p, double scale = 1.0, std::uint64_t seed = 1);

/** Fast Multipole N-body simulation (SPLASH-2), 16K particles. */
std::unique_ptr<VectorWorkload>
makeFmm(const Params &p, double scale = 1.0, std::uint64_t seed = 1);

/** Blocked dense LU factorization (SPLASH-2), 512x512, 16x16. */
std::unique_ptr<VectorWorkload>
makeLu(const Params &p, double scale = 1.0, std::uint64_t seed = 1);

/** CHARMM-like molecular dynamics, 2048 particles, 15 iters. */
std::unique_ptr<VectorWorkload>
makeMoldyn(const Params &p, double scale = 1.0, std::uint64_t seed = 1);

/** Ocean simulation (SPLASH-2), 258x258 grid. */
std::unique_ptr<VectorWorkload>
makeOcean(const Params &p, double scale = 1.0, std::uint64_t seed = 1);

/** Integer radix sort (SPLASH-2), 1M integers, radix 1024. */
std::unique_ptr<VectorWorkload>
makeRadix(const Params &p, double scale = 1.0, std::uint64_t seed = 1);

/** 3-D scene rendering by ray tracing (SPLASH-2), "car". */
std::unique_ptr<VectorWorkload>
makeRaytrace(const Params &p, double scale = 1.0,
             std::uint64_t seed = 1);

} // namespace rnuma

#endif // RNUMA_WORKLOAD_APPS_APPS_HH
