/**
 * @file
 * fft: complex 1-D radix-sqrt(n) six-step FFT (SPLASH-2). Sharing
 * signature: staged all-to-all transposes between purely local
 * compute phases. Every remote block is read exactly once per
 * transpose and then rewritten by its owner, so there are no
 * capacity/conflict refetches at all — the paper omits fft from
 * Figure 5 for exactly this reason. The transpose sweeps touch
 * nearly every remote page once, overwhelming the S-COMA page cache
 * with useless allocations (Section 5.2).
 */

#include "workload/apps/apps.hh"

#include <vector>

#include "workload/synthetic.hh"

namespace rnuma
{

std::unique_ptr<VectorWorkload>
makeFft(const Params &p, double scale, std::uint64_t seed)
{
    StreamBuilder b("fft", p, seed ^ 0xff70ULL);
    const std::size_t points = scaled(65536, scale);
    const std::size_t point_bytes = 16; // complex double
    const std::size_t ncpus = b.ncpus();
    const std::size_t np = points / ncpus ? points / ncpus : 1;

    std::vector<Addr> region(ncpus);
    for (CpuId c = 0; c < ncpus; ++c) {
        region[c] = b.allocBytes(np * point_bytes);
        b.touchRange(c, region[c], np * point_bytes);
    }
    b.barrier(); // placement completes before the parallel phase

    auto compute = [&]() {
        // Local butterfly phase: stream over the owned partition.
        for (CpuId c = 0; c < ncpus; ++c) {
            for (std::size_t i = 0; i < np; ++i) {
                Addr a = region[c] + i * point_bytes;
                b.read(c, a, 6);
                b.write(c, a, 6);
            }
        }
        b.barrier();
    };

    auto transpose = [&](std::size_t phase) {
        // All-to-all: each CPU gathers contiguous chunks — its "row"
        // of the sqrt(n) x sqrt(n) matrix — from every other CPU's
        // region and writes its own partition. Each remote point is
        // read exactly once, in address order, so consecutive reads
        // of a block come from the same CPU (no refetches: the paper
        // omits fft from Figure 5 for this reason).
        const std::size_t chunk = np / ncpus ? np / ncpus : 1;
        for (CpuId c = 0; c < ncpus; ++c) {
            for (std::size_t i = 0; i < np; ++i) {
                CpuId src = static_cast<CpuId>(
                    (c + phase + i / chunk) % ncpus);
                // Each transpose stage gathers a different stripe of
                // the sqrt(n) x sqrt(n) matrix, so the set of remote
                // pages a node touches grows stage by stage past the
                // 80-frame page cache.
                std::size_t idx = (((c * 13 + phase * 5) % ncpus) * chunk +
                                   i % chunk) % np;
                b.read(c, region[src] + idx * point_bytes, 2);
                b.write(c, region[c] + i * point_bytes, 2);
            }
        }
        b.barrier();
    };

    // Six-step: transpose, FFT columns, transpose, twiddle+FFT,
    // transpose (last transpose optional; we include it).
    transpose(0);
    compute();
    transpose(1);
    compute();
    transpose(2);
    return b.finish();
}

} // namespace rnuma
