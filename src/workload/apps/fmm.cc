/**
 * @file
 * fmm: adaptive Fast Multipole Method N-body (SPLASH-2). Sharing
 * signature: each node's interaction lists repeatedly read a pool of
 * a few hundred remote cells whose multipole expansions are rewritten
 * by their owners every timestep. The pool's bytes (~26 KB) fit the
 * 32 KB block cache, so CC-NUMA does well — but the pool's cells are
 * scattered a few to a page over ~90 remote pages (internal
 * fragmentation), which exceeds the 80-frame page cache: S-COMA
 * thrashes (the paper's ~4x case) and R-NUMA's relocated pages bounce
 * between the caches, leaving R-NUMA within a bounded distance of
 * CC-NUMA (Table 4: R-NUMA refetches at 142% of CC-NUMA's).
 */

#include "workload/apps/apps.hh"

#include <numeric>
#include <vector>

#include "workload/synthetic.hh"

namespace rnuma
{

std::unique_ptr<VectorWorkload>
makeFmm(const Params &p, double scale, std::uint64_t seed)
{
    StreamBuilder b("fmm", p, seed ^ 0xf330ULL);
    const std::size_t cells = scaled(8192, scale);
    const std::size_t cell_bytes = 128; // multipole expansion
    const std::size_t pool_cells = 84; // per-node remote pool
    const std::size_t interactions = 16;
    const std::size_t passes = 2;
    const std::size_t iters = 3;
    const std::size_t ncpus = b.ncpus();
    const std::size_t own = cells / ncpus ? cells / ncpus : 1;
    // An expansion spans two blocks only while blockSize <
    // cell_bytes; with larger blocks the +blockSize access would
    // cross into the next cell (or past the array's last cell).
    const bool two_block_cells = p.blockSize < cell_bytes;
    // Pages smaller than a cell hold a fraction of one; clamp so the
    // page/pool arithmetic below stays meaningful (one cell "per
    // page" then simply means per cell-sized span).
    const std::size_t cells_per_page =
        p.pageSize >= cell_bytes ? p.pageSize / cell_bytes : 1;

    Addr base = b.allocBytes(cells * cell_bytes);
    for (CpuId c = 0; c < ncpus; ++c) {
        b.touchRange(c, base + c * own * cell_bytes, own * cell_bytes);
    }

    // Per-node interaction pools: remote cells, at most one per page
    // — the adaptive tree scatters each list over many pages with
    // only a cell or two used on each (the internal-fragmentation
    // signature; Section 5.2/5.3: "large and sparse working sets
    // which result in fragmentation in the page cache").
    const std::size_t pages_total = cells / cells_per_page;
    // Cap the pool to the remote pages actually available at small
    // test scales (7/8 of the cell pages are remote to any node).
    const std::size_t remote_pages = pages_total -
        pages_total / b.nnodes();
    const std::size_t pool_want = pool_cells < remote_pages * 9 / 10
        ? pool_cells : remote_pages * 9 / 10;
    // Cells are chosen to avoid aliasing in the direct-mapped block
    // cache (real interaction lists are laid out by the tree build,
    // not adversarially strided), so CC-NUMA's 32 KB block cache
    // genuinely holds the pool — the paper's premise that fmm's
    // remote working set fits the block cache.
    const std::size_t bc_sets = p.blockCacheSize / p.blockSize;
    // A cell's first block only ever maps to set0 = q*stride % bc_sets,
    // so at most bc_sets/gcd(stride, bc_sets) sets are reachable (half
    // that when stride == 1, because each accepted cell also claims
    // set0+1). Tiny configurations (e.g. the 1 KB test block cache)
    // offer fewer conflict-free slots than pool_cells; without this cap
    // the rejection loop below never terminates.
    const std::size_t set_stride = cell_bytes / p.blockSize;
    const std::size_t reachable_sets =
        bc_sets / std::gcd(set_stride, bc_sets);
    const std::size_t slot_cap = set_stride > 1
        ? reachable_sets : reachable_sets / 2;
    const std::size_t pool_limit = slot_cap > 0 ? slot_cap : 1;
    const std::size_t pool_target =
        pool_want < pool_limit ? pool_want : pool_limit;
    std::vector<std::vector<Addr>> pool(b.nnodes());
    for (NodeId n = 0; n < b.nnodes(); ++n) {
        pool[n].reserve(pool_target);
        std::vector<bool> used(pages_total, false);
        std::vector<bool> set_used(bc_sets, false);
        while (pool[n].size() < pool_target) {
            std::size_t pg = static_cast<std::size_t>(
                b.rng().below(pages_total));
            std::size_t q = pg * cells_per_page +
                static_cast<std::size_t>(
                    b.rng().below(cells_per_page));
            CpuId owner = static_cast<CpuId>(q / own < ncpus
                                             ? q / own : ncpus - 1);
            if (used[pg] || (b.nodeOf(owner) == n && b.nnodes() > 1))
                continue;
            std::size_t set0 = q * set_stride % bc_sets;
            if (set_used[set0])
                continue;
            set_used[set0] = true;
            if (set0 + 1 < bc_sets)
                set_used[set0 + 1] = true;
            used[pg] = true;
            pool[n].push_back(base + q * cell_bytes);
        }
    }

    b.barrier(); // placement completes before the parallel phase
    for (std::size_t it = 0; it < iters; ++it) {
        // Upward pass: owners recompute their cells' expansions
        // (local writes; consumers' copies are invalidated).
        for (CpuId c = 0; c < ncpus; ++c) {
            Addr mine = base + c * own * cell_bytes;
            for (std::size_t i = 0; i < own; ++i) {
                b.write(c, mine + i * cell_bytes, 2);
                if (two_block_cells)
                    b.write(c, mine + i * cell_bytes + p.blockSize,
                            2);
            }
        }
        b.barrier();

        // Interaction-list passes: re-read pool cells (two blocks of
        // each expansion) with heavy intra-node reuse. Degenerate
        // scales can leave no remote pages to pool (pool_target == 0);
        // there is then no interaction traffic to model, and indexing
        // the empty pool would be undefined.
        for (std::size_t pass = 0; pool_target > 0 && pass < passes;
             ++pass) {
            for (CpuId c = 0; c < ncpus; ++c) {
                NodeId n = b.nodeOf(c);
                for (std::size_t i = 0; i < own; ++i) {
                    for (std::size_t k = 0; k < interactions; ++k) {
                        Addr cell = pool[n][static_cast<std::size_t>(
                            b.rng().below(pool_target))];
                        b.read(c, cell, 4);
                        if (two_block_cells)
                            b.read(c, cell + p.blockSize, 4);
                    }
                }
            }
        }
        b.barrier();

        // Slow churn of the interaction lists as bodies move.
        for (NodeId n = 0; n < b.nnodes(); ++n) {
            for (std::size_t k = 0; k < pool_target / 10; ++k) {
                std::size_t pg = static_cast<std::size_t>(
                    b.rng().below(pages_total));
                std::size_t q = pg * cells_per_page +
                    static_cast<std::size_t>(
                        b.rng().below(cells_per_page));
                pool[n][static_cast<std::size_t>(
                    b.rng().below(pool_target))] = base + q * cell_bytes;
            }
        }
    }
    return b.finish();
}

} // namespace rnuma
