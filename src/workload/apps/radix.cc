/**
 * @file
 * radix: parallel integer radix sort (SPLASH-2, radix 1024). Sharing
 * signature: the permutation phase gives every node ~1024 open
 * destination runs — one per digit — scattered across essentially
 * every page of the destination array. The active block set (~32 KB
 * per node) just fits CC-NUMA's block cache, while the page-level
 * footprint (hundreds of concurrently written remote pages) swamps
 * the 80-frame page cache: the paper's "S-COMA up to 315% slower"
 * case. Refetches are spread almost uniformly over the remote pages
 * (Figure 5's flat radix curve), so R-NUMA's threshold fires on many
 * pages and relocated pages bounce — R-NUMA trails CC-NUMA by a
 * bounded margin (the paper's worst observed 57%).
 */

#include "workload/apps/apps.hh"

#include <vector>

#include "workload/synthetic.hh"

namespace rnuma
{

std::unique_ptr<VectorWorkload>
makeRadix(const Params &p, double scale, std::uint64_t seed)
{
    StreamBuilder b("radix", p, seed ^ 0x4ad1ULL);
    const std::size_t keys = scaled(524288, scale);
    const std::size_t digits = 512; // radix, scaled with the input
    const std::size_t passes = 2;
    const std::size_t ncpus = b.ncpus();
    const std::size_t keys_per_cpu = keys / ncpus ? keys / ncpus : 1;
    const std::size_t key_bytes = 4;
    // Blocks narrower than a key still hold (at least) one key for
    // the purposes of the block-granular streaming below; without
    // the clamp the stride arithmetic divides by zero.
    const std::size_t keys_per_block = p.blockSize > key_bytes
        ? p.blockSize / key_bytes : 1;

    // Per-digit, per-node destination sub-runs: digit-major layout,
    // each (digit, node) run holds keys/digits/nodes keys. A block of
    // padding per digit region breaks the power-of-two stride that
    // would otherwise alias every 16th digit onto the same
    // direct-mapped block-cache set (SPLASH-2 codes pad for the same
    // reason).
    const std::size_t run_keys = keys / digits / b.nnodes()
        ? keys / digits / b.nnodes() : 1;
    const std::size_t digit_keys = run_keys * b.nnodes() +
        keys_per_block;

    // Source and destination arrays (the destination is sized for
    // the padded layout); pages homed round-robin so the scatter is
    // 7/8 remote. (SPLASH-2 radix swaps the arrays each pass.)
    std::size_t array_bytes = digits * digit_keys * key_bytes;
    if (array_bytes < keys * key_bytes)
        array_bytes = keys * key_bytes;
    Addr src = b.allocBytes(array_bytes);
    Addr dst = b.allocBytes(array_bytes);
    std::size_t array_pages = (array_bytes + p.pageSize - 1) /
        p.pageSize;
    for (std::size_t pg = 0; pg < array_pages; ++pg) {
        CpuId t = static_cast<CpuId>((pg % b.nnodes()) *
                                     b.cpusPerNode());
        b.touch(t, src + pg * p.pageSize);
        b.touch(t, dst + pg * p.pageSize);
    }
    // Global histogram page (read-write shared by everyone).
    Addr hist = b.allocPages(1);
    b.touch(0, hist);

    auto run_addr = [&](Addr array, std::size_t digit, NodeId n,
                        std::size_t k) {
        std::size_t idx = digit * digit_keys + n * run_keys +
            (k % run_keys);
        return array + idx * key_bytes;
    };

    b.barrier(); // placement completes before the parallel phase
    std::vector<std::vector<std::size_t>> cursor(
        b.nnodes(), std::vector<std::size_t>(digits, 0));

    for (std::size_t pass = 0; pass < passes; ++pass) {
        Addr from = pass % 2 == 0 ? src : dst;
        Addr to = pass % 2 == 0 ? dst : src;
        for (auto &v : cursor)
            for (auto &x : v)
                x = 0;

        // Histogram: stream over the node-local key pages
        // (block-granular reads; 'think' models per-key digit
        // extraction) and fold into the shared histogram page.
        for (CpuId c = 0; c < ncpus; ++c) {
            NodeId n = b.nodeOf(c);
            // Each CPU starts on a distinct page of its node's
            // stripe; tiny inputs have fewer pages than CPUs, so
            // wrap rather than stream past the array.
            std::size_t pg = n + (c % b.cpusPerNode()) * b.nnodes();
            if (pg >= array_pages)
                pg %= array_pages;
            std::size_t blocks_to_read = keys_per_cpu /
                keys_per_block;
            std::size_t consumed = 0;
            for (std::size_t k = 0; k < blocks_to_read; ++k) {
                if (consumed == p.blocksPerPage()) {
                    pg += b.nnodes() * b.cpusPerNode();
                    if (pg >= array_pages)
                        pg = n % array_pages;
                    consumed = 0;
                }
                b.read(c, from + pg * p.pageSize +
                           consumed * p.blockSize, 8);
                consumed++;
            }
            for (std::size_t h = 0; h < 32; ++h) {
                Addr a = hist + ((c + h) % p.blocksPerPage()) *
                    p.blockSize;
                b.read(c, a, 2);
                b.write(c, a, 2);
            }
        }
        b.barrier();

        // Permutation: read the keys the node holds locally (each
        // pass re-partitions so a processor consumes its own node's
        // pages, as in SPLASH-2 radix) and write each key to the
        // open run for its digit. Writes scatter remotely; reads
        // stay local — radix's refetch traffic is write-dominated
        // on mostly read-only-shared pages (Table 4: 15%).
        std::size_t pages_per_node = array_pages / b.nnodes();
        for (CpuId c = 0; c < ncpus; ++c) {
            NodeId n = b.nodeOf(c);
            std::size_t local_pg = n +
                (c % b.cpusPerNode()) * b.nnodes();
            if (local_pg >= array_pages)
                local_pg %= array_pages;
            Addr mine = from + local_pg * p.pageSize;
            std::size_t stride = b.nnodes() * b.cpusPerNode();
            (void)pages_per_node;
            std::size_t consumed = 0;
            for (std::size_t k = 0; k < keys_per_cpu; ++k) {
                if (k % keys_per_block == 0) {
                    // Advance through the node's own pages.
                    std::size_t key_in_page =
                        (k % (p.pageSize / key_bytes));
                    if (k > 0 && key_in_page == 0) {
                        local_pg += stride;
                        if (local_pg >= array_pages)
                            local_pg = n % array_pages;
                        mine = from + local_pg * p.pageSize;
                        consumed = 0;
                    }
                    b.read(c, mine + consumed * p.blockSize, 2);
                    consumed++;
                }
                std::size_t digit = static_cast<std::size_t>(
                    b.rng().below(digits));
                std::size_t pos = cursor[n][digit]++;
                b.write(c, run_addr(to, digit, n, pos), 1);
            }
        }
        b.barrier();
    }
    return b.finish();
}

} // namespace rnuma
