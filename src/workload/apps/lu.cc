/**
 * @file
 * lu: blocked dense LU factorization (SPLASH-2, 512x512 matrix,
 * 16x16 blocks). Sharing signature: at step k the perimeter blocks of
 * row/column k are read by every interior-block owner, several times
 * per step. The per-step remote reuse set (up to ~100 KB) overflows
 * even the 32 KB block cache (the paper's third category in
 * Figure 7, where CC-NUMA degrades up to 7x with a 1 KB cache), but
 * mostly fits the page cache. Block ownership is deliberately skewed
 * so two nodes own half the interior — reproducing the small-input
 * load imbalance the paper blames for lu's page replacements landing
 * on the critical path (Sections 5.2 and 5.5).
 */

#include "workload/apps/apps.hh"

#include <vector>

#include "workload/synthetic.hh"

namespace rnuma
{

std::unique_ptr<VectorWorkload>
makeLu(const Params &p, double scale, std::uint64_t seed)
{
    StreamBuilder b("lu", p, seed ^ 0x1004ULL);
    // Blocks per side. The elimination loops below need at least a
    // 2x2 grid to emit any memory references (a 1x1 factorization
    // has no perimeter or interior), so clamp there at tiny scales.
    const std::size_t grid = scaled(16, scale, 2);
    const std::size_t mb = 8192;                // matrix block bytes
    const std::size_t mblocks = mb / p.blockSize;

    // Skewed owner map: nodes 0 and 1 together own half the blocks.
    auto owner_node = [&](std::size_t i, std::size_t j) -> NodeId {
        static const NodeId table[16] = {0, 0, 0, 0, 1, 1, 1, 1,
                                         2, 3, 4, 5, 6, 7, 2, 3};
        NodeId n = table[(i * grid + j) % 16];
        return n % static_cast<NodeId>(b.nnodes());
    };
    auto owner_cpu = [&](std::size_t i, std::size_t j) -> CpuId {
        NodeId n = owner_node(i, j);
        return static_cast<CpuId>(n * b.cpusPerNode() +
                                  (i + j) % b.cpusPerNode());
    };

    Addr base = b.allocBytes(grid * grid * mb);
    auto blk_addr = [&](std::size_t i, std::size_t j) {
        return base + (i * grid + j) * mb;
    };
    for (std::size_t i = 0; i < grid; ++i)
        for (std::size_t j = 0; j < grid; ++j)
            b.touch(owner_cpu(i, j), blk_addr(i, j));

    auto sweep = [&](CpuId c, Addr a, bool write, std::size_t stride) {
        for (std::size_t k = 0; k < mblocks; k += stride) {
            if (write)
                b.write(c, a + k * p.blockSize, 2);
            else
                b.read(c, a + k * p.blockSize, 2);
        }
    };

    b.barrier(); // placement completes before the parallel phase
    for (std::size_t k = 0; k + 1 < grid; ++k) {
        // Factor the diagonal block.
        CpuId dc = owner_cpu(k, k);
        sweep(dc, blk_addr(k, k), false, 1);
        sweep(dc, blk_addr(k, k), true, 1);
        b.barrier();

        // Perimeter: row k and column k blocks read the diagonal and
        // update themselves.
        for (std::size_t j = k + 1; j < grid; ++j) {
            CpuId rc = owner_cpu(k, j);
            sweep(rc, blk_addr(k, k), false, 1);
            sweep(rc, blk_addr(k, j), true, 1);
            CpuId cc = owner_cpu(j, k);
            sweep(cc, blk_addr(k, k), false, 1);
            sweep(cc, blk_addr(j, k), true, 1);
        }
        b.barrier();

        // Interior update: block (i,j) -= L(i,k) * U(k,j). A node
        // re-reads each perimeter block once per interior block it
        // owns in that row/column; the intervening updates stream
        // several matrix blocks through the caches, so the reuse
        // distance exceeds the 32 KB block cache (Figure 7's third
        // category: lu's primary working set misses even b=32K).
        for (std::size_t i = k + 1; i < grid; ++i) {
            for (std::size_t j = k + 1; j < grid; ++j) {
                CpuId c = owner_cpu(i, j);
                sweep(c, blk_addr(i, k), false, 1);
                sweep(c, blk_addr(k, j), false, 1);
                sweep(c, blk_addr(i, j), true, 1);
            }
        }
        b.barrier();
    }
    return b.finish();
}

} // namespace rnuma
