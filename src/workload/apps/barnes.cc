/**
 * @file
 * barnes: Barnes-Hut N-body (SPLASH-2). Sharing signature: every
 * body's force traversal re-reads the small, hot top of the octree
 * thousands of times per timestep, while the large cold remainder
 * (lower cells and far bodies) is touched sparsely. The hot set
 * (~56 KB remote per node) overflows the 32 KB block cache, so
 * CC-NUMA refetches it continuously; the total remote page set
 * (hundreds of pages) overflows the 320 KB page cache, so S-COMA
 * thrashes. R-NUMA relocates exactly the hot pages and beats both
 * (Section 5.2: "R-NUMA performs best ... this is the case for
 * barnes and raytrace").
 */

#include "workload/apps/apps.hh"

#include <algorithm>
#include <vector>

#include "workload/synthetic.hh"

namespace rnuma
{

std::unique_ptr<VectorWorkload>
makeBarnes(const Params &p, double scale, std::uint64_t seed)
{
    StreamBuilder b("barnes", p, seed ^ 0xba12ULL);
    const std::size_t bodies = scaled(16384, scale);
    const std::size_t body_bytes = 32;
    const std::size_t hot_pages = 16;   // top tree levels
    const std::size_t cold_pages = 240; // lower cells
    const std::size_t hot_reads = 12;
    const std::size_t cold_reads = 1;
    const std::size_t iters = 4;
    const std::size_t ncpus = b.ncpus();
    const std::size_t own = bodies / ncpus ? bodies / ncpus : 1;

    Addr bodies_base = b.allocBytes(bodies * body_bytes);
    for (CpuId c = 0; c < ncpus; ++c) {
        b.touchRange(c, bodies_base + c * own * body_bytes,
                     own * body_bytes);
    }

    // Tree cells, partitioned across nodes (cells are built
    // cooperatively; each node homes a slice).
    Addr hot = b.allocPages(hot_pages);
    Addr cold = b.allocPages(cold_pages);
    auto touch_sliced = [&](Addr base_addr, std::size_t pages) {
        std::size_t per = pages / b.nnodes() ? pages / b.nnodes() : 1;
        for (std::size_t pg = 0; pg < pages; ++pg) {
            NodeId n = static_cast<NodeId>(
                std::min(pg / per, b.nnodes() - 1));
            b.touch(static_cast<CpuId>(n * b.cpusPerNode()),
                    base_addr + pg * p.pageSize);
        }
    };
    touch_sliced(hot, hot_pages);
    touch_sliced(cold, cold_pages);

    auto rand_block = [&](Addr base_addr, std::size_t pages) {
        std::size_t blocks = pages * p.blocksPerPage();
        return base_addr + b.rng().below(blocks) * p.blockSize;
    };

    b.barrier(); // placement completes before the parallel phase
    for (std::size_t it = 0; it < iters; ++it) {
        // Force traversal.
        for (CpuId c = 0; c < ncpus; ++c) {
            Addr mine = bodies_base + c * own * body_bytes;
            for (std::size_t i = 0; i < own; ++i) {
                for (std::size_t k = 0; k < hot_reads; ++k)
                    b.read(c, rand_block(hot, hot_pages), 2);
                for (std::size_t k = 0; k < cold_reads; ++k)
                    b.read(c, rand_block(cold, cold_pages), 2);
                // An occasional far-body read.
                b.read(c, bodies_base +
                           b.rng().below(bodies) * body_bytes, 2);
                b.write(c, mine + i * body_bytes, 2);
            }
        }
        b.barrier();
        // Tree rebuild: each node's lead CPU rewrites ~40% of its hot
        // slice, invalidating consumers (the hot pages are read-write
        // shared, matching Table 4's 97%).
        std::size_t hot_blocks = hot_pages * p.blocksPerPage();
        std::size_t per_node = hot_blocks / b.nnodes();
        for (NodeId n = 0; n < b.nnodes(); ++n) {
            CpuId lead = static_cast<CpuId>(n * b.cpusPerNode());
            for (std::size_t k = 0; k < per_node * 2 / 5; ++k) {
                Addr a = hot + (n * per_node +
                    b.rng().below(per_node)) * p.blockSize;
                b.write(lead, a, 2);
            }
        }
        b.barrier();
    }
    return b.finish();
}

} // namespace rnuma
