/**
 * @file
 * em3d: 3-D electromagnetic wave propagation on a bipartite graph
 * (Split-C). Sharing signature: pure producer/consumer. Each graph
 * node is owned by one CPU; every iteration each CPU reads its
 * nodes' neighbors (15% of edges cross node boundaries) and rewrites
 * its own values. Remote blocks are invalidated by the producer
 * between iterations, so remote traffic is almost entirely coherence
 * misses — CC-NUMA territory. The remote pages per node far exceed
 * the page cache, so S-COMA replaces frames constantly for no reuse
 * benefit (Section 5.2: em3d/fft favor CC-NUMA).
 */

#include "workload/apps/apps.hh"

#include <vector>

#include "workload/synthetic.hh"

namespace rnuma
{

std::unique_ptr<VectorWorkload>
makeEm3d(const Params &p, double scale, std::uint64_t seed)
{
    StreamBuilder b("em3d", p, seed ^ 0xe3d0ULL);
    const std::size_t gnodes_per_cpu = scaled(1200, scale);
    const std::size_t degree = 5;
    const double remote_frac = 0.15;
    const std::size_t iters = 5;
    const std::size_t ncpus = b.ncpus();

    // One 32-byte value record per graph node, regions per CPU.
    std::vector<Addr> region(ncpus);
    for (CpuId c = 0; c < ncpus; ++c) {
        region[c] = b.allocBytes(gnodes_per_cpu * p.blockSize);
        b.touchRange(c, region[c], gnodes_per_cpu * p.blockSize);
    }

    // Static edge lists: 15% of edges reference a uniformly random
    // graph node on a different SMP node.
    std::vector<std::vector<Addr>> nbrs(ncpus);
    for (CpuId c = 0; c < ncpus; ++c) {
        nbrs[c].reserve(gnodes_per_cpu * degree);
        for (std::size_t g = 0; g < gnodes_per_cpu; ++g) {
            for (std::size_t d = 0; d < degree; ++d) {
                CpuId src = c;
                if (b.rng().chance(remote_frac) && b.nnodes() > 1) {
                    NodeId other;
                    do {
                        other = static_cast<NodeId>(
                            b.rng().below(b.nnodes()));
                    } while (other == b.nodeOf(c));
                    src = static_cast<CpuId>(
                        other * b.cpusPerNode() +
                        b.rng().below(b.cpusPerNode()));
                }
                Addr a = region[src] +
                    b.rng().below(gnodes_per_cpu) * p.blockSize;
                nbrs[c].push_back(a);
            }
        }
    }

    b.barrier(); // placement completes before the parallel phase
    for (std::size_t it = 0; it < iters; ++it) {
        for (CpuId c = 0; c < ncpus; ++c) {
            for (std::size_t g = 0; g < gnodes_per_cpu; ++g) {
                for (std::size_t d = 0; d < degree; ++d)
                    b.read(c, nbrs[c][g * degree + d], 2);
                b.write(c, region[c] + g * p.blockSize, 2);
            }
        }
        b.barrier();
    }
    return b.finish();
}

} // namespace rnuma
