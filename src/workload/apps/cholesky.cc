/**
 * @file
 * cholesky: blocked sparse Cholesky factorization (SPLASH-2, tk16.O).
 * Sharing signature: left-looking supernodal updates — once a panel
 * is factored by its owner, many later updates on other nodes re-read
 * it repeatedly. The per-node, per-step reuse set (~128 KB of recent
 * panels) overflows the 32 KB block cache but fits the 320 KB page
 * cache, so S-COMA and (after relocation) R-NUMA win while CC-NUMA
 * refetches. Panels are written before they are read-shared, largely
 * in a producer/consumer fashion, so only a modest fraction of
 * refetches come from read-write pages (Table 4: 28%).
 */

#include "workload/apps/apps.hh"

#include <vector>

#include "workload/synthetic.hh"

namespace rnuma
{

std::unique_ptr<VectorWorkload>
makeCholesky(const Params &p, double scale, std::uint64_t seed)
{
    StreamBuilder b("cholesky", p, seed ^ 0xc401ULL);
    const std::size_t panels = scaled(96, scale);
    const std::size_t steps = panels / 3 ? panels / 3 : 1;
    const std::size_t reads_per_step = 3; // panels re-read per cpu
    // 96 of the base machine's 128 blocks per panel page; clamped
    // because a panel is exactly one page — on small-page
    // configurations sampling 96 blocks would run off the panel
    // into its neighbors (and past the last allocation).
    const std::size_t sample_blocks =
        p.blocksPerPage() < 96 ? p.blocksPerPage() : 96;
    const std::size_t passes = 2;
    const std::size_t ncpus = b.ncpus();

    // One page per panel, owned round-robin by CPU.
    std::vector<Addr> panel(panels);
    for (std::size_t k = 0; k < panels; ++k) {
        panel[k] = b.allocPages(1);
        b.touch(static_cast<CpuId>(k % ncpus), panel[k]);
    }
    // A small shared task queue (supplies the read-write component).
    Addr queue = b.allocPages(1);
    b.touch(0, queue);

    b.barrier(); // placement completes before the parallel phase
    for (std::size_t s = 0; s < steps; ++s) {
        // Factor phase: owners of the three panels that become ready
        // this step write them (homes are local, consumers get
        // invalidated).
        for (std::size_t k = 3 * s; k < 3 * s + 3 && k < panels; ++k) {
            CpuId owner = static_cast<CpuId>(k % ncpus);
            for (std::size_t blk = 0; blk < p.blocksPerPage(); ++blk)
                b.write(owner, panel[k] + blk * p.blockSize, 2);
        }
        b.barrier();

        std::size_t ready = 3 * s + 3 < panels ? 3 * s + 3 : panels;
        // Update phase: every cpu applies updates that re-read a
        // handful of recently factored panels several times. The
        // recency window matches left-looking factorization, where a
        // panel stays hot across several subsequent steps (this is
        // what lets S-COMA and R-NUMA amortize page operations).
        std::size_t window = ready < 12 ? ready : 12;
        for (CpuId c = 0; c < ncpus; ++c) {
            std::vector<std::size_t> chosen(reads_per_step);
            for (auto &k : chosen)
                k = ready - window +
                    static_cast<std::size_t>(b.rng().below(window));
            for (std::size_t pass = 0; pass < passes; ++pass) {
                for (std::size_t k : chosen) {
                    for (std::size_t blk = 0; blk < sample_blocks;
                         ++blk) {
                        b.read(c, panel[k] + blk * p.blockSize, 2);
                    }
                }
            }
            // Task-queue interaction (read-write shared).
            Addr a = queue + (s + c) % p.blocksPerPage() * p.blockSize;
            b.read(c, a, 2);
            b.write(c, a, 2);
        }
        b.barrier();
    }
    return b.finish();
}

} // namespace rnuma
