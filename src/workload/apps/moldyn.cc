/**
 * @file
 * moldyn: CHARMM-like molecular dynamics. Sharing signature: a
 * stable neighbor list makes every CPU re-read the same remote
 * particle positions several times per timestep (multiple passes over
 * the pair list), while owners rewrite positions only once per step.
 * The per-node remote working set (most of the particle array)
 * overflows the 32 KB block cache but fits easily in the 320 KB page
 * cache — the canonical reuse-page application where S-COMA shines
 * and CC-NUMA pays a stream of capacity refetches (the paper's
 * "CC-NUMA up to 179% slower" case). R-NUMA relocates the particle
 * pages after the first timestep and then performs like S-COMA.
 */

#include "workload/apps/apps.hh"

#include <vector>

#include "workload/synthetic.hh"

namespace rnuma
{

std::unique_ptr<VectorWorkload>
makeMoldyn(const Params &p, double scale, std::uint64_t seed)
{
    StreamBuilder b("moldyn", p, seed ^ 0x3014ULL);
    const std::size_t particles = scaled(2048, scale);
    const std::size_t particle_bytes = 64; // position + velocity
    const std::size_t partners = 24;
    const std::size_t passes = 2;
    const std::size_t iters = 10;
    const std::size_t ncpus = b.ncpus();
    const std::size_t own = particles / ncpus ? particles / ncpus : 1;

    Addr base = b.allocBytes(particles * particle_bytes);
    for (CpuId c = 0; c < ncpus; ++c) {
        b.touchRange(c, base + c * own * particle_bytes,
                     own * particle_bytes);
    }

    // Static neighbor list: partners uniform over all particles.
    std::vector<std::vector<Addr>> pairs(ncpus);
    for (CpuId c = 0; c < ncpus; ++c) {
        pairs[c].reserve(own * partners);
        for (std::size_t i = 0; i < own; ++i) {
            for (std::size_t k = 0; k < partners; ++k) {
                std::size_t q = static_cast<std::size_t>(
                    b.rng().below(particles));
                pairs[c].push_back(base + q * particle_bytes);
            }
        }
    }

    b.barrier(); // placement completes before the parallel phase
    for (std::size_t it = 0; it < iters; ++it) {
        // Force computation: several passes over the pair list
        // (two-body terms, then symmetrization / cutoff updates).
        for (std::size_t pass = 0; pass < passes; ++pass) {
            for (CpuId c = 0; c < ncpus; ++c)
                for (Addr a : pairs[c])
                    b.read(c, a, 6);
        }
        // Integration: rewrite owned positions (invalidating the
        // copies the consumers cached). A particle record spans two
        // blocks only while blockSize < particle_bytes; with larger
        // blocks the second write would land in the next particle —
        // and past the array for the last one.
        for (CpuId c = 0; c < ncpus; ++c) {
            Addr mine = base + c * own * particle_bytes;
            for (std::size_t i = 0; i < own; ++i) {
                b.write(c, mine + i * particle_bytes, 3);
                if (p.blockSize < particle_bytes)
                    b.write(c,
                            mine + i * particle_bytes + p.blockSize,
                            3);
            }
        }
        b.barrier();
    }
    return b.finish();
}

} // namespace rnuma
