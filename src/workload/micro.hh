/**
 * @file
 * Microbenchmark workloads: small, analyzable reference patterns used
 * by the unit tests, the examples, and the worst-case (competitive
 * bound) validation bench.
 */

#ifndef RNUMA_WORKLOAD_MICRO_HH
#define RNUMA_WORKLOAD_MICRO_HH

#include <memory>

#include "common/params.hh"
#include "workload/workload.hh"

namespace rnuma
{

/**
 * Every CPU loops over a private, node-local array. No remote
 * traffic at all; all protocols should tie the infinite baseline.
 */
std::unique_ptr<VectorWorkload>
makePrivateLoop(const Params &p, std::size_t pages_per_cpu,
                std::size_t iters);

/**
 * CPU 0 of node 0 repeatedly reads a set of pages homed on node 1.
 * With enough repetitions and a working set bigger than the block
 * cache, this is the canonical "reuse page" pattern that favors
 * S-COMA and triggers R-NUMA relocation.
 */
std::unique_ptr<VectorWorkload>
makeHotRemoteReuse(const Params &p, std::size_t remote_pages,
                   std::size_t sweeps);

/**
 * Eviction-heavy reuse: like makeHotRemoteReuse, but the reader's
 * reuse set (@p remote_pages) is meant to exceed the page-cache
 * frame budget (Params::pageCacheFrames()). Relocated pages then
 * keep falling out of the page cache and re-qualifying, so the
 * relocate/evict ping-pong the hysteresis and adaptive policies
 * exist to manage actually happens — at small scales the single
 * hot-reuse pattern fits the caches and every policy ties.
 * Asserts remote_pages > frames so a misconfigured cell fails
 * loudly instead of silently degenerating back into hot reuse.
 */
std::unique_ptr<VectorWorkload>
makeEvictionStorm(const Params &p, std::size_t remote_pages,
                  std::size_t sweeps);

/**
 * Producer/consumer: node 0 writes a buffer, barrier, node 1 reads
 * it, barrier, repeat. Pure coherence misses — the canonical
 * "communication page" pattern where CC-NUMA wins and S-COMA pays
 * allocation for nothing.
 */
std::unique_ptr<VectorWorkload>
makeProducerConsumer(const Params &p, std::size_t pages,
                     std::size_t rounds);

/**
 * The worst case of the Section 3.2 model: for each of @p pages
 * remote pages, one CPU generates exactly enough capacity refetches
 * on one block to cross the relocation threshold, then never touches
 * the page again. R-NUMA pays T refetches + relocation + (eventual)
 * replacement; CC-NUMA pays only the refetches; S-COMA pays one
 * allocation. Used to validate EQ 1-3 empirically.
 *
 * @param touches_per_page remote fetches to generate per page
 *        (set to the relocation threshold + 1 to just trip R-NUMA)
 */
std::unique_ptr<VectorWorkload>
makeAdversary(const Params &p, std::size_t pages,
              std::size_t touches_per_page);

/**
 * All CPUs hammer read-write blocks on a single shared page homed on
 * node 0 (lock/counter pattern): read-write sharing that page
 * migration/replication cannot help (Section 1).
 */
std::unique_ptr<VectorWorkload>
makeRwSharing(const Params &p, std::size_t rounds);

/**
 * Machine-wide shift pattern for the scaling figure: every node owns
 * @p pages_per_node pages, and each node's first CPU repeatedly
 * reads the set owned by its antipodal partner, node
 * (n + N/2) mod N. Unlike the two-node micro patterns this exercises
 * every node and every home simultaneously, so interconnect topology
 * (hop counts, link contention) and directory size actually scale
 * with N — yet each page has exactly one remote reader, keeping
 * sparse sharer sets (limited-pointer, any width ≥ 1) exact.
 */
std::unique_ptr<VectorWorkload>
makeScalingShift(const Params &p, std::size_t pages_per_node,
                 std::size_t sweeps);

} // namespace rnuma

#endif // RNUMA_WORKLOAD_MICRO_HH
