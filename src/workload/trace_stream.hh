/**
 * @file
 * Streaming binary traces: a compact, delta-encoded, mmap-able
 * on-disk reference-stream format, plus a Workload implementation
 * that replays one directly off the mapping in O(1) resident memory.
 *
 * The eager format (trace.hh) materializes a full VectorWorkload on
 * load — fine for unit-test sized streams, hopeless for the
 * billions-of-references serving replays the north star calls for.
 * The stream format instead:
 *
 *  - header: magic "RNUMAST1", format version, cpu count, max think
 *    time, address-space high-water mark, workload name;
 *  - body: a sequence of chunks `[varint cpu][varint len][records]`,
 *    written round-robin across CPUs so file order tracks replay
 *    order;
 *  - records: one control byte (kind + write flag), then for memory
 *    references a zigzag-varint address delta against the CPU's
 *    previous address and a varint think time. Barriers are a single
 *    byte; End is implicit at stream exhaustion.
 *
 * Replay mmaps the file read-only, keeps one cursor per CPU, and
 * returns consumed chunks to the OS (madvise) as it crosses chunk
 * boundaries — resident memory is ~one chunk per CPU regardless of
 * trace length. Replay is bit-identical to the recorded source:
 * every next()/peek() returns the same Ref sequence per CPU.
 */

#ifndef RNUMA_WORKLOAD_TRACE_STREAM_HH
#define RNUMA_WORKLOAD_TRACE_STREAM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace rnuma
{

/** Stream-trace format magic ("RNUMAST1") and current version. */
constexpr std::uint64_t streamTraceMagic = 0x524e554d41535431ULL;
constexpr std::uint32_t streamTraceVersion = 1;

/**
 * Record a workload into a stream trace at @p path by draining every
 * CPU's stream round-robin in chunk-sized runs (so the file's chunk
 * order approximates replay order), then reset() the source. Fatal
 * on I/O errors. The source's addrLimit is preserved when it is a
 * materialized VectorWorkload (0 — unknown — otherwise).
 */
void recordStreamTrace(Workload &wl, const std::string &path);

/**
 * Replays a stream trace as a Workload, straight off a read-only
 * mmap of the file: a constructor pass indexes every chunk's
 * location, per-CPU cursors then decode records in place, and pages
 * behind the slowest cursor are madvise()d away in folio-aligned
 * strides, so resident memory is independent of trace length.
 * reset() rewinds to the header for back-to-back protocol
 * comparisons.
 *
 * Construction is fatal (throwing under tests) on a bad magic,
 * unsupported version, implausible header, or truncated file; a
 * record that runs off the mapping is fatal at decode time.
 */
class StreamTraceWorkload : public Workload
{
  public:
    explicit StreamTraceWorkload(const std::string &path);
    ~StreamTraceWorkload() override;

    StreamTraceWorkload(const StreamTraceWorkload &) = delete;
    StreamTraceWorkload &
    operator=(const StreamTraceWorkload &) = delete;

    std::size_t numCpus() const override { return cursors_.size(); }
    const Ref &next(CpuId cpu) override;
    const Ref &peek(CpuId cpu) override;
    void reset() override;
    const std::string &name() const override { return name_; }
    Tick maxThink() const override { return max_think_; }

    /** The recorded allocation high-water mark (0 = unknown). */
    Addr addrLimit() const { return addr_limit_; }

  private:
    /** One chunk's location in the body. */
    struct ChunkLoc
    {
        std::size_t off; ///< payload offset from the file start
        std::size_t len; ///< payload length
    };

    /** One CPU's replay position. */
    struct Cursor
    {
        const std::uint8_t *payload = nullptr; ///< current chunk
        std::size_t pos = 0;      ///< decode offset within payload
        std::size_t len = 0;      ///< payload length
        std::size_t chunk = 0;    ///< next index into chunks_[cpu]
        Addr prev = 0;            ///< delta-decoding base
        Ref pending;              ///< what peek()/the next next() see
        Ref current;              ///< what the last next() returned
        bool hasPending = false;
    };

    /** Advance @p cur to its next chunk; false when exhausted. */
    bool nextChunk(Cursor &cur);

    /** Decode one record into cur.pending (hasPending=false at end). */
    void decodePending(Cursor &cur);

    /** Return pages behind the slowest cursor to the OS. */
    void reclaimBehind();

    void initCursors();

    int fd_ = -1;
    const std::uint8_t *map_ = nullptr;
    std::size_t file_size_ = 0;
    std::size_t body_off_ = 0;
    std::size_t drop_lo_ = 0; ///< file offset already madvise()d away
    std::string name_;
    Tick max_think_ = 0;
    Addr addr_limit_ = 0;
    std::vector<Cursor> cursors_;
    /// Per-cpu chunk index, built in one constructor pass so replay
    /// never rescans the mapping (a rescan would re-fault pages that
    /// dropChunk() already returned to the OS).
    std::vector<std::vector<ChunkLoc>> chunks_;
};

} // namespace rnuma

#endif // RNUMA_WORKLOAD_TRACE_STREAM_HH
