#include "workload/registry.hh"

#include "common/logging.hh"
#include "workload/apps/apps.hh"

namespace rnuma
{

namespace
{

struct Entry
{
    const char *name;
    const char *problem;
    const char *input;
    std::unique_ptr<VectorWorkload> (*make)(const Params &, double,
                                            std::uint64_t);
};

const Entry entries[] = {
    {"barnes", "Barnes-Hut N-body simulation", "16K particles",
     &makeBarnes},
    {"cholesky", "Blocked sparse Cholesky factorization", "tk16.O",
     &makeCholesky},
    {"em3d", "3-D electromagnetic wave propagation",
     "76800 nodes, 15% remote, 5 iters", &makeEm3d},
    {"fft", "Complex 1-D radix-sqrt(n) six-step FFT", "64K points",
     &makeFft},
    {"fmm", "Fast Multipole N-body simulation", "16K particles",
     &makeFmm},
    {"lu", "Blocked dense LU factorization",
     "512x512 matrix, 16x16 blocks", &makeLu},
    {"moldyn", "Molecular dynamics simulation",
     "2048 particles, 15 iters", &makeMoldyn},
    {"ocean", "Ocean simulation", "258x258 ocean", &makeOcean},
    {"radix", "Integer radix sort", "1M integers, radix 1024",
     &makeRadix},
    {"raytrace", "3-D scene rendering using ray-tracing", "car",
     &makeRaytrace},
};

const Entry &
lookup(const std::string &name)
{
    for (const Entry &e : entries)
        if (name == e.name)
            return e;
    RNUMA_FATAL("unknown application '", name,
                "' (see appNames() for the valid set)");
}

} // namespace

const std::vector<std::string> &
appNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const Entry &e : entries)
            v.emplace_back(e.name);
        return v;
    }();
    return names;
}

const char *
appProblem(const std::string &name)
{
    return lookup(name).problem;
}

const char *
appInput(const std::string &name)
{
    return lookup(name).input;
}

std::unique_ptr<VectorWorkload>
makeApp(const std::string &name, const Params &p, double scale,
        std::uint64_t seed)
{
    auto wl = lookup(name).make(p, scale, seed);
    // Every generator clamps its structure (see scaled()) so that it
    // stays viable at any positive scale; a workload with zero loads
    // and stores would silently turn every figure cell into a no-op.
    RNUMA_ASSERT(wl->memRefCount() > 0, "application '", name,
                 "' emitted no memory references at scale ", scale);
    return wl;
}

} // namespace rnuma
