#include "workload/registry.hh"

#include <cctype>
#include <cstdlib>
#include <mutex>

#include "common/logging.hh"
#include "workload/apps/apps.hh"
#include "workload/micro.hh"
#include "workload/serving.hh"
#include "workload/synthetic.hh"

namespace rnuma
{

//--------------------------------------------------------------------------
// WorkloadOptions
//--------------------------------------------------------------------------

WorkloadOptions
WorkloadOptions::parse(const std::string &text)
{
    WorkloadOptions opts;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = text.find(',', pos);
        if (end == std::string::npos)
            end = text.size();
        std::string pair = text.substr(pos, end - pos);
        pos = end + 1;
        if (pair.empty())
            continue;
        std::size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq == pair.size() - 1) {
            RNUMA_FATAL("malformed workload option '", pair,
                        "' (expected key=value[,key=value...])");
        }
        Pair p;
        p.key = pair.substr(0, eq);
        p.value = pair.substr(eq + 1);
        opts.pairs_.push_back(std::move(p));
    }
    return opts;
}

const WorkloadOptions::Pair *
WorkloadOptions::find(const std::string &key) const
{
    for (const Pair &p : pairs_) {
        if (p.key == key) {
            p.consumed = true;
            return &p;
        }
    }
    return nullptr;
}

std::size_t
WorkloadOptions::getSize(const std::string &key,
                         std::size_t fallback) const
{
    const Pair *p = find(key);
    if (!p)
        return fallback;
    char *rest = nullptr;
    unsigned long long v = std::strtoull(p->value.c_str(), &rest, 10);
    if (rest == p->value.c_str() || *rest != '\0') {
        RNUMA_FATAL("workload option ", key, "=", p->value,
                    " is not an unsigned integer");
    }
    return static_cast<std::size_t>(v);
}

double
WorkloadOptions::getDouble(const std::string &key,
                           double fallback) const
{
    const Pair *p = find(key);
    if (!p)
        return fallback;
    char *rest = nullptr;
    double v = std::strtod(p->value.c_str(), &rest);
    if (rest == p->value.c_str() || *rest != '\0') {
        RNUMA_FATAL("workload option ", key, "=", p->value,
                    " is not a number");
    }
    return v;
}

std::string
WorkloadOptions::getString(const std::string &key,
                           const std::string &fallback) const
{
    const Pair *p = find(key);
    return p ? p->value : fallback;
}

void
WorkloadOptions::finish(const std::string &workload) const
{
    for (const Pair &p : pairs_) {
        if (!p.consumed) {
            RNUMA_FATAL("workload '", workload,
                        "' does not take option '", p.key, "'");
        }
    }
}

//--------------------------------------------------------------------------
// The application table, preserved verbatim from the pre-registry
// interface: the registry's "app" entries are built over it, and the
// appNames()/appProblem()/appInput()/makeApp() shims keep reading it
// directly, so the streams stay bit-identical.
//--------------------------------------------------------------------------

namespace
{

struct Entry
{
    const char *name;
    const char *problem;
    const char *input;
    std::unique_ptr<VectorWorkload> (*make)(const Params &, double,
                                            std::uint64_t);
};

const Entry entries[] = {
    {"barnes", "Barnes-Hut N-body simulation", "16K particles",
     &makeBarnes},
    {"cholesky", "Blocked sparse Cholesky factorization", "tk16.O",
     &makeCholesky},
    {"em3d", "3-D electromagnetic wave propagation",
     "76800 nodes, 15% remote, 5 iters", &makeEm3d},
    {"fft", "Complex 1-D radix-sqrt(n) six-step FFT", "64K points",
     &makeFft},
    {"fmm", "Fast Multipole N-body simulation", "16K particles",
     &makeFmm},
    {"lu", "Blocked dense LU factorization",
     "512x512 matrix, 16x16 blocks", &makeLu},
    {"moldyn", "Molecular dynamics simulation",
     "2048 particles, 15 iters", &makeMoldyn},
    {"ocean", "Ocean simulation", "258x258 ocean", &makeOcean},
    {"radix", "Integer radix sort", "1M integers, radix 1024",
     &makeRadix},
    {"raytrace", "3-D scene rendering using ray-tracing", "car",
     &makeRaytrace},
};

const Entry &
lookup(const std::string &name)
{
    for (const Entry &e : entries)
        if (name == e.name)
            return e;
    RNUMA_FATAL("unknown application '", name,
                "' (see appNames() for the valid set)");
}

/** Wrap a no-option factory: any option string is an error. */
WorkloadMakeFn
noOptions(const std::string &id,
          std::function<std::unique_ptr<Workload>(
              const Params &, double, std::uint64_t)>
              make)
{
    return [id, make](const Params &p, double scale,
                      std::uint64_t seed, const std::string &options)
               -> std::unique_ptr<Workload> {
        WorkloadOptions::parse(options).finish(id);
        return make(p, scale, seed);
    };
}

} // namespace

//--------------------------------------------------------------------------
// WorkloadRegistry
//--------------------------------------------------------------------------

std::string
canonicalWorkloadId(const std::string &name)
{
    std::string s;
    s.reserve(name.size());
    for (char c : name)
        s.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    return s;
}

WorkloadRegistry::WorkloadRegistry()
{
    // The ten Table 3 applications, through the preserved table.
    for (const Entry &e : entries) {
        WorkloadSpec spec;
        spec.id = e.name;
        spec.displayName = e.name;
        spec.description = e.problem;
        spec.input = e.input;
        spec.category = "app";
        auto make = e.make;
        spec.make = noOptions(
            spec.id, [make](const Params &p, double scale,
                            std::uint64_t seed)
                         -> std::unique_ptr<Workload> {
                return make(p, scale, seed);
            });
        add(std::move(spec));
    }

    // The microbenchmark patterns, defaulted to the parameterizations
    // the micro/policies/eq3/scaling figures run, so selecting one by
    // name reproduces its figure row.
    struct MicroEntry
    {
        const char *id;
        const char *displayName;
        const char *description;
        const char *input;
        WorkloadMakeFn make;
    };
    const MicroEntry micros[] = {
        {"private-loop", "Private loop",
         "per-cpu private pages reused in a loop; the all-local "
         "floor every protocol should match",
         "pages=4, iters=20",
         [](const Params &p, double scale, std::uint64_t,
            const std::string &options) -> std::unique_ptr<Workload> {
             auto o = WorkloadOptions::parse(options);
             std::size_t pages = o.getSize("pages", 4);
             std::size_t iters =
                 o.getSize("iters", scaled(20, scale));
             o.finish("private-loop");
             return makePrivateLoop(p, pages, iters);
         }},
        {"hot-reuse", "Hot remote reuse",
         "every cpu sweeps a node-0 page set repeatedly; the "
         "relocation win case",
         "pages=120, sweeps=8",
         [](const Params &p, double scale, std::uint64_t,
            const std::string &options) -> std::unique_ptr<Workload> {
             auto o = WorkloadOptions::parse(options);
             std::size_t pages =
                 o.getSize("pages", scaled(120, scale, 2));
             std::size_t sweeps = o.getSize("sweeps", 8);
             o.finish("hot-reuse");
             return makeHotRemoteReuse(p, pages, sweeps);
         }},
        {"evict-storm", "Eviction storm",
         "reuse set overflows the page cache; relocation thrash "
         "unless the policy backs off",
         "pages=frames+80, sweeps=16",
         [](const Params &p, double scale, std::uint64_t,
            const std::string &options) -> std::unique_ptr<Workload> {
             auto o = WorkloadOptions::parse(options);
             std::size_t pages =
                 o.getSize("pages", p.pageCacheFrames() +
                                        scaled(80, scale, 40));
             std::size_t sweeps =
                 o.getSize("sweeps", scaled(16, scale, 8));
             o.finish("evict-storm");
             return makeEvictionStorm(p, pages, sweeps);
         }},
        {"producer-consumer", "Producer-consumer",
         "node-0 writes, every other node reads; the S-COMA "
         "replication win case",
         "pages=32, rounds=10",
         [](const Params &p, double scale, std::uint64_t,
            const std::string &options) -> std::unique_ptr<Workload> {
             auto o = WorkloadOptions::parse(options);
             std::size_t pages =
                 o.getSize("pages", scaled(32, scale, 1));
             std::size_t rounds = o.getSize("rounds", 10);
             o.finish("producer-consumer");
             return makeProducerConsumer(p, pages, rounds);
         }},
        {"rw-sharing", "Read-write sharing",
         "fine-grain read-write sharing of one page; the CC-NUMA "
         "win case",
         "rounds=400",
         [](const Params &p, double scale, std::uint64_t,
            const std::string &options) -> std::unique_ptr<Workload> {
             auto o = WorkloadOptions::parse(options);
             std::size_t rounds =
                 o.getSize("rounds", scaled(400, scale, 8));
             o.finish("rw-sharing");
             return makeRwSharing(p, rounds);
         }},
        {"adversary", "Adversary",
         "touches each remote page exactly threshold+1 times; the "
         "Equation 3 worst case",
         "pages=24, touches=threshold+1",
         [](const Params &p, double, std::uint64_t,
            const std::string &options) -> std::unique_ptr<Workload> {
             auto o = WorkloadOptions::parse(options);
             std::size_t pages = o.getSize("pages", 24);
             std::size_t touches = o.getSize(
                 "touches", p.relocationThreshold + 1);
             o.finish("adversary");
             return makeAdversary(p, pages, touches);
         }},
        {"scaling-shift", "Scaling shift",
         "neighbor-shifted page sweeps that scale with the node "
         "count; the topology-sweep generator",
         "pages=4/node, sweeps=4",
         [](const Params &p, double scale, std::uint64_t,
            const std::string &options) -> std::unique_ptr<Workload> {
             auto o = WorkloadOptions::parse(options);
             std::size_t pages =
                 o.getSize("pages", scaled(4, scale, 1));
             std::size_t sweeps =
                 o.getSize("sweeps", scaled(4, scale, 2));
             o.finish("scaling-shift");
             return makeScalingShift(p, pages, sweeps);
         }},
    };
    for (const MicroEntry &m : micros) {
        WorkloadSpec spec;
        spec.id = m.id;
        spec.displayName = m.displayName;
        spec.description = m.description;
        spec.input = m.input;
        spec.category = "micro";
        spec.make = m.make;
        add(std::move(spec));
    }

    // The commercial-serving generators (Section 1's motivating
    // traffic): Zipf-skewed page service, diurnal phase rotation,
    // and multi-tenant interleaving, plus the database-scan demo
    // promoted from examples/.
    WorkloadSpec zipf;
    zipf.id = "zipf-serve";
    zipf.displayName = "Zipf serving";
    zipf.description =
        "Zipf-skewed page service: popularity rank r is hit with "
        "weight 1/r^theta; parameterized read/write mix";
    zipf.input = "pages=480, theta=0.8, write=0.1, requests=2400";
    zipf.category = "serving";
    zipf.make = [](const Params &p, double scale, std::uint64_t seed,
                   const std::string &options) {
        return std::unique_ptr<Workload>(
            makeZipfServe(p, scale, seed, options));
    };
    add(std::move(zipf));

    WorkloadSpec phase;
    phase.id = "phase-shift";
    phase.displayName = "Phase shift";
    phase.description =
        "working set rotates on a diurnal schedule; stresses "
        "relocation-vs-eviction churn across phase boundaries";
    phase.input = "pages=3x frames, phases=6, sweeps=4";
    phase.category = "serving";
    phase.make = [](const Params &p, double scale, std::uint64_t seed,
                    const std::string &options) {
        return std::unique_ptr<Workload>(
            makePhaseShift(p, scale, seed, options));
    };
    add(std::move(phase));

    WorkloadSpec ten;
    ten.id = "tenants";
    ten.displayName = "Multi-tenant";
    ten.description =
        "K independent tenant address spaces interleaved per node; "
        "stresses page-cache fairness under competing hot sets";
    ten.input = "tenants=4, pages=96/tenant, rounds=6";
    ten.category = "serving";
    ten.make = [](const Params &p, double scale, std::uint64_t seed,
                  const std::string &options) {
        return std::unique_ptr<Workload>(
            makeTenants(p, scale, seed, options));
    };
    add(std::move(ten));

    WorkloadSpec db;
    db.id = "database-scan";
    db.displayName = "Database scan";
    db.description =
        "transaction mix over a shared buffer pool with a hot "
        "subset, per-cpu scratch, and a lock page";
    db.input = "transactions=48, pool=160 pages, hot=24";
    db.category = "serving";
    db.make = [](const Params &p, double scale, std::uint64_t seed,
                 const std::string &options) {
        return std::unique_ptr<Workload>(
            makeDatabaseScan(p, scale, seed, options));
    };
    add(std::move(db));
}

WorkloadRegistry &
WorkloadRegistry::global()
{
    static WorkloadRegistry reg;
    return reg;
}

const WorkloadSpec &
WorkloadRegistry::add(WorkloadSpec spec)
{
    RNUMA_ASSERT(spec.valid(),
                 "workload spec needs an id and a factory");
    RNUMA_ASSERT(spec.id == canonicalWorkloadId(spec.id),
                 "workload id '", spec.id,
                 "' is not canonical (lowercase, stable spelling)");
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (findLocked(spec.id)) {
        RNUMA_FATAL("workload '", spec.id,
                    "' is already registered");
    }
    specs_.push_back(std::make_unique<WorkloadSpec>(std::move(spec)));
    return *specs_.back();
}

const WorkloadSpec *
WorkloadRegistry::findLocked(const std::string &name) const
{
    std::string id = canonicalWorkloadId(name);
    for (const auto &s : specs_) {
        if (s->id == id || canonicalWorkloadId(s->displayName) == id)
            return s.get();
    }
    return nullptr;
}

const WorkloadSpec *
WorkloadRegistry::find(const std::string &name) const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return findLocked(name);
}

const WorkloadSpec &
WorkloadRegistry::at(const std::string &name) const
{
    const WorkloadSpec *s = find(name);
    if (!s) {
        RNUMA_FATAL("unknown workload '", name,
                    "' (see rnuma_sweep --list-workloads)");
    }
    return *s;
}

std::vector<const WorkloadSpec *>
WorkloadRegistry::all() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    std::vector<const WorkloadSpec *> out;
    out.reserve(specs_.size());
    for (const auto &s : specs_)
        out.push_back(s.get());
    return out;
}

std::size_t
WorkloadRegistry::size() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return specs_.size();
}

const WorkloadSpec &
workloadSpec(const std::string &name)
{
    return WorkloadRegistry::global().at(name);
}

const WorkloadSpec *
findWorkloadSpec(const std::string &name)
{
    return WorkloadRegistry::global().find(name);
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const Params &p, double scale,
             std::uint64_t seed, const std::string &options)
{
    const WorkloadSpec &spec = workloadSpec(name);
    std::unique_ptr<Workload> wl = spec.make(p, scale, seed, options);
    RNUMA_ASSERT(wl != nullptr, "workload '", spec.id,
                 "' factory returned null");
    // Every generator clamps its structure (see scaled()) so that it
    // stays viable at any positive scale; a workload with zero loads
    // and stores would silently turn every figure cell into a no-op.
    if (auto *vec = dynamic_cast<const VectorWorkload *>(wl.get())) {
        RNUMA_ASSERT(vec->memRefCount() > 0, "workload '", spec.id,
                     "' emitted no memory references at scale ",
                     scale);
    }
    return wl;
}

//--------------------------------------------------------------------------
// Pre-registry application shims.
//--------------------------------------------------------------------------

const std::vector<std::string> &
appNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const Entry &e : entries)
            v.emplace_back(e.name);
        return v;
    }();
    return names;
}

const char *
appProblem(const std::string &name)
{
    return lookup(name).problem;
}

const char *
appInput(const std::string &name)
{
    return lookup(name).input;
}

std::unique_ptr<VectorWorkload>
makeApp(const std::string &name, const Params &p, double scale,
        std::uint64_t seed)
{
    auto wl = lookup(name).make(p, scale, seed);
    // Every generator clamps its structure (see scaled()) so that it
    // stays viable at any positive scale; a workload with zero loads
    // and stores would silently turn every figure cell into a no-op.
    RNUMA_ASSERT(wl->memRefCount() > 0, "application '", name,
                 "' emitted no memory references at scale ", scale);
    return wl;
}

} // namespace rnuma
