#include "workload/address_space.hh"

#include "common/logging.hh"

namespace rnuma
{

AddressSpace::AddressSpace(std::size_t page_size)
    : pageBytes(page_size)
{
    RNUMA_ASSERT(pageBytes > 0 && (pageBytes & (pageBytes - 1)) == 0,
                 "page size must be a power of two");
}

Addr
AddressSpace::allocBytes(std::size_t bytes)
{
    Addr base = next;
    std::size_t pages = (bytes + pageBytes - 1) / pageBytes;
    if (pages == 0)
        pages = 1;
    next += pages * pageBytes;
    return base;
}

Addr
AddressSpace::allocPages(std::size_t n)
{
    return allocBytes(n * pageBytes);
}

} // namespace rnuma
