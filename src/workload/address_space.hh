/**
 * @file
 * A trivial global-address-space allocator for workload generators:
 * page-aligned bump allocation. Homes are assigned later by
 * first-touch, so the allocator only hands out disjoint ranges.
 */

#ifndef RNUMA_WORKLOAD_ADDRESS_SPACE_HH
#define RNUMA_WORKLOAD_ADDRESS_SPACE_HH

#include "common/types.hh"

namespace rnuma
{

/** Page-aligned bump allocator over the global address space. */
class AddressSpace
{
  public:
    explicit AddressSpace(std::size_t page_size);

    /** Allocate @p bytes, rounded up to whole pages. */
    Addr allocBytes(std::size_t bytes);

    /** Allocate @p n pages. */
    Addr allocPages(std::size_t n);

    /** Bytes handed out so far (page-rounded). */
    std::size_t bytesAllocated() const { return next; }

    std::size_t pageSize() const { return pageBytes; }

  private:
    std::size_t pageBytes;
    Addr next = 0;
};

} // namespace rnuma

#endif // RNUMA_WORKLOAD_ADDRESS_SPACE_HH
