#include "workload/workload.hh"

#include "common/logging.hh"

namespace rnuma
{

const Ref VectorWorkload::endRef = Ref::end();

VectorWorkload::VectorWorkload(std::string name, std::size_t ncpus)
    : name_(std::move(name)), streams(ncpus), cursor(ncpus, 0)
{
    RNUMA_ASSERT(ncpus >= 1, "workload needs at least one CPU");
}

const Ref &
VectorWorkload::next(CpuId cpu)
{
    RNUMA_ASSERT(cpu < streams.size(), "bad cpu ", cpu);
    auto &s = streams[cpu];
    std::size_t &c = cursor[cpu];
    if (c >= s.size())
        return endRef;
    return s[c++];
}

const Ref &
VectorWorkload::peek(CpuId cpu)
{
    RNUMA_ASSERT(cpu < streams.size(), "bad cpu ", cpu);
    const auto &s = streams[cpu];
    std::size_t c = cursor[cpu];
    if (c >= s.size())
        return endRef;
    return s[c];
}

void
VectorWorkload::reset()
{
    for (auto &c : cursor)
        c = 0;
}

void
VectorWorkload::push(CpuId cpu, Ref r)
{
    RNUMA_ASSERT(cpu < streams.size(), "bad cpu ", cpu);
    RNUMA_ASSERT(!sealed, "cannot push after seal()");
    if (r.kind == RefKind::Mem)
        mem_refs++;
    if (r.think > max_think)
        max_think = r.think;
    streams[cpu].push_back(r);
}

void
VectorWorkload::pushBarrierAll()
{
    for (CpuId c = 0; c < streams.size(); ++c)
        push(c, Ref::barrier());
}

void
VectorWorkload::seal()
{
    RNUMA_ASSERT(!sealed, "seal() called twice");
    for (auto &s : streams)
        s.push_back(Ref::end());
    sealed = true;
}

std::size_t
VectorWorkload::size(CpuId cpu) const
{
    RNUMA_ASSERT(cpu < streams.size(), "bad cpu ", cpu);
    return streams[cpu].size();
}

const Ref &
VectorWorkload::at(CpuId cpu, std::size_t i) const
{
    RNUMA_ASSERT(cpu < streams.size() && i < streams[cpu].size(),
                 "bad index");
    return streams[cpu][i];
}

std::size_t
VectorWorkload::totalRefs() const
{
    std::size_t n = 0;
    for (const auto &s : streams)
        n += s.size();
    return n;
}

SnapshotWorkload::SnapshotWorkload(
    std::shared_ptr<const VectorWorkload> snap)
    : snap_(std::move(snap))
{
    RNUMA_ASSERT(snap_, "snapshot view over a null workload");
    RNUMA_ASSERT(snap_->sealed,
                 "snapshot view over an unsealed workload '",
                 snap_->name_, "'");
    streams_.reserve(snap_->streams.size());
    for (const auto &s : snap_->streams)
        streams_.push_back(Stream{s.data(), s.size(), 0});
}

std::size_t
SnapshotWorkload::numCpus() const
{
    return streams_.size();
}

const Ref &
SnapshotWorkload::next(CpuId cpu)
{
    RNUMA_ASSERT(cpu < streams_.size(), "bad cpu ", cpu);
    Stream &s = streams_[cpu];
    if (s.cursor >= s.size)
        return VectorWorkload::endRef;
    return s.data[s.cursor++];
}

const Ref &
SnapshotWorkload::peek(CpuId cpu)
{
    RNUMA_ASSERT(cpu < streams_.size(), "bad cpu ", cpu);
    const Stream &s = streams_[cpu];
    if (s.cursor >= s.size)
        return VectorWorkload::endRef;
    return s.data[s.cursor];
}

void
SnapshotWorkload::reset()
{
    for (Stream &s : streams_)
        s.cursor = 0;
}

const std::string &
SnapshotWorkload::name() const
{
    return snap_->name_;
}

Tick
SnapshotWorkload::maxThink() const
{
    return snap_->maxThink();
}

} // namespace rnuma
