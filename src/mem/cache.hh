/**
 * @file
 * A generic set-associative, write-back cache model with MOESI line
 * states. Instantiated as the per-processor L1 data caches and (via
 * rad/BlockCache) as the RAD's remote block cache. Supports an
 * "infinite" mode used for the Figure 6 normalization baseline.
 */

#ifndef RNUMA_MEM_CACHE_HH
#define RNUMA_MEM_CACHE_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace rnuma
{

/**
 * MOESI line states (the node-internal snoopy protocol is modeled
 * after the Sparc MBus protocol, per Section 4 of the paper).
 */
enum class CacheState : std::uint8_t
{
    Invalid,
    Shared,    ///< clean, possibly other copies
    Exclusive, ///< clean, sole copy
    Owned,     ///< dirty, responsible for supplying; other copies exist
    Modified   ///< dirty, sole copy
};

/** True for states that hold dirty data (Owned or Modified). */
bool isDirty(CacheState s);

/** True for any valid state. */
bool isValid(CacheState s);

/** One cache line: block address, coherence state, LRU stamp. */
struct CacheLine
{
    Addr addr = invalidAddr;
    CacheState state = CacheState::Invalid;
    std::uint64_t lru = 0;

    bool valid() const { return state != CacheState::Invalid; }
};

/**
 * The cache proper. All addresses passed in are rounded down to block
 * boundaries internally, so callers may pass raw addresses.
 */
class Cache
{
  public:
    /**
     * @param size_bytes  total capacity (ignored when infinite)
     * @param block_bytes coherence block size
     * @param assoc       ways per set (1 = direct-mapped)
     * @param infinite    unbounded capacity, no evictions ever
     */
    Cache(std::size_t size_bytes, std::size_t block_bytes,
          std::size_t assoc, bool infinite = false);

    /** Block-align an address. */
    Addr blockAlign(Addr a) const { return a & ~(blockBytes - 1); }

    /**
     * Probe for a block. Returns the line (without updating LRU) or
     * nullptr on miss.
     */
    CacheLine *find(Addr a);
    const CacheLine *find(Addr a) const;

    /** Mark a line most-recently used. */
    void touch(CacheLine *line);

    /** Description of a line evicted by allocate(). */
    struct Victim
    {
        bool valid = false;
        Addr addr = invalidAddr;
        CacheState state = CacheState::Invalid;
    };

    /**
     * Allocate a line for a block (which must not currently be
     * present), evicting the LRU way if the set is full. The caller
     * must handle any writeback implied by the victim's dirty state.
     * The returned line is valid with state Invalid; the caller sets
     * the state.
     */
    CacheLine *allocate(Addr a, Victim &victim);

    /**
     * The victim allocate(a, ...) would evict, without mutating
     * anything: same single-pass way selection, no LRU stamping.
     * Returns an invalid Victim when a free way exists (or in
     * infinite mode). The parallel engine's confinement check uses
     * this to see whether a fill would write back a dirty block
     * homed outside the partition.
     */
    Victim victimProbe(Addr a) const;

    /**
     * Invalidate a block if present; returns its prior state
     * (Invalid when absent).
     */
    CacheState invalidate(Addr a);

    /** Downgrade a block to Shared if present (snoop read). */
    void downgrade(Addr a);

    /** Visit every valid line (test/diagnostic use). */
    void forEachValid(
        const std::function<void(const CacheLine &)> &fn) const;

    /** Number of currently valid lines. */
    std::size_t validCount() const;

    std::size_t numSets() const { return sets; }
    std::size_t associativity() const { return assoc; }
    std::size_t blockSize() const { return blockBytes; }
    bool infinite() const { return unbounded; }

  private:
    std::size_t blockBytes;
    std::size_t assoc;
    std::size_t sets;
    bool unbounded;
    /**
     * find() runs tens of millions of times per figure (every L1
     * probe, snoop, and invalidation lands here), so the set index
     * is computed with a shift and mask instead of the division and
     * modulo the naive form needs. blockShift always applies (block
     * sizes are asserted powers of two); setMask applies when the
     * set count is also a power of two — true for every configured
     * cache in the paper's sweeps — with a modulo fallback for
     * exotic geometries.
     */
    unsigned blockShift = 0;
    std::size_t setMask = 0;
    bool setsArePow2 = false;
    std::uint64_t lruClock = 0;

    /** Set-indexed storage (finite mode): sets * assoc lines. */
    std::vector<CacheLine> lines;
    /** Map storage (infinite mode). */
    std::unordered_map<Addr, CacheLine> map;

    std::size_t setIndex(Addr a) const;
};

} // namespace rnuma

#endif // RNUMA_MEM_CACHE_HH
