/**
 * @file
 * Interleaved main-memory model. Each node's memory is divided into
 * banks interleaved at block granularity; concurrent accesses to the
 * same bank serialize, adding contention on top of the fixed DRAM
 * latency from Table 2.
 */

#ifndef RNUMA_MEM_MEMORY_HH
#define RNUMA_MEM_MEMORY_HH

#include <vector>

#include "common/types.hh"
#include "mem/bus.hh"

namespace rnuma
{

/** One node's interleaved DRAM. */
class Memory
{
  public:
    /**
     * @param dram_latency access latency in cycles (Table 2: 56)
     * @param block_bytes  interleave granularity
     * @param banks        number of independent banks
     */
    Memory(Tick dram_latency, std::size_t block_bytes,
           std::size_t banks = 4);

    /**
     * Access the bank holding @p addr starting at @p now; returns the
     * completion time (grant + DRAM latency).
     */
    Tick access(Tick now, Addr addr);

    /** Aggregate queueing delay across banks. */
    Tick waited() const;

    std::size_t numBanks() const { return banks_.size(); }

  private:
    Tick latency;
    std::size_t blockBytes;
    std::vector<Resource> banks_;
};

} // namespace rnuma

#endif // RNUMA_MEM_MEMORY_HH
