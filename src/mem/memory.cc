#include "mem/memory.hh"

#include "common/logging.hh"

namespace rnuma
{

Memory::Memory(Tick dram_latency, std::size_t block_bytes,
               std::size_t banks)
    : latency(dram_latency), blockBytes(block_bytes)
{
    RNUMA_ASSERT(banks >= 1, "memory needs at least one bank");
    // A bank is busy for the access latency itself; back-to-back
    // accesses to different banks overlap fully.
    banks_.reserve(banks);
    for (std::size_t i = 0; i < banks; ++i)
        banks_.emplace_back(latency);
}

Tick
Memory::access(Tick now, Addr addr)
{
    std::size_t bank =
        static_cast<std::size_t>((addr / blockBytes) % banks_.size());
    Tick grant = banks_[bank].acquire(now);
    return grant + latency;
}

Tick
Memory::waited() const
{
    Tick total = 0;
    for (const auto &b : banks_)
        total += b.waited();
    return total;
}

} // namespace rnuma
