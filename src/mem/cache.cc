#include "mem/cache.hh"

#include "common/logging.hh"

namespace rnuma
{

bool
isDirty(CacheState s)
{
    return s == CacheState::Owned || s == CacheState::Modified;
}

bool
isValid(CacheState s)
{
    return s != CacheState::Invalid;
}

Cache::Cache(std::size_t size_bytes, std::size_t block_bytes,
             std::size_t assoc_, bool infinite)
    : blockBytes(block_bytes), assoc(assoc_), unbounded(infinite)
{
    RNUMA_ASSERT(block_bytes > 0 && (block_bytes & (block_bytes - 1)) == 0,
                 "block size must be a power of two");
    while ((std::size_t{1} << blockShift) < block_bytes)
        ++blockShift;
    if (unbounded) {
        sets = 1;
        return;
    }
    RNUMA_ASSERT(assoc >= 1, "associativity must be >= 1");
    RNUMA_ASSERT(size_bytes % (block_bytes * assoc) == 0,
                 "cache size ", size_bytes,
                 " not divisible by block*assoc");
    sets = size_bytes / (block_bytes * assoc);
    RNUMA_ASSERT(sets >= 1, "cache must have at least one set");
    setsArePow2 = (sets & (sets - 1)) == 0;
    setMask = sets - 1;
    lines.resize(sets * assoc);
}

std::size_t
Cache::setIndex(Addr a) const
{
    const Addr block = a >> blockShift;
    if (setsArePow2)
        return static_cast<std::size_t>(block) & setMask;
    return static_cast<std::size_t>(block % sets);
}

CacheLine *
Cache::find(Addr a)
{
    a = blockAlign(a);
    if (unbounded) {
        auto it = map.find(a);
        return it == map.end() ? nullptr : &it->second;
    }
    std::size_t base = setIndex(a) * assoc;
    for (std::size_t w = 0; w < assoc; ++w) {
        CacheLine &line = lines[base + w];
        // Tag compare first: it almost always fails, and is cheaper
        // than the state load on lines that do not match.
        if (line.addr == a && line.valid())
            return &line;
    }
    return nullptr;
}

const CacheLine *
Cache::find(Addr a) const
{
    return const_cast<Cache *>(this)->find(a);
}

void
Cache::touch(CacheLine *line)
{
    line->lru = ++lruClock;
}

CacheLine *
Cache::allocate(Addr a, Victim &victim)
{
    a = blockAlign(a);
    victim = Victim{};
    if (unbounded) {
        RNUMA_ASSERT(find(a) == nullptr,
                     "allocate of already-present block ", a);
        CacheLine &line = map[a];
        line.addr = a;
        line.state = CacheState::Invalid;
        line.lru = ++lruClock;
        return &line;
    }
    // One pass over the set both picks the victim and enforces the
    // not-already-present contract (a second find() would walk the
    // same ways again).
    std::size_t base = setIndex(a) * assoc;
    CacheLine *chosen = nullptr;
    for (std::size_t w = 0; w < assoc; ++w) {
        CacheLine &line = lines[base + w];
        if (!line.valid()) {
            if (!chosen || chosen->valid())
                chosen = &line;
            continue;
        }
        RNUMA_ASSERT(line.addr != a,
                     "allocate of already-present block ", a);
        if (!chosen || (chosen->valid() && line.lru < chosen->lru))
            chosen = &line;
    }
    if (chosen->valid()) {
        victim.valid = true;
        victim.addr = chosen->addr;
        victim.state = chosen->state;
    }
    chosen->addr = a;
    chosen->state = CacheState::Invalid;
    chosen->lru = ++lruClock;
    return chosen;
}

Cache::Victim
Cache::victimProbe(Addr a) const
{
    Victim victim;
    if (unbounded)
        return victim;
    a = blockAlign(a);
    // Mirror allocate()'s selection exactly: first invalid way wins,
    // else the lowest-lru valid way.
    std::size_t base = setIndex(a) * assoc;
    const CacheLine *chosen = nullptr;
    for (std::size_t w = 0; w < assoc; ++w) {
        const CacheLine &line = lines[base + w];
        if (!line.valid()) {
            if (!chosen || chosen->valid())
                chosen = &line;
            continue;
        }
        if (!chosen || (chosen->valid() && line.lru < chosen->lru))
            chosen = &line;
    }
    if (chosen && chosen->valid()) {
        victim.valid = true;
        victim.addr = chosen->addr;
        victim.state = chosen->state;
    }
    return victim;
}

CacheState
Cache::invalidate(Addr a)
{
    CacheLine *line = find(a);
    if (!line)
        return CacheState::Invalid;
    CacheState prior = line->state;
    if (unbounded) {
        map.erase(blockAlign(a));
        return prior;
    }
    line->state = CacheState::Invalid;
    line->addr = invalidAddr;
    return prior;
}

void
Cache::downgrade(Addr a)
{
    CacheLine *line = find(a);
    if (!line)
        return;
    if (line->state == CacheState::Modified)
        line->state = CacheState::Owned;
    else if (line->state == CacheState::Exclusive)
        line->state = CacheState::Shared;
}

void
Cache::forEachValid(
    const std::function<void(const CacheLine &)> &fn) const
{
    if (unbounded) {
        for (const auto &kv : map)
            if (kv.second.valid())
                fn(kv.second);
        return;
    }
    for (const auto &line : lines)
        if (line.valid())
            fn(line);
}

std::size_t
Cache::validCount() const
{
    std::size_t n = 0;
    forEachValid([&](const CacheLine &) { ++n; });
    return n;
}

} // namespace rnuma
