/**
 * @file
 * A split-transaction memory-bus model. The bus is a serially
 * occupied resource: each transaction holds it for a fixed occupancy,
 * and later requesters queue. This captures the contention the paper
 * models at the 100 MHz MBus without simulating individual bus
 * phases.
 *
 * This header is intentionally header-only: Resource::acquire() sits
 * on the access hot path (every L1 miss arbitrates for the node bus,
 * and the network interfaces reuse Resource), and the handful of
 * arithmetic statements involved inline away entirely. There is no
 * bus.cc; out-of-line logic that grows beyond this model (e.g. pipelined
 * arbitration or priority classes) should bring one back.
 */

#ifndef RNUMA_MEM_BUS_HH
#define RNUMA_MEM_BUS_HH

#include "common/types.hh"

namespace rnuma
{

/** A FIFO-arbitrated, fixed-occupancy shared resource. */
class Resource
{
  public:
    explicit Resource(Tick occupancy_per_use)
        : occupancy(occupancy_per_use)
    {}

    /**
     * Acquire the resource at time @p now. Returns the grant time
     * (>= now); the resource is busy until grant + occupancy.
     */
    Tick
    acquire(Tick now)
    {
        Tick grant = now > nextFree ? now : nextFree;
        waitTotal += grant - now;
        nextFree = grant + occupancy;
        uses++;
        return grant;
    }

    /** Total queueing delay experienced by all users. */
    Tick waited() const { return waitTotal; }

    /** Number of acquisitions. */
    std::uint64_t useCount() const { return uses; }

    /** Time at which the resource next becomes free. */
    Tick freeAt() const { return nextFree; }

    /** Per-use occupancy. */
    Tick occupancyPerUse() const { return occupancy; }

  private:
    Tick occupancy;
    Tick nextFree = 0;
    Tick waitTotal = 0;
    std::uint64_t uses = 0;
};

/** The per-node snoopy memory bus. */
class Bus
{
  public:
    explicit Bus(Tick occupancy) : res(occupancy) {}

    /**
     * Arbitrate for the bus at @p now; returns the grant time. The
     * caller adds its own transfer latency on top.
     */
    Tick acquire(Tick now) { return res.acquire(now); }

    Tick waited() const { return res.waited(); }
    std::uint64_t transactions() const { return res.useCount(); }

  private:
    Resource res;
};

} // namespace rnuma

#endif // RNUMA_MEM_BUS_HH
