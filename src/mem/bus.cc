#include "mem/bus.hh"

// Bus and Resource are header-only; this translation unit exists so
// the build has a home for future out-of-line bus logic.
