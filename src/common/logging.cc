#include "common/logging.hh"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace rnuma
{
namespace detail
{

namespace
{

/**
 * Throwing (instead of aborting) lets the test suite assert that
 * invariant violations are detected; production binaries see the same
 * message and terminate either way.
 */
bool throwOnPanic = std::getenv("RNUMA_THROW_ON_PANIC") != nullptr;

/** Per-thread override installed by ScopedPanicToException. */
thread_local bool throwInThread = false;

} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::string full = std::string("panic: ") + msg + " @ " + file + ":" +
        std::to_string(line);
    if (throwOnPanic || throwInThread)
        throw std::logic_error(full);
    std::cerr << full << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::string full = std::string("fatal: ") + msg + " @ " + file + ":" +
        std::to_string(line);
    if (throwOnPanic || throwInThread)
        throw std::runtime_error(full);
    std::cerr << full << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cout << "info: " << msg << std::endl;
}

} // namespace detail

ScopedPanicToException::ScopedPanicToException()
    : prev_(detail::throwInThread)
{
    detail::throwInThread = true;
}

ScopedPanicToException::~ScopedPanicToException()
{
    detail::throwInThread = prev_;
}

} // namespace rnuma
