/**
 * @file
 * Deterministic pseudo-random number generation for the workload
 * generators. The simulator itself never consumes randomness; every
 * run is reproducible from the workload seed alone.
 */

#ifndef RNUMA_COMMON_RNG_HH
#define RNUMA_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace rnuma
{

/**
 * An xorshift64* generator: tiny, fast, and deterministic across
 * platforms (unlike std::default_random_engine distributions).
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dULL;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability p. */
    bool chance(double p) { return uniform() < p; }

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(below(i));
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t state;
};

} // namespace rnuma

#endif // RNUMA_COMMON_RNG_HH
