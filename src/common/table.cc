#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace rnuma
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    RNUMA_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    RNUMA_ASSERT(cells.size() == headers_.size(),
                 "row width ", cells.size(), " != header width ",
                 headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::pct(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << fraction * 100.0
       << "%";
    return os.str();
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << "\n";
    };

    emit(headers_);
    std::size_t rule = 0;
    for (std::size_t w : widths)
        rule += w + 2;
    os << std::string(rule, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
}

} // namespace rnuma
