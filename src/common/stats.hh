/**
 * @file
 * Statistics collected during a simulation run. One RunStats instance
 * aggregates machine-wide counters plus the per-page bookkeeping
 * needed to reproduce Figure 5 and Table 4 of the paper.
 */

#ifndef RNUMA_COMMON_STATS_HH
#define RNUMA_COMMON_STATS_HH

#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace rnuma
{

/**
 * Per-remote-page bookkeeping (aggregated over all nodes).
 *
 * A page is classified as read-write shared (Table 4, column 2) when
 * non-home nodes have both read and written it.
 */
struct PageStats
{
    /** Block refetches (capacity/conflict remote misses) on the page. */
    std::uint64_t refetches = 0;
    /** All remote fetches (cold + coherence + refetch) on the page. */
    std::uint64_t remoteFetches = 0;
    /** Some non-home node read the page. */
    bool remoteRead = false;
    /** Some non-home node wrote the page. */
    bool remoteWrite = false;

    bool readWriteShared() const { return remoteRead && remoteWrite; }
};

/**
 * Per-kind interconnect message counters, indexed by MsgKind. The
 * value-semantic normalization of the NetworkModel accessors, carried
 * in RunStats and the JSON sinks (v5 schema).
 */
struct NetworkStats
{
    std::uint64_t messages[numMsgKinds] = {};

    std::uint64_t count(MsgKind kind) const
    {
        return messages[static_cast<std::size_t>(kind)];
    }

    std::uint64_t totalMessages() const
    {
        std::uint64_t total = 0;
        for (std::uint64_t m : messages)
            total += m;
        return total;
    }
};

/** Classification of a remote block fetch (see DESIGN.md section 7). */
enum class MissKind : std::uint8_t
{
    Cold,      ///< first fetch of this block by this node
    Coherence, ///< the node lost its copy to an invalidation
    Refetch    ///< capacity/conflict: the directory thought it had it
};

/** All counters for one simulation run. */
struct RunStats
{
    /** Simulated execution time (max CPU completion tick). */
    Tick ticks = 0;

    /**
     * Discrete events processed by the scheduler during the run (the
     * denominator of the events-per-second throughput the perf gate
     * tracks). Deterministic, so it participates in bit-identity.
     */
    std::uint64_t events = 0;

    //--- Reference-stream counters --------------------------------------
    std::uint64_t refs = 0;        ///< memory references issued
    std::uint64_t l1Hits = 0;      ///< satisfied by the local L1
    std::uint64_t l1Misses = 0;    ///< required a bus transaction
    std::uint64_t upgrades = 0;    ///< write permission upgrades
    std::uint64_t barriers = 0;    ///< barrier episodes completed

    //--- Node-level service points ---------------------------------------
    std::uint64_t localFills = 0;      ///< fills from home-node memory
    std::uint64_t nodeTransfers = 0;   ///< on-node cache-to-cache fills
    std::uint64_t blockCacheHits = 0;  ///< fills from the block cache
    std::uint64_t pageCacheHits = 0;   ///< fine-grain tag hits (S-COMA)

    //--- Remote traffic ----------------------------------------------------
    std::uint64_t remoteFetches = 0;    ///< block fetches sent home
    std::uint64_t refetches = 0;        ///< ... classified Refetch
    std::uint64_t coherenceMisses = 0;  ///< ... classified Coherence
    std::uint64_t coldMisses = 0;       ///< ... classified Cold
    std::uint64_t invalidationsSent = 0;///< directory invalidations
    std::uint64_t forwards = 0;         ///< three-hop dirty forwards
    std::uint64_t writebacks = 0;       ///< voluntary block writebacks
    std::uint64_t flushedBlocks = 0;    ///< blocks flushed by page ops

    //--- OS / page events ----------------------------------------------------
    std::uint64_t pageFaults = 0;        ///< first-touch mapping faults
    std::uint64_t scomaAllocations = 0;  ///< page-cache frame allocations
    std::uint64_t scomaReplacements = 0; ///< page-cache victimizations
    std::uint64_t relocations = 0;       ///< R-NUMA CC->S-COMA moves
    /**
     * Residency-utility observability (R-NUMA evictions only): how
     * many victimized residencies earned zero page-cache hits — the
     * pure ping-pong relocations the feedback policies exist to
     * suppress — and the total hits evicted residencies served.
     */
    std::uint64_t evictionsZeroHit = 0;  ///< evictions that served 0 hits
    std::uint64_t evictedPageHits = 0;   ///< hits served by evicted pages

    //--- Time decomposition ---------------------------------------------------
    Tick busWait = 0;   ///< cycles queued for the node buses
    Tick niWait = 0;    ///< cycles queued at network interfaces
    Tick osCycles = 0;  ///< cycles spent in page faults/relocations
    Tick stallCycles = 0; ///< total CPU memory-stall cycles

    //--- Interconnect & directory footprint -----------------------------
    /** Per-kind message counts from the network model. */
    NetworkStats net;
    /** Live directory entries at end of run. */
    std::uint64_t dirEntries = 0;
    /**
     * Modeled directory storage in bits: live entries times the
     * per-entry cost of the configured sharer-set format (O(nodes)
     * for full-map, O(sharers) for the sparse formats).
     */
    std::uint64_t dirBits = 0;

    /** Per-page statistics keyed by page number (addr / pageSize). */
    std::unordered_map<Addr, PageStats> pages;

    /** Record a remote fetch classification against a page. */
    void recordFetch(Addr page, MissKind kind, bool write, bool remote);

    /**
     * Record write-sharing traffic on a page that is tracked as
     * remote by other nodes: a write (by the home or by a holder
     * upgrading in place) that invalidated remote copies. Table 4
     * classifies a page read-write when it incurs both read and
     * write coherence traffic.
     */
    void markSharedWrite(Addr page);

    /** Total remote pages that were ever fetched. */
    std::size_t remotePageCount() const;

    /**
     * Refetch counts per page, sorted descending: the raw series for
     * the Figure 5 cumulative-distribution plot.
     */
    std::vector<std::uint64_t> refetchDistribution() const;

    /** Fraction of refetches on read-write shared pages (Table 4). */
    double rwPageRefetchFraction() const;

    /**
     * Fold one partition shard into this record: counters and waits
     * sum, ticks takes the max, the per-page maps merge key-wise
     * (counts sum, read/write flags OR). Machine-global fields the
     * shards never touch (events, net, dirEntries, dirBits) are left
     * for the caller to fill. The parallel engine calls this in
     * partition-index order, so the reduction is deterministic.
     */
    void mergeFrom(const RunStats &shard);

    /** Human-readable dump of the headline counters. */
    void print(std::ostream &os) const;
};

/**
 * Field-by-field equality, including the per-page map. The sweep
 * driver uses this to assert that parallel cell execution is
 * bit-identical to serial execution.
 */
bool operator==(const PageStats &a, const PageStats &b);
bool operator==(const NetworkStats &a, const NetworkStats &b);
bool operator==(const RunStats &a, const RunStats &b);
inline bool operator!=(const NetworkStats &a, const NetworkStats &b)
{
    return !(a == b);
}
inline bool operator!=(const PageStats &a, const PageStats &b)
{
    return !(a == b);
}
inline bool operator!=(const RunStats &a, const RunStats &b)
{
    return !(a == b);
}

} // namespace rnuma

#endif // RNUMA_COMMON_STATS_HH
