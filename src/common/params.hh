/**
 * @file
 * System parameters reproducing Table 2 and Section 4 of Falsafi &
 * Wood, "Reactive NUMA" (ISCA 1997). All costs are in 400 MHz
 * processor cycles.
 */

#ifndef RNUMA_COMMON_PARAMS_HH
#define RNUMA_COMMON_PARAMS_HH

#include <cstddef>
#include <string>

#include "common/types.hh"

namespace rnuma
{

/**
 * Machine geometry and timing parameters.
 *
 * The base configuration models the paper's simulated machine: eight
 * 4-way SMP nodes of 400 MHz dual-issue processors, a 100 MHz
 * split-transaction bus, a constant-latency point-to-point network
 * with contention at the network interfaces, 8 KB direct-mapped
 * processor data caches, a 32 KB CC-NUMA block cache, a 320 KB
 * S-COMA page cache, and an R-NUMA with a 128-byte block cache plus
 * the same 320 KB page cache and relocation threshold 64.
 */
struct Params
{
    //--- Geometry -------------------------------------------------------
    /** Number of SMP nodes in the machine. */
    std::size_t numNodes = 8;
    /** Processors per SMP node. */
    std::size_t cpusPerNode = 4;
    /** Coherence block (cache line) size in bytes. */
    std::size_t blockSize = 32;
    /** Virtual-memory page size in bytes. */
    std::size_t pageSize = 4096;
    /** Per-processor L1 data cache size in bytes (direct-mapped). */
    std::size_t l1Size = 8 * 1024;
    /** L1 associativity (the paper's caches are direct-mapped). */
    std::size_t l1Assoc = 1;

    //--- Remote caches (per protocol) -----------------------------------
    /** CC-NUMA / R-NUMA block cache size in bytes (0 = absent). */
    std::size_t blockCacheSize = 32 * 1024;
    /** Block cache associativity (direct-mapped SRAM in the paper). */
    std::size_t blockCacheAssoc = 1;
    /** Model an unbounded block cache (the Figure 6 baseline). */
    bool infiniteBlockCache = false;
    /**
     * R-NUMA block cache size in bytes. The base system pairs a much
     * smaller 128-byte block cache with the 320 KB page cache
     * (Section 4).
     */
    std::size_t rnumaBlockCacheSize = 128;
    /** S-COMA / R-NUMA page cache size in bytes. */
    std::size_t pageCacheSize = 320 * 1024;
    /** R-NUMA relocation threshold T (refetches before relocation). */
    std::size_t relocationThreshold = 64;
    /**
     * Ablation switch: keep the directory's prior-owner state
     * (Section 3.1's extra state for detecting refetches of
     * read-write blocks after voluntary writebacks). With it off,
     * only silent read-only evictions are detected as refetches, and
     * R-NUMA under-counts reuse on write-heavy pages.
     */
    bool priorOwnerState = true;

    //--- Interconnect model (net/registry.hh) ----------------------------
    /**
     * Registered network model id: "constant" (the paper's fixed
     * point-to-point latency, the default), "mesh-2d"
     * (dimension-ordered routing with per-hop link contention), or
     * "fat-tree" (log-distance hop latency, contention-free links).
     */
    std::string networkModel = "constant";
    /** Per-hop wire latency for topology models (mesh-2d, fat-tree). */
    Tick hopLatency = 25;
    /** Per-message occupancy of one mesh link (contention unit). */
    Tick linkOccupancy = 4;

    //--- Intra-cell parallelism (sim/machine_parallel.cc) -----------------
    /**
     * Logical processes one Machine is partitioned into. 1 (the
     * default) is the serial engine, bit-identical to every previous
     * release. N > 1 shards the nodes into N contiguous partitions
     * simulated on N threads under a conservative time-window
     * barrier; results are deterministic for a fixed N but not
     * necessarily bit-identical to serial (see docs/ARCHITECTURE.md,
     * "Parallel intra-cell simulation"). Must divide numNodes.
     */
    std::size_t intraJobs = 1;
    /**
     * Synchronization-window multiplier for the parallel engine: the
     * window edge advances by intraWindow * max(1, minLatency) per
     * round. Larger windows amortize barrier cost at the price of
     * more timestamp skew absorbed by the --compare-events tolerance.
     */
    std::size_t intraWindow = 4;

    //--- Directory sharer-set format (proto/directory.hh) ----------------
    /** Sharer-set representation for directory entries. */
    SharerFormat dirFormat = SharerFormat::FullMap;
    /** Exact pointers per entry for SharerFormat::LimitedPointer. */
    std::size_t dirPointers = 4;
    /** Nodes per region bit for SharerFormat::CoarseVector. */
    std::size_t dirRegionSize = 8;

    //--- Block operation costs (Table 2) --------------------------------
    /** SRAM access: block cache, fine-grain tags, translation table. */
    Tick sramAccess = 8;
    /** DRAM access: main memory / page cache. */
    Tick dramAccess = 56;
    /** Memory-bus request portion of a local fill (69 - 56). */
    Tick busLatency = 13;
    /** Bus occupancy per transaction (split-transaction, 100 MHz). */
    Tick busOccupancy = 16;
    /** RAD protocol-controller occupancy per traversal. */
    Tick radOccupancy = 23;
    /** Network-interface occupancy per message. */
    Tick niOccupancy = 20;
    /** Point-to-point network latency (constant, per hop). */
    Tick netLatency = 100;
    /** Directory lookup at the home node. */
    Tick dirAccess = 8;

    //--- Page operation costs (Table 2 / Figure 9) -----------------------
    /** Soft trap: page fault or relocation interrupt (5 us base). */
    Tick softTrap = 2000;
    /** TLB shootdown on the local node (0.5 us hardware base). */
    Tick tlbShootdown = 200;
    /**
     * Fixed part of page allocation/replacement beyond the trap and
     * shootdown (page-table, translation-table and tag setup). Chosen
     * so an empty page costs ~3000 cycles and a full 128-block page
     * ~11500 cycles, the Table 2 range.
     */
    Tick pageSetup = 800;
    /** Per-valid-block cost of flushing/moving a block on a page op. */
    Tick blockFlush = 66;
    /** Barrier synchronization release overhead. */
    Tick barrierCost = 100;

    //--- Derived quantities ----------------------------------------------
    /** Coherence blocks per page. */
    std::size_t blocksPerPage() const { return pageSize / blockSize; }
    /** Total processors in the machine. */
    std::size_t numCpus() const { return numNodes * cpusPerNode; }
    /** Page frames in the S-COMA page cache. */
    std::size_t pageCacheFrames() const { return pageCacheSize / pageSize; }
    /** Block frames in the block cache. */
    std::size_t blockCacheBlocks() const
    {
        return blockCacheSize / blockSize;
    }

    /** Uncontended local cache fill latency (Table 2: 69 cycles). */
    Tick localFill() const { return busLatency + dramAccess; }

    /**
     * Uncontended two-hop remote fetch latency given a one-way wire
     * latency: bus + RAD out + NI + wire + (directory + memory) +
     * NI + wire + RAD in + bus. The wire term comes from the network
     * model (NetworkModel::meanLatency(), or latency(from, to) for a
     * specific pair); passing netLatency reproduces Table 2's 376
     * cycles for the constant model.
     */
    Tick
    remoteFetch(Tick wire) const
    {
        return busLatency + radOccupancy + niOccupancy + wire +
            dirAccess + dramAccess + niOccupancy + wire +
            radOccupancy + busLatency;
    }

    /**
     * The constant-model remote fetch latency (Table 2: 376 cycles).
     * Call remoteFetchLatency(params) (net/registry.hh) for the
     * model-derived figure under a non-constant interconnect.
     */
    Tick remoteFetch() const { return remoteFetch(netLatency); }

    /**
     * Stable directory-format id for artifacts and the compare gate:
     * "full-map", "limited-pointer-<i>", or "coarse-vector-<r>".
     */
    std::string directoryId() const;

    /** Block cache hit latency: bus + SRAM + bus transfer. */
    Tick blockCacheHit() const { return busLatency + sramAccess +
        busLatency; }

    /** Page cache (fine-grain tag) hit latency: tags + DRAM fill. */
    Tick pageCacheHit() const { return sramAccess + localFill(); }

    /**
     * Page allocation/replacement or relocation cost given the number
     * of valid blocks that must be flushed or moved (Table 2 quotes
     * 3000-11500 cycles depending on the number of blocks flushed).
     */
    Tick
    pageOpCost(std::size_t valid_blocks) const
    {
        return softTrap + tlbShootdown + pageSetup +
            blockFlush * static_cast<Tick>(valid_blocks);
    }

    /**
     * Stable hash over every field. The sweep driver's
     * content-addressed workload cache keys generated workloads by
     * (fingerprint, app, scale, seed); any parameter change — even to
     * fields a given generator ignores — yields a fresh key, so the
     * cache can never serve a stale stream.
     */
    std::uint64_t fingerprint() const;

    //--- Factories --------------------------------------------------------
    /** The paper's base system (Section 4). */
    static Params base();

    /**
     * The Figure 9 "SOFT" system: 10 us page faults and 5 us software
     * TLB invalidation via inter-processor interrupts, tripling the
     * per-page overheads.
     */
    static Params soft();

    /** Panic if the configuration is internally inconsistent. */
    void validate() const;
};

} // namespace rnuma

#endif // RNUMA_COMMON_PARAMS_HH
