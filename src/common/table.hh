/**
 * @file
 * A minimal fixed-width text-table formatter used by the benchmark
 * harnesses to print paper-style tables.
 */

#ifndef RNUMA_COMMON_TABLE_HH
#define RNUMA_COMMON_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace rnuma
{

/** Accumulates rows of cells and prints them column-aligned. */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with the given precision (helper for cells). */
    static std::string num(double v, int precision = 2);

    /** Format a percentage (helper for cells). */
    static std::string pct(double fraction, int precision = 0);

    /** Print the table, column-aligned, with a separator rule. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rnuma

#endif // RNUMA_COMMON_TABLE_HH
