/**
 * @file
 * Error-reporting helpers in the gem5 tradition: panic() for internal
 * simulator bugs, fatal() for user/configuration errors, warn() and
 * inform() for status messages that do not stop the simulation.
 */

#ifndef RNUMA_COMMON_LOGGING_HH
#define RNUMA_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace rnuma
{

namespace detail
{

/** Concatenate a parameter pack into one string via a stream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort on an internal invariant violation (a simulator bug). */
#define RNUMA_PANIC(...) \
    ::rnuma::detail::panicImpl(__FILE__, __LINE__, \
                               ::rnuma::detail::concat(__VA_ARGS__))

/** Exit cleanly on a user error (bad configuration or arguments). */
#define RNUMA_FATAL(...) \
    ::rnuma::detail::fatalImpl(__FILE__, __LINE__, \
                               ::rnuma::detail::concat(__VA_ARGS__))

/** Panic unless a condition holds. */
#define RNUMA_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            RNUMA_PANIC("assertion '", #cond, "' failed: ", \
                        ::rnuma::detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

/** Non-fatal alert about questionable behavior. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Normal operating status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/**
 * RAII guard: while alive, panics and fatals on *this thread* throw
 * (std::logic_error / std::runtime_error) instead of aborting or
 * exiting. Worker pools install it so a failure inside a worker can
 * be captured and reported from the spawning thread — std::exit()
 * from a worker would run static destructors while sibling workers
 * are still simulating.
 */
class ScopedPanicToException
{
  public:
    ScopedPanicToException();
    ~ScopedPanicToException();
    ScopedPanicToException(const ScopedPanicToException &) = delete;
    ScopedPanicToException &
    operator=(const ScopedPanicToException &) = delete;

  private:
    bool prev_;
};

} // namespace rnuma

#endif // RNUMA_COMMON_LOGGING_HH
