/**
 * @file
 * The one worker pool in the codebase: run n independent index-tasks
 * on up to a requested number of threads. Used by the sweep driver
 * (cells) and the protocol-comparison runner (the four
 * configurations); both owe their bit-identical parallelism to the
 * tasks writing disjoint, caller-owned slots.
 */

#ifndef RNUMA_COMMON_PARALLEL_HH
#define RNUMA_COMMON_PARALLEL_HH

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace rnuma
{

/**
 * Invoke fn(0) ... fn(n-1), each exactly once, on up to @p jobs
 * worker threads (0 means hardware concurrency; <= 1 runs inline on
 * the calling thread, spawning nothing). Tasks must be independent:
 * they may only write state no other task reads.
 *
 * A task failure on a worker thread is captured (panics and fatals
 * included — workers install ScopedPanicToException, since exiting
 * from a worker would run static destructors under the feet of live
 * siblings), the pool drains, and the first error is re-reported
 * from the calling thread via RNUMA_FATAL.
 */
void parallelFor(std::size_t n, std::size_t jobs,
                 const std::function<void(std::size_t)> &fn);

/**
 * A persistent team of spinning workers for round-based parallel
 * simulation (sim/machine_parallel.cc): the parallel engine runs tens
 * of thousands of short windows per figure cell, so per-round thread
 * spawns — or even condition-variable wakeups — would dominate the
 * work. run(task) executes task(0) on the calling thread and
 * task(1..slots-1) on the persistent workers, returning once every
 * slot has finished; rounds are published with release stores on a
 * generation counter and joined with acquire loads on a completion
 * counter, so the handoff is data-race-free (ThreadSanitizer-clean)
 * without locks.
 *
 * Failures in any slot (panics included — workers install
 * ScopedPanicToException) are captured, the round is fully joined,
 * and the first error rethrows on the calling thread.
 *
 * On a single-core host no threads are spawned and run() executes
 * every slot inline, in slot order — tasks are independent by
 * contract, so results are identical and the spinning handoff (which
 * would cost a scheduler quantum per round there) is avoided.
 */
class WorkerTeam
{
  public:
    /** @param slots total parallel slots (1 spawns no threads). */
    explicit WorkerTeam(std::size_t slots);
    ~WorkerTeam();

    WorkerTeam(const WorkerTeam &) = delete;
    WorkerTeam &operator=(const WorkerTeam &) = delete;

    /** Run task(0..slots-1), one slot per thread; joins all slots. */
    void run(const std::function<void(std::size_t)> &task);

    std::size_t slots() const { return nslots_; }

  private:
    std::size_t nslots_;
    std::vector<std::thread> threads_;
    std::atomic<std::uint64_t> generation_{0};
    std::atomic<std::size_t> done_{0};
    std::atomic<bool> stop_{false};
    const std::function<void(std::size_t)> *task_ = nullptr;
    std::vector<std::exception_ptr> errors_; ///< one per worker slot

    void workerLoop(std::size_t slot);
};

} // namespace rnuma

#endif // RNUMA_COMMON_PARALLEL_HH
