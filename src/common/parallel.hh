/**
 * @file
 * The one worker pool in the codebase: run n independent index-tasks
 * on up to a requested number of threads. Used by the sweep driver
 * (cells) and the protocol-comparison runner (the four
 * configurations); both owe their bit-identical parallelism to the
 * tasks writing disjoint, caller-owned slots.
 */

#ifndef RNUMA_COMMON_PARALLEL_HH
#define RNUMA_COMMON_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace rnuma
{

/**
 * Invoke fn(0) ... fn(n-1), each exactly once, on up to @p jobs
 * worker threads (0 means hardware concurrency; <= 1 runs inline on
 * the calling thread, spawning nothing). Tasks must be independent:
 * they may only write state no other task reads.
 *
 * A task failure on a worker thread is captured (panics and fatals
 * included — workers install ScopedPanicToException, since exiting
 * from a worker would run static destructors under the feet of live
 * siblings), the pool drains, and the first error is re-reported
 * from the calling thread via RNUMA_FATAL.
 */
void parallelFor(std::size_t n, std::size_t jobs,
                 const std::function<void(std::size_t)> &fn);

} // namespace rnuma

#endif // RNUMA_COMMON_PARALLEL_HH
