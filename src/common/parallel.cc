#include "common/parallel.hh"

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"

namespace rnuma
{

void
parallelFor(std::size_t n, std::size_t jobs,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
    }
    if (jobs <= 1 || n == 1) {
        // Inline reference path: no threads, errors propagate (or
        // terminate) exactly as the caller's context dictates.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::string first_error;

    auto worker = [&] {
        ScopedPanicToException panics_throw;
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (const std::exception &e) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (first_error.empty())
                    first_error = e.what();
                next.store(n); // drain the pool
            }
        }
    };

    std::size_t workers = jobs < n ? jobs : n;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    if (!first_error.empty())
        RNUMA_FATAL("parallel task failed: ", first_error);
}

} // namespace rnuma
