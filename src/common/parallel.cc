#include "common/parallel.hh"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"

namespace rnuma
{

void
parallelFor(std::size_t n, std::size_t jobs,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
    }
    if (jobs <= 1 || n == 1) {
        // Inline reference path: no threads, errors propagate (or
        // terminate) exactly as the caller's context dictates.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::string first_error;

    auto worker = [&] {
        ScopedPanicToException panics_throw;
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (const std::exception &e) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (first_error.empty())
                    first_error = e.what();
                next.store(n); // drain the pool
            }
        }
    };

    std::size_t workers = jobs < n ? jobs : n;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    if (!first_error.empty())
        RNUMA_FATAL("parallel task failed: ", first_error);
}

WorkerTeam::WorkerTeam(std::size_t slots)
    : nslots_(slots == 0 ? 1 : slots)
{
    if (nslots_ == 1)
        return;
    // On a single hardware context, spinning workers only preempt
    // the coordinator (and each other) — every round costs scheduler
    // quanta instead of nanoseconds. Team tasks are required to be
    // independent, so running every slot inline on the calling
    // thread produces identical results; run() does that whenever no
    // threads were spawned. RNUMA_TEAM_THREADS=1 forces real threads
    // regardless, so sanitizer jobs exercise the concurrent handoff
    // even on single-core runners.
    if (std::thread::hardware_concurrency() <= 1 &&
        std::getenv("RNUMA_TEAM_THREADS") == nullptr)
        return;
    errors_.resize(nslots_ - 1);
    threads_.reserve(nslots_ - 1);
    for (std::size_t w = 1; w < nslots_; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

WorkerTeam::~WorkerTeam()
{
    if (threads_.empty())
        return;
    stop_.store(true, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);
    for (std::thread &t : threads_)
        t.join();
}

void
WorkerTeam::workerLoop(std::size_t slot)
{
    ScopedPanicToException panics_throw;
    std::uint64_t seen = 0;
    for (;;) {
        // Spin on the round counter; yield after a burst so an idle
        // team does not monopolize cores the simulation could use.
        std::uint64_t gen;
        std::size_t spins = 0;
        while ((gen = generation_.load(std::memory_order_acquire)) ==
               seen) {
            if (++spins >= 4096) {
                std::this_thread::yield();
                spins = 0;
            }
        }
        seen = gen;
        if (stop_.load(std::memory_order_relaxed))
            return;
        try {
            (*task_)(slot);
        } catch (...) {
            errors_[slot - 1] = std::current_exception();
        }
        done_.fetch_add(1, std::memory_order_release);
    }
}

void
WorkerTeam::run(const std::function<void(std::size_t)> &task)
{
    if (threads_.empty()) {
        // One slot, or a single-core host (see the constructor):
        // every slot runs inline, in slot order.
        for (std::size_t s = 0; s < nslots_; ++s)
            task(s);
        return;
    }
    task_ = &task; // published by the generation release store below
    done_.store(0, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);

    std::exception_ptr own;
    try {
        task(0);
    } catch (...) {
        own = std::current_exception();
    }

    // Join the round before touching any shared state (or throwing).
    std::size_t spins = 0;
    while (done_.load(std::memory_order_acquire) < nslots_ - 1) {
        if (++spins >= 4096) {
            std::this_thread::yield();
            spins = 0;
        }
    }

    for (std::exception_ptr &e : errors_) {
        if (e) {
            std::exception_ptr first = e;
            for (std::exception_ptr &r : errors_)
                r = nullptr;
            std::rethrow_exception(first);
        }
    }
    if (own)
        std::rethrow_exception(own);
}

} // namespace rnuma
