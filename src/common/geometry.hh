/**
 * @file
 * Pure machine-geometry math shared by Params::validate() and the
 * topology network models: rectangular mesh factorization and
 * power-of-two checks. Header-only and dependency-free so the common
 * layer can reject un-embeddable geometry without depending on net/.
 */

#ifndef RNUMA_COMMON_GEOMETRY_HH
#define RNUMA_COMMON_GEOMETRY_HH

#include <cstddef>

namespace rnuma
{

inline bool
isPow2(std::size_t n)
{
    return n > 0 && (n & (n - 1)) == 0;
}

/**
 * Factor @p nodes into a near-square W x H mesh (W >= H). H is the
 * largest divisor of nodes with H*H <= nodes; the mesh is accepted
 * only when the aspect ratio is at most 2:1 (W <= 2*H), the
 * "rectangular" requirement of the mesh-2d model — 8 -> 4x2,
 * 16 -> 4x4, 32 -> 8x4, 128 -> 16x8, 512 -> 32x16; primes > 2 and
 * skewed factorizations (e.g. 2xN strips past N=4) are rejected.
 *
 * @return true and fills @p w / @p h when the geometry embeds.
 */
inline bool
meshDims(std::size_t nodes, std::size_t *w, std::size_t *h)
{
    if (nodes < 1)
        return false;
    std::size_t best = 1;
    for (std::size_t d = 1; d * d <= nodes; ++d)
        if (nodes % d == 0)
            best = d;
    const std::size_t width = nodes / best;
    if (width > 2 * best)
        return false;
    if (w)
        *w = width;
    if (h)
        *h = best;
    return true;
}

} // namespace rnuma

#endif // RNUMA_COMMON_GEOMETRY_HH
