#include "common/params.hh"

#include <string>

#include "common/geometry.hh"
#include "common/logging.hh"

namespace rnuma
{

const char *
protocolName(Protocol p)
{
    switch (p) {
      case Protocol::CCNuma: return "CC-NUMA";
      case Protocol::SComa:  return "S-COMA";
      case Protocol::RNuma:  return "R-NUMA";
    }
    return "?";
}

Params
Params::base()
{
    Params p;
    p.validate();
    return p;
}

Params
Params::soft()
{
    Params p;
    // 10 us page-fault handling at 400 MHz.
    p.softTrap = 4000;
    // 5 us software TLB invalidation via inter-processor interrupts.
    p.tlbShootdown = 2000;
    p.validate();
    return p;
}

std::string
Params::directoryId() const
{
    switch (dirFormat) {
      case SharerFormat::FullMap:
        return "full-map";
      case SharerFormat::LimitedPointer:
        return "limited-pointer-" + std::to_string(dirPointers);
      case SharerFormat::CoarseVector:
        return "coarse-vector-" + std::to_string(dirRegionSize);
    }
    return "?";
}

std::uint64_t
Params::fingerprint() const
{
    // splitmix-style accumulation; order fixed by this listing.
    std::uint64_t h = 0x524e554d41ULL; // "RNUMA"
    auto mix = [&h](std::uint64_t v) {
        h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
    };
    mix(numNodes);
    mix(cpusPerNode);
    mix(blockSize);
    mix(pageSize);
    mix(l1Size);
    mix(l1Assoc);
    mix(blockCacheSize);
    mix(blockCacheAssoc);
    mix(infiniteBlockCache ? 1 : 0);
    mix(rnumaBlockCacheSize);
    mix(pageCacheSize);
    mix(relocationThreshold);
    mix(priorOwnerState ? 1 : 0);
    mix(sramAccess);
    mix(dramAccess);
    mix(busLatency);
    mix(busOccupancy);
    mix(radOccupancy);
    mix(niOccupancy);
    mix(netLatency);
    mix(dirAccess);
    mix(softTrap);
    mix(tlbShootdown);
    mix(pageSetup);
    mix(blockFlush);
    mix(barrierCost);
    // FNV-1a over the model id keeps the hash stable across builds
    // (std::hash would be implementation-defined).
    std::uint64_t name_hash = 0xcbf29ce484222325ULL;
    for (char c : networkModel) {
        name_hash ^= static_cast<unsigned char>(c);
        name_hash *= 0x100000001b3ULL;
    }
    mix(name_hash);
    mix(hopLatency);
    mix(linkOccupancy);
    mix(static_cast<std::uint64_t>(dirFormat));
    mix(dirPointers);
    mix(dirRegionSize);
    mix(intraJobs);
    mix(intraWindow);
    return h;
}

void
Params::validate() const
{
    RNUMA_ASSERT(numNodes >= 1 && numNodes <= maxNodes,
                 "numNodes out of range: ", numNodes);
    RNUMA_ASSERT(cpusPerNode >= 1, "need at least one CPU per node");
    RNUMA_ASSERT(blockSize > 0 && (blockSize & (blockSize - 1)) == 0,
                 "blockSize must be a power of two: ", blockSize);
    RNUMA_ASSERT(pageSize % blockSize == 0,
                 "pageSize must be a multiple of blockSize");
    RNUMA_ASSERT(l1Size % blockSize == 0, "l1Size not block aligned");
    RNUMA_ASSERT(blockCacheSize % blockSize == 0,
                 "blockCacheSize not block aligned");
    RNUMA_ASSERT(pageCacheSize % pageSize == 0,
                 "pageCacheSize not page aligned");
    RNUMA_ASSERT(pageCacheFrames() >= 1, "page cache needs >= 1 frame");
    RNUMA_ASSERT(relocationThreshold >= 1,
                 "relocation threshold must be positive");
    // Geometry the chosen topology cannot embed is a configuration
    // error, not a runtime surprise. The ids are checked by name so
    // the common layer stays independent of net/registry; unknown ids
    // are rejected later by makeNetwork().
    if (networkModel == "mesh-2d") {
        RNUMA_ASSERT(meshDims(numNodes, nullptr, nullptr),
                     "mesh-2d cannot embed ", numNodes,
                     " nodes in a rectangular (<= 2:1) mesh");
        RNUMA_ASSERT(hopLatency >= 1, "mesh hopLatency must be >= 1");
    }
    if (networkModel == "fat-tree") {
        RNUMA_ASSERT(isPow2(numNodes),
                     "fat-tree needs a power-of-two node count, got ",
                     numNodes);
        RNUMA_ASSERT(hopLatency >= 1,
                     "fat-tree hopLatency must be >= 1");
    }
    RNUMA_ASSERT(dirPointers >= 1,
                 "limited-pointer directory needs >= 1 pointer");
    RNUMA_ASSERT(dirRegionSize >= 1,
                 "coarse-vector region size must be >= 1");
    RNUMA_ASSERT(intraJobs >= 1,
                 "--intra-jobs must be >= 1, got ", intraJobs);
    RNUMA_ASSERT(intraJobs <= numNodes,
                 "--intra-jobs ", intraJobs, " exceeds the node count ",
                 numNodes, "; each partition needs at least one node");
    RNUMA_ASSERT(numNodes % intraJobs == 0,
                 "--intra-jobs ", intraJobs, " does not divide the ",
                 numNodes, "-node machine into equal partitions");
    RNUMA_ASSERT(intraWindow >= 1,
                 "intraWindow multiplier must be >= 1");
}

} // namespace rnuma
