#include "common/stats.hh"

#include <algorithm>
#include <ostream>

namespace rnuma
{

void
RunStats::recordFetch(Addr page, MissKind kind, bool write, bool remote)
{
    remoteFetches++;
    switch (kind) {
      case MissKind::Cold:      coldMisses++; break;
      case MissKind::Coherence: coherenceMisses++; break;
      case MissKind::Refetch:   refetches++; break;
    }
    if (!remote)
        return;
    PageStats &ps = pages[page];
    ps.remoteFetches++;
    if (kind == MissKind::Refetch)
        ps.refetches++;
    if (write)
        ps.remoteWrite = true;
    else
        ps.remoteRead = true;
}

void
RunStats::markSharedWrite(Addr page)
{
    auto it = pages.find(page);
    if (it != pages.end())
        it->second.remoteWrite = true;
}

std::size_t
RunStats::remotePageCount() const
{
    return pages.size();
}

std::vector<std::uint64_t>
RunStats::refetchDistribution() const
{
    std::vector<std::uint64_t> v;
    v.reserve(pages.size());
    for (const auto &kv : pages)
        v.push_back(kv.second.refetches);
    std::sort(v.begin(), v.end(), std::greater<>());
    return v;
}

double
RunStats::rwPageRefetchFraction() const
{
    std::uint64_t total = 0;
    std::uint64_t rw = 0;
    for (const auto &kv : pages) {
        total += kv.second.refetches;
        if (kv.second.readWriteShared())
            rw += kv.second.refetches;
    }
    return total == 0 ? 0.0 : static_cast<double>(rw) /
        static_cast<double>(total);
}

void
RunStats::mergeFrom(const RunStats &shard)
{
    ticks = std::max(ticks, shard.ticks);
    refs += shard.refs;
    l1Hits += shard.l1Hits;
    l1Misses += shard.l1Misses;
    upgrades += shard.upgrades;
    barriers += shard.barriers;
    localFills += shard.localFills;
    nodeTransfers += shard.nodeTransfers;
    blockCacheHits += shard.blockCacheHits;
    pageCacheHits += shard.pageCacheHits;
    remoteFetches += shard.remoteFetches;
    refetches += shard.refetches;
    coherenceMisses += shard.coherenceMisses;
    coldMisses += shard.coldMisses;
    invalidationsSent += shard.invalidationsSent;
    forwards += shard.forwards;
    writebacks += shard.writebacks;
    flushedBlocks += shard.flushedBlocks;
    pageFaults += shard.pageFaults;
    scomaAllocations += shard.scomaAllocations;
    scomaReplacements += shard.scomaReplacements;
    relocations += shard.relocations;
    evictionsZeroHit += shard.evictionsZeroHit;
    evictedPageHits += shard.evictedPageHits;
    busWait += shard.busWait;
    niWait += shard.niWait;
    osCycles += shard.osCycles;
    stallCycles += shard.stallCycles;
    for (const auto &kv : shard.pages) {
        PageStats &ps = pages[kv.first];
        ps.refetches += kv.second.refetches;
        ps.remoteFetches += kv.second.remoteFetches;
        ps.remoteRead = ps.remoteRead || kv.second.remoteRead;
        ps.remoteWrite = ps.remoteWrite || kv.second.remoteWrite;
    }
}

void
RunStats::print(std::ostream &os) const
{
    os << "ticks=" << ticks
       << " events=" << events
       << " refs=" << refs
       << " l1Hits=" << l1Hits
       << " l1Misses=" << l1Misses
       << "\nremoteFetches=" << remoteFetches
       << " (cold=" << coldMisses
       << " coherence=" << coherenceMisses
       << " refetch=" << refetches << ")"
       << "\nblockCacheHits=" << blockCacheHits
       << " pageCacheHits=" << pageCacheHits
       << " localFills=" << localFills
       << "\npageFaults=" << pageFaults
       << " allocations=" << scomaAllocations
       << " replacements=" << scomaReplacements
       << " relocations=" << relocations
       << "\nevictionsZeroHit=" << evictionsZeroHit
       << " evictedPageHits=" << evictedPageHits
       << "\nbusWait=" << busWait
       << " niWait=" << niWait
       << " osCycles=" << osCycles
       << "\nnetMessages=" << net.totalMessages()
       << " dirEntries=" << dirEntries
       << " dirBits=" << dirBits
       << "\n";
}

bool
operator==(const PageStats &a, const PageStats &b)
{
    return a.refetches == b.refetches &&
        a.remoteFetches == b.remoteFetches &&
        a.remoteRead == b.remoteRead &&
        a.remoteWrite == b.remoteWrite;
}

bool
operator==(const NetworkStats &a, const NetworkStats &b)
{
    for (std::size_t k = 0; k < numMsgKinds; ++k)
        if (a.messages[k] != b.messages[k])
            return false;
    return true;
}

bool
operator==(const RunStats &a, const RunStats &b)
{
    return a.ticks == b.ticks && a.events == b.events &&
        a.refs == b.refs &&
        a.l1Hits == b.l1Hits && a.l1Misses == b.l1Misses &&
        a.upgrades == b.upgrades && a.barriers == b.barriers &&
        a.localFills == b.localFills &&
        a.nodeTransfers == b.nodeTransfers &&
        a.blockCacheHits == b.blockCacheHits &&
        a.pageCacheHits == b.pageCacheHits &&
        a.remoteFetches == b.remoteFetches &&
        a.refetches == b.refetches &&
        a.coherenceMisses == b.coherenceMisses &&
        a.coldMisses == b.coldMisses &&
        a.invalidationsSent == b.invalidationsSent &&
        a.forwards == b.forwards && a.writebacks == b.writebacks &&
        a.flushedBlocks == b.flushedBlocks &&
        a.pageFaults == b.pageFaults &&
        a.scomaAllocations == b.scomaAllocations &&
        a.scomaReplacements == b.scomaReplacements &&
        a.relocations == b.relocations &&
        a.evictionsZeroHit == b.evictionsZeroHit &&
        a.evictedPageHits == b.evictedPageHits &&
        a.busWait == b.busWait &&
        a.niWait == b.niWait && a.osCycles == b.osCycles &&
        a.stallCycles == b.stallCycles && a.net == b.net &&
        a.dirEntries == b.dirEntries && a.dirBits == b.dirBits &&
        a.pages == b.pages;
}

} // namespace rnuma
