/**
 * @file
 * Fundamental scalar types and identifiers shared by every module of
 * the R-NUMA simulator.
 */

#ifndef RNUMA_COMMON_TYPES_HH
#define RNUMA_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <limits>

namespace rnuma
{

/** Simulated time, in 400 MHz processor cycles. */
using Tick = std::uint64_t;

/** A global physical address (high-order bits encode the home node). */
using Addr = std::uint64_t;

/** Identifies one SMP node in the machine. */
using NodeId = std::uint32_t;

/** Identifies one processor, globally (node * cpusPerNode + local). */
using CpuId = std::uint32_t;

/** Sentinel for "no node" (e.g., a directory entry with no owner). */
constexpr NodeId invalidNode = std::numeric_limits<NodeId>::max();

/** Sentinel address used for "no block / no page". */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/**
 * Upper bound on nodes; sizes the full-map directory sharer bitsets
 * and the exact `touched` classification sets. 512 is the scaling
 * ceiling ROADMAP item 2 targets; sparse directory formats
 * (proto/directory.hh) keep per-entry state O(sharers) regardless.
 */
constexpr std::size_t maxNodes = 512;

/** Message categories, for traffic accounting. */
enum class MsgKind : std::uint8_t
{
    Request,      ///< block fetch request to a home
    Reply,        ///< data reply from a home
    Invalidate,   ///< directory-initiated invalidation
    Forward,      ///< three-hop forward to a dirty owner
    Writeback,    ///< voluntary block writeback
    Flush         ///< page-replacement flush of a block
};

constexpr std::size_t numMsgKinds = 6;

/**
 * Directory sharer-set representation (proto/directory.hh). FullMap
 * is the paper's exact per-node bit vector; LimitedPointer (Dir_iB)
 * stores up to Params::dirPointers exact node ids and degrades to
 * broadcast on overflow; CoarseVector keeps one bit per
 * Params::dirRegionSize-node region. Both sparse formats
 * over-approximate: they may invalidate non-sharers but never miss a
 * true sharer.
 */
enum class SharerFormat : std::uint8_t
{
    FullMap,
    LimitedPointer,
    CoarseVector
};

/**
 * Legacy shorthand for the three remote-data caching systems the
 * paper compares. CCNuma caches remote data in the processor caches
 * plus a small SRAM block cache; SComa caches remote data at page
 * granularity in main memory; RNuma starts pages as CC-NUMA and
 * reactively relocates high-refetch pages into the S-COMA page cache
 * (Section 3).
 *
 * The system-selection currency is the string-keyed protocol
 * registry (proto/registry.hh) — these enumerators are retained as
 * spellings of the three built-in registrations ("ccnuma", "scoma",
 * "rnuma") for the sim-layer convenience overloads; nothing
 * dispatches on them.
 */
enum class Protocol : std::uint8_t { CCNuma, SComa, RNuma };

/** Enum-era display name ("CC-NUMA"); kept for log compatibility. */
const char *protocolName(Protocol p);

} // namespace rnuma

#endif // RNUMA_COMMON_TYPES_HH
