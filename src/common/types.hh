/**
 * @file
 * Fundamental scalar types and identifiers shared by every module of
 * the R-NUMA simulator.
 */

#ifndef RNUMA_COMMON_TYPES_HH
#define RNUMA_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <limits>

namespace rnuma
{

/** Simulated time, in 400 MHz processor cycles. */
using Tick = std::uint64_t;

/** A global physical address (high-order bits encode the home node). */
using Addr = std::uint64_t;

/** Identifies one SMP node in the machine. */
using NodeId = std::uint32_t;

/** Identifies one processor, globally (node * cpusPerNode + local). */
using CpuId = std::uint32_t;

/** Sentinel for "no node" (e.g., a directory entry with no owner). */
constexpr NodeId invalidNode = std::numeric_limits<NodeId>::max();

/** Sentinel address used for "no block / no page". */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Upper bound on nodes; sizes the directory sharer bitsets. */
constexpr std::size_t maxNodes = 64;

/**
 * Legacy shorthand for the three remote-data caching systems the
 * paper compares. CCNuma caches remote data in the processor caches
 * plus a small SRAM block cache; SComa caches remote data at page
 * granularity in main memory; RNuma starts pages as CC-NUMA and
 * reactively relocates high-refetch pages into the S-COMA page cache
 * (Section 3).
 *
 * The system-selection currency is the string-keyed protocol
 * registry (proto/registry.hh) — these enumerators are retained as
 * spellings of the three built-in registrations ("ccnuma", "scoma",
 * "rnuma") for the sim-layer convenience overloads; nothing
 * dispatches on them.
 */
enum class Protocol : std::uint8_t { CCNuma, SComa, RNuma };

/** Enum-era display name ("CC-NUMA"); kept for log compatibility. */
const char *protocolName(Protocol p);

} // namespace rnuma

#endif // RNUMA_COMMON_TYPES_HH
