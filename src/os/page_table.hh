/**
 * @file
 * Per-node page tables. The machine runs a single OS image but keeps
 * separate page tables per node (Section 2), so each node can
 * independently decide how a given remote page is mapped: directly to
 * the CC-NUMA global physical address, or to a local S-COMA page
 * cache frame.
 */

#ifndef RNUMA_OS_PAGE_TABLE_HH
#define RNUMA_OS_PAGE_TABLE_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace rnuma
{

/** How one node maps one page. */
enum class PageMode : std::uint8_t
{
    Unmapped, ///< never touched on this node (soft fault on access)
    Local,    ///< the node is the page's home
    CCNuma,   ///< mapped straight to the remote global address
    SComa     ///< mapped to a local page-cache frame
};

/** One node's page table. */
class PageTable
{
  public:
    /** Mapping mode of a page (Unmapped when never set). */
    PageMode
    modeOf(Addr page) const
    {
        auto it = map.find(page);
        return it == map.end() ? PageMode::Unmapped : it->second;
    }

    /** Install or change a mapping. */
    void set(Addr page, PageMode mode) { map[page] = mode; }

    /** Remove a mapping (page replacement / relocation unmap). */
    void unmap(Addr page) { map.erase(page); }

    /** Number of mapped pages. */
    std::size_t size() const { return map.size(); }

    /** Count of pages in a given mode. */
    std::size_t
    countMode(PageMode mode) const
    {
        std::size_t n = 0;
        for (const auto &kv : map)
            if (kv.second == mode)
                ++n;
        return n;
    }

  private:
    std::unordered_map<Addr, PageMode> map;
};

} // namespace rnuma

#endif // RNUMA_OS_PAGE_TABLE_HH
