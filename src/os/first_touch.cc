#include "os/first_touch.hh"

#include "common/logging.hh"

namespace rnuma
{

NodeId
FirstTouchPlacement::touch(Addr page, NodeId node)
{
    auto [it, inserted] = homes.try_emplace(page, node);
    return it->second;
}

void
FirstTouchPlacement::pin(Addr page, NodeId node)
{
    homes[page] = node;
}

bool
FirstTouchPlacement::placed(Addr page) const
{
    return homes.find(page) != homes.end();
}

NodeId
FirstTouchPlacement::homeOf(Addr page) const
{
    auto it = homes.find(page);
    RNUMA_ASSERT(it != homes.end(), "page ", page, " has no home");
    return it->second;
}

std::size_t
FirstTouchPlacement::pagesAt(NodeId node) const
{
    std::size_t n = 0;
    for (const auto &kv : homes)
        if (kv.second == node)
            ++n;
    return n;
}

} // namespace rnuma
