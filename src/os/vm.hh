/**
 * @file
 * The OS virtual-memory cost model. The paper charges fixed costs for
 * the OS interventions (Table 2): soft traps for page faults and
 * relocation interrupts, TLB shootdowns, and a per-block cost for
 * flushing or moving blocks during page allocation, replacement and
 * relocation. No kernel code is simulated; this class centralizes the
 * cost arithmetic and the OS-event statistics.
 */

#ifndef RNUMA_OS_VM_HH
#define RNUMA_OS_VM_HH

#include "common/params.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace rnuma
{

/** Per-node OS page-management cost model. */
class VmManager
{
  public:
    VmManager(const Params &params, NodeId node, RunStats &stats);

    /**
     * Charge a simple mapping fault (first touch of a remote page
     * that maps CC-NUMA, or of a local page): one soft trap.
     * @return the tick at which the faulting CPU resumes.
     */
    Tick chargeMapFault(Tick now);

    /**
     * Charge an S-COMA page allocation, or a replacement when
     * @p flushed_blocks > 0 blocks had to be flushed from the victim:
     * soft trap + TLB shootdown + setup + per-block flush cost
     * (Table 2: 3000-11500 cycles).
     */
    Tick chargeAllocation(Tick now, std::size_t flushed_blocks);

    /**
     * Charge an R-NUMA relocation: same mechanism as allocation
     * (soft trap, shootdown, per-block move), per Section 4 ("page
     * relocation uses similar mechanisms as page
     * allocation/replacement and incurs the same overheads").
     */
    Tick chargeRelocation(Tick now, std::size_t moved_blocks);

    NodeId nodeId() const { return node; }

  private:
    const Params &p;
    NodeId node;
    RunStats &stats;
};

} // namespace rnuma

#endif // RNUMA_OS_VM_HH
