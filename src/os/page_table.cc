#include "os/page_table.hh"

// PageTable is header-only.
