/**
 * @file
 * First-touch page placement (Marchetti et al., as adopted in
 * Section 2.1 of the paper): upon the first request for each page at
 * the start of the parallel phase, the page's home becomes the
 * requesting node, on the assumption that the first requester will be
 * a frequent requester.
 */

#ifndef RNUMA_OS_FIRST_TOUCH_HH
#define RNUMA_OS_FIRST_TOUCH_HH

#include <unordered_map>

#include "common/types.hh"
#include "proto/protocol.hh"

namespace rnuma
{

/** First-touch home assignment; also supports explicit placement. */
class FirstTouchPlacement : public Placement
{
  public:
    /**
     * Record a touch of @p page by @p node; the first toucher becomes
     * the home. Returns the (possibly pre-existing) home.
     */
    NodeId touch(Addr page, NodeId node);

    /** Pin a page to a node regardless of touch order. */
    void pin(Addr page, NodeId node);

    /** True once the page has a home. */
    bool placed(Addr page) const;

    NodeId homeOf(Addr page) const override;

    /** Number of placed pages. */
    std::size_t pageCount() const { return homes.size(); }

    /** Pages homed at @p node. */
    std::size_t pagesAt(NodeId node) const;

  private:
    std::unordered_map<Addr, NodeId> homes;
};

} // namespace rnuma

#endif // RNUMA_OS_FIRST_TOUCH_HH
