#include "os/vm.hh"

namespace rnuma
{

VmManager::VmManager(const Params &params, NodeId node_, RunStats &stats_)
    : p(params), node(node_), stats(stats_)
{
}

Tick
VmManager::chargeMapFault(Tick now)
{
    stats.pageFaults++;
    stats.osCycles += p.softTrap;
    return now + p.softTrap;
}

Tick
VmManager::chargeAllocation(Tick now, std::size_t flushed_blocks)
{
    Tick cost = p.pageOpCost(flushed_blocks);
    stats.osCycles += cost;
    return now + cost;
}

Tick
VmManager::chargeRelocation(Tick now, std::size_t moved_blocks)
{
    Tick cost = p.pageOpCost(moved_blocks);
    stats.osCycles += cost;
    return now + cost;
}

} // namespace rnuma
