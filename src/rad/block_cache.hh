/**
 * @file
 * The CC-NUMA block cache: a direct-mapped, write-back SRAM cache on
 * the RAD holding only remote blocks (Section 2.1). Inclusion with
 * the processor caches is maintained for read-write blocks but not
 * read-only blocks (Section 4).
 */

#ifndef RNUMA_RAD_BLOCK_CACHE_HH
#define RNUMA_RAD_BLOCK_CACHE_HH

#include "common/params.hh"
#include "common/types.hh"
#include "mem/cache.hh"

namespace rnuma
{

/**
 * Thin wrapper around Cache specializing states to the node-level
 * view: Shared = read-only copy, Modified = read-write (dirty,
 * node is the global owner).
 */
class BlockCache
{
  public:
    /**
     * @param size_bytes capacity (32 KB for CC-NUMA, 128 B for
     *                   R-NUMA in the base system)
     * @param params     geometry source
     * @param infinite   unbounded (the normalization baseline)
     */
    BlockCache(std::size_t size_bytes, const Params &params,
               bool infinite);

    /** Probe (updates nothing). */
    CacheLine *find(Addr a) { return cache.find(a); }
    const CacheLine *find(Addr a) const { return cache.find(a); }

    /** LRU touch. */
    void touch(CacheLine *line) { cache.touch(line); }

    /** Allocate a frame; the victim (if any) is returned. */
    CacheLine *
    allocate(Addr a, Cache::Victim &victim)
    {
        return cache.allocate(a, victim);
    }

    /** The victim allocate() would evict, without mutating anything. */
    Cache::Victim
    victimProbe(Addr a) const
    {
        return cache.victimProbe(a);
    }

    /** Invalidate; returns prior state. */
    CacheState invalidate(Addr a) { return cache.invalidate(a); }

    /** Downgrade Modified -> Shared (data went home). */
    void downgrade(Addr a) { cache.downgrade(a); }

    /** Node holds the block writable. */
    bool
    ownsBlock(Addr a) const
    {
        const CacheLine *line = cache.find(a);
        return line && line->state == CacheState::Modified;
    }

    std::size_t validCount() const { return cache.validCount(); }
    bool infinite() const { return cache.infinite(); }

  private:
    Cache cache;
};

} // namespace rnuma

#endif // RNUMA_RAD_BLOCK_CACHE_HH
