/**
 * @file
 * The CC-NUMA Remote Access Device (Section 2.1, Figure 2): remote
 * pages map directly to global physical addresses; the RAD services
 * block-cache hits and sends block-cache misses to the home node.
 */

#ifndef RNUMA_RAD_CCNUMA_RAD_HH
#define RNUMA_RAD_CCNUMA_RAD_HH

#include "rad/block_cache.hh"
#include "rad/rad.hh"

namespace rnuma
{

/** CC-NUMA RAD: block cache only. */
class CcNumaRad : public Rad
{
  public:
    CcNumaRad(const Params &params, NodeId node, RadDeps deps);

    RadAccess access(Tick now, Addr addr, bool write,
                     bool upgrade) override;
    bool invalidateBlock(Addr block) override;
    void downgradeBlock(Addr block) override;
    void l1Writeback(Tick now, Addr block) override;
    bool hasWritePermission(Addr block) const override;
    bool accessConfined(Addr addr, bool write, NodeId lo,
                        NodeId hi) const override;
    bool absorbsL1Writeback(Addr block) const override;

    /** Test introspection. */
    const BlockCache &blockCache() const { return bc; }

  private:
    BlockCache bc;

    /** Soft page fault mapping a remote page CC-NUMA on first touch. */
    Tick mapIfNeeded(Tick now, Addr page);
};

} // namespace rnuma

#endif // RNUMA_RAD_CCNUMA_RAD_HH
