/**
 * @file
 * The Remote Access Device (RAD) abstraction. Every node has a RAD
 * that snoops the memory bus and services references to remote pages
 * (Figure 1). The three systems differ only in their RAD: CC-NUMA
 * has a block cache, S-COMA a page cache with fine-grain tags, and
 * R-NUMA both plus the reactive per-page refetch counters.
 */

#ifndef RNUMA_RAD_RAD_HH
#define RNUMA_RAD_RAD_HH

#include <cstdint>
#include <memory>

#include "common/params.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/memory.hh"
#include "os/page_table.hh"
#include "os/vm.hh"
#include "proto/protocol.hh"

namespace rnuma
{

/**
 * Upcall interface allowing the RAD (and the OS page machinery) to
 * snoop and invalidate the node's processor caches — e.g., to enforce
 * inclusion for read-write blocks, and to purge a page's blocks on
 * replacement or relocation. Implemented by sim::Node.
 */
class L1Snooper
{
  public:
    virtual ~L1Snooper() = default;

    /**
     * Invalidate every on-node L1 copy of @p block.
     * @return the strongest prior state across the node's L1s
     *         (Modified > Owned > Exclusive > Shared > Invalid).
     */
    virtual CacheState invalidateL1Block(Addr block) = 0;
};

/** Everything a RAD needs from its node and the global machine. */
struct RadDeps
{
    GlobalProtocol &proto;
    RunStats &stats;
    Bus &bus;        ///< the node's memory bus (fill transactions)
    Memory &memory;  ///< the node's DRAM (page-cache data lives here)
    VmManager &vm;
    PageTable &pageTable;
    L1Snooper &l1;
};

/** Which structure serviced a remote reference. */
enum class ServiceKind : std::uint8_t
{
    BlockCache, ///< CC-NUMA block cache hit
    PageCache,  ///< S-COMA fine-grain tag hit (local memory)
    Remote      ///< fetched from the home node
};

/** Result of a RAD access. */
struct RadAccess
{
    /** Completion tick (data on the node bus, ready for L1 fill). */
    Tick done = 0;
    ServiceKind service = ServiceKind::Remote;
    /** State the requesting L1 should fill with. */
    CacheState fillState = CacheState::Shared;
};

/** Abstract RAD. */
class Rad
{
  public:
    Rad(const Params &params, NodeId node, RadDeps deps)
        : p(params), nodeId(node), d(deps)
    {}

    virtual ~Rad() = default;

    /**
     * Service a reference to a remote page. Called by the node after
     * L1 miss, bus arbitration, and the on-node snoop; @p now already
     * includes the request bus latency.
     *
     * @param now     time the request appears on the bus
     * @param addr    global physical address
     * @param write   store (needs write permission)
     * @param upgrade the requesting L1 holds a valid read-only copy
     *                (permission-only request)
     */
    virtual RadAccess access(Tick now, Addr addr, bool write,
                             bool upgrade) = 0;

    /**
     * Directory-initiated invalidation of this node's copy.
     * @return true if the RAD held the block dirty.
     */
    virtual bool invalidateBlock(Addr block) = 0;

    /** Directory-initiated downgrade to read-only/clean. */
    virtual void downgradeBlock(Addr block) = 0;

    /** An L1 evicted a dirty remote block; absorb it. */
    virtual void l1Writeback(Tick now, Addr block) = 0;

    /** Node-level write permission for a remote block. */
    virtual bool hasWritePermission(Addr block) const = 0;

    /**
     * Would access(now, addr, write, ...) touch only state belonging
     * to nodes in [lo, hi)? Side-effect-free; the parallel engine
     * (sim/machine_parallel.cc) calls it from a partition thread, so
     * the implementation must not read directory state unless the
     * page's home lies in [lo, hi) — that range owns the home's
     * directory shard. Conservative: false only defers the miss to
     * the serial coordinator. Requires the page to be placed.
     */
    virtual bool accessConfined(Addr addr, bool write, NodeId lo,
                                NodeId hi) const = 0;

    /**
     * Would l1Writeback(now, block) complete without a protocol
     * transaction (the RAD holds a local structure that absorbs the
     * dirty data)? Side-effect-free; mirrors l1Writeback's local
     * paths exactly.
     */
    virtual bool absorbsL1Writeback(Addr block) const = 0;

    NodeId node() const { return nodeId; }

  protected:
    const Params &p;
    NodeId nodeId;
    RadDeps d;

    Addr blockOf(Addr a) const { return a & ~(Addr(p.blockSize) - 1); }
    Addr pageOf(Addr a) const { return a / p.pageSize; }
    std::size_t
    blockIndex(Addr a) const
    {
        return static_cast<std::size_t>((a % p.pageSize) / p.blockSize);
    }
};

struct ProtocolSpec;

/** Construct the RAD a protocol spec describes (spec.makeRad). */
std::unique_ptr<Rad> makeRad(const ProtocolSpec &spec,
                             const Params &params, NodeId node,
                             RadDeps deps);

/**
 * Legacy-enum convenience: construct the RAD of one of the three
 * paper systems by resolving the enum through the protocol registry
 * (proto/registry.hh).
 */
std::unique_ptr<Rad> makeRad(Protocol proto, const Params &params,
                             NodeId node, RadDeps deps);

} // namespace rnuma

#endif // RNUMA_RAD_RAD_HH
