#include "rad/page_cache.hh"

#include "common/logging.hh"

namespace rnuma
{

PageCache::PageCache(std::size_t frames, std::size_t blocks_per_page)
    : capacity(frames), blocksPerPage(blocks_per_page)
{
    RNUMA_ASSERT(capacity >= 1, "page cache needs at least one frame");
    RNUMA_ASSERT(blocksPerPage >= 1, "page needs at least one block");
    tags_.assign(capacity * blocksPerPage, FineTag::Invalid);
    valid_.assign(capacity, 0);
    hits_.assign(capacity, 0);
    pageOf_.assign(capacity, 0);
    prev_.assign(capacity, npos);
    next_.assign(capacity, npos);
    // Pop from the back: frames are handed out 0, 1, 2, ...
    free_.reserve(capacity);
    for (std::size_t f = capacity; f-- > 0;)
        free_.push_back(static_cast<std::uint32_t>(f));
}

std::uint32_t
PageCache::frameOf(Addr page) const
{
    if (lastFrame_ != npos && lastPage_ == page)
        return lastFrame_;
    auto it = byPage.find(page);
    RNUMA_ASSERT(it != byPage.end(), "page ", page, " not cached");
    lastPage_ = page;
    lastFrame_ = it->second;
    return it->second;
}

void
PageCache::unlink(std::uint32_t f)
{
    const std::uint32_t p = prev_[f];
    const std::uint32_t n = next_[f];
    if (p == npos)
        lrmHead_ = n;
    else
        next_[p] = n;
    if (n == npos)
        lrmTail_ = p;
    else
        prev_[n] = p;
}

void
PageCache::linkTail(std::uint32_t f)
{
    prev_[f] = lrmTail_;
    next_[f] = npos;
    if (lrmTail_ == npos)
        lrmHead_ = f;
    else
        next_[lrmTail_] = f;
    lrmTail_ = f;
}

bool
PageCache::contains(Addr page) const
{
    if (lastFrame_ != npos && lastPage_ == page)
        return true;
    return byPage.find(page) != byPage.end();
}

Addr
PageCache::lrmVictim() const
{
    RNUMA_ASSERT(lrmHead_ != npos,
                 "victim requested from empty page cache");
    return pageOf_[lrmHead_];
}

void
PageCache::insert(Addr page)
{
    RNUMA_ASSERT(!contains(page), "page ", page, " already cached");
    RNUMA_ASSERT(!full(), "page cache full");
    const std::uint32_t f = free_.back();
    free_.pop_back();
    FineTag *t = frameTags(f);
    for (std::size_t i = 0; i < blocksPerPage; ++i)
        t[i] = FineTag::Invalid;
    valid_[f] = 0;
    hits_[f] = 0;
    pageOf_[f] = page;
    byPage.emplace(page, f);
    linkTail(f);
    lastPage_ = page;
    lastFrame_ = f;
}

void
PageCache::erase(Addr page)
{
    auto it = byPage.find(page);
    RNUMA_ASSERT(it != byPage.end(), "erasing uncached page ", page);
    const std::uint32_t f = it->second;
    unlink(f);
    byPage.erase(it);
    free_.push_back(f);
    lastFrame_ = npos;
}

void
PageCache::recordMiss(Addr page)
{
    const std::uint32_t f = frameOf(page);
    if (lrmTail_ == f)
        return; // already most recently missed
    unlink(f);
    linkTail(f);
}

void
PageCache::recordHit(Addr page)
{
    hits_[frameOf(page)]++;
}

std::uint64_t
PageCache::hitsOf(Addr page) const
{
    return hits_[frameOf(page)];
}

FineTag
PageCache::tag(Addr page, std::size_t idx) const
{
    RNUMA_ASSERT(idx < blocksPerPage, "bad block index ", idx);
    return frameTags(frameOf(page))[idx];
}

void
PageCache::setTag(Addr page, std::size_t idx, FineTag t)
{
    RNUMA_ASSERT(idx < blocksPerPage, "bad block index ", idx);
    const std::uint32_t f = frameOf(page);
    FineTag &slot = frameTags(f)[idx];
    valid_[f] += (t != FineTag::Invalid) - (slot != FineTag::Invalid);
    slot = t;
}

std::size_t
PageCache::validBlocks(Addr page) const
{
    return valid_[frameOf(page)];
}

void
PageCache::forEachValid(
    Addr page,
    const std::function<void(std::size_t, FineTag)> &fn) const
{
    const FineTag *t = frameTags(frameOf(page));
    for (std::size_t i = 0; i < blocksPerPage; ++i)
        if (t[i] != FineTag::Invalid)
            fn(i, t[i]);
}

} // namespace rnuma
