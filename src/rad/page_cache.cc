#include "rad/page_cache.hh"

#include "common/logging.hh"

namespace rnuma
{

PageCache::PageCache(std::size_t frames, std::size_t blocks_per_page)
    : capacity(frames), blocksPerPage(blocks_per_page)
{
    RNUMA_ASSERT(capacity >= 1, "page cache needs at least one frame");
    RNUMA_ASSERT(blocksPerPage >= 1, "page needs at least one block");
}

bool
PageCache::contains(Addr page) const
{
    return byPage.find(page) != byPage.end();
}

PageCache::Frame &
PageCache::frame(Addr page)
{
    auto it = byPage.find(page);
    RNUMA_ASSERT(it != byPage.end(), "page ", page, " not cached");
    return it->second;
}

const PageCache::Frame &
PageCache::frame(Addr page) const
{
    return const_cast<PageCache *>(this)->frame(page);
}

Addr
PageCache::lrmVictim() const
{
    RNUMA_ASSERT(!lrm.empty(), "victim requested from empty page cache");
    return lrm.front();
}

void
PageCache::insert(Addr page)
{
    RNUMA_ASSERT(!contains(page), "page ", page, " already cached");
    RNUMA_ASSERT(!full(), "page cache full");
    Frame f;
    f.tags.assign(blocksPerPage, FineTag::Invalid);
    auto [it, ok] = byPage.emplace(page, std::move(f));
    (void)ok;
    lrm.push_back(page);
    it->second.lrmPos = std::prev(lrm.end());
}

void
PageCache::erase(Addr page)
{
    auto it = byPage.find(page);
    RNUMA_ASSERT(it != byPage.end(), "erasing uncached page ", page);
    lrm.erase(it->second.lrmPos);
    byPage.erase(it);
}

void
PageCache::recordMiss(Addr page)
{
    Frame &f = frame(page);
    lrm.splice(lrm.end(), lrm, f.lrmPos);
    f.lrmPos = std::prev(lrm.end());
}

FineTag
PageCache::tag(Addr page, std::size_t idx) const
{
    const Frame &f = frame(page);
    RNUMA_ASSERT(idx < f.tags.size(), "bad block index ", idx);
    return f.tags[idx];
}

void
PageCache::setTag(Addr page, std::size_t idx, FineTag t)
{
    Frame &f = frame(page);
    RNUMA_ASSERT(idx < f.tags.size(), "bad block index ", idx);
    f.tags[idx] = t;
}

std::size_t
PageCache::validBlocks(Addr page) const
{
    const Frame &f = frame(page);
    std::size_t n = 0;
    for (FineTag t : f.tags)
        if (t != FineTag::Invalid)
            ++n;
    return n;
}

void
PageCache::forEachValid(
    Addr page,
    const std::function<void(std::size_t, FineTag)> &fn) const
{
    const Frame &f = frame(page);
    for (std::size_t i = 0; i < f.tags.size(); ++i)
        if (f.tags[i] != FineTag::Invalid)
            fn(i, f.tags[i]);
}

} // namespace rnuma
