/**
 * @file
 * The S-COMA Remote Access Device (Section 2.2, Figure 3): remote
 * pages are cached whole in a main-memory page cache; two-bit
 * fine-grain tags detect block misses; the OS allocates and replaces
 * page frames with the Least-Recently-Missed policy.
 */

#ifndef RNUMA_RAD_SCOMA_RAD_HH
#define RNUMA_RAD_SCOMA_RAD_HH

#include "rad/page_cache.hh"
#include "rad/rad.hh"

namespace rnuma
{

/** S-COMA RAD: page cache + fine-grain tags, no block cache. */
class SComaRad : public Rad
{
  public:
    SComaRad(const Params &params, NodeId node, RadDeps deps);

    RadAccess access(Tick now, Addr addr, bool write,
                     bool upgrade) override;
    bool invalidateBlock(Addr block) override;
    void downgradeBlock(Addr block) override;
    void l1Writeback(Tick now, Addr block) override;
    bool hasWritePermission(Addr block) const override;
    bool accessConfined(Addr addr, bool write, NodeId lo,
                        NodeId hi) const override;
    bool absorbsL1Writeback(Addr block) const override;

    /** Test introspection. */
    const PageCache &pageCache() const { return pc; }

  private:
    PageCache pc;

    /**
     * Fault the page into the page cache, replacing the LRM victim if
     * no frame is free (Figure 3b). Returns the resume tick.
     */
    Tick ensureMapped(Tick now, Addr page);

    /**
     * Flush a victim page: invalidate L1 copies, notify the home for
     * every valid block, clear tags. Returns the number of blocks
     * flushed (feeds the page-operation cost).
     */
    std::size_t flushPage(Tick now, Addr victim_page);
};

} // namespace rnuma

#endif // RNUMA_RAD_SCOMA_RAD_HH
