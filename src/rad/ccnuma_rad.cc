#include "rad/ccnuma_rad.hh"

#include "common/logging.hh"

namespace rnuma
{

CcNumaRad::CcNumaRad(const Params &params, NodeId node, RadDeps deps)
    : Rad(params, node, deps),
      bc(params.blockCacheSize, params, params.infiniteBlockCache)
{
}

Tick
CcNumaRad::mapIfNeeded(Tick now, Addr page)
{
    if (d.pageTable.modeOf(page) != PageMode::Unmapped)
        return now;
    // First processor on this node to access the remote page takes a
    // soft page fault; the OS maps it to the CC-NUMA global physical
    // address (Figure 2b).
    Tick t = d.vm.chargeMapFault(now);
    d.pageTable.set(page, PageMode::CCNuma);
    return t;
}

RadAccess
CcNumaRad::access(Tick now, Addr addr, bool write, bool upgrade)
{
    (void)upgrade; // permission requests resolve via the same paths
    Addr page = pageOf(addr);
    Addr block = blockOf(addr);
    Tick t = mapIfNeeded(now, page);

    CacheLine *line = bc.find(block);
    if (line && line->valid()) {
        if (!write || line->state == CacheState::Modified) {
            // Block cache hit: SRAM access plus the bus transfer.
            bc.touch(line);
            d.stats.blockCacheHits++;
            return {t + p.sramAccess + p.busLatency,
                    ServiceKind::BlockCache,
                    write ? CacheState::Modified : CacheState::Shared};
        }
        // Write to a read-only block: permission-only upgrade.
        FetchResult res = d.proto.fetch(t, nodeId, block,
                                        ReqType::Upgrade);
        d.stats.invalidationsSent +=
            static_cast<std::uint64_t>(res.invalidations);
        d.stats.markSharedWrite(page);
        line->state = CacheState::Modified;
        bc.touch(line);
        return {res.done, ServiceKind::Remote, CacheState::Modified};
    }

    // Block cache miss: allocate a frame, writing back a dirty victim
    // (Figure 2b), then request the block from the home node.
    Cache::Victim victim;
    CacheLine *nl = bc.allocate(block, victim);
    if (victim.valid && victim.state == CacheState::Modified) {
        // Inclusion holds for read-write blocks: purge L1 copies and
        // voluntarily write the block back home, which records this
        // node in the directory's prior-owner set.
        d.l1.invalidateL1Block(victim.addr);
        d.proto.writeback(t, nodeId, victim.addr);
        d.stats.writebacks++;
    }
    // Read-only victims are dropped silently (non-notifying), so the
    // directory keeps this node in the sharer set — the basis of
    // read refetch detection.

    FetchResult res = d.proto.fetch(t, nodeId, block,
                                    write ? ReqType::GetX : ReqType::GetS);
    nl->state = write ? CacheState::Modified : CacheState::Shared;
    bc.touch(nl);
    d.stats.recordFetch(page, res.kind, write, true);
    d.stats.invalidationsSent +=
        static_cast<std::uint64_t>(res.invalidations);
    if (res.threeHop)
        d.stats.forwards++;

    Tick done = d.bus.acquire(res.done) + p.busLatency;
    return {done, ServiceKind::Remote,
            write ? CacheState::Modified : CacheState::Shared};
}

bool
CcNumaRad::invalidateBlock(Addr block)
{
    return bc.invalidate(blockOf(block)) == CacheState::Modified;
}

void
CcNumaRad::downgradeBlock(Addr block)
{
    bc.downgrade(blockOf(block));
}

void
CcNumaRad::l1Writeback(Tick now, Addr block)
{
    block = blockOf(block);
    CacheLine *line = bc.find(block);
    if (line && line->valid()) {
        line->state = CacheState::Modified;
        bc.touch(line);
        return;
    }
    // Inclusion should make this unreachable, but stay safe: send the
    // dirty data home as a voluntary writeback.
    d.proto.writeback(now, nodeId, block);
    d.stats.writebacks++;
}

bool
CcNumaRad::hasWritePermission(Addr block) const
{
    return bc.ownsBlock(blockOf(block));
}

bool
CcNumaRad::accessConfined(Addr addr, bool write, NodeId lo,
                          NodeId hi) const
{
    Addr block = blockOf(addr);
    const CacheLine *line = bc.find(block);
    if (line && line->valid() &&
        (!write || line->state == CacheState::Modified))
        return true; // block cache hit: fully node-local
    // Everything below talks to the home; the directory peeks are
    // only safe once the home is known to be inside the range.
    NodeId home = d.proto.homeOf(addr);
    if (home < lo || home >= hi)
        return false;
    if (line && line->valid()) // write to a read-only copy: upgrade
        return d.proto.fetchConfined(nodeId, block, true, lo, hi);
    // Miss: a dirty block-cache victim writes back to ITS home.
    Cache::Victim v = bc.victimProbe(block);
    if (v.valid && v.state == CacheState::Modified) {
        NodeId vhome = d.proto.homeOf(v.addr);
        if (vhome < lo || vhome >= hi)
            return false;
    }
    return d.proto.fetchConfined(nodeId, block, write, lo, hi);
}

bool
CcNumaRad::absorbsL1Writeback(Addr block) const
{
    const CacheLine *line = bc.find(blockOf(block));
    return line && line->valid();
}

} // namespace rnuma
