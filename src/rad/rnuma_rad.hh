/**
 * @file
 * The hybrid Remote Access Device (Section 3, Figure 4): the union
 * of the CC-NUMA and S-COMA RADs, parameterized by a pluggable
 * RelocationPolicy. Remote pages start CC-NUMA; when the policy
 * fires on a page's refetch stream, the RAD interrupts the OS, which
 * relocates the page into the S-COMA page cache. Pages evicted from
 * the page cache revert to CC-NUMA on their next touch (the policy
 * is told, so stateful policies can react). With the paper's
 * StaticThresholdPolicy this is exactly R-NUMA; other policies give
 * new hybrid systems on the same hardware.
 */

#ifndef RNUMA_RAD_RNUMA_RAD_HH
#define RNUMA_RAD_RNUMA_RAD_HH

#include <memory>

#include "core/relocation_policy.hh"
#include "rad/block_cache.hh"
#include "rad/page_cache.hh"
#include "rad/rad.hh"

namespace rnuma
{

/** Hybrid RAD: block cache + page cache + a relocation policy. */
class RNumaRad : public Rad
{
  public:
    /**
     * @param policy the relocation decision rule; null selects the
     *        paper's StaticThresholdPolicy(params.relocationThreshold)
     */
    RNumaRad(const Params &params, NodeId node, RadDeps deps,
             std::unique_ptr<RelocationPolicy> policy = nullptr);

    RadAccess access(Tick now, Addr addr, bool write,
                     bool upgrade) override;
    bool invalidateBlock(Addr block) override;
    void downgradeBlock(Addr block) override;
    void l1Writeback(Tick now, Addr block) override;
    bool hasWritePermission(Addr block) const override;
    bool accessConfined(Addr addr, bool write, NodeId lo,
                        NodeId hi) const override;
    bool absorbsL1Writeback(Addr block) const override;

    /** Test introspection. */
    const BlockCache &blockCache() const { return bc; }
    const PageCache &pageCache() const { return pc; }
    const RelocationPolicy &policy() const { return *policy_; }

  private:
    BlockCache bc;
    PageCache pc;
    std::unique_ptr<RelocationPolicy> policy_;

    /** CC-NUMA-mode path through the block cache. */
    RadAccess blockPath(Tick now, Addr addr, bool write);

    /** S-COMA-mode path through the page cache. */
    RadAccess pagePath(Tick now, Addr addr, bool write);

    /**
     * Relocate a page from CC-NUMA to S-COMA (Section 3.1): trap,
     * flush the page's blocks from the L1s and block cache into a
     * freshly allocated frame (replacing the LRM victim if needed),
     * remap, and reset the counter. Returns the resume tick.
     */
    Tick relocate(Tick now, Addr page);

    /** Flush a victim page's blocks home (notifying). */
    std::size_t flushPage(Tick now, Addr victim_page);
};

} // namespace rnuma

#endif // RNUMA_RAD_RNUMA_RAD_HH
