/**
 * @file
 * The R-NUMA Remote Access Device (Section 3, Figure 4): the union of
 * the CC-NUMA and S-COMA RADs plus per-node, per-page reactive
 * refetch counters. Remote pages start CC-NUMA; when a page's refetch
 * count crosses the threshold, the RAD interrupts the OS, which
 * relocates the page into the S-COMA page cache. Pages evicted from
 * the page cache revert to CC-NUMA on their next touch.
 */

#ifndef RNUMA_RAD_RNUMA_RAD_HH
#define RNUMA_RAD_RNUMA_RAD_HH

#include "core/reactive_policy.hh"
#include "rad/block_cache.hh"
#include "rad/page_cache.hh"
#include "rad/rad.hh"

namespace rnuma
{

/** R-NUMA RAD: block cache + page cache + reactive counters. */
class RNumaRad : public Rad
{
  public:
    RNumaRad(const Params &params, NodeId node, RadDeps deps);

    RadAccess access(Tick now, Addr addr, bool write,
                     bool upgrade) override;
    bool invalidateBlock(Addr block) override;
    void downgradeBlock(Addr block) override;
    void l1Writeback(Tick now, Addr block) override;
    bool hasWritePermission(Addr block) const override;

    /** Test introspection. */
    const BlockCache &blockCache() const { return bc; }
    const PageCache &pageCache() const { return pc; }
    const ReactivePolicy &policy() const { return counters; }

  private:
    BlockCache bc;
    PageCache pc;
    ReactivePolicy counters;

    /** CC-NUMA-mode path through the block cache. */
    RadAccess blockPath(Tick now, Addr addr, bool write);

    /** S-COMA-mode path through the page cache. */
    RadAccess pagePath(Tick now, Addr addr, bool write);

    /**
     * Relocate a page from CC-NUMA to S-COMA (Section 3.1): trap,
     * flush the page's blocks from the L1s and block cache into a
     * freshly allocated frame (replacing the LRM victim if needed),
     * remap, and reset the counter. Returns the resume tick.
     */
    Tick relocate(Tick now, Addr page);

    /** Flush a victim page's blocks home (notifying). */
    std::size_t flushPage(Tick now, Addr victim_page);
};

} // namespace rnuma

#endif // RNUMA_RAD_RNUMA_RAD_HH
