#include "rad/scoma_rad.hh"

#include "common/logging.hh"

namespace rnuma
{

SComaRad::SComaRad(const Params &params, NodeId node, RadDeps deps)
    : Rad(params, node, deps),
      pc(params.pageCacheFrames(), params.blocksPerPage())
{
}

std::size_t
SComaRad::flushPage(Tick now, Addr victim_page)
{
    std::size_t flushed = 0;
    pc.forEachValid(victim_page,
                    [&](std::size_t idx, FineTag tag) {
        Addr block = victim_page * p.pageSize + idx * p.blockSize;
        d.l1.invalidateL1Block(block);
        d.proto.flushBlock(now, nodeId, block,
                           tag == FineTag::ReadWrite);
        d.stats.flushedBlocks++;
        flushed++;
    });
    return flushed;
}

Tick
SComaRad::ensureMapped(Tick now, Addr page)
{
    if (d.pageTable.modeOf(page) == PageMode::SComa)
        return now;

    // Page fault: select and clean a victim if no frame is free, then
    // initialize the page table, translation table, and tags.
    std::size_t flushed = 0;
    if (pc.full()) {
        Addr victim = pc.lrmVictim();
        flushed = flushPage(now, victim);
        pc.erase(victim);
        d.pageTable.unmap(victim);
        d.stats.scomaReplacements++;
    }
    Tick t = d.vm.chargeAllocation(now, flushed);
    d.stats.pageFaults++;
    d.stats.scomaAllocations++;
    pc.insert(page);
    d.pageTable.set(page, PageMode::SComa);
    return t;
}

RadAccess
SComaRad::access(Tick now, Addr addr, bool write, bool upgrade)
{
    (void)upgrade;
    Addr page = pageOf(addr);
    Addr block = blockOf(addr);
    std::size_t idx = blockIndex(addr);

    Tick t = ensureMapped(now, page);
    FineTag tag = pc.tag(page, idx);

    if (tag == FineTag::ReadWrite ||
        (tag == FineTag::ReadOnly && !write)) {
        // Fine-grain tag hit: serviced by local memory.
        Tick done = d.memory.access(t + p.sramAccess, addr);
        d.stats.pageCacheHits++;
        return {done, ServiceKind::PageCache,
                write ? CacheState::Modified : CacheState::Shared};
    }

    if (tag == FineTag::ReadOnly) {
        // Write to a read-only block: permission-only upgrade.
        FetchResult res = d.proto.fetch(t, nodeId, block,
                                        ReqType::Upgrade);
        d.stats.invalidationsSent +=
            static_cast<std::uint64_t>(res.invalidations);
        d.stats.markSharedWrite(page);
        pc.setTag(page, idx, FineTag::ReadWrite);
        pc.recordMiss(page);
        return {res.done, ServiceKind::Remote, CacheState::Modified};
    }

    // Invalid tag: the RAD inhibits memory, translates the local
    // physical address to the global one, and fetches from the home.
    FetchResult res = d.proto.fetch(t, nodeId, block,
                                    write ? ReqType::GetX : ReqType::GetS);
    pc.setTag(page, idx,
              write ? FineTag::ReadWrite : FineTag::ReadOnly);
    pc.recordMiss(page);
    d.stats.recordFetch(page, res.kind, write, true);
    d.stats.invalidationsSent +=
        static_cast<std::uint64_t>(res.invalidations);
    if (res.threeHop)
        d.stats.forwards++;

    Tick done = d.bus.acquire(res.done) + p.busLatency;
    return {done, ServiceKind::Remote,
            write ? CacheState::Modified : CacheState::Shared};
}

bool
SComaRad::invalidateBlock(Addr block)
{
    block = blockOf(block);
    Addr page = pageOf(block);
    if (!pc.contains(page))
        return false;
    std::size_t idx = blockIndex(block);
    FineTag tag = pc.tag(page, idx);
    pc.setTag(page, idx, FineTag::Invalid);
    return tag == FineTag::ReadWrite;
}

void
SComaRad::downgradeBlock(Addr block)
{
    block = blockOf(block);
    Addr page = pageOf(block);
    if (!pc.contains(page))
        return;
    std::size_t idx = blockIndex(block);
    if (pc.tag(page, idx) == FineTag::ReadWrite)
        pc.setTag(page, idx, FineTag::ReadOnly);
}

void
SComaRad::l1Writeback(Tick now, Addr block)
{
    block = blockOf(block);
    Addr page = pageOf(block);
    if (pc.contains(page)) {
        // The page cache is main memory; the dirty line lands in the
        // frame and the tag stays/becomes read-write.
        pc.setTag(page, blockIndex(block), FineTag::ReadWrite);
        return;
    }
    // The page was replaced while the L1 held the line (should have
    // been purged); fall back to a voluntary writeback home.
    d.proto.writeback(now, nodeId, block);
    d.stats.writebacks++;
}

bool
SComaRad::hasWritePermission(Addr block) const
{
    Addr page = pageOf(block);
    return pc.contains(page) &&
        pc.tag(page, blockIndex(block)) == FineTag::ReadWrite;
}

bool
SComaRad::accessConfined(Addr addr, bool write, NodeId lo,
                         NodeId hi) const
{
    Addr page = pageOf(addr);
    Addr block = blockOf(addr);
    if (d.pageTable.modeOf(page) == PageMode::SComa) {
        FineTag tag = pc.tag(page, blockIndex(addr));
        if (tag == FineTag::ReadWrite ||
            (tag == FineTag::ReadOnly && !write))
            return true; // fine-grain tag hit: local memory
        NodeId home = d.proto.homeOf(addr);
        if (home < lo || home >= hi)
            return false;
        return d.proto.fetchConfined(nodeId, block, write, lo, hi);
    }
    // Page fault: a full page cache flushes the LRM victim page's
    // blocks to THAT page's home, then the fetch goes to this
    // page's home.
    NodeId home = d.proto.homeOf(addr);
    if (home < lo || home >= hi)
        return false;
    if (pc.full()) {
        NodeId vhome =
            d.proto.homeOf(pc.lrmVictim() * Addr(p.pageSize));
        if (vhome < lo || vhome >= hi)
            return false;
    }
    return d.proto.fetchConfined(nodeId, block, write, lo, hi);
}

bool
SComaRad::absorbsL1Writeback(Addr block) const
{
    return pc.contains(pageOf(block));
}

} // namespace rnuma
