#include "rad/block_cache.hh"

namespace rnuma
{

BlockCache::BlockCache(std::size_t size_bytes, const Params &params,
                       bool infinite)
    : cache(infinite ? params.blockSize : size_bytes, params.blockSize,
            params.blockCacheAssoc, infinite)
{
}

} // namespace rnuma
