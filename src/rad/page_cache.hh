/**
 * @file
 * The S-COMA page cache (Section 2.2): a region of main memory set
 * aside to cache remote pages at page granularity, with two-bit
 * fine-grain access-control tags per block, an auxiliary translation
 * table (modeled as the page->frame map), and the paper's
 * Least-Recently-Missed replacement policy — the frame list is
 * reordered on remote misses rather than on every reference
 * (Section 4).
 */

#ifndef RNUMA_RAD_PAGE_CACHE_HH
#define RNUMA_RAD_PAGE_CACHE_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace rnuma
{

/** Two-bit fine-grain access-control tag for one block. */
enum class FineTag : std::uint8_t
{
    Invalid,   ///< block absent; the RAD must inhibit memory and fetch
    ReadOnly,  ///< local copy valid for reads
    ReadWrite  ///< local copy valid for reads and writes (dirty)
};

/** One node's page cache. */
class PageCache
{
  public:
    /**
     * @param frames          page frames available (320 KB / 4 KB = 80
     *                        in the base system)
     * @param blocks_per_page fine-grain tags per frame
     */
    PageCache(std::size_t frames, std::size_t blocks_per_page);

    /** Is the page currently cached (translation-table hit)? */
    bool contains(Addr page) const;

    /** All frames in use? */
    bool full() const { return used() == capacity; }

    /** Frames in use. */
    std::size_t used() const { return byPage.size(); }

    /** Total frames. */
    std::size_t frames() const { return capacity; }

    /**
     * The replacement victim: the least-recently-missed page.
     * Only valid when at least one page is cached.
     */
    Addr lrmVictim() const;

    /** Insert a page (must not be present; must not be full). */
    void insert(Addr page);

    /** Remove a page and clear its tags. */
    void erase(Addr page);

    /**
     * Record a remote miss on a cached page, moving it to the
     * most-recently-missed end of the LRM list.
     */
    void recordMiss(Addr page);

    /**
     * Record one locally-satisfied access on a cached page — the
     * residency-utility signal. Pure bookkeeping: the LRM order and
     * all timing are untouched.
     */
    void recordHit(Addr page);

    /** Hits recorded against @p page since it was inserted. */
    std::uint64_t hitsOf(Addr page) const;

    /** Fine-grain tag of block @p idx of @p page. */
    FineTag tag(Addr page, std::size_t idx) const;

    /** Set a fine-grain tag. */
    void setTag(Addr page, std::size_t idx, FineTag t);

    /** Number of valid (non-Invalid) tags on a page. */
    std::size_t validBlocks(Addr page) const;

    /** Visit valid blocks of a page as (index, tag). */
    void forEachValid(
        Addr page,
        const std::function<void(std::size_t, FineTag)> &fn) const;

  private:
    /**
     * Struct-of-arrays frame storage, indexed by frame slot. The tag
     * arena is one flat allocation (capacity * blocksPerPage), the
     * LRM list is intrusive (index links instead of std::list
     * nodes), and per-frame valid-tag counts are maintained
     * incrementally so validBlocks() — which page-operation costs
     * consult on every allocation, replacement, and relocation — is
     * O(1) instead of a scan. A one-entry page->frame memo rides on
     * top: the RADs probe the same page several times per access
     * (tag read, tag write, miss bookkeeping), and the memo turns
     * all but the first probe into two loads.
     */
    static constexpr std::uint32_t npos = ~std::uint32_t{0};

    std::size_t capacity;
    std::size_t blocksPerPage;
    std::vector<FineTag> tags_;        ///< capacity * blocksPerPage
    std::vector<std::uint32_t> valid_; ///< valid tags per frame
    std::vector<std::uint64_t> hits_;  ///< hits since insert, per frame
    std::vector<Addr> pageOf_;         ///< page cached in each frame
    std::vector<std::uint32_t> prev_;  ///< LRM links (npos = end)
    std::vector<std::uint32_t> next_;
    std::uint32_t lrmHead_ = npos; ///< least recently missed
    std::uint32_t lrmTail_ = npos; ///< most recently missed
    std::vector<std::uint32_t> free_; ///< unused frame slots
    std::unordered_map<Addr, std::uint32_t> byPage;
    mutable Addr lastPage_ = 0;             ///< memo key
    mutable std::uint32_t lastFrame_ = npos; ///< memo value

    std::uint32_t frameOf(Addr page) const;
    void unlink(std::uint32_t f);
    void linkTail(std::uint32_t f);
    FineTag *frameTags(std::uint32_t f) { return &tags_[f * blocksPerPage]; }
    const FineTag *frameTags(std::uint32_t f) const
    {
        return &tags_[f * blocksPerPage];
    }
};

} // namespace rnuma

#endif // RNUMA_RAD_PAGE_CACHE_HH
