/**
 * @file
 * The S-COMA page cache (Section 2.2): a region of main memory set
 * aside to cache remote pages at page granularity, with two-bit
 * fine-grain access-control tags per block, an auxiliary translation
 * table (modeled as the page->frame map), and the paper's
 * Least-Recently-Missed replacement policy — the frame list is
 * reordered on remote misses rather than on every reference
 * (Section 4).
 */

#ifndef RNUMA_RAD_PAGE_CACHE_HH
#define RNUMA_RAD_PAGE_CACHE_HH

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace rnuma
{

/** Two-bit fine-grain access-control tag for one block. */
enum class FineTag : std::uint8_t
{
    Invalid,   ///< block absent; the RAD must inhibit memory and fetch
    ReadOnly,  ///< local copy valid for reads
    ReadWrite  ///< local copy valid for reads and writes (dirty)
};

/** One node's page cache. */
class PageCache
{
  public:
    /**
     * @param frames          page frames available (320 KB / 4 KB = 80
     *                        in the base system)
     * @param blocks_per_page fine-grain tags per frame
     */
    PageCache(std::size_t frames, std::size_t blocks_per_page);

    /** Is the page currently cached (translation-table hit)? */
    bool contains(Addr page) const;

    /** All frames in use? */
    bool full() const { return used() == capacity; }

    /** Frames in use. */
    std::size_t used() const { return byPage.size(); }

    /** Total frames. */
    std::size_t frames() const { return capacity; }

    /**
     * The replacement victim: the least-recently-missed page.
     * Only valid when at least one page is cached.
     */
    Addr lrmVictim() const;

    /** Insert a page (must not be present; must not be full). */
    void insert(Addr page);

    /** Remove a page and clear its tags. */
    void erase(Addr page);

    /**
     * Record a remote miss on a cached page, moving it to the
     * most-recently-missed end of the LRM list.
     */
    void recordMiss(Addr page);

    /** Fine-grain tag of block @p idx of @p page. */
    FineTag tag(Addr page, std::size_t idx) const;

    /** Set a fine-grain tag. */
    void setTag(Addr page, std::size_t idx, FineTag t);

    /** Number of valid (non-Invalid) tags on a page. */
    std::size_t validBlocks(Addr page) const;

    /** Visit valid blocks of a page as (index, tag). */
    void forEachValid(
        Addr page,
        const std::function<void(std::size_t, FineTag)> &fn) const;

  private:
    struct Frame
    {
        std::vector<FineTag> tags;
        std::list<Addr>::iterator lrmPos;
    };

    std::size_t capacity;
    std::size_t blocksPerPage;
    std::unordered_map<Addr, Frame> byPage;
    /** Front = least recently missed; back = most recently missed. */
    std::list<Addr> lrm;

    Frame &frame(Addr page);
    const Frame &frame(Addr page) const;
};

} // namespace rnuma

#endif // RNUMA_RAD_PAGE_CACHE_HH
