#include "rad/rnuma_rad.hh"

namespace rnuma
{

RNumaRad::RNumaRad(const Params &params, NodeId node, RadDeps deps,
                   std::unique_ptr<RelocationPolicy> policy)
    : Rad(params, node, deps),
      bc(params.rnumaBlockCacheSize, params, false),
      pc(params.pageCacheFrames(), params.blocksPerPage()),
      policy_(std::move(policy))
{
    if (!policy_) {
        policy_ = std::make_unique<StaticThresholdPolicy>(
            params.relocationThreshold);
    }
}

std::size_t
RNumaRad::flushPage(Tick now, Addr victim_page)
{
    std::size_t flushed = 0;
    pc.forEachValid(victim_page,
                    [&](std::size_t idx, FineTag tag) {
        Addr block = victim_page * p.pageSize + idx * p.blockSize;
        d.l1.invalidateL1Block(block);
        d.proto.flushBlock(now, nodeId, block,
                           tag == FineTag::ReadWrite);
        d.stats.flushedBlocks++;
        flushed++;
    });
    return flushed;
}

Tick
RNumaRad::relocate(Tick now, Addr page)
{
    d.stats.relocations++;

    // Make room: replace the least-recently-missed page if the cache
    // is full. The evicted page reverts to CC-NUMA on its next touch
    // (it becomes unmapped), and its counter restarts.
    Tick t = now;
    if (pc.full()) {
        Addr victim = pc.lrmVictim();
        std::size_t flushed = flushPage(t, victim);
        // Read the residency's hit count before the frame is
        // recycled: it is the utility signal the policy learns from
        // and the wasted-relocation observability counters record.
        std::uint64_t hits = pc.hitsOf(victim);
        pc.erase(victim);
        d.pageTable.unmap(victim);
        policy_->onEvicted(victim, hits);
        d.stats.scomaReplacements++;
        d.stats.evictedPageHits += hits;
        if (hits == 0)
            d.stats.evictionsZeroHit++;
        t = d.vm.chargeAllocation(t, flushed);
    }
    pc.insert(page);

    // Move the locally referenced blocks: unmap the CC-NUMA page,
    // flush its blocks from the L1s and block cache into the new
    // frame, preserving read-only/read-write permission. Only the
    // blocks actually held locally are replicated (Section 5.1); the
    // directory state does not change, since the node keeps its
    // copies.
    std::size_t moved = 0;
    for (std::size_t idx = 0; idx < p.blocksPerPage(); ++idx) {
        Addr block = page * p.pageSize + idx * p.blockSize;
        CacheState l1 = d.l1.invalidateL1Block(block);
        CacheState bcs = bc.invalidate(block);
        bool dirty = isDirty(l1) || bcs == CacheState::Modified;
        bool valid = isValid(l1) || isValid(bcs);
        if (valid) {
            pc.setTag(page, idx,
                      dirty ? FineTag::ReadWrite : FineTag::ReadOnly);
            moved++;
        }
    }
    t = d.vm.chargeRelocation(t, moved);
    d.pageTable.set(page, PageMode::SComa);
    policy_->onRelocated(page);
    return t;
}

RadAccess
RNumaRad::blockPath(Tick now, Addr addr, bool write)
{
    Addr page = pageOf(addr);
    Addr block = blockOf(addr);

    CacheLine *line = bc.find(block);
    if (line && line->valid()) {
        if (!write || line->state == CacheState::Modified) {
            bc.touch(line);
            d.stats.blockCacheHits++;
            return {now + p.sramAccess + p.busLatency,
                    ServiceKind::BlockCache,
                    write ? CacheState::Modified : CacheState::Shared};
        }
        FetchResult res = d.proto.fetch(now, nodeId, block,
                                        ReqType::Upgrade);
        d.stats.invalidationsSent +=
            static_cast<std::uint64_t>(res.invalidations);
        d.stats.markSharedWrite(page);
        line->state = CacheState::Modified;
        bc.touch(line);
        return {res.done, ServiceKind::Remote, CacheState::Modified};
    }

    Cache::Victim victim;
    CacheLine *nl = bc.allocate(block, victim);
    if (victim.valid && victim.state == CacheState::Modified) {
        d.l1.invalidateL1Block(victim.addr);
        d.proto.writeback(now, nodeId, victim.addr);
        d.stats.writebacks++;
    }

    FetchResult res = d.proto.fetch(now, nodeId, block,
                                    write ? ReqType::GetX : ReqType::GetS);
    nl->state = write ? CacheState::Modified : CacheState::Shared;
    bc.touch(nl);
    d.stats.recordFetch(page, res.kind, write, true);
    d.stats.invalidationsSent +=
        static_cast<std::uint64_t>(res.invalidations);
    if (res.threeHop)
        d.stats.forwards++;

    Tick done = d.bus.acquire(res.done) + p.busLatency;

    // The reactive mechanism: report capacity/conflict refetches to
    // the relocation policy; when it fires, the RAD interrupts and
    // the OS relocates the page into the page cache (Figure 4b).
    if (res.kind == MissKind::Refetch && policy_->onRefetch(page)) {
        done = relocate(done, page);
    }

    return {done, ServiceKind::Remote,
            write ? CacheState::Modified : CacheState::Shared};
}

RadAccess
RNumaRad::pagePath(Tick now, Addr addr, bool write)
{
    Addr page = pageOf(addr);
    Addr block = blockOf(addr);
    std::size_t idx = blockIndex(addr);
    FineTag tag = pc.tag(page, idx);

    if (tag == FineTag::ReadWrite ||
        (tag == FineTag::ReadOnly && !write)) {
        Tick done = d.memory.access(now + p.sramAccess, addr);
        d.stats.pageCacheHits++;
        pc.recordHit(page);
        return {done, ServiceKind::PageCache,
                write ? CacheState::Modified : CacheState::Shared};
    }

    if (tag == FineTag::ReadOnly) {
        FetchResult res = d.proto.fetch(now, nodeId, block,
                                        ReqType::Upgrade);
        d.stats.invalidationsSent +=
            static_cast<std::uint64_t>(res.invalidations);
        d.stats.markSharedWrite(page);
        pc.setTag(page, idx, FineTag::ReadWrite);
        pc.recordMiss(page);
        return {res.done, ServiceKind::Remote, CacheState::Modified};
    }

    FetchResult res = d.proto.fetch(now, nodeId, block,
                                    write ? ReqType::GetX : ReqType::GetS);
    pc.setTag(page, idx,
              write ? FineTag::ReadWrite : FineTag::ReadOnly);
    pc.recordMiss(page);
    d.stats.recordFetch(page, res.kind, write, true);
    d.stats.invalidationsSent +=
        static_cast<std::uint64_t>(res.invalidations);
    if (res.threeHop)
        d.stats.forwards++;

    Tick done = d.bus.acquire(res.done) + p.busLatency;
    return {done, ServiceKind::Remote,
            write ? CacheState::Modified : CacheState::Shared};
}

RadAccess
RNumaRad::access(Tick now, Addr addr, bool write, bool upgrade)
{
    (void)upgrade;
    Addr page = pageOf(addr);
    PageMode mode = d.pageTable.modeOf(page);

    Tick t = now;
    if (mode == PageMode::Unmapped) {
        // First touch: the OS initially maps the page CC-NUMA
        // (Figure 4b).
        t = d.vm.chargeMapFault(t);
        d.pageTable.set(page, PageMode::CCNuma);
        mode = PageMode::CCNuma;
    }

    if (mode == PageMode::SComa)
        return pagePath(t, addr, write);
    return blockPath(t, addr, write);
}

bool
RNumaRad::invalidateBlock(Addr block)
{
    block = blockOf(block);
    bool dirty = bc.invalidate(block) == CacheState::Modified;
    Addr page = pageOf(block);
    if (pc.contains(page)) {
        std::size_t idx = blockIndex(block);
        if (pc.tag(page, idx) == FineTag::ReadWrite)
            dirty = true;
        pc.setTag(page, idx, FineTag::Invalid);
    }
    return dirty;
}

void
RNumaRad::downgradeBlock(Addr block)
{
    block = blockOf(block);
    bc.downgrade(block);
    Addr page = pageOf(block);
    if (pc.contains(page)) {
        std::size_t idx = blockIndex(block);
        if (pc.tag(page, idx) == FineTag::ReadWrite)
            pc.setTag(page, idx, FineTag::ReadOnly);
    }
}

void
RNumaRad::l1Writeback(Tick now, Addr block)
{
    block = blockOf(block);
    Addr page = pageOf(block);
    if (d.pageTable.modeOf(page) == PageMode::SComa &&
        pc.contains(page)) {
        pc.setTag(page, blockIndex(block), FineTag::ReadWrite);
        return;
    }
    CacheLine *line = bc.find(block);
    if (line && line->valid()) {
        line->state = CacheState::Modified;
        bc.touch(line);
        return;
    }
    d.proto.writeback(now, nodeId, block);
    d.stats.writebacks++;
}

bool
RNumaRad::hasWritePermission(Addr block) const
{
    block = blockOf(block);
    if (bc.ownsBlock(block))
        return true;
    Addr page = pageOf(block);
    return pc.contains(page) &&
        pc.tag(page, blockIndex(block)) == FineTag::ReadWrite;
}

bool
RNumaRad::accessConfined(Addr addr, bool write, NodeId lo,
                         NodeId hi) const
{
    Addr page = pageOf(addr);
    Addr block = blockOf(addr);

    if (d.pageTable.modeOf(page) == PageMode::SComa) {
        // pagePath: the page is resident, so no allocation or
        // replacement can trigger — only the tag decides. The hit
        // bookkeeping a confined page-cache hit performs
        // (PageCache::recordHit) mutates only this node's own frame
        // arena, so it needs no home check; likewise the residency
        // feedback delivered at eviction (policy onEvicted with the
        // hit count) touches only this node's policy state — the
        // victim-home probe below already defers the eviction's
        // *flush* traffic, which is the only cross-node effect.
        FineTag tag = pc.tag(page, blockIndex(addr));
        if (tag == FineTag::ReadWrite ||
            (tag == FineTag::ReadOnly && !write))
            return true;
        NodeId home = d.proto.homeOf(addr);
        if (home < lo || home >= hi)
            return false;
        return d.proto.fetchConfined(nodeId, block, write, lo, hi);
    }

    // blockPath (Unmapped first-touch maps CC-NUMA locally first).
    const CacheLine *line = bc.find(block);
    if (line && line->valid() &&
        (!write || line->state == CacheState::Modified))
        return true; // block cache hit
    NodeId home = d.proto.homeOf(addr);
    if (home < lo || home >= hi)
        return false;
    if (line && line->valid()) // upgrade
        return d.proto.fetchConfined(nodeId, block, true, lo, hi);
    Cache::Victim v = bc.victimProbe(block);
    if (v.valid && v.state == CacheState::Modified) {
        NodeId vhome = d.proto.homeOf(v.addr);
        if (vhome < lo || vhome >= hi)
            return false;
    }
    if (!d.proto.fetchConfined(nodeId, block, write, lo, hi))
        return false;
    // A refetch may fire the relocation policy. The relocation
    // itself is node-local except when a full page cache evicts its
    // LRM victim page, whose blocks flush to THAT page's home.
    if (pc.full() && d.proto.wouldRefetch(nodeId, block) &&
        policy_->wouldFire(page)) {
        NodeId vhome =
            d.proto.homeOf(pc.lrmVictim() * Addr(p.pageSize));
        if (vhome < lo || vhome >= hi)
            return false;
    }
    return true;
}

bool
RNumaRad::absorbsL1Writeback(Addr block) const
{
    block = blockOf(block);
    Addr page = pageOf(block);
    if (d.pageTable.modeOf(page) == PageMode::SComa &&
        pc.contains(page))
        return true;
    const CacheLine *line = bc.find(block);
    return line && line->valid();
}

} // namespace rnuma
