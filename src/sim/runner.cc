#include "sim/runner.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "sim/machine.hh"

namespace rnuma
{

RunStats
runProtocol(const Params &params, const ProtocolSpec &spec,
            Workload &wl)
{
    wl.reset();
    Machine m(params, spec, wl);
    return m.run();
}

RunStats
runProtocol(const Params &params, const std::string &name,
            Workload &wl)
{
    return runProtocol(params, protocolSpec(name), wl);
}

RunStats
runProtocol(const Params &params, Protocol protocol, Workload &wl)
{
    return runProtocol(params, builtinSpec(protocol), wl);
}

RunStats
runInfiniteBaseline(const Params &params, Workload &wl)
{
    Params base = params;
    base.infiniteBlockCache = true;
    return runProtocol(base, Protocol::CCNuma, wl);
}

double
normalizedTime(Tick num, Tick den)
{
    if (den == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return static_cast<double>(num) / static_cast<double>(den);
}

namespace
{

/** Every registered spec, by value, in registration order. */
std::vector<ProtocolSpec>
allRegisteredSpecs()
{
    std::vector<ProtocolSpec> specs;
    for (const ProtocolSpec *s : ProtocolRegistry::global().all())
        specs.push_back(*s);
    return specs;
}

} // namespace

std::vector<ProtocolSpec>
protocolSpecs(const std::vector<std::string> &names)
{
    std::vector<ProtocolSpec> specs;
    specs.reserve(names.size());
    for (const std::string &name : names)
        specs.push_back(protocolSpec(name));
    return specs;
}

const ComparisonEntry *
ComparisonMatrix::find(const std::string &id) const
{
    for (const ComparisonEntry &e : entries)
        if (e.id == id)
            return &e;
    return nullptr;
}

const ComparisonEntry &
ComparisonMatrix::at(const std::string &id) const
{
    const ComparisonEntry *e = find(id);
    if (!e) {
        RNUMA_FATAL("protocol '", id,
                    "' did not run in this comparison");
    }
    return *e;
}

double
ComparisonMatrix::norm(const std::string &id) const
{
    return normalizedTime(at(id).stats.ticks, baseline.ticks);
}

double
ComparisonMatrix::bestOf(const std::vector<std::string> &ids) const
{
    RNUMA_ASSERT(!ids.empty(), "bestOf needs at least one id");
    double best = std::numeric_limits<double>::infinity();
    for (const std::string &id : ids) {
        double n = norm(id);
        if (std::isnan(n))
            return n;
        best = std::min(best, n);
    }
    return best;
}

double
ComparisonMatrix::bestOfBase() const
{
    return bestOf({"ccnuma", "scoma"});
}

const ComparisonEntry &
ComparisonMatrix::winner() const
{
    RNUMA_ASSERT(!entries.empty(), "winner() on an empty comparison");
    const ComparisonEntry *best = &entries.front();
    for (const ComparisonEntry &e : entries)
        if (e.stats.ticks < best->stats.ticks)
            best = &e;
    return *best;
}

double
ComparisonMatrix::regret(const std::string &id) const
{
    return normalizedTime(at(id).stats.ticks, winner().stats.ticks) - 1.0;
}

ComparisonMatrix
compareAll(const Params &params, Workload &wl,
           const std::vector<ProtocolSpec> &specs)
{
    const std::vector<ProtocolSpec> &run =
        specs.empty() ? allRegisteredSpecs() : specs;
    ComparisonMatrix m;
    m.baseline = runInfiniteBaseline(params, wl);
    for (const ProtocolSpec &spec : run) {
        ComparisonEntry e;
        e.id = spec.id;
        e.name = spec.displayName;
        e.stats = runProtocol(params, spec, wl);
        m.entries.push_back(std::move(e));
    }
    return m;
}

ComparisonMatrix
compareAll(const Params &params,
           const std::function<std::unique_ptr<Workload>()> &make,
           const std::vector<ProtocolSpec> &specs, std::size_t jobs)
{
    RNUMA_ASSERT(make, "compareAll needs a workload factory");
    const std::vector<ProtocolSpec> run =
        specs.empty() ? allRegisteredSpecs() : specs;
    ComparisonMatrix m;
    m.entries.resize(run.size());
    for (std::size_t i = 0; i < run.size(); ++i) {
        m.entries[i].id = run[i].id;
        m.entries[i].name = run[i].displayName;
    }
    // Task 0 is the baseline; task i+1 runs spec i. Each task builds
    // its own workload and writes its own slot, so the pool shares
    // no mutable state.
    parallelFor(run.size() + 1, jobs, [&](std::size_t i) {
        std::unique_ptr<Workload> wl = make();
        if (i == 0) {
            m.baseline = runInfiniteBaseline(params, *wl);
        } else {
            m.entries[i - 1].stats =
                runProtocol(params, run[i - 1], *wl);
        }
    });
    return m;
}

namespace
{

ProtocolComparison
shimOf(const ComparisonMatrix &m)
{
    ProtocolComparison c;
    c.baseline = m.baseline;
    c.ccNuma = m.at("ccnuma").stats;
    c.sComa = m.at("scoma").stats;
    c.rNuma = m.at("rnuma").stats;
    return c;
}

std::vector<ProtocolSpec>
builtinSpecs()
{
    return protocolSpecs({"ccnuma", "scoma", "rnuma"});
}

} // namespace

double
ProtocolComparison::normCC() const
{
    return normalizedTime(ccNuma.ticks, baseline.ticks);
}

double
ProtocolComparison::normSC() const
{
    return normalizedTime(sComa.ticks, baseline.ticks);
}

double
ProtocolComparison::normRN() const
{
    return normalizedTime(rNuma.ticks, baseline.ticks);
}

double
ProtocolComparison::bestOfBase() const
{
    return std::min(normCC(), normSC());
}

ProtocolComparison
compareProtocols(const Params &params, Workload &wl)
{
    return shimOf(compareAll(params, wl, builtinSpecs()));
}

ProtocolComparison
compareProtocols(const Params &params,
                 const std::function<std::unique_ptr<Workload>()> &make,
                 std::size_t jobs)
{
    return shimOf(compareAll(params, make, builtinSpecs(), jobs));
}

} // namespace rnuma
