#include "sim/runner.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "sim/machine.hh"

namespace rnuma
{

RunStats
runProtocol(const Params &params, const ProtocolSpec &spec,
            Workload &wl)
{
    wl.reset();
    Machine m(params, spec, wl);
    return m.run();
}

RunStats
runProtocol(const Params &params, const std::string &name,
            Workload &wl)
{
    return runProtocol(params, protocolSpec(name), wl);
}

RunStats
runProtocol(const Params &params, Protocol protocol, Workload &wl)
{
    return runProtocol(params, builtinSpec(protocol), wl);
}

RunStats
runInfiniteBaseline(const Params &params, Workload &wl)
{
    Params base = params;
    base.infiniteBlockCache = true;
    return runProtocol(base, Protocol::CCNuma, wl);
}

namespace
{

double
ratio(Tick num, Tick den)
{
    RNUMA_ASSERT(den > 0, "baseline execution time is zero");
    return static_cast<double>(num) / static_cast<double>(den);
}

} // namespace

double
ProtocolComparison::normCC() const
{
    return ratio(ccNuma.ticks, baseline.ticks);
}

double
ProtocolComparison::normSC() const
{
    return ratio(sComa.ticks, baseline.ticks);
}

double
ProtocolComparison::normRN() const
{
    return ratio(rNuma.ticks, baseline.ticks);
}

double
ProtocolComparison::bestOfBase() const
{
    return std::min(normCC(), normSC());
}

ProtocolComparison
compareProtocols(const Params &params, Workload &wl)
{
    ProtocolComparison c;
    c.baseline = runInfiniteBaseline(params, wl);
    c.ccNuma = runProtocol(params, Protocol::CCNuma, wl);
    c.sComa = runProtocol(params, Protocol::SComa, wl);
    c.rNuma = runProtocol(params, Protocol::RNuma, wl);
    return c;
}

ProtocolComparison
compareProtocols(const Params &params,
                 const std::function<std::unique_ptr<Workload>()> &make,
                 std::size_t jobs)
{
    RNUMA_ASSERT(make, "compareProtocols needs a workload factory");
    ProtocolComparison c;
    struct Task
    {
        RunStats *out;
        Protocol protocol;
        bool infinite;
    };
    const Task tasks[] = {
        {&c.baseline, Protocol::CCNuma, true},
        {&c.ccNuma, Protocol::CCNuma, false},
        {&c.sComa, Protocol::SComa, false},
        {&c.rNuma, Protocol::RNuma, false},
    };

    parallelFor(4, jobs, [&](std::size_t i) {
        const Task &t = tasks[i];
        Params p = params;
        p.infiniteBlockCache = t.infinite;
        std::unique_ptr<Workload> wl = make();
        *t.out = runProtocol(p, t.protocol, *wl);
    });
    return c;
}

} // namespace rnuma
