/**
 * @file
 * Processor model. The paper's nodes contain 400 MHz dual-issue,
 * statically scheduled processors (Ross HyperSparc). Here a CPU is a
 * stream cursor plus a local clock: compute (think) cycles accumulate
 * arithmetically, memory references consult the L1, and misses
 * suspend the CPU until the node/RAD/home round trip completes.
 */

#ifndef RNUMA_SIM_CPU_HH
#define RNUMA_SIM_CPU_HH

#include "common/types.hh"
#include "workload/workload.hh"

namespace rnuma
{

/** Per-CPU execution state owned by the Machine. */
struct CpuState
{
    /** Local clock: when this CPU's next instruction issues. */
    Tick time = 0;
    /** Stream exhausted. */
    bool done = false;
    /** Parked at a barrier awaiting release. */
    bool waiting = false;
    /**
     * A miss that must wait its turn in global time order: the CPU
     * ran ahead of the event queue on L1 hits, so the shared-resource
     * access is deferred to an event at the miss tick (keeping bus,
     * memory, directory and network acquisitions causally ordered).
     */
    bool hasPending = false;
    Ref pending{};
    /** Ticks spent stalled on memory (diagnostics). */
    Tick stalled = 0;
    /** Ticks spent parked at barriers (diagnostics). */
    Tick barrierWait = 0;
};

/** CPU-id helpers: global id = node * cpusPerNode + local index. */
struct CpuMap
{
    std::size_t cpusPerNode = 1;

    NodeId
    nodeOf(CpuId cpu) const
    {
        return static_cast<NodeId>(cpu / cpusPerNode);
    }

    std::size_t
    localOf(CpuId cpu) const
    {
        return static_cast<std::size_t>(cpu % cpusPerNode);
    }

    CpuId
    globalOf(NodeId node, std::size_t local) const
    {
        return static_cast<CpuId>(node * cpusPerNode + local);
    }
};

} // namespace rnuma

#endif // RNUMA_SIM_CPU_HH
