/**
 * @file
 * The full distributed shared-memory machine: N SMP nodes, the
 * interconnect, the directory protocol, first-touch placement, and
 * the event-driven execution of a workload's per-CPU reference
 * streams. One Machine performs one run under one protocol.
 */

#ifndef RNUMA_SIM_MACHINE_HH
#define RNUMA_SIM_MACHINE_HH

#include <memory>
#include <vector>

#include "common/params.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "net/network.hh"
#include "net/registry.hh"
#include "os/first_touch.hh"
#include "proto/protocol.hh"
#include "proto/registry.hh"
#include "sim/cpu.hh"
#include "sim/event_queue.hh"
#include "sim/node.hh"
#include "workload/workload.hh"

namespace rnuma
{

/** The machine; also the protocol's downcall sink. */
class Machine : public CoherenceSink
{
  public:
    /**
     * Build a machine running the system @p spec describes. The
     * workload must provide exactly params.numCpus() streams. The
     * spec's factories run here; the spec itself is not retained.
     */
    Machine(const Params &params, const ProtocolSpec &spec,
            Workload &wl);

    /** Legacy-enum convenience: one of the three paper systems. */
    Machine(const Params &params, Protocol protocol, Workload &wl);

    /** Execute the workload to completion; returns the statistics. */
    RunStats run();

    //--- CoherenceSink ------------------------------------------------------
    bool invalidateNodeCopy(NodeId node, Addr block) override;
    void downgradeNodeCopy(NodeId node, Addr block) override;

    //--- Introspection ------------------------------------------------------
    Node &node(NodeId n) { return *nodes_[n]; }
    GlobalProtocol &protocol() { return *proto_; }
    /** Registry id of the system this machine runs ("ccnuma", ...). */
    const std::string &protocolId() const { return protocolId_; }
    NetworkModel &network() { return *net_; }
    FirstTouchPlacement &placement() { return place_; }
    const RunStats &stats() const { return stats_; }
    const Params &params() const { return p; }

  private:
    Params p;
    std::string protocolId_;
    Workload &wl;
    CpuMap cpuMap;
    RunStats stats_;
    FirstTouchPlacement place_;
    std::unique_ptr<NetworkModel> net_;
    std::vector<std::unique_ptr<Memory>> mems_;
    std::unique_ptr<GlobalProtocol> proto_;
    std::vector<std::unique_ptr<Node>> nodes_;
    EventQueue eq_;
    std::vector<CpuState> cpus_;
    std::size_t finished = 0;
    std::size_t barrierArrived = 0;
    Tick barrierMax = 0;
    bool ran = false;

    /** Advance one CPU until it blocks (miss, barrier, or end). */
    void step(CpuId cpu);

    /** Execute a miss at the CPU's current time; returns completion. */
    Tick processMiss(CpuId cpu, const Ref &r);

    /** Release the barrier if every active CPU has arrived. */
    void maybeReleaseBarrier();
};

} // namespace rnuma

#endif // RNUMA_SIM_MACHINE_HH
