/**
 * @file
 * The full distributed shared-memory machine: N SMP nodes, the
 * interconnect, the directory protocol, first-touch placement, and
 * the event-driven execution of a workload's per-CPU reference
 * streams. One Machine performs one run under one protocol.
 */

#ifndef RNUMA_SIM_MACHINE_HH
#define RNUMA_SIM_MACHINE_HH

#include <memory>
#include <vector>

#include "common/params.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "net/network.hh"
#include "net/registry.hh"
#include "os/first_touch.hh"
#include "proto/protocol.hh"
#include "proto/registry.hh"
#include "sim/cpu.hh"
#include "sim/event_queue.hh"
#include "sim/node.hh"
#include "workload/workload.hh"

namespace rnuma
{

/** The machine; also the protocol's downcall sink. */
class Machine : public CoherenceSink
{
  public:
    /**
     * Build a machine running the system @p spec describes. The
     * workload must provide exactly params.numCpus() streams. The
     * spec's factories run here; the spec itself is not retained.
     */
    Machine(const Params &params, const ProtocolSpec &spec,
            Workload &wl);

    /** Legacy-enum convenience: one of the three paper systems. */
    Machine(const Params &params, Protocol protocol, Workload &wl);

    /** Execute the workload to completion; returns the statistics. */
    RunStats run();

    //--- CoherenceSink ------------------------------------------------------
    bool invalidateNodeCopy(NodeId node, Addr block) override;
    void downgradeNodeCopy(NodeId node, Addr block) override;

    //--- Introspection ------------------------------------------------------
    Node &node(NodeId n) { return *nodes_[n]; }
    GlobalProtocol &protocol() { return *proto_; }
    /** Registry id of the system this machine runs ("ccnuma", ...). */
    const std::string &protocolId() const { return protocolId_; }
    NetworkModel &network() { return *net_; }
    FirstTouchPlacement &placement() { return place_; }
    const RunStats &stats() const { return stats_; }
    const Params &params() const { return p; }

  private:
    /**
     * One logical process of the parallel engine (--intra-jobs > 1):
     * a contiguous range of nodes and their CPUs, with a private
     * event queue and statistics shard. The owning worker thread is
     * the only mutator of everything in the range during a window;
     * misses whose side effects would escape the range are parked on
     * the deferred list for the serial coordinator at the window
     * boundary. See sim/machine_parallel.cc.
     */
    struct Partition
    {
        /** A miss (or first touch) awaiting the coordinator. */
        struct Deferred
        {
            Tick when;
            CpuId cpu;
        };

        NodeId nodeLo = 0, nodeHi = 0;
        CpuId cpuLo = 0, cpuHi = 0;
        EventQueue eq;
        RunStats stats;
        std::vector<Deferred> deferred;
        std::size_t finished = 0; ///< CPUs that reached End
        std::size_t arrived = 0;  ///< CPUs waiting at the app barrier
        Tick arrivedMax = 0;      ///< latest local barrier arrival

        explicit Partition(std::size_t span) : eq(span) {}
    };

    Params p;
    std::string protocolId_;
    Workload &wl;
    CpuMap cpuMap;
    RunStats stats_;
    FirstTouchPlacement place_;
    std::unique_ptr<NetworkModel> net_;
    std::vector<std::unique_ptr<Memory>> mems_;
    std::unique_ptr<GlobalProtocol> proto_;
    std::vector<std::unique_ptr<Node>> nodes_;
    EventQueue eq_;
    std::vector<CpuState> cpus_;
    std::size_t finished = 0;
    std::size_t barrierArrived = 0;
    Tick barrierMax = 0;
    bool ran = false;
    /** Parallel-engine partitions; empty when intraJobs == 1. */
    std::vector<Partition> partitions_;
    /** CPUs per partition (valid when partitions_ is non-empty). */
    std::size_t cpusPerPartition_ = 0;

    /** Advance one CPU until it blocks (miss, barrier, or end). */
    void step(CpuId cpu);

    /** Execute a miss at the CPU's current time; returns completion. */
    Tick processMiss(CpuId cpu, const Ref &r);

    /** Release the barrier if every active CPU has arrived. */
    void maybeReleaseBarrier();

    //--- Parallel engine (sim/machine_parallel.cc) ------------------------
    /** The window-barrier parallel run loop (intraJobs > 1). */
    RunStats runParallel();

    /** The stats shard a CPU's counters land in. */
    RunStats &statsFor(CpuId cpu);

    /** The partition owning a CPU. */
    Partition &partitionOf(CpuId cpu);

    /** Drain one partition's events strictly below the window edge. */
    void drainPartition(Partition &pt, Tick edge);

    /** Partition-confined variant of step(). */
    void stepPartition(Partition &pt, CpuId cpu, Tick edge);

    /** Can this miss run inside the partition's node range now? */
    bool missConfined(const Partition &pt, CpuId cpu,
                      const Ref &r) const;

    /**
     * Serial boundary phase: run deferred misses in time order.
     * Returns how many were replayed, so the round loop knows more
     * work may now sit below the current edge.
     */
    std::size_t processDeferred(std::vector<Partition::Deferred> &batch);

    /**
     * Barrier release across partitions (window boundary). True when
     * a release happened (woken CPUs may have events below the edge).
     */
    bool releaseBarrierParallel();
};

} // namespace rnuma

#endif // RNUMA_SIM_MACHINE_HH
