/**
 * @file
 * One SMP node (Figure 1): four processors with private L1 data
 * caches kept coherent by a snoopy MOESI-style protocol over a
 * split-transaction bus, an interleaved memory, and a Remote Access
 * Device. The node routes each L1 miss: on-node cache-to-cache
 * transfer (owned lines only, per the MBus limitation in Section 4),
 * home-memory access for local pages, or the RAD for remote pages.
 */

#ifndef RNUMA_SIM_NODE_HH
#define RNUMA_SIM_NODE_HH

#include <memory>
#include <vector>

#include "common/params.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/memory.hh"
#include "os/page_table.hh"
#include "os/vm.hh"
#include "proto/protocol.hh"
#include "proto/registry.hh"
#include "rad/rad.hh"

namespace rnuma
{

/** One SMP node of the DSM machine. */
class Node : public L1Snooper
{
  public:
    /**
     * @param params   system parameters
     * @param id       this node's id
     * @param spec     which system to build (its RAD factory runs in
     *                 this constructor; the spec is not retained)
     * @param memory   this node's DRAM (owned by the Machine so the
     *                 GlobalProtocol can also reach it)
     * @param proto    the machine-wide protocol engine
     * @param stats    the run's statistics sink
     */
    Node(const Params &params, NodeId id, const ProtocolSpec &spec,
         Memory &memory, GlobalProtocol &proto, RunStats &stats);

    /**
     * Process one memory reference from local processor @p cpu.
     * @param now     issue tick
     * @param cpu     local CPU index (0..cpusPerNode-1)
     * @param addr    global address
     * @param write   store
     * @param is_home this node is the referenced page's home
     * @return completion tick (== @p now for an L1 hit)
     */
    Tick access(Tick now, std::size_t cpu, Addr addr, bool write,
                bool is_home);

    /**
     * Fast path: service the reference if it hits the local L1 with
     * sufficient permission (zero extra latency, no shared state
     * touched). Returns false otherwise, with no side effects.
     */
    bool tryHit(std::size_t cpu, Addr addr, bool write);

    /**
     * Would access(now, cpu, addr, write, is_home) touch only state
     * belonging to nodes in [lo, hi)? Side-effect-free mirror of
     * access()'s control flow; the parallel engine calls it from a
     * partition thread before executing a miss, deferring to the
     * serial coordinator on false. Requires the page to be placed,
     * and this node (plus the page's home when is_home) inside
     * [lo, hi).
     */
    bool missConfined(std::size_t cpu, Addr addr, bool write,
                      bool is_home, NodeId lo, NodeId hi) const;

    //--- L1Snooper --------------------------------------------------------
    CacheState invalidateL1Block(Addr block) override;

    //--- Directory downcalls (via Machine's CoherenceSink) ---------------
    /** Invalidate every copy on this node; true if any was dirty. */
    bool invalidateAll(Addr block);

    /** Downgrade every copy on this node to clean/shared. */
    void downgradeAll(Addr block);

    //--- Introspection ------------------------------------------------------
    Rad &rad() { return *rad_; }
    const Rad &rad() const { return *rad_; }
    Bus &bus() { return bus_; }
    PageTable &pageTable() { return pageTable_; }
    Cache &l1(std::size_t cpu) { return l1s[cpu]; }
    NodeId id() const { return id_; }

  private:
    const Params &p;
    NodeId id_;
    GlobalProtocol &proto;
    RunStats &stats;
    Memory &mem;
    Bus bus_;
    std::vector<Cache> l1s;
    PageTable pageTable_;
    VmManager vm_;
    std::unique_ptr<Rad> rad_;

    Addr blockOf(Addr a) const { return a & ~(Addr(p.blockSize) - 1); }

    /** Fill an L1 after a miss, handling the victim writeback. */
    void fillL1(Tick now, std::size_t cpu, Addr block, CacheState st);

    /** Invalidate the block in every L1 except @p cpu's. */
    void invalidateOtherL1s(std::size_t cpu, Addr block);

    /** Find an owned (M/O) copy in another L1 (MBus supplies those). */
    CacheLine *snoopOwned(std::size_t cpu, Addr block);
    const CacheLine *snoopOwned(std::size_t cpu, Addr block) const;

    /** Would fillL1's victim handling stay inside [lo, hi)? */
    bool fillConfined(std::size_t cpu, Addr block, NodeId lo,
                      NodeId hi) const;

    /** Does this node hold global write permission for the block? */
    bool nodeHasWritePermission(Addr block, bool is_home) const;
};

} // namespace rnuma

#endif // RNUMA_SIM_NODE_HH
